"""PB-SYM-PD and PB-SYM-PD-SCHED: point decomposition (Section 5).

PD achieves work-efficient parallelism: each point is stamped exactly once
(full, unclipped cylinder) into the *shared* volume, and safety comes from
scheduling — two subdomains may run concurrently only if no pair of their
points' cylinders can overlap, i.e. only if the blocks are not neighbours
in the 27-point stencil (blocks being at least twice the bandwidth wide,
Figure 5).

Two schedulers:

* ``scheduler="parity"`` (**PB-SYM-PD**, Algorithm 6): the fixed 8-colour
  ``(a%2, b%2, c%2)`` classes executed one after another with barriers —
  eight OpenMP parallel-for constructs.  Over-constrained: a heavy block
  serialises its whole colour class (Figure 11's plateaus).

* ``scheduler="sched"`` (**PB-SYM-PD-SCHED**): load-aware greedy colouring
  (heaviest block first) orienting the stencil into a dependency DAG that
  a Graham list scheduler executes with heaviest-first priority — OpenMP
  4.0 task dependencies.  Shorter critical path, no barriers (Figures 12
  and 13).

Both produce exactly the PB-SYM volume (work-efficient; no replication
overhead), unlike DR/DD.

Block tasks stamp through the batched engine (:mod:`repro.core.stamping`
via :func:`stamp_points_sym`), so under ``backend="threads"`` concurrent
colour-compatible blocks overlap in large GIL-releasing NumPy kernels
rather than contending on per-point Python dispatch.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..algorithms.base import STKDEResult, register_algorithm
from ..algorithms.pb_sym import stamp_points_sym
from ..core.grid import GridSpec, PointSet, Volume
from ..core.instrument import PhaseTimer, WorkCounter
from ..core.kernels import KernelPair, get_kernel
from .color import (
    greedy_coloring,
    load_order,
    occupied_neighbor_map,
    parity_coloring,
)
from .executors import ExecTask, run_serial, run_threaded
from .partition import BlockDecomposition
from .schedule import (
    BandwidthModel,
    TaskGraph,
    barrier_schedule,
    build_task_graph,
    critical_path,
    grahams_bound,
    list_schedule,
    saturated_makespan,
)

__all__ = ["pb_sym_pd", "pb_sym_pd_sched", "run_point_decomposition"]


def _slab_slices(Gx: int, P: int) -> List[slice]:
    bounds = [(Gx * p) // P for p in range(P + 1)]
    return [slice(bounds[p], bounds[p + 1]) for p in range(P)]


def run_point_decomposition(
    points: PointSet,
    grid: GridSpec,
    *,
    decomposition: Tuple[int, int, int],
    P: int,
    backend: str,
    scheduler: str,
    kernel: str | KernelPair,
    counter: Optional[WorkCounter],
    timer: Optional[PhaseTimer],
    bandwidth: Optional[BandwidthModel],
    algorithm_name: str,
) -> STKDEResult:
    """Shared engine for PD and PD-SCHED (see module docstring)."""
    if P < 1:
        raise ValueError("P must be >= 1")
    if scheduler not in ("parity", "sched"):
        raise ValueError(f"unknown scheduler {scheduler!r}")
    kern = get_kernel(kernel)
    counter = counter if counter is not None else WorkCounter()
    timer = timer if timer is not None else PhaseTimer()
    bw = bandwidth or BandwidthModel()

    # PD's safety constraint: blocks at least twice the bandwidth (the
    # paper adjusts undersized decompositions the same way, Figure 11).
    dec = BlockDecomposition.adjusted_for_pd(grid, *decomposition)
    norm = grid.normalization(points.n)

    with timer.phase("bin"):
        binning = dec.bin_points_owner(points)
        occupied = [int(b) for b in binning.occupied()]
        loads: Dict[int, float] = {
            bid: float(len(binning.points_in(bid))) for bid in occupied
        }

    with timer.phase("color"):
        if scheduler == "parity":
            coloring = parity_coloring(dec, occupied)
        else:
            order = load_order(occupied, loads)
            coloring = greedy_coloring(dec, occupied, order, method="load-aware")
        adjacency = occupied_neighbor_map(dec, occupied)
        graph, id_map = build_task_graph(coloring, adjacency, loads)

    # --- init phase (slab-parallel zeroing of the one shared volume).
    vol = np.empty(grid.shape, dtype=np.float64)
    slabs = _slab_slices(grid.Gx, P)
    init_counters = [WorkCounter() for _ in range(P)]

    def make_init(p: int):
        def fn() -> None:
            vol[slabs[p]].fill(0.0)
            init_counters[p].init_writes += vol[slabs[p]].size

        return fn

    init_tasks = [ExecTask(make_init(p), label=("init", p)) for p in range(P)]

    # --- compute tasks: one per occupied block, *unclipped* stamping.
    blocks_sorted = sorted(id_map, key=id_map.get)  # task index order
    task_counters = [WorkCounter() for _ in blocks_sorted]

    def make_block_task(k: int, bid: int):
        idx = binning.points_in(bid)
        coords = points.coords[idx]

        def fn() -> None:
            stamp_points_sym(vol, grid, kern, coords, norm, task_counters[k])
            task_counters[k].points_processed += len(coords)

        return fn

    comp_tasks = [
        ExecTask(
            make_block_task(k, bid),
            weight_hint=loads[bid],
            color=coloring.colors[bid],
            label=("block", bid),
        )
        for k, bid in enumerate(blocks_sorted)
    ]

    if backend == "threads":
        with timer.phase("init"):
            run_serial(init_tasks)
        with timer.phase("compute"):
            if scheduler == "parity":
                wall = 0.0
                for cls in coloring.classes():
                    cls_idx = [id_map[bid] for bid in cls]
                    sub = [comp_tasks[i] for i in cls_idx]
                    nt = len(sub)
                    trivial = TaskGraph(
                        [t.weight_hint for t in sub],
                        [[] for _ in range(nt)],
                        [[] for _ in range(nt)],
                    )
                    wall += run_threaded(sub, trivial, P)
            else:
                wall = run_threaded(
                    comp_tasks, graph, P,
                    priority=lambda v: (-comp_tasks[v].weight_hint, v),
                )
        makespan = timer.seconds["bin"] + timer.seconds["color"] + timer.seconds["init"] + wall
        phase_ms = {"init": timer.seconds["init"], "compute": wall}
    elif backend in ("serial", "simulated"):
        with timer.phase("init"):
            run_serial(init_tasks)
        with timer.phase("compute"):
            run_serial(comp_tasks, graph)
        init_ms = saturated_makespan([t.measured for t in init_tasks], P, bw)
        measured = [t.measured for t in comp_tasks]
        if scheduler == "parity":
            class_weights = [
                [measured[id_map[bid]] for bid in cls] for cls in coloring.classes()
            ]
            comp_ms = barrier_schedule(class_weights, P)
        else:
            mgraph = TaskGraph(measured, graph.succs, graph.preds, labels=graph.labels)
            sched = list_schedule(
                mgraph, P, priority=lambda v: (-measured[v], v)
            )
            comp_ms = sched.makespan
        overhead = timer.seconds["bin"] + timer.seconds["color"]
        if backend == "serial":
            makespan = overhead + sum(t.measured for t in init_tasks) + sum(measured)
            phase_ms = {
                "init": sum(t.measured for t in init_tasks),
                "compute": sum(measured),
            }
        else:
            makespan = overhead + init_ms + comp_ms
            phase_ms = {"init": init_ms, "compute": comp_ms}
    else:
        raise ValueError(f"unknown backend {backend!r}")

    for c in init_counters:
        counter.merge(c)
    for c in task_counters:
        counter.merge(c)

    # Critical-path diagnostics (Figure 12) from measured task times.
    measured_graph = TaskGraph(
        [t.measured for t in comp_tasks], graph.succs, graph.preds
    )
    T1 = measured_graph.total_weight
    Tinf, _ = critical_path(measured_graph)

    return STKDEResult(
        Volume(vol, grid),
        algorithm_name,
        timer,
        counter,
        meta={
            "P": P,
            "backend": backend,
            "scheduler": scheduler,
            "decomposition": dec.shape,
            "requested_decomposition": tuple(decomposition),
            "makespan": makespan,
            "phase_makespans": phase_ms,
            "n_colors": coloring.n_colors,
            "occupied_blocks": len(occupied),
            "T1": T1,
            "Tinf": Tinf,
            "critical_path_ratio": (Tinf / T1) if T1 > 0 else 0.0,
            "graham_bound": grahams_bound(T1, Tinf, P) if T1 > 0 else 0.0,
        },
    )


@register_algorithm("pb-sym-pd", parallel=True)
def pb_sym_pd(
    points: PointSet,
    grid: GridSpec,
    *,
    decomposition: Tuple[int, int, int] = (8, 8, 8),
    P: int = 4,
    backend: str = "simulated",
    kernel: str | KernelPair = "epanechnikov",
    counter: Optional[WorkCounter] = None,
    timer: Optional[PhaseTimer] = None,
    bandwidth: Optional[BandwidthModel] = None,
) -> STKDEResult:
    """Point-decomposition STKDE with the 8-colour parity wavefront
    (PB-SYM-PD, Algorithm 6)."""
    return run_point_decomposition(
        points, grid,
        decomposition=decomposition, P=P, backend=backend, scheduler="parity",
        kernel=kernel, counter=counter, timer=timer, bandwidth=bandwidth,
        algorithm_name="pb-sym-pd",
    )


@register_algorithm("pb-sym-pd-sched", parallel=True)
def pb_sym_pd_sched(
    points: PointSet,
    grid: GridSpec,
    *,
    decomposition: Tuple[int, int, int] = (8, 8, 8),
    P: int = 4,
    backend: str = "simulated",
    kernel: str | KernelPair = "epanechnikov",
    counter: Optional[WorkCounter] = None,
    timer: Optional[PhaseTimer] = None,
    bandwidth: Optional[BandwidthModel] = None,
) -> STKDEResult:
    """Point-decomposition STKDE with load-aware colouring and task-graph
    scheduling (PB-SYM-PD-SCHED, Section 5.2)."""
    return run_point_decomposition(
        points, grid,
        decomposition=decomposition, P=P, backend=backend, scheduler="sched",
        kernel=kernel, counter=counter, timer=timer, bandwidth=bandwidth,
        algorithm_name="pb-sym-pd-sched",
    )
