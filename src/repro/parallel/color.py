"""Stencil-graph colouring for point-decomposition scheduling (Section 5.2).

The subdomains of a block decomposition form a **27-point stencil graph**:
two blocks conflict iff they are within Chebyshev distance 1 of each other
(their points' cylinders may overlap).  Any proper colouring of that graph
yields a safe execution: blocks of equal colour never conflict, and
orienting every edge from lower to higher colour produces the dependency
DAG that :mod:`repro.parallel.schedule` executes (Figure 6).

Three colourings are provided:

* :func:`parity_coloring` — the fixed 8-colour ``(a%2, b%2, c%2)`` scheme
  of the first PB-SYM-PD implementation (Algorithm 6's eight parallel-for
  phases);
* :func:`greedy_coloring` with :func:`natural_order` — classic
  smallest-available-colour greedy in lexicographic block order;
* :func:`greedy_coloring` with :func:`load_order` — the paper's
  load-aware heuristic: colour blocks in non-increasing point-count order
  so heavy blocks get low colours and are scheduled first
  (PB-SYM-PD-SCHED).

Only *occupied* blocks (those holding points) are coloured — empty
subdomains induce no task and no conflict, which on sparse datasets (Flu)
shrinks the graph by orders of magnitude.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple

from .partition import BlockDecomposition

__all__ = [
    "Coloring",
    "stencil_neighbors",
    "occupied_neighbor_map",
    "parity_coloring",
    "natural_order",
    "load_order",
    "greedy_coloring",
    "validate_coloring",
]


def stencil_neighbors(
    dec: BlockDecomposition, a: int, b: int, c: int
) -> Iterator[Tuple[int, int, int]]:
    """The up-to-26 blocks within Chebyshev distance 1 of ``(a, b, c)``."""
    for da in (-1, 0, 1):
        aa = a + da
        if not 0 <= aa < dec.A:
            continue
        for db in (-1, 0, 1):
            bb = b + db
            if not 0 <= bb < dec.B:
                continue
            for dc in (-1, 0, 1):
                cc = c + dc
                if (da, db, dc) == (0, 0, 0):
                    continue
                if 0 <= cc < dec.C:
                    yield aa, bb, cc


def occupied_neighbor_map(
    dec: BlockDecomposition, occupied: Sequence[int]
) -> Dict[int, List[int]]:
    """Adjacency restricted to occupied blocks.

    Returns ``{block_id: [neighbouring occupied block_ids]}`` for every
    occupied block.  This is the conflict graph the colourings and the
    scheduler operate on.
    """
    occ_set = set(int(x) for x in occupied)
    adj: Dict[int, List[int]] = {}
    for bid in occ_set:
        a, b, c = dec.block_coords(bid)
        neigh = [
            dec.linear_id(aa, bb, cc)
            for aa, bb, cc in stencil_neighbors(dec, a, b, c)
        ]
        adj[bid] = [nb for nb in neigh if nb in occ_set]
    return adj


@dataclass
class Coloring:
    """A proper colouring of the occupied-block conflict graph."""

    colors: Dict[int, int]  # block_id -> colour
    n_colors: int
    method: str

    def classes(self) -> List[List[int]]:
        """Block ids grouped by colour, colour-ascending."""
        out: List[List[int]] = [[] for _ in range(self.n_colors)]
        for bid, col in sorted(self.colors.items()):
            out[col].append(bid)
        return out


def parity_coloring(dec: BlockDecomposition, occupied: Sequence[int]) -> Coloring:
    """The 8-colour parity scheme of Algorithm 6.

    Colour ``4*(a%2) + 2*(b%2) + (c%2)`` — blocks of equal colour differ by
    at least 2 in every axis where they differ at all, hence never conflict
    (given the PD block-size constraint).
    """
    colors: Dict[int, int] = {}
    for bid in occupied:
        a, b, c = dec.block_coords(int(bid))
        colors[int(bid)] = 4 * (a % 2) + 2 * (b % 2) + (c % 2)
    n = max(colors.values()) + 1 if colors else 0
    return Coloring(colors, n, method="parity")


def natural_order(occupied: Sequence[int]) -> List[int]:
    """Lexicographic block order (the classic greedy baseline)."""
    return sorted(int(x) for x in occupied)


def load_order(occupied: Sequence[int], loads: Dict[int, float]) -> List[int]:
    """Non-increasing load order; ties broken by block id for determinism.

    This is PB-SYM-PD-SCHED's ordering: the most loaded subdomains are
    coloured first, receive the smallest colours, and are therefore
    released to the scheduler earliest.
    """
    return sorted(
        (int(x) for x in occupied),
        key=lambda bid: (-loads.get(bid, 0.0), bid),
    )


def greedy_coloring(
    dec: BlockDecomposition,
    occupied: Sequence[int],
    order: Sequence[int],
    *,
    method: str = "greedy",
) -> Coloring:
    """First-fit greedy colouring along ``order``.

    Each block receives the smallest colour not used by its
    already-coloured stencil neighbours — the standard greedy scheme the
    paper cites from the graph-colouring literature [GMP05].
    """
    occ_set = set(int(x) for x in occupied)
    if set(int(x) for x in order) != occ_set:
        raise ValueError("order must be a permutation of the occupied blocks")
    colors: Dict[int, int] = {}
    for bid in order:
        a, b, c = dec.block_coords(bid)
        taken = set()
        for aa, bb, cc in stencil_neighbors(dec, a, b, c):
            nb = dec.linear_id(aa, bb, cc)
            col = colors.get(nb)
            if col is not None:
                taken.add(col)
        col = 0
        while col in taken:
            col += 1
        colors[bid] = col
    n = max(colors.values()) + 1 if colors else 0
    return Coloring(colors, n, method=method)


def validate_coloring(
    dec: BlockDecomposition, coloring: Coloring, occupied: Sequence[int]
) -> bool:
    """True iff no two adjacent occupied blocks share a colour."""
    adj = occupied_neighbor_map(dec, occupied)
    for bid, neighbors in adj.items():
        for nb in neighbors:
            if coloring.colors[bid] == coloring.colors[nb]:
                return False
    return True
