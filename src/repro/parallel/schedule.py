"""Dependency DAGs, critical paths, and Graham list scheduling (Section 5.2).

A colouring of the occupied-block conflict graph induces a dependency DAG:
every stencil edge is oriented from the lower colour to the higher colour
(Figure 6).  Executing tasks in any order consistent with that DAG is safe;
how *fast* it runs is bounded by Graham's list-scheduling guarantee

.. math::  T_P \\le (T_1 - T_\\infty) / P + T_\\infty

where ``T_1`` is the total weight and ``T_infty`` the weighted critical
path.  The paper reasons about its parallel strategies entirely through
this bound (Figure 12 plots ``T_infty / T_1``), and so do we.

This module provides:

* :class:`TaskGraph` — weighted DAG with successor/predecessor lists;
* :func:`critical_path` — weighted longest path (``T_infty``);
* :func:`list_schedule` — event-driven greedy scheduler on ``P``
  processors with a pluggable priority (PD-SCHED's "heaviest first");
* :func:`barrier_schedule` — the colour-class-by-colour-class execution of
  the first PD implementation (eight OpenMP parallel-for constructs);
* a **memory-bandwidth saturation model** for memory-bound phases:
  Section 6.3 observes that volume initialisation speeds up by only ~3x
  regardless of thread count because it saturates DRAM bandwidth; the
  simulated executors reproduce that with a configurable cap.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .color import Coloring

__all__ = [
    "TaskGraph",
    "ScheduleResult",
    "build_task_graph",
    "critical_path",
    "list_schedule",
    "barrier_schedule",
    "grahams_bound",
    "saturated_makespan",
    "BandwidthModel",
]

#: Default memory-bandwidth saturation: parallel memory-bound phases
#: (volume init, replica reduction) scale to at most this factor.  The
#: paper measures ~3 on its dual-socket Xeon ("the speedup of the
#: initialization phase using 16 threads is about 3", Section 6.3).
DEFAULT_BANDWIDTH_CAP = 3.0


@dataclass(frozen=True)
class BandwidthModel:
    """Effective parallelism model for memory-bound phases."""

    cap: float = DEFAULT_BANDWIDTH_CAP

    def effective_procs(self, P: int) -> float:
        if P < 1:
            raise ValueError("P must be >= 1")
        return min(float(P), self.cap)


@dataclass
class TaskGraph:
    """A weighted dependency DAG over integer task ids ``0..n-1``."""

    weights: List[float]
    succs: List[List[int]]
    preds: List[List[int]]
    labels: List[object] = field(default_factory=list)

    @property
    def n(self) -> int:
        return len(self.weights)

    @property
    def total_weight(self) -> float:
        """``T_1``: the serial execution time of all tasks."""
        return sum(self.weights)

    def topological_order(self) -> List[int]:
        """Kahn topological order; raises on cycles."""
        indeg = [len(p) for p in self.preds]
        ready = [i for i in range(self.n) if indeg[i] == 0]
        out: List[int] = []
        while ready:
            v = ready.pop()
            out.append(v)
            for s in self.succs[v]:
                indeg[s] -= 1
                if indeg[s] == 0:
                    ready.append(s)
        if len(out) != self.n:
            raise ValueError("task graph contains a cycle")
        return out


def build_task_graph(
    coloring: Coloring,
    adjacency: Dict[int, List[int]],
    weights: Dict[int, float],
) -> Tuple[TaskGraph, Dict[int, int]]:
    """Orient the conflict graph by colour into a dependency DAG.

    Parameters
    ----------
    coloring:
        Proper colouring of the occupied blocks.
    adjacency:
        ``{block_id: [neighbour block ids]}`` over occupied blocks.
    weights:
        ``{block_id: cost}`` task weights (seconds or work units).

    Returns
    -------
    (graph, id_map) where ``id_map`` maps block id to task index.
    """
    blocks = sorted(coloring.colors)
    id_map = {bid: i for i, bid in enumerate(blocks)}
    n = len(blocks)
    succs: List[List[int]] = [[] for _ in range(n)]
    preds: List[List[int]] = [[] for _ in range(n)]
    for bid in blocks:
        cu = coloring.colors[bid]
        for nb in adjacency.get(bid, ()):  # neighbours are occupied blocks
            cv = coloring.colors[nb]
            if cu == cv:
                raise ValueError(
                    f"improper coloring: blocks {bid} and {nb} share colour {cu}"
                )
            if cu < cv:
                succs[id_map[bid]].append(id_map[nb])
                preds[id_map[nb]].append(id_map[bid])
    w = [float(weights.get(bid, 0.0)) for bid in blocks]
    return TaskGraph(w, succs, preds, labels=list(blocks)), id_map


def critical_path(graph: TaskGraph) -> Tuple[float, List[int]]:
    """Weighted longest path ``T_infty`` and one path realising it."""
    order = graph.topological_order()
    dist = [0.0] * graph.n
    parent = [-1] * graph.n
    for v in order:
        best = 0.0
        for p in graph.preds[v]:
            if dist[p] > best:
                best = dist[p]
                parent[v] = p
        dist[v] = best + graph.weights[v]
    if not order:
        return 0.0, []
    end = max(range(graph.n), key=lambda v: dist[v])
    path = []
    v = end
    while v != -1:
        path.append(v)
        v = parent[v]
    path.reverse()
    return dist[end], path


@dataclass
class ScheduleResult:
    """Outcome of a (simulated) parallel execution."""

    makespan: float
    start: List[float]
    end: List[float]
    proc: List[int]
    P: int

    @property
    def busy_time(self) -> float:
        return sum(e - s for s, e in zip(self.start, self.end))

    @property
    def efficiency(self) -> float:
        """Busy fraction of the ``P * makespan`` processor-time budget."""
        if self.makespan == 0:
            return 1.0
        return self.busy_time / (self.P * self.makespan)


def list_schedule(
    graph: TaskGraph,
    P: int,
    priority: Optional[Callable[[int], Tuple]] = None,
) -> ScheduleResult:
    """Event-driven greedy list scheduling on ``P`` identical processors.

    Whenever a processor is idle and tasks are ready, the ready task with
    the smallest ``priority(task)`` tuple starts immediately (Graham's
    algorithm — no deliberate idling).  The default priority is task id;
    PB-SYM-PD-SCHED passes heaviest-first.
    """
    if P < 1:
        raise ValueError("P must be >= 1")
    n = graph.n
    indeg = [len(p) for p in graph.preds]
    prio = priority if priority is not None else (lambda v: (v,))
    ready: List[Tuple[Tuple, int]] = [
        (prio(v), v) for v in range(n) if indeg[v] == 0
    ]
    heapq.heapify(ready)
    # Processors as a heap of (free_at_time, proc_id).
    procs = [(0.0, p) for p in range(P)]
    heapq.heapify(procs)
    running: List[Tuple[float, int]] = []  # (finish_time, task)
    start = [0.0] * n
    end = [0.0] * n
    proc_of = [0] * n
    now = 0.0
    done = 0
    while done < n:
        if ready and procs and procs[0][0] <= now:
            _, v = heapq.heappop(ready)
            free_at, p = heapq.heappop(procs)
            s = max(now, free_at)
            start[v] = s
            end[v] = s + graph.weights[v]
            proc_of[v] = p
            heapq.heappush(procs, (end[v], p))
            heapq.heappush(running, (end[v], v))
            continue
        if not running:
            # No task ready and nothing running: the DAG had a cycle or we
            # are waiting on a processor; advance to next processor event.
            if ready and procs:
                now = max(now, procs[0][0])
                continue
            raise ValueError("deadlock: tasks remain but none ready/running")
        finish, v = heapq.heappop(running)
        now = max(now, finish)
        done += 1
        for s_ in graph.succs[v]:
            indeg[s_] -= 1
            if indeg[s_] == 0:
                heapq.heappush(ready, (prio(s_), s_))
    makespan = max(end) if n else 0.0
    return ScheduleResult(makespan, start, end, proc_of, P)


def barrier_schedule(
    class_weights: Sequence[Sequence[float]],
    P: int,
    *,
    lpt: bool = False,
) -> float:
    """Makespan of colour-class-by-colour-class execution with barriers.

    Models the first PB-SYM-PD implementation: one parallel-for per colour
    class, classes strictly in sequence.  Within a class, tasks are
    greedily assigned to the earliest-free processor, in index order (an
    OpenMP ``schedule(dynamic)`` loop) or in longest-processing-time order
    when ``lpt`` is set.
    """
    if P < 1:
        raise ValueError("P must be >= 1")
    total = 0.0
    for weights in class_weights:
        if not len(weights):
            continue
        ws = sorted(weights, reverse=True) if lpt else list(weights)
        procs = [0.0] * P
        for w in ws:
            i = min(range(P), key=procs.__getitem__)
            procs[i] += w
        total += max(procs)
    return total


def grahams_bound(T1: float, Tinf: float, P: int) -> float:
    """Graham's list-scheduling upper bound ``(T1 - Tinf)/P + Tinf``."""
    if P < 1:
        raise ValueError("P must be >= 1")
    return (T1 - Tinf) / P + Tinf


def saturated_makespan(
    weights: Sequence[float],
    P: int,
    bandwidth: Optional[BandwidthModel] = None,
) -> float:
    """Makespan of an independent, memory-bound phase under saturation.

    Memory-bound phases (volume initialisation, replica reduction) do not
    scale with processor count but with available DRAM bandwidth; the
    model caps effective parallelism at ``bandwidth.cap`` (Section 6.3
    measures ~3 on the paper's machine).  Compute-bound phases should use
    :func:`list_schedule` / :func:`barrier_schedule` instead.
    """
    if P < 1:
        raise ValueError("P must be >= 1")
    ws = [float(w) for w in weights if w > 0]
    if not ws:
        return 0.0
    eff = (bandwidth or BandwidthModel()).effective_procs(P)
    return max(max(ws), sum(ws) / eff)
