"""Spatial partitioning substrate: A x B x C block decompositions.

Both domain decomposition (PB-SYM-DD, Section 4.2) and point decomposition
(PB-SYM-PD, Section 5.1) carve the voxel grid into ``A x B x C`` blocks.
Block ``a`` along an axis of ``G`` voxels spans
``[floor(a*G/A), floor((a+1)*G/A))`` — the same fractional boundaries the
paper's Algorithm 5 uses — so blocks tile the grid exactly and differ in
size by at most one voxel.

The two strategies need different point-to-block relations, both provided
here:

* **ownership** (PD): each point belongs to exactly one block — the one
  containing its voxel;
* **replication** (DD): each point is attached to *every* block its
  density cylinder intersects; the replication factor (Figure 9's
  overhead) falls out of :meth:`BlockDecomposition.bin_points_replicated`.

PD additionally requires blocks larger than twice the bandwidth so that
same-parity blocks never have overlapping cylinders (Figure 5);
:meth:`BlockDecomposition.adjusted_for_pd` clamps a requested
decomposition to that constraint, exactly as the paper adjusts its
experiments ("decompositions of subdomain smaller than twice the
bandwidths are adjusted", Figure 11).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

from ..core.grid import GridSpec, PointSet, VoxelWindow

__all__ = ["BlockDecomposition", "PointBinning"]


def _boundaries(G: int, A: int) -> np.ndarray:
    """Block boundaries ``floor(a * G / A)`` for ``a = 0..A`` (length A+1)."""
    return (np.arange(A + 1, dtype=np.int64) * G) // A


@dataclass
class PointBinning:
    """Point-to-block assignment in CSR-like form.

    ``order`` holds point indices grouped by block; block ``k``'s points
    are ``order[offsets[k]:offsets[k+1]]``.  For replicated binnings a
    point index may appear under several blocks.
    """

    n_blocks: int
    order: np.ndarray
    offsets: np.ndarray
    replicas: int  # total assignments (== n for ownership binning)

    def points_in(self, block_id: int) -> np.ndarray:
        """Indices of the points assigned to a linear block id."""
        return self.order[self.offsets[block_id] : self.offsets[block_id + 1]]

    def counts(self) -> np.ndarray:
        """Number of assigned points per block (length ``n_blocks``)."""
        return np.diff(self.offsets)

    def occupied(self) -> np.ndarray:
        """Linear ids of blocks holding at least one point."""
        return np.nonzero(self.counts() > 0)[0]

    def replication_factor(self, n_points: int) -> float:
        """Average number of blocks per point (1.0 = no replication)."""
        if n_points == 0:
            return 1.0
        return self.replicas / n_points


class BlockDecomposition:
    """An ``A x B x C`` partition of a grid's voxels into blocks."""

    def __init__(self, grid: GridSpec, A: int, B: int, C: int) -> None:
        if min(A, B, C) < 1:
            raise ValueError(f"block counts must be >= 1, got {(A, B, C)}")
        if A > grid.Gx or B > grid.Gy or C > grid.Gt:
            raise ValueError(
                f"more blocks than voxels: {(A, B, C)} vs grid {grid.shape}"
            )
        self.grid = grid
        self.A, self.B, self.C = A, B, C
        self.xb = _boundaries(grid.Gx, A)
        self.yb = _boundaries(grid.Gy, B)
        self.tb = _boundaries(grid.Gt, C)

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, int, int]:
        return (self.A, self.B, self.C)

    @property
    def n_blocks(self) -> int:
        return self.A * self.B * self.C

    def linear_id(self, a: int, b: int, c: int) -> int:
        """Linear block id for block coordinates ``(a, b, c)``."""
        return (a * self.B + b) * self.C + c

    def block_coords(self, block_id: int) -> Tuple[int, int, int]:
        """Inverse of :meth:`linear_id`."""
        a, rem = divmod(block_id, self.B * self.C)
        b, c = divmod(rem, self.C)
        return a, b, c

    def block_window(self, a: int, b: int, c: int) -> VoxelWindow:
        """Voxel window of block ``(a, b, c)``."""
        return VoxelWindow(
            int(self.xb[a]), int(self.xb[a + 1]),
            int(self.yb[b]), int(self.yb[b + 1]),
            int(self.tb[c]), int(self.tb[c + 1]),
        )

    def halo_window(self, a: int, b: int, c: int) -> VoxelWindow:
        """Block window grown by ``(Hs, Hs, Ht)`` and clipped to the grid.

        This is the region a block's own points can write into — the
        buffer extent PB-SYM-PD-REP replicas allocate.
        """
        g = self.grid
        return VoxelWindow(
            max(0, int(self.xb[a]) - g.Hs),
            min(g.Gx, int(self.xb[a + 1]) + g.Hs),
            max(0, int(self.yb[b]) - g.Hs),
            min(g.Gy, int(self.yb[b + 1]) + g.Hs),
            max(0, int(self.tb[c]) - g.Ht),
            min(g.Gt, int(self.tb[c + 1]) + g.Ht),
        )

    def min_block_shape(self) -> Tuple[int, int, int]:
        """Smallest block edge lengths along each axis."""
        return (
            int(np.diff(self.xb).min()),
            int(np.diff(self.yb).min()),
            int(np.diff(self.tb).min()),
        )

    def iter_blocks(self) -> Iterator[Tuple[int, int, int]]:
        for a in range(self.A):
            for b in range(self.B):
                for c in range(self.C):
                    yield a, b, c

    # ------------------------------------------------------------------
    # Point assignment
    # ------------------------------------------------------------------
    def _owner_axis(self, coords: np.ndarray, boundaries: np.ndarray) -> np.ndarray:
        return np.searchsorted(boundaries, coords, side="right") - 1

    def owners(self, points: PointSet) -> np.ndarray:
        """Linear block id owning each point (by its voxel)."""
        vox = self.grid.voxels_of(points.coords)
        a = self._owner_axis(vox[:, 0], self.xb)
        b = self._owner_axis(vox[:, 1], self.yb)
        c = self._owner_axis(vox[:, 2], self.tb)
        return (a * self.B + b) * self.C + c

    def bin_points_owner(self, points: PointSet) -> PointBinning:
        """Ownership binning (PB-SYM-PD): each point in exactly one block."""
        owner = self.owners(points)
        order = np.argsort(owner, kind="stable")
        offsets = np.searchsorted(
            owner[order], np.arange(self.n_blocks + 1)
        ).astype(np.int64)
        return PointBinning(self.n_blocks, order, offsets, replicas=points.n)

    def blocks_intersecting(self, win: VoxelWindow) -> Tuple[range, range, range]:
        """Block index ranges whose windows intersect a voxel window."""
        if win.empty:
            return range(0), range(0), range(0)
        a0 = int(self._owner_axis(np.int64(win.x0), self.xb))
        a1 = int(self._owner_axis(np.int64(win.x1 - 1), self.xb))
        b0 = int(self._owner_axis(np.int64(win.y0), self.yb))
        b1 = int(self._owner_axis(np.int64(win.y1 - 1), self.yb))
        c0 = int(self._owner_axis(np.int64(win.t0), self.tb))
        c1 = int(self._owner_axis(np.int64(win.t1 - 1), self.tb))
        return range(a0, a1 + 1), range(b0, b1 + 1), range(c0, c1 + 1)

    def count_replicas(self, points: PointSet) -> int:
        """Total point-to-block assignments of the replication binning.

        Vectorised (no lists built): used to predict the cost of a DD
        configuration before committing to it — the paper skips its most
        expensive decomposition sweeps the same way (eBird Hr-Hb in
        Figure 9).
        """
        vox = self.grid.voxels_of(points.coords)
        counts = np.ones(points.n, dtype=np.int64)
        for axis, (bounds, H, G) in enumerate(
            (
                (self.xb, self.grid.Hs, self.grid.Gx),
                (self.yb, self.grid.Hs, self.grid.Gy),
                (self.tb, self.grid.Ht, self.grid.Gt),
            )
        ):
            lo = np.maximum(vox[:, axis] - H, 0)
            hi = np.minimum(vox[:, axis] + H, G - 1)
            b_lo = np.searchsorted(bounds, lo, side="right") - 1
            b_hi = np.searchsorted(bounds, hi, side="right") - 1
            counts *= b_hi - b_lo + 1
        return int(counts.sum())

    def bin_points_replicated(self, points: PointSet) -> PointBinning:
        """Replication binning (PB-SYM-DD): every intersected block.

        A point is attached to each block whose window meets the point's
        (grid-clipped) cylinder window; Algorithm 5's
        ``(X, Y, T) +- (Hs, Hs, Ht)`` intersection test.  Fully
        vectorised: per-point block *ranges* come from searchsorted on the
        block boundaries, and the cartesian expansion is index arithmetic
        on flat replica ids — the binning phase is part of DD's measured
        overhead (Figure 9), so its constant matters.
        """
        vox = self.grid.voxels_of(points.coords)
        lo = np.empty((points.n, 3), dtype=np.int64)
        hi = np.empty((points.n, 3), dtype=np.int64)
        for axis, (bounds, H, G) in enumerate(
            (
                (self.xb, self.grid.Hs, self.grid.Gx),
                (self.yb, self.grid.Hs, self.grid.Gy),
                (self.tb, self.grid.Ht, self.grid.Gt),
            )
        ):
            w_lo = np.maximum(vox[:, axis] - H, 0)
            w_hi = np.minimum(vox[:, axis] + H, G - 1)
            lo[:, axis] = np.searchsorted(bounds, w_lo, side="right") - 1
            hi[:, axis] = np.searchsorted(bounds, w_hi, side="right") - 1
        spans = hi - lo + 1  # blocks intersected per axis, per point
        per_point = spans[:, 0] * spans[:, 1] * spans[:, 2]
        replicas = int(per_point.sum())
        # Expand each point into its replica slots, then decode the slot's
        # (a, b, c) offset from its within-point rank j:
        #   a = lo_a + j // (cb*cc); b = lo_b + (j // cc) % cb; c = lo_c + j % cc
        owner = np.repeat(np.arange(points.n, dtype=np.int64), per_point)
        starts = np.concatenate(([0], np.cumsum(per_point)[:-1]))
        j = np.arange(replicas, dtype=np.int64) - np.repeat(starts, per_point)
        cb = spans[owner, 1]
        cc = spans[owner, 2]
        a = lo[owner, 0] + j // (cb * cc)
        b = lo[owner, 1] + (j // cc) % cb
        c = lo[owner, 2] + j % cc
        block_ids = (a * self.B + b) * self.C + c
        order_by_block = np.argsort(block_ids, kind="stable")
        order = owner[order_by_block]
        offsets = np.searchsorted(
            block_ids[order_by_block], np.arange(self.n_blocks + 1)
        ).astype(np.int64)
        return PointBinning(self.n_blocks, order, offsets, replicas=replicas)

    # ------------------------------------------------------------------
    # PD constraint
    # ------------------------------------------------------------------
    @classmethod
    def adjusted_for_pd(
        cls, grid: GridSpec, A: int, B: int, C: int
    ) -> "BlockDecomposition":
        """Clamp a requested decomposition to PD's minimum block size.

        Safe concurrency of same-parity blocks needs every block to span at
        least ``2*Hs + 1`` voxels spatially and ``2*Ht + 1`` temporally
        (Section 5.1; Figure 5).  The smallest block of an ``A``-way split
        of ``G`` voxels is ``floor(G/A)``, so we clamp
        ``A <= G // (2H + 1)`` (at least 1).
        """
        max_A = max(1, grid.Gx // (2 * grid.Hs + 1))
        max_B = max(1, grid.Gy // (2 * grid.Hs + 1))
        max_C = max(1, grid.Gt // (2 * grid.Ht + 1))
        return cls(grid, min(A, max_A), min(B, max_B), min(C, max_C))

    def satisfies_pd_constraint(self) -> bool:
        """True if same-parity blocks can never interact (PD-safe)."""
        mx, my, mt = self.min_block_shape()
        sx = self.A == 1 or mx >= 2 * self.grid.Hs + 1
        sy = self.B == 1 or my >= 2 * self.grid.Hs + 1
        st = self.C == 1 or mt >= 2 * self.grid.Ht + 1
        return sx and sy and st

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BlockDecomposition({self.A}x{self.B}x{self.C} on {self.grid.shape})"
