"""PB-SYM-DD: domain decomposition (Section 4.2, Algorithm 5).

The volume is carved into ``A x B x C`` subdomains; each point is attached
to *every* subdomain its cylinder intersects; subdomains are then processed
completely independently, each stamping its points clipped to its own
window.  No races (each subdomain writes only its own voxels), no volume
replication — but two structural costs the paper measures:

* **replicated work** (Figure 9): a cylinder split across subdomains
  recomputes its invariants in every part — clip a cylinder temporally and
  both halves tabulate the full spatial disk (Figure 4).  The overhead
  emerges here naturally from clipped :func:`stamp_point_sym` calls, and
  ``meta["replication_factor"]`` reports the average subdomains per point;

* **load imbalance** (Figure 10): clustered points concentrate work in few
  subdomains; since a subdomain is a single task, imbalance directly caps
  speedup, and refining the decomposition to fix it inflates the
  replication overhead — the tension Section 4.2 describes.

Each subdomain task stamps its point batch through the batched engine
(:mod:`repro.core.stamping` via :func:`stamp_points_sym`): one engine call
per block, whole shape cohorts tabulated and scattered in large
GIL-releasing NumPy kernels.  That is what makes ``backend="threads"``
genuinely overlap block tasks instead of serialising on per-point
interpreter dispatch.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..algorithms.base import STKDEResult, register_algorithm
from ..algorithms.pb_sym import stamp_points_sym
from ..core.grid import GridSpec, PointSet, Volume
from ..core.instrument import PhaseTimer, WorkCounter
from ..core.kernels import KernelPair, get_kernel
from .executors import ExecTask, run_serial, run_threaded
from .partition import BlockDecomposition
from .schedule import BandwidthModel, TaskGraph, list_schedule, saturated_makespan

__all__ = ["pb_sym_dd"]


def _slab_slices(Gx: int, P: int) -> List[slice]:
    bounds = [(Gx * p) // P for p in range(P + 1)]
    return [slice(bounds[p], bounds[p + 1]) for p in range(P)]


@register_algorithm("pb-sym-dd", parallel=True)
def pb_sym_dd(
    points: PointSet,
    grid: GridSpec,
    *,
    decomposition: Tuple[int, int, int] = (8, 8, 8),
    P: int = 4,
    backend: str = "simulated",
    kernel: str | KernelPair = "epanechnikov",
    counter: Optional[WorkCounter] = None,
    timer: Optional[PhaseTimer] = None,
    memory_budget_bytes: Optional[int] = None,
    bandwidth: Optional[BandwidthModel] = None,
) -> STKDEResult:
    """Domain-decomposition parallel STKDE (PB-SYM-DD).

    ``decomposition`` is the requested ``(A, B, C)`` subdomain grid; block
    counts exceeding the voxel extent are clamped (a 64-way split of a
    38-voxel axis is meaningless).  ``meta`` reports the realised
    decomposition, the point replication factor, and the parallel
    makespan.
    """
    if P < 1:
        raise ValueError("P must be >= 1")
    kern = get_kernel(kernel)
    counter = counter if counter is not None else WorkCounter()
    timer = timer if timer is not None else PhaseTimer()
    bw = bandwidth or BandwidthModel()
    A = min(decomposition[0], grid.Gx)
    B = min(decomposition[1], grid.Gy)
    C = min(decomposition[2], grid.Gt)
    dec = BlockDecomposition(grid, A, B, C)
    norm = grid.normalization(points.n)

    # --- binning phase (serial, measured): Algorithm 5's first loop.
    with timer.phase("bin"):
        binning = dec.bin_points_replicated(points)
        occupied = [int(b) for b in binning.occupied()]

    # --- init phase: the single shared volume, slab-parallel.
    vol = np.empty(grid.shape, dtype=np.float64)
    slabs = _slab_slices(grid.Gx, P)
    init_counters = [WorkCounter() for _ in range(P)]

    def make_init(p: int):
        def fn() -> None:
            vol[slabs[p]].fill(0.0)
            init_counters[p].init_writes += vol[slabs[p]].size

        return fn

    init_tasks = [ExecTask(make_init(p), label=("init", p)) for p in range(P)]

    # --- compute phase: one independent task per occupied subdomain.
    task_counters = [WorkCounter() for _ in occupied]

    def make_block_task(k: int, bid: int):
        a, b, c = dec.block_coords(bid)
        clip = dec.block_window(a, b, c)
        idx = binning.points_in(bid)
        coords = points.coords[idx]

        def fn() -> None:
            stamp_points_sym(
                vol, grid, kern, coords, norm, task_counters[k], clip=clip
            )
            task_counters[k].points_processed += len(coords)

        return fn

    comp_tasks = [
        ExecTask(
            make_block_task(k, bid),
            weight_hint=float(len(binning.points_in(bid))),
            label=("block", bid),
        )
        for k, bid in enumerate(occupied)
    ]

    nt = len(comp_tasks)
    trivial = TaskGraph([t.weight_hint for t in comp_tasks], [[] for _ in range(nt)], [[] for _ in range(nt)])

    if backend == "threads":
        with timer.phase("init"):
            run_serial(init_tasks)  # cheap; measured for the breakdown
        with timer.phase("compute"):
            wall = run_threaded(
                comp_tasks, trivial, P, priority=lambda v: (-comp_tasks[v].weight_hint, v)
            )
        makespan = timer.seconds["bin"] + timer.seconds["init"] + wall
        phase_ms = {"bin": timer.seconds["bin"], "init": timer.seconds["init"], "compute": wall}
    elif backend in ("serial", "simulated"):
        with timer.phase("init"):
            run_serial(init_tasks)
        with timer.phase("compute"):
            run_serial(comp_tasks)
        init_ms = saturated_makespan([t.measured for t in init_tasks], P, bw)
        sched = list_schedule(
            TaskGraph([t.measured for t in comp_tasks], [[] for _ in range(nt)], [[] for _ in range(nt)]),
            P,
            # Longest-task-first: what an OpenMP dynamic loop over
            # subdomains sorted by load achieves.
            priority=lambda v: (-comp_tasks[v].measured, v),
        )
        bin_s = timer.seconds["bin"]
        if backend == "serial":
            makespan = bin_s + sum(t.measured for t in init_tasks) + sum(
                t.measured for t in comp_tasks
            )
            phase_ms = {
                "bin": bin_s,
                "init": sum(t.measured for t in init_tasks),
                "compute": sum(t.measured for t in comp_tasks),
            }
        else:
            makespan = bin_s + init_ms + sched.makespan
            phase_ms = {"bin": bin_s, "init": init_ms, "compute": sched.makespan}
    else:
        raise ValueError(f"unknown backend {backend!r}")

    for c in init_counters:
        counter.merge(c)
    for c in task_counters:
        counter.merge(c)

    return STKDEResult(
        Volume(vol, grid),
        "pb-sym-dd",
        timer,
        counter,
        meta={
            "P": P,
            "backend": backend,
            "decomposition": dec.shape,
            "makespan": makespan,
            "phase_makespans": phase_ms,
            "replication_factor": binning.replication_factor(points.n),
            "occupied_blocks": len(occupied),
            "task_seconds": [t.measured for t in comp_tasks],
        },
    )
