"""PB-SYM-DR: domain replication (Section 4.1, Algorithm 4).

The simplest parallelisation: split the points evenly over ``P`` workers,
give each worker a *private copy of the whole volume* (so concurrent
cylinder stamps can never race), then sum the ``P`` copies.  Three
pleasingly-parallel phases:

1. **init** — each worker zeroes its private volume (memory-bound);
2. **compute** — each worker stamps its point chunk with PB-SYM;
3. **reduce** — the ``P`` copies are summed slab-by-slab (memory-bound).

The price is work inflation: ``Theta(P * Gx*Gy*Gt + n*Hs^2*Ht)`` and
``Theta(P * Gx*Gy*Gt)`` memory.  On init-dominated instances the extra
volume traffic *exceeds* the parallel gain (speedups below 1 in Figure 8),
and on large grids the replicas simply do not fit — Flu-Hr dies at 8
threads, eBird-Hr cannot run at all.  Both behaviours reproduce here via
the memory-budget check and the bandwidth-saturated phase model.

Worker chunks stamp through the batched engine (one
:func:`stamp_points_sym` call per chunk), so the compute phase under
``backend="threads"`` is a few large GIL-releasing NumPy kernels per
worker — the same private-volume + reduction structure is also available
directly at the engine level as
:func:`repro.parallel.executors.run_threaded_stamping`.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..algorithms.base import STKDEResult, register_algorithm
from ..algorithms.pb_sym import stamp_points_sym
from ..core.grid import GridSpec, PointSet, Volume
from ..core.instrument import PhaseTimer, WorkCounter
from ..core.kernels import KernelPair, get_kernel
from .executors import ExecTask, check_memory_budget, run_serial, run_threaded
from .schedule import BandwidthModel, TaskGraph, list_schedule, saturated_makespan

__all__ = ["pb_sym_dr"]


def _point_chunks(n: int, P: int) -> List[slice]:
    """Split ``range(n)`` into ``P`` near-equal contiguous slices."""
    bounds = [(n * p) // P for p in range(P + 1)]
    return [slice(bounds[p], bounds[p + 1]) for p in range(P)]


def _slab_slices(Gx: int, P: int) -> List[slice]:
    """Split the leading axis into ``P`` near-equal slabs."""
    bounds = [(Gx * p) // P for p in range(P + 1)]
    return [slice(bounds[p], bounds[p + 1]) for p in range(P)]


@register_algorithm("pb-sym-dr", parallel=True)
def pb_sym_dr(
    points: PointSet,
    grid: GridSpec,
    *,
    P: int = 4,
    backend: str = "simulated",
    kernel: str | KernelPair = "epanechnikov",
    counter: Optional[WorkCounter] = None,
    timer: Optional[PhaseTimer] = None,
    memory_budget_bytes: Optional[int] = None,
    bandwidth: Optional[BandwidthModel] = None,
) -> STKDEResult:
    """Domain-replication parallel STKDE (PB-SYM-DR).

    Parameters
    ----------
    P:
        Worker count (virtual processors under the ``simulated`` backend).
    backend:
        ``"serial"``, ``"threads"`` or ``"simulated"`` (see
        :mod:`repro.parallel.executors`).
    memory_budget_bytes:
        Emulated machine memory; DR needs ``P + 1`` volume copies and
        raises :class:`~repro.parallel.executors.MemoryBudgetExceeded`
        when they do not fit (the paper's Figure 8 OOMs).

    Returns a result whose ``meta`` carries the (simulated or real)
    parallel makespan under ``meta["makespan"]`` and the per-phase
    breakdown under ``meta["phase_makespans"]``.
    """
    if P < 1:
        raise ValueError("P must be >= 1")
    kern = get_kernel(kernel)
    counter = counter if counter is not None else WorkCounter()
    timer = timer if timer is not None else PhaseTimer()
    bw = bandwidth or BandwidthModel()

    check_memory_budget(
        (P + 1) * grid.grid_bytes, memory_budget_bytes, f"PB-SYM-DR with P={P}"
    )

    norm = grid.normalization(points.n)
    locals_: List[Optional[np.ndarray]] = [None] * P
    # The output volume is one of the P+1 copies; it is *not* zeroed here —
    # the reduce phase overwrites it (as Algorithm 4's final loop does), so
    # its first touch is accounted to the reduce tasks.
    out = np.empty(grid.shape, dtype=np.float64)
    chunks = _point_chunks(points.n, P)
    slabs = _slab_slices(grid.Gx, P)
    counters = [WorkCounter() for _ in range(P)]

    def make_init(p: int):
        def fn() -> None:
            locals_[p] = grid.allocate()
            counters[p].init_writes += grid.n_voxels

        return fn

    def make_compute(p: int):
        def fn() -> None:
            assert locals_[p] is not None
            stamp_points_sym(
                locals_[p], grid, kern, points.coords[chunks[p]], norm, counters[p]
            )
            counters[p].points_processed += chunks[p].stop - chunks[p].start

        return fn

    def make_reduce(p: int):
        def fn() -> None:
            sl = slabs[p]
            acc = out[sl]
            np.copyto(acc, locals_[0][sl])  # type: ignore[index]
            for q in range(1, P):
                acc += locals_[q][sl]  # type: ignore[index]
            counters[p].reduce_adds += P * acc.size

        return fn

    init_tasks = [ExecTask(make_init(p), color=0, label=("init", p)) for p in range(P)]
    comp_tasks = [
        ExecTask(make_compute(p), color=1, label=("compute", p)) for p in range(P)
    ]
    red_tasks = [
        ExecTask(make_reduce(p), color=2, label=("reduce", p)) for p in range(P)
    ]

    # Dependency DAG: compute[p] after init[p]; every reduce after every
    # compute (the reduction reads all local copies).
    tasks = init_tasks + comp_tasks + red_tasks
    n_t = len(tasks)
    succs: List[List[int]] = [[] for _ in range(n_t)]
    preds: List[List[int]] = [[] for _ in range(n_t)]
    for p in range(P):
        succs[p].append(P + p)
        preds[P + p].append(p)
        for r in range(P):
            succs[P + p].append(2 * P + r)
            preds[2 * P + r].append(P + p)
    graph = TaskGraph([t.weight_hint for t in tasks], succs, preds)

    if backend == "threads":
        with timer.phase("parallel"):
            wall = run_threaded(tasks, graph, P)
        makespan = wall
        phase_ms = {
            "init": sum(t.measured for t in init_tasks) / P,
            "compute": max(t.measured for t in comp_tasks),
            "reduce": sum(t.measured for t in red_tasks) / P,
        }
    elif backend in ("serial", "simulated"):
        with timer.phase("init"):
            run_serial(init_tasks)
        with timer.phase("compute"):
            run_serial(comp_tasks)
        with timer.phase("reduce"):
            run_serial(red_tasks)
        init_ms = saturated_makespan([t.measured for t in init_tasks], P, bw)
        comp_sched = list_schedule(
            TaskGraph([t.measured for t in comp_tasks], [[] for _ in range(P)], [[] for _ in range(P)]),
            P,
        )
        red_ms = saturated_makespan([t.measured for t in red_tasks], P, bw)
        phase_ms = {"init": init_ms, "compute": comp_sched.makespan, "reduce": red_ms}
        makespan = init_ms + comp_sched.makespan + red_ms
        if backend == "serial":
            makespan = sum(t.measured for t in tasks)
    else:
        raise ValueError(f"unknown backend {backend!r}")

    for c in counters:
        counter.merge(c)

    return STKDEResult(
        Volume(out, grid),
        "pb-sym-dr",
        timer,
        counter,
        meta={
            "P": P,
            "backend": backend,
            "makespan": makespan,
            "phase_makespans": phase_ms,
            "memory_bytes": (P + 1) * grid.grid_bytes,
        },
    )
