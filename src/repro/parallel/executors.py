"""Execution backends for the parallel STKDE strategies.

The paper evaluates on a 16-core Xeon; this reproduction runs wherever it
lands (possibly 2 cores), so each parallel algorithm supports three
backends:

``serial``
    Runs every task in a dependency-respecting order on the calling
    thread, measuring per-task wall time.  This is the *reference*: it
    produces the exact density volume and the task-cost vector.

``threads``
    A dependency-aware pool of real Python threads.  NumPy releases the
    GIL inside array kernels, so stamping tasks overlap genuinely; used to
    cross-check the simulator at small ``P`` on real hardware.

``simulated``
    Runs tasks serially (hence correct results), then *replays* the
    measured task costs through the exact scheduling policy of the
    algorithm — barrier phases, priority list scheduling, bandwidth-capped
    memory phases — on ``P`` virtual processors.  This is how the
    16-thread figures of Section 6 are regenerated on small machines; the
    task graphs, colourings and Graham-bound behaviour are identical to a
    real run, only the clock is virtual (see DESIGN.md, substitutions).

Memory budgets: every backend checks planned volume allocations against an
optional budget (how many float64 volumes fit), reproducing the paper's
128 GB OOM outcomes (Figures 8 and 14) via
:class:`MemoryBudgetExceeded`.
"""

from __future__ import annotations

import heapq
import os
import threading
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..core.grid import GridSpec, VoxelWindow
from ..core.instrument import WorkCounter
from ..core.kernels import KernelPair
from ..core.regions import RegionBuffer, plan_stamp_shards
from .schedule import (
    ScheduleResult,
    TaskGraph,
    list_schedule,
)

__all__ = [
    "ExecTask",
    "MemoryBudgetExceeded",
    "check_memory_budget",
    "resolve_shard_count",
    "run_serial",
    "run_threaded",
    "run_threaded_stamping",
    "simulate_from_measured",
    "BACKENDS",
]

BACKENDS = ("serial", "threads", "simulated")


class MemoryBudgetExceeded(RuntimeError):
    """Planned allocations exceed the emulated machine memory (cf. the
    128 GB ceiling that kills PB-SYM-DR on Flu-Hr and eBird-Hr)."""

    def __init__(self, needed: int, budget: int, what: str) -> None:
        super().__init__(
            f"{what}: needs {needed / 1e6:.1f} MB but the memory budget is "
            f"{budget / 1e6:.1f} MB"
        )
        self.needed = needed
        self.budget = budget


def check_memory_budget(
    needed_bytes: int, budget_bytes: Optional[int], what: str
) -> None:
    """Raise :class:`MemoryBudgetExceeded` if ``needed > budget``."""
    if budget_bytes is not None and needed_bytes > budget_bytes:
        raise MemoryBudgetExceeded(needed_bytes, budget_bytes, what)


@dataclass
class ExecTask:
    """A unit of parallel work: a closure plus scheduling metadata."""

    fn: Callable[[], None]
    weight_hint: float = 1.0  # scheduling priority before measurement
    color: int = 0
    label: object = None
    measured: float = 0.0  # wall seconds, filled by the backends


def run_serial(tasks: Sequence[ExecTask], graph: Optional[TaskGraph] = None) -> float:
    """Execute tasks on the calling thread in dependency order.

    Measures each task's wall time into ``task.measured``; returns the
    total.  With no graph, tasks run in sequence order.
    """
    order = graph.topological_order() if graph is not None else range(len(tasks))
    total = 0.0
    for i in order:
        t = tasks[i]
        t0 = time.perf_counter()
        t.fn()
        t.measured = time.perf_counter() - t0
        total += t.measured
    return total


def run_threaded(
    tasks: Sequence[ExecTask],
    graph: TaskGraph,
    P: int,
    priority: Optional[Callable[[int], Tuple]] = None,
) -> float:
    """Dependency-aware thread-pool execution; returns wall-clock time.

    Ready tasks are dispatched highest-priority-first (smallest priority
    tuple).  Worker threads run the task closures directly; NumPy's
    GIL-releasing kernels give true overlap for the stamping work.
    """
    if P < 1:
        raise ValueError("P must be >= 1")
    if graph.n != len(tasks):
        raise ValueError("graph/task size mismatch")
    prio = priority if priority is not None else (lambda v: (v,))
    indeg = [len(p) for p in graph.preds]
    ready: List[Tuple[Tuple, int]] = [
        (prio(v), v) for v in range(graph.n) if indeg[v] == 0
    ]
    heapq.heapify(ready)
    lock = threading.Lock()
    work_available = threading.Condition(lock)
    remaining = graph.n
    failures: List[BaseException] = []

    def worker() -> None:
        nonlocal remaining
        while True:
            with work_available:
                while not ready and remaining > 0 and not failures:
                    work_available.wait()
                if remaining <= 0 or failures:
                    return
                _, v = heapq.heappop(ready)
            t = tasks[v]
            t0 = time.perf_counter()
            try:
                t.fn()
            except BaseException as exc:  # propagate to caller
                with work_available:
                    failures.append(exc)
                    work_available.notify_all()
                return
            t.measured = time.perf_counter() - t0
            with work_available:
                remaining -= 1
                for s in graph.succs[v]:
                    indeg[s] -= 1
                    if indeg[s] == 0:
                        heapq.heappush(ready, (prio(s), s))
                work_available.notify_all()

    t_start = time.perf_counter()
    threads = [
        threading.Thread(target=worker, name=f"stkde-worker-{i}", daemon=True)
        for i in range(min(P, max(1, graph.n)))
    ]
    for th in threads:
        th.start()
    for th in threads:
        th.join()
    if failures:
        raise failures[0]
    if remaining != 0:
        raise RuntimeError("threaded execution deadlocked (cyclic graph?)")
    return time.perf_counter() - t_start


def resolve_shard_count(P: "int | str | None") -> int:
    """Resolve a shard/worker count, supporting ``"auto"``.

    ``"auto"`` (or ``None``) takes the machine's CPU count — the container
    affinity mask when available, so a 4-core cgroup on a 64-core host
    shards 4 ways.  Integers pass through validated.
    """
    if P == "auto" or P is None:
        if hasattr(os, "sched_getaffinity"):
            return max(1, len(os.sched_getaffinity(0)))
        return max(1, os.cpu_count() or 1)
    if isinstance(P, bool) or not isinstance(P, int):
        raise ValueError(f"P must be a positive int or 'auto', got {P!r}")
    if P < 1:
        raise ValueError("P must be >= 1")
    return P


def _windows_pairwise_disjoint(windows: Sequence[VoxelWindow]) -> bool:
    """Whether no two shard bounding boxes share a voxel (O(P^2), tiny P).

    Pairwise-disjoint boxes admit the per-shard merge: concurrent
    whole-buffer merges can never write the same output voxel.
    """
    for i in range(len(windows)):
        for j in range(i + 1, len(windows)):
            if not windows[i].intersect(windows[j]).empty:
                return False
    return True


def run_threaded_stamping(
    vol: np.ndarray,
    grid: GridSpec,
    kernel: KernelPair,
    coords: np.ndarray,
    norm: float,
    counter: WorkCounter,
    P: "int | str",
    *,
    mode: str = "sym",
    clip: Optional[VoxelWindow] = None,
    memory_budget_bytes: Optional[int] = None,
    weights: Optional[np.ndarray] = None,
) -> float:
    """Stamp a point batch on ``P`` threads through the region engine.

    The scaling path the engine enables: the batch is partitioned by
    :func:`repro.core.regions.plan_stamp_shards` into ``P`` shards balanced
    by stamped-cell count and ordered by stamp-window origin, each worker
    accumulates its shard into a **bounding-box** :class:`RegionBuffer`
    covering only the grid region its stamps can touch (so concurrent
    stamps never race, and every heavy operation is a GIL-releasing NumPy
    kernel), and the buffers are merged into ``vol``: **per shard** when
    the bounding boxes are pairwise disjoint (one merge task per buffer,
    released the moment its own stamp finishes — no slab sweep over empty
    intersections), otherwise by a slab-parallel reduction over the union
    of the boxes in which each slab visits only the shards whose x-extent
    reaches it.  This keeps the no-shared-write
    structure of the DR trade while shrinking its memory tax from ``P``
    full volumes to the shards' joint bounding boxes — on clustered data a
    small fraction of the grid — and shrinking the reduction traffic by
    the same factor.

    Work accounting mirrors DR at buffer granularity: buffer zeroing is
    charged to ``init_writes`` (and recorded in ``shard_bbox_cells``), the
    merge to ``reduce_adds``.  ``P="auto"`` shards by the machine's CPU
    count.  ``memory_budget_bytes`` bounds the *actual* planned footprint
    (output volume + shard buffers), raising :class:`MemoryBudgetExceeded`
    before anything is allocated.  Returns the wall-clock seconds of the
    threaded region.
    """
    P = resolve_shard_count(P)
    coords = np.asarray(coords, dtype=np.float64)
    if coords.shape[0] == 0:
        return 0.0
    if weights is not None:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (coords.shape[0],):
            raise ValueError("weights must be (n,) matching coords")
    plan = plan_stamp_shards(grid, coords, P, clip)
    n_shards = plan.n_shards
    if n_shards == 0:
        return 0.0
    check_memory_budget(
        vol.nbytes + plan.buffer_bytes, memory_budget_bytes,
        f"threaded stamping with {n_shards} bbox shards",
    )

    buffers: List[Optional[RegionBuffer]] = [None] * n_shards
    shard_counters = [WorkCounter() for _ in range(n_shards)]

    def make_shard(p: int):
        chunk = coords[plan.shards[p]]
        chunk_w = weights[plan.shards[p]] if weights is not None else None
        window = plan.windows[p]

        def fn() -> None:
            buf = RegionBuffer(window)
            shard_counters[p].init_writes += buf.cells
            shard_counters[p].shard_bbox_cells += buf.cells
            buf.stamp(
                grid, kernel, chunk, norm, shard_counters[p],
                mode=mode, clip=clip, weights=chunk_w,
            )
            buffers[p] = buf

        return fn

    # Reduction strategy.  Shard bounding boxes that are pairwise disjoint
    # (the normal shape for clustered data under origin-ordered sharding)
    # can be merged **per shard**: one task per buffer, each writing only
    # its own box — no slab sweep over the union extent, no empty
    # intersections visited.  Overlapping boxes fall back to the
    # slab-parallel reduction over the union x-extent (each reducer owns
    # an x-slab, so concurrent merges never write the same voxel), where
    # each slab pre-filters to the shards that actually reach it.
    per_shard_merge = n_shards > 1 and _windows_pairwise_disjoint(plan.windows)
    if per_shard_merge:
        reduce_counters = [WorkCounter() for _ in range(n_shards)]

        def make_reduce(r: int):
            def fn() -> None:
                added = buffers[r].add_into(vol)  # type: ignore[union-attr]
                reduce_counters[r].reduce_adds += added

            return fn

        n_merges = n_shards
    else:
        ux0, ux1 = plan.union_x_range()
        span = ux1 - ux0
        slab_bounds = [ux0 + (span * p) // P for p in range(P + 1)]
        slabs = [
            (slab_bounds[p], slab_bounds[p + 1])
            for p in range(P)
            if slab_bounds[p + 1] > slab_bounds[p]
        ]
        # Shards whose x-extent misses a slab contribute nothing to it;
        # skip them instead of bouncing off add_into's empty check.
        slab_shards = [
            [
                q
                for q in range(n_shards)
                if plan.windows[q].x0 < hi and plan.windows[q].x1 > lo
            ]
            for lo, hi in slabs
        ]
        reduce_counters = [WorkCounter() for _ in slabs]

        def make_reduce(r: int):
            def fn() -> None:
                lo, hi = slabs[r]
                added = 0
                for q in slab_shards[r]:
                    added += buffers[q].add_into(vol, lo, hi)  # type: ignore[union-attr]
                reduce_counters[r].reduce_adds += added

            return fn

        n_merges = len(slabs)

    tasks = [ExecTask(make_shard(p), label=("stamp", p)) for p in range(n_shards)]
    tasks += [ExecTask(make_reduce(r), label=("merge", r)) for r in range(n_merges)]
    n_t = len(tasks)
    succs: List[List[int]] = [[] for _ in range(n_t)]
    preds: List[List[int]] = [[] for _ in range(n_t)]
    # A merge waits only on the stamps whose buffers it reads: its own
    # shard on the per-shard path (so disjoint merges start the moment
    # their shard finishes), the slab's reaching shards otherwise.
    for r in range(n_merges):
        readers = [r] if per_shard_merge else slab_shards[r]
        for p in readers:
            succs[p].append(n_shards + r)
            preds[n_shards + r].append(p)
    wall = run_threaded(tasks, TaskGraph([t.weight_hint for t in tasks], succs, preds), P)
    for c in shard_counters:
        counter.merge(c)
    for c in reduce_counters:
        counter.merge(c)
    return wall


def simulate_from_measured(
    tasks: Sequence[ExecTask],
    graph: TaskGraph,
    P: int,
    priority: Optional[Callable[[int], Tuple]] = None,
) -> ScheduleResult:
    """Replay measured task costs through the list scheduler on ``P``
    virtual processors (tasks must have been run via :func:`run_serial`)."""
    measured = TaskGraph(
        weights=[t.measured for t in tasks],
        succs=graph.succs,
        preds=graph.preds,
        labels=list(graph.labels),
    )
    return list_schedule(measured, P, priority)
