"""Execution backends for the parallel STKDE strategies.

The paper evaluates on a 16-core Xeon; this reproduction runs wherever it
lands (possibly 2 cores), so each parallel algorithm supports three
backends:

``serial``
    Runs every task in a dependency-respecting order on the calling
    thread, measuring per-task wall time.  This is the *reference*: it
    produces the exact density volume and the task-cost vector.

``threads``
    A dependency-aware pool of real Python threads.  NumPy releases the
    GIL inside array kernels, so stamping tasks overlap genuinely; used to
    cross-check the simulator at small ``P`` on real hardware.

``simulated``
    Runs tasks serially (hence correct results), then *replays* the
    measured task costs through the exact scheduling policy of the
    algorithm — barrier phases, priority list scheduling, bandwidth-capped
    memory phases — on ``P`` virtual processors.  This is how the
    16-thread figures of Section 6 are regenerated on small machines; the
    task graphs, colourings and Graham-bound behaviour are identical to a
    real run, only the clock is virtual (see DESIGN.md, substitutions).

Memory budgets: every backend checks planned volume allocations against an
optional budget (how many float64 volumes fit), reproducing the paper's
128 GB OOM outcomes (Figures 8 and 14) via
:class:`MemoryBudgetExceeded`.
"""

from __future__ import annotations

import heapq
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .schedule import (
    BandwidthModel,
    ScheduleResult,
    TaskGraph,
    list_schedule,
)

__all__ = [
    "ExecTask",
    "MemoryBudgetExceeded",
    "check_memory_budget",
    "run_serial",
    "run_threaded",
    "simulate_from_measured",
    "BACKENDS",
]

BACKENDS = ("serial", "threads", "simulated")


class MemoryBudgetExceeded(RuntimeError):
    """Planned allocations exceed the emulated machine memory (cf. the
    128 GB ceiling that kills PB-SYM-DR on Flu-Hr and eBird-Hr)."""

    def __init__(self, needed: int, budget: int, what: str) -> None:
        super().__init__(
            f"{what}: needs {needed / 1e6:.1f} MB but the memory budget is "
            f"{budget / 1e6:.1f} MB"
        )
        self.needed = needed
        self.budget = budget


def check_memory_budget(
    needed_bytes: int, budget_bytes: Optional[int], what: str
) -> None:
    """Raise :class:`MemoryBudgetExceeded` if ``needed > budget``."""
    if budget_bytes is not None and needed_bytes > budget_bytes:
        raise MemoryBudgetExceeded(needed_bytes, budget_bytes, what)


@dataclass
class ExecTask:
    """A unit of parallel work: a closure plus scheduling metadata."""

    fn: Callable[[], None]
    weight_hint: float = 1.0  # scheduling priority before measurement
    color: int = 0
    label: object = None
    measured: float = 0.0  # wall seconds, filled by the backends


def run_serial(tasks: Sequence[ExecTask], graph: Optional[TaskGraph] = None) -> float:
    """Execute tasks on the calling thread in dependency order.

    Measures each task's wall time into ``task.measured``; returns the
    total.  With no graph, tasks run in sequence order.
    """
    order = graph.topological_order() if graph is not None else range(len(tasks))
    total = 0.0
    for i in order:
        t = tasks[i]
        t0 = time.perf_counter()
        t.fn()
        t.measured = time.perf_counter() - t0
        total += t.measured
    return total


def run_threaded(
    tasks: Sequence[ExecTask],
    graph: TaskGraph,
    P: int,
    priority: Optional[Callable[[int], Tuple]] = None,
) -> float:
    """Dependency-aware thread-pool execution; returns wall-clock time.

    Ready tasks are dispatched highest-priority-first (smallest priority
    tuple).  Worker threads run the task closures directly; NumPy's
    GIL-releasing kernels give true overlap for the stamping work.
    """
    if P < 1:
        raise ValueError("P must be >= 1")
    if graph.n != len(tasks):
        raise ValueError("graph/task size mismatch")
    prio = priority if priority is not None else (lambda v: (v,))
    indeg = [len(p) for p in graph.preds]
    ready: List[Tuple[Tuple, int]] = [
        (prio(v), v) for v in range(graph.n) if indeg[v] == 0
    ]
    heapq.heapify(ready)
    lock = threading.Lock()
    work_available = threading.Condition(lock)
    remaining = graph.n
    failures: List[BaseException] = []

    def worker() -> None:
        nonlocal remaining
        while True:
            with work_available:
                while not ready and remaining > 0 and not failures:
                    work_available.wait()
                if remaining <= 0 or failures:
                    return
                _, v = heapq.heappop(ready)
            t = tasks[v]
            t0 = time.perf_counter()
            try:
                t.fn()
            except BaseException as exc:  # propagate to caller
                with work_available:
                    failures.append(exc)
                    work_available.notify_all()
                return
            t.measured = time.perf_counter() - t0
            with work_available:
                remaining -= 1
                for s in graph.succs[v]:
                    indeg[s] -= 1
                    if indeg[s] == 0:
                        heapq.heappush(ready, (prio(s), s))
                work_available.notify_all()

    t_start = time.perf_counter()
    threads = [
        threading.Thread(target=worker, name=f"stkde-worker-{i}", daemon=True)
        for i in range(min(P, max(1, graph.n)))
    ]
    for th in threads:
        th.start()
    for th in threads:
        th.join()
    if failures:
        raise failures[0]
    if remaining != 0:
        raise RuntimeError("threaded execution deadlocked (cyclic graph?)")
    return time.perf_counter() - t_start


def simulate_from_measured(
    tasks: Sequence[ExecTask],
    graph: TaskGraph,
    P: int,
    priority: Optional[Callable[[int], Tuple]] = None,
) -> ScheduleResult:
    """Replay measured task costs through the list scheduler on ``P``
    virtual processors (tasks must have been run via :func:`run_serial`)."""
    measured = TaskGraph(
        weights=[t.measured for t in tasks],
        succs=graph.succs,
        preds=graph.preds,
        labels=list(graph.labels),
    )
    return list_schedule(measured, P, priority)
