"""Parallel STKDE strategies (Sections 4-5) and their substrate.

Importing this package registers the parallel algorithms:
``pb-sym-dr``, ``pb-sym-dd``, ``pb-sym-pd``, ``pb-sym-pd-sched``,
``pb-sym-pd-rep``.
"""

from .color import (
    Coloring,
    greedy_coloring,
    load_order,
    natural_order,
    occupied_neighbor_map,
    parity_coloring,
    stencil_neighbors,
    validate_coloring,
)
from .dd import pb_sym_dd
from .dr import pb_sym_dr
from .executors import (
    BACKENDS,
    ExecTask,
    MemoryBudgetExceeded,
    check_memory_budget,
    run_serial,
    run_threaded,
)
from .partition import BlockDecomposition, PointBinning
from .pd import pb_sym_pd, pb_sym_pd_sched, run_point_decomposition
from .rep import pb_sym_pd_rep, plan_replication
from .schedule import (
    BandwidthModel,
    ScheduleResult,
    TaskGraph,
    barrier_schedule,
    build_task_graph,
    critical_path,
    grahams_bound,
    list_schedule,
    saturated_makespan,
)

__all__ = [
    "BACKENDS",
    "BandwidthModel",
    "BlockDecomposition",
    "Coloring",
    "ExecTask",
    "MemoryBudgetExceeded",
    "PointBinning",
    "ScheduleResult",
    "TaskGraph",
    "barrier_schedule",
    "build_task_graph",
    "check_memory_budget",
    "critical_path",
    "grahams_bound",
    "greedy_coloring",
    "list_schedule",
    "load_order",
    "natural_order",
    "occupied_neighbor_map",
    "parity_coloring",
    "pb_sym_dd",
    "pb_sym_dr",
    "pb_sym_pd",
    "pb_sym_pd_rep",
    "pb_sym_pd_sched",
    "plan_replication",
    "run_point_decomposition",
    "run_serial",
    "run_threaded",
    "saturated_makespan",
    "stencil_neighbors",
    "validate_coloring",
]
