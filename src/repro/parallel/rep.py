"""PB-SYM-PD-REP: critical-path replication / moldable tasks (Section 5.2).

PD-SCHED's parallelism is still capped by Graham's bound: a chain of heavy
neighbouring subdomains forces ``T_P >= T_infty``.  PB-SYM-PD-REP attacks
``T_infty`` directly: subdomains on the critical path are made **moldable**
— their points are split across ``r`` replica tasks that stamp into
*private halo buffers*, merged by a reduction task.  Replication buys
parallelism inside a block at the price of extra volume initialisation and
reduction (the DR trade-off, but paid *only where the critical path needs
it*).

The driving loop follows the paper: *"as long as the critical path is
longer than* ``T1 / (2P)`` *, the tasks on the path are replicated an
additional time and the critical path is recomputed."*  Costs are
estimated from two micro-calibrations (per-point stamp time, per-voxel
memory time) so the replica overhead — ``2 x halo_volume`` memory
operations per extra replica — is weighed in the same units as the
stamping work.

Memory behaviour reproduces Figure 14: with a coarse decomposition the
"blocks" are nearly the whole domain, replication degenerates to DR, and
large instances exceed the memory budget (Flu-Hr dies at small
decompositions).

Note on naming: the paper's text calls this algorithm PB-SYM-PD-REP while
Figure 15's legend calls it PB-SYM-PD-SCHED-REP (it builds on the SCHED
colouring); we register it as ``"pb-sym-pd-rep"``.

Replica tasks stamp into their halo buffers through the batched engine
(:func:`stamp_points_sym` with ``clip`` + ``vol_origin``), so replicas of
a hot block overlap as large GIL-releasing NumPy kernels under
``backend="threads"``; the calibration micro-probes in this module measure
the engine path and therefore price replication against batched stamping.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..algorithms.base import STKDEResult, register_algorithm
from ..algorithms.pb_sym import stamp_points_sym
from ..core.grid import GridSpec, PointSet, Volume
from ..core.instrument import PhaseTimer, WorkCounter
from ..core.kernels import KernelPair, get_kernel
from .color import greedy_coloring, load_order, occupied_neighbor_map
from .executors import ExecTask, check_memory_budget, run_serial, run_threaded
from .partition import BlockDecomposition
from .schedule import (
    BandwidthModel,
    TaskGraph,
    build_task_graph,
    critical_path,
    list_schedule,
    saturated_makespan,
)

__all__ = ["pb_sym_pd_rep", "plan_replication"]

#: Hard cap on replication-refinement iterations (each iteration increments
#: every critical-path task once; progress stalls long before this).
_MAX_REP_ITERATIONS = 64


def plan_replication(
    weights: List[float],
    overheads: List[float],
    succs: List[List[int]],
    preds: List[List[int]],
    P: int,
    max_replicas: List[int],
) -> Tuple[List[int], float, float]:
    """Choose per-task replication factors by critical-path refinement.

    ``weights[v]`` is task v's estimated cost, ``overheads[v]`` the *extra*
    cost each replica adds (halo init + reduce share), ``max_replicas[v]``
    the point count (a task cannot split finer than one point per
    replica).  Implements the paper's loop: while the critical path
    exceeds ``T1 / (2P)``, replicate every task on it once more.

    Returns ``(replicas, Tinf_before, Tinf_after)`` where the effective
    weight of a task with ``r`` replicas is ``w/r + overhead`` (its
    replicas run in parallel; the reduction is folded into the overhead).
    """
    n = len(weights)
    if not (len(overheads) == len(succs) == len(preds) == len(max_replicas) == n):
        raise ValueError("mismatched plan inputs")
    T1 = sum(weights)
    replicas = [1] * n

    def eff(v: int) -> float:
        r = replicas[v]
        return weights[v] / r + (overheads[v] if r > 1 else 0.0)

    def current_cp() -> Tuple[float, List[int]]:
        g = TaskGraph([eff(v) for v in range(n)], succs, preds)
        return critical_path(g)

    tinf0, _ = current_cp()
    tinf = tinf0
    threshold = T1 / (2 * P) if P > 0 else 0.0
    for _ in range(_MAX_REP_ITERATIONS):
        if tinf <= threshold:
            break
        length, path = current_cp()
        progressed = False
        for v in path:
            if replicas[v] < max_replicas[v]:
                # Only replicate if splitting further actually shrinks the
                # effective weight (overhead can make it a net loss).
                r_new = replicas[v] + 1
                new_eff = weights[v] / r_new + overheads[v]
                if new_eff < eff(v):
                    replicas[v] = r_new
                    progressed = True
        if not progressed:
            break
        tinf, _ = current_cp()
    return replicas, tinf0, tinf


def _slab_slices(Gx: int, P: int) -> List[slice]:
    bounds = [(Gx * p) // P for p in range(P + 1)]
    return [slice(bounds[p], bounds[p + 1]) for p in range(P)]


def _calibrate(
    grid: GridSpec, points: PointSet, kern: KernelPair, norm: float
) -> Tuple[float, float]:
    """Measure (seconds per stamped point, seconds per voxel of memory op).

    Tiny throwaway runs; the ratio weighs replica overhead against stamping
    work in :func:`plan_replication`.
    """
    sample = points.coords[: min(32, points.n)]
    scratch = np.zeros(grid.shape, dtype=np.float64)
    c = WorkCounter()
    t0 = time.perf_counter()
    stamp_points_sym(scratch, grid, kern, sample, norm, c)
    c_pt = (time.perf_counter() - t0) / max(1, len(sample))
    m = np.empty(1 << 20, dtype=np.float64)
    t0 = time.perf_counter()
    m.fill(0.0)
    m += 1.0
    c_vox = (time.perf_counter() - t0) / (2 * m.size)
    return max(c_pt, 1e-9), max(c_vox, 1e-12)


@register_algorithm("pb-sym-pd-rep", parallel=True)
def pb_sym_pd_rep(
    points: PointSet,
    grid: GridSpec,
    *,
    decomposition: Tuple[int, int, int] = (8, 8, 8),
    P: int = 4,
    backend: str = "simulated",
    kernel: str | KernelPair = "epanechnikov",
    counter: Optional[WorkCounter] = None,
    timer: Optional[PhaseTimer] = None,
    memory_budget_bytes: Optional[int] = None,
    bandwidth: Optional[BandwidthModel] = None,
) -> STKDEResult:
    """Point decomposition with critical-path replication (PB-SYM-PD-REP)."""
    if P < 1:
        raise ValueError("P must be >= 1")
    kern = get_kernel(kernel)
    counter = counter if counter is not None else WorkCounter()
    timer = timer if timer is not None else PhaseTimer()
    bw = bandwidth or BandwidthModel()

    dec = BlockDecomposition.adjusted_for_pd(grid, *decomposition)
    norm = grid.normalization(points.n)

    with timer.phase("bin"):
        binning = dec.bin_points_owner(points)
        occupied = [int(b) for b in binning.occupied()]
        loads: Dict[int, float] = {
            bid: float(len(binning.points_in(bid))) for bid in occupied
        }

    with timer.phase("plan"):
        order = load_order(occupied, loads)
        coloring = greedy_coloring(dec, occupied, order, method="load-aware")
        adjacency = occupied_neighbor_map(dec, occupied)
        base_graph, id_map = build_task_graph(coloring, adjacency, loads)
        blocks_sorted = sorted(id_map, key=id_map.get)

        c_pt, c_vox = _calibrate(grid, points, kern, norm)
        weights = [loads[bid] * c_pt for bid in blocks_sorted]
        halos = [
            dec.halo_window(*dec.block_coords(bid)).volume for bid in blocks_sorted
        ]
        overheads = [2.0 * h * c_vox for h in halos]
        max_reps = [max(1, int(loads[bid])) for bid in blocks_sorted]
        replicas, tinf_before, tinf_after = plan_replication(
            weights, overheads, base_graph.succs, base_graph.preds, P, max_reps
        )

    # Memory: every replicated block holds r private halo buffers.
    extra_bytes = sum(
        replicas[k] * halos[k] * 8 for k in range(len(blocks_sorted)) if replicas[k] > 1
    )
    check_memory_budget(
        grid.grid_bytes + extra_bytes,
        memory_budget_bytes,
        f"PB-SYM-PD-REP {dec.shape} with P={P}",
    )

    # ------------------------------------------------------------------
    # Build the expanded task list + graph.
    # ------------------------------------------------------------------
    vol = np.empty(grid.shape, dtype=np.float64)
    slabs = _slab_slices(grid.Gx, P)
    init_counters = [WorkCounter() for _ in range(P)]

    def make_init(p: int):
        def fn() -> None:
            vol[slabs[p]].fill(0.0)
            init_counters[p].init_writes += vol[slabs[p]].size

        return fn

    init_tasks = [ExecTask(make_init(p), label=("init", p)) for p in range(P)]

    tasks: List[ExecTask] = []
    succs: List[List[int]] = []
    preds: List[List[int]] = []
    entry_nodes: Dict[int, List[int]] = {}  # base task -> expanded entries
    exit_node: Dict[int, int] = {}  # base task -> expanded exit
    task_counters: List[WorkCounter] = []

    def add_task(t: ExecTask) -> int:
        tasks.append(t)
        succs.append([])
        preds.append([])
        task_counters.append(WorkCounter())
        return len(tasks) - 1

    for k, bid in enumerate(blocks_sorted):
        a, b, c = dec.block_coords(bid)
        idx = binning.points_in(bid)
        coords = points.coords[idx]
        r = replicas[k]
        if r == 1:
            tid = add_task(ExecTask(lambda: None, weight_hint=weights[k],
                                    color=coloring.colors[bid], label=("block", bid)))

            def direct_fn(coords=coords, tid=tid):
                stamp_points_sym(vol, grid, kern, coords, norm, task_counters[tid])
                task_counters[tid].points_processed += len(coords)

            tasks[tid].fn = direct_fn
            entry_nodes[k] = [tid]
            exit_node[k] = tid
        else:
            halo = dec.halo_window(a, b, c)
            buffers: List[Optional[np.ndarray]] = [None] * r
            bounds = [(len(coords) * j) // r for j in range(r + 1)]
            rep_ids = []
            for j in range(r):
                chunk = coords[bounds[j] : bounds[j + 1]]

                tid = add_task(
                    ExecTask(
                        lambda: None,
                        weight_hint=weights[k] / r + overheads[k],
                        color=coloring.colors[bid],
                        label=("replica", bid, j),
                    )
                )

                def rep_fn(chunk=chunk, j=j, halo=halo, tid=tid, buffers=buffers):
                    buf = np.empty(halo.shape, dtype=np.float64)
                    buf.fill(0.0)
                    task_counters[tid].init_writes += buf.size
                    stamp_points_sym(
                        buf, grid, kern, chunk, norm, task_counters[tid],
                        clip=halo, vol_origin=(halo.x0, halo.y0, halo.t0),
                    )
                    task_counters[tid].points_processed += len(chunk)
                    buffers[j] = buf

                tasks[tid].fn = rep_fn
                rep_ids.append(tid)

            red_id = add_task(
                ExecTask(
                    lambda: None,
                    weight_hint=overheads[k],
                    color=coloring.colors[bid],
                    label=("reduce", bid),
                )
            )

            def red_fn(halo=halo, buffers=buffers, red_id=red_id, r=r):
                target = vol[halo.slices()]
                for j in range(r):
                    target += buffers[j]  # type: ignore[operator]
                    buffers[j] = None  # free replica memory promptly
                task_counters[red_id].reduce_adds += r * target.size

            tasks[red_id].fn = red_fn
            for tid in rep_ids:
                succs[tid].append(red_id)
                preds[red_id].append(tid)
            entry_nodes[k] = rep_ids
            exit_node[k] = red_id

    # Wire base-graph dependencies through entry/exit nodes.
    for k in range(len(blocks_sorted)):
        for s in base_graph.succs[k]:
            src = exit_node[k]
            for dst in entry_nodes[s]:
                succs[src].append(dst)
                preds[dst].append(src)

    graph = TaskGraph([t.weight_hint for t in tasks], succs, preds,
                      labels=[t.label for t in tasks])

    if backend == "threads":
        with timer.phase("init"):
            run_serial(init_tasks)
        with timer.phase("compute"):
            wall = run_threaded(
                tasks, graph, P, priority=lambda v: (-tasks[v].weight_hint, v)
            )
        makespan = (
            timer.seconds["bin"] + timer.seconds["plan"]
            + timer.seconds["init"] + wall
        )
        phase_ms = {"init": timer.seconds["init"], "compute": wall}
    elif backend in ("serial", "simulated"):
        with timer.phase("init"):
            run_serial(init_tasks)
        with timer.phase("compute"):
            run_serial(tasks, graph)
        init_ms = saturated_makespan([t.measured for t in init_tasks], P, bw)
        measured = [t.measured for t in tasks]
        mgraph = TaskGraph(measured, graph.succs, graph.preds)
        sched = list_schedule(mgraph, P, priority=lambda v: (-measured[v], v))
        overhead_s = timer.seconds["bin"] + timer.seconds["plan"]
        if backend == "serial":
            makespan = overhead_s + sum(t.measured for t in init_tasks) + sum(measured)
            phase_ms = {
                "init": sum(t.measured for t in init_tasks),
                "compute": sum(measured),
            }
        else:
            makespan = overhead_s + init_ms + sched.makespan
            phase_ms = {"init": init_ms, "compute": sched.makespan}
    else:
        raise ValueError(f"unknown backend {backend!r}")

    for c in init_counters:
        counter.merge(c)
    for c in task_counters:
        counter.merge(c)

    n_replicated = sum(1 for r in replicas if r > 1)
    return STKDEResult(
        Volume(vol, grid),
        "pb-sym-pd-rep",
        timer,
        counter,
        meta={
            "P": P,
            "backend": backend,
            "decomposition": dec.shape,
            "requested_decomposition": tuple(decomposition),
            "makespan": makespan,
            "phase_makespans": phase_ms,
            "replicas": dict(zip(blocks_sorted, replicas)),
            "blocks_replicated": n_replicated,
            "max_replication": max(replicas) if replicas else 1,
            "tinf_planned_before": tinf_before,
            "tinf_planned_after": tinf_after,
            "extra_bytes": extra_bytes,
            "occupied_blocks": len(blocks_sorted),
        },
    )
