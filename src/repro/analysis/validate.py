"""Cross-algorithm output validation.

The point-based and parallel algorithms are algebraic rearrangements of
the voxel-based definition; their volumes must agree to floating-point
reassociation error.  These helpers make that check a first-class
operation (used by the test-suite, the benchmark harness — which validates
before it times — and end users sanity-checking a new configuration).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from ..algorithms.base import STKDEResult
from ..core.grid import Volume

__all__ = ["ComparisonReport", "compare_volumes", "assert_equivalent", "check_density"]

VolumeLike = Union[Volume, STKDEResult, np.ndarray]


def _data_of(v: VolumeLike) -> np.ndarray:
    if isinstance(v, STKDEResult):
        return v.volume.data
    if isinstance(v, Volume):
        return v.data
    return np.asarray(v)


@dataclass(frozen=True)
class ComparisonReport:
    """Element-wise agreement statistics between two density volumes."""

    max_abs_diff: float
    max_rel_diff: float
    rms_diff: float
    allclose: bool

    def describe(self) -> str:
        status = "MATCH" if self.allclose else "MISMATCH"
        return (
            f"{status}: max|d|={self.max_abs_diff:.3e} "
            f"max rel={self.max_rel_diff:.3e} rms={self.rms_diff:.3e}"
        )


def compare_volumes(
    a: VolumeLike,
    b: VolumeLike,
    *,
    rtol: float = 1e-10,
    atol: float = 1e-14,
) -> ComparisonReport:
    """Compare two volumes; raises on shape mismatch."""
    da, db = _data_of(a), _data_of(b)
    if da.shape != db.shape:
        raise ValueError(f"shape mismatch: {da.shape} vs {db.shape}")
    diff = np.abs(da - db)
    max_abs = float(diff.max()) if diff.size else 0.0
    scale = np.maximum(np.abs(da), np.abs(db))
    with np.errstate(invalid="ignore", divide="ignore"):
        rel = np.where(scale > 0, diff / scale, 0.0)
    max_rel = float(rel.max()) if rel.size else 0.0
    rms = float(np.sqrt(np.mean(diff**2))) if diff.size else 0.0
    ok = bool(np.allclose(da, db, rtol=rtol, atol=atol))
    return ComparisonReport(max_abs, max_rel, rms, ok)


def assert_equivalent(
    a: VolumeLike,
    b: VolumeLike,
    *,
    rtol: float = 1e-10,
    atol: float = 1e-14,
    context: str = "",
) -> ComparisonReport:
    """Raise ``AssertionError`` (with diagnostics) unless volumes agree."""
    report = compare_volumes(a, b, rtol=rtol, atol=atol)
    if not report.allclose:
        prefix = f"{context}: " if context else ""
        raise AssertionError(prefix + report.describe())
    return report


def check_density(v: VolumeLike, *, expect_mass: Optional[float] = None,
                  mass_rel_tol: float = 0.5) -> None:
    """Sanity checks every density volume must pass.

    * all values finite and non-negative;
    * optionally, total mass within ``mass_rel_tol`` of ``expect_mass``
      (interior-heavy instances integrate to ~1; boundary truncation only
      loses mass).
    """
    data = _data_of(v)
    if not np.isfinite(data).all():
        raise AssertionError("density volume contains non-finite values")
    if (data < 0).any():
        raise AssertionError("density volume contains negative values")
    if expect_mass is not None:
        if not isinstance(v, (Volume, STKDEResult)):
            raise ValueError("mass check requires a Volume or STKDEResult")
        vol = v.volume if isinstance(v, STKDEResult) else v
        mass = vol.total_mass
        if abs(mass - expect_mass) > mass_rel_tol * abs(expect_mass):
            raise AssertionError(
                f"total mass {mass:.4f} outside {mass_rel_tol:.0%} of "
                f"{expect_mass:.4f}"
            )
