"""Parametric execution model and strategy selector (Section 6.5).

The paper closes its evaluation with: *"What we need to do is to develop a
parametric model for the problem that will take into account memory
availability, cost of memory initialization, expected cost of computing
the kernel density.  Using that model finding the best execution strategy
becomes a combinatorial problem."*  This module implements that model.

A :class:`MachineModel` holds a handful of calibrated unit costs (memory
write rate, per-point dispatch overhead, per-cell stamping rate, the fixed
per-batch cost of one stamping-engine invocation, the DRAM-saturation
cap).  Calibration runs through the **batched stamping engine** — the same
code path the algorithms execute — so the model prices batched evaluation
natively: a strategy that splits the points into many small per-block
batches (DD/PD with fine decompositions) is charged one ``c_batch`` per
block on top of the amortised per-point cost, which is exactly the
dispatch overhead the engine's cohort batching removed from the interior
of each batch.  A :class:`CostModel` combines them with an
instance's geometry to predict the runtime of every strategy and
configuration — reusing the *same* scheduling machinery (binning,
colouring, critical paths, list scheduling) the real algorithms use, only
with analytic task weights instead of measured ones.  The selector then
answers the combinatorial question: *which strategy, at which
decomposition, for this instance, this machine, this P?* — subject to the
memory budget, which is what rules DR out on sparse-huge instances.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.grid import GridSpec, PointSet
from ..core.instrument import WorkCounter
from ..core.invariants import stamp_extent
from ..core.kernels import get_kernel
from ..parallel.color import (
    greedy_coloring,
    load_order,
    occupied_neighbor_map,
    parity_coloring,
)
from ..parallel.partition import BlockDecomposition
from ..parallel.schedule import (
    BandwidthModel,
    TaskGraph,
    barrier_schedule,
    build_task_graph,
    list_schedule,
)
from ..parallel.rep import plan_replication

__all__ = ["MachineModel", "CostModel", "Prediction", "select_strategy"]


@dataclass(frozen=True)
class MachineModel:
    """Calibrated unit costs of the executing machine.

    Attributes
    ----------
    c_mem:
        Seconds per voxel of streaming memory write (init / reduce).
    c_point:
        Per-point cost of batched stamping beyond the per-cell arithmetic
        (window math, cohort bookkeeping, scatter indexing) — the residue
        of the dispatch cost the engine amortises across a batch.
    c_cell:
        Seconds per stamped cell (disk cell, bar cell, or cylinder
        multiply-add — one blended rate).
    c_batch:
        Fixed cost of one stamping-engine invocation (window derivation,
        cohort grouping, slab setup), paid once per batch regardless of
        size.  This is what penalises very fine decompositions: every
        occupied block is one batch.
    bandwidth_cap:
        Effective parallelism of memory-bound phases (Section 6.3: ~3).
    """

    c_mem: float
    c_point: float
    c_cell: float
    c_batch: float = 0.0
    bandwidth_cap: float = 3.0

    @classmethod
    def calibrate(cls, seed: int = 0) -> "MachineModel":
        """Measure unit costs with a handful of micro-probes (~0.2 s total).

        Probes run through the batched engine (via
        :func:`~repro.algorithms.pb_sym.stamp_points_sym`), so the
        calibrated rates describe the code path the algorithms actually
        execute.  Two batch sizes at the small bandwidth separate the
        per-batch fixed cost from the per-point slope; two bandwidths at
        the large batch separate per-point dispatch from per-cell work.
        """
        rng = np.random.default_rng(seed)
        # Streaming memory write rate, measured warm: the first fill
        # materialises the pages (an allocator artifact that would inflate
        # the rate 3-5x and destabilise every memory-vs-compute trade the
        # model prices), the timed fills measure steady-state bandwidth.
        buf = np.empty(1 << 21, dtype=np.float64)
        buf.fill(0.0)
        c_mem = math.inf
        for _ in range(3):
            t0 = time.perf_counter()
            buf.fill(0.0)
            c_mem = min(c_mem, (time.perf_counter() - t0) / buf.size)

        from ..algorithms.pb_sym import stamp_points_sym
        from ..core.grid import DomainSpec

        def probe(H: int, n: int) -> Tuple[float, int]:
            """Best-of-3 seconds to stamp one batch of ``n`` interior points."""
            g = GridSpec(DomainSpec.from_voxels(4 * H + 8, 4 * H + 8, 4 * H + 8),
                         hs=float(H), ht=float(H))
            pts = rng.uniform(2 * H, 2 * H + 8, size=(n, 3))
            vol = np.zeros(g.shape)
            kern = get_kernel("epanechnikov")
            best = math.inf
            for _ in range(3):
                c = WorkCounter()
                t0 = time.perf_counter()
                stamp_points_sym(vol, g, kern, pts, 1.0, c)
                best = min(best, time.perf_counter() - t0)
            disk, bar = stamp_extent(g)
            cells = disk * disk + bar + disk * disk * bar
            return best, cells

        # The slope probes span a 16x batch-size gap so their time
        # difference stays far above scheduler jitter — a collapsed slope
        # would zero c_point and make every predicted block weight
        # degenerate.
        n_small, n_large = 64, 1024
        probe(2, 8)  # warm the engine code path before timing
        t_small, cells_small = probe(2, n_small)
        t_large, _ = probe(2, n_large)
        t_cell_lo, _ = probe(2, 256)
        t_cell_hi, cells_large = probe(10, 256)
        c_cell = max(
            (t_cell_hi - t_cell_lo) / (256 * (cells_large - cells_small)), 1e-12
        )
        # Per-point slope at fixed bandwidth removes the per-batch constant.
        slope = max((t_large - t_small) / (n_large - n_small), 1e-9)
        c_point = max(slope - c_cell * cells_small, 1e-9)
        c_batch = max(t_small - n_small * slope, 0.0)
        return cls(c_mem=c_mem, c_point=c_point, c_cell=c_cell, c_batch=c_batch)


@dataclass
class Prediction:
    """Predicted runtime of one (strategy, configuration) pair."""

    algorithm: str
    P: int
    seconds: float
    decomposition: Optional[Tuple[int, int, int]] = None
    feasible: bool = True
    reason: str = ""

    def describe(self) -> str:
        dec = f" dec={self.decomposition}" if self.decomposition else ""
        feas = "" if self.feasible else f"  [infeasible: {self.reason}]"
        return f"{self.algorithm:16s} P={self.P:<3d}{dec:18s} {self.seconds * 1e3:9.2f} ms{feas}"


class CostModel:
    """Analytic runtime predictions for every strategy on one instance."""

    def __init__(
        self,
        grid: GridSpec,
        points: PointSet,
        machine: Optional[MachineModel] = None,
        memory_budget_bytes: Optional[int] = None,
    ) -> None:
        self.grid = grid
        self.points = points
        self.machine = machine or MachineModel.calibrate()
        self.memory_budget_bytes = memory_budget_bytes
        self._bw = BandwidthModel(cap=self.machine.bandwidth_cap)
        disk, bar = stamp_extent(grid)
        #: Cells touched per interior point stamp: disk eval + bar eval +
        #: cylinder multiply-add.
        self.cells_per_point = disk * disk + bar + disk * disk * bar

    # ------------------------------------------------------------------
    # Primitive phase costs
    # ------------------------------------------------------------------
    def point_cost(self, clipped_fraction: float = 1.0) -> float:
        """Predicted seconds to stamp one point (optionally clipped)."""
        m = self.machine
        return m.c_point + m.c_cell * self.cells_per_point * clipped_fraction

    def batch_cost(self, n_points: float, clipped_fraction: float = 1.0) -> float:
        """Predicted seconds for one stamping-engine batch of ``n_points``.

        The batched-evaluation cost shape: a fixed per-batch dispatch
        (``c_batch``) plus the amortised per-point cost.  Strategies that
        stamp in one large batch (sequential PB-SYM, DR shards) pay the
        constant once; block-decomposed strategies pay it per occupied
        block.
        """
        return self.machine.c_batch + n_points * self.point_cost(clipped_fraction)

    def init_seconds(self) -> float:
        return self.machine.c_mem * self.grid.n_voxels

    def init_parallel(self, P: int) -> float:
        return self.init_seconds() / self._bw.effective_procs(P)

    # ------------------------------------------------------------------
    # Per-strategy predictions
    # ------------------------------------------------------------------
    def predict_pb_sym(self) -> float:
        return self.init_seconds() + self.batch_cost(self.points.n)

    def predict_dr(self, P: int) -> Prediction:
        need = (P + 1) * self.grid.grid_bytes
        if self.memory_budget_bytes is not None and need > self.memory_budget_bytes:
            return Prediction(
                "pb-sym-dr", P, math.inf, feasible=False,
                reason=f"needs {P + 1} volume copies",
            )
        init = P * self.init_seconds() / self._bw.effective_procs(P)
        # Each worker stamps its chunk as one engine batch.
        compute = self.batch_cost(self.points.n / P)
        reduce_ = P * self.init_seconds() / self._bw.effective_procs(P)
        return Prediction("pb-sym-dr", P, init + compute + reduce_)

    def _block_loads(
        self, dec: BlockDecomposition, replicated: bool
    ) -> Tuple[Dict[int, float], float]:
        """Analytic per-block task weights (seconds) and the bin cost."""
        if replicated:
            binning = dec.bin_points_replicated(self.points)
            # Clipped stamps still tabulate full invariants along the cut
            # axis; approximate the per-replica cost with the unclipped
            # point cost scaled by a 0.6 clipping discount.
            per_pt = self.point_cost(clipped_fraction=0.6)
        else:
            binning = dec.bin_points_owner(self.points)
            per_pt = self.point_cost()
        counts = binning.counts()
        # One engine batch per occupied block: fixed c_batch + amortised
        # per-point cost (the batched-evaluation cost shape).
        c_batch = self.machine.c_batch
        loads = {
            int(b): c_batch + float(counts[b]) * per_pt
            for b in np.nonzero(counts)[0]
        }
        bin_cost = self.points.n * 2e-7 * (3.0 if replicated else 1.0)
        return loads, bin_cost

    def predict_dd(self, dec_shape: Tuple[int, int, int], P: int) -> Prediction:
        A = min(dec_shape[0], self.grid.Gx)
        B = min(dec_shape[1], self.grid.Gy)
        C = min(dec_shape[2], self.grid.Gt)
        dec = BlockDecomposition(self.grid, A, B, C)
        loads, bin_cost = self._block_loads(dec, replicated=True)
        ws = sorted(loads.values(), reverse=True)
        compute = barrier_schedule([ws], P, lpt=True)
        return Prediction(
            "pb-sym-dd", P, self.init_parallel(P) + bin_cost + compute,
            decomposition=(A, B, C),
        )

    def _pd_graph(
        self, dec: BlockDecomposition, loads: Dict[int, float], scheduler: str
    ) -> Tuple[TaskGraph, object]:
        occupied = sorted(loads)
        if scheduler == "parity":
            coloring = parity_coloring(dec, occupied)
        else:
            coloring = greedy_coloring(
                dec, occupied, load_order(occupied, loads), method="load-aware"
            )
        adjacency = occupied_neighbor_map(dec, occupied)
        graph, _ = build_task_graph(coloring, adjacency, loads)
        return graph, coloring

    def predict_pd(
        self, dec_shape: Tuple[int, int, int], P: int, scheduler: str = "parity"
    ) -> Prediction:
        dec = BlockDecomposition.adjusted_for_pd(self.grid, *dec_shape)
        loads, bin_cost = self._block_loads(dec, replicated=False)
        name = "pb-sym-pd" if scheduler == "parity" else "pb-sym-pd-sched"
        if not loads:
            return Prediction(name, P, self.init_parallel(P) + bin_cost,
                              decomposition=dec.shape)
        graph, coloring = self._pd_graph(dec, loads, scheduler)
        if scheduler == "parity":
            classes = coloring.classes()  # type: ignore[attr-defined]
            class_w = [[loads[b] for b in cls] for cls in classes]
            compute = barrier_schedule(class_w, P)
        else:
            compute = list_schedule(
                graph, P, priority=lambda v: (-graph.weights[v], v)
            ).makespan
        return Prediction(
            name, P, self.init_parallel(P) + bin_cost + compute,
            decomposition=dec.shape,
        )

    def predict_pd_rep(
        self, dec_shape: Tuple[int, int, int], P: int
    ) -> Prediction:
        dec = BlockDecomposition.adjusted_for_pd(self.grid, *dec_shape)
        loads, bin_cost = self._block_loads(dec, replicated=False)
        if not loads:
            return Prediction("pb-sym-pd-rep", P,
                              self.init_parallel(P) + bin_cost,
                              decomposition=dec.shape)
        graph, _ = self._pd_graph(dec, loads, "sched")
        blocks = sorted(loads)
        halos = [dec.halo_window(*dec.block_coords(b)).volume for b in blocks]
        overheads = [2.0 * h * self.machine.c_mem for h in halos]
        binning = dec.bin_points_owner(self.points)
        max_reps = [max(1, len(binning.points_in(b))) for b in blocks]
        replicas, _, _ = plan_replication(
            list(graph.weights), overheads, graph.succs, graph.preds, P, max_reps
        )
        extra_bytes = sum(
            replicas[k] * halos[k] * 8 for k in range(len(blocks)) if replicas[k] > 1
        )
        if (
            self.memory_budget_bytes is not None
            and self.grid.grid_bytes + extra_bytes > self.memory_budget_bytes
        ):
            return Prediction(
                "pb-sym-pd-rep", P, math.inf, decomposition=dec.shape,
                feasible=False, reason="replica buffers exceed memory budget",
            )
        eff_w = [
            graph.weights[k] / replicas[k]
            + (overheads[k] if replicas[k] > 1 else 0.0)
            for k in range(len(blocks))
        ]
        # Effective-weight graph approximates the expanded replica graph.
        g2 = TaskGraph(eff_w, graph.succs, graph.preds)
        compute = list_schedule(
            g2, P, priority=lambda v: (-g2.weights[v], v)
        ).makespan
        return Prediction(
            "pb-sym-pd-rep", P, self.init_parallel(P) + bin_cost + compute,
            decomposition=dec.shape,
        )


def select_strategy(
    grid: GridSpec,
    points: PointSet,
    P: int,
    *,
    machine: Optional[MachineModel] = None,
    memory_budget_bytes: Optional[int] = None,
    decompositions: Sequence[Tuple[int, int, int]] = ((4, 4, 4), (8, 8, 8), (16, 16, 16)),
) -> Tuple[Prediction, List[Prediction]]:
    """Solve the Section 6.5 combinatorial problem: best strategy + config.

    Returns the winning prediction and the full ranked candidate list.
    """
    model = CostModel(grid, points, machine, memory_budget_bytes)
    candidates: List[Prediction] = [model.predict_dr(P)]
    for dec in decompositions:
        candidates.append(model.predict_dd(dec, P))
        candidates.append(model.predict_pd(dec, P, scheduler="parity"))
        candidates.append(model.predict_pd(dec, P, scheduler="sched"))
        candidates.append(model.predict_pd_rep(dec, P))
    ranked = sorted(candidates, key=lambda p: p.seconds)
    feasible = [p for p in ranked if p.feasible]
    if not feasible:
        raise RuntimeError("no feasible strategy under the memory budget")
    return feasible[0], ranked
