"""Parametric execution model and strategy selector (Section 6.5).

The paper closes its evaluation with: *"What we need to do is to develop a
parametric model for the problem that will take into account memory
availability, cost of memory initialization, expected cost of computing
the kernel density.  Using that model finding the best execution strategy
becomes a combinatorial problem."*  This module implements that model.

A :class:`MachineModel` holds a handful of calibrated unit costs (memory
write rate, per-point dispatch overhead, per-cell stamping rate, the
DRAM-saturation cap).  A :class:`CostModel` combines them with an
instance's geometry to predict the runtime of every strategy and
configuration — reusing the *same* scheduling machinery (binning,
colouring, critical paths, list scheduling) the real algorithms use, only
with analytic task weights instead of measured ones.  The selector then
answers the combinatorial question: *which strategy, at which
decomposition, for this instance, this machine, this P?* — subject to the
memory budget, which is what rules DR out on sparse-huge instances.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.grid import GridSpec, PointSet
from ..core.instrument import WorkCounter
from ..core.invariants import stamp_extent
from ..core.kernels import get_kernel
from ..parallel.color import (
    greedy_coloring,
    load_order,
    occupied_neighbor_map,
    parity_coloring,
)
from ..parallel.partition import BlockDecomposition
from ..parallel.schedule import (
    BandwidthModel,
    TaskGraph,
    barrier_schedule,
    build_task_graph,
    critical_path,
    list_schedule,
)
from ..parallel.rep import plan_replication

__all__ = ["MachineModel", "CostModel", "Prediction", "select_strategy"]


@dataclass(frozen=True)
class MachineModel:
    """Calibrated unit costs of the executing machine.

    Attributes
    ----------
    c_mem:
        Seconds per voxel of streaming memory write (init / reduce).
    c_point:
        Fixed per-point dispatch cost (table setup, window clipping) —
        dominant on small-bandwidth instances.
    c_cell:
        Seconds per stamped cell (disk cell, bar cell, or cylinder
        multiply-add — one blended rate).
    bandwidth_cap:
        Effective parallelism of memory-bound phases (Section 6.3: ~3).
    """

    c_mem: float
    c_point: float
    c_cell: float
    bandwidth_cap: float = 3.0

    @classmethod
    def calibrate(cls, seed: int = 0) -> "MachineModel":
        """Measure unit costs with three micro-probes (~50 ms total)."""
        rng = np.random.default_rng(seed)
        # Memory write rate.
        buf = np.empty(1 << 21, dtype=np.float64)
        t0 = time.perf_counter()
        buf.fill(0.0)
        c_mem = (time.perf_counter() - t0) / buf.size

        # Stamp cost at two bandwidths separates fixed vs per-cell cost.
        from ..algorithms.pb_sym import stamp_points_sym
        from ..core.grid import DomainSpec

        def probe(H: int, n: int = 64) -> Tuple[float, int]:
            g = GridSpec(DomainSpec.from_voxels(4 * H + 8, 4 * H + 8, 4 * H + 8),
                         hs=float(H), ht=float(H))
            pts = rng.uniform(2 * H, 2 * H + 8, size=(n, 3))
            vol = np.zeros(g.shape)
            c = WorkCounter()
            t0 = time.perf_counter()
            stamp_points_sym(vol, g, get_kernel("epanechnikov"), pts, 1.0, c)
            dt = (time.perf_counter() - t0) / n
            disk, bar = stamp_extent(g)
            cells = disk * disk + bar + disk * disk * bar
            return dt, cells

        t_small, cells_small = probe(2)
        t_large, cells_large = probe(10)
        c_cell = max((t_large - t_small) / (cells_large - cells_small), 1e-12)
        c_point = max(t_small - c_cell * cells_small, 1e-9)
        return cls(c_mem=c_mem, c_point=c_point, c_cell=c_cell)


@dataclass
class Prediction:
    """Predicted runtime of one (strategy, configuration) pair."""

    algorithm: str
    P: int
    seconds: float
    decomposition: Optional[Tuple[int, int, int]] = None
    feasible: bool = True
    reason: str = ""

    def describe(self) -> str:
        dec = f" dec={self.decomposition}" if self.decomposition else ""
        feas = "" if self.feasible else f"  [infeasible: {self.reason}]"
        return f"{self.algorithm:16s} P={self.P:<3d}{dec:18s} {self.seconds * 1e3:9.2f} ms{feas}"


class CostModel:
    """Analytic runtime predictions for every strategy on one instance."""

    def __init__(
        self,
        grid: GridSpec,
        points: PointSet,
        machine: Optional[MachineModel] = None,
        memory_budget_bytes: Optional[int] = None,
    ) -> None:
        self.grid = grid
        self.points = points
        self.machine = machine or MachineModel.calibrate()
        self.memory_budget_bytes = memory_budget_bytes
        self._bw = BandwidthModel(cap=self.machine.bandwidth_cap)
        disk, bar = stamp_extent(grid)
        #: Cells touched per interior point stamp: disk eval + bar eval +
        #: cylinder multiply-add.
        self.cells_per_point = disk * disk + bar + disk * disk * bar

    # ------------------------------------------------------------------
    # Primitive phase costs
    # ------------------------------------------------------------------
    def point_cost(self, clipped_fraction: float = 1.0) -> float:
        """Predicted seconds to stamp one point (optionally clipped)."""
        m = self.machine
        return m.c_point + m.c_cell * self.cells_per_point * clipped_fraction

    def init_seconds(self) -> float:
        return self.machine.c_mem * self.grid.n_voxels

    def init_parallel(self, P: int) -> float:
        return self.init_seconds() / self._bw.effective_procs(P)

    # ------------------------------------------------------------------
    # Per-strategy predictions
    # ------------------------------------------------------------------
    def predict_pb_sym(self) -> float:
        return self.init_seconds() + self.points.n * self.point_cost()

    def predict_dr(self, P: int) -> Prediction:
        need = (P + 1) * self.grid.grid_bytes
        if self.memory_budget_bytes is not None and need > self.memory_budget_bytes:
            return Prediction(
                "pb-sym-dr", P, math.inf, feasible=False,
                reason=f"needs {P + 1} volume copies",
            )
        init = P * self.init_seconds() / self._bw.effective_procs(P)
        compute = self.points.n * self.point_cost() / P
        reduce_ = P * self.init_seconds() / self._bw.effective_procs(P)
        return Prediction("pb-sym-dr", P, init + compute + reduce_)

    def _block_loads(
        self, dec: BlockDecomposition, replicated: bool
    ) -> Tuple[Dict[int, float], float]:
        """Analytic per-block task weights (seconds) and the bin cost."""
        if replicated:
            binning = dec.bin_points_replicated(self.points)
            # Clipped stamps still tabulate full invariants along the cut
            # axis; approximate the per-replica cost with the unclipped
            # point cost scaled by a 0.6 clipping discount.
            per_pt = self.point_cost(clipped_fraction=0.6)
        else:
            binning = dec.bin_points_owner(self.points)
            per_pt = self.point_cost()
        counts = binning.counts()
        loads = {
            int(b): float(counts[b]) * per_pt for b in np.nonzero(counts)[0]
        }
        bin_cost = self.points.n * 2e-7 * (3.0 if replicated else 1.0)
        return loads, bin_cost

    def predict_dd(self, dec_shape: Tuple[int, int, int], P: int) -> Prediction:
        A = min(dec_shape[0], self.grid.Gx)
        B = min(dec_shape[1], self.grid.Gy)
        C = min(dec_shape[2], self.grid.Gt)
        dec = BlockDecomposition(self.grid, A, B, C)
        loads, bin_cost = self._block_loads(dec, replicated=True)
        ws = sorted(loads.values(), reverse=True)
        compute = barrier_schedule([ws], P, lpt=True)
        return Prediction(
            "pb-sym-dd", P, self.init_parallel(P) + bin_cost + compute,
            decomposition=(A, B, C),
        )

    def _pd_graph(
        self, dec: BlockDecomposition, loads: Dict[int, float], scheduler: str
    ) -> Tuple[TaskGraph, object]:
        occupied = sorted(loads)
        if scheduler == "parity":
            coloring = parity_coloring(dec, occupied)
        else:
            coloring = greedy_coloring(
                dec, occupied, load_order(occupied, loads), method="load-aware"
            )
        adjacency = occupied_neighbor_map(dec, occupied)
        graph, _ = build_task_graph(coloring, adjacency, loads)
        return graph, coloring

    def predict_pd(
        self, dec_shape: Tuple[int, int, int], P: int, scheduler: str = "parity"
    ) -> Prediction:
        dec = BlockDecomposition.adjusted_for_pd(self.grid, *dec_shape)
        loads, bin_cost = self._block_loads(dec, replicated=False)
        name = "pb-sym-pd" if scheduler == "parity" else "pb-sym-pd-sched"
        if not loads:
            return Prediction(name, P, self.init_parallel(P) + bin_cost,
                              decomposition=dec.shape)
        graph, coloring = self._pd_graph(dec, loads, scheduler)
        if scheduler == "parity":
            classes = coloring.classes()  # type: ignore[attr-defined]
            class_w = [[loads[b] for b in cls] for cls in classes]
            compute = barrier_schedule(class_w, P)
        else:
            compute = list_schedule(
                graph, P, priority=lambda v: (-graph.weights[v], v)
            ).makespan
        return Prediction(
            name, P, self.init_parallel(P) + bin_cost + compute,
            decomposition=dec.shape,
        )

    def predict_pd_rep(
        self, dec_shape: Tuple[int, int, int], P: int
    ) -> Prediction:
        dec = BlockDecomposition.adjusted_for_pd(self.grid, *dec_shape)
        loads, bin_cost = self._block_loads(dec, replicated=False)
        if not loads:
            return Prediction("pb-sym-pd-rep", P,
                              self.init_parallel(P) + bin_cost,
                              decomposition=dec.shape)
        graph, _ = self._pd_graph(dec, loads, "sched")
        blocks = sorted(loads)
        halos = [dec.halo_window(*dec.block_coords(b)).volume for b in blocks]
        overheads = [2.0 * h * self.machine.c_mem for h in halos]
        binning = dec.bin_points_owner(self.points)
        max_reps = [max(1, len(binning.points_in(b))) for b in blocks]
        replicas, _, _ = plan_replication(
            list(graph.weights), overheads, graph.succs, graph.preds, P, max_reps
        )
        extra_bytes = sum(
            replicas[k] * halos[k] * 8 for k in range(len(blocks)) if replicas[k] > 1
        )
        if (
            self.memory_budget_bytes is not None
            and self.grid.grid_bytes + extra_bytes > self.memory_budget_bytes
        ):
            return Prediction(
                "pb-sym-pd-rep", P, math.inf, decomposition=dec.shape,
                feasible=False, reason="replica buffers exceed memory budget",
            )
        eff_w = [
            graph.weights[k] / replicas[k]
            + (overheads[k] if replicas[k] > 1 else 0.0)
            for k in range(len(blocks))
        ]
        # Effective-weight graph approximates the expanded replica graph.
        g2 = TaskGraph(eff_w, graph.succs, graph.preds)
        compute = list_schedule(
            g2, P, priority=lambda v: (-g2.weights[v], v)
        ).makespan
        return Prediction(
            "pb-sym-pd-rep", P, self.init_parallel(P) + bin_cost + compute,
            decomposition=dec.shape,
        )


def select_strategy(
    grid: GridSpec,
    points: PointSet,
    P: int,
    *,
    machine: Optional[MachineModel] = None,
    memory_budget_bytes: Optional[int] = None,
    decompositions: Sequence[Tuple[int, int, int]] = ((4, 4, 4), (8, 8, 8), (16, 16, 16)),
) -> Tuple[Prediction, List[Prediction]]:
    """Solve the Section 6.5 combinatorial problem: best strategy + config.

    Returns the winning prediction and the full ranked candidate list.
    """
    model = CostModel(grid, points, machine, memory_budget_bytes)
    candidates: List[Prediction] = [model.predict_dr(P)]
    for dec in decompositions:
        candidates.append(model.predict_dd(dec, P))
        candidates.append(model.predict_pd(dec, P, scheduler="parity"))
        candidates.append(model.predict_pd(dec, P, scheduler="sched"))
        candidates.append(model.predict_pd_rep(dec, P))
    ranked = sorted(candidates, key=lambda p: p.seconds)
    feasible = [p for p in ranked if p.feasible]
    if not feasible:
        raise RuntimeError("no feasible strategy under the memory budget")
    return feasible[0], ranked
