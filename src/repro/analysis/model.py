"""Parametric execution model and strategy selector (Section 6.5).

The paper closes its evaluation with: *"What we need to do is to develop a
parametric model for the problem that will take into account memory
availability, cost of memory initialization, expected cost of computing
the kernel density.  Using that model finding the best execution strategy
becomes a combinatorial problem."*  This module implements that model.

A :class:`MachineModel` holds a handful of calibrated unit costs (memory
write rate, per-point dispatch overhead, per-cell stamping rate, the fixed
per-batch cost of one stamping-engine invocation, the DRAM-saturation
cap).  Calibration runs through the **batched stamping engine** — the same
code path the algorithms execute — so the model prices batched evaluation
natively: a strategy that splits the points into many small per-block
batches (DD/PD with fine decompositions) is charged one ``c_batch`` per
block on top of the amortised per-point cost, which is exactly the
dispatch overhead the engine's cohort batching removed from the interior
of each batch.  A :class:`CostModel` combines them with an
instance's geometry to predict the runtime of every strategy and
configuration — reusing the *same* scheduling machinery (binning,
colouring, critical paths, list scheduling) the real algorithms use, only
with analytic task weights instead of measured ones.  The selector then
answers the combinatorial question: *which strategy, at which
decomposition, for this instance, this machine, this P?* — subject to the
memory budget, which is what rules DR out on sparse-huge instances.
"""

from __future__ import annotations

import dataclasses
import json
import math
import time
from dataclasses import dataclass, field
import typing
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..core.grid import GridSpec, PointSet
from ..core.instrument import WorkCounter
from ..core.invariants import stamp_extent
from ..core.kernels import get_kernel
from ..core.regions import auto_slab_voxels, plan_stamp_shards
from ..core.stamping import batch_windows
from ..parallel.color import (
    greedy_coloring,
    load_order,
    occupied_neighbor_map,
    parity_coloring,
)
from ..parallel.partition import BlockDecomposition
from ..parallel.schedule import (
    BandwidthModel,
    TaskGraph,
    barrier_schedule,
    build_task_graph,
    list_schedule,
)
from ..parallel.rep import plan_replication

__all__ = [
    "MachineModel",
    "CostModel",
    "Prediction",
    "SlidePrediction",
    "MergePrediction",
    "RecoveryPrediction",
    "select_strategy",
]


@dataclass(frozen=True)
class MachineModel:
    """Calibrated unit costs of the executing machine.

    Attributes
    ----------
    c_mem:
        Seconds per voxel of streaming memory write (init / reduce).
    c_point:
        Per-point cost of batched stamping beyond the per-cell arithmetic
        (window math, cohort bookkeeping, scatter indexing) — the residue
        of the dispatch cost the engine amortises across a batch.
    c_cell:
        Seconds per stamped cell (disk cell, bar cell, or cylinder
        multiply-add — one blended rate).
    c_batch:
        Fixed cost of one stamping-engine invocation (window derivation,
        cohort grouping, slab setup), paid once per batch regardless of
        size.  This is what penalises very fine decompositions: every
        occupied block is one batch.
    c_pair:
        Seconds per (voxel, point) pair of the region engine's voxel-tile
        path (distance test + both kernel evaluations + masked
        multiply-add) — the unit cost of VB/VB-DEC.
    c_tile:
        Fixed cost of one voxel-tile accumulation
        (:func:`repro.core.regions.accumulate_voxel_tile` dispatch,
        offset setup, scatter), paid once per tile batch.
    bandwidth_cap:
        Effective parallelism of memory-bound phases (Section 6.3: ~3).
    c_lookup:
        Seconds per trilinear volume sample
        (:func:`repro.serve.engine.sample_volume`) — the per-query unit
        cost of the serving layer's volume-lookup backend (eight gathered
        reads plus the blend).
    c_qgroup:
        Fixed cost of one query cell-group in the *per-group* direct-sum
        walk (:func:`repro.serve.engine.direct_sum_grouped`): candidate
        gather plus the dispatch of one small tabulation.  Retained for
        pricing the legacy walk; the cohort engine's dispatch is priced by
        ``c_qcohort`` / ``c_qprobe`` instead.
    c_qcohort:
        Fixed cost of one candidate-count cohort in the cohort-vectorised
        direct-sum engine (:func:`repro.serve.engine.direct_sum`): one
        flat gather assembly plus one tabulation dispatch.  Cells (and all
        their queries) sharing a candidate count share one cohort, so
        scattered batches pay ~#distinct-counts dispatches instead of
        ~one per query — the read-side analogue of ``c_batch``.
    c_qprobe:
        Per-(cell-group x segment) cost of probing the index's CSR runs
        (vectorised ``searchsorted`` into one segment's sorted cells).
        Charged ``groups * segments`` per batch: the price of keeping the
        index incremental as per-batch segments rather than one monolith.
    c_qrow:
        Seconds per storage row copied by the index's row-movement
        maintenance (segment merging, compaction-debt relocation) —
        coordinate gather plus permutation remap, no re-bucketing.  What
        :meth:`CostModel.predict_merge` charges consolidation with.
    c_msg:
        Fixed cost of one coordinator-to-worker message round-trip over a
        ``multiprocessing`` pipe (header pickle, syscalls, wakeup) — the
        per-shard dispatch constant of scatter/gather serving, probed by
        :func:`repro.serve.calibrate.calibrate_serving`.
    c_qser:
        Seconds per float64 row serialized across the process boundary
        (pickle + pipe transfer, both directions averaged) — the
        per-row marginal cost a scattered query batch and its gathered
        partials pay on top of ``c_msg``.
    c_qsample:
        Seconds per candidate row drawn and evaluated by the approximate
        backend (:func:`repro.serve.engine.approx_sum`): weighted run
        draw, uniform row pick, gather, masked tabulation and the
        estimator update, amortised over the sample.  Probed by
        :func:`repro.serve.calibrate.calibrate_serving`.
    c_qbound:
        Seconds per (query x candidate run) contribution bound the
        approximate backend prices its sampling distribution with —
        charged ``9 * segments`` per query, the O(runs) fixed cost the
        sampler pays before any draw.
    c_spawn:
        Seconds to stand up one spawn-context worker process (fork-exec,
        interpreter + import start, pipe handshake) — the fixed floor of
        a supervised shard respawn, probed by
        :func:`repro.serve.calibrate.calibrate_recovery` and charged
        once per restart by :meth:`CostModel.predict_recovery`.
    backend_costs:
        Per-compute-backend overrides of the scalar unit costs, keyed
        ``{backend_name: {field_name: seconds}}`` — today ``c_pair``,
        ``c_qcohort`` and ``c_qsample``, probed per registered backend by
        :func:`repro.serve.calibrate.calibrate_serving`.  The flat scalar
        fields describe the reference backend (``numpy-ref``); accessors
        fall back to them for any backend or field without an override,
        so an uncalibrated model prices every backend identically and
        ``compute="auto"`` routing degrades to the default backend.
    """

    #: Unit-cost fields a backend entry may override.
    BACKEND_KEYED: typing.ClassVar[Tuple[str, ...]] = (
        "c_pair", "c_qcohort", "c_qsample",
    )

    c_mem: float
    c_point: float
    c_cell: float
    c_batch: float = 0.0
    c_pair: float = 0.0
    c_tile: float = 0.0
    bandwidth_cap: float = 3.0
    c_lookup: float = 0.0
    c_qgroup: float = 0.0
    c_qcohort: float = 0.0
    c_qprobe: float = 0.0
    c_qrow: float = 0.0
    c_msg: float = 0.0
    c_qser: float = 0.0
    c_qsample: float = 0.0
    c_qbound: float = 0.0
    c_spawn: float = 0.0
    backend_costs: Optional[Mapping[str, Mapping[str, float]]] = None

    # ------------------------------------------------------------------
    # Per-backend unit costs
    # ------------------------------------------------------------------
    def backend_cost(self, name: str, compute: Optional[str] = None) -> float:
        """Unit cost ``name`` for compute backend ``compute``.

        Falls back to the flat scalar field — which describes the
        reference backend — when ``compute`` is ``None``, unprobed, or
        the field has no override for it.
        """
        if compute is not None and self.backend_costs:
            per = self.backend_costs.get(compute)
            if per is not None and name in per:
                return float(per[name])
        return float(getattr(self, name))

    def with_backend_costs(
        self, costs: Mapping[str, Mapping[str, float]]
    ) -> "MachineModel":
        """A copy with per-backend overrides merged over existing ones."""
        merged: Dict[str, Dict[str, float]] = {
            k: dict(v) for k, v in (self.backend_costs or {}).items()
        }
        for backend, per in costs.items():
            merged.setdefault(backend, {}).update(
                {k: float(v) for k, v in per.items()}
            )
        return dataclasses.replace(self, backend_costs=merged)

    def probed_backends(self) -> Tuple[str, ...]:
        """Backend names carrying calibrated overrides, sorted."""
        return tuple(sorted(self.backend_costs or ()))

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        """Serialize every unit cost (including backend overrides)."""
        data = dataclasses.asdict(self)
        if data.get("backend_costs") is not None:
            data["backend_costs"] = {
                k: dict(v) for k, v in data["backend_costs"].items()
            }
        return json.dumps(data, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "MachineModel":
        """Rebuild from :meth:`to_json` output.

        Tolerant of missing fields (older files predate newer unit
        costs — they fall back to the field defaults) and of unknown
        keys (newer files on older code), so persisted calibrations
        survive schema drift in both directions.
        """
        data = json.loads(text)
        if not isinstance(data, dict):
            raise ValueError("calibration JSON must be an object")
        names = {f.name for f in dataclasses.fields(cls)}
        kwargs = {k: v for k, v in data.items() if k in names}
        bc = kwargs.get("backend_costs")
        if bc is not None:
            kwargs["backend_costs"] = {
                str(k): {str(f): float(x) for f, x in v.items()}
                for k, v in bc.items()
            }
        return cls(**kwargs)

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json() + "\n")

    @classmethod
    def load(cls, path: str) -> "MachineModel":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())

    @classmethod
    def calibrate(cls, seed: int = 0) -> "MachineModel":
        """Measure unit costs with a handful of micro-probes (~0.2 s total).

        Probes run through the batched engine (via
        :func:`~repro.algorithms.pb_sym.stamp_points_sym`), so the
        calibrated rates describe the code path the algorithms actually
        execute.  Two batch sizes at the small bandwidth separate the
        per-batch fixed cost from the per-point slope; two bandwidths at
        the large batch separate per-point dispatch from per-cell work.
        """
        rng = np.random.default_rng(seed)
        # Streaming memory write rate, measured warm: the first fill
        # materialises the pages (an allocator artifact that would inflate
        # the rate 3-5x and destabilise every memory-vs-compute trade the
        # model prices), the timed fills measure steady-state bandwidth.
        buf = np.empty(1 << 21, dtype=np.float64)
        buf.fill(0.0)
        c_mem = math.inf
        for _ in range(3):
            t0 = time.perf_counter()
            buf.fill(0.0)
            c_mem = min(c_mem, (time.perf_counter() - t0) / buf.size)

        from ..algorithms.pb_sym import stamp_points_sym
        from ..core.grid import DomainSpec

        def probe(H: int, n: int) -> Tuple[float, int]:
            """Best-of-3 seconds to stamp one batch of ``n`` interior points."""
            g = GridSpec(DomainSpec.from_voxels(4 * H + 8, 4 * H + 8, 4 * H + 8),
                         hs=float(H), ht=float(H))
            pts = rng.uniform(2 * H, 2 * H + 8, size=(n, 3))
            vol = np.zeros(g.shape)
            kern = get_kernel("epanechnikov")
            best = math.inf
            for _ in range(3):
                c = WorkCounter()
                t0 = time.perf_counter()
                stamp_points_sym(vol, g, kern, pts, 1.0, c)
                best = min(best, time.perf_counter() - t0)
            disk, bar = stamp_extent(g)
            cells = disk * disk + bar + disk * disk * bar
            return best, cells

        # The slope probes span a 16x batch-size gap so their time
        # difference stays far above scheduler jitter — a collapsed slope
        # would zero c_point and make every predicted block weight
        # degenerate.
        n_small, n_large = 64, 1024
        probe(2, 8)  # warm the engine code path before timing
        t_small, cells_small = probe(2, n_small)
        t_large, _ = probe(2, n_large)
        t_cell_lo, _ = probe(2, 256)
        t_cell_hi, cells_large = probe(10, 256)
        c_cell = max(
            (t_cell_hi - t_cell_lo) / (256 * (cells_large - cells_small)), 1e-12
        )
        # Per-point slope at fixed bandwidth removes the per-batch constant.
        slope = max((t_large - t_small) / (n_large - n_small), 1e-9)
        c_point = max(slope - c_cell * cells_small, 1e-9)
        c_batch = max(t_small - n_small * slope, 0.0)

        # Voxel-tile path (VB/VB-DEC): probe the region engine's tile
        # accumulation at two point-block sizes; the slope is the per-pair
        # rate, the intercept the fixed per-tile dispatch.
        from ..core.regions import accumulate_voxel_tile

        g_tile = GridSpec(
            DomainSpec.from_voxels(16, 16, 16), hs=4.0, ht=4.0
        )
        kern = get_kernel("epanechnikov")
        flat = np.zeros(g_tile.n_voxels)
        n_vox = 1024
        idx = np.arange(n_vox)
        X, Y, T = np.unravel_index(idx, g_tile.shape)
        cx = g_tile.domain.x0 + (X + 0.5) * g_tile.domain.sres
        cy = g_tile.domain.y0 + (Y + 0.5) * g_tile.domain.sres
        ct = g_tile.domain.t0 + (T + 0.5) * g_tile.domain.tres

        def tile_probe(n_pts: int) -> float:
            pts = rng.uniform(0, 16, size=(n_pts, 3))
            best = math.inf
            for _ in range(3):
                t0 = time.perf_counter()
                accumulate_voxel_tile(
                    flat, idx, cx, cy, ct,
                    pts[:, 0], pts[:, 1], pts[:, 2],
                    g_tile, kern, 1.0, WorkCounter(),
                )
                best = min(best, time.perf_counter() - t0)
            return best

        p_small, p_large = 64, 512
        tile_probe(8)  # warm the tile code path
        t_tile_small = tile_probe(p_small)
        t_tile_large = tile_probe(p_large)
        c_pair = max(
            (t_tile_large - t_tile_small) / (n_vox * (p_large - p_small)), 1e-12
        )
        c_tile = max(t_tile_small - n_vox * p_small * c_pair, 0.0)
        # The serving-side unit costs (c_lookup, c_qgroup, c_qcohort,
        # c_qprobe, c_qrow) are probed by repro.serve.calibrate.calibrate_serving
        # — the probes live with the code they measure, keeping analysis
        # below serve in the layering; until then CostModel.lookup_cost
        # falls back to a memory-rate estimate and direct batches price
        # the per-cohort/per-probe dispatch at zero.
        return cls(
            c_mem=c_mem, c_point=c_point, c_cell=c_cell, c_batch=c_batch,
            c_pair=c_pair, c_tile=c_tile,
        )

    @classmethod
    def nominal(cls) -> "MachineModel":
        """Representative unit costs for probe-free deterministic planning.

        Order-of-magnitude constants of a commodity core — what call
        sites that must stay deterministic and probe-free (per-batch
        slab-thickness planning inside the hot add path, unit tests) use
        instead of :meth:`calibrate`.  The *ratios* between rates drive
        every planning decision, so nominal constants pick the same side
        of each trade as a calibration on ordinary hardware.
        """
        return cls(
            c_mem=1e-9, c_point=1e-7, c_cell=2e-9, c_batch=1e-5,
            c_pair=2e-9, c_tile=1e-6, c_lookup=5e-8, c_qgroup=5e-6,
            c_qcohort=5e-6, c_qprobe=1e-6, c_qsample=1e-8, c_qbound=4e-9,
            c_spawn=0.2,
        )


@dataclass(frozen=True)
class SlidePrediction:
    """Predicted cost of one window slide, per retirement strategy.

    ``slab_seconds``
        t-slabbed retirement: subtract the expired slabs' cached boxes,
        then subtract and restamp only the straddle slab's survivors.
    ``restamp_seconds``
        The monolithic-cache baseline: subtract the batch's whole cached
        box and restamp *every* survivor.
    ``negative_seconds``
        The uncached fallback: stamp the expired events negatively
        (kernel work proportional to what *left*, no cache memory).
    """

    slab_seconds: float
    restamp_seconds: float
    negative_seconds: float

    @property
    def best(self) -> str:
        costs = {
            "slab": self.slab_seconds,
            "restamp": self.restamp_seconds,
            "negative": self.negative_seconds,
        }
        return min(costs, key=costs.get)


@dataclass(frozen=True)
class MergePrediction:
    """Predicted economics of consolidating index segments.

    ``merge_seconds`` is the one-off row-movement cost;
    ``probe_seconds_saved_per_batch`` what every future query batch
    stops paying in per-segment CSR probes; ``breakeven_batches`` how
    many batches amortise the merge (``inf`` when nothing is saved).
    """

    merge_seconds: float
    probe_seconds_saved_per_batch: float

    @property
    def breakeven_batches(self) -> float:
        if self.probe_seconds_saved_per_batch <= 0.0:
            return math.inf
        return self.merge_seconds / self.probe_seconds_saved_per_batch

    def pays_within(self, n_batches: float) -> bool:
        """Whether consolidation pays for itself within ``n_batches``."""
        return self.breakeven_batches <= n_batches


@dataclass(frozen=True)
class RecoveryPrediction:
    """Predicted MTTR of one supervised shard respawn-and-replay.

    ``spawn_seconds`` is the fixed process-standup floor (``c_spawn``),
    ``ipc_seconds`` the replay's message round-trips and row
    serialization, ``restamp_seconds`` the respawned worker re-stamping
    its live events through the batched engine.  ``seconds`` is their
    sum — what the faults bench compares against measured recovery wall
    time.
    """

    seconds: float
    spawn_seconds: float
    ipc_seconds: float
    restamp_seconds: float


@dataclass(frozen=True)
class ScatterGatherPrediction:
    """Predicted cost of answering one query batch via sharded workers.

    ``ipc_seconds`` is the process-boundary overhead (one message
    round-trip per contacted shard plus per-row serialization both ways);
    ``compute_seconds`` the slowest worker's predicted direct-sum over its
    balanced share.  ``seconds`` is their sum — what the serving planner
    compares against the single-process ``predict_direct_query``.
    """

    seconds: float
    ipc_seconds: float
    compute_seconds: float
    n_shards: int


@dataclass
class Prediction:
    """Predicted runtime of one (strategy, configuration) pair."""

    algorithm: str
    P: int
    seconds: float
    decomposition: Optional[Tuple[int, int, int]] = None
    feasible: bool = True
    reason: str = ""

    def describe(self) -> str:
        dec = f" dec={self.decomposition}" if self.decomposition else ""
        feas = "" if self.feasible else f"  [infeasible: {self.reason}]"
        return f"{self.algorithm:16s} P={self.P:<3d}{dec:18s} {self.seconds * 1e3:9.2f} ms{feas}"


class CostModel:
    """Analytic runtime predictions for every strategy on one instance."""

    def __init__(
        self,
        grid: GridSpec,
        points: PointSet,
        machine: Optional[MachineModel] = None,
        memory_budget_bytes: Optional[int] = None,
    ) -> None:
        self.grid = grid
        self.points = points
        self.machine = machine or MachineModel.calibrate()
        self.memory_budget_bytes = memory_budget_bytes
        self._bw = BandwidthModel(cap=self.machine.bandwidth_cap)
        self._materialize_cache: Dict[Optional[int], float] = {}
        disk, bar = stamp_extent(grid)
        #: Cells touched per interior point stamp: disk eval + bar eval +
        #: cylinder multiply-add.
        self.cells_per_point = disk * disk + bar + disk * disk * bar

    # ------------------------------------------------------------------
    # Primitive phase costs
    # ------------------------------------------------------------------
    def point_cost(self, clipped_fraction: float = 1.0) -> float:
        """Predicted seconds to stamp one point (optionally clipped)."""
        m = self.machine
        return m.c_point + m.c_cell * self.cells_per_point * clipped_fraction

    def batch_cost(self, n_points: float, clipped_fraction: float = 1.0) -> float:
        """Predicted seconds for one stamping-engine batch of ``n_points``.

        The batched-evaluation cost shape: a fixed per-batch dispatch
        (``c_batch``) plus the amortised per-point cost.  Strategies that
        stamp in one large batch (sequential PB-SYM, DR shards) pay the
        constant once; block-decomposed strategies pay it per occupied
        block.
        """
        return self.machine.c_batch + n_points * self.point_cost(clipped_fraction)

    def tile_cost(self, n_pairs: float, n_tiles: float = 1.0) -> float:
        """Predicted seconds for voxel-tile accumulation (VB/VB-DEC path).

        The tile-batch cost shape mirrors :meth:`batch_cost`: a fixed
        per-tile dispatch (``c_tile``) for every
        :func:`~repro.core.regions.accumulate_voxel_tile` invocation plus
        the per-(voxel, point)-pair rate — so a decomposition that shreds
        the volume into many tiny tiles is charged for the dispatch it
        actually pays.
        """
        return n_tiles * self.machine.c_tile + n_pairs * self.machine.c_pair

    def init_seconds(self) -> float:
        return self.machine.c_mem * self.grid.n_voxels

    def init_parallel(self, P: int) -> float:
        return self.init_seconds() / self._bw.effective_procs(P)

    # ------------------------------------------------------------------
    # Query-serving predictors (repro.serve planner)
    # ------------------------------------------------------------------
    @property
    def lookup_cost(self) -> float:
        """Seconds per trilinear volume sample.

        Calibrated (``c_lookup``) when available; otherwise eight gathered
        reads approximated at 4x the streaming write rate.
        """
        m = self.machine
        return m.c_lookup if m.c_lookup > 0.0 else 32.0 * m.c_mem

    def predict_direct_query(
        self,
        n_queries: int,
        total_candidates: int,
        n_groups: Optional[int] = None,
        n_cohorts: Optional[int] = None,
        n_segments: int = 1,
        compute: Optional[str] = None,
    ) -> float:
        """Predicted seconds to answer a point batch by direct kernel sums.

        The cohort-engine cost shape: one engine-shaped dispatch for the
        batch, one ``c_qcohort`` per candidate-count cohort (scattered
        batches collapse to ~#distinct-counts dispatches;
        ``n_cohorts=None`` conservatively assumes one per group), one
        ``c_qprobe`` per (cell-group x index segment) CSR probe, a
        per-query residue at the per-point rate, and the (query,
        candidate) pairs at the shared tabulation's per-pair rate — the
        direct analogue of :meth:`batch_cost` for reads.  ``compute``
        prices the tabulation at that backend's calibrated
        ``c_pair`` / ``c_qcohort`` rates (reference rates otherwise).
        """
        m = self.machine
        groups = n_queries if n_groups is None else n_groups
        cohorts = groups if n_cohorts is None else n_cohorts
        return (
            m.c_batch
            + cohorts * m.backend_cost("c_qcohort", compute)
            + groups * max(1, n_segments) * m.c_qprobe
            + n_queries * m.c_point
            + total_candidates * m.backend_cost("c_pair", compute)
        )

    def predict_grouped_query(
        self,
        n_queries: int,
        total_candidates: int,
        n_groups: Optional[int] = None,
    ) -> float:
        """Predicted seconds for the legacy per-group direct-sum walk.

        One ``c_qgroup`` dispatch per cell group — what the cohort engine
        collapses; kept so the cohort-vs-grouped trade stays priceable.
        """
        m = self.machine
        groups = n_queries if n_groups is None else n_groups
        return (
            m.c_batch
            + groups * m.c_qgroup
            + n_queries * m.c_point
            + total_candidates * m.c_pair
        )

    def predict_approx_query(
        self,
        n_queries: int,
        total_candidates: int,
        eps: float,
        n_segments: int = 1,
        compute: Optional[str] = None,
    ) -> float:
        """Predicted seconds for the ε-budgeted importance sampler.

        The sampler's cost shape (:func:`repro.serve.engine.approx_sum`):
        one batch dispatch, a ``9 * segments`` run-bound sweep per query
        (``c_qbound`` each — the O(runs) price of building the sampling
        distribution), then the sample itself at ``c_qsample`` per drawn
        row.  The expected sample size follows the variance-driven stop
        rule ``~ C / eps^2`` (C fitted to the doubling-round overshoot of
        the measured sampler), capped at the average candidate count —
        past that the engine falls back to the exact gather, so the
        approximate backend never prices above O(candidates).  Sublinear
        in candidate count exactly where the true engine is.
        """
        m = self.machine
        # Uncalibrated fallbacks mirror the measured rate ratios (a drawn
        # row costs ~5 direct pairs: RNG draws, searchsorted routing and
        # the scattered gather; a run bound ~2: clamp distances + proxy).
        c_qsample = m.backend_cost("c_qsample", compute)
        sample_rate = c_qsample if c_qsample > 0.0 else 5.0 * m.c_pair
        bound_rate = m.c_qbound if m.c_qbound > 0.0 else 2.0 * m.c_pair
        avg_cand = total_candidates / max(1, n_queries)
        s_per_q = min(avg_cand, 16.0 / (eps * eps))
        return (
            m.c_batch
            + n_queries * 9.0 * max(1, n_segments) * bound_rate
            + n_queries * s_per_q * sample_rate
            + n_queries * m.c_point
        )

    def predict_slide(
        self,
        n_expired: int,
        n_survivors: int,
        bbox_cells: int,
        *,
        batch_t_voxels: Optional[int] = None,
        expired_slab_cells: Optional[int] = None,
        straddle_cells: Optional[int] = None,
        n_straddle_survivors: Optional[int] = None,
        slab_voxels: Optional[int] = None,
    ) -> SlidePrediction:
        """Price one window slide under the three retirement strategies.

        ``n_expired`` / ``n_survivors`` describe the partially-expired
        batch, ``bbox_cells`` its monolithic cache box, and
        ``batch_t_voxels`` the batch's own t-extent (defaults to the
        whole grid — conservative for temporally localized batches, so
        pass the measured extent when known).  The slab-path arguments
        default to the geometric expectation when not measured: expired
        slabs cover the expired fraction of the box, the straddle slab
        one ``slab_voxels`` thickness (default
        :func:`~repro.core.regions.auto_slab_voxels`) of the batch's
        t-extent, and the straddle's survivors the matching share of the
        batch.  :meth:`choose_slab_voxels` sweeps this thickness to plan
        the retirement granularity per batch.  This is the trade
        :class:`~repro.core.incremental.IncrementalSTKDE` makes per slide
        — subtractions are memory-rate, restamps pay kernel work — and
        what the slide-pipeline benchmark sweeps.
        """
        m = self.machine
        total = max(n_expired + n_survivors, 1)
        slab_t = (
            auto_slab_voxels(self.grid) if slab_voxels is None
            else max(1, int(slab_voxels))
        )
        span_t = max(
            self.grid.Gt if batch_t_voxels is None else batch_t_voxels, 1
        )
        if expired_slab_cells is None:
            expired_slab_cells = int(bbox_cells * n_expired / total)
        if straddle_cells is None:
            straddle_cells = int(bbox_cells * min(1.0, slab_t / span_t))
        if n_straddle_survivors is None:
            n_straddle_survivors = min(
                n_survivors, int(total * min(1.0, slab_t / span_t))
            )
        # Slab path: expired boxes subtract at memory rate; the straddle
        # box subtracts, its survivors restamp into a fresh buffer.
        slab = m.c_mem * (expired_slab_cells + 2 * straddle_cells)
        if n_straddle_survivors:
            slab += self.batch_cost(n_straddle_survivors)
        # Monolithic baseline: whole box out, every survivor restamped
        # into a fresh (survivor-fraction-sized) box.
        restamp = m.c_mem * bbox_cells * (1 + n_survivors / total)
        if n_survivors:
            restamp += self.batch_cost(n_survivors)
        negative = self.batch_cost(n_expired) if n_expired else 0.0
        return SlidePrediction(slab, restamp, negative)

    def predict_merge(
        self, n_rows: int, n_segments: int, n_groups: int
    ) -> MergePrediction:
        """Price consolidating ``n_segments`` index segments of
        ``n_rows`` total into one.

        The merge copies rows and merge-sorts the already-computed cells
        (``c_qrow`` per row, calibrated against the real merge path; an
        8x memory-rate estimate before serving calibration) — no event is
        re-bucketed.  Every future batch walking ``n_groups`` cell groups
        then saves ``(n_segments - 1)`` CSR probes per group, which is
        what bounds steady-state probe cost for tiny-batch feeds.
        """
        m = self.machine
        row_rate = m.c_qrow if m.c_qrow > 0.0 else 8.0 * m.c_mem
        merge = m.c_batch + n_rows * row_rate
        saved = max(n_segments - 1, 0) * n_groups * m.c_qprobe
        return MergePrediction(merge, saved)

    def choose_merge_cap(
        self,
        n_rows: int,
        n_groups: int,
        batches_per_sync: float,
        caps: Tuple[int, ...] = (2, 4, 8, 16, 32, 64),
    ) -> int:
        """Pick the index merge cap that minimises steady-state cost.

        Under a sustained feed one segment arrives per sync and the merge
        policy consolidates back to ``cap // 2`` whenever the count
        exceeds ``cap``, so a cap of ``c`` merges every ``c - c//2``
        syncs, carries ``~3c/4`` live segments between merges, and each
        merge moves ~all ``n_rows`` live rows
        (:meth:`predict_merge`).  ``batches_per_sync`` is the deployment's
        observed query pressure — query batches served per mutation
        (feed rate x query rate).  Query-heavy deployments amortise
        aggressive merging through saved per-segment CSR probes; feeds
        that are rarely queried keep a lazy (large) cap and skip the row
        movement.
        """
        best_cap, best_cost = caps[0], math.inf
        for c in caps:
            period = max(c - c // 2, 1)
            merge = self.predict_merge(n_rows, c, n_groups).merge_seconds
            avg_segments = (c + c // 2) / 2.0
            probe = (
                max(batches_per_sync, 0.0)
                * n_groups * avg_segments * self.machine.c_qprobe
            )
            cost = merge / period + probe
            if cost < best_cost:
                best_cap, best_cost = c, cost
        return best_cap

    def choose_slab_voxels(
        self,
        n_batch: int,
        bbox_cells: int,
        batch_t_voxels: int,
        *,
        slide_t_voxels: int = 1,
        max_slabs: int = 16,
        candidates: Optional[Tuple[int, ...]] = None,
    ) -> int:
        """Pick the retirement-slab thickness :meth:`predict_slide` prices
        cheapest for this batch.

        Sweeps a thickness ladder around the stamp extent and prices one
        steady-state slide per candidate: a horizon advance of
        ``slide_t_voxels`` expires that share of whole slabs (each buffer
        carrying one stamp extent of t-overlap, the cost of *fine*
        slabs), subtracts and restamps one straddle slab of the candidate
        thickness (the cost of *coarse* slabs).  The geometric
        :func:`~repro.core.regions.auto_slab_voxels` default sits in the
        ladder, so this can only improve on it under the model — the
        measured 2.5x-vs-6.3x spread of the thickness sweep in
        ``BENCH_regions.json`` is exactly this trade.
        """
        span = max(1, int(batch_t_voxels))
        extent = 2 * self.grid.Ht + 1  # one stamp's t-reach in voxels
        geo = auto_slab_voxels(self.grid)
        if candidates is None:
            ladder = {
                max(1, extent // 4), max(1, extent // 2), extent,
                geo, 2 * geo,
            }
        else:
            ladder = {max(1, int(s)) for s in candidates}
        # Thickness below span/max_slabs is unreachable: the slab planner
        # would clamp the slab count, silently coarsening back.
        floor = -(-span // max(1, int(max_slabs)))
        ladder = sorted({max(s, floor) for s in ladder})
        cells_per_t = bbox_cells / span
        h = max(1, int(slide_t_voxels))
        best_s, best_cost = geo, math.inf
        for s in ladder:
            share = min(1.0, s / span)
            straddle_survivors = max(1, int(n_batch * share))
            pred = self.predict_slide(
                n_expired=int(n_batch * min(1.0, h / span)),
                n_survivors=n_batch,
                bbox_cells=bbox_cells,
                batch_t_voxels=span,
                # Whole-slab expiry at h/s slabs per slide, each buffer
                # s + one stamp extent thick.
                expired_slab_cells=int(cells_per_t * (h / s) * (s + extent)),
                straddle_cells=int(cells_per_t * min(span, s + extent)),
                n_straddle_survivors=straddle_survivors,
                slab_voxels=s,
            )
            if pred.slab_seconds < best_cost - 1e-15:
                best_s, best_cost = s, pred.slab_seconds
        return best_s

    def predict_scatter_gather(
        self,
        n_queries: int,
        total_candidates: int,
        n_shards: int,
        *,
        fanout_rows: Optional[int] = None,
        n_groups: Optional[int] = None,
        n_cohorts: Optional[int] = None,
        n_segments: int = 1,
    ) -> ScatterGatherPrediction:
        """Price answering a point batch through sharded worker processes.

        The scatter/gather cost shape: one ``c_msg`` round-trip per
        contacted shard, ``c_qser`` per scattered query row (coordinates
        out, partial density back — ``fanout_rows`` counts halo-straddling
        queries once per contacted shard; defaults to ``n_queries``), plus
        the slowest worker's :meth:`predict_direct_query` over its
        balanced ``1/P`` share of queries, candidates, and groups.  The
        serving planner compares this against the single-process direct
        prediction to decide whether a batch is worth the fan-out — small
        batches lose to the message constant, large clustered ones win
        ``P``-way kernel-sum parallelism.
        """
        m = self.machine
        P = max(1, int(n_shards))
        msg_rate = m.c_msg if m.c_msg > 0.0 else 1e-4
        ser_rate = m.c_qser if m.c_qser > 0.0 else 16.0 * m.c_mem
        rows = n_queries if fanout_rows is None else int(fanout_rows)
        ipc = 2.0 * P * msg_rate + 2.0 * rows * ser_rate
        groups = n_queries if n_groups is None else n_groups
        cohorts = groups if n_cohorts is None else n_cohorts
        compute = self.predict_direct_query(
            -(-rows // P),
            -(-int(total_candidates) // P),
            n_groups=max(1, -(-groups // P)),
            n_cohorts=max(1, min(cohorts, -(-groups // P))),
            n_segments=n_segments,
        )
        return ScatterGatherPrediction(ipc + compute, ipc, compute, P)

    def predict_recovery(
        self, n_rows: int, n_batches: int
    ) -> RecoveryPrediction:
        """Price one supervised shard respawn-and-replay (MTTR).

        The recovery cost shape mirrors what
        :class:`~repro.serve.supervisor.ShardSupervisor` actually does:
        one spawn-context process standup (``c_spawn``), then the
        mutation log replayed as ``n_batches`` request round-trips
        (``c_msg`` each, ``c_qser`` per shipped row) into a worker that
        re-stamps its ``n_rows`` live events through the batched engine
        (:meth:`batch_cost` per replayed batch).  Backoff sleeps are
        policy, not work, and are excluded — the bench reports them in
        the measured column instead.
        """
        m = self.machine
        batches = max(0, int(n_batches))
        rows = max(0, int(n_rows))
        spawn = m.c_spawn if m.c_spawn > 0.0 else 0.2
        msg_rate = m.c_msg if m.c_msg > 0.0 else 1e-4
        ser_rate = m.c_qser if m.c_qser > 0.0 else 16.0 * m.c_mem
        ipc = 2.0 * batches * msg_rate + rows * ser_rate
        restamp = batches * m.c_batch + rows * self.point_cost()
        return RecoveryPrediction(
            spawn + ipc + restamp, spawn, ipc, restamp
        )

    def predict_materialize(self, P: Optional[int] = None) -> float:
        """Predicted seconds to materialise the volume for the lookup plan.

        The serving layer routes big builds through the bbox-sharded
        threads path when it wins (``P=None`` resolves to the machine's
        CPU count), so the lookup plans are priced against the build the
        service will actually run: the cheaper of serial PB-SYM and the
        feasible threaded prediction.

        Memoized per instance: the threaded prediction plans real bbox
        shards over all ``n`` events (O(n log n)), while the answer is
        batch-independent — without the cache every cold-volume point
        plan would pay the shard planning, swamping the small direct
        batches planning is meant to keep cheap.  (Instances are rebuilt
        whenever the event set changes, so the cache cannot go stale.)
        """
        cached = self._materialize_cache.get(P)
        if cached is not None:
            return cached
        serial = self.predict_pb_sym()
        eff_P = P
        if eff_P is None:
            from ..parallel.executors import resolve_shard_count

            eff_P = resolve_shard_count("auto")
        best = serial
        if eff_P > 1:
            threaded = self.predict_pb_sym_threads(eff_P)
            if threaded.feasible:
                best = min(serial, threaded.seconds)
        self._materialize_cache[P] = best
        return best

    def predict_volume_lookup(self, n_queries: int, volume_ready: bool) -> float:
        """Predicted seconds to answer a point batch by volume sampling.

        A cold volume charges the full materialisation up front (threaded
        when that is what the service would run) — which is exactly what a
        large enough batch amortises, and what a warm (already-served)
        volume skips.
        """
        build = 0.0 if volume_ready else self.predict_materialize()
        return build + n_queries * self.lookup_cost

    def predict_direct_region(self, window) -> float:
        """Predicted seconds to stamp one served region directly.

        Prices the region buffer's first touch plus one engine batch over
        the events whose clipped stamps actually reach the window — the
        same clipping the engine performs, so sparse windows are charged
        for the few stamps they absorb, not for ``n``.
        """
        m = self.machine
        X0, X1, Y0, Y1, T0, T1 = batch_windows(
            self.grid, self.points.coords, window
        )
        cells = (
            np.maximum(X1 - X0, 0)
            * np.maximum(Y1 - Y0, 0)
            * np.maximum(T1 - T0, 0)
        )
        reaching = int(np.count_nonzero(cells))
        return (
            m.c_mem * window.volume
            + m.c_batch
            + reaching * m.c_point
            + float(cells.sum()) * m.c_cell
        )

    def predict_lookup_region(self, window, volume_ready: bool) -> float:
        """Predicted seconds to serve a region as a view of the volume.

        A warm volume serves the window as a zero-copy view (one lookup's
        worth of bookkeeping); a cold one pays materialisation first
        (threaded when that is what the service would run).
        """
        build = 0.0 if volume_ready else self.predict_materialize()
        return build + self.lookup_cost

    # ------------------------------------------------------------------
    # Per-strategy predictions
    # ------------------------------------------------------------------
    def predict_pb_sym(self) -> float:
        return self.init_seconds() + self.batch_cost(self.points.n)

    def predict_vb(
        self, voxel_chunk: int = 2048, point_block: int = 512
    ) -> Prediction:
        """Predicted runtime of gold-standard VB through the tile engine."""
        V, n = self.grid.n_voxels, self.points.n
        n_tiles = -(-V // voxel_chunk) * max(1, -(-n // point_block))
        return Prediction(
            "vb", 1, self.init_seconds() + self.tile_cost(V * n, n_tiles)
        )

    def predict_vb_dec(self, voxel_chunk: int = 2048) -> Prediction:
        """Predicted runtime of VB-DEC from the instance's actual binning.

        Reproduces the algorithm's block geometry (bandwidth-sized blocks,
        27-neighbourhood candidates) *and* its cohort-batched dispatch:
        blocks sharing a voxel count and a power-of-two-padded candidate
        width ride one ``(B, V, K)`` tile batch
        (:func:`~repro.core.regions.accumulate_voxel_tile_batch`), so the
        model charges one ``c_tile`` per cohort dispatch and the padded
        pair lanes each dispatch actually evaluates; oversized blocks keep
        the voxel-chunked per-block dispatch and its unpadded pairs — the
        constant-factor win over VB on clustered data that Section 6.2
        describes, minus the per-edge-block dispatch tax.
        """
        grid = self.grid
        bx = max(8, grid.Hs)
        bt = max(8, grid.Ht)
        nbx = -(-grid.Gx // bx)
        nby = -(-grid.Gy // bx)
        nbt = -(-grid.Gt // bt)
        vox = grid.voxels_of(self.points.coords)
        block_of = (
            (vox[:, 0] // bx) * (nby * nbt)
            + (vox[:, 1] // bx) * nbt
            + (vox[:, 2] // bt)
        )
        counts = np.bincount(block_of, minlength=nbx * nby * nbt).reshape(
            nbx, nby, nbt
        )
        # Candidate points per block: sum of the 27-neighbourhood.
        cand = np.zeros_like(counts)
        for da in (-1, 0, 1):
            for db in (-1, 0, 1):
                for dc in (-1, 0, 1):
                    src = counts[
                        max(0, -da) : nbx - max(0, da),
                        max(0, -db) : nby - max(0, db),
                        max(0, -dc) : nbt - max(0, dc),
                    ]
                    cand[
                        max(0, da) : nbx - max(0, -da),
                        max(0, db) : nby - max(0, -db),
                        max(0, dc) : nbt - max(0, -dc),
                    ] += src
        # Voxels per block (edge blocks are smaller).
        sx = np.minimum(np.arange(1, nbx + 1) * bx, grid.Gx) - np.arange(nbx) * bx
        sy = np.minimum(np.arange(1, nby + 1) * bx, grid.Gy) - np.arange(nby) * bx
        st = np.minimum(np.arange(1, nbt + 1) * bt, grid.Gt) - np.arange(nbt) * bt
        block_vox = sx[:, None, None] * sy[None, :, None] * st[None, None, :]
        occupied = cand > 0
        V = block_vox[occupied].astype(np.int64)
        K = cand[occupied].astype(np.int64)
        Kp = np.power(2, np.ceil(np.log2(np.maximum(K, 1)))).astype(np.int64)
        pair_budget = voxel_chunk * 512
        big = V * Kp > pair_budget
        # Oversized blocks: per-block voxel-chunked dispatch, real pairs.
        pairs = float((V[big] * K[big]).sum())
        n_tiles = float(np.ceil(V[big] / voxel_chunk).sum())
        # Cohort-batched blocks: one dispatch per (V, Kp) chunk of
        # pair_budget, padded candidate lanes charged as executed.
        if np.any(~big):
            keys, counts = np.unique(
                np.stack([V[~big], Kp[~big]], axis=1), axis=0,
                return_counts=True,
            )
            per = np.maximum(1, pair_budget // (keys[:, 0] * keys[:, 1]))
            n_tiles += float(np.ceil(counts / per).sum())
            pairs += float((counts * keys[:, 0] * keys[:, 1]).sum())
        bin_cost = self.points.n * 2e-7
        return Prediction(
            "vb-dec", 1,
            self.init_seconds() + bin_cost + self.tile_cost(pairs, n_tiles),
        )

    def predict_pb_sym_threads(self, P: int) -> Prediction:
        """PB-SYM on the region engine's bbox-sharded threads backend.

        Memory and reduction are charged from the *planned* shard bounding
        boxes — the same :func:`~repro.core.regions.plan_stamp_shards` the
        executor runs — not from ``P`` full private volumes, which is what
        makes this strategy feasible (and competitive) on memory-tight
        clustered instances where DR is ruled out.
        """
        plan = plan_stamp_shards(self.grid, self.points.coords, P)
        need = self.grid.grid_bytes + plan.buffer_bytes
        if self.memory_budget_bytes is not None and need > self.memory_budget_bytes:
            return Prediction(
                "pb-sym-threads", P, math.inf, feasible=False,
                reason="bbox shard buffers exceed memory budget",
            )
        m = self.machine
        eff = self._bw.effective_procs(P)
        # Serial volume init, then: buffer zeroing (memory-bound, capped),
        # the slowest shard's engine batch, and the slab reduction over the
        # union of the boxes (memory-bound, capped).
        zero = m.c_mem * plan.buffer_cells / eff
        compute = max(
            (self.batch_cost(len(s)) for s in plan.shards), default=0.0
        )
        reduce_ = m.c_mem * plan.buffer_cells / eff
        return Prediction(
            "pb-sym-threads", P,
            self.init_seconds() + zero + compute + reduce_,
        )

    def predict_dr(self, P: int) -> Prediction:
        need = (P + 1) * self.grid.grid_bytes
        if self.memory_budget_bytes is not None and need > self.memory_budget_bytes:
            return Prediction(
                "pb-sym-dr", P, math.inf, feasible=False,
                reason=f"needs {P + 1} volume copies",
            )
        init = P * self.init_seconds() / self._bw.effective_procs(P)
        # Each worker stamps its chunk as one engine batch.
        compute = self.batch_cost(self.points.n / P)
        reduce_ = P * self.init_seconds() / self._bw.effective_procs(P)
        return Prediction("pb-sym-dr", P, init + compute + reduce_)

    def _block_loads(
        self, dec: BlockDecomposition, replicated: bool
    ) -> Tuple[Dict[int, float], float]:
        """Analytic per-block task weights (seconds) and the bin cost."""
        if replicated:
            binning = dec.bin_points_replicated(self.points)
            # Clipped stamps still tabulate full invariants along the cut
            # axis; approximate the per-replica cost with the unclipped
            # point cost scaled by a 0.6 clipping discount.
            per_pt = self.point_cost(clipped_fraction=0.6)
        else:
            binning = dec.bin_points_owner(self.points)
            per_pt = self.point_cost()
        counts = binning.counts()
        # One engine batch per occupied block: fixed c_batch + amortised
        # per-point cost (the batched-evaluation cost shape).
        c_batch = self.machine.c_batch
        loads = {
            int(b): c_batch + float(counts[b]) * per_pt
            for b in np.nonzero(counts)[0]
        }
        bin_cost = self.points.n * 2e-7 * (3.0 if replicated else 1.0)
        return loads, bin_cost

    def predict_dd(self, dec_shape: Tuple[int, int, int], P: int) -> Prediction:
        A = min(dec_shape[0], self.grid.Gx)
        B = min(dec_shape[1], self.grid.Gy)
        C = min(dec_shape[2], self.grid.Gt)
        dec = BlockDecomposition(self.grid, A, B, C)
        loads, bin_cost = self._block_loads(dec, replicated=True)
        ws = sorted(loads.values(), reverse=True)
        compute = barrier_schedule([ws], P, lpt=True)
        return Prediction(
            "pb-sym-dd", P, self.init_parallel(P) + bin_cost + compute,
            decomposition=(A, B, C),
        )

    def _pd_graph(
        self, dec: BlockDecomposition, loads: Dict[int, float], scheduler: str
    ) -> Tuple[TaskGraph, object]:
        occupied = sorted(loads)
        if scheduler == "parity":
            coloring = parity_coloring(dec, occupied)
        else:
            coloring = greedy_coloring(
                dec, occupied, load_order(occupied, loads), method="load-aware"
            )
        adjacency = occupied_neighbor_map(dec, occupied)
        graph, _ = build_task_graph(coloring, adjacency, loads)
        return graph, coloring

    def predict_pd(
        self, dec_shape: Tuple[int, int, int], P: int, scheduler: str = "parity"
    ) -> Prediction:
        dec = BlockDecomposition.adjusted_for_pd(self.grid, *dec_shape)
        loads, bin_cost = self._block_loads(dec, replicated=False)
        name = "pb-sym-pd" if scheduler == "parity" else "pb-sym-pd-sched"
        if not loads:
            return Prediction(name, P, self.init_parallel(P) + bin_cost,
                              decomposition=dec.shape)
        graph, coloring = self._pd_graph(dec, loads, scheduler)
        if scheduler == "parity":
            classes = coloring.classes()  # type: ignore[attr-defined]
            class_w = [[loads[b] for b in cls] for cls in classes]
            compute = barrier_schedule(class_w, P)
        else:
            compute = list_schedule(
                graph, P, priority=lambda v: (-graph.weights[v], v)
            ).makespan
        return Prediction(
            name, P, self.init_parallel(P) + bin_cost + compute,
            decomposition=dec.shape,
        )

    def predict_pd_rep(
        self, dec_shape: Tuple[int, int, int], P: int
    ) -> Prediction:
        dec = BlockDecomposition.adjusted_for_pd(self.grid, *dec_shape)
        loads, bin_cost = self._block_loads(dec, replicated=False)
        if not loads:
            return Prediction("pb-sym-pd-rep", P,
                              self.init_parallel(P) + bin_cost,
                              decomposition=dec.shape)
        graph, _ = self._pd_graph(dec, loads, "sched")
        blocks = sorted(loads)
        halos = [dec.halo_window(*dec.block_coords(b)).volume for b in blocks]
        overheads = [2.0 * h * self.machine.c_mem for h in halos]
        binning = dec.bin_points_owner(self.points)
        max_reps = [max(1, len(binning.points_in(b))) for b in blocks]
        replicas, _, _ = plan_replication(
            list(graph.weights), overheads, graph.succs, graph.preds, P, max_reps
        )
        extra_bytes = sum(
            replicas[k] * halos[k] * 8 for k in range(len(blocks)) if replicas[k] > 1
        )
        if (
            self.memory_budget_bytes is not None
            and self.grid.grid_bytes + extra_bytes > self.memory_budget_bytes
        ):
            return Prediction(
                "pb-sym-pd-rep", P, math.inf, decomposition=dec.shape,
                feasible=False, reason="replica buffers exceed memory budget",
            )
        eff_w = [
            graph.weights[k] / replicas[k]
            + (overheads[k] if replicas[k] > 1 else 0.0)
            for k in range(len(blocks))
        ]
        # Effective-weight graph approximates the expanded replica graph.
        g2 = TaskGraph(eff_w, graph.succs, graph.preds)
        compute = list_schedule(
            g2, P, priority=lambda v: (-g2.weights[v], v)
        ).makespan
        return Prediction(
            "pb-sym-pd-rep", P, self.init_parallel(P) + bin_cost + compute,
            decomposition=dec.shape,
        )


def select_strategy(
    grid: GridSpec,
    points: PointSet,
    P: int,
    *,
    machine: Optional[MachineModel] = None,
    memory_budget_bytes: Optional[int] = None,
    decompositions: Sequence[Tuple[int, int, int]] = ((4, 4, 4), (8, 8, 8), (16, 16, 16)),
) -> Tuple[Prediction, List[Prediction]]:
    """Solve the Section 6.5 combinatorial problem: best strategy + config.

    Returns the winning prediction and the full ranked candidate list.
    """
    model = CostModel(grid, points, machine, memory_budget_bytes)
    candidates: List[Prediction] = [
        model.predict_dr(P),
        # The region engine's bbox-sharded threads backend of sequential
        # PB-SYM: competitive on compute-dominated instances now that the
        # batched kernels overlap for real, and feasible under budgets
        # that rule DR out (bbox buffers, not P full volumes).
        model.predict_pb_sym_threads(P),
    ]
    for dec in decompositions:
        candidates.append(model.predict_dd(dec, P))
        candidates.append(model.predict_pd(dec, P, scheduler="parity"))
        candidates.append(model.predict_pd(dec, P, scheduler="sched"))
        candidates.append(model.predict_pd_rep(dec, P))
    ranked = sorted(candidates, key=lambda p: p.seconds)
    feasible = [p for p in ranked if p.feasible]
    if not feasible:
        raise RuntimeError("no feasible strategy under the memory budget")
    return feasible[0], ranked
