"""Analysis layer: validation, figure metrics, and the Section 6.5 model."""

from .metrics import (
    ImbalanceStats,
    dd_work_overhead,
    load_imbalance,
    pd_critical_path_ratio,
    phase_breakdown,
    replication_stats,
    speedup,
)
from .model import CostModel, MachineModel, Prediction, select_strategy
from .validate import (
    ComparisonReport,
    assert_equivalent,
    check_density,
    compare_volumes,
)

__all__ = [
    "ComparisonReport",
    "CostModel",
    "ImbalanceStats",
    "MachineModel",
    "Prediction",
    "assert_equivalent",
    "check_density",
    "compare_volumes",
    "dd_work_overhead",
    "load_imbalance",
    "pd_critical_path_ratio",
    "phase_breakdown",
    "replication_stats",
    "select_strategy",
    "speedup",
]
