"""Analysis metrics behind the paper's figures.

Pure functions computing the quantities the evaluation section plots:
runtime breakdowns (Figure 7), DD overhead (Figure 9), critical-path
ratios (Figure 12), speedups and load-imbalance statistics.  They operate
on :class:`~repro.algorithms.base.STKDEResult` objects or recompute
analytic variants from instance geometry, so benchmarks and notebooks can
use either.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from ..algorithms.base import STKDEResult
from ..core.grid import GridSpec, PointSet
from ..parallel.color import (
    greedy_coloring,
    load_order,
    occupied_neighbor_map,
    parity_coloring,
)
from ..parallel.partition import BlockDecomposition
from ..parallel.schedule import build_task_graph, critical_path

__all__ = [
    "phase_breakdown",
    "speedup",
    "dd_work_overhead",
    "pd_critical_path_ratio",
    "load_imbalance",
    "replication_stats",
]


def phase_breakdown(result: STKDEResult) -> Dict[str, float]:
    """Fraction of wall time per phase (Figure 7's stacked bars)."""
    total = result.timer.total
    if total <= 0:
        return {}
    return {k: v / total for k, v in result.timer.seconds.items()}


def speedup(baseline_seconds: float, result: STKDEResult) -> float:
    """Parallel speedup against a measured sequential baseline.

    Uses the result's parallel makespan (``meta["makespan"]``) when
    present — simulated results report virtual time there — otherwise the
    measured wall time.
    """
    t = result.meta.get("makespan", result.elapsed)
    if t <= 0:
        raise ValueError("result has no positive runtime")
    return baseline_seconds / t


def dd_work_overhead(
    points: PointSet, grid: GridSpec, decomposition: Tuple[int, int, int]
) -> Dict[str, float]:
    """Analytic DD overhead for a decomposition (Figure 9's driver).

    Returns the point replication factor and the invariant-recomputation
    overhead: the ratio of per-subdomain invariant work (each replica
    re-tabulates its clipped disk and bar) to the unsplit invariant work.
    """
    A = min(decomposition[0], grid.Gx)
    B = min(decomposition[1], grid.Gy)
    C = min(decomposition[2], grid.Gt)
    dec = BlockDecomposition(grid, A, B, C)
    binning = dec.bin_points_replicated(points)
    disk_cells = 0
    bar_cells = 0
    for bid in binning.occupied():
        a, b, c = dec.block_coords(int(bid))
        block = dec.block_window(a, b, c)
        for i in binning.points_in(int(bid)):
            win = grid.point_window(*points.coords[i]).intersect(block)
            sx, sy, st = win.shape
            disk_cells += sx * sy
            bar_cells += st
    base_disk = 0
    base_bar = 0
    for x, y, t in points:
        win = grid.point_window(x, y, t)
        sx, sy, st = win.shape
        base_disk += sx * sy
        base_bar += st
    return {
        "replication_factor": binning.replication_factor(points.n),
        "invariant_overhead": (disk_cells + bar_cells) / max(1, base_disk + base_bar),
        "occupied_blocks": float(len(binning.occupied())),
    }


def pd_critical_path_ratio(
    points: PointSet,
    grid: GridSpec,
    decomposition: Tuple[int, int, int],
    scheduler: str = "parity",
) -> float:
    """Analytic ``T_infty / T_1`` of the PD dependency DAG (Figure 12).

    Task weights are the per-block point counts — processing time is
    proportional to points (the paper's weighting).
    """
    dec = BlockDecomposition.adjusted_for_pd(grid, *decomposition)
    binning = dec.bin_points_owner(points)
    occupied = [int(b) for b in binning.occupied()]
    if not occupied:
        return 0.0
    loads = {b: float(len(binning.points_in(b))) for b in occupied}
    if scheduler == "parity":
        coloring = parity_coloring(dec, occupied)
    elif scheduler == "sched":
        coloring = greedy_coloring(
            dec, occupied, load_order(occupied, loads), method="load-aware"
        )
    else:
        raise ValueError(f"unknown scheduler {scheduler!r}")
    adjacency = occupied_neighbor_map(dec, occupied)
    graph, _ = build_task_graph(coloring, adjacency, loads)
    tinf, _ = critical_path(graph)
    return tinf / graph.total_weight


@dataclass(frozen=True)
class ImbalanceStats:
    """Distribution statistics of per-task load."""

    max: float
    mean: float
    cv: float  # coefficient of variation

    @property
    def imbalance(self) -> float:
        """``max / mean`` — 1.0 is perfectly balanced."""
        return self.max / self.mean if self.mean > 0 else 1.0


def load_imbalance(loads: Sequence[float]) -> ImbalanceStats:
    """Imbalance statistics over per-task loads (ignores empty tasks)."""
    arr = np.asarray([l for l in loads if l > 0], dtype=np.float64)
    if arr.size == 0:
        return ImbalanceStats(0.0, 0.0, 0.0)
    return ImbalanceStats(
        float(arr.max()), float(arr.mean()),
        float(arr.std() / arr.mean()) if arr.mean() > 0 else 0.0,
    )


def replication_stats(result: STKDEResult) -> Dict[str, float]:
    """Summary of a PB-SYM-PD-REP run's replication decisions."""
    reps: Dict[int, int] = result.meta.get("replicas", {})
    if not reps:
        return {"blocks": 0.0, "replicated": 0.0, "max": 1.0, "mean": 1.0}
    vals = list(reps.values())
    return {
        "blocks": float(len(vals)),
        "replicated": float(sum(1 for r in vals if r > 1)),
        "max": float(max(vals)),
        "mean": float(sum(vals)) / len(vals),
    }
