"""Summarise recorded benchmark results into the EXPERIMENTS verdicts.

The benchmark harness writes one JSON file per experiment under
``results/``; this module turns a directory of those into the compact
paper-vs-measured summary used in EXPERIMENTS.md — and programmatically
checks the *shape* claims (orderings, regime classifications, OOM
patterns), so a regression that flips a conclusion fails loudly instead of
hiding in a wall of numbers.

Usage::

    python -m repro.analysis.report results/
"""

from __future__ import annotations

import json
import math
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional

__all__ = ["ShapeCheck", "load_experiment", "check_all", "main"]


@dataclass
class ShapeCheck:
    """Outcome of one shape assertion against recorded results."""

    experiment: str
    claim: str
    passed: Optional[bool]  # None = experiment not recorded

    def describe(self) -> str:
        mark = "??" if self.passed is None else ("ok" if self.passed else "FAIL")
        return f"[{mark:>4s}] {self.experiment:24s} {self.claim}"


def load_experiment(results_dir: Path, name: str) -> Optional[List[dict]]:
    """Rows of one recorded experiment, or ``None`` if absent."""
    path = results_dir / f"{name}.json"
    if not path.exists():
        return None
    return json.loads(path.read_text())["rows"]


def _rows_by_instance(rows: List[dict]) -> Dict[str, List[dict]]:
    out: Dict[str, List[dict]] = {}
    for r in rows:
        out.setdefault(r.get("instance", "?"), []).append(r)
    return out


def check_all(results_dir: Path) -> List[ShapeCheck]:
    """Evaluate every recorded experiment's headline shape claim."""
    checks: List[ShapeCheck] = []

    # Table 3: PB-SYM fastest point-based algorithm wherever reported.
    rows = load_experiment(results_dir, "table3_sequential")
    ok = None
    if rows is not None:
        ok = True
        for r in rows:
            pb, sym = r.get("pb"), r.get("pb-sym")
            if pb is not None and sym is not None and sym > pb * 1.1:
                ok = False
    checks.append(ShapeCheck("table3_sequential",
                             "PB-SYM never slower than PB", ok))

    # Figure 7: Flu init-heavier than PollenUS by work fraction.
    rows = load_experiment(results_dir, "fig7_breakdown")
    ok = None
    if rows is not None:
        by = {r["instance"]: r for r in rows}
        key = "init_work_fraction" if "init_work_fraction" in rows[0] else "init_fraction"
        flu = [v[key] for k, v in by.items() if k.startswith("Flu")]
        pol = [v[key] for k, v in by.items() if k.startswith("PollenUS")]
        ok = bool(flu and pol and min(flu) > max(pol))
    checks.append(ShapeCheck("fig7_breakdown",
                             "every Flu instance more init-bound than any PollenUS", ok))

    # Figure 8: Flu_Hr OOM at P>=8; eBird_Hr OOM at P>=2.
    rows = load_experiment(results_dir, "fig8_dr_speedup")
    ok = None
    if rows is not None:
        by = {r["instance"]: r for r in rows}

        def is_oom(inst, p):
            v = by[inst].get(f"P{p}")
            return v is None or (isinstance(v, float) and math.isnan(v)) or v != v or str(v) == "nan"

        ok = (
            is_oom("Flu_Hr-Lb", 8) and is_oom("Flu_Hr-Lb", 16)
            and not is_oom("Flu_Hr-Lb", 4)
            and is_oom("eBird_Hr-Lb", 2)
        )
    checks.append(ShapeCheck("fig8_dr_speedup",
                             "Flu-Hr OOM at P>=8 only; eBird-Hr at P>=2", ok))

    # Figure 9: DD overhead trends upward over the decomposition sweep.
    # (Trend, not stepwise monotonicity: individual cells carry wall-clock
    # noise, and the paper itself reports occasional dips from cache
    # effects at mild decompositions.)
    rows = load_experiment(results_dir, "fig9_dd_overhead")
    ok = None
    if rows is not None:
        ok = True
        for inst, rs in _rows_by_instance(rows).items():
            ks = sorted(
                (r["k"], r["overhead_vs_pb_sym"]) for r in rs
                if not r.get("skipped") and "overhead_vs_pb_sym" in r
            )
            vals = [v for _, v in ks]
            if len(vals) >= 2 and vals[-1] < vals[0] * 0.9:
                ok = False  # finest decomposition cheaper than 1^3: wrong
    checks.append(ShapeCheck("fig9_dd_overhead",
                             "DD overhead grows over the decomposition sweep", ok))

    # Figure 12: PollenUS Hr-Hb is the critical-path outlier.
    rows = load_experiment(results_dir, "fig12_critical_path")
    ok = None
    if rows is not None:
        by = {r["instance"]: r for r in rows}
        outlier = by.get("PollenUS_Hr-Hb", {}).get("pd", 0)
        others = [r["pd"] for k, r in by.items() if k != "PollenUS_Hr-Hb"]
        ok = bool(others) and outlier > max(others)
    checks.append(ShapeCheck("fig12_critical_path",
                             "PollenUS Hr-Hb has the longest critical path", ok))

    # Figure 14: Flu_Hr-Hb OOMs at the coarsest decompositions.
    rows = load_experiment(results_dir, "fig14_pd_rep_speedup")
    ok = None
    if rows is not None:
        flu = [r for r in rows if r["instance"] == "Flu_Hr-Hb"]
        coarse = [r for r in flu if r["k"] <= 2]
        ok = bool(coarse) and all(r.get("oom") for r in coarse)
    checks.append(ShapeCheck("fig14_pd_rep_speedup",
                             "Flu-Hr-Hb OOMs at coarse decompositions", ok))

    # Region engine (PR 2): bbox shard buffers strictly below P full
    # private volumes on every threads row, engine instrumentation present
    # (tile batches counted, shard bbox cells recorded), and every path
    # equivalent to its legacy reference.
    rows = load_experiment(results_dir, "region_engine")
    ok = None
    if rows is not None:
        threads_rows = [r for r in rows if r.get("path") == "threads-bbox"]
        tile_rows = [r for r in rows if r.get("path") == "vb-tiles"]
        ok = (
            bool(threads_rows)
            and all(
                r["peak_shard_buffer_bytes"] < r["full_private_volumes_bytes"]
                and r.get("shard_bbox_cells", 0) > 0
                for r in threads_rows
            )
            and all(r.get("tile_batches", 0) > 0 for r in tile_rows)
            and all(
                r.get("equivalent_rtol_1e12", r.get("equivalent_rtol_1e9", False))
                for r in rows
            )
        )
    checks.append(ShapeCheck("region_engine",
                             "bbox shard buffers < P full volumes; paths equivalent", ok))

    # Slide pipeline (PR 5): t-slabbed retirement must beat the
    # restamp-survivors baseline on kernel evaluations (the O(delta)
    # slide claim), with the slab gauges recorded and every config
    # equivalent to the cold recompute.
    rows = load_experiment(results_dir, "region_engine")
    ok = None
    if rows is not None:
        slide_rows = [r for r in rows if r.get("path") == "slide-pipeline"]
        slab_rows = [
            r for r in slide_rows if r.get("config") != "restamp-survivors"
        ]
        if slide_rows:
            ok = (
                bool(slab_rows)
                and all(
                    r.get("kernel_eval_reduction_vs_restamp", 0) > 1.0
                    and r.get("slab_buffers_retired", 0) > 0
                    for r in slab_rows
                )
                and any(
                    r.get("kernel_eval_reduction_vs_restamp", 0) >= 3.0
                    for r in slab_rows
                )
                and all(
                    r.get("equivalent_rtol_1e12", False) for r in slide_rows
                )
            )
    checks.append(ShapeCheck("slide_pipeline",
                             "t-slab retirement >= 3x fewer kernel evals; equivalent", ok))

    # Sharded serving (PR 6): the workers-scaling row must record the CPU
    # count it ran with and be either *honestly skipped* (too few cores,
    # with a reason) or measured — in which case the sharded scatter/gather
    # answers must match the single-process direct engine at rtol=1e-12
    # and the speedup must be recorded.  Faked rows (skipped but carrying
    # speedups, or measured without equivalence) fail the check.
    rows = load_experiment(results_dir, "query_serving")
    ok = None
    if rows is not None:
        w_rows = [r for r in rows if r.get("path") == "workers-scaling"]
        if w_rows:
            ok = True
            for r in w_rows:
                if r.get("cpu_count", 0) < 1 or "skipped" not in r:
                    ok = False
                elif r["skipped"]:
                    if "reason" not in r or "workers_speedup" in r:
                        ok = False  # skipped rows must not carry numbers
                elif not (
                    r.get("sharded_matches_single_rtol_1e12", False)
                    and r.get("workers_speedup", 0) > 0
                ):
                    ok = False
    checks.append(ShapeCheck("sharded_serving",
                             "workers row skipped-or-equivalent (rtol=1e-12), cpu_count recorded", ok))

    # Approximate tier (PR 7): every eps row must carry a *measured* p95
    # relative error sitting within its requested budget and a fixed-seed
    # reproducibility flag; the sampler must beat the exact direct sum on
    # the dense batch somewhere in the sweep (measured, not extrapolated);
    # and the calibrated planner must route the eps=0.1 dense batch to
    # the approx backend on its own.
    rows = load_experiment(results_dir, "query_serving")
    ok = None
    if rows is not None:
        a_rows = [r for r in rows if r.get("path") == "approx-tier"]
        if a_rows:
            ok = (
                all(
                    r.get("rel_err_within_eps", False)
                    and r.get("p95_rel_err", float("inf")) <= r.get("eps", 0)
                    and r.get("reproducible_fixed_seed", False)
                    for r in a_rows
                )
                and any(r.get("approx_speedup", 0) > 1.0 for r in a_rows)
                and all(
                    r.get("planner_choice") == "approx"
                    for r in a_rows if r.get("eps") == 0.1
                )
                and any(r.get("eps") == 0.1 for r in a_rows)
            )
    checks.append(ShapeCheck("approx_tier",
                             "p95 rel err within every eps; sampler beats exact; planner routes approx", ok))

    # Compute backends (PR 10): the per-backend direct-sum columns must
    # name every registered backend: the reference row measured, every
    # other row either honestly skipped (reason, no numbers) or measured
    # with an rtol=1e-12 equivalence flag against numpy-ref.  Skipped
    # rows carrying speedups, or measured rows without equivalence, fail.
    rows = load_experiment(results_dir, "query_serving")
    ok = None
    if rows is not None:
        b_rows = [r for r in rows if r.get("path") == "compute-backends"]
        if b_rows:
            names = {r.get("backend") for r in b_rows}
            ok = {"numpy-ref", "numpy-fused", "numba"} <= names
            for r in b_rows:
                if "skipped" not in r:
                    ok = False
                elif r["skipped"]:
                    if "reason" not in r or "speedup_vs_numpy_ref" in r:
                        ok = False  # skipped rows must not carry numbers
                elif not (
                    r.get("equivalent_rtol_1e12", False)
                    and r.get("direct_seconds", 0) > 0
                ):
                    ok = False
            ref = [r for r in b_rows if r.get("backend") == "numpy-ref"]
            if not (ref and not ref[0].get("skipped", True)):
                ok = False
    checks.append(ShapeCheck("compute_backends",
                             "per-backend rows skipped-or-equivalent (rtol=1e-12), numpy-ref measured", ok))

    # Traffic front end (PR 8): the coalescing row must carry a
    # *measured* >= 4x throughput win over per-request dispatch with
    # equivalent answers, and the open-loop sweep must record a p99 at
    # every offered load, shed exactly nothing below the admission knee,
    # and actually shed (not queue without bound) on the overload row.
    rows = load_experiment(results_dir, "traffic")
    ok = None
    if rows is not None:
        c_rows = [r for r in rows if r.get("path") == "coalesce"]
        o_rows = [r for r in rows if r.get("path") == "open-loop"]
        if c_rows and o_rows:
            ok = (
                all(
                    r.get("measured", False)
                    and r.get("coalesce_speedup", 0) >= 4.0
                    and r.get("answers_match_rtol_1e9", False)
                    for r in c_rows
                )
                and all(
                    r.get("measured", False)
                    and r.get("p99_ms", 0) > 0
                    and "offered_rps" in r and "shed_rate" in r
                    for r in o_rows
                )
                and all(
                    r.get("shed", 1) == 0
                    for r in o_rows if r.get("below_knee")
                )
                and any(r.get("below_knee") for r in o_rows)
                and all(
                    r.get("shed", 0) > 0
                    for r in o_rows if not r.get("below_knee")
                )
                and any(not r.get("below_knee") for r in o_rows)
            )
    checks.append(ShapeCheck("traffic_frontend",
                             "coalescing >= 4x per-request; p99 at every load; shed 0 below knee", ok))

    # Fault tolerance (PR 9): every MTTR row must be a *measured*
    # recovery (positive wall time, real replayed state, at least one
    # restart consumed) whose healed shard matched the cold rebuild at
    # rtol=1e-12; the throughput row must record the availability dip;
    # and the degraded row must return a coverage in (0, 1] with the
    # degraded_queries gauge moving — a "degraded" read that silently
    # reports full coverage fails the check.
    rows = load_experiment(results_dir, "faults")
    ok = None
    if rows is not None:
        m_rows = [r for r in rows if r.get("path") == "mttr"]
        t_rows = [r for r in rows if r.get("path") == "recovery-throughput"]
        d_rows = [r for r in rows if r.get("path") == "degraded"]
        ok = (
            bool(m_rows)
            and all(
                r.get("measured", False)
                and r.get("mttr_seconds", 0) > 0
                and r.get("state_rows", 0) > 0
                and r.get("shard_restarts", 0) >= 1
                and r.get("post_recovery_matches_cold_rtol_1e12", False)
                for r in m_rows
            )
            and bool(t_rows)
            and all(
                r.get("recovery_query_seconds", 0) > 0
                and r.get("qps_before", 0) > 0
                and r.get("qps_after", 0) > 0
                for r in t_rows
            )
            and bool(d_rows)
            and all(
                r.get("returned_partial", False)
                and 0.0 < r.get("coverage", 0.0) <= 1.0
                and r.get("degraded_queries_gauge", 0) > 0
                for r in d_rows
            )
        )
    checks.append(ShapeCheck("fault_tolerance",
                             "MTTR measured + heals to rtol=1e-12; degraded coverage in (0,1]", ok))

    # Figure 15: Flu never won by DR; some REP/SCHED win on PollenUS.
    rows = load_experiment(results_dir, "fig15_best")
    ok = None
    if rows is not None:
        by = {r["instance"]: r for r in rows}
        flu_ok = all(
            by[k]["winner"] != "pb-sym-dr" for k in by if k.startswith("Flu")
        )
        pol_ok = any(
            by[k]["winner"] in ("pb-sym-pd-rep", "pb-sym-pd-sched")
            for k in by if k.startswith("PollenUS")
        )
        ok = flu_ok and pol_ok
    checks.append(ShapeCheck("fig15_best",
                             "DR never wins Flu; SCHED/REP wins some PollenUS", ok))

    return checks


def main(argv: Optional[List[str]] = None) -> int:
    args = argv if argv is not None else sys.argv[1:]
    results_dir = Path(args[0]) if args else Path("results")
    if not results_dir.is_dir():
        print(f"no results directory at {results_dir}", file=sys.stderr)
        return 2
    checks = check_all(results_dir)
    print(f"shape checks over {results_dir}:")
    failed = 0
    for c in checks:
        print("  " + c.describe())
        if c.passed is False:
            failed += 1
    recorded = sum(1 for c in checks if c.passed is not None)
    print(f"{recorded}/{len(checks)} experiments recorded, {failed} shape failures")
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
