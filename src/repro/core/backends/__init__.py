"""Pluggable compute backends for the pair-evaluation hot paths.

The package exports a tiny registry: backends register under a name,
callers resolve them with :func:`get_backend` (``None`` → the default
``numpy-ref``, a :class:`ComputeBackend` instance passes through), and
planners enumerate :func:`available_backends` to know what this machine
can actually run.  The ``numba`` backend registers only when the package
imports — absence is visible, never fatal.

Adding a backend: subclass :class:`ComputeBackend`, implement the four
primitives under the contracts in ``base.py`` (masks, rtol=1e-12 vs
``numpy-ref``, O(1) logical accounting), then ``register_backend(lambda:
MyBackend())``.  The parity suite in ``tests/core/test_backends.py`` runs
every registered backend automatically.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple, Union

from .base import ComputeBackend
from .numba_backend import HAVE_NUMBA, NumbaBackend
from .numpy_fused import NumpyFusedBackend
from .numpy_ref import NumpyRefBackend

__all__ = [
    "ComputeBackend",
    "DEFAULT_BACKEND",
    "HAVE_NUMBA",
    "NumbaBackend",
    "NumpyFusedBackend",
    "NumpyRefBackend",
    "available_backends",
    "get_backend",
    "register_backend",
]

#: The default: bit-identical to the pre-seam code paths.
DEFAULT_BACKEND = "numpy-ref"

#: name -> factory.  Factories defer construction so that unavailable
#: backends (numba without numba) never instantiate at import time.
_FACTORIES: Dict[str, Callable[[], ComputeBackend]] = {}

#: name -> constructed singleton (backends are stateless apart from
#: warmup bookkeeping; sharing one instance per process keeps the JIT
#: warmup paid once).
_INSTANCES: Dict[str, ComputeBackend] = {}


def register_backend(
    name: str, factory: Callable[[], ComputeBackend], *, overwrite: bool = False
) -> None:
    """Register a backend factory under ``name``."""
    if name in _FACTORIES and not overwrite:
        raise ValueError(f"compute backend {name!r} already registered")
    _FACTORIES[name] = factory
    _INSTANCES.pop(name, None)


def available_backends() -> Tuple[str, ...]:
    """Names of the backends this process can construct, sorted."""
    return tuple(sorted(_FACTORIES))


def get_backend(
    name: Union[str, ComputeBackend, None] = None
) -> ComputeBackend:
    """Resolve a backend by name (idempotent on instances).

    ``None`` resolves to :data:`DEFAULT_BACKEND`.  Unknown names raise
    with the available set; ``"numba"`` in particular names the missing
    package when the import guard tripped.
    """
    if isinstance(name, ComputeBackend):
        return name
    if name is None:
        name = DEFAULT_BACKEND
    inst = _INSTANCES.get(name)
    if inst is not None:
        return inst
    factory = _FACTORIES.get(name)
    if factory is None:
        if name == "numba" and not HAVE_NUMBA:
            raise RuntimeError(
                "compute backend 'numba' requires the numba package, "
                "which is not importable in this environment; "
                f"available: {', '.join(available_backends())}"
            )
        raise KeyError(
            f"unknown compute backend {name!r}; "
            f"available: {', '.join(available_backends())}"
        )
    inst = factory()
    _INSTANCES[name] = inst
    return inst


register_backend("numpy-ref", NumpyRefBackend)
register_backend("numpy-fused", NumpyFusedBackend)
if HAVE_NUMBA:  # pragma: no cover - exercised in the CI numba job
    register_backend("numba", NumbaBackend)
