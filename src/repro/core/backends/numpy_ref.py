"""``numpy-ref``: the reference compute backend.

This is the pre-seam NumPy code moved verbatim behind
:class:`~repro.core.backends.base.ComputeBackend` — the same expressions in
the same order on the same temporaries, so routing through this backend is
**bit-identical** to the historical paths by construction.  Every other
backend is pinned against it at ``rtol=1e-12``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..grid import GridSpec
from ..instrument import WorkCounter
from ..kernels import KernelPair
from .base import ComputeBackend

__all__ = ["NumpyRefBackend"]


class NumpyRefBackend(ComputeBackend):
    """Today's NumPy hot-path code, unchanged, behind the seam."""

    name = "numpy-ref"

    def masked_kernel_product(
        self,
        grid: GridSpec,
        kernel: KernelPair,
        DX: np.ndarray,
        DY: np.ndarray,
        DT: np.ndarray,
        counter: WorkCounter,
    ) -> np.ndarray:
        inside = ((DX * DX + DY * DY) < grid.hs * grid.hs) & (
            np.abs(DT) <= grid.ht
        )
        ks = kernel.spatial(DX / grid.hs, DY / grid.hs)
        kt = kernel.temporal(DT / grid.ht)
        self._charge_pairs(counter, DX.size)
        return np.where(inside, ks * kt, 0.0)

    def cohort_tables(
        self,
        grid: GridSpec,
        kernel: KernelPair,
        mode: str,
        norm: float,
        dx: np.ndarray,
        dy: np.ndarray,
        dt: np.ndarray,
        counter: WorkCounter,
    ) -> np.ndarray:
        m, wx = dx.shape
        wy = dy.shape[1]
        wt = dt.shape[1]
        hs2 = grid.hs * grid.hs

        if mode == "sym":
            d2 = dx[:, :, None] ** 2 + dy[:, None, :] ** 2
            inside_s = d2 < hs2
            if kernel.spatial_radial is not None:
                disk = kernel.spatial_radial(d2 * (1.0 / hs2))
            else:
                u = dx[:, :, None] / grid.hs
                v = dy[:, None, :] / grid.hs
                disk = kernel.spatial(
                    np.broadcast_to(u, d2.shape), np.broadcast_to(v, d2.shape)
                )
            disk *= norm
            disk *= inside_s
            w = dt / grid.ht
            bar = kernel.temporal(w)
            bar *= np.abs(dt) <= grid.ht
            counter.spatial_evals += disk.size
            counter.temporal_evals += bar.size
            counter.distance_tests += disk.size + bar.size
            counter.madds += m * wx * wy * wt
            counter.add_dispatch(self.name)
            return disk[:, :, :, None] * bar[:, None, None, :]

        shape = (m, wx, wy, wt)
        if mode == "pb":
            DX = np.broadcast_to(dx[:, :, None, None], shape)
            DY = np.broadcast_to(dy[:, None, :, None], shape)
            DT = np.broadcast_to(dt[:, None, None, :], shape)
            out = self.masked_kernel_product(grid, kernel, DX, DY, DT, counter)
            out *= norm  # in place: the product above is a fresh array
            return out

        if mode == "disk":
            d2 = dx[:, :, None] ** 2 + dy[:, None, :] ** 2
            inside_s = d2 < hs2
            if kernel.spatial_radial is not None:
                disk = kernel.spatial_radial(d2 * (1.0 / hs2))
            else:
                u = dx[:, :, None] / grid.hs
                v = dy[:, None, :] / grid.hs
                disk = kernel.spatial(
                    np.broadcast_to(u, d2.shape), np.broadcast_to(v, d2.shape)
                )
            disk *= norm
            disk *= inside_s
            DT = np.broadcast_to(dt[:, None, None, :], shape)
            inside_t = np.abs(DT) <= grid.ht
            kt = kernel.temporal(DT / grid.ht)
            counter.spatial_evals += disk.size
            counter.distance_tests += disk.size + DT.size
            counter.temporal_evals += DT.size
            counter.madds += DT.size
            counter.add_dispatch(self.name)
            return disk[:, :, :, None] * np.where(inside_t, kt, 0.0)

        if mode == "bar":
            w = dt / grid.ht
            bar = kernel.temporal(w)
            bar *= np.abs(dt) <= grid.ht
            DX = np.broadcast_to(dx[:, :, None, None], shape)
            DY = np.broadcast_to(dy[:, None, :, None], shape)
            inside_s = (DX * DX + DY * DY) < hs2
            ks = kernel.spatial(DX / grid.hs, DY / grid.hs)
            counter.temporal_evals += bar.size
            counter.distance_tests += bar.size + DX.size
            counter.spatial_evals += DX.size
            counter.madds += DX.size
            counter.add_dispatch(self.name)
            return np.where(inside_s, ks * norm, 0.0) * bar[:, None, None, :]

        from ..stamping import STAMP_MODES

        raise ValueError(
            f"unknown stamp mode {mode!r}; expected one of {STAMP_MODES}"
        )

    def query_row_sums(
        self,
        grid: GridSpec,
        kernel: KernelPair,
        dx: np.ndarray,
        dy: np.ndarray,
        dt: np.ndarray,
        weights: Optional[np.ndarray],
        counter: WorkCounter,
    ) -> np.ndarray:
        contrib = self.masked_kernel_product(grid, kernel, dx, dy, dt, counter)
        axis = contrib.ndim - 1
        if weights is not None:
            # Scale-then-pairwise-sum: the reduction order the legacy
            # grouped walk used (a matmul would reassociate the additions).
            return (contrib * weights).sum(axis=axis)
        return contrib.sum(axis=axis)

    def sampled_contributions(
        self,
        grid: GridSpec,
        kernel: KernelPair,
        dx: np.ndarray,
        dy: np.ndarray,
        dt: np.ndarray,
        weights: Optional[np.ndarray],
        counter: WorkCounter,
    ) -> np.ndarray:
        contrib = self.masked_kernel_product(grid, kernel, dx, dy, dt, counter)
        if weights is not None:
            contrib = contrib * weights
        return contrib
