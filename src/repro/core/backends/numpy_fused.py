"""``numpy-fused``: the always-available fast path.

Same primitives as ``numpy-ref``, three optimisations:

* **Radial profiles** — for kernels with a ``spatial_radial`` form the
  squared distance computed for the cylinder mask is reused for the kernel
  value, instead of re-deriving ``u^2 + v^2`` from normalised offsets
  inside ``kernel.spatial`` (the reference squares every offset twice).
* **Factorised tables** — the per-voxel stamp modes (``pb``/``disk``/
  ``bar``) exploit the paper's Figure 3 invariance structure: ``k_s`` is
  temporally invariant and ``k_t`` spatially invariant, so the masked
  product over an ``(m, wx, wy, wt)`` cylinder *is* the outer product of a
  masked ``(m, wx, wy)`` disk table and a masked ``(m, wt)`` bar table.
  The tables are built once per slab and expanded by one broadcast
  multiply — cutting the per-voxel kernel evaluations by the factor the
  reference mode deliberately pays.
* **Mask-first sparse evaluation** — query-path tabulations whose inside
  mask is mostly empty (scattered candidates, wide slabs) evaluate the
  kernels only on the surviving pairs and scatter them back, instead of
  evaluating everything and multiplying by the mask.

Equivalence to ``numpy-ref`` is elementwise ``rtol=1e-12`` (the fusions
only reassociate scalar factors at the ulp level); work counters charge
the identical logical operation counts — the *mode's* cost profile, not
the backend's physical op count — so profiles stay comparable and the
cost model sees backend differences through per-backend unit costs only.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..grid import GridSpec
from ..instrument import WorkCounter
from ..kernels import KernelPair
from .base import ComputeBackend
from .numpy_ref import NumpyRefBackend

__all__ = ["NumpyFusedBackend"]

#: Mask-first threshold: evaluate sparsely when fewer than this fraction
#: of the tabulated pairs survive the cylinder mask.  Gathering costs ~2
#: passes (count + fancy-index); the dense path costs ~4 full passes of
#: kernel arithmetic, so the crossover sits well below one half.
_SPARSE_FRACTION = 1.0 / 8.0


class NumpyFusedBackend(ComputeBackend):
    """Fused/factorised NumPy fast path (no extra dependencies)."""

    name = "numpy-fused"

    def __init__(self) -> None:
        # Non-radial custom kernels keep reference semantics exactly.
        self._ref = NumpyRefBackend()

    # -- helpers -------------------------------------------------------

    def _disk_table(
        self,
        grid: GridSpec,
        kernel: KernelPair,
        dx: np.ndarray,
        dy: np.ndarray,
    ) -> np.ndarray:
        """Masked spatial table ``(m, wx, wy)``: ``k_s`` zeroed outside
        the disk.  One ``d2`` serves both the mask and the radial value."""
        hs2 = grid.hs * grid.hs
        d2 = dx[:, :, None] ** 2 + dy[:, None, :] ** 2
        inside_s = d2 < hs2
        if kernel.spatial_radial is not None:
            d2 *= 1.0 / hs2
            disk = kernel.spatial_radial(d2)
        else:
            u = dx[:, :, None] / grid.hs
            v = dy[:, None, :] / grid.hs
            disk = kernel.spatial(
                np.broadcast_to(u, d2.shape), np.broadcast_to(v, d2.shape)
            )
        disk *= inside_s
        return disk

    def _bar_table(
        self, grid: GridSpec, kernel: KernelPair, dt: np.ndarray
    ) -> np.ndarray:
        """Masked temporal table ``(m, wt)``: ``k_t`` zeroed outside."""
        bar = kernel.temporal(dt / grid.ht)
        bar *= np.abs(dt) <= grid.ht
        return bar

    # -- primitives ----------------------------------------------------

    def masked_kernel_product(
        self,
        grid: GridSpec,
        kernel: KernelPair,
        DX: np.ndarray,
        DY: np.ndarray,
        DT: np.ndarray,
        counter: WorkCounter,
    ) -> np.ndarray:
        if kernel.spatial_radial is None:
            return self._ref.masked_kernel_product(
                grid, kernel, DX, DY, DT, counter
            )
        hs2 = grid.hs * grid.hs
        d2 = DX * DX + DY * DY
        inside = (d2 < hs2) & (np.abs(DT) <= grid.ht)
        self._charge_pairs(counter, d2.size)
        n_in = int(np.count_nonzero(inside))
        if n_in == 0:
            return np.zeros(d2.shape, dtype=np.float64)
        if n_in < _SPARSE_FRACTION * d2.size:
            # Mask-first: kernels only on surviving pairs.
            out = np.zeros(d2.shape, dtype=np.float64)
            r2 = d2[inside]
            r2 *= 1.0 / hs2
            vals = kernel.spatial_radial(r2)
            vals *= kernel.temporal(
                np.broadcast_to(DT, d2.shape)[inside] / grid.ht
            )
            out[inside] = vals
            return out
        d2 *= 1.0 / hs2
        out = kernel.spatial_radial(d2)
        out *= kernel.temporal(DT / grid.ht)
        out *= inside
        return out

    def cohort_tables(
        self,
        grid: GridSpec,
        kernel: KernelPair,
        mode: str,
        norm: float,
        dx: np.ndarray,
        dy: np.ndarray,
        dt: np.ndarray,
        counter: WorkCounter,
    ) -> np.ndarray:
        m, wx = dx.shape
        wy = dy.shape[1]
        wt = dt.shape[1]
        self._charge_mode(counter, mode, m, wx, wy, wt)

        # All four cost profiles produce the same factorised *values*:
        # masked-disk (x) masked-bar, with the normalisation folded into
        # the smaller factor.  The modes differ in the work they charge
        # (above) — the values agree with the reference at rtol=1e-12.
        disk = self._disk_table(grid, kernel, dx, dy)
        bar = self._bar_table(grid, kernel, dt)
        bar *= norm
        return disk[:, :, :, None] * bar[:, None, None, :]

    def query_row_sums(
        self,
        grid: GridSpec,
        kernel: KernelPair,
        dx: np.ndarray,
        dy: np.ndarray,
        dt: np.ndarray,
        weights: Optional[np.ndarray],
        counter: WorkCounter,
    ) -> np.ndarray:
        if kernel.spatial_radial is None:
            return self._ref.query_row_sums(
                grid, kernel, dx, dy, dt, weights, counter
            )
        hs2 = grid.hs * grid.hs
        d2 = dx * dx + dy * dy
        inside = (d2 < hs2) & (np.abs(dt) <= grid.ht)
        self._charge_pairs(counter, d2.size)
        rows = d2.shape[0] if d2.ndim == 2 else None
        n_in = int(np.count_nonzero(inside))
        if n_in == 0:
            return (
                np.zeros(rows, dtype=np.float64)
                if rows is not None
                else np.float64(0.0)
            )
        if n_in < _SPARSE_FRACTION * d2.size:
            # Mask-first: evaluate survivors only and row-scatter the sums.
            r2 = d2[inside]
            r2 *= 1.0 / hs2
            vals = kernel.spatial_radial(r2)
            vals *= kernel.temporal(dt[inside] / grid.ht)
            if weights is not None:
                vals *= weights[inside]
            if rows is None:
                return vals.sum()
            ridx = np.nonzero(inside)[0]
            return np.bincount(ridx, weights=vals, minlength=rows)
        d2 *= 1.0 / hs2
        contrib = kernel.spatial_radial(d2)
        contrib *= kernel.temporal(dt / grid.ht)
        contrib *= inside
        if weights is not None:
            contrib *= weights
        return contrib.sum(axis=contrib.ndim - 1)

    def sampled_contributions(
        self,
        grid: GridSpec,
        kernel: KernelPair,
        dx: np.ndarray,
        dy: np.ndarray,
        dt: np.ndarray,
        weights: Optional[np.ndarray],
        counter: WorkCounter,
    ) -> np.ndarray:
        if kernel.spatial_radial is None:
            return self._ref.sampled_contributions(
                grid, kernel, dx, dy, dt, weights, counter
            )
        hs2 = grid.hs * grid.hs
        d2 = dx * dx + dy * dy
        inside = (d2 < hs2) & (np.abs(dt) <= grid.ht)
        self._charge_pairs(counter, d2.size)
        d2 *= 1.0 / hs2
        contrib = kernel.spatial_radial(d2)
        contrib *= kernel.temporal(dt / grid.ht)
        contrib *= inside
        if weights is not None:
            contrib *= weights
        return contrib
