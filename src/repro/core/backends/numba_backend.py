"""``numba``: JIT-compiled pair-evaluation kernels (import-guarded).

The module is always importable; :data:`HAVE_NUMBA` records whether the
``numba`` package itself is.  When it is absent the backend class still
exists but is *not registered*, callers see it missing from
``available_backends()``, and benches/tests follow the skip-or-measure
convention (a ``skipped: true`` row with a reason, never an extrapolated
number).

Compiled semantics are pinned to the reference at ``rtol=1e-12``:

* The scalar kernel bodies are transliterations of the registered NumPy
  expressions (same IEEE-754 double ops; ``fastmath`` stays **off** so
  LLVM cannot reassociate or contract them into FMAs).
* Row reductions use Kahan compensation, so sequential loop sums stay
  within the pin of NumPy's pairwise summation.
* Only the registered kernels are compiled (name → integer id baked into
  the jitted branches).  ``supports()`` returns ``False`` for
  user-registered pairs — callers fall back to an always-available
  backend for those, exactly like the non-radial fallback in
  ``numpy-fused``.

First-call compilation cost is paid eagerly per primitive on tiny dummy
arrays and accumulated into :attr:`ComputeBackend.warmup_seconds`, so the
service stats can report JIT warmup separately from steady-state time.
"""

from __future__ import annotations

import math
import time
from typing import Optional

import numpy as np

from ..grid import GridSpec
from ..instrument import WorkCounter
from ..kernels import KernelPair
from .base import ComputeBackend
from .numpy_fused import NumpyFusedBackend

__all__ = ["HAVE_NUMBA", "NumbaBackend"]

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit, prange

    HAVE_NUMBA = True
except Exception:  # pragma: no cover - the usual path in slim envs
    HAVE_NUMBA = False

#: Kernel ids baked into the jitted branches (compile-time dispatch).
_KERNEL_IDS = {"epanechnikov": 0, "quartic": 1, "as_printed": 2}


if HAVE_NUMBA:  # pragma: no cover - compiled paths are CI-gated

    @njit(inline="always")
    def _ks(kid, u, v):
        # Transliterations of repro.core.kernels — same double ops.
        if kid == 0:
            return (2.0 / math.pi) * (1.0 - (u * u + v * v))
        elif kid == 1:
            s = 1.0 - (u * u + v * v)
            return (3.0 / math.pi) * s * s
        else:
            a = 1.0 - u
            b = 1.0 - v
            return (math.pi / 2.0) * (a * a) * (b * b)

    @njit(inline="always")
    def _kt(kid, w):
        if kid == 0 or kid == 1:
            return 0.75 * (1.0 - w * w)
        else:
            a = 1.0 - w
            return 0.75 * (a * a)

    @njit(parallel=True)
    def _cohort_tables_jit(kid, hs, ht, norm, dx, dy, dt, out):
        m, wx = dx.shape
        wy = dy.shape[1]
        wt = dt.shape[1]
        hs2 = hs * hs
        for i in prange(m):
            bar = np.empty(wt, dtype=np.float64)
            for c in range(wt):
                if abs(dt[i, c]) <= ht:
                    bar[c] = _kt(kid, dt[i, c] / ht)
                else:
                    bar[c] = 0.0
            for a in range(wx):
                xa = dx[i, a]
                for b in range(wy):
                    yb = dy[i, b]
                    if xa * xa + yb * yb < hs2:
                        ks = _ks(kid, xa / hs, yb / hs) * norm
                        for c in range(wt):
                            out[i, a, b, c] = ks * bar[c]
                    else:
                        for c in range(wt):
                            out[i, a, b, c] = 0.0

    @njit(parallel=True)
    def _row_sums_jit(kid, hs, ht, dx, dy, dt, w, has_w, out):
        q_n, k_n = dx.shape
        hs2 = hs * hs
        for q in prange(q_n):
            total = 0.0
            comp = 0.0  # Kahan compensation
            for k in range(k_n):
                xa = dx[q, k]
                yb = dy[q, k]
                if xa * xa + yb * yb < hs2 and abs(dt[q, k]) <= ht:
                    val = _ks(kid, xa / hs, yb / hs) * _kt(
                        kid, dt[q, k] / ht
                    )
                    if has_w:
                        val = val * w[q, k]
                    y = val - comp
                    t = total + y
                    comp = (t - total) - y
                    total = t
            out[q] = total

    @njit(parallel=True)
    def _elementwise_jit(kid, hs, ht, dx, dy, dt, w, has_w, out):
        q_n, k_n = dx.shape
        hs2 = hs * hs
        for q in prange(q_n):
            for k in range(k_n):
                xa = dx[q, k]
                yb = dy[q, k]
                if xa * xa + yb * yb < hs2 and abs(dt[q, k]) <= ht:
                    val = _ks(kid, xa / hs, yb / hs) * _kt(
                        kid, dt[q, k] / ht
                    )
                    if has_w:
                        val = val * w[q, k]
                    out[q, k] = val
                else:
                    out[q, k] = 0.0


def _as_2d(a: np.ndarray) -> np.ndarray:
    """Contiguous float64 2-D view for the jitted loops."""
    a = np.ascontiguousarray(a, dtype=np.float64)
    return a[None, :] if a.ndim == 1 else a


class NumbaBackend(ComputeBackend):  # pragma: no cover - CI-gated
    """``@njit(parallel=True)`` pair evaluation for registered kernels.

    Broadcast-shaped masked products (region tiles feed arbitrary
    broadcastable offsets) delegate to ``numpy-fused`` — the compiled wins
    live in the dense cohort tables and the 2-D query/sampler loops, and
    dispatch accounting stays honest about which backend actually ran.
    """

    name = "numba"

    def __init__(self) -> None:
        if not HAVE_NUMBA:
            raise RuntimeError(
                "numba is not importable in this environment; "
                "use backends from available_backends() instead"
            )
        self._fused = NumpyFusedBackend()
        self._warm: set = set()

    def supports(self, kernel: KernelPair) -> bool:
        return kernel.name in _KERNEL_IDS

    def _warmup(self, key: str, thunk) -> None:
        """Compile ``key``'s jit function on dummy inputs, timing it."""
        if key in self._warm:
            return
        t0 = time.perf_counter()
        thunk()
        self.warmup_seconds += time.perf_counter() - t0
        self._warm.add(key)

    # -- primitives ----------------------------------------------------

    def masked_kernel_product(
        self,
        grid: GridSpec,
        kernel: KernelPair,
        DX: np.ndarray,
        DY: np.ndarray,
        DT: np.ndarray,
        counter: WorkCounter,
    ) -> np.ndarray:
        # Arbitrary broadcast shapes: the fused NumPy path handles them;
        # the dispatch is recorded under the backend that actually ran.
        return self._fused.masked_kernel_product(
            grid, kernel, DX, DY, DT, counter
        )

    def cohort_tables(
        self,
        grid: GridSpec,
        kernel: KernelPair,
        mode: str,
        norm: float,
        dx: np.ndarray,
        dy: np.ndarray,
        dt: np.ndarray,
        counter: WorkCounter,
    ) -> np.ndarray:
        if not self.supports(kernel):
            return self._fused.cohort_tables(
                grid, kernel, mode, norm, dx, dy, dt, counter
            )
        m, wx = dx.shape
        wy = dy.shape[1]
        wt = dt.shape[1]
        self._charge_mode(counter, mode, m, wx, wy, wt)
        kid = _KERNEL_IDS[kernel.name]
        one = np.zeros((1, 1), dtype=np.float64)
        self._warmup(
            "cohort",
            lambda: _cohort_tables_jit(
                0, 1.0, 1.0, 1.0, one, one, one,
                np.empty((1, 1, 1, 1), dtype=np.float64),
            ),
        )
        out = np.empty((m, wx, wy, wt), dtype=np.float64)
        _cohort_tables_jit(
            kid,
            float(grid.hs),
            float(grid.ht),
            float(norm),
            _as_2d(dx),
            _as_2d(dy),
            _as_2d(dt),
            out,
        )
        return out

    def query_row_sums(
        self,
        grid: GridSpec,
        kernel: KernelPair,
        dx: np.ndarray,
        dy: np.ndarray,
        dt: np.ndarray,
        weights: Optional[np.ndarray],
        counter: WorkCounter,
    ) -> np.ndarray:
        if not self.supports(kernel):
            return self._fused.query_row_sums(
                grid, kernel, dx, dy, dt, weights, counter
            )
        self._charge_pairs(counter, dx.size)
        kid = _KERNEL_IDS[kernel.name]
        one = np.zeros((1, 1), dtype=np.float64)
        self._warmup(
            "rowsum",
            lambda: _row_sums_jit(
                0, 1.0, 1.0, one, one, one, one, False,
                np.empty(1, dtype=np.float64),
            ),
        )
        was_1d = dx.ndim == 1
        DX, DY, DT = _as_2d(dx), _as_2d(dy), _as_2d(dt)
        has_w = weights is not None
        W = _as_2d(weights) if has_w else DX
        out = np.empty(DX.shape[0], dtype=np.float64)
        _row_sums_jit(
            kid, float(grid.hs), float(grid.ht), DX, DY, DT, W, has_w, out
        )
        return out[0] if was_1d else out

    def sampled_contributions(
        self,
        grid: GridSpec,
        kernel: KernelPair,
        dx: np.ndarray,
        dy: np.ndarray,
        dt: np.ndarray,
        weights: Optional[np.ndarray],
        counter: WorkCounter,
    ) -> np.ndarray:
        if not self.supports(kernel):
            return self._fused.sampled_contributions(
                grid, kernel, dx, dy, dt, weights, counter
            )
        self._charge_pairs(counter, dx.size)
        kid = _KERNEL_IDS[kernel.name]
        one = np.zeros((1, 1), dtype=np.float64)
        self._warmup(
            "sampled",
            lambda: _elementwise_jit(
                0, 1.0, 1.0, one, one, one, one, False,
                np.empty((1, 1), dtype=np.float64),
            ),
        )
        was_1d = dx.ndim == 1
        DX, DY, DT = _as_2d(dx), _as_2d(dy), _as_2d(dt)
        has_w = weights is not None
        W = _as_2d(weights) if has_w else DX
        out = np.empty(DX.shape, dtype=np.float64)
        _elementwise_jit(
            kid, float(grid.hs), float(grid.ht), DX, DY, DT, W, has_w, out
        )
        return out[0] if was_1d else out
