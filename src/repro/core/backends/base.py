"""The compute-backend seam: pair-evaluation primitives behind one interface.

Every hot path in the system funnels through a narrow waist of four
primitives — the masked kernel product over broadcastable offset arrays,
cohort table construction for the stamp modes, the cohort row sums of the
query gather, and the sampled contribution evaluation of the approximate
tier.  :class:`ComputeBackend` owns exactly that waist, so a compiled
implementation accelerates stamping, VB/VB-DEC tiles, ``direct_sum`` and
``approx_sum`` at once without any caller changing shape.

Contracts every implementation must honour:

* **Masks**: the cylinder condition is ``dx^2 + dy^2 < hs^2`` (strict) and
  ``|dt| <= ht`` (closed) — identical to the legacy per-point paths.
* **Equivalence**: results agree with the ``numpy-ref`` backend at
  ``rtol=1e-12`` elementwise (the reference itself is bit-identical to the
  pre-seam code by construction).  Reductions must either match the
  reference's pairwise summation order or compensate (Kahan) so row sums
  stay inside the pin.
* **Accounting**: work counters report the *logical* operation counts —
  identical across backends, charged in O(1) from array shapes (never by
  reducing a mask), so instrumentation does not show up in the profile it
  measures.  Each primitive invocation additionally records one dispatch
  under the backend's name (``WorkCounter.backend_dispatches``).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..grid import GridSpec
from ..instrument import WorkCounter
from ..kernels import KernelPair

__all__ = ["ComputeBackend"]


class ComputeBackend:
    """Interface of a pair-evaluation backend.

    Subclasses set :attr:`name` and implement the four primitives.  The
    scatter/gather plumbing around them (slab planning, bincount scatter,
    CSR run flattening, the Hansen–Hurwitz estimator arithmetic) stays in
    the callers — it is index bookkeeping, not pair arithmetic, and keeping
    it shared is what guarantees every backend answers the same candidate
    sets in the same order.
    """

    #: Registry name (``"numpy-ref"``, ``"numpy-fused"``, ``"numba"``).
    name: str = "abstract"

    #: One-time compilation/warmup wall seconds this backend has paid
    #: (JIT backends accumulate first-call compile times here so stats can
    #: report warmup separately from steady-state service time).
    warmup_seconds: float = 0.0

    def supports(self, kernel: KernelPair) -> bool:
        """Whether this backend can evaluate ``kernel`` natively.

        Backends that compile a fixed set of kernels return ``False`` for
        unknown (user-registered) pairs; callers then fall back to an
        always-available backend for that call.
        """
        return True

    # -- primitives ----------------------------------------------------

    def masked_kernel_product(
        self,
        grid: GridSpec,
        kernel: KernelPair,
        DX: np.ndarray,
        DY: np.ndarray,
        DT: np.ndarray,
        counter: WorkCounter,
    ) -> np.ndarray:
        """Masked ``k_s * k_t`` over broadcastable voxel/point offsets."""
        raise NotImplementedError

    def cohort_tables(
        self,
        grid: GridSpec,
        kernel: KernelPair,
        mode: str,
        norm: float,
        dx: np.ndarray,
        dy: np.ndarray,
        dt: np.ndarray,
        counter: WorkCounter,
    ) -> np.ndarray:
        """Contribution cylinders ``(m, wx, wy, wt)`` for one cohort slab.

        ``mode`` is one of :data:`repro.core.stamping.STAMP_MODES`; ``dx``
        is ``(m, wx)``, ``dy`` ``(m, wy)``, ``dt`` ``(m, wt)`` per-axis
        voxel-center offsets, ``norm`` the normalisation folded into the
        tables exactly where the reference folds it.
        """
        raise NotImplementedError

    def query_row_sums(
        self,
        grid: GridSpec,
        kernel: KernelPair,
        dx: np.ndarray,
        dy: np.ndarray,
        dt: np.ndarray,
        weights: Optional[np.ndarray],
        counter: WorkCounter,
    ) -> np.ndarray:
        """Per-query candidate sums for the direct-sum cohort gather.

        ``dx/dy/dt`` are ``(Q, K)`` query-to-candidate offsets (or 1-D
        ``(K,)`` for the sparse single-query path); ``weights`` the
        already-gathered per-candidate weights of the same shape or
        ``None``.  Returns ``(Q,)`` row sums (a 0-d array for 1-D input).
        """
        raise NotImplementedError

    def sampled_contributions(
        self,
        grid: GridSpec,
        kernel: KernelPair,
        dx: np.ndarray,
        dy: np.ndarray,
        dt: np.ndarray,
        weights: Optional[np.ndarray],
        counter: WorkCounter,
    ) -> np.ndarray:
        """Per-draw weighted contributions for the importance sampler.

        Elementwise: the masked kernel product with the gathered event
        weights folded in (unit weights when ``weights is None``).  The
        caller owns the Hansen–Hurwitz reweighting and the variance
        bookkeeping — they are estimator arithmetic over these values.
        """
        raise NotImplementedError

    # -- shared accounting ---------------------------------------------

    def _charge_mode(
        self,
        counter: WorkCounter,
        mode: str,
        m: int,
        wx: int,
        wy: int,
        wt: int,
    ) -> None:
        """Charge one cohort-table build with ``mode``'s logical profile.

        The counts are the *mode's* cost profile (what the reference
        evaluates), identical across backends and O(1) from the table
        shape — backends that factorise or compile the evaluation still
        charge the same logical work; their advantage shows up only in
        the per-backend unit costs of the machine model.
        """
        cells = m * wx * wy * wt
        disk_cells = m * wx * wy
        bar_cells = m * wt
        if mode == "sym":
            counter.spatial_evals += disk_cells
            counter.temporal_evals += bar_cells
            counter.distance_tests += disk_cells + bar_cells
            counter.madds += cells
        elif mode == "pb":
            counter.spatial_evals += cells
            counter.temporal_evals += cells
            counter.distance_tests += cells
            counter.madds += cells
        elif mode == "disk":
            counter.spatial_evals += disk_cells
            counter.temporal_evals += cells
            counter.distance_tests += disk_cells + cells
            counter.madds += cells
        elif mode == "bar":
            counter.spatial_evals += cells
            counter.temporal_evals += bar_cells
            counter.distance_tests += bar_cells + cells
            counter.madds += cells
        else:
            from ..stamping import STAMP_MODES

            raise ValueError(
                f"unknown stamp mode {mode!r}; expected one of {STAMP_MODES}"
            )
        counter.add_dispatch(self.name)

    def _charge_pairs(self, counter: WorkCounter, pairs: int) -> None:
        """Charge one tabulation of ``pairs`` kernel-product pairs.

        O(1): the logical counts come from array shapes, so charging costs
        the same whether the counter records or discards.
        """
        counter.distance_tests += pairs
        counter.spatial_evals += pairs
        counter.temporal_evals += pairs
        counter.madds += pairs
        counter.add_dispatch(self.name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ComputeBackend {self.name}>"
