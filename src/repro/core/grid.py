"""Domain and voxel-grid model for STKDE.

Implements the notation of Table 1 of the paper.  Two coordinate systems
coexist and the code keeps the paper's naming convention:

* **domain space** (lowercase): continuous coordinates ``(x, y, t)`` inside a
  box of physical size ``(gx, gy, gt)`` anchored at ``(x0, y0, t0)``, with
  spatial bandwidth ``hs`` and temporal bandwidth ``ht``;
* **voxel space** (uppercase): integer coordinates ``(X, Y, T)`` on a grid of
  ``Gx = ceil(gx / sres)`` by ``Gy = ceil(gy / sres)`` by
  ``Gt = ceil(gt / tres)`` voxels, with bandwidths
  ``Hs = ceil(hs / sres)`` and ``Ht = ceil(ht / tres)``.

Density estimates are sampled at **voxel centers**: the sample coordinate of
voxel ``X`` along x is ``x0 + (X + 0.5) * sres``.  With this choice the
paper's window bound holds exactly: every voxel whose center lies within
``hs`` (resp. ``ht``) of a point is contained in the index window
``[Xi - Hs, Xi + Hs]`` (resp. ``[Ti - Ht, Ti + Ht]``) around the point's
voxel — see :meth:`GridSpec.point_window` and the proof in the tests.

Volumes are C-ordered ``float64`` arrays of shape ``(Gx, Gy, Gt)``; keeping
time as the last (contiguous) axis makes the temporal-invariant "bar"
multiplications of PB-SYM cache-friendly, mirroring the layout discussion in
the paper's Section 6.3.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

__all__ = ["DomainSpec", "GridSpec", "PointSet", "Volume", "VoxelWindow"]


def _ceil_div_pos(a: float, b: float) -> int:
    """``ceil(a / b)`` for positive floats, robust to float representation."""
    q = a / b
    r = math.ceil(q)
    # Guard against e.g. 0.30000000000000004 / 0.1 = 3.0000000000000004.
    if r - 1 >= 1 and (r - 1) * b >= a - 1e-9 * max(1.0, abs(a)):
        return r - 1
    return r


@dataclass(frozen=True)
class DomainSpec:
    """Physical extent and discretisation of the computation domain.

    Parameters mirror Table 1: ``gx, gy, gt`` are the real sizes of the
    domain, ``sres`` the spatial and ``tres`` the temporal resolution.
    ``x0, y0, t0`` anchor the box (the paper implicitly uses 0).
    """

    gx: float
    gy: float
    gt: float
    sres: float
    tres: float
    x0: float = 0.0
    y0: float = 0.0
    t0: float = 0.0

    def __post_init__(self) -> None:
        for name in ("gx", "gy", "gt", "sres", "tres"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive, got {getattr(self, name)}")

    @property
    def Gx(self) -> int:
        """Grid size along x in voxels: ``ceil(gx / sres)``."""
        return _ceil_div_pos(self.gx, self.sres)

    @property
    def Gy(self) -> int:
        """Grid size along y in voxels: ``ceil(gy / sres)``."""
        return _ceil_div_pos(self.gy, self.sres)

    @property
    def Gt(self) -> int:
        """Grid size along t in voxels: ``ceil(gt / tres)``."""
        return _ceil_div_pos(self.gt, self.tres)

    @classmethod
    def from_voxels(
        cls,
        Gx: int,
        Gy: int,
        Gt: int,
        *,
        sres: float = 1.0,
        tres: float = 1.0,
        x0: float = 0.0,
        y0: float = 0.0,
        t0: float = 0.0,
    ) -> "DomainSpec":
        """Build a domain whose grid is exactly ``Gx x Gy x Gt`` voxels.

        Convenient for instances specified directly in voxel units
        (Table 2 of the paper lists instances this way).
        """
        if min(Gx, Gy, Gt) < 1:
            raise ValueError("grid dimensions must be >= 1")
        return cls(
            gx=Gx * sres,
            gy=Gy * sres,
            gt=Gt * tres,
            sres=sres,
            tres=tres,
            x0=x0,
            y0=y0,
            t0=t0,
        )


@dataclass(frozen=True)
class VoxelWindow:
    """A clipped axis-aligned box of voxels ``[x0:x1) x [y0:y1) x [t0:t1)``.

    Produced by :meth:`GridSpec.point_window`; consumed by every point-based
    algorithm as the iteration bounds of a point's density cylinder.
    """

    x0: int
    x1: int
    y0: int
    y1: int
    t0: int
    t1: int

    @property
    def empty(self) -> bool:
        return self.x0 >= self.x1 or self.y0 >= self.y1 or self.t0 >= self.t1

    @property
    def shape(self) -> Tuple[int, int, int]:
        return (
            max(0, self.x1 - self.x0),
            max(0, self.y1 - self.y0),
            max(0, self.t1 - self.t0),
        )

    @property
    def volume(self) -> int:
        sx, sy, st = self.shape
        return sx * sy * st

    def slices(self) -> Tuple[slice, slice, slice]:
        """Slices indexing this window inside a full ``(Gx, Gy, Gt)`` array."""
        return (slice(self.x0, self.x1), slice(self.y0, self.y1), slice(self.t0, self.t1))

    def intersect(self, other: "VoxelWindow") -> "VoxelWindow":
        """Intersection window (possibly empty)."""
        return VoxelWindow(
            max(self.x0, other.x0),
            min(self.x1, other.x1),
            max(self.y0, other.y0),
            min(self.y1, other.y1),
            max(self.t0, other.t0),
            min(self.t1, other.t1),
        )

    def contains_voxel(self, X: int, Y: int, T: int) -> bool:
        return (
            self.x0 <= X < self.x1
            and self.y0 <= Y < self.y1
            and self.t0 <= T < self.t1
        )


class GridSpec:
    """Voxel grid bound to a domain and a bandwidth pair.

    This is the object every algorithm receives: it knows the domain, the
    discretisation, the voxel bandwidths ``Hs``/``Ht``, and how to map points
    to voxels and cylinders to index windows.
    """

    __slots__ = (
        "domain", "hs", "ht", "Gx", "Gy", "Gt", "Hs", "Ht",
        "_xc", "_yc", "_tc",
    )

    def __init__(self, domain: DomainSpec, hs: float, ht: float) -> None:
        if hs <= 0 or ht <= 0:
            raise ValueError(f"bandwidths must be positive, got hs={hs}, ht={ht}")
        self.domain = domain
        self.hs = float(hs)
        self.ht = float(ht)
        self.Gx = domain.Gx
        self.Gy = domain.Gy
        self.Gt = domain.Gt
        self.Hs = _ceil_div_pos(self.hs, domain.sres)
        self.Ht = _ceil_div_pos(self.ht, domain.tres)
        # Lazily built voxel-center coordinate arrays.  Point-based
        # algorithms slice these millions of times (twice per stamp), so
        # they are built once and handed out as read-only views.
        self._xc: np.ndarray | None = None
        self._yc: np.ndarray | None = None
        self._tc: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Coordinate mapping
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, int, int]:
        """Grid shape ``(Gx, Gy, Gt)``."""
        return (self.Gx, self.Gy, self.Gt)

    @property
    def n_voxels(self) -> int:
        """Total voxel count ``Gx * Gy * Gt``."""
        return self.Gx * self.Gy * self.Gt

    @property
    def grid_bytes(self) -> int:
        """Memory footprint of one float64 density volume."""
        return self.n_voxels * 8

    def x_centers(self, x0: int = 0, x1: int | None = None) -> np.ndarray:
        """Sample coordinates of voxel centers along x for ``[x0, x1)``.

        Returns a read-only view of a cached coordinate array; do not
        mutate (derive offsets with ``view - x``, which copies).
        """
        if self._xc is None:
            xc = self.domain.x0 + (np.arange(self.Gx) + 0.5) * self.domain.sres
            xc.setflags(write=False)
            self._xc = xc
        return self._xc[x0 : self.Gx if x1 is None else x1]

    def y_centers(self, y0: int = 0, y1: int | None = None) -> np.ndarray:
        """Sample coordinates of voxel centers along y for ``[y0, y1)``."""
        if self._yc is None:
            yc = self.domain.y0 + (np.arange(self.Gy) + 0.5) * self.domain.sres
            yc.setflags(write=False)
            self._yc = yc
        return self._yc[y0 : self.Gy if y1 is None else y1]

    def t_centers(self, t0: int = 0, t1: int | None = None) -> np.ndarray:
        """Sample coordinates of voxel centers along t for ``[t0, t1)``."""
        if self._tc is None:
            tc = self.domain.t0 + (np.arange(self.Gt) + 0.5) * self.domain.tres
            tc.setflags(write=False)
            self._tc = tc
        return self._tc[t0 : self.Gt if t1 is None else t1]

    def voxel_of(self, x: float, y: float, t: float) -> Tuple[int, int, int]:
        """Voxel ``(Xi, Yi, Ti)`` containing a domain-space point.

        Points exactly on the far boundary are clamped into the last voxel so
        that every point of the closed domain box has an owner voxel.
        """
        Xi = min(self.Gx - 1, max(0, int((x - self.domain.x0) / self.domain.sres)))
        Yi = min(self.Gy - 1, max(0, int((y - self.domain.y0) / self.domain.sres)))
        Ti = min(self.Gt - 1, max(0, int((t - self.domain.t0) / self.domain.tres)))
        return Xi, Yi, Ti

    def voxels_of(self, points: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`voxel_of` for an ``(n, 3)`` point array."""
        pts = np.asarray(points, dtype=np.float64)
        vox = np.empty(pts.shape, dtype=np.int64)
        vox[:, 0] = (pts[:, 0] - self.domain.x0) / self.domain.sres
        vox[:, 1] = (pts[:, 1] - self.domain.y0) / self.domain.sres
        vox[:, 2] = (pts[:, 2] - self.domain.t0) / self.domain.tres
        np.clip(vox[:, 0], 0, self.Gx - 1, out=vox[:, 0])
        np.clip(vox[:, 1], 0, self.Gy - 1, out=vox[:, 1])
        np.clip(vox[:, 2], 0, self.Gt - 1, out=vox[:, 2])
        return vox

    def point_window(self, x: float, y: float, t: float) -> VoxelWindow:
        """Clipped voxel window of the density cylinder around a point.

        The window is ``[Xi - Hs, Xi + Hs] x [Yi - Hs, Yi + Hs] x
        [Ti - Ht, Ti + Ht]`` intersected with the grid — exactly the loop
        bounds of Algorithm 2 (PB).  Voxel centers outside this window are
        guaranteed to fail the ``d < hs`` / ``|dt| <= ht`` tests.
        """
        Xi, Yi, Ti = self.voxel_of(x, y, t)
        return VoxelWindow(
            max(0, Xi - self.Hs),
            min(self.Gx, Xi + self.Hs + 1),
            max(0, Yi - self.Hs),
            min(self.Gy, Yi + self.Hs + 1),
            max(0, Ti - self.Ht),
            min(self.Gt, Ti + self.Ht + 1),
        )

    def full_window(self) -> VoxelWindow:
        """Window covering the whole grid."""
        return VoxelWindow(0, self.Gx, 0, self.Gy, 0, self.Gt)

    def normalization(self, n: int) -> float:
        """The estimator's prefactor ``1 / (n * hs^2 * ht)``."""
        if n <= 0:
            raise ValueError("normalization requires n >= 1 points")
        return 1.0 / (n * self.hs * self.hs * self.ht)

    def allocate(self) -> np.ndarray:
        """Allocate a zero-initialised density volume for this grid.

        Uses ``empty`` + ``fill`` rather than ``zeros``: ``zeros`` maps
        copy-on-write zero pages that are only materialised on first write,
        which would hide the initialisation cost the paper's Figure 7
        measures (and that dominates sparse instances like Flu).  The
        explicit fill performs the real first-touch the paper's Section 6.3
        discusses.
        """
        vol = np.empty(self.shape, dtype=np.float64)
        vol.fill(0.0)
        return vol

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GridSpec({self.Gx}x{self.Gy}x{self.Gt}, Hs={self.Hs}, Ht={self.Ht}, "
            f"hs={self.hs}, ht={self.ht})"
        )


class PointSet:
    """Immutable collection of space-time events.

    Wraps an ``(n, 3)`` float64 array with columns ``(x, y, t)`` in domain
    coordinates.  All algorithms consume a :class:`PointSet`.

    Events may carry optional non-negative ``weights`` (case multiplicities,
    report confidences).  The grid-stamping algorithms treat every event as
    unit weight; the query-serving subsystem's direct kernel summation
    (:mod:`repro.serve`) honours the weights, and the CSV I/O round-trips
    them so serving snapshots persist multiplicity.
    """

    __slots__ = ("coords", "weights")

    def __init__(self, coords: np.ndarray, weights: np.ndarray | None = None) -> None:
        arr = np.ascontiguousarray(np.asarray(coords, dtype=np.float64))
        if arr.ndim != 2 or arr.shape[1] != 3:
            raise ValueError(f"expected (n, 3) array of (x, y, t), got {arr.shape}")
        if not np.all(np.isfinite(arr)):
            raise ValueError("point coordinates must be finite")
        arr.setflags(write=False)
        self.coords = arr
        if weights is None:
            self.weights = None
        else:
            w = np.ascontiguousarray(np.asarray(weights, dtype=np.float64)).reshape(-1)
            if w.shape[0] != arr.shape[0]:
                raise ValueError(
                    f"weights length {w.shape[0]} does not match {arr.shape[0]} points"
                )
            if not np.all(np.isfinite(w)) or np.any(w < 0):
                raise ValueError("weights must be finite and non-negative")
            w.setflags(write=False)
            self.weights = w

    @classmethod
    def from_columns(cls, xs, ys, ts, weights=None) -> "PointSet":
        """Build from separate coordinate columns."""
        return cls(np.column_stack([xs, ys, ts]), weights)

    @property
    def n(self) -> int:
        """Number of events."""
        return self.coords.shape[0]

    @property
    def weighted(self) -> bool:
        """Whether the events carry explicit (possibly non-uniform) weights."""
        return self.weights is not None

    @property
    def total_weight(self) -> float:
        """Sum of event weights (``n`` when unweighted)."""
        if self.weights is None:
            return float(self.n)
        return float(self.weights.sum())

    @property
    def xs(self) -> np.ndarray:
        return self.coords[:, 0]

    @property
    def ys(self) -> np.ndarray:
        return self.coords[:, 1]

    @property
    def ts(self) -> np.ndarray:
        return self.coords[:, 2]

    def __len__(self) -> int:
        return self.n

    def __iter__(self) -> Iterator[Tuple[float, float, float]]:
        for row in self.coords:
            yield (float(row[0]), float(row[1]), float(row[2]))

    def subset(self, index) -> "PointSet":
        """PointSet restricted to the given integer/boolean index."""
        w = None if self.weights is None else self.weights[index]
        return PointSet(self.coords[index], w)

    def concat(self, other: "PointSet") -> "PointSet":
        """Concatenation of two point sets.

        Weights survive when either side carries them; the unweighted side
        contributes unit weights.
        """
        coords = np.vstack([self.coords, other.coords])
        if self.weights is None and other.weights is None:
            return PointSet(coords)
        wa = self.weights if self.weights is not None else np.ones(self.n)
        wb = other.weights if other.weights is not None else np.ones(other.n)
        return PointSet(coords, np.concatenate([wa, wb]))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        tag = ", weighted" if self.weights is not None else ""
        return f"PointSet(n={self.n}{tag})"


@dataclass
class Volume:
    """A computed density volume together with its grid specification."""

    data: np.ndarray
    grid: GridSpec

    def __post_init__(self) -> None:
        if self.data.shape != self.grid.shape:
            raise ValueError(
                f"volume shape {self.data.shape} does not match grid {self.grid.shape}"
            )

    @property
    def total_mass(self) -> float:
        """Integral of the density over the domain (voxel-sum quadrature)."""
        cell = self.grid.domain.sres**2 * self.grid.domain.tres
        return float(self.data.sum()) * cell

    def time_slice(self, T: int) -> np.ndarray:
        """The ``(Gx, Gy)`` spatial slice at voxel time ``T``."""
        return self.data[:, :, T]

    def max_voxel(self) -> Tuple[int, int, int]:
        """Voxel index of the density maximum."""
        flat = int(np.argmax(self.data))
        return tuple(int(v) for v in np.unravel_index(flat, self.data.shape))  # type: ignore[return-value]
