"""Work accounting and phase timing instrumentation.

The paper's evaluation reasons about three kinds of cost:

* **initialisation** — zeroing (and first-touching) the density volume,
  ``Theta(Gx * Gy * Gt)`` writes (Figure 7 shows instances where this
  dominates);
* **compute** — kernel evaluations and multiply-adds inside the point
  cylinders, ``Theta(n * Hs^2 * Ht)``;
* **reduction** — summing replicated volumes (PB-SYM-DR, PB-SYM-PD-REP).

Every algorithm in this package accepts an optional :class:`WorkCounter`
and reports its operations into it; the parallel schedulers additionally
use per-task :class:`WorkCounter` snapshots as task weights.  A
:class:`PhaseTimer` records wall-clock per phase and is what the Figure 7
benchmark prints.

Counters are plain objects passed explicitly (no globals, no thread-local
magic) so that parallel tasks can own private counters that are merged at
the end — the same pattern the algorithms themselves use for density
volumes.
"""

from __future__ import annotations

import math
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator

__all__ = ["WorkCounter", "PhaseTimer", "LatencyHistogram", "null_counter"]


@dataclass
class WorkCounter:
    """Operation counters for one algorithm execution (or one task).

    Attributes count *logical* operations, independent of vectorisation:

    ``spatial_evals``
        Evaluations of the spatial kernel ``k_s`` (one per voxel for VB/PB/
        PB-BAR, one per disk cell for PB-DISK/PB-SYM).
    ``temporal_evals``
        Evaluations of the temporal kernel ``k_t``.
    ``distance_tests``
        Point-to-voxel distance tests (the dominant cost of VB).
    ``madds``
        Multiply-accumulate operations into a density volume.  Charged
        from array shapes (the full tabulated window, mask included) so
        accounting stays O(1) per batch — instrumentation must never pay
        a full-array reduction inside the loop it is profiling.
    ``init_writes``
        Voxels zero-initialised (counts every volume allocation, including
        replicas — this is DR's overhead).
    ``reduce_adds``
        Voxel additions performed when merging replicated volumes.
    ``points_processed``
        Number of point cylinders stamped.
    ``stamp_batches``
        Invocations of the batched stamping engine
        (:func:`repro.core.stamping.stamp_batch`): each pays one fixed
        dispatch cost regardless of batch size, which is what the Section
        6.5 cost model's per-batch term charges.
    ``stamp_cohorts``
        Shape cohorts processed by the engine across all batches — the
        number of vectorised tabulate/scatter rounds actually executed.
    ``tile_batches``
        (Voxel-chunk x point-block) tiles accumulated through the region
        engine (:func:`repro.core.regions.accumulate_voxel_tile`) — the
        dispatch unit of VB/VB-DEC, priced per tile by the cost model.
    ``shard_bbox_cells``
        Cells of bounding-box region buffers allocated
        (:class:`repro.core.regions.RegionBuffer`): threaded stamping
        shards and incremental batch caches.  Compare against
        ``P * Gx * Gy * Gt`` to see the memory the bbox shards save over
        full private volumes.
    ``query_cohorts``
        Candidate-count cohorts tabulated by the cohort-vectorised
        direct-sum engine (:func:`repro.serve.engine.direct_sum`) — the
        number of vectorised gather/tabulate rounds the read path ran,
        the unit the cost model's ``c_qcohort`` prices.
    ``index_events_bucketed``
        Events bucketed (cell keys computed and sorted) into
        :class:`repro.serve.index.BucketIndex` CSR segments.  After a
        window slide this should be ~the arriving batch size, not the
        live event count — the O(batch) index-sync contract.
    ``index_events_retired``
        Events whose index segment was retired (no re-bucketing; rows go
        dead until compaction).
    ``slab_buffers_retired``
        Cached t-slab region buffers subtracted during sliding-window
        retirement (:meth:`repro.core.incremental.IncrementalSTKDE
        .slide_window`) — each is an O(bbox) subtraction with zero kernel
        evaluations.
    ``slab_restamp_points``
        Survivor points restamped because the window horizon cut through
        their slab (the straddle slab).  The O(delta) slide contract:
        this should be ~one slab's worth per slide, not the surviving
        batch.
    ``index_segments_merged``
        Index segments absorbed into consolidated segments by the
        merge policy (:meth:`repro.serve.index.BucketIndex.sync`) — rows
        are copied, never re-bucketed.
    ``index_rows_compacted``
        Storage rows moved paying down index compaction debt (gap
        relocation and full sweeps) — the amortised cost the serving
        path no longer pays inside ``remove_segment``.
    ``shard_messages``
        Request messages a sharded-serving coordinator sent to worker
        processes (:class:`repro.serve.service.ShardedDensityService`).
        The O(affected-shards) routing gauge: a slide that touches one
        shard's events must cost ~one message, not one per worker.
    ``shard_rows_shipped``
        Event/query/result rows serialized across the process boundary
        by the sharded coordinator — what the cost model's per-row
        serialization rate (``c_qser``) prices.
    ``queries_exact``
        Point-query rows answered by an exact backend (direct sum or
        volume lookup) — the denominator of the serving tier's
        exact/approximate traffic mix.
    ``queries_approx``
        Point-query rows answered by the ε-budgeted importance sampler
        (:func:`repro.serve.engine.approx_sum`).
    ``sample_rows_drawn``
        Candidate rows drawn (with replacement) by the approximate
        backend across all queries — the sublinear-work gauge: compare
        against the exact path's candidate count to see what the error
        budget bought.
    ``frontend_batches``
        Cohort batches the async traffic front end
        (:class:`repro.serve.frontend.TrafficFrontend`) dispatched to
        the wrapped service — every flush of a coalescing bucket and
        every bulk/mutation dispatch counts one.
    ``frontend_coalesced``
        Individual point-query requests that were folded into a shared
        cohort batch by the coalescer.  ``frontend_coalesced /
        frontend_batches`` is the mean batch size the hold window
        actually bought — the amortisation gauge of the whole front
        end.
    ``frontend_shed``
        Requests rejected by admission control with ``Overloaded`` —
        the pending-work budget (priced in predicted cost seconds, not
        request counts) was full.
    ``shard_restarts``
        Worker processes respawned by the shard supervisor
        (:class:`repro.serve.supervisor.ShardSupervisor`) after a death
        or a wedged request deadline.
    ``shard_replayed_batches``
        Mutation-log entries replayed into respawned workers — the
        recovery work gauge ``predict_recovery`` prices.
    ``requests_retried``
        Requests that failed against a dying worker and were completed
        against its recovered replacement (queries re-sent once,
        mutations completed by the replay itself).
    ``degraded_queries``
        Point-query rows answered from surviving shards only
        (``on_shard_failure="partial"``) — every one of these returned
        a coverage-tagged :class:`~repro.serve.errors.PartialResult`,
        never a silently incomplete array.
    ``backend_dispatches``
        Per-compute-backend invocation counts (backend name → number of
        primitive calls dispatched through it).  The observability handle
        for ``compute="auto"`` routing: which backend actually ran each
        tabulation.

    The batching statistics are bookkeeping (like ``points_processed``):
    they are excluded from :meth:`total_ops` and :meth:`flop_estimate`,
    as is ``backend_dispatches`` (a dispatch is not a flop).
    """

    spatial_evals: int = 0
    temporal_evals: int = 0
    distance_tests: int = 0
    madds: int = 0
    init_writes: int = 0
    reduce_adds: int = 0
    points_processed: int = 0
    stamp_batches: int = 0
    stamp_cohorts: int = 0
    tile_batches: int = 0
    shard_bbox_cells: int = 0
    query_cohorts: int = 0
    index_events_bucketed: int = 0
    index_events_retired: int = 0
    slab_buffers_retired: int = 0
    slab_restamp_points: int = 0
    index_segments_merged: int = 0
    index_rows_compacted: int = 0
    shard_messages: int = 0
    shard_rows_shipped: int = 0
    queries_exact: int = 0
    queries_approx: int = 0
    sample_rows_drawn: int = 0
    frontend_batches: int = 0
    frontend_coalesced: int = 0
    frontend_shed: int = 0
    shard_restarts: int = 0
    shard_replayed_batches: int = 0
    requests_retried: int = 0
    degraded_queries: int = 0
    backend_dispatches: Dict[str, int] = field(default_factory=dict)

    def add_dispatch(self, backend: str, n: int = 1) -> None:
        """Record ``n`` primitive dispatches through ``backend`` (O(1))."""
        self.backend_dispatches[backend] = (
            self.backend_dispatches.get(backend, 0) + n
        )

    def merge(self, other: "WorkCounter") -> "WorkCounter":
        """Accumulate another counter into this one (returns self)."""
        self.spatial_evals += other.spatial_evals
        self.temporal_evals += other.temporal_evals
        self.distance_tests += other.distance_tests
        self.madds += other.madds
        self.init_writes += other.init_writes
        self.reduce_adds += other.reduce_adds
        self.points_processed += other.points_processed
        self.stamp_batches += other.stamp_batches
        self.stamp_cohorts += other.stamp_cohorts
        self.tile_batches += other.tile_batches
        self.shard_bbox_cells += other.shard_bbox_cells
        self.query_cohorts += other.query_cohorts
        self.index_events_bucketed += other.index_events_bucketed
        self.index_events_retired += other.index_events_retired
        self.slab_buffers_retired += other.slab_buffers_retired
        self.slab_restamp_points += other.slab_restamp_points
        self.index_segments_merged += other.index_segments_merged
        self.index_rows_compacted += other.index_rows_compacted
        self.shard_messages += other.shard_messages
        self.shard_rows_shipped += other.shard_rows_shipped
        self.queries_exact += other.queries_exact
        self.queries_approx += other.queries_approx
        self.sample_rows_drawn += other.sample_rows_drawn
        self.frontend_batches += other.frontend_batches
        self.frontend_coalesced += other.frontend_coalesced
        self.frontend_shed += other.frontend_shed
        self.shard_restarts += other.shard_restarts
        self.shard_replayed_batches += other.shard_replayed_batches
        self.requests_retried += other.requests_retried
        self.degraded_queries += other.degraded_queries
        for name, count in other.backend_dispatches.items():
            self.add_dispatch(name, count)
        return self

    def total_ops(self) -> int:
        """Aggregate logical operation count (used as a task weight)."""
        return (
            self.spatial_evals
            + self.temporal_evals
            + self.distance_tests
            + self.madds
            + self.init_writes
            + self.reduce_adds
        )

    def flop_estimate(self, spatial_flops: int = 6, temporal_flops: int = 3) -> int:
        """Rough flop count given per-kernel-evaluation costs."""
        return (
            self.spatial_evals * spatial_flops
            + self.temporal_evals * temporal_flops
            + self.distance_tests * 5
            + self.madds * 2
            + self.reduce_adds
        )

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view (stable key order) for serialisation."""
        return {
            "spatial_evals": self.spatial_evals,
            "temporal_evals": self.temporal_evals,
            "distance_tests": self.distance_tests,
            "madds": self.madds,
            "init_writes": self.init_writes,
            "reduce_adds": self.reduce_adds,
            "points_processed": self.points_processed,
            "stamp_batches": self.stamp_batches,
            "stamp_cohorts": self.stamp_cohorts,
            "tile_batches": self.tile_batches,
            "shard_bbox_cells": self.shard_bbox_cells,
            "query_cohorts": self.query_cohorts,
            "index_events_bucketed": self.index_events_bucketed,
            "index_events_retired": self.index_events_retired,
            "slab_buffers_retired": self.slab_buffers_retired,
            "slab_restamp_points": self.slab_restamp_points,
            "index_segments_merged": self.index_segments_merged,
            "index_rows_compacted": self.index_rows_compacted,
            "shard_messages": self.shard_messages,
            "shard_rows_shipped": self.shard_rows_shipped,
            "queries_exact": self.queries_exact,
            "queries_approx": self.queries_approx,
            "sample_rows_drawn": self.sample_rows_drawn,
            "frontend_batches": self.frontend_batches,
            "frontend_coalesced": self.frontend_coalesced,
            "frontend_shed": self.frontend_shed,
            "shard_restarts": self.shard_restarts,
            "shard_replayed_batches": self.shard_replayed_batches,
            "requests_retried": self.requests_retried,
            "degraded_queries": self.degraded_queries,
            "backend_dispatches": dict(self.backend_dispatches),
        }

    def copy(self) -> "WorkCounter":
        return WorkCounter(**self.as_dict())


class _NullCounter(WorkCounter):
    """A counter that ignores all accumulation (zero-overhead default)."""

    def merge(self, other: WorkCounter) -> WorkCounter:  # pragma: no cover
        return self

    def add_dispatch(self, backend: str, n: int = 1) -> None:
        pass

    def __setattr__(self, name: str, value) -> None:
        # Freeze at zero: attribute writes are dropped.  dataclass __init__
        # also routes through here, which is fine (fields stay unset and the
        # class-level defaults of 0 from WorkCounter's fields apply).
        pass

    def __getattribute__(self, name: str):
        if name in (
            "spatial_evals",
            "temporal_evals",
            "distance_tests",
            "madds",
            "init_writes",
            "reduce_adds",
            "points_processed",
            "stamp_batches",
            "stamp_cohorts",
            "tile_batches",
            "shard_bbox_cells",
            "query_cohorts",
            "index_events_bucketed",
            "index_events_retired",
            "slab_buffers_retired",
            "slab_restamp_points",
            "index_segments_merged",
            "index_rows_compacted",
            "shard_messages",
            "shard_rows_shipped",
            "queries_exact",
            "queries_approx",
            "sample_rows_drawn",
            "frontend_batches",
            "frontend_coalesced",
            "frontend_shed",
            "shard_restarts",
            "shard_replayed_batches",
            "requests_retried",
            "degraded_queries",
        ):
            return 0
        if name == "backend_dispatches":
            # Fresh throwaway dict: mutations by shared helpers are dropped,
            # matching the zero-frozen scalar fields.
            return {}
        return object.__getattribute__(self, name)


_NULL = _NullCounter()


def null_counter() -> WorkCounter:
    """Shared do-nothing counter used when callers pass ``counter=None``."""
    return _NULL


class PhaseTimer:
    """Wall-clock accumulation per named phase.

    Usage::

        timer = PhaseTimer()
        with timer.phase("init"):
            volume = grid.allocate()
        with timer.phase("compute"):
            ...

    ``timer.seconds`` maps phase name to accumulated seconds;
    ``timer.total`` is their sum.  Phases may be entered repeatedly; nesting
    different phases is allowed (each measures its own span), re-entering
    the *same* phase recursively is rejected because the accounting would
    double-count.
    """

    def __init__(self) -> None:
        self.seconds: Dict[str, float] = {}
        self._open: Dict[str, float] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        if name in self._open:
            raise RuntimeError(f"phase {name!r} is already open")
        self._open[name] = time.perf_counter()
        try:
            yield
        finally:
            start = self._open.pop(name)
            self.seconds[name] = self.seconds.get(name, 0.0) + (
                time.perf_counter() - start
            )

    def add(self, name: str, seconds: float) -> None:
        """Record an externally measured span (e.g. from a worker)."""
        if seconds < 0:
            raise ValueError("cannot add negative time")
        self.seconds[name] = self.seconds.get(name, 0.0) + seconds

    @property
    def total(self) -> float:
        """Sum of all phase durations."""
        return sum(self.seconds.values())

    def fraction(self, name: str) -> float:
        """Share of total time spent in ``name`` (0.0 if nothing recorded)."""
        total = self.total
        if total == 0:
            return 0.0
        return self.seconds.get(name, 0.0) / total

    def as_dict(self) -> Dict[str, float]:
        return dict(self.seconds)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = ", ".join(f"{k}={v:.4f}s" for k, v in sorted(self.seconds.items()))
        return f"PhaseTimer({parts})"


class LatencyHistogram:
    """Log-bucketed latency accumulator with bounded memory.

    Records durations (seconds) into geometrically spaced buckets from
    ``lo`` to ``hi`` (defaults 1µs..100s) so a long-running service can
    report p50/p95/p99 without retaining every sample.  Quantiles are
    read from the bucket upper edges — for ``bins_per_decade=20`` the
    edges are ~12% apart, which bounds the relative quantile error at
    one bucket width.  Used by the traffic front end for per-request
    latency, and by the load harness to summarise a run.
    """

    def __init__(
        self,
        lo: float = 1e-6,
        hi: float = 100.0,
        bins_per_decade: int = 20,
    ) -> None:
        if not (0 < lo < hi):
            raise ValueError("need 0 < lo < hi")
        self.lo = lo
        self.hi = hi
        self._log_lo = math.log(lo)
        decades = math.log10(hi / lo)
        self.n_bins = max(1, int(round(decades * bins_per_decade)))
        self._scale = self.n_bins / (math.log(hi) - self._log_lo)
        self.counts = [0] * (self.n_bins + 2)  # + underflow/overflow
        self.total = 0
        self.sum_seconds = 0.0
        self.max_seconds = 0.0

    def record(self, seconds: float) -> None:
        self.total += 1
        self.sum_seconds += seconds
        if seconds > self.max_seconds:
            self.max_seconds = seconds
        if seconds < self.lo:
            self.counts[0] += 1
        elif seconds >= self.hi:
            self.counts[-1] += 1
        else:
            i = int((math.log(seconds) - self._log_lo) * self._scale)
            self.counts[1 + min(i, self.n_bins - 1)] += 1

    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        if other.n_bins != self.n_bins or other.lo != self.lo:
            raise ValueError("cannot merge histograms with different bins")
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.total += other.total
        self.sum_seconds += other.sum_seconds
        self.max_seconds = max(self.max_seconds, other.max_seconds)
        return self

    def _edge(self, i: int) -> float:
        """Upper edge of bucket ``i`` (1-based interior index)."""
        return math.exp(self._log_lo + i / self._scale)

    def quantile(self, q: float) -> float:
        """Latency at quantile ``q`` in [0, 1] (0.0 when empty)."""
        if self.total == 0:
            return 0.0
        target = q * self.total
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= target and c:
                if i == 0:
                    return self.lo
                if i == len(self.counts) - 1:
                    return self.max_seconds
                return self._edge(i)
        return self.max_seconds

    @property
    def mean(self) -> float:
        return self.sum_seconds / self.total if self.total else 0.0

    def as_dict(self) -> Dict[str, float]:
        """Summary view (not the raw buckets) for stats blobs."""
        return {
            "count": self.total,
            "mean_ms": self.mean * 1e3,
            "p50_ms": self.quantile(0.50) * 1e3,
            "p95_ms": self.quantile(0.95) * 1e3,
            "p99_ms": self.quantile(0.99) * 1e3,
            "max_ms": self.max_seconds * 1e3,
        }
