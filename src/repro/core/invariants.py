"""Computation of the PB-SYM invariants: spatial disks and temporal bars.

Section 3.2 of the paper observes that a point's contribution to its density
cylinder factorises into

* a **temporally invariant** spatial table ``Ks[X][Y]`` (a disk), and
* a **spatially invariant** temporal table ``Kt[T]`` (a bar),

so the full cylinder is the outer product ``Ks ⊗ Kt`` (Figure 3).  This
module computes those tables for a point over an arbitrary clipped index
range — the clipping generality is what PB-SYM-DD needs, since a subdomain
may contain only part of a cylinder yet the whole disk (or bar) must be
recomputed locally, which is exactly the overhead Figure 4 illustrates and
Figure 9 measures.

The normalisation ``1/(n hs^2 ht)`` is folded into the disk (as in
Algorithm 3 of the paper) so accumulating ``disk[...,None] * bar`` adds the
finished contribution.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .grid import GridSpec
from .instrument import WorkCounter, null_counter
from .kernels import KernelPair

__all__ = ["disk_table", "bar_table", "stamp_extent"]


def disk_table(
    grid: GridSpec,
    kernel: KernelPair,
    x: float,
    y: float,
    x_range: Tuple[int, int],
    y_range: Tuple[int, int],
    norm: float,
    counter: Optional[WorkCounter] = None,
) -> np.ndarray:
    """Spatial invariant ``Ks`` of a point over voxel rows/cols ranges.

    Parameters
    ----------
    x, y:
        Point coordinates in domain space.
    x_range, y_range:
        Half-open voxel index ranges ``[x0, x1)`` / ``[y0, y1)`` over which
        to tabulate (already clipped by the caller).
    norm:
        Multiplicative prefactor folded into the table, normally
        ``grid.normalization(n)``; DD/DR pass the same global value.

    Returns
    -------
    A ``(x1 - x0, y1 - y0)`` float64 array with
    ``norm * k_s(dx/hs, dy/hs)`` where the voxel-center distance is below
    ``hs`` and ``0.0`` elsewhere (the paper's strict ``d < hs`` test).
    """
    counter = counter if counter is not None else null_counter()
    x0, x1 = x_range
    y0, y1 = y_range
    dx = grid.x_centers(x0, x1) - x
    dy = grid.y_centers(y0, y1) - y
    # The inside test is written in domain units, `dx^2 + dy^2 < hs^2`, in
    # *exactly* this form in every algorithm of the package so that boundary
    # voxels are classified identically everywhere (fp-equal masks).
    d2 = dx[:, None] ** 2 + dy[None, :] ** 2
    inside = d2 < grid.hs * grid.hs
    # Evaluate on the full rectangle, then zero outside the disk: this is
    # what Algorithm 3 does (the kernel value is computed cell by cell with
    # an if/else writing 0 outside).  Radial kernels reuse d2 directly.
    if kernel.spatial_radial is not None:
        table = kernel.spatial_radial(d2 * (1.0 / (grid.hs * grid.hs)))
    else:
        u = dx[:, None] / grid.hs
        v = dy[None, :] / grid.hs
        table = kernel.spatial(
            np.broadcast_to(u, inside.shape), np.broadcast_to(v, inside.shape)
        )
    table *= norm
    table *= inside  # bool multiply zeroes the exterior without a temp
    counter.spatial_evals += table.size
    counter.distance_tests += table.size
    return table


def bar_table(
    grid: GridSpec,
    kernel: KernelPair,
    t: float,
    t_range: Tuple[int, int],
    counter: Optional[WorkCounter] = None,
) -> np.ndarray:
    """Temporal invariant ``Kt`` of a point over a voxel time range.

    Returns a ``(t1 - t0,)`` float64 array with ``k_t(dt/ht)`` where
    ``|dt| <= ht`` (the paper's inclusive temporal test) and ``0.0``
    elsewhere.
    """
    counter = counter if counter is not None else null_counter()
    t0, t1 = t_range
    dt = grid.t_centers(t0, t1) - t
    w = dt / grid.ht
    # Inclusive temporal test `|dt| <= ht`, in domain units, matching the
    # paper's Algorithm 1 condition and every other algorithm here.
    inside = np.abs(dt) <= grid.ht
    table = kernel.temporal(w)
    table *= inside
    counter.temporal_evals += table.size
    counter.distance_tests += table.size
    return table


def stamp_extent(grid: GridSpec) -> Tuple[int, int]:
    """Full (unclipped) stamp sizes ``(2*Hs + 1, 2*Ht + 1)``.

    Used by the cost model: an interior point evaluates a
    ``(2Hs+1)^2`` disk and a ``(2Ht+1)`` bar, and accumulates
    ``(2Hs+1)^2 * (2Ht+1)`` multiply-adds.
    """
    return (2 * grid.Hs + 1, 2 * grid.Ht + 1)
