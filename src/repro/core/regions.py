"""Unified region-accumulation engine: every bounded write into a volume.

PR 1 centralised the *point-stamp* write path (cohort batching in
:mod:`repro.core.stamping`); this module generalises it into a single
region-accumulation layer that owns **all** bounded writes into a density
volume, so the voxel-based tiles, the threaded shards, and the incremental
estimator stop maintaining private copies of the same machinery:

``masked_kernel_product``
    The shared tabulation core of the per-(voxel, point)-pair cost profile:
    one inside-mask + spatial + temporal evaluation over any broadcastable
    offset arrays.  Both the stamping engine's ``mode="pb"`` cohort tables
    and the VB/VB-DEC voxel tiles evaluate exactly this expression; having
    one implementation keeps their masks, operation order, and work
    accounting in lock-step by construction.

``accumulate_voxel_tile``
    The VB/VB-DEC tile path: a (voxel-chunk x point-block) tile evaluated
    through :func:`masked_kernel_product`, summed over the point axis, and
    scattered onto the flat volume.  Replaces the private
    ``_accumulate_tile`` the voxel-based algorithms used to carry.

``RegionBuffer``
    A private accumulation buffer covering only a bounding-box window of
    the grid.  This is what replaces the *full* per-worker private volumes
    of the threaded stamping path: a shard of clustered points touches a
    fraction of the grid, so its buffer (and the reduction traffic to merge
    it) shrinks to that fraction.  The incremental estimator caches the
    same buffers per batch, which is what makes sliding-window retirement
    an O(bbox) subtraction instead of a kernel re-tabulation.

``plan_stamp_shards``
    Balanced shard planning shared by the threaded executor and the
    Section 6.5 cost model (which must price the bbox-shard memory the
    executor will actually allocate).  Points are ordered by stamp-window
    origin before sharding so each shard's bounding box is a compact slab
    rather than the whole grid — the difference between ``P`` full volumes
    and a few percent of one.

Everything here preserves the engine's numerical contract: identical
masks and expression order to the legacy per-point / per-tile paths, with
equivalence pinned at ``rtol=1e-12`` by the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from .backends import ComputeBackend, get_backend
from .grid import GridSpec, VoxelWindow
from .instrument import WorkCounter, null_counter
from .kernels import KernelPair
from .stamping import batch_windows, masked_kernel_product, stamp_batch

__all__ = [
    "masked_kernel_product",
    "accumulate_voxel_tile",
    "accumulate_voxel_tile_batch",
    "batch_bbox",
    "RegionBuffer",
    "ShardPlan",
    "plan_stamp_shards",
    "plan_serving_shards",
    "auto_slab_voxels",
    "plan_time_slabs",
]


def accumulate_voxel_tile(
    out_flat: np.ndarray,
    vox_index: np.ndarray,
    cx: np.ndarray,
    cy: np.ndarray,
    ct: np.ndarray,
    px: np.ndarray,
    py: np.ndarray,
    pt: np.ndarray,
    grid: GridSpec,
    kernel: KernelPair,
    norm: float,
    counter: Optional[WorkCounter] = None,
    compute: "ComputeBackend | str | None" = None,
) -> None:
    """Accumulate one (voxel-chunk x point-block) tile onto a flat volume.

    The engine's voxel-based write path, shared by VB and VB-DEC:
    ``cx/cy/ct`` are the chunk's voxel-center coordinates, ``px/py/pt`` the
    point block, ``vox_index`` the chunk's flat C-order indices into
    ``out_flat``.  The kernel products are evaluated on the full tile and
    masked (preserving the Theta(voxels * points) operation profile of
    Algorithm 1), summed over the point axis, and scattered in one indexed
    add.  Each call is one tile batch (``counter.tile_batches``).
    ``compute`` selects the pair-evaluation backend (default ``numpy-ref``,
    bit-identical to the pre-seam path).
    """
    counter = counter if counter is not None else null_counter()
    backend = get_backend(compute)
    dx = cx[:, None] - px[None, :]
    dy = cy[:, None] - py[None, :]
    dt = ct[:, None] - pt[None, :]
    contrib = backend.masked_kernel_product(
        grid, kernel, dx, dy, dt, counter
    ).sum(axis=1)
    out_flat[vox_index] += contrib * norm
    counter.tile_batches += 1


def accumulate_voxel_tile_batch(
    out_flat: np.ndarray,
    vox_index: np.ndarray,
    cx: np.ndarray,
    cy: np.ndarray,
    ct: np.ndarray,
    px: np.ndarray,
    py: np.ndarray,
    pt: np.ndarray,
    grid: GridSpec,
    kernel: KernelPair,
    norm: float,
    counter: Optional[WorkCounter] = None,
    compute: "ComputeBackend | str | None" = None,
) -> None:
    """Accumulate a cohort of same-shape voxel tiles in one dispatch.

    The batched form of :func:`accumulate_voxel_tile`: ``vox_index`` /
    ``cx`` / ``cy`` / ``ct`` are ``(B, V)`` stacks of ``B`` tiles' voxel
    indices and center coordinates, ``px/py/pt`` the ``(B, K)`` stacks of
    their candidate point blocks.  One ``(B, V, K)`` tabulation through
    :func:`masked_kernel_product` replaces ``B`` separate dispatches —
    within each tile the point axis keeps its order and length, so the
    per-voxel pairwise sums reduce exactly as the unbatched path's.  The
    tiles' flat voxel indices must be pairwise disjoint across the batch
    (VB-DEC blocks are, by construction), making the scatter a plain
    indexed add.  Each call is one tile batch (``counter.tile_batches``).
    """
    counter = counter if counter is not None else null_counter()
    backend = get_backend(compute)
    dx = cx[:, :, None] - px[:, None, :]
    dy = cy[:, :, None] - py[:, None, :]
    dt = ct[:, :, None] - pt[:, None, :]
    contrib = backend.masked_kernel_product(
        grid, kernel, dx, dy, dt, counter
    ).sum(axis=2)
    out_flat[vox_index.ravel()] += contrib.ravel() * norm
    counter.tile_batches += 1


def batch_bbox(
    grid: GridSpec,
    coords: np.ndarray,
    clip: Optional[VoxelWindow] = None,
) -> Optional[VoxelWindow]:
    """Joint bounding window of a batch's clipped stamps, or ``None``.

    The smallest axis-aligned box containing every live (non-empty) stamp
    window of the batch — the region a :class:`RegionBuffer` must cover to
    absorb the whole batch.  ``None`` when no stamp survives clipping.
    """
    coords = np.asarray(coords, dtype=np.float64)
    if coords.shape[0] == 0:
        return None
    X0, X1, Y0, Y1, T0, T1 = batch_windows(grid, coords, clip)
    live = (X1 > X0) & (Y1 > Y0) & (T1 > T0)
    if not live.any():
        return None
    return VoxelWindow(
        int(X0[live].min()), int(X1[live].max()),
        int(Y0[live].min()), int(Y1[live].max()),
        int(T0[live].min()), int(T1[live].max()),
    )


class RegionBuffer:
    """A private accumulation buffer covering one bounding-box window.

    Replaces full-grid private volumes wherever a writer only touches a
    bounded region: threaded stamping shards, incremental batch caches,
    and any future replica path.  The buffer's voxel ``(0, 0, 0)`` sits at
    ``window``'s origin in grid coordinates; :meth:`stamp` routes through
    the batched stamping engine with the matching ``vol_origin``.
    """

    __slots__ = ("window", "data")

    def __init__(self, window: VoxelWindow) -> None:
        if window.empty:
            raise ValueError(f"cannot buffer an empty window: {window}")
        self.window = window
        # empty + fill, like GridSpec.allocate: perform the real first-touch
        # so buffer zeroing shows up in timings the way the paper measures.
        self.data = np.empty(window.shape, dtype=np.float64)
        self.data.fill(0.0)

    @property
    def cells(self) -> int:
        """Number of voxels the buffer covers."""
        return self.data.size

    @property
    def nbytes(self) -> int:
        return self.data.nbytes

    @property
    def origin(self) -> Tuple[int, int, int]:
        """Grid coordinates of the buffer's voxel ``(0, 0, 0)``."""
        return (self.window.x0, self.window.y0, self.window.t0)

    def stamp(
        self,
        grid: GridSpec,
        kernel: KernelPair,
        coords: np.ndarray,
        norm: float,
        counter: Optional[WorkCounter] = None,
        *,
        mode: str = "sym",
        clip: Optional[VoxelWindow] = None,
        weights: Optional[np.ndarray] = None,
        compute: "ComputeBackend | str | None" = None,
    ) -> None:
        """Stamp a point batch into the buffer through the engine.

        Stamps are clipped to the buffer's window (intersected with any
        caller ``clip``); windows already inside the buffer are unchanged,
        so the accumulated values are bit-identical to stamping the same
        points into a full volume.  ``weights`` scales each point's
        kernel product (the engine's weighted stamp mode); ``compute``
        selects the pair-evaluation backend.
        """
        clip_w = self.window if clip is None else self.window.intersect(clip)
        stamp_batch(
            self.data, grid, kernel, coords, norm, counter,
            mode=mode, clip=clip_w, vol_origin=self.origin, weights=weights,
            compute=compute,
        )

    def add_into(
        self,
        vol: np.ndarray,
        x_lo: int = 0,
        x_hi: Optional[int] = None,
        *,
        sign: float = 1.0,
    ) -> int:
        """Accumulate the buffer into a full volume; returns cells touched.

        ``x_lo``/``x_hi`` restrict the merge to an x-slab of the volume —
        the unit of the slab-parallel reduction — so concurrent reducers
        never write the same voxel.  ``sign=-1.0`` subtracts (incremental
        retirement).
        """
        w = self.window
        x_hi = vol.shape[0] if x_hi is None else x_hi
        lo = max(w.x0, x_lo)
        hi = min(w.x1, x_hi)
        if lo >= hi:
            return 0
        target = vol[lo:hi, w.y0 : w.y1, w.t0 : w.t1]
        src = self.data[lo - w.x0 : hi - w.x0]
        if sign == 1.0:
            target += src
        elif sign == -1.0:
            target -= src
        else:
            target += sign * src
        return target.size


@dataclass
class ShardPlan:
    """Balanced shard assignment plus the bounding box of each shard.

    ``shards[p]`` are point indices (into the planned batch) and
    ``windows[p]`` the joint bounding window of their clipped stamps — the
    exact buffer the threaded executor allocates, and the exact memory the
    cost model charges.
    """

    shards: List[np.ndarray]
    windows: List[VoxelWindow]

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    @property
    def buffer_cells(self) -> int:
        """Total cells across all shard buffers (they are live together)."""
        return sum(w.volume for w in self.windows)

    @property
    def buffer_bytes(self) -> int:
        """Total float64 bytes of the shard buffers."""
        return self.buffer_cells * 8

    def union_x_range(self) -> Tuple[int, int]:
        """Half-open x-extent covered by any shard buffer (for slabbing)."""
        if not self.windows:
            return (0, 0)
        return (min(w.x0 for w in self.windows), max(w.x1 for w in self.windows))


def _balanced_bounds(cells: np.ndarray, n_shards: int) -> np.ndarray:
    """Cut positions of near-equal cumulative cell count (``n_shards + 1``)."""
    cum = np.cumsum(cells, dtype=np.float64)
    total = float(cum[-1]) if cum.size else 0.0
    if total <= 0.0:
        return np.linspace(0, cells.size, n_shards + 1).astype(np.int64)
    targets = total * np.arange(1, n_shards) / n_shards
    return np.concatenate(
        ([0], np.searchsorted(cum, targets), [cells.size])
    ).astype(np.int64)


def _snap_bounds_to_gaps(
    bounds: np.ndarray, X0o: np.ndarray, X1o: np.ndarray
) -> np.ndarray:
    """Nudge interior cuts onto x-disjoint gaps when one is nearby.

    With points in stamp-origin order, ``X0o`` is nondecreasing, so a cut
    at position ``j`` separates the two shards' bounding boxes along x iff
    every stamp before ``j`` ends by the time the first stamp from ``j``
    begins (prefix max of ``X1o``).  Disjoint boxes unlock the executors'
    per-shard merge (no slab sweep, no empty intersections), so each
    balanced cut moves to the nearest disjoint position within ~10% of a
    shard — clustered batches get provably non-overlapping buffers at a
    bounded balance cost, and batches with no gap keep the exact balanced
    cuts.
    """
    n = X0o.size
    if n == 0 or bounds.size <= 2:
        return bounds
    pmax = np.maximum.accumulate(X1o)
    out = bounds.copy()
    tol = max(2, n // (10 * (bounds.size - 1)))
    for k in range(1, bounds.size - 1):
        b = int(out[k])
        lo = max(int(out[k - 1]) + 1, b - tol)
        hi = min(int(out[k + 1]) - 1, b + tol, n - 1)
        if hi < lo:
            continue
        ok = X0o[lo : hi + 1] >= pmax[lo - 1 : hi]
        js = np.nonzero(ok)[0] + lo
        if js.size:
            out[k] = js[np.argmin(np.abs(js - b))]
    return out


def plan_stamp_shards(
    grid: GridSpec,
    coords: np.ndarray,
    n_shards: int,
    clip: Optional[VoxelWindow] = None,
) -> ShardPlan:
    """Split a point batch into bbox-compact shards of near-equal work.

    Live (unclipped-to-empty) points are ordered by stamp-window origin
    (x, then y, then t) so that contiguous shards cover compact slab-like
    bounding boxes, then cut into ``n_shards`` spans balanced on stamped
    cell count — boundary-clipped (cheap) and interior (full-stamp) points
    balance, exactly as the previous full-volume sharding did, but each
    shard now knows the only region of the grid it can write.  Balanced
    cuts additionally snap to nearby x-gaps in the ordered stamps
    (:func:`_snap_bounds_to_gaps`), so clustered batches yield pairwise
    **disjoint** shard boxes and the threaded executor can merge each
    buffer independently instead of slab-sweeping their union.
    """
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    coords = np.asarray(coords, dtype=np.float64)
    if coords.shape[0] == 0:
        return ShardPlan([], [])
    X0, X1, Y0, Y1, T0, T1 = batch_windows(grid, coords, clip)
    wx = np.maximum(X1 - X0, 0)
    wy = np.maximum(Y1 - Y0, 0)
    wt = np.maximum(T1 - T0, 0)
    cells = wx * wy * wt
    live = np.nonzero(cells > 0)[0]
    if live.size == 0:
        return ShardPlan([], [])
    order = live[np.lexsort((T0[live], Y0[live], X0[live]))]
    bounds = _balanced_bounds(cells[order], n_shards)
    bounds = _snap_bounds_to_gaps(bounds, X0[order], X1[order])
    shards: List[np.ndarray] = []
    windows: List[VoxelWindow] = []
    for p in range(n_shards):
        if bounds[p + 1] <= bounds[p]:
            continue
        sel = order[int(bounds[p]) : int(bounds[p + 1])]
        shards.append(sel)
        windows.append(
            VoxelWindow(
                int(X0[sel].min()), int(X1[sel].max()),
                int(Y0[sel].min()), int(Y1[sel].max()),
                int(T0[sel].min()), int(T1[sel].max()),
            )
        )
    return ShardPlan(shards, windows)


def plan_serving_shards(
    grid: GridSpec,
    coords: np.ndarray,
    n_shards: int,
) -> np.ndarray:
    """Balanced domain-space x-cuts for shard-owning serving workers.

    Partitions the space-time domain into ``n_shards`` disjoint x-slabs
    (each covering the full y/t extent — serving shards must survive
    window slides, which expire along t, so the cut axis is spatial).
    Cuts are balanced on event count per voxel column — the same
    cumulative-balance rule :func:`plan_stamp_shards` and
    :func:`plan_time_slabs` use, applied to the column histogram — and
    land on voxel-column boundaries, so ownership is deterministic under
    the float arithmetic both sides of a process boundary perform.

    The **halo rule** that makes the partition serve exact queries: the
    kernel support is one bandwidth (``hs`` spatially), so a query at
    ``x`` can only draw density from events in ``[x - hs, x + hs]`` —
    every shard whose owned interval intersects that ball must contribute
    its partial sum, and summing those partials over *disjoint* event
    subsets reproduces the global estimator exactly.  Cuts therefore
    carry no event replication; the halo lives on the query-scatter side
    (see :class:`repro.serve.shard.ShardPlan`).

    Returns the ``n_shards - 1`` interior cut positions in domain x
    coordinates (nondecreasing; a duplicated cut means one shard owns an
    empty interval, which is valid — it simply never receives events).
    Empty ``coords`` fall back to uniform cuts.
    """
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    d = grid.domain
    if n_shards == 1:
        return np.empty(0, dtype=np.float64)
    coords = np.asarray(coords, dtype=np.float64)
    if coords.shape[0] == 0:
        return d.x0 + d.gx * np.arange(1, n_shards) / n_shards
    col = np.clip(
        np.floor((coords[:, 0] - d.x0) / d.sres).astype(np.int64),
        0, grid.Gx - 1,
    )
    hist = np.bincount(col, minlength=grid.Gx).astype(np.float64)
    bounds = _balanced_bounds(hist, n_shards)
    return d.x0 + bounds[1:-1].astype(np.float64) * d.sres


def auto_slab_voxels(grid: GridSpec) -> int:
    """Default retirement-slab thickness along t, in voxels.

    Two stamp extents (``2 * (2 Ht + 1)``): adjacent slab buffers overlap
    by at most one stamp extent along t, so this thickness caps the cache
    memory overhead of slabbing at ~50% of the un-slabbed buffer while
    keeping the straddle slab (the only part of a batch a window slide
    ever restamps) a small fraction of the batch.  Thinner slabs buy finer
    retirement granularity at more overlap; the trade is priced by
    :meth:`repro.analysis.model.CostModel.predict_slide`.
    """
    return 2 * (2 * grid.Ht + 1)


def plan_time_slabs(
    grid: GridSpec,
    coords: np.ndarray,
    slab_voxels: Optional[int] = None,
    max_slabs: int = 16,
    clip: Optional[VoxelWindow] = None,
) -> List[np.ndarray]:
    """Partition a batch into t-ordered slabs of near-equal stamp work.

    The retirement-granularity planner of the incremental estimator:
    points are ordered by stamp-window origin along t and cut into spans
    balanced on stamped cell count (the same balancing rule as
    :func:`plan_stamp_shards`, applied along t instead of x), with the
    span count chosen so each slab is about ``slab_voxels`` thick
    (default :func:`auto_slab_voxels`).  A sliding window's horizon then
    expires whole leading slabs — subtracted from their cached
    :class:`RegionBuffer` with zero kernel evaluations — and cuts through
    at most one *straddle* slab whose survivors need restamping.

    Returns index arrays partitioning ``[0, n)`` (every input point lands
    in exactly one slab, including points whose stamps clip to nothing —
    their windows are degenerate but they still need retirement
    tracking).  A single-element list means slabbing is not worth it for
    this batch's t-extent.
    """
    if max_slabs < 1:
        raise ValueError("max_slabs must be >= 1")
    coords = np.asarray(coords, dtype=np.float64)
    n = coords.shape[0]
    if n == 0:
        return []
    if slab_voxels is None:
        slab_voxels = auto_slab_voxels(grid)
    if slab_voxels < 1:
        raise ValueError("slab_voxels must be >= 1")
    X0, X1, Y0, Y1, T0, T1 = batch_windows(grid, coords, clip)
    wx = np.maximum(X1 - X0, 0)
    wy = np.maximum(Y1 - Y0, 0)
    wt = np.maximum(T1 - T0, 0)
    cells = wx * wy * wt
    live = cells > 0
    if not live.any():
        return [np.arange(n, dtype=np.int64)]
    t_span = int(T1[live].max() - T0[live].min())
    n_slabs = min(max(1, -(-t_span // slab_voxels)), max_slabs, n)
    if n_slabs == 1:
        return [np.arange(n, dtype=np.int64)]
    order = np.lexsort((X0, Y0, T0)).astype(np.int64)
    bounds = _balanced_bounds(cells[order], n_slabs)
    # The lexsort only places the cuts; inside a slab the input order is
    # restored so tracked coordinates stay stable for callers.
    return [
        np.sort(order[int(bounds[k]) : int(bounds[k + 1])])
        for k in range(n_slabs)
        if bounds[k + 1] > bounds[k]
    ]
