"""High-level STKDE estimator facade — the library's front door.

Wraps algorithm selection, domain inference, and execution behind one
object::

    from repro import STKDE, PointSet

    est = STKDE(hs=750.0, ht=7.0, sres=100.0, tres=1.0)
    result = est.estimate(points)          # auto-picks an algorithm
    volume = result.volume                 # (Gx, Gy, Gt) density + geometry

``algorithm="auto"`` consults the Section 6.5 cost model: sequential
PB-SYM for small work, otherwise the predicted-fastest parallel strategy
under the machine's memory budget.  Any registered algorithm name can be
forced explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..algorithms.base import STKDEResult, get_algorithm
from .grid import DomainSpec, GridSpec, PointSet
from .instrument import PhaseTimer, WorkCounter
from .kernels import KernelPair, get_kernel

__all__ = ["STKDE", "infer_domain"]


def infer_domain(
    points: PointSet,
    *,
    sres: float,
    tres: float,
    hs: float,
    ht: float,
    pad_bandwidth: bool = True,
) -> DomainSpec:
    """Bounding-box domain for a point set.

    Pads by one bandwidth on every side (unless ``pad_bandwidth=False``)
    so no density cylinder is clipped by an artificial boundary.
    """
    if points.n == 0:
        raise ValueError("cannot infer a domain from zero points")
    pad_s = hs if pad_bandwidth else 0.0
    pad_t = ht if pad_bandwidth else 0.0
    x0 = float(points.xs.min()) - pad_s
    y0 = float(points.ys.min()) - pad_s
    t0 = float(points.ts.min()) - pad_t
    gx = float(points.xs.max()) + pad_s - x0
    gy = float(points.ys.max()) + pad_s - y0
    gt = float(points.ts.max()) + pad_t - t0
    # Degenerate extents (all points on a line/instant) still need >= one
    # voxel of domain.
    gx = max(gx, sres)
    gy = max(gy, sres)
    gt = max(gt, tres)
    return DomainSpec(gx=gx, gy=gy, gt=gt, sres=sres, tres=tres, x0=x0, y0=y0, t0=t0)


@dataclass
class STKDE:
    """Space-time kernel density estimator.

    Parameters
    ----------
    hs, ht:
        Spatial / temporal bandwidths in domain units.
    sres, tres:
        Grid resolutions (used when the domain is inferred; ignored when
        an explicit :class:`DomainSpec` is passed to :meth:`estimate`).
    kernel:
        Kernel pair name (``"epanechnikov"`` default) or a
        :class:`KernelPair`.
    algorithm:
        Registered algorithm name, or ``"auto"`` to let the cost model
        choose.
    P, backend, decomposition:
        Parallel execution parameters, forwarded to parallel algorithms.
        ``P="auto"`` resolves to the machine's CPU count at construction,
        so the threaded paths shard by what the hardware offers instead of
        silently running single-shard.
    memory_budget_bytes:
        Optional memory ceiling for strategy selection and execution.
    """

    hs: float
    ht: float
    sres: float = 1.0
    tres: float = 1.0
    kernel: str | KernelPair = "epanechnikov"
    algorithm: str = "auto"
    P: "int | str" = 1
    backend: str = "simulated"
    decomposition: Optional[Tuple[int, int, int]] = None
    memory_budget_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        if self.hs <= 0 or self.ht <= 0:
            raise ValueError("bandwidths must be positive")
        if self.sres <= 0 or self.tres <= 0:
            raise ValueError("resolutions must be positive")
        get_kernel(self.kernel)  # fail fast on unknown kernels
        from ..parallel.executors import resolve_shard_count

        self.P = resolve_shard_count(self.P)

    # ------------------------------------------------------------------
    def grid_for(self, points: PointSet, domain: Optional[DomainSpec] = None) -> GridSpec:
        """The grid this estimator would use for the given points."""
        dom = domain or infer_domain(
            points, sres=self.sres, tres=self.tres, hs=self.hs, ht=self.ht
        )
        return GridSpec(dom, hs=self.hs, ht=self.ht)

    def _choose_algorithm(self, points: PointSet, grid: GridSpec) -> Tuple[str, dict]:
        if self.algorithm != "auto":
            name = self.algorithm
            fn = get_algorithm(name)  # raises on unknown
            kwargs = {}
            if getattr(fn, "is_parallel", False):
                kwargs["P"] = self.P
                kwargs["backend"] = self.backend
                if self.decomposition is not None and name != "pb-sym-dr":
                    kwargs["decomposition"] = self.decomposition
                if name in ("pb-sym-dr", "pb-sym-pd-rep"):
                    kwargs["memory_budget_bytes"] = self.memory_budget_bytes
            elif name == "pb-sym" and self.P > 1 and self.backend == "threads":
                # PB-SYM stays registered sequential, but the batched engine
                # gives it a real threads path (sharded private volumes) —
                # forward the parallel knobs instead of silently dropping
                # them.
                kwargs["P"] = self.P
                kwargs["backend"] = self.backend
                kwargs["memory_budget_bytes"] = self.memory_budget_bytes
            return name, kwargs
        if self.P <= 1:
            return "pb-sym", {}
        from ..analysis.model import select_strategy

        best, ranked = select_strategy(
            grid, points, self.P, memory_budget_bytes=self.memory_budget_bytes
        )
        if best.algorithm == "pb-sym-threads" and self.backend != "threads":
            # The bbox-sharded threads backend only exists as real threads;
            # under serial/simulated execution fall to the next feasible
            # strategy so the chosen plan matches the requested backend.
            fallback = [
                p for p in ranked
                if p.feasible and p.algorithm != "pb-sym-threads"
            ]
            best = fallback[0] if fallback else best
        if best.algorithm == "pb-sym-threads":
            return "pb-sym", {
                "P": self.P,
                "backend": "threads",
                "memory_budget_bytes": self.memory_budget_bytes,
            }
        kwargs = {"P": self.P, "backend": self.backend}
        if best.decomposition is not None:
            kwargs["decomposition"] = best.decomposition
        if best.algorithm in ("pb-sym-dr", "pb-sym-pd-rep"):
            kwargs["memory_budget_bytes"] = self.memory_budget_bytes
        return best.algorithm, kwargs

    def estimate(
        self,
        points: PointSet | np.ndarray,
        domain: Optional[DomainSpec] = None,
        *,
        counter: Optional[WorkCounter] = None,
        timer: Optional[PhaseTimer] = None,
    ) -> STKDEResult:
        """Compute the density volume for a point set.

        ``points`` may be a :class:`PointSet` or a raw ``(n, 3)`` array of
        ``(x, y, t)`` rows.  Without an explicit ``domain`` the bounding
        box (padded by one bandwidth) is used.
        """
        pts = points if isinstance(points, PointSet) else PointSet(points)
        grid = self.grid_for(pts, domain)
        name, kwargs = self._choose_algorithm(pts, grid)
        fn = get_algorithm(name)
        result = fn(
            pts, grid, kernel=self.kernel, counter=counter, timer=timer, **kwargs
        )
        result.meta.setdefault("selected_by", "user" if self.algorithm != "auto" else "model")
        return result
