"""Core substrate: kernels, domain/grid model, invariants, instrumentation."""

from .grid import DomainSpec, GridSpec, PointSet, Volume, VoxelWindow
from .instrument import PhaseTimer, WorkCounter
from .invariants import bar_table, disk_table, stamp_extent
from .kernels import KernelPair, available_kernels, get_kernel, register_kernel

__all__ = [
    "DomainSpec",
    "GridSpec",
    "PointSet",
    "Volume",
    "VoxelWindow",
    "PhaseTimer",
    "WorkCounter",
    "KernelPair",
    "available_kernels",
    "get_kernel",
    "register_kernel",
    "bar_table",
    "disk_table",
    "stamp_extent",
]
