"""Core substrate: kernels, domain/grid model, invariants, instrumentation,
and the batched stamping engine shared by every point-based algorithm."""

from .grid import DomainSpec, GridSpec, PointSet, Volume, VoxelWindow
from .instrument import PhaseTimer, WorkCounter
from .invariants import bar_table, disk_table, stamp_extent
from .kernels import KernelPair, available_kernels, get_kernel, register_kernel
from .stamping import STAMP_MODES, batch_windows, stamp_batch

__all__ = [
    "STAMP_MODES",
    "batch_windows",
    "stamp_batch",
    "DomainSpec",
    "GridSpec",
    "PointSet",
    "Volume",
    "VoxelWindow",
    "PhaseTimer",
    "WorkCounter",
    "KernelPair",
    "available_kernels",
    "get_kernel",
    "register_kernel",
    "bar_table",
    "disk_table",
    "stamp_extent",
]
