"""Core substrate: kernels, domain/grid model, invariants, instrumentation,
and the batched stamping engine shared by every point-based algorithm."""

from .grid import DomainSpec, GridSpec, PointSet, Volume, VoxelWindow
from .instrument import PhaseTimer, WorkCounter
from .invariants import bar_table, disk_table, stamp_extent
from .kernels import KernelPair, available_kernels, get_kernel, register_kernel
from .regions import (
    RegionBuffer,
    ShardPlan,
    accumulate_voxel_tile,
    batch_bbox,
    masked_kernel_product,
    plan_stamp_shards,
)
from .stamping import STAMP_MODES, batch_windows, stamp_batch

__all__ = [
    "STAMP_MODES",
    "batch_windows",
    "stamp_batch",
    "masked_kernel_product",
    "accumulate_voxel_tile",
    "batch_bbox",
    "RegionBuffer",
    "ShardPlan",
    "plan_stamp_shards",
    "DomainSpec",
    "GridSpec",
    "PointSet",
    "Volume",
    "VoxelWindow",
    "PhaseTimer",
    "WorkCounter",
    "KernelPair",
    "available_kernels",
    "get_kernel",
    "register_kernel",
    "bar_table",
    "disk_table",
    "stamp_extent",
]
