"""Adaptive-bandwidth STKDE — the conclusion's future-work feature.

The paper closes with: *"we would like to investigate how these methods
apply to a bandwidth that adapts to the density of population of the
area"*.  This module implements the classic two-pass adaptive estimator
(Silverman 1986, §5.3 — the paper's own kernel-density reference) in
space-time form:

1. a **pilot pass** evaluates a fixed-bandwidth PB-SYM estimate at the
   *event locations* themselves;
2. per-event scale factors ``lambda_i = (pilot_i / g)^(-alpha)`` (``g`` the
   geometric mean of the pilot values, ``alpha`` the sensitivity, 0.5 by
   convention) widen the bandwidth where events are sparse and narrow it
   in dense cores;
3. the final pass stamps each event with *its own* cylinder
   ``(hs * lambda_i, ht * lambda_i)``, still via the PB-SYM disk (x) bar
   factorisation — the symmetry the paper exploits is per-point, so it
   survives per-point bandwidths unchanged.

Each event's contribution is normalised by ``1/(n hs_i^2 ht_i)``, so the
estimator remains a probability density (interior mass ~= 1).

Parallelisation note: per-point bandwidths break PB-SYM-PD's *uniform*
block-size constraint — the decomposition must satisfy ``2 * max_i(hs_i)``
— which is exactly the interaction the paper flags as future work.
:func:`adaptive_pd_block_constraint` computes that bound; the sequential
estimator below is registered as ``"pb-sym-adaptive"``.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..algorithms.base import STKDEResult, register_algorithm
from ..algorithms.pb_sym import pb_sym
from .grid import GridSpec, PointSet, Volume
from .instrument import PhaseTimer, WorkCounter
from .kernels import KernelPair, get_kernel

__all__ = ["adaptive_pb_sym", "pilot_at_points", "adaptive_pd_block_constraint"]

#: Scale factors are clipped to this range: unbounded widening would let a
#: single isolated point smear over the whole domain (and allocate a
#: window of the full grid).
LAMBDA_RANGE = (0.25, 4.0)


def pilot_at_points(
    points: PointSet,
    grid: GridSpec,
    kernel: KernelPair,
    counter: WorkCounter,
) -> np.ndarray:
    """Fixed-bandwidth pilot density evaluated at the event voxels."""
    pilot = pb_sym(points, grid, kernel=kernel, counter=counter)
    vox = grid.voxels_of(points.coords)
    return pilot.data[vox[:, 0], vox[:, 1], vox[:, 2]]


def _lambda_factors(pilot_values: np.ndarray, alpha: float) -> np.ndarray:
    """Silverman's local scale factors, clipped to :data:`LAMBDA_RANGE`."""
    floor = max(pilot_values.max() * 1e-12, 1e-300)
    vals = np.maximum(pilot_values, floor)
    g = np.exp(np.mean(np.log(vals)))
    lam = (vals / g) ** (-alpha)
    return np.clip(lam, *LAMBDA_RANGE)


def adaptive_pd_block_constraint(grid: GridSpec, lambdas: np.ndarray) -> Tuple[int, int]:
    """Minimum PD block edges (voxels) under per-point bandwidths.

    Point decomposition stays safe iff blocks exceed twice the *largest*
    realised bandwidth; returns ``(min_spatial_edge, min_temporal_edge)``.
    """
    lam_max = float(lambdas.max())
    Hs_max = int(np.ceil(lam_max * grid.hs / grid.domain.sres))
    Ht_max = int(np.ceil(lam_max * grid.ht / grid.domain.tres))
    return 2 * Hs_max + 1, 2 * Ht_max + 1


@register_algorithm("pb-sym-adaptive")
def adaptive_pb_sym(
    points: PointSet,
    grid: GridSpec,
    *,
    kernel: str | KernelPair = "epanechnikov",
    alpha: float = 0.5,
    counter: Optional[WorkCounter] = None,
    timer: Optional[PhaseTimer] = None,
) -> STKDEResult:
    """Two-pass adaptive-bandwidth STKDE (``alpha=0`` reduces to PB-SYM).

    ``meta["lambdas"]`` carries the per-event scale factors and
    ``meta["pd_min_block"]`` the PD block-size bound they imply.
    """
    if not 0.0 <= alpha <= 1.0:
        raise ValueError(f"alpha must be within [0, 1], got {alpha}")
    kern = get_kernel(kernel)
    counter = counter if counter is not None else WorkCounter()
    timer = timer if timer is not None else PhaseTimer()

    with timer.phase("pilot"):
        pilot_vals = pilot_at_points(points, grid, kern, counter)
        lambdas = (
            _lambda_factors(pilot_vals, alpha)
            if alpha > 0.0
            else np.ones(points.n)
        )

    with timer.phase("init"):
        vol = grid.allocate()
        counter.init_writes += vol.size

    d = grid.domain
    hs2ht = None  # per-point below
    with timer.phase("compute"):
        for i, (x, y, t) in enumerate(points):
            lam = float(lambdas[i])
            hs_i = grid.hs * lam
            ht_i = grid.ht * lam
            Hs_i = int(np.ceil(hs_i / d.sres))
            Ht_i = int(np.ceil(ht_i / d.tres))
            Xi, Yi, Ti = grid.voxel_of(x, y, t)
            x0, x1 = max(0, Xi - Hs_i), min(grid.Gx, Xi + Hs_i + 1)
            y0, y1 = max(0, Yi - Hs_i), min(grid.Gy, Yi + Hs_i + 1)
            t0, t1 = max(0, Ti - Ht_i), min(grid.Gt, Ti + Ht_i + 1)
            if x0 >= x1 or y0 >= y1 or t0 >= t1:
                continue
            norm_i = 1.0 / (points.n * hs_i * hs_i * ht_i)
            dx = grid.x_centers(x0, x1) - x
            dy = grid.y_centers(y0, y1) - y
            d2 = dx[:, None] ** 2 + dy[None, :] ** 2
            inside = d2 < hs_i * hs_i
            if kern.spatial_radial is not None:
                disk = kern.spatial_radial(d2 * (1.0 / (hs_i * hs_i)))
            else:
                u = dx[:, None] / hs_i
                v = dy[None, :] / hs_i
                disk = kern.spatial(
                    np.broadcast_to(u, inside.shape),
                    np.broadcast_to(v, inside.shape),
                )
            disk = disk * norm_i
            disk *= inside
            dt = grid.t_centers(t0, t1) - t
            bar = kern.temporal(dt / ht_i)
            bar *= np.abs(dt) <= ht_i
            vol[x0:x1, y0:y1, t0:t1] += disk[:, :, None] * bar[None, None, :]
            counter.spatial_evals += disk.size
            counter.temporal_evals += bar.size
            counter.madds += disk.size * bar.size
        counter.points_processed += points.n

    return STKDEResult(
        Volume(vol, grid),
        "pb-sym-adaptive",
        timer,
        counter,
        meta={
            "alpha": alpha,
            "lambdas": lambdas,
            "lambda_range": (float(lambdas.min()), float(lambdas.max())),
            "pd_min_block": adaptive_pd_block_constraint(grid, lambdas),
        },
    )
