"""Incremental STKDE: add and retire events without recomputation.

The paper's motivation is *interactive* exploration — surveillance feeds
update daily, dashboards slide their time window.  The PB-SYM estimator is
a normalised **sum of per-point stamps**, so it supports exact incremental
maintenance: adding an event stamps its cylinder, retiring one stamps the
negative.  Only the ``1/n`` normalisation couples events; this class keeps
the volume *unnormalised* internally and applies ``1/(n hs^2 ht)`` on
read, making add/remove O(stamp) instead of O(volume).

Example::

    inc = IncrementalSTKDE(grid)
    inc.add(monday_events)
    density = inc.volume()            # estimate over everything so far
    inc.remove(monday_events)         # slide the window
    inc.add(tuesday_events)

``slide_window(new, horizon)`` combines both steps for the common
time-window case.  Equivalence with batch recomputation is exact (tested
to fp tolerance), which is the property that makes this safe to deploy.

Region-engine rebuild
---------------------
All stamping goes through the batched region engine
(:func:`repro.core.stamping.stamp_batch`), one engine batch per add /
remove.  On top of that, each tracked batch whose stamps fit in a small
bounding box — the normal shape of a sliding-window time slab — caches its
materialised contribution in a :class:`~repro.core.regions.RegionBuffer`:
the summed cohort tables the engine produced at ``add`` time.  Retiring
the batch later reuses that cache instead of re-tabulating kernels:

* **full retirement** subtracts the cached box (O(bbox), zero kernel
  evaluations);
* **partial retirement** (the window boundary cutting through a batch)
  subtracts the cached box and restamps only the *kept* points into a
  fresh cached box — one engine batch over the survivors, after which the
  batch is again ready for O(bbox) retirement on the next slide.

Batches too spread out to cache affordably (bounding box larger than
``cache_fraction`` of the grid) fall back to plain engine stamping with
negative-norm removal, so memory stays bounded for global batches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from .grid import GridSpec, PointSet, Volume
from .instrument import WorkCounter
from .kernels import KernelPair, get_kernel
from .regions import RegionBuffer, batch_bbox
from .stamping import stamp_batch

__all__ = ["IncrementalSTKDE"]


def _row_keys(coords: np.ndarray) -> np.ndarray:
    """``(n,)`` opaque byte keys for exact (bitwise) row matching."""
    a = np.ascontiguousarray(coords, dtype=np.float64)
    return a.view(np.dtype((np.void, a.dtype.itemsize * a.shape[1]))).reshape(-1)


@dataclass
class _TrackedBatch:
    """A live event batch and (when affordable) its cached region stamp.

    ``batch_id`` is unique for the life of the estimator and changes
    whenever the batch's *membership* changes (partial retirement,
    untracking): downstream consumers keyed on it — the serving layer's
    per-batch index segments — treat an id as an immutable event set, so
    survivors of a split are a brand-new batch.
    """

    batch_id: int
    coords: np.ndarray
    buffer: Optional[RegionBuffer]


class IncrementalSTKDE:
    """Exactly-maintained STKDE under event insertion and retirement.

    ``cache_fraction`` bounds the per-batch region cache: a batch is
    cached only when its stamps' bounding box covers at most that fraction
    of the grid (sliding-window time slabs are thin along t and qualify;
    a domain-wide backfill batch does not, and is simply engine-stamped).
    ``cache_fraction=0.0`` disables caching entirely.

    ``memory_budget_bytes`` additionally caps the *aggregate* footprint
    (accumulator + all cached buffers), like every other replicating path:
    a batch whose cache would push past the budget is stamped uncached —
    correctness is unaffected, only its later retirement falls back to
    negative restamping.  ``None`` leaves the aggregate unbounded.
    """

    def __init__(
        self,
        grid: GridSpec,
        *,
        kernel: str | KernelPair = "epanechnikov",
        counter: Optional[WorkCounter] = None,
        cache_fraction: float = 0.5,
        memory_budget_bytes: Optional[int] = None,
    ) -> None:
        if cache_fraction < 0.0:
            raise ValueError("cache_fraction must be >= 0")
        self.grid = grid
        self.kernel = get_kernel(kernel)
        self.counter = counter if counter is not None else WorkCounter()
        self.cache_fraction = float(cache_fraction)
        self.memory_budget_bytes = memory_budget_bytes
        # Unnormalised accumulator: sum of k_s * k_t stamps.
        self._acc = grid.allocate()
        self.counter.init_writes += self._acc.size
        self._n = 0
        self._live: List[_TrackedBatch] = []  # event batches currently included
        self._version = 0
        self._next_batch_id = 0

    @property
    def n(self) -> int:
        """Number of events currently contributing."""
        return self._n

    @property
    def version(self) -> int:
        """Monotonic dataset version, bumped on every mutation.

        ``add``, ``remove``, and ``slide_window`` each advance it, so any
        derived artifact (query caches, serving indexes) keyed on the
        version is invalidated the moment the live window changes — this is
        the invalidation contract :mod:`repro.serve` relies on.
        """
        return self._version

    @property
    def live_coords(self) -> np.ndarray:
        """``(n, 3)`` coordinates of all currently-live events (copy).

        The concatenation of the tracked batches; what a serving layer
        indexes to answer direct kernel-sum queries against the current
        window without materialising a volume.
        """
        if not self._live:
            return np.empty((0, 3), dtype=np.float64)
        return np.vstack([tb.coords for tb in self._live])

    @property
    def live_batches(self) -> Tuple[Tuple[int, np.ndarray], ...]:
        """Currently-live ``(batch_id, coords)`` pairs, in tracking order.

        The incremental-index hook: each pair is an immutable event set
        (ids change when membership does), so a consumer holding per-batch
        derived state — :meth:`repro.serve.index.BucketIndex.sync` — can
        reconcile by id and touch only the batches that actually changed.
        """
        return tuple((tb.batch_id, tb.coords) for tb in self._live)

    @property
    def cached_buffer_cells(self) -> int:
        """Cells currently held in per-batch region caches (memory gauge)."""
        return sum(b.buffer.cells for b in self._live if b.buffer is not None)

    # ------------------------------------------------------------------
    def _cache_affordable(self, bbox_cells: int) -> bool:
        if bbox_cells > self.cache_fraction * self.grid.n_voxels:
            return False
        if self.memory_budget_bytes is None:
            return True
        footprint = (
            self._acc.nbytes + (self.cached_buffer_cells + bbox_cells) * 8
        )
        return footprint <= self.memory_budget_bytes

    def _new_batch_id(self) -> int:
        self._next_batch_id += 1
        return self._next_batch_id

    def _stamp_tracked(self, coords: np.ndarray) -> _TrackedBatch:
        """Stamp a batch through the region engine, caching when affordable."""
        bbox = batch_bbox(self.grid, coords)
        if bbox is not None and self._cache_affordable(bbox.volume):
            buf = RegionBuffer(bbox)
            self.counter.init_writes += buf.cells
            self.counter.shard_bbox_cells += buf.cells
            buf.stamp(self.grid, self.kernel, coords, 1.0, self.counter)
            self.counter.reduce_adds += buf.add_into(self._acc)
            return _TrackedBatch(self._new_batch_id(), coords, buf)
        stamp_batch(self._acc, self.grid, self.kernel, coords, 1.0, self.counter)
        return _TrackedBatch(self._new_batch_id(), coords, None)

    def add(self, points: PointSet | np.ndarray) -> None:
        """Insert events (stamps their cylinders; O(batch * stamp))."""
        coords = points.coords if isinstance(points, PointSet) else np.asarray(points, dtype=np.float64)
        if coords.size == 0:
            return
        batch = np.array(coords, dtype=np.float64)
        self._live.append(self._stamp_tracked(batch))
        self.counter.points_processed += len(batch)
        self._n += len(batch)
        self._version += 1

    def remove(self, points: PointSet | np.ndarray) -> None:
        """Retire events by stamping their negative contribution.

        Removed rows that match tracked events (bit-identical
        coordinates) are also dropped from the live tracking, so
        :attr:`live_coords` stays consistent and a later
        :meth:`slide_window` cannot double-retire them; a batch that
        loses members forfeits its cached region stamp (the cache would
        no longer match the survivors).  The caller remains responsible
        for removing only events previously added: unknown rows are
        stamped negative as requested, which yields a density no event
        set generates (it may go negative, which :meth:`volume` clamps
        is *not* — validation stays honest).
        """
        coords = points.coords if isinstance(points, PointSet) else np.asarray(points, dtype=np.float64)
        if coords.size == 0:
            return
        if len(coords) > self._n:
            raise ValueError(
                f"cannot remove {len(coords)} events; only {self._n} present"
            )
        stamp_batch(
            self._acc, self.grid, self.kernel, coords, -1.0, self.counter
        )
        self._n -= len(coords)
        self._untrack(np.ascontiguousarray(coords, dtype=np.float64))
        self._version += 1

    def _untrack(self, coords: np.ndarray) -> None:
        """Drop removed rows from the tracked batches (vectorised multiset).

        Rows are matched bit-exactly (byte view of the float triples); at
        most one tracked occurrence is dropped per removed row, first
        batches first.  Which instance of duplicated identical rows is
        dropped is immaterial — they are indistinguishable.
        """
        uniq, counts = np.unique(_row_keys(coords), return_counts=True)
        remaining = int(counts.sum())
        kept: List[_TrackedBatch] = []
        for tb in self._live:
            if remaining == 0:
                kept.append(tb)
                continue
            bk = _row_keys(tb.coords)
            pos = np.minimum(np.searchsorted(uniq, bk), uniq.size - 1)
            matches = uniq[pos] == bk
            if not matches.any():
                kept.append(tb)
                continue
            # Rank only the matching rows (usually a handful) within each
            # run of equal keys and drop the first `counts[key]` of each
            # run; decrement the budget for later batches.
            midx = np.flatnonzero(matches)
            order = midx[np.argsort(bk[midx], kind="stable")]
            sbk = bk[order]
            new_run = np.concatenate(([True], sbk[1:] != sbk[:-1]))
            run_starts = np.flatnonzero(new_run)
            occ = np.arange(sbk.size) - run_starts[np.cumsum(new_run) - 1]
            drop_sorted = occ < counts[pos[order]]
            if not drop_sorted.any():
                kept.append(tb)
                continue
            dec = np.bincount(pos[order][drop_sorted], minlength=uniq.size)
            counts = counts - dec
            remaining -= int(dec.sum())
            drop = np.zeros(bk.size, dtype=bool)
            drop[order] = drop_sorted
            survivors = tb.coords[~drop]
            if len(survivors):
                # The cached buffer still holds the departed stamps; the
                # accumulator is already correct (negative stamp above),
                # only the cache is stale — retire it.  Membership changed,
                # so the survivors are a new batch id.
                kept.append(_TrackedBatch(self._new_batch_id(), survivors, None))
        self._live = kept

    def slide_window(self, new_points: PointSet | np.ndarray, t_horizon: float) -> int:
        """Add ``new_points`` and retire all tracked events with
        ``t < t_horizon``.  Returns the number of retired events.

        Retirement reuses each batch's cached region stamp where present:
        the cached box is subtracted in one slab operation, and for a
        partially-expired batch the surviving points are restamped into a
        fresh cache — so a slide never re-tabulates kernels for points
        that are leaving the window.
        """
        retired = 0
        kept_batches: List[_TrackedBatch] = []
        for tb in self._live:
            old_mask = tb.coords[:, 2] < t_horizon
            n_old = int(old_mask.sum())
            if n_old == 0:
                kept_batches.append(tb)
                continue
            retired += n_old
            kept = tb.coords[~old_mask]
            if tb.buffer is not None:
                # Same consistency guard remove() applies on the uncached
                # path: retiring more events than are present means the
                # caller already removed some out-of-band — fail loudly
                # rather than drive _n negative and double-subtract.
                if n_old > self._n:
                    raise ValueError(
                        f"cannot remove {n_old} events; only {self._n} present"
                    )
                # Cache reuse: drop the batch's whole materialised stamp,
                # then restamp only the survivors (none, on full expiry).
                self.counter.reduce_adds += tb.buffer.add_into(
                    self._acc, sign=-1.0
                )
                self._n -= n_old
                if len(kept):
                    kept_batches.append(self._stamp_tracked(kept))
            else:
                # Inline negative stamp (not remove(): this loop manages
                # the tracking itself, so the multiset untrack would be a
                # redundant O(live) scan per batch).
                old = tb.coords[old_mask]
                if len(old) > self._n:
                    raise ValueError(
                        f"cannot remove {len(old)} events; only {self._n} present"
                    )
                stamp_batch(
                    self._acc, self.grid, self.kernel, old, -1.0, self.counter
                )
                self._n -= len(old)
                if len(kept):
                    kept_batches.append(
                        _TrackedBatch(self._new_batch_id(), kept, None)
                    )
        self._live = kept_batches
        self.add(new_points)
        # add() bumped the version for non-empty feeds; a pure-retirement
        # slide must still invalidate version-keyed consumers — but a
        # quiet tick (nothing retired, nothing added) changes nothing and
        # must not force caches and serving indexes to rebuild.
        if retired:
            self._version += 1
        return retired

    def volume(self) -> Volume:
        """The current normalised density volume (copy; O(volume))."""
        if self._n == 0:
            return Volume(np.zeros(self.grid.shape), self.grid)
        norm = self.grid.normalization(self._n)
        data = self._acc * norm
        # Float cancellation from removals can leave tiny negatives
        # (~1e-17); clamp exact-zero level noise only.
        np.maximum(data, 0.0, out=data)
        return Volume(data, self.grid)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"IncrementalSTKDE(n={self._n}, grid={self.grid.shape})"
