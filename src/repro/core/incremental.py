"""Incremental STKDE: add and retire events without recomputation.

The paper's motivation is *interactive* exploration — surveillance feeds
update daily, dashboards slide their time window.  The PB-SYM estimator is
a normalised **sum of per-point stamps**, so it supports exact incremental
maintenance: adding an event stamps its cylinder, retiring one stamps the
negative.  Only the ``1/n`` normalisation couples events; this class keeps
the volume *unnormalised* internally and applies ``1/(n hs^2 ht)`` on
read, making add/remove O(stamp) instead of O(volume).

Example::

    inc = IncrementalSTKDE(grid)
    inc.add(monday_events)
    density = inc.volume()            # estimate over everything so far
    inc.remove(monday_events)         # slide the window
    inc.add(tuesday_events)

``slide_window(new, horizon)`` combines both steps for the common
time-window case.  Equivalence with batch recomputation is exact (tested
to fp tolerance), which is the property that makes this safe to deploy.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..algorithms.pb_sym import stamp_points_sym
from .grid import GridSpec, PointSet, Volume
from .instrument import WorkCounter
from .kernels import KernelPair, get_kernel

__all__ = ["IncrementalSTKDE"]


class IncrementalSTKDE:
    """Exactly-maintained STKDE under event insertion and retirement."""

    def __init__(
        self,
        grid: GridSpec,
        *,
        kernel: str | KernelPair = "epanechnikov",
        counter: Optional[WorkCounter] = None,
    ) -> None:
        self.grid = grid
        self.kernel = get_kernel(kernel)
        self.counter = counter if counter is not None else WorkCounter()
        # Unnormalised accumulator: sum of k_s * k_t stamps.
        self._acc = grid.allocate()
        self.counter.init_writes += self._acc.size
        self._n = 0
        self._live: List[np.ndarray] = []  # event batches currently included

    @property
    def n(self) -> int:
        """Number of events currently contributing."""
        return self._n

    def add(self, points: PointSet | np.ndarray) -> None:
        """Insert events (stamps their cylinders; O(batch * stamp))."""
        coords = points.coords if isinstance(points, PointSet) else np.asarray(points, dtype=np.float64)
        if coords.size == 0:
            return
        stamp_points_sym(
            self._acc, self.grid, self.kernel, coords, 1.0, self.counter
        )
        self.counter.points_processed += len(coords)
        self._n += len(coords)
        self._live.append(np.array(coords, dtype=np.float64))

    def remove(self, points: PointSet | np.ndarray) -> None:
        """Retire events by stamping their negative contribution.

        The caller is responsible for removing only events previously
        added; removing unknown events silently yields a density that no
        event set generates (it may go negative, which :meth:`volume`
        clamps is *not* — validation stays honest).
        """
        coords = points.coords if isinstance(points, PointSet) else np.asarray(points, dtype=np.float64)
        if coords.size == 0:
            return
        if len(coords) > self._n:
            raise ValueError(
                f"cannot remove {len(coords)} events; only {self._n} present"
            )
        stamp_points_sym(
            self._acc, self.grid, self.kernel, coords, -1.0, self.counter
        )
        self._n -= len(coords)

    def slide_window(self, new_points: PointSet | np.ndarray, t_horizon: float) -> int:
        """Add ``new_points`` and retire all tracked events with
        ``t < t_horizon``.  Returns the number of retired events."""
        retired = 0
        kept: List[np.ndarray] = []
        for batch in self._live:
            old = batch[batch[:, 2] < t_horizon]
            if len(old):
                self.remove(old)
                retired += len(old)
            rest = batch[batch[:, 2] >= t_horizon]
            if len(rest):
                kept.append(rest)
        self._live = kept
        self.add(new_points)
        return retired

    def volume(self) -> Volume:
        """The current normalised density volume (copy; O(volume))."""
        if self._n == 0:
            return Volume(np.zeros(self.grid.shape), self.grid)
        norm = self.grid.normalization(self._n)
        data = self._acc * norm
        # Float cancellation from removals can leave tiny negatives
        # (~1e-17); clamp exact-zero level noise only.
        np.maximum(data, 0.0, out=data)
        return Volume(data, self.grid)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"IncrementalSTKDE(n={self._n}, grid={self.grid.shape})"
