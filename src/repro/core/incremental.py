"""Incremental STKDE: add and retire events without recomputation.

The paper's motivation is *interactive* exploration — surveillance feeds
update daily, dashboards slide their time window.  The PB-SYM estimator is
a normalised **sum of per-point stamps**, so it supports exact incremental
maintenance: adding an event stamps its cylinder, retiring one stamps the
negative.  Only the ``1/n`` normalisation couples events; this class keeps
the volume *unnormalised* internally and applies ``1/(n hs^2 ht)`` on
read, making add/remove O(stamp) instead of O(volume).

Example::

    inc = IncrementalSTKDE(grid)
    inc.add(monday_events)
    density = inc.volume()            # estimate over everything so far
    inc.remove(monday_events)         # slide the window
    inc.add(tuesday_events)

``slide_window(new, horizon)`` combines both steps for the common
time-window case.  Equivalence with batch recomputation is exact (tested
to fp tolerance), which is the property that makes this safe to deploy.

Region-engine rebuild
---------------------
All stamping goes through the batched region engine
(:func:`repro.core.stamping.stamp_batch`), one engine batch per add /
remove.  On top of that, each tracked batch whose stamps fit affordably
in bounding boxes caches its materialised contribution in
:class:`~repro.core.regions.RegionBuffer` s: the summed cohort tables the
engine produced at ``add`` time.  Retiring a batch later reuses those
caches instead of re-tabulating kernels.

t-slabbed retirement caches
---------------------------
A batch is partitioned along t into **retirement slabs**
(:func:`~repro.core.regions.plan_time_slabs`: stamp-origin ordered,
balanced on stamped cell count, about two stamp extents thick by
default), each tracked independently with its own cached buffer.  A
sliding window's horizon then expires whole leading slabs and cuts
through at most one *straddle* slab, so a ``slide_window`` costs:

* **full slab retirement** — subtract the cached box (O(bbox), zero
  kernel evaluations), one per expired slab;
* **straddle restamp** — subtract the straddle slab's box and restamp
  only *its* survivors into a fresh cache — one thin engine batch,
  instead of re-tabulating kernels for every survivor of the batch.

This makes steady-state slides O(expired delta): the pre-slab behaviour
(restamp all survivors of a partially-expired batch) is recovered with
``t_slab_voxels=None``, and the two are equivalent to ``rtol=1e-12``.
Batches too spread out to cache affordably (slab boxes larger than
``cache_fraction`` of the grid in aggregate) fall back to plain engine
stamping with negative-norm removal, so memory stays bounded for global
batches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from .grid import GridSpec, PointSet, Volume
from .instrument import WorkCounter
from .kernels import KernelPair, get_kernel
from .regions import RegionBuffer, auto_slab_voxels, batch_bbox, plan_time_slabs
from .stamping import stamp_batch

__all__ = ["IncrementalSTKDE"]


def _row_keys(coords: np.ndarray) -> np.ndarray:
    """``(n,)`` opaque byte keys for exact (bitwise) row matching."""
    a = np.ascontiguousarray(coords, dtype=np.float64)
    return a.view(np.dtype((np.void, a.dtype.itemsize * a.shape[1]))).reshape(-1)


@dataclass
class _TrackedBatch:
    """A live tracking unit — one retirement slab — and its cached stamp.

    An added batch is tracked as one or more of these (one per t-slab
    when slabbing applies).  ``batch_id`` is unique for the life of the
    estimator and changes whenever the unit's *membership* changes
    (partial retirement, untracking): downstream consumers keyed on it —
    the serving layer's per-batch index segments — treat an id as an
    immutable event set, so survivors of a split are a brand-new batch.
    """

    batch_id: int
    coords: np.ndarray
    buffer: Optional[RegionBuffer]


class IncrementalSTKDE:
    """Exactly-maintained STKDE under event insertion and retirement.

    ``cache_fraction`` bounds the per-batch region cache: a batch is
    cached only when its stamps' bounding box covers at most that fraction
    of the grid (sliding-window time slabs are thin along t and qualify;
    a domain-wide backfill batch does not, and is simply engine-stamped).
    ``cache_fraction=0.0`` disables caching entirely.

    ``memory_budget_bytes`` additionally caps the *aggregate* footprint
    (accumulator + all cached buffers), like every other replicating path:
    a batch whose cache would push past the budget is stamped uncached —
    correctness is unaffected, only its later retirement falls back to
    negative restamping.  ``None`` leaves the aggregate unbounded.

    ``t_slab_voxels`` sets the retirement-slab thickness along t:
    ``"auto"`` (default) chooses per batch through the cost model
    (:meth:`repro.analysis.model.CostModel.choose_slab_voxels` prices the
    expired-buffer-overlap vs straddle-restamp trade from the batch's
    measured extent — the ``BENCH_regions.json`` thickness sweep spans
    2.5x to 6.3x over fixed choices), ``"geometric"`` pins the
    bandwidth-derived :func:`~repro.core.regions.auto_slab_voxels`
    heuristic, an ``int`` pins the thickness (benchmark sweeps), and
    ``None`` disables slabbing — one monolithic cache per batch, the
    pre-slab behaviour whose partial retirement restamps every survivor.
    ``max_slabs`` caps the tracked units a single ``add`` can mint.
    ``machine`` supplies calibrated unit costs for the adaptive choice
    (defaults to the uncalibrated :class:`MachineModel` constants, which
    keeps the choice deterministic and probe-free).
    """

    def __init__(
        self,
        grid: GridSpec,
        *,
        kernel: str | KernelPair = "epanechnikov",
        counter: Optional[WorkCounter] = None,
        cache_fraction: float = 0.5,
        memory_budget_bytes: Optional[int] = None,
        t_slab_voxels: int | str | None = "auto",
        max_slabs: int = 16,
        machine=None,
        compute: Optional[str] = None,
    ) -> None:
        if cache_fraction < 0.0:
            raise ValueError("cache_fraction must be >= 0")
        if t_slab_voxels == "geometric":
            t_slab_voxels = auto_slab_voxels(grid)
        if isinstance(t_slab_voxels, str):
            if t_slab_voxels != "auto":
                raise ValueError(
                    "t_slab_voxels must be >= 1, 'auto', 'geometric', or None"
                )
        elif t_slab_voxels is not None and t_slab_voxels < 1:
            raise ValueError(
                "t_slab_voxels must be >= 1, 'auto', 'geometric', or None"
            )
        if max_slabs < 1:
            raise ValueError("max_slabs must be >= 1")
        self.t_slab_voxels = t_slab_voxels
        self._machine = machine
        #: Compute backend for every stamp this estimator issues
        #: (:mod:`repro.core.backends`); ``None`` keeps the reference
        #: backend, so defaults stay bit-identical.
        self.compute = compute
        self._slab_model = None  # lazily-built CostModel for 'auto'
        self.max_slabs = int(max_slabs)
        self.grid = grid
        self.kernel = get_kernel(kernel)
        self.counter = counter if counter is not None else WorkCounter()
        self.cache_fraction = float(cache_fraction)
        self.memory_budget_bytes = memory_budget_bytes
        # Unnormalised accumulator: sum of k_s * k_t stamps.
        self._acc = grid.allocate()
        self.counter.init_writes += self._acc.size
        self._n = 0
        self._live: List[_TrackedBatch] = []  # event batches currently included
        self._version = 0
        self._next_batch_id = 0

    @property
    def n(self) -> int:
        """Number of events currently contributing."""
        return self._n

    @property
    def version(self) -> int:
        """Monotonic dataset version, bumped on every mutation.

        ``add``, ``remove``, and ``slide_window`` each advance it, so any
        derived artifact (query caches, serving indexes) keyed on the
        version is invalidated the moment the live window changes — this is
        the invalidation contract :mod:`repro.serve` relies on.
        """
        return self._version

    @property
    def live_coords(self) -> np.ndarray:
        """``(n, 3)`` coordinates of all currently-live events (copy).

        The concatenation of the tracked batches; what a serving layer
        indexes to answer direct kernel-sum queries against the current
        window without materialising a volume.
        """
        if not self._live:
            return np.empty((0, 3), dtype=np.float64)
        return np.vstack([tb.coords for tb in self._live])

    @property
    def live_batches(self) -> Tuple[Tuple[int, np.ndarray], ...]:
        """Currently-live ``(batch_id, coords)`` pairs, in tracking order.

        The incremental-index hook: each pair is an immutable event set
        (ids change when membership does), so a consumer holding per-batch
        derived state — :meth:`repro.serve.index.BucketIndex.sync` — can
        reconcile by id and touch only the batches that actually changed.
        """
        return tuple((tb.batch_id, tb.coords) for tb in self._live)

    @property
    def cached_buffer_cells(self) -> int:
        """Cells currently held in per-batch region caches (memory gauge)."""
        return sum(b.buffer.cells for b in self._live if b.buffer is not None)

    # ------------------------------------------------------------------
    def _cache_affordable(self, bbox_cells: int) -> bool:
        if bbox_cells > self.cache_fraction * self.grid.n_voxels:
            return False
        if self.memory_budget_bytes is None:
            return True
        footprint = (
            self._acc.nbytes + (self.cached_buffer_cells + bbox_cells) * 8
        )
        return footprint <= self.memory_budget_bytes

    def _new_batch_id(self) -> int:
        self._next_batch_id += 1
        return self._next_batch_id

    def _stamp_cached(self, coords: np.ndarray, bbox) -> _TrackedBatch:
        """Stamp one tracking unit into a fresh cached region buffer."""
        buf = RegionBuffer(bbox)
        self.counter.init_writes += buf.cells
        self.counter.shard_bbox_cells += buf.cells
        buf.stamp(
            self.grid, self.kernel, coords, 1.0, self.counter,
            compute=self.compute,
        )
        self.counter.reduce_adds += buf.add_into(self._acc)
        return _TrackedBatch(self._new_batch_id(), coords, buf)

    def _stamp_uncached(self, coords: np.ndarray) -> _TrackedBatch:
        stamp_batch(
            self._acc, self.grid, self.kernel, coords, 1.0, self.counter,
            compute=self.compute,
        )
        return _TrackedBatch(self._new_batch_id(), coords, None)

    def _stamp_tracked(self, coords: np.ndarray) -> List[_TrackedBatch]:
        """Stamp a batch through the region engine, caching when affordable.

        Partitions the batch into t-slabs and caches one
        :class:`RegionBuffer` per slab when the batch's *aggregate* slab
        footprint is affordable (``cache_fraction`` bounds the whole
        batch, exactly as it bounded the monolithic box — slab xy-boxes
        are tighter, so the aggregate is often smaller than the joint
        bbox); falls back to one monolithic cache when only the single
        bounding box fits, and to plain (uncached) engine stamping
        otherwise.
        """
        bbox = batch_bbox(self.grid, coords)
        if bbox is None:
            return [self._stamp_uncached(coords)]
        if self.t_slab_voxels is not None:
            slabs = plan_time_slabs(
                self.grid, coords,
                self._resolve_slab_voxels(coords, bbox), self.max_slabs
            )
            if len(slabs) > 1:
                parts = [coords[idx] for idx in slabs]
                boxes = [batch_bbox(self.grid, p) for p in parts]
                total = sum(b.volume for b in boxes if b is not None)
                if self._cache_affordable(total):
                    return [
                        self._stamp_cached(p, b) if b is not None
                        else self._stamp_uncached(p)
                        for p, b in zip(parts, boxes)
                    ]
        if self._cache_affordable(bbox.volume):
            return [self._stamp_cached(coords, bbox)]
        return [self._stamp_uncached(coords)]

    def _resolve_slab_voxels(self, coords: np.ndarray, bbox) -> int:
        """Per-batch retirement-slab thickness for the ``"auto"`` mode.

        Prices the thickness ladder through
        :meth:`~repro.analysis.model.CostModel.choose_slab_voxels` on the
        batch's measured bbox and t-extent instead of taking the
        geometric :func:`auto_slab_voxels` — the thickness sweep in
        ``BENCH_regions.json`` shows the fixed heuristic leaving most of
        the slab win on the table.  Pinned ints pass through untouched.
        The model import is local and lazy: only this opt-in planning
        path reaches from core up into analysis, and only with
        deterministic (nominal or caller-supplied) machine constants —
        no calibration probe ever runs inside ``add``.
        """
        if self.t_slab_voxels != "auto":
            return self.t_slab_voxels
        d = self.grid.domain
        span = int((coords[:, 2].max() - coords[:, 2].min()) / d.tres) + 1
        geo = auto_slab_voxels(self.grid)
        if span <= geo:
            # The whole batch fits in one geometric slab: slabbing thinner
            # cannot beat retiring the batch's own cache wholesale, and the
            # single-slab path preserves insertion order in live_coords.
            return geo
        if self._slab_model is None:
            from ..analysis.model import CostModel, MachineModel

            machine = (
                self._machine if self._machine is not None
                else MachineModel.nominal()
            )
            self._slab_model = CostModel(
                self.grid, PointSet(np.empty((0, 3))), machine
            )
        return self._slab_model.choose_slab_voxels(
            coords.shape[0], bbox.volume, span, max_slabs=self.max_slabs
        )

    @staticmethod
    def _coerce_unweighted(points: PointSet | np.ndarray) -> np.ndarray:
        """Event coordinates of an *unweighted* input.

        Weighted :class:`PointSet` s are rejected: the unnormalised
        accumulator sums unit stamps, so silently dropping weights would
        serve a different estimator than the caller built.
        """
        if isinstance(points, PointSet):
            if points.weights is not None:
                raise ValueError(
                    "IncrementalSTKDE does not track per-event weights; "
                    "serve weighted sets through a static DensityService "
                    "or drop the weights explicitly"
                )
            return points.coords
        return np.asarray(points, dtype=np.float64)

    def add(self, points: PointSet | np.ndarray) -> None:
        """Insert events (stamps their cylinders; O(batch * stamp)).

        Weighted :class:`PointSet` s are rejected — see
        :meth:`_coerce_unweighted`.
        """
        coords = self._coerce_unweighted(points)
        if coords.size == 0:
            return
        batch = np.array(coords, dtype=np.float64)
        self._live.extend(self._stamp_tracked(batch))
        self.counter.points_processed += len(batch)
        self._n += len(batch)
        self._version += 1

    def remove(self, points: PointSet | np.ndarray) -> None:
        """Retire events by stamping their negative contribution.

        Removed rows that match tracked events (bit-identical
        coordinates) are also dropped from the live tracking, so
        :attr:`live_coords` stays consistent and a later
        :meth:`slide_window` cannot double-retire them; a batch that
        loses members forfeits its cached region stamp (the cache would
        no longer match the survivors).  The caller remains responsible
        for removing only events previously added: unknown rows are
        stamped negative as requested, which yields a density no event
        set generates (it may go negative, which :meth:`volume` clamps
        is *not* — validation stays honest).
        """
        coords = self._coerce_unweighted(points)
        if coords.size == 0:
            return
        if len(coords) > self._n:
            raise ValueError(
                f"cannot remove {len(coords)} events; only {self._n} present"
            )
        stamp_batch(
            self._acc, self.grid, self.kernel, coords, -1.0, self.counter,
            compute=self.compute,
        )
        self._n -= len(coords)
        self._untrack(np.ascontiguousarray(coords, dtype=np.float64))
        self._version += 1

    def _untrack(self, coords: np.ndarray) -> None:
        """Drop removed rows from the tracked batches (vectorised multiset).

        Rows are matched bit-exactly (byte view of the float triples); at
        most one tracked occurrence is dropped per removed row, first
        batches first.  Which instance of duplicated identical rows is
        dropped is immaterial — they are indistinguishable.
        """
        uniq, counts = np.unique(_row_keys(coords), return_counts=True)
        remaining = int(counts.sum())
        kept: List[_TrackedBatch] = []
        for tb in self._live:
            if remaining == 0:
                kept.append(tb)
                continue
            bk = _row_keys(tb.coords)
            pos = np.minimum(np.searchsorted(uniq, bk), uniq.size - 1)
            matches = uniq[pos] == bk
            if not matches.any():
                kept.append(tb)
                continue
            # Rank only the matching rows (usually a handful) within each
            # run of equal keys and drop the first `counts[key]` of each
            # run; decrement the budget for later batches.
            midx = np.flatnonzero(matches)
            order = midx[np.argsort(bk[midx], kind="stable")]
            sbk = bk[order]
            new_run = np.concatenate(([True], sbk[1:] != sbk[:-1]))
            run_starts = np.flatnonzero(new_run)
            occ = np.arange(sbk.size) - run_starts[np.cumsum(new_run) - 1]
            drop_sorted = occ < counts[pos[order]]
            if not drop_sorted.any():
                kept.append(tb)
                continue
            dec = np.bincount(pos[order][drop_sorted], minlength=uniq.size)
            counts = counts - dec
            remaining -= int(dec.sum())
            drop = np.zeros(bk.size, dtype=bool)
            drop[order] = drop_sorted
            survivors = tb.coords[~drop]
            if len(survivors):
                # The cached buffer still holds the departed stamps; the
                # accumulator is already correct (negative stamp above),
                # only the cache is stale — retire it.  Membership changed,
                # so the survivors are a new batch id.
                kept.append(_TrackedBatch(self._new_batch_id(), survivors, None))
        self._live = kept

    def slide_window(self, new_points: PointSet | np.ndarray, t_horizon: float) -> int:
        """Add ``new_points`` and retire all tracked events with
        ``t < t_horizon``.  Returns the number of retired events.

        Retirement reuses each tracked slab's cached region stamp where
        present: fully-expired slabs are subtracted in one box operation
        each (zero kernel evaluations), and only the slab the horizon
        cuts *through* restamps its survivors into a fresh cache — so a
        slide's kernel work is proportional to one straddle slab, not to
        every survivor of a partially-expired batch.
        """
        retired = 0
        kept_batches: List[_TrackedBatch] = []
        for tb in self._live:
            old_mask = tb.coords[:, 2] < t_horizon
            n_old = int(old_mask.sum())
            if n_old == 0:
                kept_batches.append(tb)
                continue
            retired += n_old
            kept = tb.coords[~old_mask]
            if tb.buffer is not None:
                # Same consistency guard remove() applies on the uncached
                # path: retiring more events than are present means the
                # caller already removed some out-of-band — fail loudly
                # rather than drive _n negative and double-subtract.
                if n_old > self._n:
                    raise ValueError(
                        f"cannot remove {n_old} events; only {self._n} present"
                    )
                # Cache reuse: drop the slab's whole materialised stamp,
                # then restamp only the survivors (none, on full expiry).
                self.counter.reduce_adds += tb.buffer.add_into(
                    self._acc, sign=-1.0
                )
                self.counter.slab_buffers_retired += 1
                self._n -= n_old
                if len(kept):
                    self.counter.slab_restamp_points += len(kept)
                    kept_batches.extend(self._stamp_tracked(kept))
            else:
                # Inline negative stamp (not remove(): this loop manages
                # the tracking itself, so the multiset untrack would be a
                # redundant O(live) scan per batch).
                old = tb.coords[old_mask]
                if len(old) > self._n:
                    raise ValueError(
                        f"cannot remove {len(old)} events; only {self._n} present"
                    )
                stamp_batch(
                    self._acc, self.grid, self.kernel, old, -1.0,
                    self.counter, compute=self.compute,
                )
                self._n -= len(old)
                if len(kept):
                    kept_batches.append(
                        _TrackedBatch(self._new_batch_id(), kept, None)
                    )
        self._live = kept_batches
        self.add(new_points)
        # add() bumped the version for non-empty feeds; a pure-retirement
        # slide must still invalidate version-keyed consumers — but a
        # quiet tick (nothing retired, nothing added) changes nothing and
        # must not force caches and serving indexes to rebuild.
        if retired:
            self._version += 1
        return retired

    def _canonical_composition(self) -> Optional[np.ndarray]:
        """The live caches summed in canonical order, or ``None``.

        Each cached :class:`RegionBuffer` is a pure function of its
        unit's coordinates — it was stamped into a fresh zeroed buffer at
        add time and never mutated afterwards — so summing the caches
        into a fresh zero volume in a *content-derived* order makes the
        result a pure function of the live membership, independent of
        the mutation history that produced it.  That is the bit-exact
        warm-vs-cold contract: a long-slid window and a cold estimator
        re-fed the same :attr:`live_batches` (one ``add`` per unit,
        slabbing disabled so each unit re-stamps whole) compose the
        identical buffer multiset in the identical order and produce
        bit-equal volumes.  The order sorts by bbox window then a digest
        of the unit's rows, so no accidental property of tracking order
        (which *does* depend on history) leaks into the sum.

        Only available when every live unit carries a cache and the
        tracked rows account for every contributing event (out-of-band
        ``remove`` of unknown rows leaves negative stamps only the
        accumulator knows about); callers fall back to ``_acc``.
        """
        if not self._live:
            return None
        tracked = 0
        for tb in self._live:
            if tb.buffer is None:
                return None
            tracked += len(tb.coords)
        if tracked != self._n:
            return None

        def key(tb: _TrackedBatch):
            b = tb.buffer.window
            return (b.x0, b.x1, b.y0, b.y1, b.t0, b.t1,
                    len(tb.coords), tb.coords.tobytes())

        data = np.zeros(self.grid.shape)
        for tb in sorted(self._live, key=key):
            tb.buffer.add_into(data)
        return data

    def volume(self) -> Volume:
        """The current normalised density volume (copy; O(volume)).

        When every live unit carries a region cache the volume is
        composed from the caches in canonical order
        (:meth:`_canonical_composition`) — bit-exactly reproducible from
        the live membership alone, no matter how many slides produced
        it.  Otherwise it reads the running accumulator (fp-equivalent,
        not bit-canonical: subtraction order follows history).
        """
        if self._n == 0:
            return Volume(np.zeros(self.grid.shape), self.grid)
        norm = self.grid.normalization(self._n)
        data = self._canonical_composition()
        if data is None:
            data = self._acc * norm
        else:
            data *= norm
        # Float cancellation from removals can leave tiny negatives
        # (~1e-17); clamp exact-zero level noise only.
        np.maximum(data, 0.0, out=data)
        return Volume(data, self.grid)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"IncrementalSTKDE(n={self._n}, grid={self.grid.shape})"
