"""Kernel functions for space-time kernel density estimation.

The STKDE estimator (Saule et al., ICPP 2017, Section 2.1) combines a
*spatial* kernel ``k_s(u, v)`` supported on the unit disk with a *temporal*
kernel ``k_t(w)`` supported on ``[-1, 1]``:

.. math::

   \\hat f(x, y, t) = \\frac{1}{n h_s^2 h_t}
       \\sum_{i : d_i < h_s,\\ |t - t_i| \\le h_t}
       k_s\\!\\left(\\frac{x - x_i}{h_s}, \\frac{y - y_i}{h_s}\\right)
       k_t\\!\\left(\\frac{t - t_i}{h_t}\\right)

Every algorithm in this package is parameterised by a :class:`KernelPair`.
The algorithms only rely on two structural properties (Figure 3 of the
paper):

* ``k_s`` depends only on the spatial offset of a voxel from the point
  (it is *temporally invariant*), and
* ``k_t`` depends only on the temporal offset (it is *spatially invariant*).

Three kernel pairs are registered:

``"epanechnikov"`` (default)
    ``k_s(u, v) = 2/pi * (1 - (u^2 + v^2))`` on the unit disk and
    ``k_t(w) = 3/4 * (1 - w^2)`` on ``[-1, 1]``.  Both integrate to one
    over their support, so interior cylinders conserve unit mass.

``"quartic"``
    ``k_s(u, v) = 3/pi * (1 - (u^2 + v^2))^2`` — the biweight form used by
    Nakaya & Yano [NY10], the paper's reference for the STKDE method.

``"as_printed"``
    The literal product form appearing in the arXiv rendering of the paper,
    ``k_s(u, v) = pi/2 * (1 - u)^2 (1 - v)^2`` and
    ``k_t(w) = 3/4 * (1 - w)^2``.  It is kept for completeness; see
    DESIGN.md for why we believe this is an OCR artifact of the standard
    kernels above.  It exercises the same code paths and satisfies the same
    invariance structure.

Kernel evaluation is by far the dominant floating-point cost of the
point-based algorithms (the paper estimates ~40 flops per voxel for PB), so
the spatial kernels here are deliberately written as straightforward NumPy
expressions: the *relative* cost of evaluating ``k_s`` on a full cylinder
(PB, PB-BAR) versus once per disk (PB-DISK, PB-SYM) is what Table 3
measures.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Tuple

import numpy as np

__all__ = [
    "KernelPair",
    "available_kernels",
    "get_kernel",
    "register_kernel",
    "epanechnikov_spatial",
    "epanechnikov_temporal",
    "quartic_spatial",
    "as_printed_spatial",
    "as_printed_temporal",
]

#: Signature of a spatial kernel: ``f(u, v) -> values`` where ``u = dx/h_s``
#: and ``v = dy/h_s`` are normalised offsets.  The function must be valid for
#: any offsets inside the unit disk; masking of the exterior is the caller's
#: responsibility (algorithms apply the paper's ``d < h_s`` test explicitly).
SpatialKernel = Callable[[np.ndarray, np.ndarray], np.ndarray]

#: Signature of a temporal kernel: ``f(w) -> values`` with ``w = dt/h_t``.
TemporalKernel = Callable[[np.ndarray], np.ndarray]


def epanechnikov_spatial(u: np.ndarray, v: np.ndarray) -> np.ndarray:
    """2-D Epanechnikov kernel ``2/pi * (1 - (u^2 + v^2))``.

    Integrates to one over the unit disk:
    ``int_0^1 2/pi (1 - r^2) * 2 pi r dr = 1``.
    """
    return (2.0 / math.pi) * (1.0 - (u * u + v * v))


def epanechnikov_temporal(w: np.ndarray) -> np.ndarray:
    """1-D Epanechnikov kernel ``3/4 * (1 - w^2)``, unit mass on [-1, 1]."""
    return 0.75 * (1.0 - w * w)


def quartic_spatial(u: np.ndarray, v: np.ndarray) -> np.ndarray:
    """2-D quartic (biweight) kernel ``3/pi * (1 - (u^2 + v^2))^2``.

    This is the spatial kernel of Nakaya & Yano's space-time cube work
    [NY10]; it also integrates to one over the unit disk.
    """
    s = 1.0 - (u * u + v * v)
    return (3.0 / math.pi) * s * s


def as_printed_spatial(u: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Literal spatial kernel from the arXiv text: ``pi/2 (1-u)^2 (1-v)^2``.

    Not a probability kernel (it is asymmetric in the sign of ``u``/``v``
    and does not integrate to one) but retained so the reproduction can be
    run against the exact formula as printed.
    """
    a = 1.0 - u
    b = 1.0 - v
    return (math.pi / 2.0) * (a * a) * (b * b)


def as_printed_temporal(w: np.ndarray) -> np.ndarray:
    """Literal temporal kernel from the arXiv text: ``3/4 (1-w)^2``."""
    a = 1.0 - w
    return 0.75 * (a * a)


@dataclass(frozen=True)
class KernelPair:
    """A named (spatial, temporal) kernel pair used by all algorithms.

    Attributes
    ----------
    name:
        Registry name, e.g. ``"epanechnikov"``.
    spatial:
        Vectorised ``k_s(u, v)``.
    temporal:
        Vectorised ``k_t(w)``.
    spatial_radial:
        Optional fast path for radially symmetric spatial kernels:
        ``f(r2) == spatial(u, v)`` with ``r2 = u^2 + v^2`` already in hand.
        The disk tabulation computes ``r2`` anyway for the bandwidth test,
        so radial kernels (Epanechnikov, quartic) skip re-deriving it from
        broadcast offsets.  ``None`` for non-radial kernels.
    spatial_flops / temporal_flops:
        Approximate floating-point operations per evaluation, used by the
        parametric execution model (Section 6.5) and by the work counters
        to translate kernel-evaluation counts into flop estimates.
    """

    name: str
    spatial: SpatialKernel
    temporal: TemporalKernel
    spatial_radial: Callable[[np.ndarray], np.ndarray] | None = None
    spatial_flops: int = 6
    temporal_flops: int = 3

    def spatial_scalar(self, u: float, v: float) -> float:
        """Evaluate ``k_s`` on scalars (used by scalar reference paths)."""
        return float(self.spatial(np.float64(u), np.float64(v)))

    def temporal_scalar(self, w: float) -> float:
        """Evaluate ``k_t`` on a scalar."""
        return float(self.temporal(np.float64(w)))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"KernelPair({self.name!r})"


_REGISTRY: Dict[str, KernelPair] = {}


def register_kernel(pair: KernelPair, *, overwrite: bool = False) -> KernelPair:
    """Register a kernel pair under ``pair.name``.

    Raises
    ------
    ValueError
        If the name is already registered and ``overwrite`` is false.
    """
    if pair.name in _REGISTRY and not overwrite:
        raise ValueError(f"kernel {pair.name!r} already registered")
    _REGISTRY[pair.name] = pair
    return pair


def get_kernel(name: str | KernelPair = "epanechnikov") -> KernelPair:
    """Look up a kernel pair by name (idempotent on KernelPair inputs)."""
    if isinstance(name, KernelPair):
        return name
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown kernel {name!r}; available: {known}") from None


def available_kernels() -> Tuple[str, ...]:
    """Names of all registered kernel pairs, sorted."""
    return tuple(sorted(_REGISTRY))


def _epanechnikov_radial(r2: np.ndarray) -> np.ndarray:
    return (2.0 / math.pi) * (1.0 - r2)


def _quartic_radial(r2: np.ndarray) -> np.ndarray:
    s = 1.0 - r2
    return (3.0 / math.pi) * s * s


register_kernel(
    KernelPair(
        name="epanechnikov",
        spatial=epanechnikov_spatial,
        temporal=epanechnikov_temporal,
        spatial_radial=_epanechnikov_radial,
        spatial_flops=6,
        temporal_flops=3,
    )
)
register_kernel(
    KernelPair(
        name="quartic",
        spatial=quartic_spatial,
        temporal=epanechnikov_temporal,
        spatial_radial=_quartic_radial,
        spatial_flops=8,
        temporal_flops=3,
    )
)
register_kernel(
    KernelPair(
        name="as_printed",
        spatial=as_printed_spatial,
        temporal=as_printed_temporal,
        spatial_radial=None,
        spatial_flops=7,
        temporal_flops=4,
    )
)
