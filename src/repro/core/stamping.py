"""Batched stamping engine: cohort-vectorised point-cylinder accumulation.

The point-based algorithms (PB, PB-DISK, PB-BAR, PB-SYM) all share one hot
path: *for every point, tabulate kernel values over its clipped stamp
window and accumulate them into the density volume*.  Executing that loop
point-by-point at the Python level costs a handful of interpreter-dispatched
NumPy calls per point; for the small stamps of realistic bandwidths the
dispatch dominates the arithmetic, and because the loop re-acquires the GIL
between tiny kernels the ``threads`` backend gets almost no real overlap.

This module replaces the per-point loop with **cohort batching**, following
the amortisation idea of bucketed/batched KDE evaluation (Charikar &
Siminelakis, 2018): group points whose clipped windows share the same
``(wx, wy, wt)`` extent — interior points all share the full
``(2Hs+1, 2Hs+1, 2Ht+1)`` stamp; boundary/clipped points fall into a small
number of residual shape cohorts — then

1. tabulate each cohort's spatial disks as one ``(m, wx, wy)`` vectorised
   computation and its temporal bars as one ``(m, wt)`` computation,
2. form the per-point contributions (outer products for PB-SYM, per-voxel
   kernel products for the other cost profiles) as one ``(m, wx, wy, wt)``
   array, and
3. scatter-accumulate the contributions into the volume with a single
   ``bincount`` over the cohort slab's bounding box (dense cohorts) or a
   thin slice-add sweep (sparse cohorts) — never per-point kernel dispatch.

Numerical contract: the engine evaluates *exactly* the same expressions as
the legacy per-point path (same ``d^2 < hs^2`` / ``|dt| <= ht`` masks, same
operation order inside a point's tables), and accumulates contributions in
ascending point order within each cohort slab.  Only the grouping of
additions differs, so engine and legacy volumes agree to ~1e-15 relative —
the equivalence suite pins this at ``rtol=1e-12`` for every registered
kernel.  Work counters report the identical logical operation counts as the
per-point path, plus two batching statistics (``stamp_batches``,
``stamp_cohorts``) that feed the Section 6.5 cost model.

Because each cohort slab is a handful of large GIL-releasing NumPy kernels,
this engine is also what makes the ``threads`` backend genuinely scale —
see :func:`repro.parallel.executors.run_threaded_stamping`.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .backends import ComputeBackend, get_backend
from .grid import GridSpec, VoxelWindow
from .instrument import WorkCounter, null_counter
from .kernels import KernelPair

__all__ = ["stamp_batch", "batch_windows", "masked_kernel_product", "STAMP_MODES"]

#: Cost profiles the engine reproduces, one per point-based algorithm:
#: ``"sym"`` tabulates disk and bar and multiply-adds their outer product
#: (PB-SYM); ``"pb"`` evaluates both kernels at every cylinder voxel (PB);
#: ``"disk"`` tabulates the disk and evaluates ``k_t`` per voxel (PB-DISK);
#: ``"bar"`` tabulates the bar and evaluates ``k_s`` per voxel (PB-BAR).
STAMP_MODES = ("sym", "pb", "disk", "bar")

#: Cap on contribution cells materialised per cohort slab (~4 MB of f8).
#: Kept L3-sized on purpose: cohorts are sorted by window origin before
#: slabbing, so a slab's scatter stays inside a compact bounding box and
#: the bincount accumulator stays cache-resident (measured ~25% faster
#: than one grid-wide scatter at 32 MB slabs).
_SLAB_CELLS = 1 << 19

#: Scatter densification threshold: a slab whose contributions cover at
#: least this fraction of its bounding box is accumulated with one
#: ``bincount`` over the box; sparser slabs use per-window slice adds so a
#: few isolated stamps never pay a near-volume-sized temporary.
_DENSE_SCATTER_FRACTION = 0.125


def batch_windows(
    grid: GridSpec,
    coords: np.ndarray,
    clip: Optional[VoxelWindow] = None,
) -> Tuple[np.ndarray, ...]:
    """Clipped stamp-window bounds for a batch of points, vectorised.

    Returns six ``(n,)`` int64 arrays ``X0, X1, Y0, Y1, T0, T1`` — the
    half-open voxel ranges of each point's density cylinder intersected
    with the grid and the optional ``clip`` window.  Empty windows come out
    with ``lo >= hi`` and are skipped by the engine.
    """
    vox = grid.voxels_of(coords)
    X0 = np.maximum(vox[:, 0] - grid.Hs, 0)
    X1 = np.minimum(vox[:, 0] + grid.Hs + 1, grid.Gx)
    Y0 = np.maximum(vox[:, 1] - grid.Hs, 0)
    Y1 = np.minimum(vox[:, 1] + grid.Hs + 1, grid.Gy)
    T0 = np.maximum(vox[:, 2] - grid.Ht, 0)
    T1 = np.minimum(vox[:, 2] + grid.Ht + 1, grid.Gt)
    if clip is not None:
        np.maximum(X0, clip.x0, out=X0)
        np.minimum(X1, clip.x1, out=X1)
        np.maximum(Y0, clip.y0, out=Y0)
        np.minimum(Y1, clip.y1, out=Y1)
        np.maximum(T0, clip.t0, out=T0)
        np.minimum(T1, clip.t1, out=T1)
    return X0, X1, Y0, Y1, T0, T1


def masked_kernel_product(
    grid: GridSpec,
    kernel: KernelPair,
    DX: np.ndarray,
    DY: np.ndarray,
    DT: np.ndarray,
    counter: WorkCounter,
) -> np.ndarray:
    """Masked ``k_s * k_t`` over broadcastable voxel-center offset arrays.

    The shared tabulation core of the per-(voxel, point)-pair cost profile:
    evaluate **both** kernels at every pair and zero the pairs outside the
    cylinder.  Used by this engine's ``mode="pb"`` cohort tables and by the
    voxel-tile path of :mod:`repro.core.regions` (VB/VB-DEC), so the two
    write paths share one mask, one expression order, and one accounting
    rule by construction.  Callers fold the normalisation in wherever their
    legacy path did — elementwise ``(ks * kt) * norm`` is associative with
    the mask, so routing through this helper is bit-identical.

    This is the reference-backend primitive (see
    :mod:`repro.core.backends`); pass ``compute=`` to the engines above it
    to route through a faster implementation.  Accounting is O(1) from the
    tabulated shape — ``madds`` charges the full window, mask included,
    matching every cohort mode (no per-call mask reduction).
    """
    return get_backend("numpy-ref").masked_kernel_product(
        grid, kernel, DX, DY, DT, counter
    )


def _axis_offsets(origin: float, res: float, lo: np.ndarray, width: int,
                  pos: np.ndarray) -> np.ndarray:
    """``(m, width)`` voxel-center offsets ``center - point`` along one axis.

    Reproduces the exact fp operation order of the legacy path
    (``GridSpec.x_centers`` then ``- x``): ``origin + (index + 0.5) * res``
    evaluated per cell, then the point coordinate subtracted.
    """
    idx = lo[:, None] + np.arange(width)[None, :]
    centers = origin + (idx + 0.5) * res
    return centers - pos[:, None]


def _scatter_slab(
    vol: np.ndarray,
    contrib: np.ndarray,
    x0: np.ndarray,
    y0: np.ndarray,
    t0: np.ndarray,
    vol_origin: Tuple[int, int, int],
) -> None:
    """Accumulate a cohort slab's contribution cylinders into ``vol``.

    Dense slabs (stamps covering a good fraction of their joint bounding
    box) are scattered with one ``bincount`` over the box — a single C
    loop, with additions performed in ascending point order.  Sparse slabs
    fall back to one slice-add per stamp, which is exactly the legacy
    accumulation and avoids a near-volume-sized temporary for a handful of
    isolated points.
    """
    m, wx, wy, wt = contrib.shape
    ox, oy, ot = vol_origin
    bx0 = int(x0.min())
    by0 = int(y0.min())
    bt0 = int(t0.min())
    bwx = int(x0.max()) + wx - bx0
    bwy = int(y0.max()) + wy - by0
    bwt = int(t0.max()) + wt - bt0
    box = bwx * bwy * bwt

    if contrib.size >= _DENSE_SCATTER_FRACTION * box:
        # int32 keeps the index traffic at half the float traffic; a box
        # never exceeds the volume, which is far below 2^31 cells here.
        IX = (x0[:, None] - bx0 + np.arange(wx)[None, :]).astype(np.int32)
        IY = (y0[:, None] - by0 + np.arange(wy)[None, :]).astype(np.int32)
        IT = (t0[:, None] - bt0 + np.arange(wt)[None, :]).astype(np.int32)
        base = (IX[:, :, None] * bwy + IY[:, None, :]) * bwt
        flat = base[:, :, :, None] + IT[:, None, None, :]
        partial = np.bincount(
            flat.reshape(-1), weights=contrib.reshape(-1), minlength=box
        )
        vol[
            bx0 - ox : bx0 - ox + bwx,
            by0 - oy : by0 - oy + bwy,
            bt0 - ot : bt0 - ot + bwt,
        ] += partial.reshape(bwx, bwy, bwt)
    else:
        for i in range(m):
            vol[
                x0[i] - ox : x0[i] - ox + wx,
                y0[i] - oy : y0[i] - oy + wy,
                t0[i] - ot : t0[i] - ot + wt,
            ] += contrib[i]


def stamp_batch(
    vol: np.ndarray,
    grid: GridSpec,
    kernel: KernelPair,
    coords: np.ndarray,
    norm: float,
    counter: Optional[WorkCounter] = None,
    *,
    mode: str = "sym",
    clip: Optional[VoxelWindow] = None,
    vol_origin: Tuple[int, int, int] = (0, 0, 0),
    slab_cells: int = _SLAB_CELLS,
    weights: Optional[np.ndarray] = None,
    compute: "ComputeBackend | str | None" = None,
) -> None:
    """Stamp a batch of points through the cohort-vectorised engine.

    Parameters
    ----------
    vol:
        Target array: a full ``(Gx, Gy, Gt)`` volume or a subarray whose
        voxel ``(0, 0, 0)`` sits at ``vol_origin`` in grid coordinates.
    coords:
        ``(n, 3)`` rows of ``(x, y, t)`` in domain space.
    norm:
        Normalisation prefactor folded into the spatial table (or the
        per-voxel product for ``mode="pb"``), normally
        ``grid.normalization(n)``.
    mode:
        Cost profile to reproduce — one of :data:`STAMP_MODES`.
    clip:
        Optional window restricting every stamp (the DD subdomain path).
    slab_cells:
        Upper bound on contribution cells materialised at once; cohorts
        larger than this are processed in slabs of consecutive points.
    weights:
        Optional ``(n,)`` per-point weights: each point's kernel product
        is scaled by its weight before the scatter, so a weighted batch
        accumulates ``sum_i w_i * norm * k_s * k_t`` — the weighted
        estimator (callers normalise by total weight instead of ``n``).
        ``None`` keeps the unit-weight paths byte-for-byte unchanged.
    compute:
        Compute backend for the cohort tabulation — a name, a
        :class:`~repro.core.backends.base.ComputeBackend` instance, or
        ``None`` for the default ``numpy-ref`` (bit-identical to the
        pre-seam engine).  Backends that cannot evaluate ``kernel``
        natively fall back internally to an always-available path.
    """
    if mode not in STAMP_MODES:
        raise ValueError(f"unknown stamp mode {mode!r}; expected one of {STAMP_MODES}")
    backend = get_backend(compute)
    counter = counter if counter is not None else null_counter()
    coords = np.asarray(coords, dtype=np.float64)
    n = coords.shape[0]
    if weights is not None:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (n,):
            raise ValueError(
                f"weights must be ({n},) matching coords, got {weights.shape}"
            )
    if n == 0:
        return
    X0, X1, Y0, Y1, T0, T1 = batch_windows(grid, coords, clip)
    wx = X1 - X0
    wy = Y1 - Y0
    wt = T1 - T0
    valid = (wx > 0) & (wy > 0) & (wt > 0)
    live = np.nonzero(valid)[0]
    if live.size == 0:
        return
    counter.stamp_batches += 1

    dom = grid.domain
    # Cohort key: the stamp shape.  Interior points share the full
    # (2Hs+1, 2Hs+1, 2Ht+1) extent; clipped points land in residual shapes.
    span_s = 2 * grid.Hs + 2
    span_t = 2 * grid.Ht + 2
    key = (wx[live] * span_s + wy[live]) * span_t + wt[live]
    _, inverse = np.unique(key, return_inverse=True)
    n_cohorts = int(inverse.max()) + 1

    for k in range(n_cohorts):
        idx = live[inverse == k]
        counter.stamp_cohorts += 1
        # Sort the cohort by window origin so that consecutive slabs cover
        # compact bounding boxes: the scatter accumulator stays small and
        # cache-resident even when the cohort spans the whole grid.
        # Deterministic (lexicographic) accumulation order within a slab.
        idx = idx[np.lexsort((T0[idx], Y0[idx], X0[idx]))]
        cwx = int(wx[idx[0]])
        cwy = int(wy[idx[0]])
        cwt = int(wt[idx[0]])
        cells = cwx * cwy * cwt
        step = max(1, slab_cells // cells)
        for s in range(0, idx.size, step):
            sel = idx[s : s + step]
            dx = _axis_offsets(dom.x0, dom.sres, X0[sel], cwx, coords[sel, 0])
            dy = _axis_offsets(dom.y0, dom.sres, Y0[sel], cwy, coords[sel, 1])
            dt = _axis_offsets(dom.t0, dom.tres, T0[sel], cwt, coords[sel, 2])
            contrib = backend.cohort_tables(
                grid, kernel, mode, norm, dx, dy, dt, counter
            )
            if weights is not None:
                contrib *= weights[sel][:, None, None, None]
            _scatter_slab(vol, contrib, X0[sel], Y0[sel], T0[sel], vol_origin)
