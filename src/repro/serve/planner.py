"""Query planner: price direct-sum against volume-lookup, pick per batch.

The serving layer has two physical plans for every logical query (see
:mod:`repro.serve.engine`) with opposite cost shapes:

* **direct-sum** costs O(candidates) per query and needs no volume;
* **volume-lookup** costs O(1) per query *after* an O(n * stamp + voxels)
  materialisation (already paid when the service holds a fresh volume).

A third plan exists only when the request carries an error budget
(``eps`` — ``None`` keeps every default exact): **approx** answers by the
ε-budgeted importance sampler (:func:`repro.serve.engine.approx_sum`),
O(runs + 1/ε²) per query — sublinear in candidate count, priced by
:meth:`~repro.analysis.model.CostModel.predict_approx_query` against the
two exact plans per batch.

Which wins is exactly the kind of combinatorial question the paper's
Section 6.5 model answers for the compute strategies, so the planner
reuses :class:`repro.analysis.model.CostModel` — same calibrated machine
constants, same batched-cost shapes — extended with the query-side
predictors (``predict_direct_query``, ``predict_volume_lookup``,
``predict_direct_region``, ``predict_lookup_region``).  The decision is
per query batch: a handful of probes against a sparse window stays on the
index walk; a dense 10k-query batch triggers materialisation and serves
from the volume (and every batch thereafter rides the already-built
volume for near-free).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..analysis.model import CostModel
from ..core.backends import DEFAULT_BACKEND, available_backends
from ..core.grid import VoxelWindow
from .index import BucketIndex

__all__ = ["QueryPlan", "QueryPlanner", "ScatterPlan"]


@dataclass(frozen=True)
class ScatterPlan:
    """The planner's verdict for one sharded-vs-local query batch.

    ``sharded_seconds`` is the :meth:`~repro.analysis.model.CostModel
    .predict_scatter_gather` estimate (IPC round-trips plus the balanced
    per-worker compute share); ``local_seconds`` the single-process
    direct-query estimate over the full candidate set.  ``fanout_rows``
    is the *exact* scattered row count (each query counted once per
    contacted shard, from the halo-widened spans) — the coordinator
    computes it before planning, so the IPC term is priced on real
    fan-out, not a guess.
    """

    backend: str  # "sharded" | "local"
    n_queries: int
    n_shards: int
    fanout_rows: int
    sharded_seconds: float
    local_seconds: float
    reason: str

    @property
    def speedup(self) -> float:
        """Predicted advantage of the chosen backend over the other."""
        lo = min(self.sharded_seconds, self.local_seconds)
        hi = max(self.sharded_seconds, self.local_seconds)
        return hi / max(lo, 1e-12)

    def describe(self) -> str:
        return (
            f"scatter[{self.n_queries}x{self.n_shards}] -> {self.backend}  "
            f"(sharded {self.sharded_seconds * 1e3:.3f} ms vs local "
            f"{self.local_seconds * 1e3:.3f} ms, fanout {self.fanout_rows} "
            f"rows; {self.reason})"
        )


@dataclass(frozen=True)
class QueryPlan:
    """The planner's verdict for one query batch.

    ``approx_seconds`` is the sampler's estimate when the batch carried an
    error budget (``eps``); infinite otherwise, so exact requests can
    never route to the approximate tier.

    ``compute`` is the pair-evaluation backend the chosen plan should run
    on (:mod:`repro.core.backends`).  A concrete request pins it; a
    ``compute="auto"`` request lets the planner argmin over every
    registered backend's calibrated unit costs — the default backend wins
    ties, so an uncalibrated model never routes away from the reference.
    """

    backend: str  # "direct" | "lookup" | "approx"
    kind: str  # "points" | "region"
    n_queries: int
    est_candidates: int  # total candidate pairs a direct plan would touch
    direct_seconds: float
    lookup_seconds: float
    volume_ready: bool
    reason: str
    approx_seconds: float = float("inf")
    eps: Optional[float] = None
    compute: str = DEFAULT_BACKEND

    @property
    def speedup(self) -> float:
        """Predicted advantage of the chosen backend over the best rival."""
        costs = sorted(
            [self.direct_seconds, self.lookup_seconds, self.approx_seconds]
        )[:2]
        return costs[1] / max(costs[0], 1e-12)

    def describe(self) -> str:
        approx = (
            f" vs approx(eps={self.eps:g}) {self.approx_seconds * 1e3:.3f} ms"
            if self.eps is not None
            else ""
        )
        return (
            f"{self.kind}[{self.n_queries}] -> {self.backend}  "
            f"(direct {self.direct_seconds * 1e3:.3f} ms vs lookup "
            f"{self.lookup_seconds * 1e3:.3f} ms{approx}, volume "
            f"{'ready' if self.volume_ready else 'cold'}; {self.reason})"
        )


class QueryPlanner:
    """Chooses the physical plan for each query batch via the cost model.

    ``force`` short-circuits planning for callers that pin a backend
    (benchmarks, tests, operators); the estimates are still reported so a
    pinned plan stays observable.
    """

    def __init__(self, model: CostModel) -> None:
        self.model = model

    # ------------------------------------------------------------------
    def plan_points(
        self,
        index: BucketIndex,
        queries: np.ndarray,
        *,
        volume_ready: bool,
        eps: Optional[float] = None,
        force: Optional[str] = None,
        force_reason: Optional[str] = None,
        compute: Optional[str] = None,
    ) -> QueryPlan:
        """Plan a point-query batch against the given index.

        ``eps`` opens the approximate arm: the sampler is priced against
        both exact plans and wins only where its O(runs + 1/ε²) shape
        beats them.  ``eps=None`` (the default) never routes approximate.

        ``compute`` pins the pair-evaluation backend; ``"auto"`` prices
        the kernel-summing plans at every registered backend's calibrated
        unit costs and routes to the cheapest (the default backend wins
        ties, so uncalibrated machines stay on the reference).  The
        volume-lookup arm touches no pair kernels, so its price is
        backend-independent.
        """
        q = np.asarray(queries, dtype=np.float64)
        m = q.shape[0]
        if m:
            counts = index.candidate_counts(q)
            cand = int(counts.sum())
            n_cohorts = int(np.unique(counts[counts > 0]).size)
        else:
            cand = n_cohorts = 0
        n_groups = index.group_count(q)
        n_segments = index.segment_count

        def price(backend_name: Optional[str]):
            direct = self.model.predict_direct_query(
                m, cand,
                n_groups=n_groups,
                n_cohorts=n_cohorts,
                n_segments=n_segments,
                compute=backend_name,
            )
            approx = (
                self.model.predict_approx_query(
                    m, cand, eps, n_segments=n_segments,
                    compute=backend_name,
                )
                if eps is not None
                else float("inf")
            )
            return direct, approx

        if compute == "auto":
            # Argmin over registered backends on each kernel-summing
            # plan's best arm; strict improvement over the default keeps
            # ties (and uncalibrated models) on the reference backend.
            chosen = DEFAULT_BACKEND
            direct, approx = price(DEFAULT_BACKEND)
            best = min(direct, approx)
            for name in available_backends():
                if name == DEFAULT_BACKEND:
                    continue
                d, a = price(name)
                if min(d, a) < best:
                    chosen, direct, approx, best = name, d, a, min(d, a)
        else:
            chosen = compute if compute is not None else DEFAULT_BACKEND
            direct, approx = price(chosen)
        lookup = self.model.predict_volume_lookup(m, volume_ready)
        return self._verdict("points", m, cand, direct, lookup,
                             volume_ready, force, force_reason,
                             approx=approx, eps=eps, compute=chosen)

    def plan_region(
        self,
        window: VoxelWindow,
        *,
        volume_ready: bool,
        force: Optional[str] = None,
        force_reason: Optional[str] = None,
    ) -> QueryPlan:
        """Plan a region (or slice) extract over a voxel window."""
        direct = self.model.predict_direct_region(window)
        lookup = self.model.predict_lookup_region(window, volume_ready)
        return self._verdict("region", window.volume, 0, direct, lookup,
                             volume_ready, force, force_reason)

    def plan_scatter(
        self,
        n_queries: int,
        est_candidates: int,
        n_shards: int,
        fanout_rows: int,
        *,
        n_groups: Optional[int] = None,
        n_cohorts: Optional[int] = None,
        n_segments: int = 1,
        force: Optional[str] = None,
        force_reason: Optional[str] = None,
    ) -> ScatterPlan:
        """Price sharded scatter/gather against local single-process.

        The sharded side pays two messages per contacted shard plus the
        serialization of every scattered query row and gathered partial
        (:meth:`~repro.analysis.model.CostModel.predict_scatter_gather`);
        its compute is the balanced ``1/P`` share.  The local side is the
        plain :meth:`~repro.analysis.model.CostModel
        .predict_direct_query` over the whole batch.  Small batches lose
        to the per-message cost; large scattered batches win on the
        divided candidate work.
        """
        sharded = self.model.predict_scatter_gather(
            n_queries, est_candidates, n_shards,
            fanout_rows=fanout_rows, n_groups=n_groups,
            n_cohorts=n_cohorts, n_segments=n_segments,
        )
        local = self.model.predict_direct_query(
            n_queries, est_candidates,
            n_groups=n_groups if n_groups is not None else max(1, n_queries),
            n_cohorts=n_cohorts if n_cohorts is not None else 1,
            n_segments=n_segments,
        )
        if force is not None:
            if force not in ("sharded", "local"):
                raise ValueError(
                    f"backend must be 'sharded' or 'local', got {force!r}"
                )
            backend, reason = force, (force_reason or "forced by caller")
        elif sharded.seconds <= local:
            backend = "sharded"
            reason = "divided candidate work beats IPC round-trips"
        else:
            backend = "local"
            reason = "batch too small to amortise scatter/gather IPC"
        return ScatterPlan(
            backend=backend,
            n_queries=n_queries,
            n_shards=n_shards,
            fanout_rows=fanout_rows,
            sharded_seconds=sharded.seconds,
            local_seconds=local,
            reason=reason,
        )

    # ------------------------------------------------------------------
    def _verdict(
        self,
        kind: str,
        n_queries: int,
        cand: int,
        direct: float,
        lookup: float,
        volume_ready: bool,
        force: Optional[str],
        force_reason: Optional[str] = None,
        approx: float = float("inf"),
        eps: Optional[float] = None,
        compute: str = DEFAULT_BACKEND,
    ) -> QueryPlan:
        if force is not None:
            allowed = ("direct", "lookup", "approx") if eps is not None \
                else ("direct", "lookup")
            if force not in allowed:
                raise ValueError(
                    f"backend must be one of {allowed}, got {force!r}"
                )
            backend, reason = force, (force_reason or "forced by caller")
        elif approx < min(direct, lookup):
            backend = "approx"
            reason = "sampler meets the eps budget below both exact plans"
        elif direct <= lookup:
            backend = "direct"
            reason = (
                "index walk beats lookup"
                if volume_ready
                else "batch too small to amortise materialisation"
            )
        else:
            backend = "lookup"
            reason = (
                "volume already materialised"
                if volume_ready
                else "batch amortises materialisation"
            )
        return QueryPlan(
            backend=backend,
            kind=kind,
            n_queries=n_queries,
            est_candidates=cand,
            direct_seconds=direct,
            lookup_seconds=lookup,
            volume_ready=volume_ready,
            reason=reason,
            approx_seconds=approx,
            eps=eps,
            compute=compute,
        )
