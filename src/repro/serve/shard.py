"""Shard planning for the multi-process serving tier.

A :class:`ShardPlan` partitions the space-time domain into ``P`` disjoint
x-slabs (cuts from :func:`repro.core.regions.plan_serving_shards`, balanced
on the event column histogram).  Every event is **owned by exactly one
shard** — the one whose x-interval contains it — so the per-shard kernel
sums are over disjoint event subsets and *add up to the global estimator
exactly* (the only fp effect is re-association of the outer sum, orders of
magnitude below the ``rtol=1e-12`` equivalence bar).

The **halo rule** lives on the query side, not the data side: the kernels
have finite support, so a query at ``x`` draws density only from events in
``[x - hs, x + hs]``.  :meth:`ShardPlan.scatter_spans` therefore widens
each query by one spatial bandwidth before mapping it onto the cut array —
the contacted span ``[lo, hi]`` covers every shard whose owned interval
intersects the query's support ball, and no event is ever shipped or
replicated across a cut.  A query that lands well inside a shard contacts
only its home shard; one within ``hs`` of a cut contacts both neighbours
and the coordinator sums their partials.

Ownership is computed with ``searchsorted`` against cut positions that lie
on voxel-column boundaries, so both sides of a process boundary (the
coordinator scattering and a worker filtering) reach the same verdict
under identical float arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.grid import GridSpec, VoxelWindow
from ..core.regions import plan_serving_shards

__all__ = ["ShardPlan", "plan_shards"]


@dataclass(frozen=True)
class ShardPlan:
    """Disjoint x-slab ownership plan for ``n_shards`` serving workers.

    ``cuts`` holds the ``n_shards - 1`` interior cut positions in domain x
    coordinates (nondecreasing).  Shard ``i`` owns the half-open interval
    ``[cuts[i-1], cuts[i])`` (with the domain edges closing the first and
    last shard), matching ``np.searchsorted(cuts, x, side="right")``.
    """

    grid: GridSpec
    cuts: np.ndarray
    halo: float = field(default=0.0)

    def __post_init__(self) -> None:
        cuts = np.ascontiguousarray(np.asarray(self.cuts, dtype=np.float64))
        if cuts.ndim != 1:
            raise ValueError(f"cuts must be 1-D, got shape {cuts.shape}")
        if cuts.size and np.any(np.diff(cuts) < 0):
            raise ValueError("cuts must be nondecreasing")
        object.__setattr__(self, "cuts", cuts)
        halo = float(self.halo) if self.halo else float(self.grid.hs)
        object.__setattr__(self, "halo", halo)

    @property
    def n_shards(self) -> int:
        """Number of shards (cut count plus one)."""
        return self.cuts.size + 1

    # ------------------------------------------------------------------
    # Event ownership (disjoint)
    # ------------------------------------------------------------------
    def owner_of(self, xs: np.ndarray) -> np.ndarray:
        """Owning shard id for each event x coordinate (``(n,) -> (n,)``)."""
        xs = np.asarray(xs, dtype=np.float64)
        return np.searchsorted(self.cuts, xs, side="right")

    def partition(self, coords: np.ndarray) -> list:
        """Row-index arrays splitting ``coords`` by owning shard.

        Returns ``n_shards`` ``int64`` arrays; their concatenation is a
        permutation of ``arange(len(coords))`` (every row owned exactly
        once).  Preserves input row order within each shard.
        """
        coords = np.asarray(coords, dtype=np.float64)
        if coords.shape[0] == 0:
            return [np.empty(0, np.int64) for _ in range(self.n_shards)]
        owner = self.owner_of(coords[:, 0])
        return [
            np.flatnonzero(owner == s).astype(np.int64)
            for s in range(self.n_shards)
        ]

    # ------------------------------------------------------------------
    # Query scatter (halo-widened)
    # ------------------------------------------------------------------
    def scatter_spans(self, xs: np.ndarray):
        """Per-query contacted shard spans ``(lo, hi)``, both inclusive.

        A query at ``x`` must hear from every shard owning events in
        ``[x - halo, x + halo]``; because ownership intervals are sorted
        that set is the contiguous span ``searchsorted(cuts, x - halo,
        "right") .. searchsorted(cuts, x + halo, "right")``.
        """
        xs = np.asarray(xs, dtype=np.float64)
        lo = np.searchsorted(self.cuts, xs - self.halo, side="right")
        hi = np.searchsorted(self.cuts, xs + self.halo, side="right")
        return lo, hi

    def shards_for_window(self, window: VoxelWindow) -> np.ndarray:
        """Shard ids owning events that can reach ``window``'s voxels.

        Widens the window's domain-x extent by one halo (voxel centers
        are what get stamped, but the window edge bound with the halo
        already covers every reaching event).
        """
        d = self.grid.domain
        x_lo = d.x0 + window.x0 * d.sres - self.halo
        x_hi = d.x0 + window.x1 * d.sres + self.halo
        lo = int(np.searchsorted(self.cuts, x_lo, side="right"))
        hi = int(np.searchsorted(self.cuts, x_hi, side="right"))
        return np.arange(lo, hi + 1, dtype=np.int64)


def plan_shards(
    grid: GridSpec, coords: np.ndarray, n_shards: int
) -> ShardPlan:
    """Build a :class:`ShardPlan` with event-balanced cuts.

    Thin wrapper over :func:`repro.core.regions.plan_serving_shards`; the
    halo defaults to one spatial bandwidth, the kernel support.
    """
    cuts = plan_serving_shards(grid, np.asarray(coords, dtype=np.float64),
                               n_shards)
    return ShardPlan(grid, cuts)
