"""LRU result cache for the query-serving layer.

Serving workloads repeat themselves: dashboards re-request the newest time
slice, map tiles re-request the same bbox, monitoring re-polls the same
sentinel locations.  :class:`QueryCache` is a size-bounded LRU over
*immutable* query results, keyed by ``(dataset_version, kind, params)``:

* the **version** comes from the data source
  (:attr:`repro.core.incremental.IncrementalSTKDE.version` for live
  sources, a constant for static snapshots).  Every mutation bumps it, so
  stale entries can never be served — and
  :meth:`drop_stale` removes them eagerly when the service observes a
  version change (the ``slide_window`` invalidation wiring);
* the **params** identify the query: a slice index, a window tuple, or a
  content digest of a point batch.

Entries are bounded both by count and by payload bytes; eviction is
least-recently-used.  Hit/miss/eviction counters feed the service stats
(and the cache-hit acceptance row of ``BENCH_query.json``).
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Any, Dict, Hashable, Optional, Tuple

import numpy as np

__all__ = ["QueryCache", "digest_queries"]


def digest_queries(queries: np.ndarray) -> str:
    """Stable content digest of a query batch (cache key for point sets)."""
    q = np.ascontiguousarray(np.asarray(queries, dtype=np.float64))
    h = hashlib.sha1(q.tobytes())
    h.update(str(q.shape).encode())
    return h.hexdigest()


class QueryCache:
    """Version-keyed LRU cache of query results.

    Parameters
    ----------
    max_entries:
        Maximum number of live entries (least recently used evicted).
    max_bytes:
        Optional ceiling on the summed payload ``nbytes``; inserting past
        it evicts LRU entries first.  A single payload larger than the
        ceiling is simply not cached.
    """

    def __init__(
        self, max_entries: int = 128, max_bytes: Optional[int] = None
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._entries: "OrderedDict[Tuple, Any]" = OrderedDict()
        self._bytes: Dict[Tuple, int] = {}
        self.total_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    # ------------------------------------------------------------------
    @staticmethod
    def make_key(version: int, kind: str, *params: Hashable) -> Tuple:
        """Canonical cache key: dataset version first, then query identity."""
        return (int(version), kind) + params

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Tuple) -> Any:
        """Cached value for ``key`` (marks it most-recent), else ``None``."""
        try:
            value = self._entries[key]
        except KeyError:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return value

    def get_first(self, keys) -> Any:
        """First cached value among ``keys`` — one logical lookup.

        Lets the service probe every backend variant of a query before
        paying for planning, while counting a single hit or miss (the
        caller asked one question, not ``len(keys)``).
        """
        for key in keys:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.hits += 1
                return self._entries[key]
        self.misses += 1
        return None

    def put(self, key: Tuple, value: Any, nbytes: int = 0) -> bool:
        """Insert a result; returns False when it cannot fit at all."""
        if self.max_bytes is not None and nbytes > self.max_bytes:
            return False
        if key in self._entries:
            self.total_bytes -= self._bytes.pop(key)
            del self._entries[key]
        while len(self._entries) >= self.max_entries or (
            self.max_bytes is not None
            and self._entries
            and self.total_bytes + nbytes > self.max_bytes
        ):
            self._evict_lru()
        self._entries[key] = value
        self._bytes[key] = nbytes
        self.total_bytes += nbytes
        return True

    def _evict_lru(self) -> None:
        key, _ = self._entries.popitem(last=False)
        self.total_bytes -= self._bytes.pop(key)
        self.evictions += 1

    def drop_stale(self, current_version: int) -> int:
        """Remove every entry whose key version differs from ``current``.

        Called by the service when its source's version advances (add /
        remove / ``slide_window``): version-mismatched entries could never
        hit again, so reclaim their memory immediately.  Returns the
        number of entries dropped.
        """
        stale = [k for k in self._entries if k[0] != current_version]
        for k in stale:
            self.total_bytes -= self._bytes.pop(k)
            del self._entries[k]
        self.invalidations += len(stale)
        return len(stale)

    def clear(self) -> None:
        """Drop everything (counts as invalidation, not eviction)."""
        self.invalidations += len(self._entries)
        self._entries.clear()
        self._bytes.clear()
        self.total_bytes = 0

    def stats(self) -> Dict[str, int]:
        """Counters snapshot for service/bench reporting."""
        return {
            "entries": len(self._entries),
            "bytes": self.total_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"QueryCache(entries={len(self._entries)}/{self.max_entries}, "
            f"hits={self.hits}, misses={self.misses})"
        )
