"""Supervision and replay-based recovery for the sharded worker pool.

The coordinator already routes every mutation to the shard that owns it;
:class:`ShardLog` simply *keeps* those routed batches — per shard, in
arrival order, truncated to the live horizon — which makes the
coordinator the authoritative copy of each worker's state.  When a
worker dies (pipe EOF / sentinel) or wedges (request deadline),
:class:`ShardSupervisor` reaps the process, respawns it with exponential
backoff, and replays the shard's log into the fresh child; the replayed
worker is state-equivalent to the dead one (the chaos tests pin
``rtol=1e-12`` against a cold single-process rebuild).  A restart budget
bounds the flapping: once exhausted the shard is declared **down** and
every subsequent request against it raises a typed
:class:`~repro.serve.errors.ShardDown` — at which point degraded reads
(:meth:`ShardedDensityService.query_points` with
``on_shard_failure="partial"``) are the caller's remaining option.

The scatter/gather entry point (:meth:`ShardSupervisor.scatter`) keeps
the pool sane under partial failure: every pending reply is drained
before any failure is acted on (raising mid-gather would leave unread
replies poisoning later requests — the PR 6 fault-path bug), failed
*queries* are retried exactly once against the recovered worker, and
failed *mutations* are completed by the replay itself — the log entry is
recorded before the send, so the respawned child has already applied it.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from ..core.instrument import WorkCounter
from .errors import ShardDown, ShardFailed
from .faults import FaultPlan
from .worker import ShardWorker

__all__ = ["ShardLog", "ShardSupervisor"]

#: Ops whose payloads mutate worker state (and are therefore logged).
MUTATION_OPS = frozenset({"static", "add", "remove", "slide"})

#: Gauges of an empty shard: ``(events, weight, min_t)``.
_EMPTY_GAUGES = (0, 0.0, float("inf"))


def _truncate_coords(coords: np.ndarray, horizon: float) -> np.ndarray:
    """Rows at or after the horizon (the live part of a batch)."""
    if coords.shape[0] == 0 or horizon == -np.inf:
        return coords
    keep = coords[:, 2] >= horizon
    return coords if bool(keep.all()) else coords[keep]


class ShardLog:
    """Horizon-truncated mutation log for one shard.

    Entries are the exact ``(op, payload)`` tuples the coordinator
    routed to the worker, in order.  Truncation drops rows whose time
    coordinate predates the newest slide horizon — those events are
    retired on the worker too, so replaying the truncated log rebuilds
    the *live* state only.  Row order is preserved, so ``remove``
    semantics (match-by-value against prior adds) survive replay.  The
    log is bounded by the window's live traffic, not its lifetime:
    every slide truncates, and entries emptied by truncation are
    dropped.
    """

    def __init__(self) -> None:
        self.entries: List[Tuple[str, Any]] = []
        self.horizon: float = -np.inf

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def rows(self) -> int:
        """Total coordinate rows a replay would ship."""
        total = 0
        for op, payload in self.entries:
            if op in ("static", "slide"):
                total += int(payload[0].shape[0])
            else:
                total += int(payload.shape[0])
        return total

    def record(self, op: str, payload: Any) -> None:
        if op == "static":
            # A snapshot *is* the state: it replaces any prior log.
            self.entries = [(op, payload)]
            return
        if op == "slide":
            coords, horizon = payload
            self.entries.append((op, payload))
            self.truncate(float(horizon))
            return
        if op in ("add", "remove"):
            self.entries.append((op, payload))
            return
        raise ValueError(f"unloggable op {op!r}")

    def truncate(self, horizon: float) -> None:
        """Drop rows (and emptied entries) retired by ``horizon``."""
        if horizon <= self.horizon:
            return
        self.horizon = horizon
        kept: List[Tuple[str, Any]] = []
        for op, payload in self.entries:
            if op == "static":
                coords, weights = payload
                live = coords[:, 2] >= horizon if coords.shape[0] else None
                if live is None or bool(live.all()):
                    kept.append((op, payload))
                else:
                    kept.append((op, (
                        coords[live],
                        None if weights is None else weights[live],
                    )))
                continue
            if op == "slide":
                coords, h = payload
                coords = _truncate_coords(coords, horizon)
                # The horizon itself is subsumed by the truncation: a
                # replayed slide over already-truncated entries retires
                # nothing, so an emptied slide carries no information.
                if coords.shape[0]:
                    kept.append((op, (coords, h)))
                continue
            coords = _truncate_coords(payload, horizon)
            if coords.shape[0]:
                kept.append((op, coords))
        self.entries = kept


class ShardSupervisor:
    """Owns the worker pool: spawn, supervise, respawn-and-replay.

    Parameters
    ----------
    n_shards:
        Pool size.
    factory:
        ``factory(shard_id, fault_plan) -> ShardWorker`` — the service
        closes its grid/kernel/tuning over this, the supervisor decides
        *when* to call it and with which (respawn-filtered) fault plan.
    counter:
        The coordinator's :class:`WorkCounter`; recovery moves
        ``shard_restarts`` / ``shard_replayed_batches`` /
        ``requests_retried`` on it.
    max_restarts:
        Restart budget **per shard** before it is declared down.
    backoff_s:
        Base respawn delay; attempt ``k`` sleeps ``backoff_s * 2**k``.
    request_timeout:
        Per-request deadline handed to every worker send/recv (``None``
        = wait forever, the pre-supervision behaviour).
    fault_plan:
        Optional fault-injection plan; respawned workers receive its
        :meth:`~repro.serve.faults.FaultPlan.respawn_view`.
    gauges_cb:
        ``gauges_cb(shard_id, (events, weight, min_t))`` — called after
        every recovery so the service's routing state tracks the
        replayed worker.
    """

    def __init__(
        self,
        n_shards: int,
        factory: Callable[[int, Optional[FaultPlan]], ShardWorker],
        *,
        counter: WorkCounter,
        max_restarts: int = 3,
        backoff_s: float = 0.05,
        request_timeout: Optional[float] = None,
        fault_plan: Optional[FaultPlan] = None,
        gauges_cb: Optional[Callable[[int, tuple], None]] = None,
    ) -> None:
        self.counter = counter
        self.max_restarts = int(max_restarts)
        self.backoff_s = float(backoff_s)
        self.request_timeout = request_timeout
        self._factory = factory
        self._fault_plan = fault_plan
        self._gauges_cb = gauges_cb
        self._closed = False
        self.workers: List[ShardWorker] = [
            factory(s, fault_plan) for s in range(n_shards)
        ]
        self.logs: List[ShardLog] = [ShardLog() for _ in range(n_shards)]
        self.restarts: List[int] = [0] * n_shards
        self._down: Dict[int, ShardDown] = {}

    # ------------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return len(self.workers)

    def down_shards(self) -> List[int]:
        return sorted(self._down)

    def is_down(self, s: int) -> bool:
        return s in self._down

    def record(self, s: int, op: str, payload: Any) -> None:
        """Log one routed mutation (call *before* sending it)."""
        self.logs[s].record(op, payload)

    def _raise_down(self, s: int, op: str) -> None:
        raise ShardDown(
            s, op,
            f"shard is down (restart budget of {self.max_restarts} "
            f"exhausted)",
        )

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def recover(
        self, s: int, op: str = "recover"
    ) -> Tuple[tuple, Optional[str], Any]:
        """Respawn shard ``s`` and replay its log into the fresh worker.

        Returns ``(gauges, last_op, last_reply)`` where ``last_*``
        describe the final replayed entry (``None`` for an empty log) —
        the caller uses them to synthesise the reply of a mutation the
        replay completed.  Retries the respawn within the restart budget
        when the replay itself faults (a persistent injected fault, a
        crashing machine); past the budget the shard is marked down and
        :class:`ShardDown` raises.
        """
        if s in self._down:
            self._raise_down(s, op)
        self.workers[s].kill()
        while True:
            attempt = self.restarts[s]
            if attempt >= self.max_restarts:
                exc = ShardDown(
                    s, op,
                    f"shard is down (restart budget of "
                    f"{self.max_restarts} exhausted)",
                )
                self._down[s] = exc
                raise exc
            delay = self.backoff_s * (2.0 ** attempt)
            if delay > 0.0:
                time.sleep(delay)
            self.restarts[s] += 1
            self.counter.shard_restarts += 1
            plan = (
                self._fault_plan.respawn_view()
                if self._fault_plan is not None else None
            )
            worker = self._factory(s, plan)
            self.workers[s] = worker
            try:
                gauges, last_op, last_reply = self._replay(s, worker)
            except ShardFailed as exc:
                if not exc.retryable:
                    raise
                worker.kill()
                continue  # burn another restart
            if self._gauges_cb is not None:
                self._gauges_cb(s, gauges)
            return gauges, last_op, last_reply

    def _replay(
        self, s: int, worker: ShardWorker
    ) -> Tuple[tuple, Optional[str], Any]:
        last_op: Optional[str] = None
        last_reply: Any = None
        for op, payload in self.logs[s].entries:
            last_reply = worker.request(
                op, payload, timeout=self.request_timeout
            )
            last_op = op
            self.counter.shard_replayed_batches += 1
        if last_op is None:
            return _EMPTY_GAUGES, None, None
        gauges = tuple(last_reply[1:]) if last_op == "slide" \
            else tuple(last_reply)
        return gauges, last_op, last_reply

    @staticmethod
    def _synth_reply(op: str, gauges: tuple, last_op: Optional[str],
                     last_reply: Any) -> Any:
        """Reply for a mutation the replay completed.

        When the failed mutation is the log's final entry (the common
        case — it was recorded just before the send), its replay reply
        is the real one.  Otherwise (the entry was merged or emptied by
        truncation, i.e. it was a no-op) synthesise from the gauges.
        """
        if last_op == op:
            return last_reply
        return (0,) + tuple(gauges) if op == "slide" else tuple(gauges)

    # ------------------------------------------------------------------
    # Supervised scatter/gather
    # ------------------------------------------------------------------
    def scatter(
        self,
        sends: List[Tuple[int, str, Any]],
        *,
        on_failure: str = "raise",
    ) -> Tuple[Dict[int, Any], Dict[int, ShardFailed]]:
        """Send every request, gather every reply, recover what failed.

        ``sends`` is ``[(shard, op, payload), ...]`` with at most one
        request per shard (the service's scatter shape).  Returns
        ``(results, failed)`` keyed by shard.  All pending replies are
        drained before any recovery or raise — a mid-gather raise would
        strand unread replies in surviving workers' pipes and poison the
        next request.  Retryable failures recover the shard and retry
        the request once (mutations are completed by the replay itself);
        terminal failures raise when ``on_failure="raise"`` and populate
        ``failed`` when ``"partial"``.
        """
        if on_failure not in ("raise", "partial"):
            raise ValueError(
                f"on_failure must be 'raise' or 'partial', "
                f"got {on_failure!r}"
            )
        results: Dict[int, Any] = {}
        failed: Dict[int, ShardFailed] = {}
        pending: List[Tuple[int, str, Any]] = []
        retry: List[Tuple[int, str, Any, ShardFailed]] = []
        for s, op, payload in sends:
            if s in self._down:
                failed[s] = ShardDown(
                    s, op,
                    f"shard is down (restart budget of "
                    f"{self.max_restarts} exhausted)",
                )
                continue
            try:
                self.workers[s].send_op(op, payload)
            except ShardFailed as exc:
                if exc.retryable:
                    retry.append((s, op, payload, exc))
                else:
                    failed[s] = exc
                continue
            pending.append((s, op, payload))
        # Drain phase: every fired request gets its reply read (or its
        # failure recorded) before anything else happens.
        app_error: Optional[ShardFailed] = None
        for s, op, payload in pending:
            try:
                results[s] = self.workers[s].recv_reply(
                    op, timeout=self.request_timeout
                )
            except ShardFailed as exc:
                if exc.retryable:
                    retry.append((s, op, payload, exc))
                else:
                    # A healthy worker rejected the request: that is an
                    # application error, never maskable by "partial".
                    app_error = app_error or exc
        if app_error is not None:
            raise app_error
        # Recovery phase: respawn + replay, then retry each failed
        # request exactly once against the recovered worker.
        for s, op, payload, exc in retry:
            try:
                gauges, last_op, last_reply = self.recover(s, op)
                if op in MUTATION_OPS:
                    # Logged before the send: the replay applied it.
                    results[s] = self._synth_reply(
                        op, gauges, last_op, last_reply
                    )
                else:
                    results[s] = self.workers[s].request(
                        op, payload, timeout=self.request_timeout
                    )
                self.counter.requests_retried += 1
            except ShardFailed as exc2:
                failed[s] = exc2
        if failed and on_failure == "raise":
            raise next(iter(failed.values()))
        return results, failed

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self, grace: Optional[float] = None) -> None:
        """Close every worker (idempotent; survivors reaped cleanly)."""
        if self._closed:
            return
        self._closed = True
        for worker in self.workers:
            worker.close(grace=grace)

    def stats(self) -> Dict[str, object]:
        """Supervision gauges for the service's ``stats()`` blob."""
        return {
            "max_restarts": self.max_restarts,
            "request_timeout": self.request_timeout,
            "restarts_per_shard": list(self.restarts),
            "down_shards": self.down_shards(),
            "log_entries": [len(log) for log in self.logs],
            "log_rows": [log.rows for log in self.logs],
        }
