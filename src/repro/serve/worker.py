"""Shard-owning worker processes for the sharded serving tier.

Each worker process owns one shard's events behind a private
:class:`~repro.serve.index.BucketIndex` (and, in live mode, a private
:class:`~repro.core.incremental.IncrementalSTKDE`) and answers requests
over a duplex pipe.  Workers compute **unnormalised partial sums**
(``norm=1.0``): only the coordinator knows the window's total weight, so
it applies the ``1 / (W hs^2 ht)`` prefactor after gathering — which is
also what makes the partition exact, since the per-shard partials are
plain kernel sums over disjoint event subsets.

The protocol is a synchronous request/reply over ``(op, payload)`` tuples,
answered with ``("ok", result)`` or ``("err", message)``.  The
coordinator-side :class:`ShardWorker` waits on *both* the pipe and the
process sentinel — and, when given a ``timeout``, on a per-request
deadline — so a worker dying mid-request surfaces as a typed
:class:`~repro.serve.errors.ShardFailed` and a wedged-but-alive worker
as a :class:`~repro.serve.errors.ShardTimeout` instead of a hang.  Those
are the fault contracts the chaos tests pin, and what
:class:`~repro.serve.supervisor.ShardSupervisor` acts on to respawn and
replay.

Everything a worker needs is passed through the spawn-safe
:func:`_worker_main` entry point (module-level, picklable arguments:
grid spec, kernel *name*, index/incremental tuning, optional
:class:`~repro.serve.faults.FaultPlan`).  The ``spawn`` start method is
used unconditionally: it is the only method available everywhere and it
guarantees workers never inherit the coordinator's (possibly
multi-threaded) state.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
from multiprocessing.connection import Connection, wait
from typing import Any, Optional, Tuple

import numpy as np

from ..core.grid import GridSpec, VoxelWindow
from ..core.incremental import IncrementalSTKDE
from ..core.instrument import WorkCounter
from ..core.kernels import get_kernel
from .engine import approx_sum, direct_region, direct_sum
from .errors import ShardFailed, ShardTimeout
from .faults import FaultPlan, apply_fault
from .index import BucketIndex

__all__ = ["ShardWorker"]

#: Seconds a closing coordinator waits for a worker to exit gracefully
#: before escalating to terminate() (a deadline shared by the close
#: handshake and the join, not two stacked waits).
_CLOSE_GRACE = 5.0


class _WorkerState:
    """One worker's shard-local serving state (inside the process)."""

    def __init__(
        self,
        grid: GridSpec,
        kernel_name: str,
        merge_cap: Optional[int],
        t_slab,
        compute: str = "numpy-ref",
    ) -> None:
        self.grid = grid
        self.kernel = get_kernel(kernel_name)
        self.merge_cap = merge_cap
        self.t_slab = t_slab
        #: Backend *name* for stamping (resolved against this process's
        #: own registry — backend singletons don't cross spawn).  Query
        #: ops carry their backend per request instead.
        self.compute = compute
        self.counter = WorkCounter()
        # Static mode: coords/weights snapshot.  Live mode: incremental
        # estimator (index synced against its tracked batches).
        self.coords = np.empty((0, 3), dtype=np.float64)
        self.weights: Optional[np.ndarray] = None
        self.inc: Optional[IncrementalSTKDE] = None
        self.index: Optional[BucketIndex] = None

    # -- shared helpers -------------------------------------------------
    def _live_refresh(self) -> None:
        """Re-sync the index and coords cache after a live mutation."""
        assert self.inc is not None
        if self.index is None:
            self.index = BucketIndex(
                self.grid, merge_segment_cap=self.merge_cap
            )
        self.index.sync(self.inc.live_batches, counter=self.counter)
        self.coords = self.inc.live_coords

    def weight(self) -> float:
        """This shard's share of the estimator's total weight ``W``."""
        if self.inc is not None:
            return float(self.inc.n)
        if self.weights is not None:
            return float(self.weights.sum())
        return float(self.coords.shape[0])

    def min_t(self) -> float:
        """Earliest live event time (``inf`` when the shard is empty)."""
        if self.coords.shape[0] == 0:
            return float("inf")
        return float(self.coords[:, 2].min())

    def gauges(self) -> Tuple[int, float, float]:
        """``(events, weight, min_t)`` — the coordinator's routing state."""
        return int(self.coords.shape[0]), self.weight(), self.min_t()

    # -- ops ------------------------------------------------------------
    def op_static(self, payload) -> Tuple[int, float, float]:
        coords, weights = payload
        self.coords = np.ascontiguousarray(coords, dtype=np.float64)
        self.weights = (
            None if weights is None
            else np.ascontiguousarray(weights, dtype=np.float64)
        )
        self.index = BucketIndex(
            self.grid, self.coords, self.weights,
            counter=self.counter, merge_segment_cap=self.merge_cap,
        )
        return self.gauges()

    def _ensure_live(self) -> IncrementalSTKDE:
        if self.inc is None:
            self.inc = IncrementalSTKDE(
                self.grid, kernel=self.kernel,
                t_slab_voxels=self.t_slab,
                compute=self.compute,
            )
        return self.inc

    def op_add(self, payload) -> Tuple[int, float, float]:
        inc = self._ensure_live()
        if payload.shape[0]:
            inc.add(payload)
        self._live_refresh()
        return self.gauges()

    def op_remove(self, payload) -> Tuple[int, float, float]:
        inc = self._ensure_live()
        if payload.shape[0]:
            inc.remove(payload)
        self._live_refresh()
        return self.gauges()

    def op_slide(self, payload):
        coords, t_horizon = payload
        inc = self._ensure_live()
        retired = inc.slide_window(coords, t_horizon)
        self._live_refresh()
        return (retired,) + self.gauges()

    def op_query_points(self, payload) -> np.ndarray:
        queries, eps, seed, compute = payload
        if self.index is None:
            return np.zeros(queries.shape[0], dtype=np.float64)
        # norm=1.0: an unnormalised partial the coordinator scales.
        # Partial Hansen–Hurwitz estimates over this shard's (disjoint)
        # events gather exactly like exact partials, so eps threads down
        # unchanged; the coordinator's combined estimate stays unbiased.
        if eps is not None:
            return approx_sum(
                self.index, queries, self.kernel, 1.0, self.counter,
                eps=eps, seed=seed, compute=compute,
            )
        return direct_sum(
            self.index, queries, self.kernel, 1.0, self.counter,
            compute=compute,
        )

    def op_query_region(self, payload) -> np.ndarray:
        window = VoxelWindow(*payload)
        result = direct_region(
            self.grid, self.kernel, self.coords, window, 1.0,
            self.counter, weights=self.weights,
        )
        return result.data

    def op_stats(self, _payload) -> dict:
        return {
            "events": int(self.coords.shape[0]),
            "weight": self.weight(),
            "work": self.counter.as_dict(),
        }


def _worker_main(
    conn: Connection,
    shard_id: int,
    grid: GridSpec,
    kernel_name: str,
    merge_cap: Optional[int],
    t_slab,
    fault_plan: Optional[FaultPlan] = None,
    compute: str = "numpy-ref",
) -> None:
    """Worker process entry point: serve requests until ``close``/EOF."""
    state = _WorkerState(grid, kernel_name, merge_cap, t_slab, compute)
    injector = (
        fault_plan.injector(shard_id) if fault_plan is not None else None
    )
    ops = {
        "static": state.op_static,
        "add": state.op_add,
        "remove": state.op_remove,
        "slide": state.op_slide,
        "query_points": state.op_query_points,
        "query_region": state.op_query_region,
        "stats": state.op_stats,
    }
    while True:
        try:
            op, payload = conn.recv()
        except EOFError:
            break  # coordinator went away: exit quietly
        if op == "close":
            conn.send(("ok", None))
            break
        if op == "crash":
            # Test hook: die without replying, as a segfaulting or
            # OOM-killed worker would.
            os._exit(1)
        if injector is not None:
            spec = injector.on_request(op)
            if spec is not None and not apply_fault(spec, conn):
                continue  # reply skipped (drop/wedge/error)
        try:
            handler = ops[op]
        except KeyError:
            conn.send(("err", f"unknown op {op!r}"))
            continue
        try:
            conn.send(("ok", handler(payload)))
        except Exception as exc:  # surface, don't kill the worker
            conn.send(("err", f"{type(exc).__name__}: {exc}"))
    conn.close()


class ShardWorker:
    """Coordinator-side handle to one shard-owning worker process."""

    def __init__(
        self,
        shard_id: int,
        grid: GridSpec,
        kernel_name: str,
        *,
        merge_cap: Optional[int] = 16,
        t_slab="auto",
        ctx: Optional[mp.context.BaseContext] = None,
        fault_plan: Optional[FaultPlan] = None,
        compute: str = "numpy-ref",
    ) -> None:
        self.shard_id = shard_id
        ctx = ctx if ctx is not None else mp.get_context("spawn")
        self._conn, child = ctx.Pipe(duplex=True)
        self._proc = ctx.Process(
            target=_worker_main,
            args=(
                child, shard_id, grid, kernel_name, merge_cap, t_slab,
                fault_plan, compute,
            ),
            name=f"shard-worker-{shard_id}",
            daemon=True,
        )
        self._proc.start()
        child.close()  # the child's end lives in the child only
        self._closed = False

    @property
    def alive(self) -> bool:
        return not self._closed and self._proc.is_alive()

    def send_op(self, op: str, payload: Any = None) -> None:
        """Fire one request without waiting (pair with :meth:`recv_reply`).

        The coordinator scatters a batch by sending to every contacted
        worker first and only then gathering, so the workers compute
        their partials concurrently.
        """
        if self._closed:
            raise ShardFailed(
                self.shard_id, op, "worker handle is closed",
                retryable=False,
            )
        try:
            self._conn.send((op, payload))
        except (BrokenPipeError, OSError) as exc:
            raise ShardFailed(
                self.shard_id, op,
                "worker died (pipe closed while sending)",
                exitcode=self._proc.exitcode,
            ) from exc

    def recv_reply(self, op: str, timeout: Optional[float] = None) -> Any:
        """Block for one reply to a previously sent request.

        Waits on the reply pipe *and* the process sentinel, so a worker
        that dies mid-request raises a typed :class:`ShardFailed` naming
        the shard instead of blocking forever.  With a ``timeout``, a
        worker that is alive but unresponsive raises
        :class:`ShardTimeout` when the deadline expires — a wedged child
        must not hang the coordinator's gather.
        """
        deadline = (
            None if timeout is None else time.monotonic() + float(timeout)
        )
        while True:
            remaining = None
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0.0:
                    raise ShardTimeout(self.shard_id, op, float(timeout))
            ready = wait([self._conn, self._proc.sentinel], remaining)
            if not ready:
                raise ShardTimeout(self.shard_id, op, float(timeout))
            if self._conn in ready:
                try:
                    tag, result = self._conn.recv()
                except (EOFError, OSError):
                    # EOF or a reset: the worker's end is gone.
                    self._proc.join()
                    raise ShardFailed(
                        self.shard_id, op, "worker died mid-request",
                        exitcode=self._proc.exitcode,
                    ) from None
                if tag == "err":
                    # The worker is healthy; the *request* failed.  An
                    # application error replays identically, so a retry
                    # cannot help.
                    raise ShardFailed(
                        self.shard_id, op, str(result), retryable=False
                    )
                return result
            # Sentinel fired with no reply pending: the process is gone.
            self._proc.join()
            raise ShardFailed(
                self.shard_id, op, "worker died mid-request",
                exitcode=self._proc.exitcode,
            )

    def request(
        self, op: str, payload: Any = None,
        timeout: Optional[float] = None,
    ) -> Any:
        """Send one request and block for its reply (deadline-capped)."""
        self.send_op(op, payload)
        return self.recv_reply(op, timeout=timeout)

    def close(self, grace: Optional[float] = None) -> None:
        """Shut the worker down (graceful close, then terminate).

        ``grace`` caps the *total* wall time spent waiting: the close
        handshake and the join share one monotonic deadline, so a wedged
        worker delays shutdown by at most ``grace`` seconds before being
        terminated (and killed if it ignores SIGTERM).
        """
        if self._closed:
            return
        self._closed = True
        grace = _CLOSE_GRACE if grace is None else max(0.0, float(grace))
        deadline = time.monotonic() + grace
        try:
            if self._proc.is_alive():
                self._conn.send(("close", None))
                # Drain the ack if the worker is still healthy.
                if self._conn.poll(
                    max(0.0, deadline - time.monotonic())
                ):
                    try:
                        self._conn.recv()
                    except EOFError:
                        pass
        except (BrokenPipeError, OSError):
            pass  # already dead: nothing to hand-shake with
        self._proc.join(max(0.0, deadline - time.monotonic()))
        if self._proc.is_alive():
            self._proc.terminate()
            self._proc.join(1.0)
            if self._proc.is_alive():  # pragma: no cover - ignores TERM
                self._proc.kill()
                self._proc.join()
        try:
            self._conn.close()
        except OSError:  # pragma: no cover - already torn down
            pass

    def kill(self) -> None:
        """Reap the worker immediately — no handshake, no grace.

        The supervisor uses this on a dead or wedged worker before
        respawning: there is nothing worth waiting for, and the pipe may
        hold a stale half-reply that must not leak into the respawn.
        """
        self.close(grace=0.0)

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        # During interpreter shutdown half the world may already be
        # gone; a destructor must never raise, whatever close() hits.
        try:
            self.close()
        except BaseException:
            pass
