"""Deterministic fault injection for the sharded serving tier.

A :class:`FaultPlan` is a picklable list of :class:`FaultSpec` triggers
that ride into the worker processes at spawn time.  Inside the child's
request loop a :class:`FaultInjector` counts matching requests and fires
each spec exactly once per process at its ``nth`` match:

``crash``
    ``os._exit(1)`` without replying — what a segfault or OOM kill looks
    like from the coordinator's side (pipe EOF + sentinel).
``wedge``
    Sleep ``seconds`` (default one hour) without replying — the worker
    stays *alive* but unresponsive, exercising the deadline path
    (:class:`~repro.serve.errors.ShardTimeout`) rather than the
    sentinel path.
``drop``
    Skip the reply but keep serving — a lost message.
``delay``
    Sleep ``seconds`` then serve normally — slow-shard latency.
``error``
    Reply ``("err", "injected fault")`` — an application-level error
    from a healthy worker.

Specs match on shard id and op (either may be ``None`` = any), and
``nth`` counts *matching* requests, so "kill shard 1 on its 2nd query"
is ``FaultSpec("crash", shard=1, op="query_points", nth=2)``.  By
default a spec does not re-arm in respawned workers (the fault happened
once); ``persist=True`` keeps it armed across respawns, which is how the
tests exhaust a restart budget deterministically.

Plans are env/CLI-injectable as JSON (``REPRO_FAULTS``)::

    REPRO_FAULTS='[{"action":"crash","shard":1,"op":"slide","nth":2}]'
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import asdict, dataclass
from typing import Dict, Mapping, Optional, Tuple

__all__ = ["FaultSpec", "FaultPlan", "FaultInjector", "FAULTS_ENV"]

#: Environment variable holding a JSON-encoded fault plan.
FAULTS_ENV = "REPRO_FAULTS"

_ACTIONS = ("crash", "wedge", "drop", "delay", "error")

#: Default wedge duration: long enough that only a deadline or a
#: terminate() ends the request, short enough that SIGTERM still lands.
_WEDGE_SECONDS = 3600.0


@dataclass(frozen=True)
class FaultSpec:
    """One deterministic fault trigger (see module docstring)."""

    action: str
    shard: Optional[int] = None
    op: Optional[str] = None
    nth: int = 1
    seconds: float = 0.0
    persist: bool = False

    def __post_init__(self) -> None:
        if self.action not in _ACTIONS:
            raise ValueError(
                f"action must be one of {_ACTIONS}, got {self.action!r}"
            )
        if self.nth < 1:
            raise ValueError(f"nth must be >= 1, got {self.nth}")
        if self.seconds < 0.0:
            raise ValueError(f"seconds must be >= 0, got {self.seconds}")

    def matches(self, shard_id: int, op: str) -> bool:
        return (self.shard is None or self.shard == shard_id) and (
            self.op is None or self.op == op
        )


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, picklable set of fault triggers."""

    specs: Tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))

    def __bool__(self) -> bool:
        return bool(self.specs)

    # -- construction ---------------------------------------------------
    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Parse a JSON list (or single object) of spec fields."""
        raw = json.loads(text)
        if isinstance(raw, Mapping):
            raw = [raw]
        if not isinstance(raw, list):
            raise ValueError(
                f"fault plan JSON must be a list of objects, got "
                f"{type(raw).__name__}"
            )
        return cls(tuple(FaultSpec(**item) for item in raw))

    @classmethod
    def from_env(
        cls, environ: Optional[Mapping[str, str]] = None
    ) -> Optional["FaultPlan"]:
        """The plan in ``REPRO_FAULTS``, or ``None`` when unset/empty."""
        environ = environ if environ is not None else os.environ
        text = environ.get(FAULTS_ENV, "").strip()
        if not text:
            return None
        return cls.from_json(text)

    def to_json(self) -> str:
        return json.dumps([asdict(s) for s in self.specs])

    # -- lifecycle ------------------------------------------------------
    def respawn_view(self) -> Optional["FaultPlan"]:
        """The plan a *respawned* worker should run: persistent specs only.

        One-shot faults already fired in the process they killed; without
        this filter a crash spec would kill every respawn and no restart
        budget could ever succeed.
        """
        kept = tuple(s for s in self.specs if s.persist)
        return FaultPlan(kept) if kept else None

    def injector(self, shard_id: int) -> "FaultInjector":
        return FaultInjector(self, shard_id)


class FaultInjector:
    """Worker-side trigger state: counts matches, fires each spec once."""

    def __init__(self, plan: FaultPlan, shard_id: int) -> None:
        self._specs = [
            s for s in plan.specs
            if s.shard is None or s.shard == shard_id
        ]
        self._shard_id = int(shard_id)
        self._counts: Dict[int, int] = {}
        self._fired: set = set()

    def on_request(self, op: str) -> Optional[FaultSpec]:
        """Record one request; return the spec to fire now, if any."""
        for i, spec in enumerate(self._specs):
            if spec.op is not None and spec.op != op:
                continue
            self._counts[i] = self._counts.get(i, 0) + 1
            if i in self._fired:
                continue
            if self._counts[i] == spec.nth:
                self._fired.add(i)
                return spec
        return None


def apply_fault(spec: FaultSpec, conn) -> bool:
    """Execute a fired spec inside the worker loop.

    Returns ``True`` when the request should still be served normally
    (``delay``), ``False`` when the reply must be skipped (``drop``,
    ``wedge``, ``error`` — the latter replies for itself).  ``crash``
    never returns.
    """
    if spec.action == "crash":
        os._exit(1)
    if spec.action == "wedge":
        time.sleep(spec.seconds or _WEDGE_SECONDS)
        return False
    if spec.action == "drop":
        return False
    if spec.action == "delay":
        if spec.seconds:
            time.sleep(spec.seconds)
        return True
    if spec.action == "error":
        conn.send(("err", "injected fault"))
        return False
    raise AssertionError(f"unhandled fault action {spec.action!r}")
