"""Typed fault surface for the serving tier.

Every failure the serve layer can produce is a subclass of
:class:`ServeError` (itself a ``RuntimeError``, so existing
``except RuntimeError`` call sites keep working).  The hierarchy carries
the routing facts a supervisor or front end needs to *act* on a fault —
which shard, which op, whether a retry can possibly help — instead of
forcing callers to parse exception strings:

``ShardFailed``
    A shard worker failed a request.  ``retryable=True`` means the
    worker process itself is gone or unresponsive (respawn + replay can
    recover it); ``retryable=False`` means the worker is healthy and the
    *request* was bad (an application error replayed verbatim), or the
    shard's restart budget is exhausted.

``ShardTimeout``
    The per-request deadline expired with the worker still alive — a
    wedged (not dead) child.  Always retryable: the supervisor
    terminates and respawns it.

``ShardDown``
    The restart budget is exhausted; the shard is declared down and
    stays down for the service's lifetime.  Never retryable.

``CircuitOpen``
    The front end's per-shard circuit breaker is open: traffic touching
    a recovering/down shard is shed (or deferred) instead of fanning the
    underlying fault out to every coalesced client.

Degraded reads return a :class:`PartialResult` — a ``float64`` ndarray
subclass tagged with the mass-weighted ``coverage`` fraction and the
failed shard ids, so a partial answer is *typed*, never silently wrong.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = [
    "ServeError",
    "ShardFailed",
    "ShardTimeout",
    "ShardDown",
    "CircuitOpen",
    "PartialResult",
]


class ServeError(RuntimeError):
    """Base class for every typed fault the serve layer raises."""

    #: Whether respawn-and-retry can possibly clear this fault.
    retryable: bool = False


class ShardFailed(ServeError):
    """A shard worker failed a request (died, wedged, or errored).

    The message always starts ``"shard worker <id>"`` and names the op,
    so logs and string-matching callers see the same contract the typed
    attributes carry.
    """

    def __init__(
        self,
        shard_id: int,
        op: str,
        detail: str = "",
        *,
        exitcode: Optional[int] = None,
        retryable: bool = True,
    ) -> None:
        self.shard_id = int(shard_id)
        self.op = str(op)
        self.exitcode = exitcode
        self.retryable = bool(retryable)
        msg = f"shard worker {shard_id} failed {op!r}"
        if detail:
            msg += f": {detail}"
        if exitcode is not None:
            msg += f" (exit code {exitcode})"
        super().__init__(msg)


class ShardTimeout(ShardFailed):
    """A request deadline expired with the worker process still alive.

    The wedged child cannot be trusted to ever reply (the pipe protocol
    is strictly request/reply), so recovery is the same as for a dead
    worker: terminate, respawn, replay.
    """

    def __init__(self, shard_id: int, op: str, timeout: float) -> None:
        self.timeout = float(timeout)
        super().__init__(
            shard_id, op,
            f"no reply within {timeout:g}s (worker alive but wedged)",
            retryable=True,
        )


class ShardDown(ShardFailed):
    """The shard's restart budget is exhausted; it stays down."""

    def __init__(
        self, shard_id: int, op: str, detail: str = ""
    ) -> None:
        detail = detail or "shard is down (restart budget exhausted)"
        super().__init__(shard_id, op, detail, retryable=False)


class CircuitOpen(ServeError):
    """The front end's breaker is shedding traffic to a broken shard."""

    def __init__(
        self, shard_ids: Tuple[int, ...], retry_after_s: float
    ) -> None:
        self.shard_ids = tuple(int(s) for s in shard_ids)
        self.retry_after_s = float(retry_after_s)
        super().__init__(
            f"circuit open for shard(s) {list(self.shard_ids)}; "
            f"retry after {retry_after_s:.3f}s"
        )


class PartialResult(np.ndarray):
    """Densities gathered from surviving shards only, coverage-tagged.

    Behaves exactly like the ``float64`` array a healthy gather returns,
    plus two attributes: ``coverage`` — the mass-weighted fraction of
    the estimator's total event weight that contributed (``1.0`` means
    complete) — and ``failed_shards``, the shard ids whose partials are
    missing.  The values are a *lower bound* on the true densities: a
    lost shard is a hole of exactly ``1 - coverage`` of the total mass.

    Only degraded gathers return this type; complete answers stay plain
    ``ndarray``, so ``isinstance(out, PartialResult)`` is the degraded
    check.
    """

    def __new__(
        cls,
        values: np.ndarray,
        coverage: float,
        failed_shards: Tuple[int, ...] = (),
    ) -> "PartialResult":
        obj = np.asarray(values, dtype=np.float64).view(cls)
        obj.coverage = float(coverage)
        obj.failed_shards = tuple(int(s) for s in failed_shards)
        return obj

    def __array_finalize__(self, obj) -> None:
        if obj is None:
            return
        self.coverage = getattr(obj, "coverage", 1.0)
        self.failed_shards = getattr(obj, "failed_shards", ())

    @property
    def degraded(self) -> bool:
        return self.coverage < 1.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PartialResult({np.asarray(self)!r}, "
            f"coverage={self.coverage:.6g}, "
            f"failed_shards={self.failed_shards})"
        )
