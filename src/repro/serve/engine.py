"""Vectorised query execution: direct kernel sums and volume lookups.

Two ways to answer a density query, with opposite cost shapes:

``direct-sum``
    Walk the :class:`~repro.serve.index.BucketIndex`, gather the 27-cell
    candidate set, and evaluate the estimator *definition* at the query
    location through :func:`repro.core.stamping.masked_kernel_product` —
    the same masked ``k_s * k_t`` tabulation every grid write path uses, so
    a direct sum at a voxel center reproduces the stamped volume's value
    to fp round-off.  O(neighbours) per query, zero grid memory, exact at
    arbitrary (off-grid) coordinates, and the only backend that honours
    per-event weights.

``volume-lookup``
    Trilinearly sample a materialised volume at the query location.  O(1)
    per query after an O(n * stamp) build, which is what wins for large
    query batches — the planner prices the crossover.

Queries grouped by index cell share one candidate gather and one
``(queries x candidates)`` kernel tabulation (shared-computation batching
across concurrent queries).  Slice and region extraction reuse
:class:`~repro.core.regions.RegionBuffer` machinery on the direct path and
**views** (never copies) of the materialised volume on the lookup path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.grid import GridSpec, VoxelWindow
from ..core.instrument import WorkCounter, null_counter
from ..core.kernels import KernelPair
from ..core.regions import RegionBuffer
from ..core.stamping import masked_kernel_product
from .index import BucketIndex

__all__ = [
    "direct_sum",
    "sample_volume",
    "direct_region",
    "region_view",
    "slice_window",
    "RegionResult",
]


def direct_sum(
    index: BucketIndex,
    queries: np.ndarray,
    kernel: KernelPair,
    norm: float,
    counter: Optional[WorkCounter] = None,
) -> np.ndarray:
    """Exact STKDE at arbitrary query locations by direct kernel summation.

    ``queries`` is ``(m, 3)`` rows of ``(x, y, t)`` in domain space; the
    return is ``(m,)`` densities ``norm * sum_i w_i k_s k_t`` over the
    index's events (unit ``w_i`` for unweighted indexes).  Queries with an
    empty candidate neighbourhood cost O(1).
    """
    counter = counter if counter is not None else null_counter()
    q = np.asarray(queries, dtype=np.float64)
    if q.ndim != 2 or q.shape[1] != 3:
        raise ValueError(f"expected (m, 3) queries, got {q.shape}")
    out = np.zeros(q.shape[0], dtype=np.float64)
    grid = index.grid
    for (cx, cy, ct), rows in index.group_queries(q):
        cand = index.candidates(cx, cy, ct)
        if cand.size == 0:
            continue
        pts = index.coords[cand]
        dx = q[rows, 0][:, None] - pts[None, :, 0]
        dy = q[rows, 1][:, None] - pts[None, :, 1]
        dt = q[rows, 2][:, None] - pts[None, :, 2]
        contrib = masked_kernel_product(grid, kernel, dx, dy, dt, counter)
        if index.weights is not None:
            out[rows] = contrib @ index.weights[cand]
        else:
            out[rows] = contrib.sum(axis=1)
    out *= norm
    return out


def sample_volume(
    data: np.ndarray, grid: GridSpec, queries: np.ndarray
) -> np.ndarray:
    """Trilinear sample of a materialised volume at query locations.

    The volume's samples sit at voxel *centers*, so the interpolation
    lattice is offset by half a voxel: a query exactly on a voxel center
    returns that voxel's value bit-exactly.  Queries outside the center
    lattice (the half-voxel boundary fringe and anything off-domain) clamp
    to the nearest cell — a flat extrapolation plateau, which is the
    serving contract for boundary queries.
    """
    q = np.asarray(queries, dtype=np.float64)
    if q.ndim != 2 or q.shape[1] != 3:
        raise ValueError(f"expected (m, 3) queries, got {q.shape}")
    d = grid.domain
    out_shape = q.shape[0]
    gx = (q[:, 0] - d.x0) / d.sres - 0.5
    gy = (q[:, 1] - d.y0) / d.sres - 0.5
    gt = (q[:, 2] - d.t0) / d.tres - 0.5

    def cell_frac(g: np.ndarray, size: int):
        i0 = np.clip(np.floor(g).astype(np.int64), 0, max(size - 2, 0))
        frac = np.clip(g - i0, 0.0, 1.0)
        if size == 1:
            frac = np.zeros_like(frac)
        return i0, frac

    ix, fx = cell_frac(gx, grid.Gx)
    iy, fy = cell_frac(gy, grid.Gy)
    it, ft = cell_frac(gt, grid.Gt)
    x1 = np.minimum(ix + 1, grid.Gx - 1)
    y1 = np.minimum(iy + 1, grid.Gy - 1)
    t1 = np.minimum(it + 1, grid.Gt - 1)

    out = np.zeros(out_shape, dtype=np.float64)
    for xi, wx in ((ix, 1.0 - fx), (x1, fx)):
        for yi, wy in ((iy, 1.0 - fy), (y1, fy)):
            for ti, wt in ((it, 1.0 - ft), (t1, ft)):
                w = wx * wy * wt
                # Skip all-zero corner weights (exact-center queries hit
                # only one corner; saves 7 gathers on the common case).
                if not np.any(w):
                    continue
                out += w * data[xi, yi, ti]
    return out


@dataclass
class RegionResult:
    """A served region (or slice) of density: data plus its grid window.

    ``data`` has ``window.shape`` and is **read-only**: the lookup backend
    hands out a view of the service's materialised volume (zero copy), the
    direct backend the buffer a fresh stamp produced.  Callers that need to
    mutate must copy — which keeps repeat queries cheap and cache entries
    safe to share.
    """

    window: VoxelWindow
    data: np.ndarray
    backend: str

    @property
    def is_view(self) -> bool:
        """Whether ``data`` aliases a larger (materialised-volume) array."""
        return self.data.base is not None

    def time_slice(self, T: int = 0) -> np.ndarray:
        """The ``(wx, wy)`` spatial slice at window-relative time ``T``."""
        return self.data[:, :, T]


def slice_window(grid: GridSpec, T: int) -> VoxelWindow:
    """The full-extent one-voxel-thick window of time slice ``T``."""
    if not 0 <= T < grid.Gt:
        raise ValueError(f"time slice {T} outside [0, {grid.Gt})")
    return VoxelWindow(0, grid.Gx, 0, grid.Gy, T, T + 1)


def region_view(
    data: np.ndarray, window: VoxelWindow
) -> RegionResult:
    """Serve a region as a read-only view of a materialised volume.

    No copy: the result's ``data`` aliases the volume, which is what makes
    repeat region extracts (and cached slices) O(1) in memory.
    """
    view = data[window.slices()]
    view.flags.writeable = False
    return RegionResult(window, view, "lookup")


def direct_region(
    grid: GridSpec,
    kernel: KernelPair,
    coords: np.ndarray,
    window: VoxelWindow,
    norm: float,
    counter: Optional[WorkCounter] = None,
) -> RegionResult:
    """Compute a region of density directly from the events.

    Stamps the events into a :class:`~repro.core.regions.RegionBuffer`
    covering only ``window`` (clipped through the batched engine, so
    events whose cylinders miss the window are skipped wholesale).  Exact
    — bit-identical to the same window of a full-grid stamp — at
    O(window + reaching stamps) cost, no full volume required.
    """
    if window.empty:
        raise ValueError(f"cannot serve an empty region: {window}")
    counter = counter if counter is not None else null_counter()
    buf = RegionBuffer(window)
    counter.init_writes += buf.cells
    buf.stamp(grid, kernel, np.asarray(coords, dtype=np.float64), norm, counter)
    buf.data.flags.writeable = False
    return RegionResult(window, buf.data, "direct")
