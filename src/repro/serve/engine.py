"""Vectorised query execution: direct kernel sums and volume lookups.

Two ways to answer a density query, with opposite cost shapes:

``direct-sum``
    Walk the :class:`~repro.serve.index.BucketIndex`, gather the 27-cell
    candidate set, and evaluate the estimator *definition* at the query
    location through :func:`repro.core.stamping.masked_kernel_product` —
    the same masked ``k_s * k_t`` tabulation every grid write path uses, so
    a direct sum at a voxel center reproduces the stamped volume's value
    to fp round-off.  O(neighbours) per query, zero grid memory, exact at
    arbitrary (off-grid) coordinates; per-event weights gather alongside
    the candidates.

``volume-lookup``
    Trilinearly sample a materialised volume at the query location.  O(1)
    per query after an O(n * stamp) build, which is what wins for large
    query batches — the planner prices the crossover.

Concurrent queries share work at two levels.  Queries in the same index
cell share one candidate set; cells with the same candidate *count* share
one vectorised gather-and-tabulate round (**cohort batching**, the same
tabulate+scatter amortisation :mod:`repro.core.stamping` applies to the
write path): the cohort's candidate rows are assembled into one ``(Q, K)``
block straight from the index's run table, so a scattered 50k-query batch
runs a handful of NumPy kernels instead of ~one Python dispatch per cell
group.  The per-group walk is retained as :func:`direct_sum_grouped` —
the equivalence reference the tests pin the cohort engine against.

Slice and region extraction reuse
:class:`~repro.core.regions.RegionBuffer` machinery on the direct path and
**views** (never copies) of the materialised volume on the lookup path.

A third backend trades accuracy for asymptotics: :func:`approx_sum` draws
candidate rows from the index's CSR run table proportionally to a cheap
per-run contribution bound and returns a Hansen–Hurwitz / Horvitz–Thompson
estimate whose sample size grows (variance-driven) until a per-request
relative error budget ``eps`` is met — sublinear in candidate count on
dense neighbourhoods, exact fallback on sparse ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.backends import ComputeBackend, get_backend
from ..core.grid import GridSpec, VoxelWindow
from ..core.instrument import WorkCounter, null_counter
from ..core.kernels import KernelPair
from ..core.regions import RegionBuffer
from ..core.stamping import masked_kernel_product
from .index import BucketIndex

__all__ = [
    "approx_sum",
    "direct_sum",
    "direct_sum_grouped",
    "sample_volume",
    "direct_region",
    "region_view",
    "slice_window",
    "RegionResult",
]

#: Cap on (query, candidate) pairs tabulated per cohort slab (~4 MB of f8
#: per offset array).  Mirrors the stamping engine's slab cap: cohorts
#: bigger than this are processed in query-row chunks so the tabulation
#: temporaries stay cache-sized regardless of batch size.
_QUERY_SLAB_PAIRS = 1 << 19

#: Skewed-cohort fallback bounds: a cohort whose candidate count reaches
#: ``skew_min_k`` while serving at most ``_SKEW_MAX_QUERIES`` queries is
#: answered by the sparse per-query path — the dense-matrix assembly
#: (run flattening, ``(cells, K)`` gather, per-query row expansion) would
#: cost more than the handful of 1-D evaluations it amortises.
_SKEW_MIN_K = 2048
_SKEW_MAX_QUERIES = 8

#: First sampling round of the approximate backend: every query draws this
#: many candidate rows before the variance-driven stop rule is consulted.
#: Queries whose total candidate count is at most this go straight to the
#: exact per-query gather — sampling cannot beat simply reading them all.
_APPROX_MIN_SAMPLE = 64

#: Confidence multiplier of the stop rule: sampling halts once
#: ``z * stderr <= eps * max(estimate, floor)``.  z = 2 targets ~95% of
#: queries landing inside the requested relative budget.
_APPROX_Z = 2.0

#: Safety cap on doubling rounds.  Unreachable in practice: once a query's
#: cumulative sample count would reach its candidate count the exact
#: fallback fires instead, so the loop terminates long before this.
_APPROX_MAX_ROUNDS = 40


def _validate_queries(queries: np.ndarray) -> np.ndarray:
    q = np.asarray(queries, dtype=np.float64)
    if q.ndim != 2 or q.shape[1] != 3:
        raise ValueError(f"expected (m, 3) queries, got {q.shape}")
    return q


def direct_sum(
    index: BucketIndex,
    queries: np.ndarray,
    kernel: KernelPair,
    norm: float,
    counter: Optional[WorkCounter] = None,
    *,
    slab_pairs: int = _QUERY_SLAB_PAIRS,
    skew_min_k: int = _SKEW_MIN_K,
    compute: "ComputeBackend | str | None" = None,
) -> np.ndarray:
    """Exact STKDE at arbitrary query locations by direct kernel summation.

    ``queries`` is ``(m, 3)`` rows of ``(x, y, t)`` in domain space; the
    return is ``(m,)`` densities ``norm * sum_i w_i k_s k_t`` over the
    index's events (unit ``w_i`` for unweighted indexes).  Queries with an
    empty candidate neighbourhood cost O(1).

    Cohort-vectorised: the batch's home cells are grouped by candidate
    count ``K``; each cohort's candidate rows are materialised as one
    ``(cells, K)`` block straight from the index's run table (one
    ``repeat`` + ``arange`` pass over the flat permutation — no per-group
    Python walk), expanded to the cohort's queries, and evaluated with a
    single :func:`~repro.core.stamping.masked_kernel_product` tabulation
    per cohort slab.  Candidate order inside a row is identical to
    :func:`direct_sum_grouped`'s concatenation order, so both paths add
    the same numbers in the same order.

    **Skewed cohorts** — at least ``skew_min_k`` candidates serving at
    most a handful of queries (one event cluster probed by one dashboard
    point) — skip the dense block assembly and run a sparse per-query
    gather instead: the same candidates in the same order through the
    same tabulation, so the fallback is bit-identical, it just avoids
    materialising ``(cells, K)`` index matrices for single rows.

    ``compute`` selects the pair-evaluation backend
    (:mod:`repro.core.backends`); the default ``numpy-ref`` is
    bit-identical to the pre-seam path.
    """
    counter = counter if counter is not None else null_counter()
    backend = get_backend(compute)
    q = _validate_queries(queries)
    m = q.shape[0]
    out = np.zeros(m, dtype=np.float64)
    if m == 0 or index.segment_count == 0:
        out *= norm
        return out
    grid = index.grid
    coords = index.coords
    weights = index.weights
    order_store = index.order_store

    cc = index.cell_coords(q)
    cid = (cc[:, 0] * index.ny + cc[:, 1]) * index.nt + cc[:, 2]
    ucells, inv = np.unique(cid, return_inverse=True)
    # Decode distinct cells and fetch their candidate runs in one pass.
    ux, rem = np.divmod(ucells, index.ny * index.nt)
    uy, ut = np.divmod(rem, index.nt)
    starts, lengths = index.candidate_runs(np.column_stack([ux, uy, ut]))
    K_cell = lengths.sum(axis=1)

    # Cohorts: distinct candidate counts.  All cells (and their queries)
    # with the same K gather into one (rows, K) block.
    uK, cell_cohort = np.unique(K_cell, return_inverse=True)
    q_cohort = cell_cohort[inv]
    cell_pos = np.empty(ucells.size, dtype=np.int64)

    for k_idx in range(uK.size):
        K = int(uK[k_idx])
        if K == 0:
            continue  # empty neighbourhoods: O(1), stay zero
        cell_rows = np.flatnonzero(cell_cohort == k_idx)
        q_rows = np.flatnonzero(q_cohort == k_idx)
        counter.query_cohorts += 1
        if K >= skew_min_k and q_rows.size <= _SKEW_MAX_QUERIES:
            # Skewed cohort: sparse per-query path (bit-identical — the
            # run concatenation order and the pairwise reduction match
            # the dense block's row-wise sum exactly).
            for qi in q_rows:
                cr = int(inv[qi])
                L = lengths[cr]
                S = starts[cr]
                live = L > 0
                flat = np.concatenate(
                    [np.arange(s, s + l) for s, l in zip(S[live], L[live])]
                )
                cand_row = order_store[flat]
                pts = coords[cand_row]
                dx = q[qi, 0] - pts[:, 0]
                dy = q[qi, 1] - pts[:, 1]
                dt = q[qi, 2] - pts[:, 2]
                out[qi] = backend.query_row_sums(
                    grid, kernel, dx, dy, dt,
                    weights[cand_row] if weights is not None else None,
                    counter,
                )
            continue
        # Flatten the cohort's runs into one gather: runs are ordered
        # row-major per cell and each cell's lengths sum to exactly K, so
        # the concatenated gather *is* the (cells, K) candidate matrix.
        L = lengths[cell_rows].ravel()
        S = starts[cell_rows].ravel()
        live = L > 0
        L = L[live]
        S = S[live]
        cum = np.cumsum(L) - L
        flat = np.repeat(S - cum, L) + np.arange(int(L.sum()), dtype=np.int64)
        cand = order_store[flat].reshape(cell_rows.size, K)
        cell_pos[cell_rows] = np.arange(cell_rows.size)
        qpos = cell_pos[inv[q_rows]]

        step = max(1, slab_pairs // K)
        for s in range(0, q_rows.size, step):
            sel = q_rows[s : s + step]
            rows = cand[qpos[s : s + step]]
            pts = coords[rows]
            dx = q[sel, 0][:, None] - pts[:, :, 0]
            dy = q[sel, 1][:, None] - pts[:, :, 1]
            dt = q[sel, 2][:, None] - pts[:, :, 2]
            out[sel] = backend.query_row_sums(
                grid, kernel, dx, dy, dt,
                weights[rows] if weights is not None else None,
                counter,
            )
    out *= norm
    return out


def direct_sum_grouped(
    index: BucketIndex,
    queries: np.ndarray,
    kernel: KernelPair,
    norm: float,
    counter: Optional[WorkCounter] = None,
) -> np.ndarray:
    """Direct kernel sums via the per-cell-group walk (legacy hot path).

    One candidate gather and one tabulation per distinct home cell — the
    ~15 µs/group Python dispatch the cohort engine eliminates.  Retained
    as the equivalence reference (the tests pin cohort vs grouped at
    ``rtol=1e-12``) and as the measured baseline of the serving benchmark.
    """
    counter = counter if counter is not None else null_counter()
    q = _validate_queries(queries)
    out = np.zeros(q.shape[0], dtype=np.float64)
    grid = index.grid
    for (cx, cy, ct), rows in index.group_queries(q):
        cand = index.candidates(cx, cy, ct)
        if cand.size == 0:
            continue
        pts = index.coords[cand]
        dx = q[rows, 0][:, None] - pts[None, :, 0]
        dy = q[rows, 1][:, None] - pts[None, :, 1]
        dt = q[rows, 2][:, None] - pts[None, :, 2]
        contrib = masked_kernel_product(grid, kernel, dx, dy, dt, counter)
        if index.weights is not None:
            # Same scale-then-pairwise-sum reduction as the cohort engine
            # (a matmul here would reassociate the additions).
            out[rows] = (contrib * index.weights[cand][None, :]).sum(axis=1)
        else:
            out[rows] = contrib.sum(axis=1)
    out *= norm
    return out


def _approx_run_bounds(
    index: BucketIndex,
    kernel: KernelPair,
    q: np.ndarray,
    ux: np.ndarray,
    uy: np.ndarray,
    ut: np.ndarray,
    inv: np.ndarray,
    lengths: np.ndarray,
) -> np.ndarray:
    """Per-(query, run) importance weights for the bucket sampler.

    Each candidate run covers one ``(ix, iy)`` cell column over the home
    cell's three-deep t-range; its weight is ``run length x kernel upper
    bound at the run's minimum cell distance`` — the "bucket size x kernel
    bound" proxy of the HBE construction.  Boundary cells absorb clamped
    off-domain events (:meth:`BucketIndex.cell_coords` clips), so their box
    extends to infinity on the clipped side; that keeps every event of a
    run inside its box, which is what makes the weights *bounds* and —
    more importantly — strictly positive wherever a contribution can be
    nonzero (the unbiasedness requirement).

    Kernel pairs without a radially-decreasing spatial profile
    (``spatial_radial is None``, e.g. the as-printed transcription kernel
    whose temporal term is not symmetric either) fall back to uniform
    weights inside the geometric support — still unbiased, just with more
    variance; the support test itself is kernel-independent (the same
    ``r < hs``, ``|dt| <= ht`` cylinder every path masks on).
    """
    grid = index.grid
    d = grid.domain
    hs, ht = grid.hs, grid.ht
    R = lengths.shape[1]
    j = np.arange(R, dtype=np.int64) % 9
    dxo = j // 3 - 1
    dyo = j % 3 - 1

    # Run boxes per distinct home cell, (U, R) per axis.  Half-open cell
    # boxes; the sup of a closed interval is a valid bound.
    bx = ux[:, None] + dxo[None, :]
    by = uy[:, None] + dyo[None, :]
    lox = d.x0 + bx * hs
    hix = d.x0 + (bx + 1) * hs
    loy = d.y0 + by * hs
    hiy = d.y0 + (by + 1) * hs
    lox = np.where(bx <= 0, -np.inf, lox)
    hix = np.where(bx >= index.nx - 1, np.inf, hix)
    loy = np.where(by <= 0, -np.inf, loy)
    hiy = np.where(by >= index.ny - 1, np.inf, hiy)
    # The t-extent is shared by all nine runs of a cell (one searchsorted
    # window per (ix, iy) row covers cells [ct-1, ct+2)).
    t_lo = np.maximum(ut - 1, 0)
    t_hi = np.minimum(ut + 2, index.nt)
    lot = np.where(t_lo <= 0, -np.inf, d.t0 + t_lo * ht)[:, None]
    hit = np.where(t_hi >= index.nt, np.inf, d.t0 + t_hi * ht)[:, None]

    # Clamp-to-box distances per query (m, R); inf boxes never produce NaN
    # because lo and hi live in separate arrays.
    qb = inv
    zero = 0.0
    ddx = np.maximum(np.maximum(lox[qb] - q[:, 0][:, None],
                                q[:, 0][:, None] - hix[qb]), zero)
    ddy = np.maximum(np.maximum(loy[qb] - q[:, 1][:, None],
                                q[:, 1][:, None] - hiy[qb]), zero)
    ddt = np.maximum(np.maximum(lot[qb] - q[:, 2][:, None],
                                q[:, 2][:, None] - hit[qb]), zero)
    r2 = (ddx * ddx + ddy * ddy) / (hs * hs)
    w = ddt / ht
    support = (r2 < 1.0) & (w <= 1.0)
    if kernel.spatial_radial is not None:
        proxy = np.where(
            support, kernel.spatial_radial(r2) * kernel.temporal(w), 0.0
        )
    else:
        proxy = support.astype(np.float64)
    return lengths[qb] * proxy


def approx_sum(
    index: BucketIndex,
    queries: np.ndarray,
    kernel: KernelPair,
    norm: float,
    counter: Optional[WorkCounter] = None,
    *,
    eps: float,
    seed: int = 0,
    floor: float = 0.0,
    z: float = _APPROX_Z,
    min_sample: int = _APPROX_MIN_SAMPLE,
    chunk_queries: int = 2048,
    slab_pairs: int = _QUERY_SLAB_PAIRS,
    stats_out: Optional[dict] = None,
    compute: "ComputeBackend | str | None" = None,
) -> np.ndarray:
    """Approximate STKDE by bucket-level importance sampling over the index.

    Targets a per-query *relative* error budget ``eps``: each query draws
    candidate rows **with replacement** from its CSR runs — run chosen
    proportionally to :func:`_approx_run_bounds`'s ``length x kernel
    bound`` weight, row uniform within the run — and evaluates only the
    sample through the shared
    :func:`~repro.core.stamping.masked_kernel_product`.  The
    Hansen–Hurwitz estimator ``(1/s) * sum contrib_j * w_j / p_j`` is
    unbiased for the exact raw sum; the sample size grows by doubling
    rounds until the variance-driven stop rule ``z * stderr <= eps *
    max(estimate, floor)`` holds (``floor`` is in density units and damps
    the budget where the true density is ~0).  Expected cost per query is
    O(runs + 1/eps^2) — sublinear in candidate count on dense
    neighbourhoods.

    Queries whose cumulative sample would reach their candidate count fall
    back to the exact sparse gather (bit-identical to :func:`direct_sum`'s
    answer for that query), so sparse neighbourhoods pay at most the exact
    price and a small-enough candidate set is answered *exactly*.

    Deterministic for a fixed ``seed`` (one
    :func:`numpy.random.default_rng` stream consumed in query order).
    ``stats_out``, when given, accumulates ``sample_rows_drawn``,
    ``bounds_evaluated``, ``candidate_rows``, ``exact_fallbacks``,
    ``queries`` and ``rel_se_sum`` (realised relative standard error; its
    mean over ``queries`` is the realised-vs-requested ε gauge the service
    reports).
    """
    eps = float(eps)
    if not eps > 0.0:
        raise ValueError(f"eps must be positive, got {eps}")
    counter = counter if counter is not None else null_counter()
    backend = get_backend(compute)
    q = _validate_queries(queries)
    m = q.shape[0]
    out = np.zeros(m, dtype=np.float64)
    if m == 0 or index.segment_count == 0:
        out *= norm
        return out
    grid = index.grid
    coords = index.coords
    weights = index.weights
    order_store = index.order_store
    floor_raw = floor / norm if norm > 0.0 else 0.0
    rng = np.random.default_rng(seed)

    drawn_total = 0
    bounds_total = 0
    cand_total = 0
    exact_total = 0
    rel_se_sum = 0.0

    for c0 in range(0, m, chunk_queries):
        qc = q[c0 : c0 + chunk_queries]
        mc = qc.shape[0]
        cc = index.cell_coords(qc)
        cid = (cc[:, 0] * index.ny + cc[:, 1]) * index.nt + cc[:, 2]
        ucells, inv = np.unique(cid, return_inverse=True)
        ux, rem = np.divmod(ucells, index.ny * index.nt)
        uy, ut = np.divmod(rem, index.nt)
        starts, lengths = index.candidate_runs(np.column_stack([ux, uy, ut]))

        bounds = _approx_run_bounds(index, kernel, qc, ux, uy, ut, inv, lengths)
        K = lengths[inv].sum(axis=1)
        bounds_total += mc * bounds.shape[1]
        cand_total += int(K.sum())
        B = bounds.sum(axis=1)

        out_c = np.zeros(mc, dtype=np.float64)
        s = np.zeros(mc, dtype=np.float64)
        sum_v = np.zeros(mc, dtype=np.float64)
        sum_v2 = np.zeros(mc, dtype=np.float64)
        active = np.flatnonzero(B > 0.0)  # B == 0: nothing in support
        exact_rows: list = []
        nd = int(min_sample)
        for _ in range(_APPROX_MAX_ROUNDS):
            if active.size == 0:
                break
            # Queries whose next round would sample at least their whole
            # candidate set: read the candidates exactly instead.
            fb = (s[active] + nd) >= K[active]
            if fb.any():
                exact_rows.extend(int(r) for r in active[fb])
                active = active[~fb]
                if active.size == 0:
                    break
            blk = max(1, slab_pairs // nd)
            for b0 in range(0, active.size, blk):
                rows = active[b0 : b0 + blk]
                bb = bounds[rows]
                cum = np.cumsum(bb, axis=1)
                tot = cum[:, -1]
                cum01 = cum / tot[:, None]
                cum01[:, -1] = 1.0
                base = np.arange(rows.size, dtype=np.float64)[:, None]
                u = rng.random((rows.size, nd))
                # Row-wise weighted draw via one global searchsorted: row
                # i's normalised cumsum is offset into (i, i+1], targets
                # into [i, i+1), so every hit stays inside its own row and
                # zero-weight runs (flat cumsum steps) are never selected.
                g = np.searchsorted(
                    (cum01 + base).ravel(), (u + base).ravel(), side="right"
                )
                ridx = (g % bb.shape[1]).reshape(rows.size, nd)
                LA = lengths[inv[rows]]
                Ls = np.take_along_axis(LA, ridx, axis=1)
                bad = Ls == 0
                if bad.any():
                    # fp round-off in the normalised cumsum can push a
                    # target past the last positive run; remap to it.
                    lastpos = bb.shape[1] - 1 - np.argmax(
                        (bb > 0.0)[:, ::-1], axis=1
                    )
                    ridx = np.where(bad, lastpos[:, None], ridx)
                    Ls = np.take_along_axis(LA, ridx, axis=1)
                Ss = np.take_along_axis(starts[inv[rows]], ridx, axis=1)
                bs = np.take_along_axis(bb, ridx, axis=1)
                off = rng.integers(0, Ls)
                cand = order_store[Ss + off]
                pts = coords[cand]
                dx = qc[rows, 0][:, None] - pts[:, :, 0]
                dy = qc[rows, 1][:, None] - pts[:, :, 1]
                dt = qc[rows, 2][:, None] - pts[:, :, 2]
                contrib = backend.sampled_contributions(
                    grid, kernel, dx, dy, dt,
                    weights[cand] if weights is not None else None,
                    counter,
                )
                # v_j = contrib_j * w_j / p_j with p_j = (b_r / B) / L_r.
                v = contrib * (tot[:, None] * Ls / bs)
                sum_v[rows] += v.sum(axis=1)
                sum_v2[rows] += (v * v).sum(axis=1)
            s[active] += nd
            drawn_total += active.size * nd
            sA = s[active]
            mean = sum_v[active] / sA
            var = np.maximum(sum_v2[active] / sA - mean * mean, 0.0)
            var *= sA / np.maximum(sA - 1.0, 1.0)
            se = np.sqrt(var / sA)
            scale = np.maximum(mean, floor_raw)
            done = z * se <= eps * scale
            if done.any():
                done_rows = active[done]
                out_c[done_rows] = mean[done]
                dscale = scale[done]
                pos = dscale > 0.0
                rel_se_sum += float((se[done][pos] / dscale[pos]).sum())
                active = active[~done]
            nd *= 2
        # Safety: rounds exhausted (practically unreachable) — go exact.
        exact_rows.extend(int(r) for r in active)

        for qi in exact_rows:
            cr = int(inv[qi])
            L = lengths[cr]
            S = starts[cr]
            live = L > 0
            if not live.any():
                continue
            flat = np.concatenate(
                [np.arange(s0, s0 + l0) for s0, l0 in zip(S[live], L[live])]
            )
            cand_row = order_store[flat]
            pts = coords[cand_row]
            dxx = qc[qi, 0] - pts[:, 0]
            dyy = qc[qi, 1] - pts[:, 1]
            dtt = qc[qi, 2] - pts[:, 2]
            out_c[qi] = backend.query_row_sums(
                grid, kernel, dxx, dyy, dtt,
                weights[cand_row] if weights is not None else None,
                counter,
            )
        exact_total += len(exact_rows)
        out[c0 : c0 + mc] = out_c

    counter.sample_rows_drawn += int(drawn_total)
    if stats_out is not None:
        for key, val in (
            ("sample_rows_drawn", int(drawn_total)),
            ("bounds_evaluated", int(bounds_total)),
            ("candidate_rows", int(cand_total)),
            ("exact_fallbacks", int(exact_total)),
            ("queries", int(m)),
            ("rel_se_sum", float(rel_se_sum)),
        ):
            stats_out[key] = stats_out.get(key, 0) + val
    out *= norm
    return out


def sample_volume(
    data: np.ndarray, grid: GridSpec, queries: np.ndarray
) -> np.ndarray:
    """Trilinear sample of a materialised volume at query locations.

    The volume's samples sit at voxel *centers*, so the interpolation
    lattice is offset by half a voxel: a query exactly on a voxel center
    returns that voxel's value bit-exactly.  Queries outside the center
    lattice (the half-voxel boundary fringe and anything off-domain) clamp
    to the nearest cell — a flat extrapolation plateau, which is the
    serving contract for boundary queries.
    """
    q = np.asarray(queries, dtype=np.float64)
    if q.ndim != 2 or q.shape[1] != 3:
        raise ValueError(f"expected (m, 3) queries, got {q.shape}")
    d = grid.domain
    out_shape = q.shape[0]
    gx = (q[:, 0] - d.x0) / d.sres - 0.5
    gy = (q[:, 1] - d.y0) / d.sres - 0.5
    gt = (q[:, 2] - d.t0) / d.tres - 0.5

    def cell_frac(g: np.ndarray, size: int):
        i0 = np.clip(np.floor(g).astype(np.int64), 0, max(size - 2, 0))
        frac = np.clip(g - i0, 0.0, 1.0)
        if size == 1:
            frac = np.zeros_like(frac)
        return i0, frac

    ix, fx = cell_frac(gx, grid.Gx)
    iy, fy = cell_frac(gy, grid.Gy)
    it, ft = cell_frac(gt, grid.Gt)
    x1 = np.minimum(ix + 1, grid.Gx - 1)
    y1 = np.minimum(iy + 1, grid.Gy - 1)
    t1 = np.minimum(it + 1, grid.Gt - 1)

    out = np.zeros(out_shape, dtype=np.float64)
    for xi, wx in ((ix, 1.0 - fx), (x1, fx)):
        for yi, wy in ((iy, 1.0 - fy), (y1, fy)):
            for ti, wt in ((it, 1.0 - ft), (t1, ft)):
                w = wx * wy * wt
                # Skip all-zero corner weights (exact-center queries hit
                # only one corner; saves 7 gathers on the common case).
                if not np.any(w):
                    continue
                out += w * data[xi, yi, ti]
    return out


@dataclass
class RegionResult:
    """A served region (or slice) of density: data plus its grid window.

    ``data`` has ``window.shape`` and is **read-only**: the lookup backend
    hands out a view of the service's materialised volume (zero copy), the
    direct backend the buffer a fresh stamp produced.  Callers that need to
    mutate must copy — which keeps repeat queries cheap and cache entries
    safe to share.
    """

    window: VoxelWindow
    data: np.ndarray
    backend: str

    @property
    def is_view(self) -> bool:
        """Whether ``data`` aliases a larger (materialised-volume) array."""
        return self.data.base is not None

    def time_slice(self, T: int = 0) -> np.ndarray:
        """The ``(wx, wy)`` spatial slice at window-relative time ``T``."""
        return self.data[:, :, T]


def slice_window(grid: GridSpec, T: int) -> VoxelWindow:
    """The full-extent one-voxel-thick window of time slice ``T``."""
    if not 0 <= T < grid.Gt:
        raise ValueError(f"time slice {T} outside [0, {grid.Gt})")
    return VoxelWindow(0, grid.Gx, 0, grid.Gy, T, T + 1)


def region_view(
    data: np.ndarray, window: VoxelWindow
) -> RegionResult:
    """Serve a region as a read-only view of a materialised volume.

    No copy: the result's ``data`` aliases the volume, which is what makes
    repeat region extracts (and cached slices) O(1) in memory.
    """
    view = data[window.slices()]
    view.flags.writeable = False
    return RegionResult(window, view, "lookup")


def direct_region(
    grid: GridSpec,
    kernel: KernelPair,
    coords: np.ndarray,
    window: VoxelWindow,
    norm: float,
    counter: Optional[WorkCounter] = None,
    weights: Optional[np.ndarray] = None,
    compute: "ComputeBackend | str | None" = None,
) -> RegionResult:
    """Compute a region of density directly from the events.

    Stamps the events into a :class:`~repro.core.regions.RegionBuffer`
    covering only ``window`` (clipped through the batched engine, so
    events whose cylinders miss the window are skipped wholesale).  Exact
    — bit-identical to the same window of a full-grid stamp — at
    O(window + reaching stamps) cost, no full volume required.
    ``weights`` routes through the engine's weighted stamp mode.
    """
    if window.empty:
        raise ValueError(f"cannot serve an empty region: {window}")
    counter = counter if counter is not None else null_counter()
    buf = RegionBuffer(window)
    counter.init_writes += buf.cells
    buf.stamp(
        grid, kernel, np.asarray(coords, dtype=np.float64), norm, counter,
        weights=weights, compute=compute,
    )
    buf.data.flags.writeable = False
    return RegionResult(window, buf.data, "direct")
