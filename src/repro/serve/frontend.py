"""Async traffic front end: coalesce, prioritise, and admit requests.

The serving stack below this module is batch-shaped: the cohort
direct-sum engine, the sharded scatter/gather tier, and the ε-budgeted
sampler all amortise per-dispatch overhead over many rows, which is the
source paper's core throughput lesson.  Real traffic is the opposite
shape — many small concurrent requests.  :class:`TrafficFrontend` is the
adapter between the two: an asyncio facade over a
:class:`~repro.serve.service.DensityService` (or
:class:`~repro.serve.service.ShardedDensityService`) that turns awaited
per-request calls into planner-priced cohort batches.

Three mechanisms, in dispatch order:

**Request coalescing.**  Point queries accumulate in per-``(eps, seed)``
buckets (approximate and exact requests never share a batch — their
answers are not interchangeable) and flush as one ``query_points``
cohort batch.  The flush policy is *batch-while-busy*: a bucket seals
when it fills (``max_batch``), when its hold window expires
(``max_delay_ms``), or eagerly the moment the dispatcher goes idle — so
an unloaded front end adds ~zero hold latency while a busy one
accumulates whole cohorts during each in-flight dispatch.

**Priority lanes with critical-ratio dispatch.**  Ready work sits in
three lanes — interactive (sealed point batches), bulk (slice/region
extracts), mutation (window slides) — and the dispatcher picks the item
with the smallest *critical ratio* ``slack / predicted_cost`` (the
Parallel SGS priority rule: deadline-aware age against
:class:`~repro.analysis.model.CostModel`-predicted work).  Bulk region
extracts are additionally chunked into cost-bounded sub-window quanta
along ``t``, and the scheduler re-evaluates between quanta — a 200k-cell
region build therefore cannot head-of-line-block a 1-point lookup for
more than one quantum.  Mutations drain FIFO (version order) and never
preempt a started bulk extract, so a stitched region is never torn
across a version change; every dispatched batch runs on a single-worker
executor, so no query ever observes a half-applied slide.

**Admission control.**  Pending work is budgeted in *predicted seconds*
(cost-model estimates, EWMA-corrected by measured dispatch times), not
request counts — a thousand cheap point probes and five dense region
builds are both priced at what they will actually cost.  Past the
budget the front end sheds with a typed :class:`Overloaded`
(``overload="shed"``) or defers admission until capacity frees
(``overload="defer"``).

**Fault handling.**  Service failures resolve each coalesced future with
the *typed* exception (never a bucket-wide cancel); a retryable
:class:`~repro.serve.errors.ServeError` — a worker died and the
supervisor below may already have recovered it — re-enqueues the batch
exactly once within a bounded retry window.  A
:class:`~repro.serve.errors.ShardFailed` additionally opens a per-shard
circuit breaker: reads whose scatter span touches the broken shard are
shed with :class:`~repro.serve.errors.CircuitOpen` (or deferred, per
the ``overload`` policy) for a cooldown instead of piling onto a
recovering worker, while traffic to healthy shards flows on.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from ..core.grid import VoxelWindow
from ..core.instrument import LatencyHistogram, WorkCounter
from .engine import RegionResult, slice_window
from .errors import CircuitOpen, ServeError, ShardFailed

__all__ = ["TrafficFrontend", "Overloaded"]

# Critical-ratio denominators are floored so a ~free item cannot divide
# the slack into meaninglessly huge ratios.
_COST_FLOOR = 1e-4


class Overloaded(RuntimeError):
    """Admission control rejected a request: the pending-work budget is full.

    Carries the prices involved so callers (and the load harness) can
    reason about the rejection: ``est_seconds`` is what this request
    would have added, ``pending_seconds`` the work already admitted,
    ``budget_seconds`` the ceiling.
    """

    def __init__(
        self, kind: str, est_seconds: float,
        pending_seconds: float, budget_seconds: float,
    ) -> None:
        self.kind = kind
        self.est_seconds = est_seconds
        self.pending_seconds = pending_seconds
        self.budget_seconds = budget_seconds
        super().__init__(
            f"{kind} request shed: pending {pending_seconds * 1e3:.1f} ms "
            f"+ est {est_seconds * 1e3:.2f} ms exceeds the "
            f"{budget_seconds * 1e3:.1f} ms admission budget"
        )


class _WorkItem:
    """One dispatchable unit: a sealed point batch, a region, or a mutation."""

    __slots__ = (
        "kind", "lane", "seq", "deadline", "est_seconds", "rows", "futs",
        "eps", "seed", "window", "backend", "chunks", "chunk_idx",
        "chunk_results", "fut", "fn", "n_requests", "retried",
    )

    def __init__(self, kind: str, lane: str, seq: int, deadline: float,
                 est_seconds: float) -> None:
        self.kind = kind
        self.lane = lane
        self.seq = seq
        self.deadline = deadline
        self.est_seconds = est_seconds
        self.retried = False
        # points lane
        self.rows: List[np.ndarray] = []
        self.futs: List[Tuple[asyncio.Future, slice, float]] = []
        self.eps: Optional[float] = None
        self.seed: int = 0
        self.n_requests = 0
        # bulk lane
        self.window: Optional[VoxelWindow] = None
        self.backend: Optional[str] = None
        self.chunks: Optional[List[VoxelWindow]] = None
        self.chunk_idx = 0
        self.chunk_results: List[RegionResult] = []
        self.fut: Optional[asyncio.Future] = None
        # mutation lane
        self.fn = None

    @property
    def started(self) -> bool:
        return self.chunk_idx > 0

    def ratio(self, now: float) -> float:
        return (self.deadline - now) / max(self.est_seconds, _COST_FLOOR)


class TrafficFrontend:
    """Asyncio micro-batching front end over a density service.

    Parameters
    ----------
    service:
        The wrapped :class:`DensityService` or
        :class:`ShardedDensityService`.  All calls into it are
        serialized through a single-worker executor — the concurrency
        lives in the coalescer, not in racing service calls.
    max_delay_ms:
        Hold window: a coalescing bucket seals at most this long after
        its first request (sooner when full or when the dispatcher goes
        idle).  Also the sealed batch's deadline for the critical-ratio
        scheduler.
    max_batch:
        Row cap per coalesced batch; a bucket reaching it seals
        immediately with an already-due deadline.  ``max_batch=1``
        degenerates to per-request dispatch (the bench baseline).
    max_pending_seconds:
        Admission budget: total predicted seconds of admitted-but-
        unfinished work the front end will hold before shedding or
        deferring.
    overload:
        ``"shed"`` raises :class:`Overloaded` at the budget;
        ``"defer"`` suspends the caller until capacity frees.
    bulk_quantum_seconds:
        Cost bound per bulk sub-dispatch: region windows are split
        along ``t`` so each chunk's predicted direct cost stays under
        this, and the scheduler re-picks between chunks.
    bulk_deadline_ms / mutation_deadline_ms:
        Lane deadlines for the critical-ratio rule.
    breaker_cooldown_ms:
        How long a per-shard circuit breaker stays open after a
        :class:`~repro.serve.errors.ShardFailed` surfaces from a
        dispatch — new traffic touching that shard is shed
        (:class:`~repro.serve.errors.CircuitOpen`) or deferred per the
        overload policy while the shard recovers.
    retry_window_ms:
        Extra time past an item's lane deadline inside which a
        *retryable* :class:`~repro.serve.errors.ServeError` re-enqueues
        the read once (mutations never retry — double-apply risk).
    counter:
        Defaults to the wrapped service's :class:`WorkCounter`, so
        ``frontend_*`` gauges land next to the engine's own counters.
    """

    def __init__(
        self,
        service,
        *,
        max_delay_ms: float = 2.0,
        max_batch: int = 256,
        max_pending_seconds: float = 0.25,
        overload: str = "shed",
        bulk_quantum_seconds: float = 0.025,
        bulk_deadline_ms: float = 2000.0,
        mutation_deadline_ms: float = 500.0,
        breaker_cooldown_ms: float = 250.0,
        retry_window_ms: float = 1000.0,
        counter: Optional[WorkCounter] = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if overload not in ("shed", "defer"):
            raise ValueError(
                f"overload must be 'shed' or 'defer', got {overload!r}"
            )
        self.service = service
        self.max_delay = max_delay_ms / 1e3
        self.max_batch = max_batch
        self.max_pending_seconds = max_pending_seconds
        self.overload = overload
        self.bulk_quantum = bulk_quantum_seconds
        self.bulk_deadline = bulk_deadline_ms / 1e3
        self.mutation_deadline = mutation_deadline_ms / 1e3
        self.breaker_cooldown = breaker_cooldown_ms / 1e3
        self.retry_window = retry_window_ms / 1e3
        self.counter = (
            counter if counter is not None
            else getattr(service, "counter", None) or WorkCounter()
        )
        self.latency = LatencyHistogram()
        self._batch_rows_hist: Dict[int, int] = {}
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._task: Optional[asyncio.Task] = None
        self._buckets: Dict[Tuple, _WorkItem] = {}
        self._ready: List[_WorkItem] = []
        self._wake: Optional[asyncio.Event] = None
        self._space: Optional[asyncio.Event] = None
        self._idle: Optional[asyncio.Event] = None
        self._drained: Optional[asyncio.Event] = None
        self._pending_cost = 0.0
        self._deferred = 0
        self._retries = 0
        # Per-shard circuit breakers: shard_id -> loop time the shard's
        # recovery cooldown expires.  Opened when a dispatch surfaces a
        # ShardFailed; traffic touching that shard is shed or deferred
        # until the cooldown lapses.
        self._breakers: Dict[int, float] = {}
        self._seq = 0
        self._closing = False
        self._started = False
        # Admission pricing state (captured in start(), EWMA-corrected).
        self._model = None
        self._events = 0
        self._segments = 1
        self._scale = {"points": 1.0, "region": 1.0}
        self._region_floor = 0.0
        self._mutation_ewma = 0.01

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "TrafficFrontend":
        """Capture the cost model and launch the dispatcher task."""
        if self._started:
            return self
        self._loop = asyncio.get_running_loop()
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="frontend"
        )
        self._wake = asyncio.Event()
        self._space = asyncio.Event()
        self._idle = asyncio.Event()
        self._drained = asyncio.Event()
        self._model = await self._call(lambda: self.service.planner().model)
        await self._refresh_gauges()
        self._task = self._loop.create_task(self._run())
        self._started = True
        return self

    async def aclose(self, *, drain: bool = True) -> None:
        """Stop accepting work; drain (default) or cancel what is pending.

        With ``drain=True`` every admitted request still resolves —
        no orphaned futures; ``drain=False`` cancels pending futures
        (callers see :class:`asyncio.CancelledError`) and stops.
        """
        if not self._started or self._closing:
            self._closing = True
            return
        self._closing = True
        if not drain:
            for item in list(self._buckets.values()) + self._ready:
                self._fail_item(item, None)
            self._buckets.clear()
            self._ready.clear()
            self._pending_cost = 0.0
        self._wake.set()
        await self._drained.wait()
        self._task.cancel()
        try:
            await self._task
        except asyncio.CancelledError:
            pass
        self._executor.shutdown(wait=True)

    async def __aenter__(self) -> "TrafficFrontend":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.aclose(drain=exc_type is None)

    def _check_started(self) -> None:
        if not self._started:
            raise RuntimeError("TrafficFrontend.start() has not been awaited")
        if self._closing:
            raise RuntimeError("TrafficFrontend is closed")

    async def _call(self, fn):
        """Run ``fn`` on the single service thread (the serialization point)."""
        return await self._loop.run_in_executor(self._executor, fn)

    async def _refresh_gauges(self) -> None:
        """Re-read event count / index segments used by admission pricing."""
        def read():
            events = int(getattr(self.service, "events", 0))
            index = getattr(self.service, "index", None)
            segments = index().segment_count if callable(index) else 1
            return events, max(1, segments)

        self._events, self._segments = await self._call(read)

    # ------------------------------------------------------------------
    # Admission pricing (predicted cost units)
    # ------------------------------------------------------------------
    def _est_candidates(self, m: int) -> int:
        """The coordinator's uniform-density candidate estimate (27-cell
        one-bandwidth neighbourhood fraction of the domain)."""
        g = self.service.grid
        d = g.domain
        vol = d.gx * d.gy * d.gt
        if vol <= 0.0 or self._events == 0:
            return 0
        frac = min(1.0, (27.0 * g.hs * g.hs * g.ht) / vol)
        return int(m * self._events * frac)

    def _price_points(self, m: int, eps: Optional[float]) -> float:
        cand = self._est_candidates(m)
        if eps is not None:
            raw = self._model.predict_approx_query(
                m, cand, eps, n_segments=self._segments
            )
        else:
            raw = self._model.predict_direct_query(
                m, cand, n_groups=m, n_cohorts=1, n_segments=self._segments
            )
        return raw * self._scale["points"]

    def _price_region_variable(self, window: VoxelWindow) -> float:
        """Volume-proportional part of a region's price (no floor)."""
        return (
            self._model.predict_direct_region(window) * self._scale["region"]
        )

    def _price_region(self, window: VoxelWindow) -> float:
        """A region extract costs at least the learned per-dispatch
        floor (sync + setup + the clustered-density miss the uniform
        model can't see): without it, tiny windows look ~free, the
        shared ratio scale whipsaws between slice-sized and tiny
        requests, and admission sheds well-priced traffic."""
        return max(self._price_region_variable(window), self._region_floor)

    def _learn(self, kind: str, raw_est: float, measured: float) -> None:
        """EWMA-blend the measured/predicted ratio into the price scale."""
        if kind == "mutation":
            self._mutation_ewma = (
                0.7 * self._mutation_ewma + 0.3 * measured
            )
            return
        if kind == "region":
            f = self._region_floor
            self._region_floor = (
                measured if f == 0.0 else 0.7 * f + 0.3 * measured
            )
            if raw_est * self._scale["region"] < self._region_floor:
                # Fixed-cost regime: the floor owns this measurement;
                # feeding its ratio to the scale would poison slice-sized
                # prices (ratio ~100 for tiny windows vs ~1 for slices).
                return
        if raw_est <= 0.0:
            return
        ratio = measured / raw_est
        s = 0.7 * self._scale[kind] + 0.3 * min(ratio, 100.0)
        self._scale[kind] = max(s, 1e-3)

    async def _admit(self, kind: str, est: float) -> None:
        """Charge ``est`` against the pending budget; shed or defer past it."""
        while (
            self._pending_cost > 0.0
            and self._pending_cost + est > self.max_pending_seconds
        ):
            if self.overload == "shed":
                self.counter.frontend_shed += 1
                raise Overloaded(
                    kind, est, self._pending_cost, self.max_pending_seconds
                )
            self._deferred += 1
            self._space.clear()
            await self._space.wait()
        if self._closing:
            # aclose() won the race while this request was deferred: the
            # dispatcher is draining or gone, nothing may enqueue now.
            raise RuntimeError("TrafficFrontend is closed")
        self._pending_cost += est

    def _discharge(self, est: float) -> None:
        self._pending_cost = max(0.0, self._pending_cost - est)
        if self._pending_cost < self.max_pending_seconds:
            self._space.set()

    # ------------------------------------------------------------------
    # Per-shard circuit breakers
    # ------------------------------------------------------------------
    def _open_breakers(self, now: float) -> List[int]:
        """Shard ids whose breakers are still open (expired ones lapse)."""
        if not self._breakers:
            return []
        for s in [s for s, t in self._breakers.items() if t <= now]:
            del self._breakers[s]
        return sorted(self._breakers)

    def _breaker_hits(
        self, open_ids: List[int], xs: Optional[np.ndarray]
    ) -> Tuple[int, ...]:
        """Open breakers this request would actually touch.

        With a sharded service and point coordinates, the plan's
        ``scatter_spans`` says exactly which shards a query contacts;
        anything else (regions, unsharded services) gates on any open
        breaker — conservative, but correct.
        """
        plan = getattr(self.service, "plan", None)
        if xs is None or plan is None or not hasattr(plan, "scatter_spans"):
            return tuple(open_ids)
        lo, hi = plan.scatter_spans(np.ascontiguousarray(xs))
        return tuple(
            s for s in open_ids if bool(np.any((lo <= s) & (s <= hi)))
        )

    async def _gate_breaker(self, xs: Optional[np.ndarray] = None) -> None:
        """Shed or defer a request touching a shard under recovery."""
        while True:
            now = self._loop.time()
            hit = self._breaker_hits(self._open_breakers(now), xs)
            if not hit:
                return
            retry_after = max(self._breakers[s] for s in hit) - now
            if self.overload == "shed":
                self.counter.frontend_shed += 1
                raise CircuitOpen(hit, retry_after)
            await asyncio.sleep(max(retry_after, 0.0))
            if self._closing:
                raise RuntimeError("TrafficFrontend is closed")

    # ------------------------------------------------------------------
    # Request surface
    # ------------------------------------------------------------------
    async def query_point(
        self, x: float, y: float, t: float,
        *, eps: Optional[float] = None, seed: int = 0,
    ) -> float:
        """Density at one location — the interactive unit of traffic."""
        out = await self.query_points(
            np.array([[x, y, t]], dtype=np.float64), eps=eps, seed=seed
        )
        return float(out[0])

    async def query_points(
        self,
        queries: np.ndarray,
        *,
        eps: Optional[float] = None,
        seed: int = 0,
    ) -> np.ndarray:
        """Densities at ``(m, 3)`` locations, coalesced with co-arriving
        requests that share the ``(eps, seed)`` answer policy."""
        self._check_started()
        q = np.ascontiguousarray(np.asarray(queries, dtype=np.float64))
        if q.ndim != 2 or q.shape[1] != 3:
            raise ValueError(f"expected (m, 3) queries, got {q.shape}")
        if q.shape[0] == 0:
            return np.empty(0, dtype=np.float64)
        await self._gate_breaker(q[:, 0])
        est = self._price_points(q.shape[0], eps)
        await self._admit("points", est)
        now = self._loop.time()
        key = ("exact",) if eps is None else ("eps", float(eps), int(seed))
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = self._new_item(
                "points", "interactive", deadline=now + self.max_delay,
                est=0.0,
            )
            bucket.eps, bucket.seed = eps, int(seed)
            self._buckets[key] = bucket
        start = sum(r.shape[0] for r in bucket.rows)
        fut = self._loop.create_future()
        bucket.rows.append(q)
        bucket.futs.append(
            (fut, slice(start, start + q.shape[0]), time.perf_counter())
        )
        bucket.est_seconds += est
        bucket.n_requests += 1
        if start + q.shape[0] >= self.max_batch:
            self._seal(key, overdue=True)
        self._wake.set()
        return await fut

    async def query_slice(
        self, T: int, *, backend: Optional[str] = None
    ) -> RegionResult:
        """The full ``(Gx, Gy)`` density slice at voxel time ``T``."""
        return await self.query_region(
            slice_window(self.service.grid, T), backend=backend
        )

    async def query_region(
        self,
        window: Union[VoxelWindow, Tuple[int, int, int, int, int, int]],
        *,
        backend: Optional[str] = None,
    ) -> RegionResult:
        """Density over a voxel window, dispatched on the bulk lane in
        cost-bounded quanta so it cannot monopolise the service thread."""
        self._check_started()
        if not isinstance(window, VoxelWindow):
            window = VoxelWindow(*window)
        window = window.intersect(self.service.grid.full_window())
        if window.empty:
            raise ValueError(f"region window is empty on this grid: {window}")
        await self._gate_breaker()
        est = self._price_region(window)
        await self._admit("region", est)
        now = self._loop.time()
        item = self._new_item(
            "region", "bulk", deadline=now + self.bulk_deadline, est=est,
        )
        item.window = window
        item.backend = backend
        item.fut = self._loop.create_future()
        self._ready.append(item)
        self._wake.set()
        return await item.fut

    async def slide_window(self, new_points, t_horizon: float) -> None:
        """Slide the served window: retire events before ``t_horizon``,
        add ``new_points``.  Mutations drain FIFO, in version order."""
        target = self._mutation_target()
        await self.mutate(lambda: target(new_points, t_horizon))

    async def mutate(self, fn) -> object:
        """Run an arbitrary mutation against the service thread via the
        mutation lane (FIFO; never interleaves a started bulk extract)."""
        self._check_started()
        est = self._mutation_ewma
        await self._admit("mutation", est)
        item = self._new_item(
            "mutation", "mutation",
            deadline=self._loop.time() + self.mutation_deadline, est=est,
        )
        item.fn = fn
        item.fut = self._loop.create_future()
        self._ready.append(item)
        self._wake.set()
        return await item.fut

    def _mutation_target(self):
        slide = getattr(self.service, "slide_window", None)
        if slide is not None:
            return slide
        source = getattr(self.service, "source", None)
        if source is not None and hasattr(source, "slide_window"):
            return source.slide_window
        raise RuntimeError(
            "the wrapped service has no live source to slide"
        )

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------
    def frontend_stats(self) -> Dict[str, object]:
        """The front end's own gauges (no service round-trip)."""
        lanes = {"interactive": 0, "bulk": 0, "mutation": 0}
        for item in self._ready:
            lanes[item.lane] += 1
        holding = sum(
            sum(r.shape[0] for r in b.rows) for b in self._buckets.values()
        )
        c = self.counter
        batches = c.frontend_batches
        return {
            "lanes": lanes,
            "open_buckets": len(self._buckets),
            "holding_rows": holding,
            "pending_cost_seconds": self._pending_cost,
            "budget_seconds": self.max_pending_seconds,
            "overload": self.overload,
            "batches": batches,
            "coalesced_requests": c.frontend_coalesced,
            "shed": c.frontend_shed,
            "deferred": self._deferred,
            "retries": self._retries,
            "open_breakers": (
                self._open_breakers(self._loop.time())
                if self._loop is not None else []
            ),
            "mean_batch_rows": (
                sum(k * v for k, v in self._batch_rows_hist.items())
                / max(1, sum(self._batch_rows_hist.values()))
            ),
            "batch_rows_hist": dict(sorted(self._batch_rows_hist.items())),
            "latency": self.latency.as_dict(),
            "cost_scale": dict(self._scale),
            "region_floor_ms": self._region_floor * 1e3,
        }

    async def stats(self) -> Dict[str, object]:
        """The wrapped service's stats with the ``frontend`` blob merged."""
        self._check_started()
        base = await self._call(self.service.stats)
        base["frontend"] = self.frontend_stats()
        return base

    # ------------------------------------------------------------------
    # Dispatcher
    # ------------------------------------------------------------------
    def _new_item(
        self, kind: str, lane: str, *, deadline: float, est: float
    ) -> _WorkItem:
        self._seq += 1
        return _WorkItem(kind, lane, self._seq, deadline, est)

    def _seal(self, key: Tuple, *, overdue: bool = False) -> None:
        """Move a coalescing bucket to the interactive ready lane."""
        bucket = self._buckets.pop(key)
        if overdue:
            bucket.deadline = self._loop.time()
        self._ready.append(bucket)

    def _seal_expired(self, now: float) -> None:
        for key in [
            k for k, b in self._buckets.items() if b.deadline <= now
        ]:
            self._seal(key)

    def _seal_oldest(self) -> None:
        key = min(self._buckets, key=lambda k: self._buckets[k].deadline)
        self._seal(key)

    def _pick(self, now: float) -> _WorkItem:
        """Smallest critical ratio among eligible ready items.

        Mutations are eligible FIFO-only (version order) and only while
        no bulk extract is mid-flight, so stitched regions never span a
        version change.
        """
        bulk_started = any(
            it.kind == "region" and it.started for it in self._ready
        )
        oldest_mut = min(
            (it.seq for it in self._ready if it.lane == "mutation"),
            default=None,
        )
        best = None
        best_key = None
        for it in self._ready:
            if it.lane == "mutation" and (bulk_started or it.seq != oldest_mut):
                continue
            key = (it.ratio(now), it.seq)
            if best_key is None or key < best_key:
                best, best_key = it, key
        if best is None:  # only blocked mutations remain: run the oldest
            best = min(self._ready, key=lambda it: it.seq)
        self._ready.remove(best)
        return best

    async def _run(self) -> None:
        while True:
            now = self._loop.time()
            self._seal_expired(now)
            if not self._ready:
                if self._buckets:
                    # Dispatcher idle: waiting out the hold window buys
                    # nothing, flush the oldest bucket now.
                    self._seal_oldest()
                    continue
                self._idle.set()
                if self._closing:
                    self._drained.set()
                    return
                await self._wake.wait()
                self._wake.clear()
                self._idle.clear()
                continue
            item = self._pick(now)
            try:
                await self._dispatch(item)
            except asyncio.CancelledError:
                self._fail_item(item, None)
                raise
            except Exception as exc:  # route failures to the waiters
                self._note_fault(exc)
                if self._maybe_retry(item, exc):
                    continue
                self._fail_item(item, exc)
                self._discharge(item.est_seconds)

    def _note_fault(self, exc: Exception) -> None:
        """Open the failed shard's breaker for one recovery cooldown."""
        if isinstance(exc, ShardFailed) and self.breaker_cooldown > 0.0:
            until = self._loop.time() + self.breaker_cooldown
            sid = int(exc.shard_id)
            self._breakers[sid] = max(self._breakers.get(sid, 0.0), until)

    def _maybe_retry(self, item: _WorkItem, exc: Exception) -> bool:
        """Re-enqueue a read once after a retryable fault.

        Only reads retry: the supervisor has already respawned (or
        budget-exhausted) the shard by the time the typed error surfaces
        here, so one re-dispatch against the recovered worker is safe
        and usually succeeds.  Mutations never retry — the coordinator
        cannot know how much of a mutation landed before the fault, and
        the supervisor's replay log already completes it exactly once.
        """
        if item.kind not in ("points", "region"):
            return False
        if not (isinstance(exc, ServeError) and exc.retryable):
            return False
        if item.retried or self._closing:
            return False
        if self._loop.time() > item.deadline + self.retry_window:
            return False
        item.retried = True
        self._retries += 1
        self.counter.requests_retried += 1
        self._ready.append(item)
        return True

    def _fail_item(self, item: _WorkItem, exc: Optional[Exception]) -> None:
        futs = [f for f, _, _ in item.futs]
        if item.fut is not None:
            futs.append(item.fut)
        for fut in futs:
            if fut.done():
                continue
            if exc is None:
                fut.cancel()
            else:
                fut.set_exception(exc)

    async def _dispatch(self, item: _WorkItem) -> None:
        if item.kind == "points":
            await self._dispatch_points(item)
        elif item.kind == "region":
            await self._dispatch_region_quantum(item)
        else:
            await self._dispatch_mutation(item)

    async def _dispatch_points(self, item: _WorkItem) -> None:
        batch = (
            item.rows[0] if len(item.rows) == 1
            else np.concatenate(item.rows, axis=0)
        )
        t0 = time.perf_counter()
        out = await self._call(
            lambda: self.service.query_points(
                batch, eps=item.eps, seed=item.seed
            )
        )
        done = time.perf_counter()
        dt = done - t0
        self.counter.frontend_batches += 1
        self.counter.frontend_coalesced += item.n_requests
        rows = batch.shape[0]
        self._batch_rows_hist[rows] = self._batch_rows_hist.get(rows, 0) + 1
        for fut, sl, submitted in item.futs:
            self.latency.record(done - submitted)
            if not fut.done():  # timed-out/cancelled callers dropped out
                fut.set_result(out[sl])
        raw = item.est_seconds / max(self._scale["points"], 1e-12)
        self._learn("points", raw, dt)
        self._discharge(item.est_seconds)

    def _plan_chunks(self, window: VoxelWindow) -> List[VoxelWindow]:
        """Split a region along ``t`` into quanta of bounded predicted cost.

        Only the volume-proportional cost divides with the split — every
        chunk pays the per-dispatch floor again — so the step is sized
        from the variable price against the quantum *minus* the floor.
        """
        per_slice = self._price_region_variable(
            VoxelWindow(window.x0, window.x1, window.y0, window.y1,
                        window.t0, window.t0 + 1)
        )
        nt = window.t1 - window.t0
        budget = max(self.bulk_quantum - self._region_floor, 0.0)
        step = max(1, int(budget / max(per_slice, 1e-9)))
        if step >= nt:
            return [window]
        return [
            VoxelWindow(window.x0, window.x1, window.y0, window.y1,
                        t, min(t + step, window.t1))
            for t in range(window.t0, window.t1, step)
        ]

    async def _dispatch_region_quantum(self, item: _WorkItem) -> None:
        if item.chunks is None:
            item.chunks = self._plan_chunks(item.window)
        w = item.chunks[item.chunk_idx]
        t0 = time.perf_counter()
        res = await self._call(
            lambda: self.service.query_region(w, backend=item.backend)
        )
        dt = time.perf_counter() - t0
        self.counter.frontend_batches += 1
        item.chunk_results.append(res)
        item.chunk_idx += 1
        share = item.est_seconds / len(item.chunks)
        self._learn("region", self._model.predict_direct_region(w), dt)
        self._discharge(share)
        if item.chunk_idx < len(item.chunks):
            self._ready.append(item)  # re-enter the scheduler between quanta
            return
        if len(item.chunk_results) == 1:
            result = item.chunk_results[0]
        else:
            W = item.window
            data = np.empty(W.shape, dtype=np.float64)
            for r in item.chunk_results:
                data[:, :, r.window.t0 - W.t0:r.window.t1 - W.t0] = r.data
            data.flags.writeable = False
            result = RegionResult(
                window=W, data=data, backend=item.chunk_results[0].backend,
            )
        if not item.fut.done():
            item.fut.set_result(result)

    async def _dispatch_mutation(self, item: _WorkItem) -> None:
        t0 = time.perf_counter()
        out = await self._call(item.fn)
        dt = time.perf_counter() - t0
        self.counter.frontend_batches += 1
        self._learn("mutation", item.est_seconds, dt)
        self._discharge(item.est_seconds)
        await self._refresh_gauges()
        if not item.fut.done():
            item.fut.set_result(out)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closing else (
            "running" if self._started else "new"
        )
        return (
            f"TrafficFrontend({self.service!r}, {state}, "
            f"hold={self.max_delay * 1e3:g}ms, max_batch={self.max_batch})"
        )
