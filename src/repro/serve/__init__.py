"""Query-serving subsystem: answer density queries, don't scan volumes.

The compute engines (:mod:`repro.core`, :mod:`repro.parallel`) produce
whole density volumes; this package serves *queries* against either those
volumes or the raw events:

* :class:`~repro.serve.index.BucketIndex` — ``hs x hs x ht`` bucket index
  enabling O(neighbours) direct kernel sums;
* :mod:`~repro.serve.engine` — vectorised batch execution (direct sums,
  trilinear lookups, slice/region extraction over region-buffer views);
* :class:`~repro.serve.planner.QueryPlanner` — prices direct-sum vs
  volume-lookup through the Section 6.5 cost model, per batch;
* :class:`~repro.serve.cache.QueryCache` — version-keyed LRU over results,
  invalidated by live-source mutations (``slide_window``);
* :class:`~repro.serve.service.DensityService` — the facade tying them
  together (also exposed as ``repro query`` on the CLI).
"""

from .cache import QueryCache, digest_queries
from .calibrate import calibrate_serving
from .engine import (
    RegionResult,
    direct_region,
    direct_sum,
    direct_sum_grouped,
    region_view,
    sample_volume,
    slice_window,
)
from .index import BucketIndex
from .planner import QueryPlan, QueryPlanner
from .service import DensityService

__all__ = [
    "BucketIndex",
    "DensityService",
    "QueryCache",
    "QueryPlan",
    "QueryPlanner",
    "RegionResult",
    "calibrate_serving",
    "digest_queries",
    "direct_region",
    "direct_sum",
    "direct_sum_grouped",
    "region_view",
    "sample_volume",
    "slice_window",
]
