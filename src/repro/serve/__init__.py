"""Query-serving subsystem: answer density queries, don't scan volumes.

The compute engines (:mod:`repro.core`, :mod:`repro.parallel`) produce
whole density volumes; this package serves *queries* against either those
volumes or the raw events:

* :class:`~repro.serve.index.BucketIndex` — ``hs x hs x ht`` bucket index
  enabling O(neighbours) direct kernel sums;
* :mod:`~repro.serve.engine` — vectorised batch execution (direct sums,
  trilinear lookups, ε-budgeted importance-sampled sums, slice/region
  extraction over region-buffer views);
* :class:`~repro.serve.planner.QueryPlanner` — prices direct-sum vs
  volume-lookup through the Section 6.5 cost model, per batch;
* :class:`~repro.serve.cache.QueryCache` — version-keyed LRU over results,
  invalidated by live-source mutations (``slide_window``);
* :class:`~repro.serve.service.DensityService` — the facade tying them
  together (also exposed as ``repro query`` on the CLI);
* :class:`~repro.serve.shard.ShardPlan` /
  :class:`~repro.serve.worker.ShardWorker` /
  :class:`~repro.serve.service.ShardedDensityService` — the
  multi-process sharded tier: shard-owning workers answering
  scatter/gather fan-out (``repro serve --workers N``);
* :class:`~repro.serve.frontend.TrafficFrontend` — the asyncio traffic
  front end: coalesces concurrent point requests into cohort batches,
  schedules lanes by critical ratio, sheds past a cost-priced admission
  budget (``repro serve --frontend``);
* :class:`~repro.serve.supervisor.ShardSupervisor` /
  :mod:`~repro.serve.errors` / :mod:`~repro.serve.faults` — the
  self-healing layer: supervised respawn with replay-based recovery, a
  typed fault surface (:class:`ShardFailed` / :class:`ShardTimeout` /
  coverage-tagged :class:`PartialResult` degraded reads), and the
  deterministic fault-injection harness (``REPRO_FAULTS``).
"""

from .cache import QueryCache, digest_queries
from .calibrate import calibrate_ipc, calibrate_recovery, calibrate_serving
from .errors import (
    CircuitOpen,
    PartialResult,
    ServeError,
    ShardDown,
    ShardFailed,
    ShardTimeout,
)
from .faults import FaultPlan, FaultSpec
from .engine import (
    RegionResult,
    approx_sum,
    direct_region,
    direct_sum,
    direct_sum_grouped,
    region_view,
    sample_volume,
    slice_window,
)
from .frontend import Overloaded, TrafficFrontend
from .index import BucketIndex
from .planner import QueryPlan, QueryPlanner, ScatterPlan
from .service import DensityService, ShardedDensityService
from .shard import ShardPlan, plan_shards
from .supervisor import ShardLog, ShardSupervisor
from .worker import ShardWorker

__all__ = [
    "BucketIndex",
    "CircuitOpen",
    "DensityService",
    "FaultPlan",
    "FaultSpec",
    "Overloaded",
    "PartialResult",
    "QueryCache",
    "QueryPlan",
    "QueryPlanner",
    "RegionResult",
    "ScatterPlan",
    "ServeError",
    "ShardDown",
    "ShardFailed",
    "ShardLog",
    "ShardPlan",
    "ShardSupervisor",
    "ShardTimeout",
    "ShardWorker",
    "ShardedDensityService",
    "TrafficFrontend",
    "approx_sum",
    "calibrate_ipc",
    "calibrate_recovery",
    "calibrate_serving",
    "digest_queries",
    "direct_region",
    "direct_sum",
    "direct_sum_grouped",
    "plan_shards",
    "region_view",
    "sample_volume",
    "slice_window",
]
