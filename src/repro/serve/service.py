"""DensityService: the query-serving facade.

One object that answers *point*, *slice*, and *region* density queries
against either a static event snapshot (:class:`~repro.core.grid.PointSet`)
or a live sliding window (:class:`~repro.core.incremental.IncrementalSTKDE`),
choosing the physical plan per batch:

* **direct-sum** — walk the :class:`~repro.serve.index.BucketIndex` and
  evaluate the estimator definition at the query (exact, O(neighbours),
  no volume, honours event weights);
* **volume-lookup** — trilinear sample (points) or zero-copy view
  (slices/regions) of a lazily materialised volume (O(1) per query after
  the build).

The :class:`~repro.serve.planner.QueryPlanner` prices both through the
Section 6.5 cost model; ``backend="direct"``/``"lookup"`` pins the choice.
Results are cached in a version-keyed LRU (:class:`~repro.serve.cache
.QueryCache`): every mutation of a live source bumps its ``version``
(``add``/``remove``/``slide_window``), which both re-keys and eagerly
drops stale entries — repeat dashboard queries between slides are served
from cache.

Example::

    service = DensityService(points, grid)
    dens = service.query_points(np.array([[x, y, t]]))
    hot = service.query_slice(T).time_slice()
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, Union

import numpy as np

from ..analysis.model import CostModel, MachineModel
from ..core.grid import GridSpec, PointSet, Volume, VoxelWindow
from ..core.incremental import IncrementalSTKDE
from ..core.instrument import WorkCounter
from ..core.kernels import KernelPair, get_kernel
from ..core.stamping import stamp_batch
from ..parallel.executors import resolve_shard_count, run_threaded_stamping
from .cache import QueryCache, digest_queries
from .engine import (
    RegionResult,
    direct_region,
    direct_sum,
    region_view,
    sample_volume,
    slice_window,
)
from .index import BucketIndex
from .planner import QueryPlan, QueryPlanner

__all__ = ["DensityService"]

Source = Union[PointSet, np.ndarray, IncrementalSTKDE]


class DensityService:
    """Serve density queries for one dataset (static or live).

    Parameters
    ----------
    source:
        A :class:`PointSet` / ``(n, 3)`` array (static snapshot) or an
        :class:`IncrementalSTKDE` (live window; the service re-syncs its
        index, volume, and cache whenever the source's version advances).
    grid:
        Required for static sources; taken from the estimator for live
        ones.
    kernel:
        Kernel pair used for direct sums and materialisation.  Must match
        the live estimator's kernel (checked).
    backend:
        Default physical plan: ``"auto"`` (planner decides per batch),
        ``"direct"``, or ``"lookup"``.  Per-call ``backend=`` overrides.
    cache:
        Result cache; defaults to a 128-entry LRU.  Pass ``None``-ops by
        constructing with ``max_entries=1`` if caching is unwanted.
    machine:
        Calibrated :class:`MachineModel` for the planner; calibrated
        lazily on first ``auto`` plan when omitted.
    index_merge_cap:
        Live-segment cap for the incremental index's merge policy
        (``None`` disables merging) — bounds per-query probe cost under
        sustained tiny-batch slides; see
        :meth:`~repro.analysis.model.CostModel.predict_merge` for the
        trade.
    """

    def __init__(
        self,
        source: Source,
        grid: Optional[GridSpec] = None,
        *,
        kernel: str | KernelPair = "epanechnikov",
        backend: str = "auto",
        cache: Optional[QueryCache] = None,
        machine: Optional[MachineModel] = None,
        counter: Optional[WorkCounter] = None,
        index_merge_cap: Optional[int] = 16,
    ) -> None:
        if backend not in ("auto", "direct", "lookup"):
            raise ValueError(
                f"backend must be 'auto', 'direct' or 'lookup', got {backend!r}"
            )
        self.kernel = get_kernel(kernel)
        self.backend = backend
        self.index_merge_cap = index_merge_cap
        self.cache = cache if cache is not None else QueryCache()
        self.counter = counter if counter is not None else WorkCounter()
        self._machine = machine
        self._inc: Optional[IncrementalSTKDE] = None
        self._static_coords: Optional[np.ndarray] = None
        self._static_weights: Optional[np.ndarray] = None
        if isinstance(source, IncrementalSTKDE):
            if grid is not None and grid is not source.grid:
                raise ValueError("grid is taken from the live estimator")
            if source.kernel.name != self.kernel.name:
                raise ValueError(
                    f"service kernel {self.kernel.name!r} disagrees with the "
                    f"estimator's {source.kernel.name!r}"
                )
            self.grid = source.grid
            self._inc = source
        else:
            if grid is None:
                raise ValueError("static sources require an explicit grid")
            pts = source if isinstance(source, PointSet) else PointSet(source)
            self.grid = grid
            self._static_coords = pts.coords
            self._static_weights = pts.weights
        # Lazily built, re-synced on version change.
        self._index: Optional[BucketIndex] = None
        self._volume: Optional[np.ndarray] = None
        self._planner: Optional[QueryPlanner] = None
        self._live_coords: Optional[np.ndarray] = None
        self._synced_version: Optional[int] = None
        self._backend_calls: Dict[str, int] = {"direct": 0, "lookup": 0}
        self._plan_decisions: Dict[str, int] = {}
        self._volume_builds = 0
        self._volume_build_backend: Optional[str] = None

    # ------------------------------------------------------------------
    # Source state
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Dataset version currently served (0 forever for static sources)."""
        return self._inc.version if self._inc is not None else 0

    @property
    def weighted(self) -> bool:
        """Whether the served events carry non-uniform weights."""
        return self._static_weights is not None

    @property
    def volume_ready(self) -> bool:
        """Whether a materialised volume for the current version exists."""
        self._sync()
        return self._volume is not None

    def _coords(self) -> np.ndarray:
        """Current event coordinates (live sources cached per version —
        ``live_coords`` concatenates every tracked batch on each call)."""
        if self._inc is None:
            return self._static_coords  # type: ignore[return-value]
        self._sync()
        if self._live_coords is None:
            self._live_coords = self._inc.live_coords
        return self._live_coords

    def _norm(self) -> float:
        """Estimator prefactor ``1 / (W hs^2 ht)`` (0 for an empty window)."""
        if self._inc is not None:
            w = float(self._inc.n)
        elif self._static_weights is not None:
            w = float(self._static_weights.sum())
        else:
            w = float(self._static_coords.shape[0])  # type: ignore[union-attr]
        if w <= 0.0:
            return 0.0
        return 1.0 / (w * self.grid.hs * self.grid.hs * self.grid.ht)

    def _sync(self) -> None:
        """Re-key derived state when the live source has mutated.

        The ``slide_window`` invalidation wiring: a version change drops
        the materialised volume and every stale cache entry before the
        next query is answered.  The bucket index is **not** dropped — it
        reconciles against the estimator's tracked batches
        (:meth:`BucketIndex.sync`), appending segments for arriving
        batches and retiring departed ones, so keeping it warm across
        versions costs O(changed batches) instead of an O(n) rebuild.
        """
        v = self.version
        if v == self._synced_version:
            return
        if self._index is not None and self._inc is not None:
            self._index.sync(self._inc.live_batches, counter=self.counter)
        self._volume = None
        self._planner = None
        self._live_coords = None
        self.cache.drop_stale(v)
        self._synced_version = v

    # ------------------------------------------------------------------
    # Derived structures
    # ------------------------------------------------------------------
    def index(self) -> BucketIndex:
        """The bucket index over the current events (built lazily).

        Live sources register one CSR segment per tracked batch, so the
        index stays incrementally maintainable across window slides.
        """
        self._sync()
        if self._index is None:
            if self._inc is not None:
                self._index = BucketIndex(
                    self.grid, merge_segment_cap=self.index_merge_cap
                )
                self._index.sync(self._inc.live_batches, counter=self.counter)
            else:
                self._index = BucketIndex(
                    self.grid, self._coords(), self._static_weights,
                    counter=self.counter,
                    merge_segment_cap=self.index_merge_cap,
                )
        return self._index

    def _threaded_build_wins(self, coords: np.ndarray, P: int) -> bool:
        """Whether the bbox-sharded threads path should build the volume.

        Materialisation happens exactly when the planner predicts enough
        (repeated) lookups to amortise a build, so the build itself is
        worth planning: with a calibrated machine at hand the cost model
        prices serial vs threaded stamping.  Without one (pinned-backend
        callers that never planned) the build stays serial — guessing
        would either force a calibration or risk allocating shard
        buffers unpriced.  The feasibility check caps the planned shard
        buffers at ``max(2, P/2)`` volumes' worth — at least 2x below
        the ``P`` replicas the DR trade would allocate (clustered shards
        measure ~1.1 volumes total), so a serving build can never
        quietly regress to DR-scale transient memory: scattered batches
        whose bboxes approach ``P`` full grids are refused, not
        attempted.
        """
        if P <= 1 or coords.shape[0] == 0 or self._machine is None:
            return False
        model = CostModel(
            self.grid, PointSet(coords), self._machine,
            memory_budget_bytes=self._materialize_budget(P),
        )
        threaded = model.predict_pb_sym_threads(P)
        return threaded.feasible and threaded.seconds < model.predict_pb_sym()

    def materialize(self) -> Volume:
        """Force-build (or fetch) the volume backing the lookup plan.

        Static builds route through
        :func:`~repro.parallel.executors.run_threaded_stamping` (with
        ``P="auto"`` bbox shards) whenever the cost model predicts the
        threaded build wins; weighted events stamp through the engine's
        weighted mode, normalised by total weight.
        """
        self._sync()
        if self._volume is None:
            if self._inc is not None:
                self._volume = self._inc.volume().data
                self._volume_build_backend = "incremental"
            else:
                vol = self.grid.allocate()
                self.counter.init_writes += vol.size
                coords = self._coords()
                if coords.shape[0]:
                    P = resolve_shard_count("auto")
                    if self._threaded_build_wins(coords, P):
                        run_threaded_stamping(
                            vol, self.grid, self.kernel, coords,
                            self._norm(), self.counter, P,
                            weights=self._static_weights,
                        )
                        self._volume_build_backend = f"threads[{P}]"
                    else:
                        stamp_batch(
                            vol, self.grid, self.kernel, coords,
                            self._norm(), self.counter,
                            weights=self._static_weights,
                        )
                        self._volume_build_backend = "stamp"
                self._volume = vol
            self._volume_builds += 1
        return Volume(self._volume, self.grid)

    def _materialize_budget(self, P: int) -> int:
        """Transient-memory cap for a threaded volume build: shard
        buffers at most ``max(2, P/2)`` volumes — at least 2x below the
        ``P`` replicas of the DR trade (clustered shards measure ~1.1
        volumes total)."""
        return (1 + max(2, P // 2)) * self.grid.grid_bytes

    def planner(self) -> QueryPlanner:
        """The query planner (calibrates the machine model on first use).

        The planner's model carries the same memory budget
        :meth:`materialize` enforces, so ``predict_materialize`` prices
        the build the service will *actually* run: a threaded build the
        budget would refuse is priced serial, never assumed.
        """
        self._sync()
        if self._planner is None:
            if self._machine is None:
                from .calibrate import calibrate_serving

                self._machine = calibrate_serving()
            model = CostModel(
                self.grid, PointSet(self._coords()), self._machine,
                memory_budget_bytes=self._materialize_budget(
                    resolve_shard_count("auto")
                ),
            )
            self._planner = QueryPlanner(model)
        return self._planner

    def _resolve_backend(
        self, backend: Optional[str]
    ) -> Tuple[Optional[str], Optional[str]]:
        """``(pinned_backend, why)``; ``(None, None)`` = planner's choice.

        Weighted events are no longer pinned to the direct path: the
        engine's weighted stamp mode materialises ``sum w_i k / (W hs^2
        ht)`` volumes, so the planner prices both backends for them too.
        """
        choice = backend if backend is not None else self.backend
        if choice == "auto":
            return None, None
        if choice not in ("direct", "lookup"):
            raise ValueError(
                f"backend must be 'auto', 'direct' or 'lookup', got {choice!r}"
            )
        return choice, "forced by caller"

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query_points(
        self,
        queries: np.ndarray,
        *,
        backend: Optional[str] = None,
        plan_out: Optional[list] = None,
    ) -> np.ndarray:
        """Densities at ``(m, 3)`` query locations.

        ``plan_out``, when a list, receives the :class:`QueryPlan` used —
        observability without changing the return type.
        """
        self._sync()
        q = np.ascontiguousarray(np.asarray(queries, dtype=np.float64))
        if q.ndim != 2 or q.shape[1] != 3:
            raise ValueError(f"expected (m, 3) queries, got {q.shape}")
        if q.shape[0] == 0:
            return np.empty(0, dtype=np.float64)
        force, force_reason = self._resolve_backend(backend)
        # Cache before planning: a hit must not pay the planner's O(n)
        # estimates.  Off voxel centers the two backends differ (exact vs
        # interpolated), so auto mode keys its own entries — a repeated
        # auto query always returns the same answer within a version,
        # never a pinned call's value from the other physical plan.
        digest = digest_queries(q)
        cache_tag = force if force is not None else "auto"
        key = QueryCache.make_key(self.version, "points", cache_tag, digest)
        cached = self.cache.get(key)
        if cached is not None and plan_out is None:
            return cached
        plan = self.planner().plan_points(
            self.index(), q, volume_ready=self._volume is not None,
            force=force, force_reason=force_reason,
        ) if force is None or plan_out is not None else None
        if plan is not None:
            self._record_plan(plan)
            if plan_out is not None:
                plan_out.append(plan)
        if cached is not None:
            return cached
        chosen = plan.backend if plan is not None else force
        if chosen == "direct":
            out = direct_sum(
                self.index(), q, self.kernel, self._norm(), self.counter
            )
        else:
            out = sample_volume(self.materialize().data, self.grid, q)
            out = self._patch_off_domain(q, out)
        self._backend_calls[chosen] += 1
        out.flags.writeable = False
        self.cache.put(key, out, out.nbytes)
        return out

    def _patch_off_domain(self, q: np.ndarray, out: np.ndarray) -> np.ndarray:
        """Direct-sum the queries outside the domain box on the lookup path.

        Trilinear sampling clamps to the edge voxel, which would serve the
        boundary plateau forever off-domain while the direct backend
        returns the true (decaying-to-zero) estimator value — the same
        sentinel would flip answers with the planner's choice.  Routing
        the off-domain rows through the index keeps the two backends
        interchangeable everywhere.
        """
        d = self.grid.domain
        outside = (
            (q[:, 0] < d.x0) | (q[:, 0] > d.x0 + d.gx)
            | (q[:, 1] < d.y0) | (q[:, 1] > d.y0 + d.gy)
            | (q[:, 2] < d.t0) | (q[:, 2] > d.t0 + d.gt)
        )
        if outside.any():
            out = out.copy()
            out[outside] = direct_sum(
                self.index(), q[outside], self.kernel, self._norm(),
                self.counter,
            )
        return out

    def query_slice(
        self, T: int, *, backend: Optional[str] = None
    ) -> RegionResult:
        """The full ``(Gx, Gy)`` density slice at voxel time ``T``."""
        return self.query_region(slice_window(self.grid, T), backend=backend)

    def query_region(
        self,
        window: VoxelWindow | Tuple[int, int, int, int, int, int],
        *,
        backend: Optional[str] = None,
        plan_out: Optional[list] = None,
    ) -> RegionResult:
        """Density over a voxel window ``[x0:x1) x [y0:y1) x [t0:t1)``.

        Lookup plans return a **view** of the materialised volume (zero
        copy); direct plans stamp a fresh
        :class:`~repro.core.regions.RegionBuffer` covering only the
        window.  Both are read-only and cache-shared.
        """
        self._sync()
        if not isinstance(window, VoxelWindow):
            window = VoxelWindow(*window)
        window = window.intersect(self.grid.full_window())
        if window.empty:
            raise ValueError(f"region window is empty on this grid: {window}")
        force, force_reason = self._resolve_backend(backend)
        # Cache before planning (see query_points): hits skip the
        # planner's O(n) region estimate entirely.  Unlike point queries,
        # region extracts are bit-identical across backends (both are the
        # stamped grid values), so auto mode may reuse any variant.
        wkey = (window.x0, window.x1, window.y0, window.y1, window.t0, window.t1)
        variants = (force,) if force is not None else ("direct", "lookup")
        cached = self.cache.get_first(
            [QueryCache.make_key(self.version, "region", b, wkey)
             for b in variants]
        )
        if cached is not None and plan_out is None:
            return cached
        plan = self.planner().plan_region(
            window, volume_ready=self._volume is not None,
            force=force, force_reason=force_reason,
        ) if force is None or plan_out is not None else None
        if plan is not None:
            self._record_plan(plan)
            if plan_out is not None:
                plan_out.append(plan)
        if cached is not None:
            return cached
        chosen = plan.backend if plan is not None else force
        if chosen == "direct":
            result = direct_region(
                self.grid, self.kernel, self._coords(), window,
                self._norm(), self.counter, weights=self._static_weights,
            )
        else:
            result = region_view(self.materialize().data, window)
        self._backend_calls[chosen] += 1
        # Views alias the materialised volume: no extra payload bytes.
        self.cache.put(
            QueryCache.make_key(self.version, "region", chosen, wkey),
            result, 0 if result.is_view else result.data.nbytes,
        )
        return result

    # ------------------------------------------------------------------
    def _record_plan(self, plan: QueryPlan) -> None:
        """Tally a planner verdict for the observability stats."""
        key = f"{plan.kind}:{plan.backend}"
        self._plan_decisions[key] = self._plan_decisions.get(key, 0) + 1

    def stats(self) -> Dict[str, object]:
        """Serving counters: cache behaviour, backend mix, builds, index
        segment gauges, slide-pipeline work (slab retirement, segment
        merging, compaction debt), and planner decisions — the JSON blob
        ``repro query --stats`` prints for load balancers and
        dashboards."""
        cache = self.cache.stats()
        lookups = cache["hits"] + cache["misses"]
        c = self.counter
        work = {
            "index_events_bucketed": c.index_events_bucketed,
            "index_events_retired": c.index_events_retired,
            "index_segments_merged": c.index_segments_merged,
            "index_rows_compacted": c.index_rows_compacted,
            "query_cohorts": c.query_cohorts,
        }
        if self._inc is not None:
            # The live source's own slide gauges (slab subtractions vs
            # straddle restamps — the O(delta) retirement evidence).
            ic = self._inc.counter
            work["slab_buffers_retired"] = ic.slab_buffers_retired
            work["slab_restamp_points"] = ic.slab_restamp_points
        return {
            "version": self.version,
            "events": int(self._coords().shape[0]),
            "weighted": self.weighted,
            "volume_ready": self._volume is not None,
            "volume_builds": self._volume_builds,
            "volume_build_backend": self._volume_build_backend,
            "backend_calls": dict(self._backend_calls),
            "planner_decisions": dict(self._plan_decisions),
            "cache": cache,
            "cache_hit_ratio": (cache["hits"] / lookups) if lookups else None,
            "work": work,
            "index": (
                self._index.stats() if self._index is not None else None
            ),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        src = "live" if self._inc is not None else "static"
        return (
            f"DensityService({src}, n={self._coords().shape[0]}, "
            f"grid={self.grid.shape}, backend={self.backend!r})"
        )
