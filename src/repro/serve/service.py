"""DensityService: the query-serving facade.

One object that answers *point*, *slice*, and *region* density queries
against either a static event snapshot (:class:`~repro.core.grid.PointSet`)
or a live sliding window (:class:`~repro.core.incremental.IncrementalSTKDE`),
choosing the physical plan per batch:

* **direct-sum** — walk the :class:`~repro.serve.index.BucketIndex` and
  evaluate the estimator definition at the query (exact, O(neighbours),
  no volume, honours event weights);
* **volume-lookup** — trilinear sample (points) or zero-copy view
  (slices/regions) of a lazily materialised volume (O(1) per query after
  the build);
* **approx** — ε-budgeted importance sampling over the index's CSR runs
  (:func:`~repro.serve.engine.approx_sum`), available only when the
  request carries an error budget (``query_points(..., eps=0.1)``);
  ``eps=None`` — the default everywhere — keeps the service exact and
  bit-identical to a service without the approximate tier.

The :class:`~repro.serve.planner.QueryPlanner` prices the plans through
the Section 6.5 cost model; ``backend="direct"``/``"lookup"`` (or
``"approx"`` alongside an ``eps``) pins the choice.
Results are cached in a version-keyed LRU (:class:`~repro.serve.cache
.QueryCache`): every mutation of a live source bumps its ``version``
(``add``/``remove``/``slide_window``), which both re-keys and eagerly
drops stale entries — repeat dashboard queries between slides are served
from cache.

Example::

    service = DensityService(points, grid)
    dens = service.query_points(np.array([[x, y, t]]))
    hot = service.query_slice(T).time_slice()
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, Union

import numpy as np

from ..analysis.model import CostModel, MachineModel
from ..core.backends import DEFAULT_BACKEND, available_backends, get_backend
from ..core.grid import GridSpec, PointSet, Volume, VoxelWindow
from ..core.incremental import IncrementalSTKDE
from ..core.instrument import WorkCounter
from ..core.kernels import KernelPair, get_kernel
from ..core.stamping import stamp_batch
from ..parallel.executors import resolve_shard_count, run_threaded_stamping
from .cache import QueryCache, digest_queries
from .engine import (
    RegionResult,
    approx_sum,
    direct_region,
    direct_sum,
    region_view,
    sample_volume,
    slice_window,
)
from .index import BucketIndex
from .errors import PartialResult
from .faults import FaultPlan
from .planner import QueryPlan, QueryPlanner, ScatterPlan
from .shard import ShardPlan, plan_shards
from .supervisor import ShardSupervisor
from .worker import ShardWorker

__all__ = ["DensityService", "ShardedDensityService"]

Source = Union[PointSet, np.ndarray, IncrementalSTKDE]


class DensityService:
    """Serve density queries for one dataset (static or live).

    Parameters
    ----------
    source:
        A :class:`PointSet` / ``(n, 3)`` array (static snapshot) or an
        :class:`IncrementalSTKDE` (live window; the service re-syncs its
        index, volume, and cache whenever the source's version advances).
    grid:
        Required for static sources; taken from the estimator for live
        ones.
    kernel:
        Kernel pair used for direct sums and materialisation.  Must match
        the live estimator's kernel (checked).
    backend:
        Default physical plan: ``"auto"`` (planner decides per batch),
        ``"direct"``, or ``"lookup"``.  Per-call ``backend=`` overrides.
    cache:
        Result cache; defaults to a 128-entry LRU.  Pass ``None``-ops by
        constructing with ``max_entries=1`` if caching is unwanted.
    machine:
        Calibrated :class:`MachineModel` for the planner; calibrated
        lazily on first ``auto`` plan when omitted.
    index_merge_cap:
        Live-segment cap for the incremental index's merge policy
        (``None`` disables merging) — bounds per-query probe cost under
        sustained tiny-batch slides; see
        :meth:`~repro.analysis.model.CostModel.predict_merge` for the
        trade.  ``"auto"`` re-picks the cap per deployment through
        :meth:`~repro.analysis.model.CostModel.choose_merge_cap` from
        the *observed* feed/query mix (EWMA of point-query batches
        served per version change): query-heavy traffic converges on a
        small cap (probes dominate, merge often), feed-heavy on a large
        one (merges dominate, tolerate segments).
    """

    def __init__(
        self,
        source: Source,
        grid: Optional[GridSpec] = None,
        *,
        kernel: str | KernelPair = "epanechnikov",
        backend: str = "auto",
        compute: str = DEFAULT_BACKEND,
        cache: Optional[QueryCache] = None,
        machine: Optional[MachineModel] = None,
        counter: Optional[WorkCounter] = None,
        index_merge_cap: Union[int, str, None] = 16,
    ) -> None:
        if backend not in ("auto", "direct", "lookup", "approx"):
            raise ValueError(
                f"backend must be 'auto', 'direct', 'lookup' or 'approx', "
                f"got {backend!r}"
            )
        if compute != "auto":
            get_backend(compute)  # fail fast on unknown/unavailable names
        if isinstance(index_merge_cap, str) and index_merge_cap != "auto":
            raise ValueError(
                f"index_merge_cap must be an int, None or 'auto', "
                f"got {index_merge_cap!r}"
            )
        self.kernel = get_kernel(kernel)
        self.backend = backend
        #: Pair-evaluation backend: a registered name pins every kernel
        #: sum to that backend; ``"auto"`` lets the planner route each
        #: batch to the cheapest calibrated backend.  The default keeps
        #: every sum on the reference backend — bit-identical results.
        self.compute = compute
        self._merge_cap_auto = index_merge_cap == "auto"
        self.index_merge_cap: Optional[int] = (
            16 if self._merge_cap_auto else index_merge_cap
        )
        # Observed feed/query mix driving the "auto" merge cap: point
        # batches (and their rows) served since the last version change,
        # smoothed into per-sync EWMAs at each sync.
        self._point_batches_since_sync = 0
        self._point_rows_since_sync = 0
        self._batches_per_sync = 1.0
        self._rows_per_batch = 1.0
        self.cache = cache if cache is not None else QueryCache()
        self.counter = counter if counter is not None else WorkCounter()
        self._machine = machine
        self._inc: Optional[IncrementalSTKDE] = None
        self._static_coords: Optional[np.ndarray] = None
        self._static_weights: Optional[np.ndarray] = None
        if isinstance(source, IncrementalSTKDE):
            if grid is not None and grid is not source.grid:
                raise ValueError("grid is taken from the live estimator")
            if source.kernel.name != self.kernel.name:
                raise ValueError(
                    f"service kernel {self.kernel.name!r} disagrees with the "
                    f"estimator's {source.kernel.name!r}"
                )
            self.grid = source.grid
            self._inc = source
        else:
            if grid is None:
                raise ValueError("static sources require an explicit grid")
            pts = source if isinstance(source, PointSet) else PointSet(source)
            self.grid = grid
            self._static_coords = pts.coords
            self._static_weights = pts.weights
        # Lazily built, re-synced on version change.
        self._index: Optional[BucketIndex] = None
        self._volume: Optional[np.ndarray] = None
        self._planner: Optional[QueryPlanner] = None
        self._live_coords: Optional[np.ndarray] = None
        self._synced_version: Optional[int] = None
        self._backend_calls: Dict[str, int] = {
            "direct": 0, "lookup": 0, "approx": 0,
        }
        self._plan_decisions: Dict[str, int] = {}
        # Per-backend tally of planner compute choices (kernel-sum plans).
        self._compute_choices: Dict[str, int] = {}
        # Realised-vs-requested ε accounting of the approximate tier.
        self._eps_requested_sum = 0.0
        self._approx_stats: Dict[str, float] = {}
        self._volume_builds = 0
        self._volume_build_backend: Optional[str] = None

    # ------------------------------------------------------------------
    # Source state
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Dataset version currently served (0 forever for static sources)."""
        return self._inc.version if self._inc is not None else 0

    @property
    def weighted(self) -> bool:
        """Whether the served events carry non-uniform weights."""
        return self._static_weights is not None

    @property
    def events(self) -> int:
        """Number of events currently served (live: the window's size)."""
        return int(self._coords().shape[0])

    @property
    def source(self):
        """The live :class:`IncrementalSTKDE` behind this service, or
        ``None`` for static snapshots — how mutation-routing layers (the
        traffic front end) reach ``slide_window`` without reaching into
        privates."""
        return self._inc

    @property
    def volume_ready(self) -> bool:
        """Whether a materialised volume for the current version exists."""
        self._sync()
        return self._volume is not None

    def _coords(self) -> np.ndarray:
        """Current event coordinates (live sources cached per version —
        ``live_coords`` concatenates every tracked batch on each call)."""
        if self._inc is None:
            return self._static_coords  # type: ignore[return-value]
        self._sync()
        if self._live_coords is None:
            self._live_coords = self._inc.live_coords
        return self._live_coords

    def _norm(self) -> float:
        """Estimator prefactor ``1 / (W hs^2 ht)`` (0 for an empty window)."""
        if self._inc is not None:
            w = float(self._inc.n)
        elif self._static_weights is not None:
            w = float(self._static_weights.sum())
        else:
            w = float(self._static_coords.shape[0])  # type: ignore[union-attr]
        if w <= 0.0:
            return 0.0
        return 1.0 / (w * self.grid.hs * self.grid.hs * self.grid.ht)

    def _sync(self) -> None:
        """Re-key derived state when the live source has mutated.

        The ``slide_window`` invalidation wiring: a version change drops
        the materialised volume and every stale cache entry before the
        next query is answered.  The bucket index is **not** dropped — it
        reconciles against the estimator's tracked batches
        (:meth:`BucketIndex.sync`), appending segments for arriving
        batches and retiring departed ones, so keeping it warm across
        versions costs O(changed batches) instead of an O(n) rebuild.
        """
        v = self.version
        if v == self._synced_version:
            return
        if self._index is not None and self._inc is not None:
            if self._merge_cap_auto:
                self._retune_merge_cap()
            self._index.sync(self._inc.live_batches, counter=self.counter)
        self._volume = None
        self._planner = None
        self._live_coords = None
        self.cache.drop_stale(v)
        self._synced_version = v

    def _retune_merge_cap(self) -> None:
        """Re-pick the live index's merge cap from the observed mix.

        Runs at each version change (just before the index sync whose
        merge policy it tunes).  The EWMAs smooth the batch-per-sync and
        rows-per-batch observations so one idle slide doesn't whipsaw
        the cap; the group estimate is rows-per-batch clipped to the
        occupied cell count (each query row probes at most its own home
        cell group).  Deliberately uses the machine at hand (calibrated
        if the planner ran, :meth:`MachineModel.nominal` otherwise) —
        retuning must never trigger a calibration probe mid-serve.
        """
        b = self._point_batches_since_sync
        self._batches_per_sync = 0.5 * self._batches_per_sync + 0.5 * b
        if b:
            self._rows_per_batch = (
                0.5 * self._rows_per_batch
                + 0.5 * (self._point_rows_since_sync / b)
            )
        self._point_batches_since_sync = 0
        self._point_rows_since_sync = 0
        machine = (
            self._machine if self._machine is not None
            else MachineModel.nominal()
        )
        model = CostModel(
            self.grid, PointSet(np.empty((0, 3))), machine
        )
        n_groups = int(min(
            max(1.0, self._rows_per_batch),
            max(1, self._index.occupied_cells),
        ))
        cap = model.choose_merge_cap(
            max(self._index.n, 1), n_groups, self._batches_per_sync
        )
        self.index_merge_cap = cap
        self._index.merge_segment_cap = cap

    # ------------------------------------------------------------------
    # Derived structures
    # ------------------------------------------------------------------
    def index(self) -> BucketIndex:
        """The bucket index over the current events (built lazily).

        Live sources register one CSR segment per tracked batch, so the
        index stays incrementally maintainable across window slides.
        """
        self._sync()
        if self._index is None:
            if self._inc is not None:
                self._index = BucketIndex(
                    self.grid, merge_segment_cap=self.index_merge_cap
                )
                self._index.sync(self._inc.live_batches, counter=self.counter)
            else:
                self._index = BucketIndex(
                    self.grid, self._coords(), self._static_weights,
                    counter=self.counter,
                    merge_segment_cap=self.index_merge_cap,
                )
        return self._index

    def _threaded_build_wins(self, coords: np.ndarray, P: int) -> bool:
        """Whether the bbox-sharded threads path should build the volume.

        Materialisation happens exactly when the planner predicts enough
        (repeated) lookups to amortise a build, so the build itself is
        worth planning: with a calibrated machine at hand the cost model
        prices serial vs threaded stamping.  Without one (pinned-backend
        callers that never planned) the build stays serial — guessing
        would either force a calibration or risk allocating shard
        buffers unpriced.  The feasibility check caps the planned shard
        buffers at ``max(2, P/2)`` volumes' worth — at least 2x below
        the ``P`` replicas the DR trade would allocate (clustered shards
        measure ~1.1 volumes total), so a serving build can never
        quietly regress to DR-scale transient memory: scattered batches
        whose bboxes approach ``P`` full grids are refused, not
        attempted.
        """
        if P <= 1 or coords.shape[0] == 0 or self._machine is None:
            return False
        model = CostModel(
            self.grid, PointSet(coords), self._machine,
            memory_budget_bytes=self._materialize_budget(P),
        )
        threaded = model.predict_pb_sym_threads(P)
        return threaded.feasible and threaded.seconds < model.predict_pb_sym()

    def materialize(self) -> Volume:
        """Force-build (or fetch) the volume backing the lookup plan.

        Static builds route through
        :func:`~repro.parallel.executors.run_threaded_stamping` (with
        ``P="auto"`` bbox shards) whenever the cost model predicts the
        threaded build wins; weighted events stamp through the engine's
        weighted mode, normalised by total weight.
        """
        self._sync()
        if self._volume is None:
            if self._inc is not None:
                self._volume = self._inc.volume().data
                self._volume_build_backend = "incremental"
            else:
                vol = self.grid.allocate()
                self.counter.init_writes += vol.size
                coords = self._coords()
                if coords.shape[0]:
                    P = resolve_shard_count("auto")
                    if self._threaded_build_wins(coords, P):
                        run_threaded_stamping(
                            vol, self.grid, self.kernel, coords,
                            self._norm(), self.counter, P,
                            weights=self._static_weights,
                        )
                        self._volume_build_backend = f"threads[{P}]"
                    else:
                        stamp_batch(
                            vol, self.grid, self.kernel, coords,
                            self._norm(), self.counter,
                            weights=self._static_weights,
                        )
                        self._volume_build_backend = "stamp"
                self._volume = vol
            self._volume_builds += 1
        return Volume(self._volume, self.grid)

    def _materialize_budget(self, P: int) -> int:
        """Transient-memory cap for a threaded volume build: shard
        buffers at most ``max(2, P/2)`` volumes — at least 2x below the
        ``P`` replicas of the DR trade (clustered shards measure ~1.1
        volumes total)."""
        return (1 + max(2, P // 2)) * self.grid.grid_bytes

    def planner(self) -> QueryPlanner:
        """The query planner (calibrates the machine model on first use).

        The planner's model carries the same memory budget
        :meth:`materialize` enforces, so ``predict_materialize`` prices
        the build the service will *actually* run: a threaded build the
        budget would refuse is priced serial, never assumed.
        """
        self._sync()
        if self._planner is None:
            if self._machine is None:
                from .calibrate import calibrate_serving

                self._machine = calibrate_serving()
            model = CostModel(
                self.grid, PointSet(self._coords()), self._machine,
                memory_budget_bytes=self._materialize_budget(
                    resolve_shard_count("auto")
                ),
            )
            self._planner = QueryPlanner(model)
        return self._planner

    def _resolve_backend(
        self, backend: Optional[str], eps: Optional[float] = None
    ) -> Tuple[Optional[str], Optional[str]]:
        """``(pinned_backend, why)``; ``(None, None)`` = planner's choice.

        Weighted events are no longer pinned to the direct path: the
        engine's weighted stamp mode materialises ``sum w_i k / (W hs^2
        ht)`` volumes, so the planner prices both backends for them too.
        ``"approx"`` is pinnable only alongside an ``eps`` — without a
        budget there is no approximate plan to force.
        """
        choice = backend if backend is not None else self.backend
        if choice == "auto":
            return None, None
        allowed = ("direct", "lookup", "approx") if eps is not None \
            else ("direct", "lookup")
        if choice not in allowed:
            raise ValueError(
                f"backend must be 'auto' or one of {allowed}, got {choice!r}"
            )
        return choice, "forced by caller"

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query_points(
        self,
        queries: np.ndarray,
        *,
        backend: Optional[str] = None,
        eps: Optional[float] = None,
        seed: int = 0,
        plan_out: Optional[list] = None,
    ) -> np.ndarray:
        """Densities at ``(m, 3)`` query locations.

        ``eps`` is the per-request relative error budget: ``None`` (the
        default) serves exactly; a positive value admits the approximate
        importance-sampling backend wherever the planner prices it below
        both exact plans (``seed`` fixes its sample stream — same batch,
        same budget, same seed is bit-reproducible).  ``plan_out``, when
        a list, receives the :class:`QueryPlan` used — observability
        without changing the return type.
        """
        self._sync()
        q = np.ascontiguousarray(np.asarray(queries, dtype=np.float64))
        if q.ndim != 2 or q.shape[1] != 3:
            raise ValueError(f"expected (m, 3) queries, got {q.shape}")
        if eps is not None and not float(eps) > 0.0:
            raise ValueError(f"eps must be positive or None, got {eps!r}")
        if q.shape[0] == 0:
            return np.empty(0, dtype=np.float64)
        if self._inc is not None:
            self._point_batches_since_sync += 1
            self._point_rows_since_sync += q.shape[0]
        force, force_reason = self._resolve_backend(backend, eps)
        # Cache before planning: a hit must not pay the planner's O(n)
        # estimates.  Off voxel centers the two backends differ (exact vs
        # interpolated), so auto mode keys its own entries — a repeated
        # auto query always returns the same answer within a version,
        # never a pinned call's value from the other physical plan.  The
        # error-budget policy is part of the key: an exact request can
        # never alias an approximate result for the same batch (nor one
        # sampled under a different budget or seed).
        digest = digest_queries(q)
        cache_tag = force if force is not None else "auto"
        eps_key: Tuple = (
            ("exact",) if eps is None else ("eps", float(eps), int(seed))
        )
        # The compute policy joins the key: backends agree only to
        # rtol=1e-12, so a shared cache must never serve one backend's
        # ulps for another's request.
        key = QueryCache.make_key(
            self.version, "points", cache_tag, self.compute, digest, *eps_key
        )
        cached = self.cache.get(key)
        if cached is not None and plan_out is None:
            return cached
        plan = self.planner().plan_points(
            self.index(), q, volume_ready=self._volume is not None,
            eps=eps, force=force, force_reason=force_reason,
            compute=self.compute,
        ) if force is None or plan_out is not None else None
        if plan is not None:
            self._record_plan(plan)
            if plan_out is not None:
                plan_out.append(plan)
        if cached is not None:
            return cached
        chosen = plan.backend if plan is not None else force
        compute = (
            plan.compute if plan is not None
            else (self.compute if self.compute != "auto" else DEFAULT_BACKEND)
        )
        if chosen in ("approx", "direct"):
            self._compute_choices[compute] = (
                self._compute_choices.get(compute, 0) + 1
            )
        if chosen == "approx":
            out = approx_sum(
                self.index(), q, self.kernel, self._norm(), self.counter,
                eps=float(eps), seed=seed, stats_out=self._approx_stats,
                compute=compute,
            )
            self.counter.queries_approx += q.shape[0]
            self._eps_requested_sum += float(eps) * q.shape[0]
        elif chosen == "direct":
            out = direct_sum(
                self.index(), q, self.kernel, self._norm(), self.counter,
                compute=compute,
            )
            self.counter.queries_exact += q.shape[0]
        else:
            out = sample_volume(self.materialize().data, self.grid, q)
            out = self._patch_off_domain(q, out)
            self.counter.queries_exact += q.shape[0]
        self._backend_calls[chosen] += 1
        out.flags.writeable = False
        self.cache.put(key, out, out.nbytes)
        return out

    def _patch_off_domain(self, q: np.ndarray, out: np.ndarray) -> np.ndarray:
        """Direct-sum the queries outside the domain box on the lookup path.

        Trilinear sampling clamps to the edge voxel, which would serve the
        boundary plateau forever off-domain while the direct backend
        returns the true (decaying-to-zero) estimator value — the same
        sentinel would flip answers with the planner's choice.  Routing
        the off-domain rows through the index keeps the two backends
        interchangeable everywhere.
        """
        d = self.grid.domain
        outside = (
            (q[:, 0] < d.x0) | (q[:, 0] > d.x0 + d.gx)
            | (q[:, 1] < d.y0) | (q[:, 1] > d.y0 + d.gy)
            | (q[:, 2] < d.t0) | (q[:, 2] > d.t0 + d.gt)
        )
        if outside.any():
            out = out.copy()
            out[outside] = direct_sum(
                self.index(), q[outside], self.kernel, self._norm(),
                self.counter,
            )
        return out

    def query_slice(
        self, T: int, *, backend: Optional[str] = None
    ) -> RegionResult:
        """The full ``(Gx, Gy)`` density slice at voxel time ``T``."""
        return self.query_region(slice_window(self.grid, T), backend=backend)

    def query_region(
        self,
        window: VoxelWindow | Tuple[int, int, int, int, int, int],
        *,
        backend: Optional[str] = None,
        plan_out: Optional[list] = None,
    ) -> RegionResult:
        """Density over a voxel window ``[x0:x1) x [y0:y1) x [t0:t1)``.

        Lookup plans return a **view** of the materialised volume (zero
        copy); direct plans stamp a fresh
        :class:`~repro.core.regions.RegionBuffer` covering only the
        window.  Both are read-only and cache-shared.
        """
        self._sync()
        if not isinstance(window, VoxelWindow):
            window = VoxelWindow(*window)
        window = window.intersect(self.grid.full_window())
        if window.empty:
            raise ValueError(f"region window is empty on this grid: {window}")
        force, force_reason = self._resolve_backend(backend)
        # Cache before planning (see query_points): hits skip the
        # planner's O(n) region estimate entirely.  Unlike point queries,
        # region extracts are bit-identical across backends (both are the
        # stamped grid values), so auto mode may reuse any variant.
        wkey = (window.x0, window.x1, window.y0, window.y1, window.t0, window.t1)
        variants = (force,) if force is not None else ("direct", "lookup")
        cached = self.cache.get_first(
            [QueryCache.make_key(self.version, "region", b, wkey)
             for b in variants]
        )
        if cached is not None and plan_out is None:
            return cached
        plan = self.planner().plan_region(
            window, volume_ready=self._volume is not None,
            force=force, force_reason=force_reason,
        ) if force is None or plan_out is not None else None
        if plan is not None:
            self._record_plan(plan)
            if plan_out is not None:
                plan_out.append(plan)
        if cached is not None:
            return cached
        chosen = plan.backend if plan is not None else force
        if chosen == "direct":
            result = direct_region(
                self.grid, self.kernel, self._coords(), window,
                self._norm(), self.counter, weights=self._static_weights,
            )
        else:
            result = region_view(self.materialize().data, window)
        self._backend_calls[chosen] += 1
        # Views alias the materialised volume: no extra payload bytes.
        self.cache.put(
            QueryCache.make_key(self.version, "region", chosen, wkey),
            result, 0 if result.is_view else result.data.nbytes,
        )
        return result

    # ------------------------------------------------------------------
    def _record_plan(self, plan: QueryPlan) -> None:
        """Tally a planner verdict for the observability stats."""
        key = f"{plan.kind}:{plan.backend}"
        self._plan_decisions[key] = self._plan_decisions.get(key, 0) + 1

    def _compute_stats(self) -> Dict[str, object]:
        """The ``compute`` observability blob: requested policy, registry
        state, per-plan choices, actual dispatches, and JIT warmup —
        warmup is one-time compile cost a backend paid on first touch,
        reported separately so steady-state rates stay honest."""
        warmup = {
            name: get_backend(name).warmup_seconds
            for name in available_backends()
            if get_backend(name).warmup_seconds > 0.0
        }
        return {
            "requested": self.compute,
            "available": list(available_backends()),
            "chosen": dict(self._compute_choices),
            "dispatches": dict(self.counter.backend_dispatches),
            "jit_warmup_seconds": warmup,
        }

    def stats(self) -> Dict[str, object]:
        """Serving counters: cache behaviour, backend mix, builds, index
        segment gauges, slide-pipeline work (slab retirement, segment
        merging, compaction debt), and planner decisions — the JSON blob
        ``repro query --stats`` prints for load balancers and
        dashboards."""
        cache = self.cache.stats()
        lookups = cache["hits"] + cache["misses"]
        c = self.counter
        work = {
            "index_events_bucketed": c.index_events_bucketed,
            "index_events_retired": c.index_events_retired,
            "index_segments_merged": c.index_segments_merged,
            "index_rows_compacted": c.index_rows_compacted,
            "query_cohorts": c.query_cohorts,
            "queries_exact": c.queries_exact,
            "queries_approx": c.queries_approx,
            "sample_rows_drawn": c.sample_rows_drawn,
        }
        if self._inc is not None:
            # The live source's own slide gauges (slab subtractions vs
            # straddle restamps — the O(delta) retirement evidence).
            ic = self._inc.counter
            work["slab_buffers_retired"] = ic.slab_buffers_retired
            work["slab_restamp_points"] = ic.slab_restamp_points
        # Realised-vs-requested ε of the approximate tier: the mean
        # requested budget against the mean realised relative standard
        # error the sampler's own stop rule recorded per query.
        aq = int(self._approx_stats.get("queries", 0))
        approx = {
            "queries": aq,
            "eps_requested_mean": (
                self._eps_requested_sum / c.queries_approx
                if c.queries_approx else None
            ),
            "eps_realised_mean": (
                self._approx_stats.get("rel_se_sum", 0.0) / aq
                if aq else None
            ),
            "sample_rows_drawn": int(
                self._approx_stats.get("sample_rows_drawn", 0)
            ),
            "candidate_rows": int(
                self._approx_stats.get("candidate_rows", 0)
            ),
            "exact_fallbacks": int(
                self._approx_stats.get("exact_fallbacks", 0)
            ),
        }
        return {
            "version": self.version,
            "events": int(self._coords().shape[0]),
            "weighted": self.weighted,
            "volume_ready": self._volume is not None,
            "volume_builds": self._volume_builds,
            "volume_build_backend": self._volume_build_backend,
            "backend_calls": dict(self._backend_calls),
            "planner_decisions": dict(self._plan_decisions),
            "compute": self._compute_stats(),
            "index_merge_cap": self.index_merge_cap,
            "cache": cache,
            "cache_hit_ratio": (cache["hits"] / lookups) if lookups else None,
            "approx": approx,
            "work": work,
            "index": (
                self._index.stats() if self._index is not None else None
            ),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        src = "live" if self._inc is not None else "static"
        return (
            f"DensityService({src}, n={self._coords().shape[0]}, "
            f"grid={self.grid.shape}, backend={self.backend!r})"
        )


class ShardedDensityService:
    """Multi-process sharded serving: shard-owning workers behind one facade.

    Partitions the domain into ``workers`` disjoint x-slabs
    (:class:`~repro.serve.shard.ShardPlan`) and spawns one worker process
    per shard, each owning a private :class:`BucketIndex` (and, in live
    mode, a private :class:`~repro.core.incremental.IncrementalSTKDE`)
    over *its events only*.  Queries are scattered by home cell with a
    one-bandwidth halo — every shard whose owned interval intersects a
    query's kernel support computes an **unnormalised partial sum** — and
    the coordinator gathers, adds, and applies the global ``1 / (W hs^2
    ht)`` prefactor.  Because ownership is disjoint, the gathered sum
    re-associates (never re-weights) the single-process estimator:
    equivalence holds at ``rtol=1e-12``.

    Mutations route **only to affected shards**: ``add``/``remove``
    contact the owners of the touched rows, ``slide_window`` the owners
    of arriving rows plus shards whose earliest live event predates the
    horizon.  :attr:`counter`'s ``shard_messages`` / ``shard_rows_shipped``
    gauge that routing (observability ``stats`` traffic is deliberately
    excluded).

    Per batch the planner prices scatter/gather IPC against a local
    single-process plan (:meth:`~repro.serve.planner.QueryPlanner
    .plan_scatter`): static sources fall back to a lazily built local
    :class:`DensityService` when the batch is too small to amortise the
    round-trips; live sources always serve sharded (the events live in
    the workers — the plan is still recorded).

    Parameters
    ----------
    source:
        A :class:`PointSet` / ``(n, 3)`` array for a static (possibly
        weighted) snapshot, or ``None`` for a live sliding window fed
        through :meth:`add` / :meth:`slide_window`.
    grid:
        The serving grid (always required).
    workers:
        Worker process count (= shard count); ``"auto"`` takes the CPU
        affinity count.
    plan:
        Pre-built :class:`ShardPlan` (cuts are otherwise balanced on the
        snapshot's column histogram, uniform for an empty live start).
    backend:
        ``"auto"`` (planner decides per batch), ``"sharded"``, or
        ``"local"`` (static sources only).
    machine:
        Calibrated :class:`MachineModel`; calibrated lazily
        (:func:`~repro.serve.calibrate.calibrate_ipc` over
        :func:`~repro.serve.calibrate.calibrate_serving`) on first auto
        plan when omitted.
    max_restarts:
        Per-shard restart budget: how many times a dead or wedged
        worker is respawned (with its state replayed from the
        coordinator's mutation log) before the shard is declared down.
    restart_backoff_s:
        Base respawn backoff; attempt ``k`` waits ``2**k`` times this.
    request_timeout:
        Per-request deadline (seconds) on every worker round-trip, so a
        wedged worker surfaces as a typed
        :class:`~repro.serve.errors.ShardTimeout` (and is recovered)
        instead of hanging the gather.  ``None`` waits forever.
    fault_plan:
        Optional :class:`~repro.serve.faults.FaultPlan` injected into
        the workers (chaos testing); defaults to the plan in the
        ``REPRO_FAULTS`` environment variable, if any.
    on_shard_failure:
        Default read policy when a shard stays failed after recovery:
        ``"raise"`` (typed :class:`~repro.serve.errors.ShardFailed`) or
        ``"partial"`` — gather the surviving shards and return a
        coverage-tagged :class:`~repro.serve.errors.PartialResult`.
        Overridable per call on :meth:`query_points`.

    Use as a context manager (or call :meth:`close`) so the worker pool
    is always torn down::

        with ShardedDensityService(points, grid, workers=4) as svc:
            dens = svc.query_points(queries)
    """

    def __init__(
        self,
        source: Optional[Union[PointSet, np.ndarray]],
        grid: GridSpec,
        *,
        workers: Union[int, str] = "auto",
        plan: Optional[ShardPlan] = None,
        kernel: str | KernelPair = "epanechnikov",
        backend: str = "auto",
        compute: str = DEFAULT_BACKEND,
        machine: Optional[MachineModel] = None,
        counter: Optional[WorkCounter] = None,
        index_merge_cap: Union[int, str, None] = 16,
        t_slab_voxels="auto",
        max_restarts: int = 3,
        restart_backoff_s: float = 0.05,
        request_timeout: Optional[float] = 30.0,
        fault_plan: Optional[FaultPlan] = None,
        on_shard_failure: str = "raise",
    ) -> None:
        if backend not in ("auto", "sharded", "local"):
            raise ValueError(
                f"backend must be 'auto', 'sharded' or 'local', "
                f"got {backend!r}"
            )
        if on_shard_failure not in ("raise", "partial"):
            raise ValueError(
                f"on_shard_failure must be 'raise' or 'partial', "
                f"got {on_shard_failure!r}"
            )
        if compute != "auto":
            get_backend(compute)  # fail fast on unknown/unavailable names
        self.grid = grid
        self.kernel = get_kernel(kernel)
        self.backend = backend
        #: Pair-evaluation backend policy.  Workers are spawn-context
        #: processes, so they receive the *name* and resolve it against
        #: their own registry; ``"auto"`` is resolved per batch by the
        #: coordinator (the workers hold no planner) and shipped with the
        #: scattered rows.
        self.compute = compute
        self._compute_choices: Dict[str, int] = {}
        self.counter = counter if counter is not None else WorkCounter()
        self._machine = machine
        self._planner: Optional[QueryPlanner] = None
        self._closed = False
        self._version = 0
        self._plan_decisions: Dict[str, int] = {}
        self._backend_calls: Dict[str, int] = {"sharded": 0, "local": 0}
        self._local: Optional[DensityService] = None
        self._static_coords: Optional[np.ndarray] = None
        self._static_weights: Optional[np.ndarray] = None
        if source is None:
            self._live = True
            seed_coords = np.empty((0, 3), dtype=np.float64)
        else:
            self._live = False
            pts = source if isinstance(source, PointSet) else PointSet(source)
            self._static_coords = pts.coords
            self._static_weights = pts.weights
            seed_coords = pts.coords
        P = resolve_shard_count(workers)
        self.plan = plan if plan is not None else plan_shards(
            grid, seed_coords, P
        )
        # Workers' own merge policy stays fixed ("auto" adaptation is a
        # coordinator-side concern of the single-process service).
        worker_cap = 16 if index_merge_cap == "auto" else index_merge_cap
        self.on_shard_failure = on_shard_failure
        if fault_plan is None:
            fault_plan = FaultPlan.from_env()

        # Workers stamp with a concrete backend: "auto" is a per-batch
        # query-side decision, so stamping stays on the reference.
        worker_compute = compute if compute != "auto" else DEFAULT_BACKEND

        def _spawn(s: int, fp: Optional[FaultPlan]) -> ShardWorker:
            # ctx=None: each ShardWorker defaults to the spawn context.
            return ShardWorker(
                s, grid, self.kernel.name,
                merge_cap=worker_cap, t_slab=t_slab_voxels, ctx=None,
                fault_plan=fp, compute=worker_compute,
            )

        self._sup = ShardSupervisor(
            self.plan.n_shards, _spawn,
            counter=self.counter,
            max_restarts=max_restarts,
            backoff_s=restart_backoff_s,
            request_timeout=request_timeout,
            fault_plan=fault_plan,
            gauges_cb=self._apply_gauges,
        )
        # Coordinator routing state, refreshed from every mutation reply.
        self._shard_events = [0] * self.n_shards
        self._shard_weight = [0.0] * self.n_shards
        self._shard_min_t = [float("inf")] * self.n_shards
        if not self._live:
            self._distribute_static()

    @property
    def _workers(self):
        """The live worker handles (owned and replaced by the supervisor)."""
        return self._sup.workers

    # ------------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return self.plan.n_shards

    @property
    def version(self) -> int:
        """Bumped by every mutation (mirrors the live estimator's)."""
        return self._version

    @property
    def weighted(self) -> bool:
        return self._static_weights is not None

    @property
    def events(self) -> int:
        """Total live events across all shards."""
        return int(sum(self._shard_events))

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("ShardedDensityService is closed")

    def _norm(self) -> float:
        """Global estimator prefactor over the gathered partial sums."""
        w = float(sum(self._shard_weight))
        if w <= 0.0:
            return 0.0
        return 1.0 / (w * self.grid.hs * self.grid.hs * self.grid.ht)

    def _apply_gauges(self, s: int, gauges) -> None:
        events, weight, min_t = gauges
        self._shard_events[s] = events
        self._shard_weight[s] = weight
        self._shard_min_t[s] = min_t

    def _distribute_static(self) -> None:
        coords = self._static_coords
        weights = self._static_weights
        parts = self.plan.partition(coords)
        sends = []
        for s in range(self.n_shards):
            part_w = None if weights is None else weights[parts[s]]
            payload = (coords[parts[s]], part_w)
            self._sup.record(s, "static", payload)
            sends.append((s, "static", payload))
            self.counter.shard_messages += 1
            self.counter.shard_rows_shipped += int(parts[s].size)
        results, _ = self._sup.scatter(sends, on_failure="raise")
        for s in range(self.n_shards):
            self._apply_gauges(s, results[s])

    # ------------------------------------------------------------------
    # Planner
    # ------------------------------------------------------------------
    def planner(self) -> QueryPlanner:
        """The scatter planner (calibrates IPC rates on first use)."""
        if self._planner is None:
            if self._machine is None:
                from .calibrate import calibrate_ipc, calibrate_serving

                self._machine = calibrate_ipc(calibrate_serving())
            model = CostModel(
                self.grid, PointSet(np.empty((0, 3))), self._machine
            )
            self._planner = QueryPlanner(model)
        return self._planner

    def _est_candidates(self, m: int) -> int:
        """Crude candidate estimate: events under a uniform density times
        the 27-cell (one-bandwidth) neighbourhood's domain fraction."""
        n = self.events
        d = self.grid.domain
        vol = d.gx * d.gy * d.gt
        if vol <= 0.0 or n == 0:
            return 0
        frac = min(
            1.0,
            (27.0 * self.grid.hs * self.grid.hs * self.grid.ht) / vol,
        )
        return int(m * n * frac)

    def _resolve_compute(self, m: int) -> str:
        """Concrete pair-evaluation backend for one scattered batch.

        ``"auto"`` argmins the direct-query predictor over every
        registered backend at the coordinator (the workers hold no
        planner); strict improvement over the default keeps uncalibrated
        machines on the reference backend.
        """
        if self.compute != "auto":
            return self.compute
        model = self.planner().model
        cand = self._est_candidates(m)
        chosen = DEFAULT_BACKEND
        best = model.predict_direct_query(m, cand, compute=DEFAULT_BACKEND)
        for name in available_backends():
            if name == DEFAULT_BACKEND:
                continue
            cost = model.predict_direct_query(m, cand, compute=name)
            if cost < best:
                chosen, best = name, cost
        return chosen

    def _resolve_backend(self, backend: Optional[str]):
        choice = backend if backend is not None else self.backend
        if choice == "auto":
            if self._live:
                # The events live in the workers: a live window has no
                # local fallback, only the recorded plan.
                return "sharded", "live source serves sharded"
            return None, None
        if choice not in ("sharded", "local"):
            raise ValueError(
                f"backend must be 'auto', 'sharded' or 'local', "
                f"got {choice!r}"
            )
        if choice == "local" and self._live:
            raise ValueError(
                "live sources cannot serve locally — the events are "
                "owned by the worker processes"
            )
        return choice, "forced by caller"

    def _local_service(self) -> DensityService:
        """Lazily built single-process fallback over the static snapshot."""
        if self._local is None:
            src = PointSet(self._static_coords, self._static_weights)
            self._local = DensityService(
                src, self.grid, kernel=self.kernel,
                compute=self.compute,
                machine=self._machine, counter=self.counter,
            )
        return self._local

    def _record_plan(self, plan: ScatterPlan) -> None:
        key = f"scatter:{plan.backend}"
        self._plan_decisions[key] = self._plan_decisions.get(key, 0) + 1

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query_points(
        self,
        queries: np.ndarray,
        *,
        backend: Optional[str] = None,
        eps: Optional[float] = None,
        seed: int = 0,
        plan_out: Optional[list] = None,
        on_shard_failure: Optional[str] = None,
    ) -> np.ndarray:
        """Densities at ``(m, 3)`` query locations (scatter/gather).

        ``eps`` threads the per-request error budget down to the workers:
        each shard answers its scattered rows with an *unnormalised
        partial estimate* (exact when ``eps`` is ``None``, importance-
        sampled otherwise).  Ownership is disjoint, so partial
        Hansen–Hurwitz estimates over disjoint event subsets add exactly
        like exact partials — unbiasedness and the combined variance
        budget survive the gather, the same re-association argument as
        the sharded exact path.

        ``on_shard_failure`` picks the degraded-read policy when a shard
        stays failed after supervised recovery: ``"raise"`` surfaces the
        typed :class:`~repro.serve.errors.ShardFailed`; ``"partial"``
        returns the surviving shards' gather as a
        :class:`~repro.serve.errors.PartialResult` whose ``coverage`` is
        the mass-weighted fraction of total event weight that answered
        (the missing shards are a hole of exactly ``1 - coverage`` of
        the estimator's mass — a typed lower bound, never a silent
        error).  ``None`` uses the service default.
        """
        self._check_open()
        policy = (
            self.on_shard_failure
            if on_shard_failure is None else on_shard_failure
        )
        if policy not in ("raise", "partial"):
            raise ValueError(
                f"on_shard_failure must be 'raise' or 'partial', "
                f"got {policy!r}"
            )
        q = np.ascontiguousarray(np.asarray(queries, dtype=np.float64))
        if q.ndim != 2 or q.shape[1] != 3:
            raise ValueError(f"expected (m, 3) queries, got {q.shape}")
        if eps is not None and not float(eps) > 0.0:
            raise ValueError(f"eps must be positive or None, got {eps!r}")
        m = q.shape[0]
        if m == 0:
            return np.empty(0, dtype=np.float64)
        lo, hi = self.plan.scatter_spans(q[:, 0])
        fanout = int((hi - lo + 1).sum())
        force, force_reason = self._resolve_backend(backend)
        plan = None
        if force is None or plan_out is not None:
            plan = self.planner().plan_scatter(
                m, self._est_candidates(m), self.n_shards, fanout,
                force=force, force_reason=force_reason,
            )
            self._record_plan(plan)
            if plan_out is not None:
                plan_out.append(plan)
        chosen = plan.backend if plan is not None else force
        if chosen == "local":
            self._backend_calls["local"] += 1
            return self._local_service().query_points(q, eps=eps, seed=seed)
        out = np.zeros(m, dtype=np.float64)
        comp = self._resolve_compute(m)
        self._compute_choices[comp] = self._compute_choices.get(comp, 0) + 1
        sends = []
        shard_rows: Dict[int, np.ndarray] = {}
        for s in range(self.n_shards):
            rows = np.flatnonzero((lo <= s) & (s <= hi))
            if rows.size == 0:
                continue
            sends.append((
                s, "query_points",
                (q[rows], None if eps is None else float(eps), int(seed),
                 comp),
            ))
            shard_rows[s] = rows
            self.counter.shard_messages += 1
            self.counter.shard_rows_shipped += int(rows.size)
        results, failed = self._sup.scatter(sends, on_failure=policy)
        for s, partial in results.items():
            out[shard_rows[s]] += partial
            self.counter.shard_rows_shipped += int(shard_rows[s].size)
        out *= self._norm()
        self._backend_calls["sharded"] += 1
        if eps is not None:
            self.counter.queries_approx += m
        else:
            self.counter.queries_exact += m
        if failed:
            if not results:
                # Nothing survived: there is no partial to return.
                raise next(iter(failed.values()))
            self.counter.degraded_queries += m
            return PartialResult(
                out, self._coverage(failed), sorted(failed)
            )
        return out

    def _coverage(self, failed) -> float:
        """Mass-weighted surviving fraction for a degraded gather."""
        total = float(sum(self._shard_weight))
        if total <= 0.0:
            return 1.0
        lost = float(sum(self._shard_weight[s] for s in failed))
        return max(0.0, 1.0 - lost / total)

    def query_slice(
        self, T: int, *, backend: Optional[str] = None
    ) -> RegionResult:
        """The full ``(Gx, Gy)`` density slice at voxel time ``T``."""
        return self.query_region(slice_window(self.grid, T), backend=backend)

    def query_region(
        self,
        window: VoxelWindow | Tuple[int, int, int, int, int, int],
        *,
        backend: Optional[str] = None,
    ) -> RegionResult:
        """Density over a voxel window, summed from per-shard stamps.

        Every shard owning events within one halo of the window stamps
        them (unnormalised) into a window-covering region buffer; the
        coordinator sums the arrays and applies the prefactor — the same
        partition-exactness argument as point queries, per voxel.
        """
        self._check_open()
        if not isinstance(window, VoxelWindow):
            window = VoxelWindow(*window)
        window = window.intersect(self.grid.full_window())
        if window.empty:
            raise ValueError(f"region window is empty on this grid: {window}")
        force, _ = self._resolve_backend(backend)
        if force == "local":
            self._backend_calls["local"] += 1
            return self._local_service().query_region(window)
        shards = self.plan.shards_for_window(window)
        wkey = (window.x0, window.x1, window.y0, window.y1,
                window.t0, window.t1)
        sends = []
        for s in shards:
            sends.append((int(s), "query_region", wkey))
            self.counter.shard_messages += 1
        results, _ = self._sup.scatter(sends, on_failure="raise")
        data = np.zeros(window.shape, dtype=np.float64)
        for s in shards:
            part = results[int(s)]
            data += part
            self.counter.shard_rows_shipped += int(part.size)
        data *= self._norm()
        data.flags.writeable = False
        self._backend_calls["sharded"] += 1
        return RegionResult(window, data, "sharded")

    # ------------------------------------------------------------------
    # Mutations (live sources)
    # ------------------------------------------------------------------
    def _check_live(self, op: str) -> None:
        if not self._live:
            raise RuntimeError(
                f"{op} requires a live source; this service serves a "
                f"static snapshot"
            )

    def _route_rows(self, op: str, coords: np.ndarray) -> int:
        """Send ``op`` with each shard's owned rows to owners only.

        Each routed batch is recorded into the supervisor's mutation log
        *before* the send — the invariant replay-based recovery rests
        on: a worker that dies mid-mutation is respawned and the replay
        itself completes the mutation.
        """
        parts = self.plan.partition(coords)
        contacted = [s for s in range(self.n_shards) if parts[s].size]
        sends = []
        for s in contacted:
            payload = coords[parts[s]]
            self._sup.record(s, op, payload)
            sends.append((s, op, payload))
            self.counter.shard_messages += 1
            self.counter.shard_rows_shipped += int(parts[s].size)
        results, _ = self._sup.scatter(sends, on_failure="raise")
        for s in contacted:
            self._apply_gauges(s, results[s])
        self._version += 1
        return len(contacted)

    def add(self, points: Union[PointSet, np.ndarray]) -> None:
        """Insert events, routed to their owning shards only."""
        self._check_open()
        self._check_live("add")
        coords = IncrementalSTKDE._coerce_unweighted(points)
        if coords.shape[0] == 0:
            return
        self._route_rows("add", np.asarray(coords, dtype=np.float64))

    def remove(self, points: Union[PointSet, np.ndarray]) -> None:
        """Retire events, routed to their owning shards only.

        Ownership is a pure function of the x coordinate, so a removed
        row always reaches the shard that stamped it.
        """
        self._check_open()
        self._check_live("remove")
        coords = IncrementalSTKDE._coerce_unweighted(points)
        if coords.shape[0] == 0:
            return
        self._route_rows("remove", np.asarray(coords, dtype=np.float64))

    def slide_window(
        self, new_points: Union[PointSet, np.ndarray], t_horizon: float
    ) -> int:
        """Advance the window: O(affected shards), not O(workers).

        Contacts only shards that receive arriving rows or whose
        earliest live event predates ``t_horizon`` — an idle shard
        (nothing arriving, nothing expiring) gets **no message**, which
        is the routing contract ``shard_messages`` gauges.
        """
        self._check_open()
        self._check_live("slide_window")
        coords = np.asarray(
            IncrementalSTKDE._coerce_unweighted(new_points), dtype=np.float64
        )
        t_horizon = float(t_horizon)
        parts = self.plan.partition(coords)
        contacted = [
            s for s in range(self.n_shards)
            if parts[s].size or self._shard_min_t[s] < t_horizon
        ]
        sends = []
        for s in contacted:
            payload = (coords[parts[s]], t_horizon)
            self._sup.record(s, "slide", payload)
            sends.append((s, "slide", payload))
            self.counter.shard_messages += 1
            self.counter.shard_rows_shipped += int(parts[s].size)
        results, _ = self._sup.scatter(sends, on_failure="raise")
        retired = 0
        for s in contacted:
            reply = results[s]
            retired += int(reply[0])
            self._apply_gauges(s, reply[1:])
        self._version += 1
        return retired

    # ------------------------------------------------------------------
    # Observability / lifecycle
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Coordinator and per-worker serving gauges.

        ``work`` is the coordinator's counter merged with every worker's
        (one :class:`WorkCounter` per process, merged here — the
        cross-process analogue of the threaded schedulers' per-task
        counter merge); ``workers`` keeps the per-shard views.  The
        ``stats`` round-trips themselves are *not* counted into
        ``shard_messages`` so the routing gauge stays about serving
        traffic.
        """
        self._check_open()
        sends = [(s, "stats", None) for s in range(self.n_shards)]
        results, failed = self._sup.scatter(sends, on_failure="partial")
        per_worker = [
            results.get(s, {"down": True, "events": 0, "weight": 0.0})
            for s in range(self.n_shards)
        ]
        merged = self.counter.copy()
        for ws in per_worker:
            if "work" in ws:
                merged.merge(WorkCounter(**ws["work"]))
        recovery = self._sup.stats()
        recovery["down_shards"] = sorted(
            set(recovery["down_shards"]) | set(failed)
        )
        return {
            "version": self._version,
            "events": self.events,
            "weighted": self.weighted,
            "n_shards": self.n_shards,
            "cuts": [float(c) for c in self.plan.cuts],
            "shard_events": list(self._shard_events),
            "backend_calls": dict(self._backend_calls),
            "planner_decisions": dict(self._plan_decisions),
            "compute": {
                "requested": self.compute,
                "available": list(available_backends()),
                "chosen": dict(self._compute_choices),
                # Dispatches merged across worker processes, so sharded
                # backend traffic stays observable at the coordinator.
                "dispatches": dict(merged.backend_dispatches),
            },
            "work": merged.as_dict(),
            "workers": per_worker,
            "recovery": recovery,
            "local": (
                self._local.stats() if self._local is not None else None
            ),
        }

    def close(self, grace: Optional[float] = None) -> None:
        """Shut every worker down (idempotent; errors don't leak workers).

        Safe after any fault: dead workers are reaped without secondary
        pipe errors, survivors get a graceful close within ``grace``.
        """
        if self._closed:
            return
        self._closed = True
        self._sup.close(grace=grace)

    def __enter__(self) -> "ShardedDensityService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except BaseException:
            pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        src = "live" if self._live else "static"
        return (
            f"ShardedDensityService({src}, shards={self.n_shards}, "
            f"events={self.events}, grid={self.grid.shape})"
        )
