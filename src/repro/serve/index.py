"""Spatial bucket index for direct kernel-sum density queries.

The grid algorithms answer "what is the density *everywhere*" by
materialising a volume; a serving layer must also answer "what is the
density *here, now*" without touching ``Theta(Gx * Gy * Gt)`` memory.
Following the bucketed evaluation idea of hashing-based KDE estimators
(Charikar & Siminelakis), :class:`BucketIndex` partitions the events into
cells of size ``hs x hs x ht`` — exactly one bandwidth per axis — so the
kernel support of any query location is covered by the 3 x 3 x 3 cell
neighbourhood around it:

* a point within ``hs`` of the query along x differs by less than one
  cell width, hence lands in an adjacent cell (same for y and t),
* therefore ``candidates(q)`` has **no false negatives**: every event
  whose kernel reaches ``q`` is returned, and the exact ``d < hs`` /
  ``|dt| <= ht`` masks of the engine discard the rest.

Incremental segments
--------------------
The index is a collection of **per-batch CSR segments** mirroring the
tracked-batch design of :class:`repro.core.incremental.IncrementalSTKDE`:
each segment owns rows of the shared coordinate storage plus one
sorted-cell permutation, built in O(batch) with three vectorised passes.
:meth:`sync` diffs the estimator's live batches against the registered
segments and appends/retires only the delta — the batches whose
*membership* changed.  For a time-stratified feed (the normal
sliding-window shape: each ``add`` is one or more time slabs) a slide
re-buckets only the arriving batch; a slab the horizon cuts *through* is
split by the estimator (survivors get a new batch id) and its survivors
are re-bucketed too, so the true bound is O(arriving + straddling
slabs), degrading toward O(n) only when every live batch mixes old and
new timestamps.  The ``index_events_bucketed`` work counter records
exactly what was re-bucketed (the CI smoke gates on it).

Segment merging
---------------
Probe cost is charged per (cell-group x segment), so a long-lived window
fed by tiny batches would accumulate segments without bound.
:meth:`sync` therefore applies a **merge policy**: when the live segment
count exceeds ``merge_segment_cap``, the oldest segments are coalesced
into one consolidated CSR segment — rows are *copied* member-major and
their already-computed cells merge-sorted, no event is ever re-bucketed.
The consolidated segment remembers its members, so a later slide that
retires one member filters that member's rows out of the run table in
one vectorised pass (again: no cell recomputed, no sort rerun).  Steady
state under any feed granularity is therefore at most
``merge_segment_cap`` segments.

Amortised compaction
--------------------
Retired rows are left dead in the storage (``remove_segment`` is pure
bookkeeping) and tracked as a free list of gaps.  ``add_segment`` reuses
gaps directly, and :meth:`sync` pays the remaining **compaction debt**
off the serving path: trailing gaps are truncated and high segments are
relocated into low gaps until the debt falls under
:attr:`dead_row_budget` — work proportional to the rows retired since
the last sync, never an O(live) sweep inside a ``remove_segment`` on the
query path.  A segment too large for any single gap is relocated in
**split spans** (member-boundary splits for consolidated segments,
arbitrary splits otherwise), so a fragmented tail no longer cliffs into
a full compaction; the O(live) compact survives only as a rare safety
valve (a member larger than every gap, or heavy retirement with no
syncs), so memory stays bounded under any retirement pattern.

Query batches are grouped by cell (:meth:`group_queries`) so concurrent
queries landing in the same neighbourhood share one candidate gather, and
:meth:`candidate_runs` exposes every cell's 27-neighbourhood as
``(start, length)`` runs into one flat permutation array
(:attr:`order_store`) — the gather layout the cohort-vectorised engine
(:func:`repro.serve.engine.direct_sum`) turns into ``(Q, K)`` candidate
blocks without any per-group Python dispatch.
"""

from __future__ import annotations

import bisect
import math
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..core.grid import GridSpec
from ..core.instrument import WorkCounter, null_counter

__all__ = ["BucketIndex"]

#: The 3x3x3 neighbourhood collapses to 9 (x, y) rows per segment — cells
#: contiguous in t are contiguous in the flat cell id, so each row is one
#: run of the segment's sorted-cell array.
_RUNS_PER_SEGMENT = 9


class _Segment:
    """One segment's CSR bucket data: storage rows plus a cell-sorted view.

    ``start`` is the first row of the segment in the index's coordinate
    storage (a segment's live rows are ascending and, between partial
    retirements, contiguous), ``cells_sorted`` the ascending flat cell
    ids of its events, ``order_base`` the segment's span inside the
    shared :attr:`BucketIndex.order_store` permutation (global row
    indices sorted by cell), and ``row_hi`` one past the segment's
    highest storage row (the storage high-water mark used by trailing-gap
    truncation).

    A **consolidated** segment (the merge policy's product) additionally
    carries ``members``: ``[member_id, rel_start, n_rows]`` triples
    recording which original batch owns which member-major sub-range of
    the segment's rows, so a member can later be retired by filtering —
    never by re-bucketing.  ``members is None`` marks a simple
    (single-batch) segment.
    """

    __slots__ = (
        "seg_id", "start", "n", "cells_sorted", "order_base", "row_hi",
        "members",
    )

    def __init__(
        self, seg_id: object, start: int, n: int,
        cells_sorted: np.ndarray, order_base: int,
        members: Optional[List[List]] = None,
    ) -> None:
        self.seg_id = seg_id
        self.start = start
        self.n = n
        self.cells_sorted = cells_sorted
        self.order_base = order_base
        self.row_hi = start + n
        self.members = members

    def member_ids(self) -> Tuple[object, ...]:
        """Original batch ids this segment answers for."""
        if self.members is None:
            return (self.seg_id,)
        return tuple(m[0] for m in self.members)


class BucketIndex:
    """Segmented CSR bucket index over events, cells of ``hs x hs x ht``.

    Parameters
    ----------
    grid:
        The grid specification supplying the domain box and bandwidths
        (only the *domain* and bandwidths matter — the index never touches
        voxels).
    coords:
        Optional ``(n, 3)`` event coordinates in domain space, registered
        as one static segment.  ``None`` starts an empty index to be fed
        through :meth:`add_segment` / :meth:`sync`.
    weights:
        Optional ``(n,)`` per-event weights, carried alongside the
        coordinates so weighted direct sums gather them in the same pass.
    merge_segment_cap:
        Live-segment cap enforced by :meth:`sync`'s merge policy
        (``None`` disables merging).  Bounds the ``c_qprobe``-charged
        probe cost of long-lived windows fed by tiny batches;
        :meth:`repro.analysis.model.CostModel.predict_merge` prices the
        trade.
    """

    __slots__ = (
        "grid", "nx", "ny", "nt", "merge_segment_cap",
        "_coords", "_weights", "_order", "_size", "_dead", "_gaps",
        "_segments", "_cell_counts", "_box_counts", "_merge_seq",
        "events_bucketed", "events_retired", "segments_merged",
        "rows_compacted",
    )

    def __init__(
        self,
        grid: GridSpec,
        coords: Optional[np.ndarray] = None,
        weights: Optional[np.ndarray] = None,
        counter: Optional[WorkCounter] = None,
        *,
        merge_segment_cap: Optional[int] = 16,
    ) -> None:
        if merge_segment_cap is not None and merge_segment_cap < 2:
            raise ValueError("merge_segment_cap must be >= 2 or None")
        self.grid = grid
        self.merge_segment_cap = merge_segment_cap
        d = grid.domain
        self.nx = max(1, math.ceil(d.gx / grid.hs))
        self.ny = max(1, math.ceil(d.gy / grid.hs))
        self.nt = max(1, math.ceil(d.gt / grid.ht))
        self._coords = np.empty((0, 3), dtype=np.float64)
        self._weights: Optional[np.ndarray] = None
        self._order = np.empty(0, dtype=np.int64)
        self._size = 0  # rows used in the storage (live + dead)
        self._dead = 0  # retired rows awaiting reuse / compaction
        self._gaps: List[List[int]] = []  # free list: sorted [start, len]
        self._segments: Dict[object, _Segment] = {}
        self._cell_counts = np.zeros(self.n_cells, dtype=np.int64)
        self._box_counts: Optional[np.ndarray] = None  # lazy 27-box table
        self._merge_seq = 0
        #: Lifetime sync gauges (mirrored into WorkCounter when passed).
        self.events_bucketed = 0
        self.events_retired = 0
        self.segments_merged = 0
        self.rows_compacted = 0
        if coords is not None:
            self.add_segment("static", coords, weights, counter)
        elif weights is not None:
            raise ValueError("weights require coords")

    # ------------------------------------------------------------------
    # Storage
    # ------------------------------------------------------------------
    @property
    def coords(self) -> np.ndarray:
        """The shared coordinate storage (may contain retired rows; only
        rows reachable through a segment's runs are ever gathered)."""
        return self._coords[: self._size]

    @property
    def weights(self) -> Optional[np.ndarray]:
        """Per-row weights aligned with :attr:`coords` (``None`` when no
        segment ever carried weights)."""
        if self._weights is None:
            return None
        return self._weights[: self._size]

    @property
    def order_store(self) -> np.ndarray:
        """The flat cell-sorted permutation all segment runs index into."""
        return self._order

    def _grow_rows(self, extra: int) -> None:
        need = self._size + extra
        cap = self._coords.shape[0]
        if need > cap:
            new_cap = max(need, 2 * cap, 64)
            grown = np.empty((new_cap, 3), dtype=np.float64)
            grown[: self._size] = self._coords[: self._size]
            self._coords = grown
            if self._weights is not None:
                gw = np.ones(new_cap, dtype=np.float64)
                gw[: self._size] = self._weights[: self._size]
                self._weights = gw

    def _grow_order(self, extra: int) -> None:
        ocap = self._order.shape[0]
        used = self._order_high
        if used + extra > ocap:
            new_cap = max(used + extra, 2 * ocap, 64)
            grown = np.empty(new_cap, dtype=np.int64)
            grown[:used] = self._order[:used]
            self._order = grown

    @property
    def _order_high(self) -> int:
        """High-water mark of the order store (live segments only; a dead
        span above every live one is reused by the next append)."""
        hi = 0
        for s in self._segments.values():
            hi = max(hi, s.order_base + s.n)
        return hi

    # ------------------------------------------------------------------
    # Row free list (dead rows awaiting reuse or compaction)
    # ------------------------------------------------------------------
    def _add_gap(self, start: int, length: int) -> None:
        """Register a dead row range, coalescing with adjacent gaps."""
        i = bisect.bisect_left([g[0] for g in self._gaps], start)
        if i > 0 and self._gaps[i - 1][0] + self._gaps[i - 1][1] == start:
            g = self._gaps[i - 1]
            g[1] += length
            i -= 1
        else:
            self._gaps.insert(i, [start, length])
            g = self._gaps[i]
        if i + 1 < len(self._gaps) and g[0] + g[1] == self._gaps[i + 1][0]:
            g[1] += self._gaps[i + 1][1]
            self._gaps.pop(i + 1)

    def _free_rows(self, rows_sorted: np.ndarray) -> None:
        """Mark ascending storage rows dead (registered as gap runs)."""
        if rows_sorted.size == 0:
            return
        breaks = np.flatnonzero(np.diff(rows_sorted) > 1)
        starts = np.concatenate(([0], breaks + 1))
        ends = np.concatenate((breaks, [rows_sorted.size - 1]))
        for s, e in zip(starts, ends):
            self._add_gap(int(rows_sorted[s]), int(e - s + 1))
        self._dead += int(rows_sorted.size)

    def _take_gap(self, length: int, limit: Optional[int] = None) -> Optional[int]:
        """Allocate ``length`` rows from the lowest fitting gap, if any.

        ``limit`` restricts the allocation to end at or below that row —
        the relocation guard ensuring a move lowers the storage
        high-water mark.  The caller owns the ``_dead`` decrement.
        """
        for i, g in enumerate(self._gaps):
            if g[1] >= length and (limit is None or g[0] + length <= limit):
                start = g[0]
                if g[1] == length:
                    self._gaps.pop(i)
                else:
                    g[0] += length
                    g[1] -= length
                return start
        return None

    def _seg_rows(self, seg: _Segment) -> np.ndarray:
        """The segment's live storage rows, ascending."""
        return np.sort(self._order[seg.order_base : seg.order_base + seg.n])

    # ------------------------------------------------------------------
    # Basic geometry
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of live indexed events."""
        return sum(s.n for s in self._segments.values())

    @property
    def n_cells(self) -> int:
        """Total bucket count ``nx * ny * nt``."""
        return self.nx * self.ny * self.nt

    @property
    def occupied_cells(self) -> int:
        """Number of buckets holding at least one live event."""
        return int(np.count_nonzero(self._cell_counts))

    @property
    def segment_count(self) -> int:
        """Number of live per-batch CSR segments."""
        return len(self._segments)

    @property
    def segment_ids(self) -> Tuple[object, ...]:
        """Registered segment ids, in registration order."""
        return tuple(self._segments)

    @property
    def dead_rows(self) -> int:
        """Retired storage rows awaiting reuse or compaction (the
        compaction debt)."""
        return self._dead

    @property
    def dead_row_budget(self) -> int:
        """Maximum compaction debt :meth:`sync` leaves outstanding.

        One live set's worth of rows: debt is paid down to this level
        each sync (work proportional to what retired since the last
        sync), so storage stays bounded at ~2x live under sustained
        slides.
        """
        return max(64, self.n)

    @property
    def merged_segments(self) -> int:
        """Number of live consolidated (multi-batch) segments."""
        return sum(1 for s in self._segments.values() if s.members is not None)

    @property
    def nbytes(self) -> int:
        """Index overhead beyond the raw coordinates (sorted cells +
        permutation + per-cell counts)."""
        per_seg = sum(s.cells_sorted.nbytes for s in self._segments.values())
        return per_seg + self._order_high * 8 + self._cell_counts.nbytes

    # ------------------------------------------------------------------
    # Segment maintenance
    # ------------------------------------------------------------------
    def add_segment(
        self,
        seg_id: object,
        coords: np.ndarray,
        weights: Optional[np.ndarray] = None,
        counter: Optional[WorkCounter] = None,
    ) -> None:
        """Register one event batch as a CSR segment — O(batch).

        The only operation that *buckets* events (computes cell keys and
        sorts them); everything else the index does is bookkeeping over
        already-bucketed segments, which is what makes a window slide
        O(arriving batch) instead of O(live events).
        """
        if seg_id in self._segments:
            raise ValueError(f"segment {seg_id!r} already registered")
        counter = counter if counter is not None else null_counter()
        coords = np.ascontiguousarray(np.asarray(coords, dtype=np.float64))
        if coords.ndim != 2 or coords.shape[1] != 3:
            raise ValueError(f"expected (n, 3) coordinates, got {coords.shape}")
        m = coords.shape[0]
        if weights is not None:
            weights = np.ascontiguousarray(np.asarray(weights, dtype=np.float64))
            if weights.shape != (m,):
                raise ValueError("weights must be (n,) matching coords")
        # Reuse a dead-row gap when one fits (the steady-state sliding
        # window replaces like-sized batches, so storage stops growing);
        # append at the high-water mark otherwise.
        start = self._take_gap(m)
        if start is None:
            self._grow_rows(m)
            start = self._size
            self._size += m
        else:
            self._dead -= m
        self._grow_order(m)
        self._coords[start : start + m] = coords
        if weights is not None and self._weights is None:
            w = np.ones(self._coords.shape[0], dtype=np.float64)
            self._weights = w
        if self._weights is not None:
            self._weights[start : start + m] = (
                weights if weights is not None else 1.0
            )
        cell = self.cell_of(coords) if m else np.empty(0, dtype=np.int64)
        # Stable sort keeps insertion order within a cell: deterministic
        # candidate (and hence accumulation) order for the direct sums.
        local = np.argsort(cell, kind="stable").astype(np.int64)
        order_base = self._order_high
        self._order[order_base : order_base + m] = start + local
        seg = _Segment(seg_id, start, m, cell[local], order_base)
        self._segments[seg_id] = seg
        if m:
            self._cell_counts += np.bincount(cell, minlength=self.n_cells)
        self._box_counts = None
        self.events_bucketed += m
        counter.index_events_bucketed += m

    def remove_segment(
        self, seg_id: object, counter: Optional[WorkCounter] = None
    ) -> None:
        """Retire one segment — pure bookkeeping, no re-bucketing.

        The rows go dead (registered on the gap free list) and stay in
        place; :meth:`sync` pays the compaction debt off the serving
        path.  A 4x safety valve still full-compacts for callers that
        retire heavily without ever syncing, so memory stays bounded.
        """
        counter = counter if counter is not None else null_counter()
        seg = self._segments.pop(seg_id, None)
        if seg is None:
            raise KeyError(f"unknown segment {seg_id!r}")
        if seg.n:
            self._cell_counts -= np.bincount(
                seg.cells_sorted, minlength=self.n_cells
            )
            self._free_rows(self._seg_rows(seg))
        self._box_counts = None
        self.events_retired += seg.n
        counter.index_events_retired += seg.n
        if self._dead > 4 * max(self.n, 64):
            self.rows_compacted += self.n
            counter.index_rows_compacted += self.n
            self._compact()

    def _retire_member(
        self, seg: _Segment, member_id: object, counter: WorkCounter
    ) -> int:
        """Retire one member batch of a consolidated segment.

        Filters the member's rows out of the segment's run table in one
        vectorised pass — the sorted-cell order of the survivors is
        preserved, so no cell is recomputed and no sort rerun; the rows
        go dead like any other retirement.  Returns the rows retired.
        """
        k = next(
            i for i, m in enumerate(seg.members) if m[0] == member_id
        )
        _, rel, nm = seg.members.pop(k)
        lo = seg.start + rel
        hi = lo + nm
        o = self._order[seg.order_base : seg.order_base + seg.n]
        drop = (o >= lo) & (o < hi)
        if nm:
            self._cell_counts -= np.bincount(
                seg.cells_sorted[drop], minlength=self.n_cells
            )
        keep = ~drop
        kept = o[keep]
        self._order[seg.order_base : seg.order_base + kept.size] = kept
        seg.cells_sorted = seg.cells_sorted[keep]
        seg.n = int(kept.size)
        seg.row_hi = int(kept.max()) + 1 if kept.size else seg.start
        self._add_gap(lo, nm)
        self._dead += nm
        self._box_counts = None
        self.events_retired += nm
        counter.index_events_retired += nm
        return nm

    def sync(
        self,
        batches: Sequence[Tuple[object, np.ndarray]],
        counter: Optional[WorkCounter] = None,
    ) -> Tuple[int, int]:
        """Reconcile the index with a source's live ``(batch_id, coords)``.

        Appends segments for unseen batch ids, retires segments (or
        consolidated-segment members) whose id is gone, and leaves
        surviving segments untouched — the O(delta) maintenance contract
        :class:`~repro.serve.service.DensityService` relies on across
        ``slide_window`` versions.  The maintenance that keeps the index
        healthy long-term also runs here, off the query path: the merge
        policy (segment count back under :attr:`merge_segment_cap`,
        zero re-bucketing) and the compaction-debt paydown (dead rows
        back under :attr:`dead_row_budget`, work proportional to what
        retired since the last sync).  Returns
        ``(events_added, events_retired)``.
        """
        counter = counter if counter is not None else null_counter()
        live_ids = {bid for bid, _ in batches}
        added = retired = 0
        for seg_id in list(self._segments):
            seg = self._segments[seg_id]
            if seg.members is None:
                if seg.seg_id not in live_ids:
                    retired += seg.n
                    self.remove_segment(seg_id, counter)
                continue
            for mid in [m[0] for m in seg.members if m[0] not in live_ids]:
                retired += self._retire_member(seg, mid, counter)
            if not seg.members:
                self._segments.pop(seg_id)  # empty shell, rows already dead
        covered = {
            mid for seg in self._segments.values() for mid in seg.member_ids()
        }
        for bid, coords in batches:
            if bid not in covered:
                self.add_segment(bid, coords, counter=counter)
                added += len(coords)
        if (
            self.merge_segment_cap is not None
            and self.segment_count > self.merge_segment_cap
        ):
            target = max(2, self.merge_segment_cap // 2)
            self.consolidate_segments(
                list(self._segments)[: self.segment_count - target + 1],
                counter,
            )
        self._pay_compaction_debt(counter)
        if self._order_high > max(64, 2 * self.n):
            self._rebuild_order_store()
        return added, retired

    def consolidate_segments(
        self, ids: List[object], counter: Optional[WorkCounter] = None
    ) -> None:
        """Coalesce segments into one consolidated CSR segment.

        Rows are copied member-major into one allocation and the members'
        already-sorted cell arrays merge-sorted into a single run table —
        no cell key is recomputed, no event re-bucketed.  Tie order
        within a cell is member registration order, exactly what a cold
        index built from the same batches would produce.  :meth:`sync`'s
        merge policy calls this; it is public so operators (and the
        ``c_qrow`` calibration probe) can consolidate explicitly.
        """
        counter = counter if counter is not None else null_counter()
        segs = [self._segments[i] for i in ids]
        n_total = sum(s.n for s in segs)
        dest = self._take_gap(n_total)
        if dest is None:
            self._grow_rows(n_total)
            dest = self._size
            self._size += n_total
        else:
            self._dead -= n_total
        self._grow_order(n_total)
        members: List[List] = []
        cells_parts: List[np.ndarray] = []
        pos = 0
        for s in segs:
            o = self._order[s.order_base : s.order_base + s.n]
            rows = np.sort(o)
            self._coords[dest + pos : dest + pos + s.n] = self._coords[rows]
            if self._weights is not None:
                self._weights[dest + pos : dest + pos + s.n] = (
                    self._weights[rows]
                )
            # Rows land in ascending-storage (= insertion) order, so the
            # member-major cells come from undoing the cell sort.
            cells_parts.append(s.cells_sorted[np.argsort(o, kind="stable")])
            if s.members is None:
                members.append([s.seg_id, pos, s.n])
            else:
                for mid, rel, nm in s.members:
                    members.append(
                        [mid, pos + int(np.searchsorted(rows, s.start + rel)), nm]
                    )
            self._free_rows(rows)
            pos += s.n
        for i in ids:
            self._segments.pop(i)
        cells = (
            np.concatenate(cells_parts) if cells_parts
            else np.empty(0, dtype=np.int64)
        )
        local = np.argsort(cells, kind="stable").astype(np.int64)
        order_base = self._order_high
        self._order[order_base : order_base + n_total] = dest + local
        seg_id = ("merged", self._merge_seq)
        self._merge_seq += 1
        seg = _Segment(
            seg_id, dest, n_total, cells[local], order_base, members=members
        )
        # Oldest-first dict order, like a cold build over the same batches.
        self._segments = {seg_id: seg, **self._segments}
        self.segments_merged += len(ids)
        counter.index_segments_merged += len(ids)
        # Cell counts are unchanged (same live events), so the planner's
        # box-sum table stays valid across a merge.

    # ------------------------------------------------------------------
    # Compaction debt
    # ------------------------------------------------------------------
    def _relocate_segment(self, seg: _Segment, dest: int) -> None:
        """Move a segment's live rows into ``dest``, squeezing its holes.

        The rows keep their ascending (insertion) order, so the cell-
        sorted permutation is remapped by rank and consolidated-segment
        member offsets stay contiguous.  The vacated rows join the free
        list; the caller owns the consumed gap's ``_dead`` accounting.
        """
        o = self._order[seg.order_base : seg.order_base + seg.n]
        rows = np.sort(o)
        n = seg.n
        self._coords[dest : dest + n] = self._coords[rows]
        if self._weights is not None:
            self._weights[dest : dest + n] = self._weights[rows]
        self._order[seg.order_base : seg.order_base + n] = (
            dest + np.searchsorted(rows, o)
        )
        if seg.members is not None:
            for m in seg.members:
                m[1] = int(np.searchsorted(rows, seg.start + m[1]))
        seg.start = dest
        seg.row_hi = dest + n
        self._free_rows(rows)

    def _relocate_split(self, seg: _Segment, counter: WorkCounter) -> bool:
        """Relocate a segment into *several* gap spans, lowest-first.

        Whole-segment relocation wedges when no single gap fits the
        segment — the fragmented-tail shape that used to force a full
        O(live) compaction.  Splitting sidesteps the wedge: a simple
        segment's rows break at any boundary, a consolidated segment's
        at **member** boundaries (each member's interval must stay
        contiguous for :meth:`_retire_member`'s ``[lo, hi)`` filter and
        :meth:`consolidate_segments`' rank remap), and chunks pack into
        the lowest gaps in ascending order — so rows keep their
        ascending insertion order and the cell-sorted permutation is
        remapped by rank exactly as in :meth:`_relocate_segment`.  Every
        committed plan places all rows strictly below the segment's
        current ``row_hi`` (a gap can never contain the segment's top
        live row), so each move strictly lowers it.  Returns ``False``
        when the gaps below the segment cannot hold it.
        """
        row_hi = seg.row_hi
        spans: List[Tuple[int, int]] = []  # (dest_start, rows_packed)
        if seg.members is None:
            remaining = seg.n
            for g in self._gaps:
                if remaining == 0:
                    break
                take = min(g[1], remaining, row_hi - g[0])
                if take <= 0:
                    continue
                spans.append((g[0], take))
                remaining -= take
            if remaining:
                return False
        else:
            mem = sorted(
                (m for m in seg.members if m[2]), key=lambda m: m[1]
            )
            sizes = [int(m[2]) for m in mem]
            mem_dest: List[int] = []
            k = 0
            for g in self._gaps:
                if k >= len(sizes):
                    break
                room = min(g[1], row_hi - g[0])
                packed = 0
                while k < len(sizes) and sizes[k] <= room - packed:
                    mem_dest.append(g[0] + packed)
                    packed += sizes[k]
                    k += 1
                if packed:
                    spans.append((g[0], packed))
            if k < len(sizes):
                return False
        # Commit: consume the planned span off each gap's low end.
        for dest, cnt in spans:
            i = bisect.bisect_left([g[0] for g in self._gaps], dest)
            g = self._gaps[i]
            if g[1] == cnt:
                self._gaps.pop(i)
            else:
                g[0] += cnt
                g[1] -= cnt
        self._dead -= seg.n
        o = self._order[seg.order_base : seg.order_base + seg.n]
        rows = np.sort(o)
        new_rows = (
            np.concatenate(
                [np.arange(d, d + c, dtype=np.int64) for d, c in spans]
            )
            if spans else np.empty(0, dtype=np.int64)
        )
        self._coords[new_rows] = self._coords[rows]
        if self._weights is not None:
            self._weights[new_rows] = self._weights[rows]
        self._order[seg.order_base : seg.order_base + seg.n] = (
            new_rows[np.searchsorted(rows, o)]
        )
        start = spans[0][0] if spans else seg.start
        if seg.members is not None:
            it = iter(mem_dest)
            for m in mem:
                m[1] = next(it) - start
            for m in seg.members:
                if not m[2]:
                    m[1] = 0
        seg.start = start
        seg.row_hi = (spans[-1][0] + spans[-1][1]) if spans else start
        self._free_rows(rows)
        return True

    def _truncate_tail(self) -> None:
        """Reclaim trailing dead rows by lowering the high-water mark."""
        hi = max((s.row_hi for s in self._segments.values()), default=0)
        if hi >= self._size:
            return
        kept: List[List[int]] = []
        for g in self._gaps:
            if g[0] >= hi:
                self._dead -= g[1]
            elif g[0] + g[1] > hi:
                self._dead -= g[0] + g[1] - hi
                kept.append([g[0], hi - g[0]])
            else:
                kept.append(g)
        self._gaps = kept
        self._size = hi

    def _pay_compaction_debt(self, counter: WorkCounter) -> None:
        """Pay dead rows down to :attr:`dead_row_budget`, incrementally.

        Trailing gaps are truncated for free; then the highest-placed
        segments are relocated into the lowest fitting gaps until the
        debt is under budget.  A segment no single gap can hold is
        **split** across several spans (:meth:`_relocate_split`) —
        member-boundary splits for consolidated segments, arbitrary for
        simple ones — so a fragmented tail under a large consolidated
        segment no longer wedges relocation into the old full-compact
        cliff.  Each relocation strictly lowers the storage high-water
        mark, so the work is proportional to the rows retired since the
        last sync — never a full sweep on the fast path.  A full
        compaction survives only as a last-resort safety valve (e.g. a
        single member larger than every gap below it), so the budget
        bound genuinely holds after every sync.
        """
        self._truncate_tail()
        for _ in range(64):
            if self._dead <= self.dead_row_budget:
                return
            moved = False
            for seg in sorted(
                (s for s in self._segments.values() if s.n),
                key=lambda s: s.row_hi, reverse=True,
            ):
                dest = self._take_gap(seg.n, limit=seg.row_hi - seg.n)
                if dest is not None:
                    self._dead -= seg.n
                    self._relocate_segment(seg, dest)
                    self.rows_compacted += seg.n
                    counter.index_rows_compacted += seg.n
                    moved = True
                    break
                if self._relocate_split(seg, counter):
                    self.rows_compacted += seg.n
                    counter.index_rows_compacted += seg.n
                    moved = True
                    break
            self._truncate_tail()
            if not moved:
                break
        if self._dead > self.dead_row_budget:
            self.rows_compacted += self.n
            counter.index_rows_compacted += self.n
            self._compact()

    def _rebuild_order_store(self) -> None:
        """Densify the order store (row ids unchanged, spans repacked).

        The backstop for permutation-store growth under sustained churn:
        O(live) int64 copies, triggered only when the high-water mark
        doubles the live count.
        """
        live = self.n
        order = np.empty(max(live, 64), dtype=np.int64)
        pos = 0
        for seg in self._segments.values():
            order[pos : pos + seg.n] = (
                self._order[seg.order_base : seg.order_base + seg.n]
            )
            seg.order_base = pos
            pos += seg.n
        self._order = order

    def _compact(self) -> None:
        """Squeeze all dead rows out of the stores — O(live), zero
        bucketing.

        Rows move but keep their ascending (insertion) order per segment,
        so each permutation is remapped by rank — no cell is recomputed,
        no sort rerun, and consolidated-segment member spans survive.
        """
        live = self.n
        coords = np.empty((max(live, 64), 3), dtype=np.float64)
        weights = (
            np.ones(coords.shape[0], dtype=np.float64)
            if self._weights is not None else None
        )
        order = np.empty(max(live, 64), dtype=np.int64)
        pos = 0
        for seg in self._segments.values():
            o = self._order[seg.order_base : seg.order_base + seg.n]
            rows = np.sort(o)
            coords[pos : pos + seg.n] = self._coords[rows]
            if weights is not None:
                weights[pos : pos + seg.n] = self._weights[rows]
            order[pos : pos + seg.n] = pos + np.searchsorted(rows, o)
            if seg.members is not None:
                for m in seg.members:
                    m[1] = int(np.searchsorted(rows, seg.start + m[1]))
            seg.start = pos
            seg.row_hi = pos + seg.n
            seg.order_base = pos
            pos += seg.n
        self._coords = coords
        self._weights = weights
        self._order = order
        self._size = live
        self._dead = 0
        self._gaps = []

    def stats(self) -> Dict[str, int]:
        """Gauges for serving observability (``repro query --stats``)."""
        return {
            "segments": self.segment_count,
            "merged_segments": self.merged_segments,
            "events": self.n,
            "dead_rows": self._dead,
            "dead_row_budget": self.dead_row_budget,
            "gaps": len(self._gaps),
            "events_bucketed": self.events_bucketed,
            "events_retired": self.events_retired,
            "segments_merged": self.segments_merged,
            "rows_compacted": self.rows_compacted,
            "occupied_cells": self.occupied_cells,
            "nbytes": self.nbytes,
        }

    # ------------------------------------------------------------------
    # Cell geometry and candidate walks
    # ------------------------------------------------------------------
    def cell_coords(self, queries: np.ndarray) -> np.ndarray:
        """``(m, 3)`` integer cell coordinates of query locations (clamped)."""
        q = np.asarray(queries, dtype=np.float64)
        d = self.grid.domain
        out = np.empty((q.shape[0], 3), dtype=np.int64)
        out[:, 0] = (q[:, 0] - d.x0) / self.grid.hs
        out[:, 1] = (q[:, 1] - d.y0) / self.grid.hs
        out[:, 2] = (q[:, 2] - d.t0) / self.grid.ht
        np.clip(out[:, 0], 0, self.nx - 1, out=out[:, 0])
        np.clip(out[:, 1], 0, self.ny - 1, out=out[:, 1])
        np.clip(out[:, 2], 0, self.nt - 1, out=out[:, 2])
        return out

    def cell_of(self, queries: np.ndarray) -> np.ndarray:
        """Flat cell id of each query location."""
        cc = self.cell_coords(queries)
        return (cc[:, 0] * self.ny + cc[:, 1]) * self.nt + cc[:, 2]

    def candidate_runs(
        self, cell_coords: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Candidate runs of each cell's 27-neighbourhood, vectorised.

        ``cell_coords`` is ``(G, 3)`` integer cells; the return is two
        ``(G, 9 * segments)`` int64 arrays ``(starts, lengths)``: run ``r``
        of cell ``g`` covers ``order_store[starts[g, r] :
        starts[g, r] + lengths[g, r]]``.  Runs are ordered segment-major,
        then x, then y — the concatenation order :meth:`candidates`
        produces — so consuming them left-to-right reproduces the exact
        candidate (and accumulation) order of the per-group walk.
        """
        cc = np.asarray(cell_coords, dtype=np.int64)
        G = cc.shape[0]
        n_runs = _RUNS_PER_SEGMENT * max(1, len(self._segments))
        starts = np.zeros((G, n_runs), dtype=np.int64)
        lengths = np.zeros((G, n_runs), dtype=np.int64)
        if G == 0 or not self._segments:
            return starts, lengths
        t_lo = np.maximum(cc[:, 2] - 1, 0)
        t_hi = np.minimum(cc[:, 2] + 2, self.nt)
        r = 0
        for seg in self._segments.values():
            for dx in (-1, 0, 1):
                ix = cc[:, 0] + dx
                for dy in (-1, 0, 1):
                    iy = cc[:, 1] + dy
                    valid = (ix >= 0) & (ix < self.nx) & (iy >= 0) & (iy < self.ny)
                    row = (ix * self.ny + iy) * self.nt
                    if seg.n == 0:
                        r += 1
                        continue
                    lo = np.searchsorted(seg.cells_sorted, row + t_lo, side="left")
                    hi = np.searchsorted(seg.cells_sorted, row + t_hi, side="left")
                    starts[:, r] = np.where(valid, seg.order_base + lo, 0)
                    lengths[:, r] = np.where(valid, hi - lo, 0)
                    r += 1
        return starts, lengths

    def candidates(self, cx: int, cy: int, ct: int) -> np.ndarray:
        """Event indices whose kernel can reach cell ``(cx, cy, ct)``.

        The union of the 27-cell neighbourhood across every segment, as
        storage row indices (ascending within each cell of a segment), in
        exactly the run order :meth:`candidate_runs` reports.  No false
        negatives for any query location inside the cell; callers apply
        the exact masks.
        """
        t_lo = max(0, ct - 1)
        t_hi = min(self.nt, ct + 2)
        bounds: List[int] = []
        # Cells contiguous in t are contiguous in the flat id, so one
        # (ix, iy) row of the neighbourhood is a single [c0, c1) run.
        # Ordered dx- then dy-major like candidate_runs (in-bounds rows
        # ascend identically; out-of-bounds rows are zero-length there).
        for ix in range(max(0, cx - 1), min(self.nx, cx + 2)):
            for iy in range(max(0, cy - 1), min(self.ny, cy + 2)):
                row = (ix * self.ny + iy) * self.nt
                bounds.append(row + t_lo)
                bounds.append(row + t_hi)
        chunks: List[np.ndarray] = []
        for seg in self._segments.values():
            if seg.n == 0:
                continue
            pos = np.searchsorted(seg.cells_sorted, bounds)
            for k in range(0, pos.size, 2):
                lo, hi = int(pos[k]), int(pos[k + 1])
                if hi > lo:
                    chunks.append(
                        self._order[seg.order_base + lo : seg.order_base + hi]
                    )
        if not chunks:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(chunks)

    def candidate_counts(self, queries: np.ndarray) -> np.ndarray:
        """Exact candidate-set size per query, vectorised (planner input).

        Reads a 27-neighbourhood box-sum table rebuilt lazily after
        mutations (the per-cell counts are maintained incrementally) —
        O(cells) per rebuild, O(m) per batch after, no candidate
        gathering — so repeated planning costs the lookups, not the grid.
        """
        if self._box_counts is None:
            counts3 = self._cell_counts.reshape(self.nx, self.ny, self.nt)
            # 3-wide box sums via padded prefix sums, one axis at a time.
            box = counts3
            for axis, size in ((0, self.nx), (1, self.ny), (2, self.nt)):
                cum = np.concatenate(
                    [np.zeros_like(box.take([0], axis=axis)),
                     np.cumsum(box, axis=axis)],
                    axis=axis,
                )
                hi = np.minimum(np.arange(size) + 2, size)
                lo = np.maximum(np.arange(size) - 1, 0)
                box = cum.take(hi, axis=axis) - cum.take(lo, axis=axis)
            self._box_counts = box
        cc = self.cell_coords(queries)
        return self._box_counts[cc[:, 0], cc[:, 1], cc[:, 2]]

    def group_count(self, queries: np.ndarray) -> int:
        """Number of distinct home cells a query batch occupies.

        The number of candidate neighbourhoods a batch walks — each is
        probed once per segment, which is the unit the cost model's
        ``c_qprobe`` prices.
        """
        q = np.asarray(queries, dtype=np.float64)
        if q.shape[0] == 0:
            return 0
        return int(np.unique(self.cell_of(q)).size)

    def cohort_count(self, queries: np.ndarray) -> int:
        """Number of candidate-count cohorts a batch collapses into.

        Distinct non-zero candidate counts across the batch's home cells
        — the number of vectorised tabulation rounds the cohort engine
        runs, the unit the cost model's ``c_qcohort`` prices.
        """
        q = np.asarray(queries, dtype=np.float64)
        if q.shape[0] == 0:
            return 0
        counts = self.candidate_counts(q)
        return int(np.unique(counts[counts > 0]).size)

    def group_queries(
        self, queries: np.ndarray
    ) -> Iterator[Tuple[Tuple[int, int, int], np.ndarray]]:
        """Group a query batch by home cell: ``((cx, cy, ct), query_rows)``.

        Queries in the same cell share one candidate gather and one
        vectorised kernel tabulation — the batching that amortises index
        walks across concurrent queries.
        """
        q = np.asarray(queries, dtype=np.float64)
        if q.shape[0] == 0:
            return
        cell = self.cell_of(q)
        order = np.argsort(cell, kind="stable")
        sorted_cells = cell[order]
        starts = np.flatnonzero(
            np.concatenate(([True], sorted_cells[1:] != sorted_cells[:-1]))
        )
        bounds = np.concatenate((starts, [sorted_cells.size]))
        for s, e in zip(bounds[:-1], bounds[1:]):
            cid = int(sorted_cells[s])
            cx, rem = divmod(cid, self.ny * self.nt)
            cy, ct = divmod(rem, self.nt)
            yield (cx, cy, ct), order[s:e]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BucketIndex(n={self.n}, cells={self.nx}x{self.ny}x{self.nt}, "
            f"segments={self.segment_count}, occupied={self.occupied_cells})"
        )
