"""Spatial bucket index for direct kernel-sum density queries.

The grid algorithms answer "what is the density *everywhere*" by
materialising a volume; a serving layer must also answer "what is the
density *here, now*" without touching ``Theta(Gx * Gy * Gt)`` memory.
Following the bucketed evaluation idea of hashing-based KDE estimators
(Charikar & Siminelakis), :class:`BucketIndex` partitions the events into
cells of size ``hs x hs x ht`` — exactly one bandwidth per axis — so the
kernel support of any query location is covered by the 3 x 3 x 3 cell
neighbourhood around it:

* a point within ``hs`` of the query along x differs by less than one
  cell width, hence lands in an adjacent cell (same for y and t),
* therefore ``candidates(q)`` has **no false negatives**: every event
  whose kernel reaches ``q`` is returned, and the exact ``d < hs`` /
  ``|dt| <= ht`` masks of the engine discard the rest.

Incremental segments
--------------------
The index is a collection of **per-batch CSR segments** mirroring the
tracked-batch design of :class:`repro.core.incremental.IncrementalSTKDE`:
each segment owns a contiguous row span of the shared coordinate storage
plus one sorted-cell permutation, built in O(batch) with three vectorised
passes.  :meth:`sync` diffs the estimator's live batches against the
registered segments and appends/retires only the delta — the batches
whose *membership* changed.  For a time-stratified feed (the normal
sliding-window shape: each ``add`` is one time slab) a slide re-buckets
only the arriving batch; a batch the horizon cuts *through* is split by
the estimator (survivors get a new batch id) and its survivors are
re-bucketed too, so the true bound is O(arriving + straddling batches),
degrading toward O(n) only when every live batch mixes old and new
timestamps.  The ``index_events_bucketed`` work counter records exactly
what was re-bucketed (the CI smoke gates on it).  Retired
rows are left dead in the storage and compacted away (an O(live) copy
with **no** re-bucketing) once they outnumber the live ones, so memory
stays bounded at 2x under any retirement pattern.

Query batches are grouped by cell (:meth:`group_queries`) so concurrent
queries landing in the same neighbourhood share one candidate gather, and
:meth:`candidate_runs` exposes every cell's 27-neighbourhood as
``(start, length)`` runs into one flat permutation array
(:attr:`order_store`) — the gather layout the cohort-vectorised engine
(:func:`repro.serve.engine.direct_sum`) turns into ``(Q, K)`` candidate
blocks without any per-group Python dispatch.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..core.grid import GridSpec
from ..core.instrument import WorkCounter, null_counter

__all__ = ["BucketIndex"]

#: The 3x3x3 neighbourhood collapses to 9 (x, y) rows per segment — cells
#: contiguous in t are contiguous in the flat cell id, so each row is one
#: run of the segment's sorted-cell array.
_RUNS_PER_SEGMENT = 9


class _Segment:
    """One batch's CSR bucket data: a row span plus its cell-sorted view.

    ``start`` is the first row of the segment in the index's coordinate
    storage (rows of a segment are always contiguous), ``cells_sorted``
    the ascending flat cell ids of its events, and ``order_base`` the
    segment's span inside the shared :attr:`BucketIndex.order_store`
    permutation (global row indices sorted by cell).
    """

    __slots__ = ("seg_id", "start", "n", "cells_sorted", "order_base")

    def __init__(
        self, seg_id: object, start: int, n: int,
        cells_sorted: np.ndarray, order_base: int,
    ) -> None:
        self.seg_id = seg_id
        self.start = start
        self.n = n
        self.cells_sorted = cells_sorted
        self.order_base = order_base


class BucketIndex:
    """Segmented CSR bucket index over events, cells of ``hs x hs x ht``.

    Parameters
    ----------
    grid:
        The grid specification supplying the domain box and bandwidths
        (only the *domain* and bandwidths matter — the index never touches
        voxels).
    coords:
        Optional ``(n, 3)`` event coordinates in domain space, registered
        as one static segment.  ``None`` starts an empty index to be fed
        through :meth:`add_segment` / :meth:`sync`.
    weights:
        Optional ``(n,)`` per-event weights, carried alongside the
        coordinates so weighted direct sums gather them in the same pass.
    """

    __slots__ = (
        "grid", "nx", "ny", "nt",
        "_coords", "_weights", "_order", "_size", "_dead",
        "_segments", "_cell_counts", "_box_counts",
        "events_bucketed", "events_retired",
    )

    def __init__(
        self,
        grid: GridSpec,
        coords: Optional[np.ndarray] = None,
        weights: Optional[np.ndarray] = None,
        counter: Optional[WorkCounter] = None,
    ) -> None:
        self.grid = grid
        d = grid.domain
        self.nx = max(1, math.ceil(d.gx / grid.hs))
        self.ny = max(1, math.ceil(d.gy / grid.hs))
        self.nt = max(1, math.ceil(d.gt / grid.ht))
        self._coords = np.empty((0, 3), dtype=np.float64)
        self._weights: Optional[np.ndarray] = None
        self._order = np.empty(0, dtype=np.int64)
        self._size = 0  # rows used in the storage (live + dead)
        self._dead = 0  # retired rows awaiting compaction
        self._segments: Dict[object, _Segment] = {}
        self._cell_counts = np.zeros(self.n_cells, dtype=np.int64)
        self._box_counts: Optional[np.ndarray] = None  # lazy 27-box table
        #: Lifetime sync gauges (mirrored into WorkCounter when passed).
        self.events_bucketed = 0
        self.events_retired = 0
        if coords is not None:
            self.add_segment("static", coords, weights, counter)
        elif weights is not None:
            raise ValueError("weights require coords")

    # ------------------------------------------------------------------
    # Storage
    # ------------------------------------------------------------------
    @property
    def coords(self) -> np.ndarray:
        """The shared coordinate storage (may contain retired rows; only
        rows reachable through a segment's runs are ever gathered)."""
        return self._coords[: self._size]

    @property
    def weights(self) -> Optional[np.ndarray]:
        """Per-row weights aligned with :attr:`coords` (``None`` when no
        segment ever carried weights)."""
        if self._weights is None:
            return None
        return self._weights[: self._size]

    @property
    def order_store(self) -> np.ndarray:
        """The flat cell-sorted permutation all segment runs index into."""
        return self._order

    def _grow(self, extra: int) -> None:
        need = self._size + extra
        cap = self._coords.shape[0]
        if need > cap:
            new_cap = max(need, 2 * cap, 64)
            grown = np.empty((new_cap, 3), dtype=np.float64)
            grown[: self._size] = self._coords[: self._size]
            self._coords = grown
            if self._weights is not None:
                gw = np.ones(new_cap, dtype=np.float64)
                gw[: self._size] = self._weights[: self._size]
                self._weights = gw
        ocap = self._order.shape[0]
        used = self._order_high
        if used + extra > ocap:
            new_cap = max(used + extra, 2 * ocap, 64)
            grown = np.empty(new_cap, dtype=np.int64)
            grown[:used] = self._order[:used]
            self._order = grown

    @property
    def _order_high(self) -> int:
        """High-water mark of the order store (live segments only; a dead
        span above every live one is reused by the next append)."""
        hi = 0
        for s in self._segments.values():
            hi = max(hi, s.order_base + s.n)
        return hi

    # ------------------------------------------------------------------
    # Basic geometry
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of live indexed events."""
        return sum(s.n for s in self._segments.values())

    @property
    def n_cells(self) -> int:
        """Total bucket count ``nx * ny * nt``."""
        return self.nx * self.ny * self.nt

    @property
    def occupied_cells(self) -> int:
        """Number of buckets holding at least one live event."""
        return int(np.count_nonzero(self._cell_counts))

    @property
    def segment_count(self) -> int:
        """Number of live per-batch CSR segments."""
        return len(self._segments)

    @property
    def segment_ids(self) -> Tuple[object, ...]:
        """Registered segment ids, in registration order."""
        return tuple(self._segments)

    @property
    def dead_rows(self) -> int:
        """Retired storage rows awaiting compaction."""
        return self._dead

    @property
    def nbytes(self) -> int:
        """Index overhead beyond the raw coordinates (sorted cells +
        permutation + per-cell counts)."""
        per_seg = sum(s.cells_sorted.nbytes for s in self._segments.values())
        return per_seg + self._order_high * 8 + self._cell_counts.nbytes

    # ------------------------------------------------------------------
    # Segment maintenance
    # ------------------------------------------------------------------
    def add_segment(
        self,
        seg_id: object,
        coords: np.ndarray,
        weights: Optional[np.ndarray] = None,
        counter: Optional[WorkCounter] = None,
    ) -> None:
        """Register one event batch as a CSR segment — O(batch).

        The only operation that *buckets* events (computes cell keys and
        sorts them); everything else the index does is bookkeeping over
        already-bucketed segments, which is what makes a window slide
        O(arriving batch) instead of O(live events).
        """
        if seg_id in self._segments:
            raise ValueError(f"segment {seg_id!r} already registered")
        counter = counter if counter is not None else null_counter()
        coords = np.ascontiguousarray(np.asarray(coords, dtype=np.float64))
        if coords.ndim != 2 or coords.shape[1] != 3:
            raise ValueError(f"expected (n, 3) coordinates, got {coords.shape}")
        m = coords.shape[0]
        if weights is not None:
            weights = np.ascontiguousarray(np.asarray(weights, dtype=np.float64))
            if weights.shape != (m,):
                raise ValueError("weights must be (n,) matching coords")
        self._grow(m)
        start = self._size
        self._coords[start : start + m] = coords
        if weights is not None and self._weights is None:
            w = np.ones(self._coords.shape[0], dtype=np.float64)
            self._weights = w
        if self._weights is not None:
            self._weights[start : start + m] = (
                weights if weights is not None else 1.0
            )
        cell = self.cell_of(coords) if m else np.empty(0, dtype=np.int64)
        # Stable sort keeps insertion order within a cell: deterministic
        # candidate (and hence accumulation) order for the direct sums.
        local = np.argsort(cell, kind="stable").astype(np.int64)
        order_base = self._order_high
        self._order[order_base : order_base + m] = start + local
        seg = _Segment(seg_id, start, m, cell[local], order_base)
        self._size += m
        self._segments[seg_id] = seg
        if m:
            self._cell_counts += np.bincount(cell, minlength=self.n_cells)
        self._box_counts = None
        self.events_bucketed += m
        counter.index_events_bucketed += m

    def remove_segment(
        self, seg_id: object, counter: Optional[WorkCounter] = None
    ) -> None:
        """Retire one segment — O(batch + cells), no re-bucketing.

        The rows stay dead in the storage until live rows are outnumbered,
        at which point :meth:`_compact` squeezes them out with one copy.
        """
        counter = counter if counter is not None else null_counter()
        seg = self._segments.pop(seg_id, None)
        if seg is None:
            raise KeyError(f"unknown segment {seg_id!r}")
        if seg.n:
            self._cell_counts -= np.bincount(
                seg.cells_sorted, minlength=self.n_cells
            )
        self._dead += seg.n
        self._box_counts = None
        self.events_retired += seg.n
        counter.index_events_retired += seg.n
        if self._dead > max(self.n, 64):
            self._compact()

    def sync(
        self,
        batches: Sequence[Tuple[object, np.ndarray]],
        counter: Optional[WorkCounter] = None,
    ) -> Tuple[int, int]:
        """Reconcile the index with a source's live ``(batch_id, coords)``.

        Appends segments for unseen batch ids, retires segments whose id
        is gone, and leaves surviving segments untouched — the O(delta)
        maintenance contract :class:`~repro.serve.service.DensityService`
        relies on across ``slide_window`` versions.  Returns
        ``(events_added, events_retired)``.
        """
        live_ids = {bid for bid, _ in batches}
        added = retired = 0
        for seg_id in [s for s in self._segments if s not in live_ids]:
            retired += self._segments[seg_id].n
            self.remove_segment(seg_id, counter)
        for bid, coords in batches:
            if bid not in self._segments:
                self.add_segment(bid, coords, counter=counter)
                added += len(coords)
        return added, retired

    def _compact(self) -> None:
        """Squeeze dead rows out of the stores — O(live), zero bucketing.

        Rows move but segments keep their intra-segment order, so each
        segment's permutation is remapped by a constant shift: no cell is
        recomputed, no sort rerun.
        """
        live = self.n
        coords = np.empty((max(live, 64), 3), dtype=np.float64)
        weights = (
            np.ones(coords.shape[0], dtype=np.float64)
            if self._weights is not None else None
        )
        order = np.empty(max(live, 64), dtype=np.int64)
        pos = 0
        for seg in self._segments.values():
            coords[pos : pos + seg.n] = self._coords[seg.start : seg.start + seg.n]
            if weights is not None:
                weights[pos : pos + seg.n] = (
                    self._weights[seg.start : seg.start + seg.n]
                )
            shift = pos - seg.start
            order[pos : pos + seg.n] = (
                self._order[seg.order_base : seg.order_base + seg.n] + shift
            )
            seg.start = pos
            seg.order_base = pos
            pos += seg.n
        self._coords = coords
        self._weights = weights
        self._order = order
        self._size = live
        self._dead = 0

    def stats(self) -> Dict[str, int]:
        """Gauges for serving observability (``repro query --stats``)."""
        return {
            "segments": self.segment_count,
            "events": self.n,
            "dead_rows": self._dead,
            "events_bucketed": self.events_bucketed,
            "events_retired": self.events_retired,
            "occupied_cells": self.occupied_cells,
            "nbytes": self.nbytes,
        }

    # ------------------------------------------------------------------
    # Cell geometry and candidate walks
    # ------------------------------------------------------------------
    def cell_coords(self, queries: np.ndarray) -> np.ndarray:
        """``(m, 3)`` integer cell coordinates of query locations (clamped)."""
        q = np.asarray(queries, dtype=np.float64)
        d = self.grid.domain
        out = np.empty((q.shape[0], 3), dtype=np.int64)
        out[:, 0] = (q[:, 0] - d.x0) / self.grid.hs
        out[:, 1] = (q[:, 1] - d.y0) / self.grid.hs
        out[:, 2] = (q[:, 2] - d.t0) / self.grid.ht
        np.clip(out[:, 0], 0, self.nx - 1, out=out[:, 0])
        np.clip(out[:, 1], 0, self.ny - 1, out=out[:, 1])
        np.clip(out[:, 2], 0, self.nt - 1, out=out[:, 2])
        return out

    def cell_of(self, queries: np.ndarray) -> np.ndarray:
        """Flat cell id of each query location."""
        cc = self.cell_coords(queries)
        return (cc[:, 0] * self.ny + cc[:, 1]) * self.nt + cc[:, 2]

    def candidate_runs(
        self, cell_coords: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Candidate runs of each cell's 27-neighbourhood, vectorised.

        ``cell_coords`` is ``(G, 3)`` integer cells; the return is two
        ``(G, 9 * segments)`` int64 arrays ``(starts, lengths)``: run ``r``
        of cell ``g`` covers ``order_store[starts[g, r] :
        starts[g, r] + lengths[g, r]]``.  Runs are ordered segment-major,
        then x, then y — the concatenation order :meth:`candidates`
        produces — so consuming them left-to-right reproduces the exact
        candidate (and accumulation) order of the per-group walk.
        """
        cc = np.asarray(cell_coords, dtype=np.int64)
        G = cc.shape[0]
        n_runs = _RUNS_PER_SEGMENT * max(1, len(self._segments))
        starts = np.zeros((G, n_runs), dtype=np.int64)
        lengths = np.zeros((G, n_runs), dtype=np.int64)
        if G == 0 or not self._segments:
            return starts, lengths
        t_lo = np.maximum(cc[:, 2] - 1, 0)
        t_hi = np.minimum(cc[:, 2] + 2, self.nt)
        r = 0
        for seg in self._segments.values():
            for dx in (-1, 0, 1):
                ix = cc[:, 0] + dx
                for dy in (-1, 0, 1):
                    iy = cc[:, 1] + dy
                    valid = (ix >= 0) & (ix < self.nx) & (iy >= 0) & (iy < self.ny)
                    row = (ix * self.ny + iy) * self.nt
                    if seg.n == 0:
                        r += 1
                        continue
                    lo = np.searchsorted(seg.cells_sorted, row + t_lo, side="left")
                    hi = np.searchsorted(seg.cells_sorted, row + t_hi, side="left")
                    starts[:, r] = np.where(valid, seg.order_base + lo, 0)
                    lengths[:, r] = np.where(valid, hi - lo, 0)
                    r += 1
        return starts, lengths

    def candidates(self, cx: int, cy: int, ct: int) -> np.ndarray:
        """Event indices whose kernel can reach cell ``(cx, cy, ct)``.

        The union of the 27-cell neighbourhood across every segment, as
        storage row indices (ascending within each cell of a segment), in
        exactly the run order :meth:`candidate_runs` reports.  No false
        negatives for any query location inside the cell; callers apply
        the exact masks.
        """
        t_lo = max(0, ct - 1)
        t_hi = min(self.nt, ct + 2)
        bounds: List[int] = []
        # Cells contiguous in t are contiguous in the flat id, so one
        # (ix, iy) row of the neighbourhood is a single [c0, c1) run.
        # Ordered dx- then dy-major like candidate_runs (in-bounds rows
        # ascend identically; out-of-bounds rows are zero-length there).
        for ix in range(max(0, cx - 1), min(self.nx, cx + 2)):
            for iy in range(max(0, cy - 1), min(self.ny, cy + 2)):
                row = (ix * self.ny + iy) * self.nt
                bounds.append(row + t_lo)
                bounds.append(row + t_hi)
        chunks: List[np.ndarray] = []
        for seg in self._segments.values():
            if seg.n == 0:
                continue
            pos = np.searchsorted(seg.cells_sorted, bounds)
            for k in range(0, pos.size, 2):
                lo, hi = int(pos[k]), int(pos[k + 1])
                if hi > lo:
                    chunks.append(
                        self._order[seg.order_base + lo : seg.order_base + hi]
                    )
        if not chunks:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(chunks)

    def candidate_counts(self, queries: np.ndarray) -> np.ndarray:
        """Exact candidate-set size per query, vectorised (planner input).

        Reads a 27-neighbourhood box-sum table rebuilt lazily after
        mutations (the per-cell counts are maintained incrementally) —
        O(cells) per rebuild, O(m) per batch after, no candidate
        gathering — so repeated planning costs the lookups, not the grid.
        """
        if self._box_counts is None:
            counts3 = self._cell_counts.reshape(self.nx, self.ny, self.nt)
            # 3-wide box sums via padded prefix sums, one axis at a time.
            box = counts3
            for axis, size in ((0, self.nx), (1, self.ny), (2, self.nt)):
                cum = np.concatenate(
                    [np.zeros_like(box.take([0], axis=axis)),
                     np.cumsum(box, axis=axis)],
                    axis=axis,
                )
                hi = np.minimum(np.arange(size) + 2, size)
                lo = np.maximum(np.arange(size) - 1, 0)
                box = cum.take(hi, axis=axis) - cum.take(lo, axis=axis)
            self._box_counts = box
        cc = self.cell_coords(queries)
        return self._box_counts[cc[:, 0], cc[:, 1], cc[:, 2]]

    def group_count(self, queries: np.ndarray) -> int:
        """Number of distinct home cells a query batch occupies.

        The number of candidate neighbourhoods a batch walks — each is
        probed once per segment, which is the unit the cost model's
        ``c_qprobe`` prices.
        """
        q = np.asarray(queries, dtype=np.float64)
        if q.shape[0] == 0:
            return 0
        return int(np.unique(self.cell_of(q)).size)

    def cohort_count(self, queries: np.ndarray) -> int:
        """Number of candidate-count cohorts a batch collapses into.

        Distinct non-zero candidate counts across the batch's home cells
        — the number of vectorised tabulation rounds the cohort engine
        runs, the unit the cost model's ``c_qcohort`` prices.
        """
        q = np.asarray(queries, dtype=np.float64)
        if q.shape[0] == 0:
            return 0
        counts = self.candidate_counts(q)
        return int(np.unique(counts[counts > 0]).size)

    def group_queries(
        self, queries: np.ndarray
    ) -> Iterator[Tuple[Tuple[int, int, int], np.ndarray]]:
        """Group a query batch by home cell: ``((cx, cy, ct), query_rows)``.

        Queries in the same cell share one candidate gather and one
        vectorised kernel tabulation — the batching that amortises index
        walks across concurrent queries.
        """
        q = np.asarray(queries, dtype=np.float64)
        if q.shape[0] == 0:
            return
        cell = self.cell_of(q)
        order = np.argsort(cell, kind="stable")
        sorted_cells = cell[order]
        starts = np.flatnonzero(
            np.concatenate(([True], sorted_cells[1:] != sorted_cells[:-1]))
        )
        bounds = np.concatenate((starts, [sorted_cells.size]))
        for s, e in zip(bounds[:-1], bounds[1:]):
            cid = int(sorted_cells[s])
            cx, rem = divmod(cid, self.ny * self.nt)
            cy, ct = divmod(rem, self.nt)
            yield (cx, cy, ct), order[s:e]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BucketIndex(n={self.n}, cells={self.nx}x{self.ny}x{self.nt}, "
            f"segments={self.segment_count}, occupied={self.occupied_cells})"
        )
