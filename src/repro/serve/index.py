"""Spatial bucket index for direct kernel-sum density queries.

The grid algorithms answer "what is the density *everywhere*" by
materialising a volume; a serving layer must also answer "what is the
density *here, now*" without touching ``Theta(Gx * Gy * Gt)`` memory.
Following the bucketed evaluation idea of hashing-based KDE estimators
(Charikar & Siminelakis), :class:`BucketIndex` partitions the events into
cells of size ``hs x hs x ht`` — exactly one bandwidth per axis — so the
kernel support of any query location is covered by the 3 x 3 x 3 cell
neighbourhood around it:

* a point within ``hs`` of the query along x differs by less than one
  cell width, hence lands in an adjacent cell (same for y and t),
* therefore ``candidates(q)`` has **no false negatives**: every event
  whose kernel reaches ``q`` is returned, and the exact ``d < hs`` /
  ``|dt| <= ht`` masks of the engine discard the rest.

The index is a CSR layout over cell ids (counts + offsets + one
permutation array), built in O(n) with three vectorised passes and costing
O(n) memory — no per-cell Python objects.  Query batches are grouped by
cell (:meth:`group_queries`) so concurrent queries landing in the same
neighbourhood share one candidate gather, the shared-computation batching
of the multiple-query KDE literature.
"""

from __future__ import annotations

import math
from typing import Iterator, List, Optional, Tuple

import numpy as np

from ..core.grid import GridSpec

__all__ = ["BucketIndex"]


class BucketIndex:
    """CSR bucket index over events, cells of size ``hs x hs x ht``.

    Parameters
    ----------
    grid:
        The grid specification supplying the domain box and bandwidths
        (only the *domain* and bandwidths matter — the index never touches
        voxels).
    coords:
        ``(n, 3)`` event coordinates in domain space.
    weights:
        Optional ``(n,)`` per-event weights, carried alongside the
        permuted coordinates so weighted direct sums gather them in the
        same pass.
    """

    __slots__ = (
        "grid", "coords", "weights", "nx", "ny", "nt",
        "_offsets", "_order", "_cell_counts", "_box_counts",
    )

    def __init__(
        self,
        grid: GridSpec,
        coords: np.ndarray,
        weights: Optional[np.ndarray] = None,
    ) -> None:
        self.grid = grid
        coords = np.ascontiguousarray(np.asarray(coords, dtype=np.float64))
        if coords.ndim != 2 or coords.shape[1] != 3:
            raise ValueError(f"expected (n, 3) coordinates, got {coords.shape}")
        self.coords = coords
        if weights is not None:
            weights = np.ascontiguousarray(np.asarray(weights, dtype=np.float64))
            if weights.shape != (coords.shape[0],):
                raise ValueError("weights must be (n,) matching coords")
        self.weights = weights
        d = grid.domain
        self.nx = max(1, math.ceil(d.gx / grid.hs))
        self.ny = max(1, math.ceil(d.gy / grid.hs))
        self.nt = max(1, math.ceil(d.gt / grid.ht))
        cell = self.cell_of(coords)
        counts = np.bincount(cell, minlength=self.n_cells)
        self._cell_counts = counts
        self._offsets = np.concatenate(([0], np.cumsum(counts))).astype(np.int64)
        # Stable sort keeps insertion order within a cell: deterministic
        # candidate (and hence accumulation) order for the direct sums.
        self._order = np.argsort(cell, kind="stable").astype(np.int64)
        self._box_counts: Optional[np.ndarray] = None  # lazy, immutable

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of indexed events."""
        return self.coords.shape[0]

    @property
    def n_cells(self) -> int:
        """Total bucket count ``nx * ny * nt``."""
        return self.nx * self.ny * self.nt

    @property
    def occupied_cells(self) -> int:
        """Number of buckets holding at least one event."""
        return int(np.count_nonzero(self._cell_counts))

    @property
    def nbytes(self) -> int:
        """Index overhead beyond the coordinates (offsets + permutation)."""
        return self._offsets.nbytes + self._order.nbytes + self._cell_counts.nbytes

    # ------------------------------------------------------------------
    def cell_coords(self, queries: np.ndarray) -> np.ndarray:
        """``(m, 3)`` integer cell coordinates of query locations (clamped)."""
        q = np.asarray(queries, dtype=np.float64)
        d = self.grid.domain
        out = np.empty((q.shape[0], 3), dtype=np.int64)
        out[:, 0] = (q[:, 0] - d.x0) / self.grid.hs
        out[:, 1] = (q[:, 1] - d.y0) / self.grid.hs
        out[:, 2] = (q[:, 2] - d.t0) / self.grid.ht
        np.clip(out[:, 0], 0, self.nx - 1, out=out[:, 0])
        np.clip(out[:, 1], 0, self.ny - 1, out=out[:, 1])
        np.clip(out[:, 2], 0, self.nt - 1, out=out[:, 2])
        return out

    def cell_of(self, queries: np.ndarray) -> np.ndarray:
        """Flat cell id of each query location."""
        cc = self.cell_coords(queries)
        return (cc[:, 0] * self.ny + cc[:, 1]) * self.nt + cc[:, 2]

    def candidates(self, cx: int, cy: int, ct: int) -> np.ndarray:
        """Event indices whose kernel can reach cell ``(cx, cy, ct)``.

        The union of the 27-cell neighbourhood, as original point indices
        (ascending within each cell).  No false negatives for any query
        location inside the cell; callers apply the exact masks.
        """
        chunks: List[np.ndarray] = []
        off = self._offsets
        for ix in range(max(0, cx - 1), min(self.nx, cx + 2)):
            for iy in range(max(0, cy - 1), min(self.ny, cy + 2)):
                t_lo = max(0, ct - 1)
                t_hi = min(self.nt, ct + 2)
                # Cells contiguous in t are contiguous in the flat id, so
                # one (ix, iy) row of the neighbourhood is a single slice.
                c0 = (ix * self.ny + iy) * self.nt + t_lo
                c1 = (ix * self.ny + iy) * self.nt + t_hi
                lo, hi = int(off[c0]), int(off[c1])
                if hi > lo:
                    chunks.append(self._order[lo:hi])
        if not chunks:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(chunks)

    def candidate_counts(self, queries: np.ndarray) -> np.ndarray:
        """Exact candidate-set size per query, vectorised (planner input).

        Reads a 27-neighbourhood box-sum table built once per index (the
        per-cell counts are immutable) — O(cells) on first use, O(m) per
        batch after, no candidate gathering — so repeated planning costs
        the lookups, not the grid.
        """
        if self._box_counts is None:
            counts3 = self._cell_counts.reshape(self.nx, self.ny, self.nt)
            # 3-wide box sums via padded prefix sums, one axis at a time.
            box = counts3
            for axis, size in ((0, self.nx), (1, self.ny), (2, self.nt)):
                cum = np.concatenate(
                    [np.zeros_like(box.take([0], axis=axis)),
                     np.cumsum(box, axis=axis)],
                    axis=axis,
                )
                hi = np.minimum(np.arange(size) + 2, size)
                lo = np.maximum(np.arange(size) - 1, 0)
                box = cum.take(hi, axis=axis) - cum.take(lo, axis=axis)
            self._box_counts = box
        cc = self.cell_coords(queries)
        return self._box_counts[cc[:, 0], cc[:, 1], cc[:, 2]]

    def group_count(self, queries: np.ndarray) -> int:
        """Number of distinct home cells a query batch occupies.

        The number of gather-and-tabulate rounds :meth:`group_queries`
        will run — the unit the cost model's ``c_qgroup`` prices.
        """
        q = np.asarray(queries, dtype=np.float64)
        if q.shape[0] == 0:
            return 0
        return int(np.unique(self.cell_of(q)).size)

    def group_queries(
        self, queries: np.ndarray
    ) -> Iterator[Tuple[Tuple[int, int, int], np.ndarray]]:
        """Group a query batch by home cell: ``((cx, cy, ct), query_rows)``.

        Queries in the same cell share one candidate gather and one
        vectorised kernel tabulation — the batching that amortises index
        walks across concurrent queries.
        """
        q = np.asarray(queries, dtype=np.float64)
        if q.shape[0] == 0:
            return
        cell = self.cell_of(q)
        order = np.argsort(cell, kind="stable")
        sorted_cells = cell[order]
        starts = np.flatnonzero(
            np.concatenate(([True], sorted_cells[1:] != sorted_cells[:-1]))
        )
        bounds = np.concatenate((starts, [sorted_cells.size]))
        for s, e in zip(bounds[:-1], bounds[1:]):
            cid = int(sorted_cells[s])
            cx, rem = divmod(cid, self.ny * self.nt)
            cy, ct = divmod(rem, self.nt)
            yield (cx, cy, ct), order[s:e]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BucketIndex(n={self.n}, cells={self.nx}x{self.ny}x{self.nt}, "
            f"occupied={self.occupied_cells})"
        )
