"""Serving-side calibration of the machine model's query unit costs.

:meth:`repro.analysis.model.MachineModel.calibrate` probes the *write*
paths (stamping, tiles); the serving layer's unit costs are probed here,
next to the code they measure, so the analysis package never reaches up
into ``repro.serve``:

``c_lookup``
    Seconds per trilinear volume sample: slope of
    :func:`~repro.serve.engine.sample_volume` over two batch sizes.
``c_qgroup``
    Seconds per query cell-group of the *per-group* walk
    (:func:`~repro.serve.engine.direct_sum_grouped`): slope over two
    scattered batches, per group — prices the legacy walk the cohort
    engine replaced.
``c_qcohort``
    Seconds per candidate-count cohort of the cohort-vectorised engine
    (:func:`~repro.serve.engine.direct_sum`): slope over two scattered
    batches, per *cohort* — the dominant dispatch cost of scattered
    traffic after cohort batching.
``c_qprobe``
    Seconds per (cell-group x segment) CSR probe: slope of the cohort
    engine between a single-segment and a many-segment index over the
    same batch — what pricing an *incremental* index costs per extra
    live batch segment.
``c_qrow``
    Seconds per storage row of the index's row-movement maintenance:
    the measured per-row rate of consolidating many segments into one
    (:meth:`BucketIndex.sync`'s merge policy) — what
    :meth:`~repro.analysis.model.CostModel.predict_merge` charges to
    decide when consolidation pays.
``c_qsample``
    Seconds per candidate row drawn by the approximate backend
    (:func:`~repro.serve.engine.approx_sum`): slope of the sampler over
    two pinned draw counts on a dense fixture, per drawn row (the row
    counts come from the sampler's own ``stats_out``).
``c_qbound``
    Seconds per (query x run) contribution bound: slope of the sampler
    between a single-segment and a many-segment index at a fixed draw
    count — the sampling distribution's O(runs) setup per extra segment.

The sharded serving tier adds two process-boundary rates, probed by
:func:`calibrate_ipc`:

``c_msg``
    Seconds of fixed cost per coordinator/worker message (pickle
    framing plus the pipe syscall): the intercept of a payload-size
    sweep over a :func:`multiprocessing.Pipe` — what
    :meth:`~repro.analysis.model.CostModel.predict_scatter_gather`
    charges twice per contacted shard.
``c_qser``
    Seconds per ``(x, y, t)`` row serialized across the boundary: the
    slope of the same sweep — what every scattered query row and
    gathered partial pays on top of ``c_msg``.

The self-healing tier adds one more, probed by
:func:`calibrate_recovery`:

``c_spawn``
    Seconds to stand up one spawn-context worker process (fork-exec, a
    fresh interpreter, module imports, the pipe handshake) — the fixed
    floor of every supervised respawn, which
    :meth:`~repro.analysis.model.CostModel.predict_recovery` adds to the
    replay's IPC + restamp price to predict MTTR.

:class:`~repro.serve.service.DensityService` runs this lazily the first
time its planner is needed; callers with a pre-calibrated write-side
model pass it in to extend rather than re-probe.
"""

from __future__ import annotations

import dataclasses
import math
import multiprocessing as mp
import os
import time
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from ..analysis.model import MachineModel
from ..core.backends import available_backends
from ..core.grid import DomainSpec, GridSpec
from ..core.kernels import get_kernel
from .engine import approx_sum, direct_sum, direct_sum_grouped, sample_volume
from .index import BucketIndex

__all__ = [
    "calibrate_serving",
    "calibrate_ipc",
    "calibrate_recovery",
    "resolve_machine_model",
]

#: Environment variable naming a persisted calibration file
#: (:meth:`MachineModel.to_json`); honoured by
#: :func:`resolve_machine_model` and the CLI's ``--calibration-file``.
CALIBRATION_ENV = "REPRO_CALIBRATION"


def resolve_machine_model(
    path: Optional[str] = None, *, seed: int = 0
) -> MachineModel:
    """A serving-calibrated machine model, persisted when a path is known.

    Resolution order: an explicit ``path`` argument, then the
    ``REPRO_CALIBRATION`` environment variable.  When the resolved file
    exists it is loaded verbatim (no probes run — deterministic startup);
    otherwise :func:`calibrate_serving` probes this machine and, if a
    path was named, writes the result there so the next process skips
    the probes.  With no path at all this is just ``calibrate_serving``.
    """
    target = path if path is not None else os.environ.get(CALIBRATION_ENV)
    if target and os.path.exists(target):
        return MachineModel.load(target)
    machine = calibrate_serving(seed=seed)
    if target:
        machine.save(target)
    return machine


def _spawn_probe_target() -> None:
    """No-op child: the probe times process standup, not work."""


def calibrate_recovery(
    machine: Optional[MachineModel] = None, seed: int = 0
) -> MachineModel:
    """Fill ``c_spawn``: measured cost of one spawn-context standup.

    Starts a no-op process under the same ``spawn`` context the shard
    workers use and times start-to-join, twice (the first spawn pays
    one-time import caching; the best of two is the steady-state
    respawn cost the supervisor actually sees).  Expensive as probes go
    (~0.2–0.5 s): run explicitly by the faults bench and callers that
    want :meth:`~repro.analysis.model.CostModel.predict_recovery`, not
    by the service's lazy calibration.
    """
    machine = machine if machine is not None else MachineModel.calibrate(seed)
    ctx = mp.get_context("spawn")
    best = math.inf
    for _ in range(2):
        t0 = time.perf_counter()
        proc = ctx.Process(target=_spawn_probe_target)
        proc.start()
        proc.join()
        best = min(best, time.perf_counter() - t0)
    return dataclasses.replace(machine, c_spawn=max(best, 1e-6))


def calibrate_ipc(
    machine: Optional[MachineModel] = None, seed: int = 0
) -> MachineModel:
    """Fill the process-boundary rates ``c_msg`` / ``c_qser`` (~0.02 s).

    Times pickled ``(m, 3)`` float payloads through a same-process
    :func:`multiprocessing.Pipe` (both payloads stay well under the pipe
    buffer, so a send/recv pair measures serialization plus the syscall,
    never blocking): the slope over two sizes is the per-row rate, the
    small-payload residual the fixed per-message cost.  A same-process
    probe is a deterministic lower bound on the cross-process cost —
    exactly the bias a planner comparing *against* single-process
    serving should have.

    Starts from ``machine`` (or a fresh :meth:`MachineModel.calibrate`);
    other fields pass through untouched.
    """
    machine = machine if machine is not None else MachineModel.calibrate(seed)
    a, b = mp.Pipe()
    try:
        def roundtrip(rows: int) -> float:
            payload = np.zeros((rows, 3), dtype=np.float64)
            best = math.inf
            for _ in range(5):
                t0 = time.perf_counter()
                a.send(payload)
                b.recv()
                best = min(best, time.perf_counter() - t0)
            return best

        roundtrip(8)  # warm the pickling path
        m_small, m_large = 16, 2048  # 2048 * 24 B < the 64 KiB pipe buffer
        t_small = roundtrip(m_small)
        t_large = roundtrip(m_large)
        c_qser = max((t_large - t_small) / (m_large - m_small), 1e-12)
        c_msg = max(t_small - m_small * c_qser, 1e-9)
    finally:
        a.close()
        b.close()
    return dataclasses.replace(machine, c_msg=c_msg, c_qser=c_qser)


def calibrate_serving(
    machine: Optional[MachineModel] = None, seed: int = 0
) -> MachineModel:
    """A machine model with the query unit costs probed (~0.1 s).

    Starts from ``machine`` (or a fresh write-side
    :meth:`MachineModel.calibrate`) and fills ``c_lookup`` / ``c_qgroup``
    / ``c_qcohort`` / ``c_qprobe`` / ``c_qrow`` / ``c_qsample`` /
    ``c_qbound`` from micro-probes of the actual serving code paths.
    """
    machine = machine if machine is not None else MachineModel.calibrate(seed)
    rng = np.random.default_rng(seed)

    # Trilinear lookup rate: two batch sizes, slope = per-query cost.
    g_tile = GridSpec(DomainSpec.from_voxels(16, 16, 16), hs=4.0, ht=4.0)
    vol = rng.random(g_tile.shape)
    span = np.array([g_tile.domain.gx, g_tile.domain.gy, g_tile.domain.gt])

    def lookup_probe(n_q: int) -> float:
        qs = rng.uniform(0, span, size=(n_q, 3))
        best = math.inf
        for _ in range(3):
            t0 = time.perf_counter()
            sample_volume(vol, g_tile, qs)
            best = min(best, time.perf_counter() - t0)
        return best

    lookup_probe(8)  # warm the sampling code path
    q_small, q_large = 256, 4096
    t_lk_small = lookup_probe(q_small)
    t_lk_large = lookup_probe(q_large)
    c_lookup = max((t_lk_large - t_lk_small) / (q_large - q_small), 1e-12)

    # Direct-sum dispatch rates: scattered batches over a shared index.
    g_q = GridSpec(DomainSpec.from_voxels(64, 64, 64), hs=4.0, ht=4.0)
    q_span = np.array([g_q.domain.gx, g_q.domain.gy, g_q.domain.gt])
    events = rng.uniform(0, q_span, size=(2048, 3))
    idx = BucketIndex(g_q, events)
    kern = get_kernel("epanechnikov")

    def sum_probe(
        fn: Callable, index: BucketIndex, n_q: int
    ) -> Tuple[float, np.ndarray]:
        qs = rng.uniform(0, q_span, size=(n_q, 3))
        best = math.inf
        for _ in range(3):
            t0 = time.perf_counter()
            fn(index, qs, kern, 1.0)
            best = min(best, time.perf_counter() - t0)
        return best, qs

    # Per-group dispatch of the legacy walk (slope per group).
    sum_probe(direct_sum_grouped, idx, 8)  # warm
    t_g_small, qs_small = sum_probe(direct_sum_grouped, idx, 64)
    t_g_large, qs_large = sum_probe(direct_sum_grouped, idx, 512)
    g_small = idx.group_count(qs_small)
    g_large = idx.group_count(qs_large)
    c_qgroup = max((t_g_large - t_g_small) / max(g_large - g_small, 1), 1e-12)

    # Per-cohort dispatch of the cohort engine (slope per cohort).
    sum_probe(direct_sum, idx, 8)  # warm
    t_c_small, qs_small = sum_probe(direct_sum, idx, 64)
    t_c_large, qs_large = sum_probe(direct_sum, idx, 1024)
    k_small = idx.cohort_count(qs_small)
    k_large = idx.cohort_count(qs_large)
    c_qcohort = max((t_c_large - t_c_small) / max(k_large - k_small, 1), 1e-12)

    # Per-(group x segment) probe cost: same batch, same events, the
    # index split into many per-batch segments vs one — the incremental
    # index's marginal cost per live segment.
    n_segs = 8
    idx_multi = BucketIndex(g_q)
    for s in range(n_segs):
        idx_multi.add_segment(s, events[s::n_segs])
    qs = rng.uniform(0, q_span, size=(512, 3))
    groups = idx.group_count(qs)

    def seg_probe(index: BucketIndex) -> float:
        best = math.inf
        for _ in range(3):
            t0 = time.perf_counter()
            direct_sum(index, qs, kern, 1.0)
            best = min(best, time.perf_counter() - t0)
        return best

    seg_probe(idx_multi)  # warm the multi-segment gather shape
    t_multi = seg_probe(idx_multi)
    t_single = seg_probe(idx)
    c_qprobe = max(
        (t_multi - t_single) / max(groups * (n_segs - 1), 1), 1e-12
    )

    # Approximate-tier rates.  A dense fixture — wide bandwidth, queries
    # in the central cell so every one sees the full 27-cell candidate
    # set — keeps the sampler in its sampling regime (no exact
    # fallbacks), and a slack eps with a pinned ``min_sample`` makes the
    # draw count deterministic (one round, immediate convergence): the
    # slope over two pinned sizes is the pure per-drawn-row rate, free of
    # stop-rule noise.  The per-bound rate is the slope between a single-
    # and a many-segment index at a fixed draw count — the sampling
    # distribution's setup cost per extra run.
    g_dense = GridSpec(DomainSpec.from_voxels(48, 48, 48), hs=16.0, ht=16.0)
    dense_events = rng.uniform(0, 48.0, size=(4096, 3))
    idx_dense = BucketIndex(g_dense, dense_events)
    idx_dense_multi = BucketIndex(g_dense)
    for s in range(n_segs):
        idx_dense_multi.add_segment(s, dense_events[s::n_segs])

    def approx_probe(
        index: BucketIndex, qs_probe: np.ndarray, min_sample: int
    ) -> Tuple[float, dict]:
        best = math.inf
        stats: dict = {}
        for _ in range(3):
            st: dict = {}
            t0 = time.perf_counter()
            approx_sum(index, qs_probe, kern, 1.0, eps=1e6, seed=seed,
                       min_sample=min_sample, stats_out=st)
            dt = time.perf_counter() - t0
            if dt < best:
                best, stats = dt, st
        return best, stats

    qs_sample = rng.uniform(16.0, 32.0, size=(128, 3))
    qs_bound = rng.uniform(16.0, 32.0, size=(1024, 3))
    approx_probe(idx_dense, qs_sample, 64)  # warm the sampler code path
    t_s_small, st_s_small = approx_probe(idx_dense, qs_sample, 256)
    t_s_large, st_s_large = approx_probe(idx_dense, qs_sample, 2048)
    d_rows = st_s_large["sample_rows_drawn"] - st_s_small["sample_rows_drawn"]
    c_qsample = max((t_s_large - t_s_small) / max(d_rows, 1), 1e-12)
    t_b_one, st_b_one = approx_probe(idx_dense, qs_bound, 64)
    t_b_multi, st_b_multi = approx_probe(idx_dense_multi, qs_bound, 64)
    d_bounds = st_b_multi["bounds_evaluated"] - st_b_one["bounds_evaluated"]
    c_qbound = max((t_b_multi - t_b_one) / max(d_bounds, 1), 1e-12)

    # Row-movement rate of index maintenance: time the real merge path
    # (member-major row copy + cells merge-sort, no re-bucketing) over a
    # many-segment index, per row.
    best = math.inf
    for _ in range(3):
        idx_merge = BucketIndex(g_q)
        for s in range(n_segs):
            idx_merge.add_segment(s, events[s::n_segs])
        t0 = time.perf_counter()
        idx_merge.consolidate_segments(list(range(n_segs)))
        best = min(best, time.perf_counter() - t0)
    c_qrow = max(best / max(len(events), 1), 1e-12)

    machine = dataclasses.replace(
        machine, c_lookup=c_lookup, c_qgroup=c_qgroup,
        c_qcohort=c_qcohort, c_qprobe=c_qprobe, c_qrow=c_qrow,
        c_qsample=c_qsample, c_qbound=c_qbound,
    )

    # Per-backend unit costs: re-run the pair-dominated, cohort-dominated
    # and sampler probes once per registered compute backend, pinned via
    # the engines' ``compute=`` seam, so the planner's ``compute="auto"``
    # argmin routes on rates measured through the code paths it prices.
    # Each probe warms the backend first (for numba that warm call pays
    # the JIT compile, so the timed calls measure steady state — warmup
    # is reported separately via ``ComputeBackend.warmup_seconds``).
    backend_costs: Dict[str, Dict[str, float]] = {}
    qs_pair_small = rng.uniform(16.0, 32.0, size=(32, 3))
    qs_pair_large = rng.uniform(16.0, 32.0, size=(256, 3))
    pairs_small = int(idx_dense.candidate_counts(qs_pair_small).sum())
    pairs_large = int(idx_dense.candidate_counts(qs_pair_large).sum())
    qs_coh_small = rng.uniform(0, q_span, size=(64, 3))
    qs_coh_large = rng.uniform(0, q_span, size=(1024, 3))
    coh_small = idx.cohort_count(qs_coh_small)
    coh_large = idx.cohort_count(qs_coh_large)
    for name in available_backends():

        def dsum(index: BucketIndex, qs_probe: np.ndarray) -> float:
            best = math.inf
            for _ in range(3):
                t0 = time.perf_counter()
                direct_sum(index, qs_probe, kern, 1.0, compute=name)
                best = min(best, time.perf_counter() - t0)
            return best

        def asum(min_sample: int) -> Tuple[float, dict]:
            best, stats = math.inf, {}
            for _ in range(3):
                st: dict = {}
                t0 = time.perf_counter()
                approx_sum(idx_dense, qs_sample, kern, 1.0, eps=1e6,
                           seed=seed, min_sample=min_sample, stats_out=st,
                           compute=name)
                dt = time.perf_counter() - t0
                if dt < best:
                    best, stats = dt, st
            return best, stats

        dsum(idx_dense, qs_pair_small[:4])  # warm (pays any JIT compile)
        t_p_small = dsum(idx_dense, qs_pair_small)
        t_p_large = dsum(idx_dense, qs_pair_large)
        c_pair_b = max(
            (t_p_large - t_p_small) / max(pairs_large - pairs_small, 1),
            1e-13,
        )
        dsum(idx, qs_coh_small[:8])  # warm the scattered cohort shape
        t_k_small = dsum(idx, qs_coh_small)
        t_k_large = dsum(idx, qs_coh_large)
        c_qcohort_b = max(
            (t_k_large - t_k_small) / max(coh_large - coh_small, 1), 1e-13
        )
        asum(64)  # warm the sampler path on this backend
        t_a_small, st_a_small = asum(256)
        t_a_large, st_a_large = asum(2048)
        d_rows_b = (
            st_a_large["sample_rows_drawn"] - st_a_small["sample_rows_drawn"]
        )
        c_qsample_b = max(
            (t_a_large - t_a_small) / max(d_rows_b, 1), 1e-13
        )
        backend_costs[name] = {
            "c_pair": c_pair_b,
            "c_qcohort": c_qcohort_b,
            "c_qsample": c_qsample_b,
        }
    return machine.with_backend_costs(backend_costs)
