"""Serving-side calibration of the machine model's query unit costs.

:meth:`repro.analysis.model.MachineModel.calibrate` probes the *write*
paths (stamping, tiles); the serving layer's two unit costs are probed
here, next to the code they measure, so the analysis package never
reaches up into ``repro.serve``:

``c_lookup``
    Seconds per trilinear volume sample: slope of
    :func:`~repro.serve.engine.sample_volume` over two batch sizes.
``c_qgroup``
    Seconds per query cell-group of the direct-sum path (candidate
    gather + one small tabulation): slope of
    :func:`~repro.serve.engine.direct_sum` over two scattered batches,
    per *group* — the dominant per-query cost for scattered traffic.

:class:`~repro.serve.service.DensityService` runs this lazily the first
time its planner is needed; callers with a pre-calibrated write-side
model pass it in to extend rather than re-probe.
"""

from __future__ import annotations

import dataclasses
import math
import time
from typing import Optional, Tuple

import numpy as np

from ..analysis.model import MachineModel
from ..core.grid import DomainSpec, GridSpec
from ..core.kernels import get_kernel
from .engine import direct_sum, sample_volume
from .index import BucketIndex

__all__ = ["calibrate_serving"]


def calibrate_serving(
    machine: Optional[MachineModel] = None, seed: int = 0
) -> MachineModel:
    """A machine model with the query unit costs probed (~0.05 s).

    Starts from ``machine`` (or a fresh write-side
    :meth:`MachineModel.calibrate`) and fills ``c_lookup`` / ``c_qgroup``
    from micro-probes of the actual serving code paths.
    """
    machine = machine if machine is not None else MachineModel.calibrate(seed)
    rng = np.random.default_rng(seed)

    # Trilinear lookup rate: two batch sizes, slope = per-query cost.
    g_tile = GridSpec(DomainSpec.from_voxels(16, 16, 16), hs=4.0, ht=4.0)
    vol = rng.random(g_tile.shape)
    span = np.array([g_tile.domain.gx, g_tile.domain.gy, g_tile.domain.gt])

    def lookup_probe(n_q: int) -> float:
        qs = rng.uniform(0, span, size=(n_q, 3))
        best = math.inf
        for _ in range(3):
            t0 = time.perf_counter()
            sample_volume(vol, g_tile, qs)
            best = min(best, time.perf_counter() - t0)
        return best

    lookup_probe(8)  # warm the sampling code path
    q_small, q_large = 256, 4096
    t_lk_small = lookup_probe(q_small)
    t_lk_large = lookup_probe(q_large)
    c_lookup = max((t_lk_large - t_lk_small) / (q_large - q_small), 1e-12)

    # Direct-sum per-group dispatch: scattered batches (~one cell-group
    # per query) at two sizes, slope per *group*.
    g_q = GridSpec(DomainSpec.from_voxels(64, 64, 64), hs=4.0, ht=4.0)
    q_span = np.array([g_q.domain.gx, g_q.domain.gy, g_q.domain.gt])
    idx = BucketIndex(g_q, rng.uniform(0, q_span, size=(2048, 3)))
    kern = get_kernel("epanechnikov")

    def group_probe(n_q: int) -> Tuple[float, int]:
        qs = rng.uniform(0, q_span, size=(n_q, 3))
        best = math.inf
        for _ in range(3):
            t0 = time.perf_counter()
            direct_sum(idx, qs, kern, 1.0)
            best = min(best, time.perf_counter() - t0)
        return best, idx.group_count(qs)

    group_probe(8)  # warm the direct-sum code path
    t_g_small, g_small = group_probe(64)
    t_g_large, g_large = group_probe(512)
    c_qgroup = max((t_g_large - t_g_small) / max(g_large - g_small, 1), 1e-12)

    return dataclasses.replace(machine, c_lookup=c_lookup, c_qgroup=c_qgroup)
