"""Point and volume I/O.

Events travel as CSV (``x,y,t`` columns, header line) — the universal
interchange format for the GIS tooling this library sits next to.  Weighted
events (case multiplicities, report confidences) round-trip through an
optional fourth ``w`` column, so query-serving snapshots persist their
weights.  Density volumes travel as ``.npy`` with a JSON sidecar capturing
the full :class:`~repro.core.grid.DomainSpec` and bandwidths, so a saved
volume can be reloaded into a correctly georeferenced
:class:`~repro.core.grid.Volume` without guessing.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from ..core.grid import DomainSpec, GridSpec, PointSet, Volume

__all__ = [
    "save_points_csv",
    "load_points_csv",
    "save_volume",
    "load_volume",
]

PathLike = Union[str, Path]


def save_points_csv(points: PointSet, path: PathLike) -> None:
    """Write events as ``x,y,t`` CSV (``x,y,t,w`` when weighted)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if points.weights is not None:
        table = np.column_stack([points.coords, points.weights])
        header = "x,y,t,w"
    else:
        table = points.coords
        header = "x,y,t"
    np.savetxt(
        path,
        table,
        delimiter=",",
        header=header,
        comments="",
        fmt="%.17g",
    )


def load_points_csv(path: PathLike) -> PointSet:
    """Read events from ``x,y,t[,w]`` CSV (header row optional).

    A fourth column is interpreted as per-event weights and preserved on
    the returned :class:`~repro.core.grid.PointSet`, so a weighted save
    round-trips exactly.
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no such point file: {path}")
    with open(path, "r", encoding="utf-8") as fh:
        first = fh.readline()
    # Header iff the first row isn't parseable as numbers ("x,y,t" is,
    # "1.2e-03" is not a header despite containing a letter).
    try:
        [float(tok) for tok in first.strip().split(",") if tok != ""]
        skip = 0
    except ValueError:
        skip = 1
    arr = np.loadtxt(path, delimiter=",", skiprows=skip, ndmin=2)
    if arr.shape[1] == 4:
        return PointSet(arr[:, :3], arr[:, 3])
    if arr.shape[1] != 3:
        raise ValueError(
            f"{path}: expected 3 columns (x, y, t) or 4 (x, y, t, w), "
            f"found {arr.shape[1]}"
        )
    return PointSet(arr)


def _sidecar(path: Path) -> Path:
    return path.with_suffix(path.suffix + ".json")


def save_volume(volume: Volume, path: PathLike) -> None:
    """Write a density volume as ``.npy`` plus a JSON geometry sidecar."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.save(path, volume.data)
    d = volume.grid.domain
    meta = {
        "format": "repro-stkde-volume",
        "version": 1,
        "domain": {
            "gx": d.gx, "gy": d.gy, "gt": d.gt,
            "sres": d.sres, "tres": d.tres,
            "x0": d.x0, "y0": d.y0, "t0": d.t0,
        },
        "hs": volume.grid.hs,
        "ht": volume.grid.ht,
        "shape": list(volume.data.shape),
    }
    # np.save may have appended ".npy"; mirror that for the sidecar.
    target = path if path.suffix == ".npy" else path.with_suffix(path.suffix + ".npy")
    with open(_sidecar(target), "w", encoding="utf-8") as fh:
        json.dump(meta, fh, indent=2)


def load_volume(path: PathLike) -> Volume:
    """Reload a volume saved by :func:`save_volume`."""
    path = Path(path)
    if path.suffix != ".npy":
        path = path.with_suffix(path.suffix + ".npy")
    if not path.exists():
        raise FileNotFoundError(f"no such volume file: {path}")
    side = _sidecar(path)
    if not side.exists():
        raise FileNotFoundError(
            f"volume sidecar missing: {side} (was the volume saved with save_volume?)"
        )
    with open(side, "r", encoding="utf-8") as fh:
        meta = json.load(fh)
    if meta.get("format") != "repro-stkde-volume":
        raise ValueError(f"{side}: not a repro STKDE volume sidecar")
    data = np.load(path)
    if list(data.shape) != meta["shape"]:
        raise ValueError(
            f"{path}: array shape {data.shape} disagrees with sidecar {meta['shape']}"
        )
    dom = DomainSpec(**meta["domain"])
    grid = GridSpec(dom, hs=meta["hs"], ht=meta["ht"])
    return Volume(data, grid)
