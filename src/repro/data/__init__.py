"""Datasets: synthetic generators, the Table 2 instance registry, and I/O."""

from .datasets import (
    Instance,
    PaperInstance,
    SCALES,
    get_instance,
    instance_names,
    iter_instances,
    paper_table2,
)
from .io import load_points_csv, load_volume, save_points_csv, save_volume
from .synthetic import (
    cluster_process,
    dengue_like,
    ebird_like,
    flu_like,
    generator_for,
    pollen_like,
    uniform_process,
)

__all__ = [
    "Instance",
    "PaperInstance",
    "SCALES",
    "get_instance",
    "instance_names",
    "iter_instances",
    "paper_table2",
    "load_points_csv",
    "load_volume",
    "save_points_csv",
    "save_volume",
    "cluster_process",
    "dengue_like",
    "ebird_like",
    "flu_like",
    "generator_for",
    "pollen_like",
    "uniform_process",
]
