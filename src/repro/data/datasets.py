"""The 21 problem instances of Table 2, at paper scale and bench scale.

The paper derives 21 instances from its four datasets, coded by resolution
(``Lr``/``Mr``/``Hr``/``VHr``) and bandwidth (``VLb``/``Lb``/``Mb``/``Hb``/
``VHb``).  This registry reproduces every row of Table 2 exactly
(``scale="paper"``) and derives laptop-scale twins (``scale="bench"``,
``"table3"``, ``"test"``) used by the benchmark harness and tests.

Scaling preserves the property every figure of the paper keys on: the
ratio of compute work ``n*(2Hs+1)^2*(2Ht+1)`` to initialisation work
``Gx*Gy*Gt``.  That ratio classifies an instance as init-dominated (Flu)
or compute-dominated (eBird, PollenUS-Hb) — Figure 7 — which in turn
decides which parallel strategy wins (Figure 15).  The derivation:

1. shrink all grid axes by a common factor so the volume hits the scale's
   ``target_voxels``;
2. shrink bandwidths with the grid, but never below ``min(paper, 3)`` —
   a stamp of a few voxels cannot exhibit the invariant-reuse effects;
3. pick ``n`` to restore the paper's compute/init ratio, capped at
   ``max(ratio) = 60`` and ``max(n)`` per scale (eBird's 292 M points are
   not tractable in pure Python; the ratio cap keeps the instance in the
   same regime, which is what matters — see DESIGN.md).

Memory-budget emulation: the paper's machine had 128 GB and stored
float32 volumes, allowing ``128 GiB / (V * 4)`` volume copies; DR dies on
Flu-Hr at 8+ threads and on every eBird-Hr instance (Figure 8).  Each
bench instance carries the *same number of allowed copies* as its paper
original, so the OOM outcomes reproduce identically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from ..core.grid import DomainSpec, GridSpec, PointSet
from .synthetic import generator_for

__all__ = [
    "PaperInstance",
    "Instance",
    "SCALES",
    "instance_names",
    "get_instance",
    "iter_instances",
    "paper_table2",
    "MACHINE_MEMORY_BYTES",
    "PAPER_VOXEL_BYTES",
]

#: The experiment machine of Section 6.1: 128 GB of DDR4.
MACHINE_MEMORY_BYTES = 128 * 1024**3
#: The paper's C++ implementation stores float32 voxels (Table 2's MB
#: column matches 4-byte voxels).
PAPER_VOXEL_BYTES = 4


@dataclass(frozen=True)
class PaperInstance:
    """One row of Table 2, verbatim."""

    name: str
    dataset: str
    n: int
    Gx: int
    Gy: int
    Gt: int
    size_mb: int  # as printed (MiB of float32 voxels)
    Hs: int
    Ht: int

    @property
    def n_voxels(self) -> int:
        return self.Gx * self.Gy * self.Gt

    @property
    def stamp_voxels(self) -> int:
        """Full cylinder bounding-box volume ``(2Hs+1)^2 (2Ht+1)``."""
        return (2 * self.Hs + 1) ** 2 * (2 * self.Ht + 1)

    @property
    def compute_init_ratio(self) -> float:
        """``n * stamp / voxels`` — Figure 7's init- vs compute-dominated."""
        return self.n * self.stamp_voxels / self.n_voxels

    @property
    def copies_allowed(self) -> float:
        """How many volume replicas fit in the paper machine's memory."""
        return MACHINE_MEMORY_BYTES / (self.n_voxels * PAPER_VOXEL_BYTES)


# Table 2, verbatim.
_TABLE2: Tuple[PaperInstance, ...] = (
    PaperInstance("Dengue_Lr-Lb", "dengue", 11056, 148, 194, 728, 79, 3, 1),
    PaperInstance("Dengue_Lr-Hb", "dengue", 11056, 148, 194, 728, 79, 25, 1),
    PaperInstance("Dengue_Hr-Lb", "dengue", 11056, 294, 386, 728, 315, 2, 1),
    PaperInstance("Dengue_Hr-Hb", "dengue", 11056, 294, 386, 728, 315, 50, 1),
    PaperInstance("Dengue_Hr-VHb", "dengue", 11056, 294, 386, 728, 315, 50, 14),
    PaperInstance("PollenUS_Lr-Lb", "pollen", 588189, 131, 61, 84, 2, 2, 3),
    PaperInstance("PollenUS_Hr-Lb", "pollen", 588189, 651, 301, 84, 62, 10, 3),
    PaperInstance("PollenUS_Hr-Mb", "pollen", 588189, 651, 301, 84, 62, 25, 7),
    PaperInstance("PollenUS_Hr-Hb", "pollen", 588189, 651, 301, 84, 62, 50, 14),
    PaperInstance("PollenUS_VHr-Lb", "pollen", 588189, 6501, 3001, 84, 6252, 100, 3),
    PaperInstance("PollenUS_VHr-VLb", "pollen", 588189, 6501, 3001, 84, 6252, 50, 3),
    PaperInstance("Flu_Lr-Lb", "flu", 31478, 117, 308, 851, 117, 1, 1),
    PaperInstance("Flu_Lr-Hb", "flu", 31478, 117, 308, 851, 117, 2, 3),
    PaperInstance("Flu_Mr-Lb", "flu", 31478, 233, 615, 1985, 1085, 2, 3),
    PaperInstance("Flu_Mr-Hb", "flu", 31478, 233, 615, 1985, 1085, 4, 7),
    PaperInstance("Flu_Hr-Lb", "flu", 31478, 581, 1536, 5951, 20260, 5, 7),
    PaperInstance("Flu_Hr-Hb", "flu", 31478, 581, 1536, 5951, 20260, 10, 21),
    PaperInstance("eBird_Lr-Lb", "ebird", 291990435, 357, 721, 2435, 2391, 2, 3),
    PaperInstance("eBird_Lr-Hb", "ebird", 291990435, 357, 721, 2435, 2391, 6, 5),
    PaperInstance("eBird_Hr-Lb", "ebird", 291990435, 1781, 3601, 2435, 59570, 10, 3),
    PaperInstance("eBird_Hr-Hb", "ebird", 291990435, 1781, 3601, 2435, 59570, 30, 5),
)

_BY_NAME: Dict[str, PaperInstance] = {p.name: p for p in _TABLE2}


@dataclass(frozen=True)
class ScaleSpec:
    """Sizing policy for one scale tier."""

    name: str
    target_voxels: int
    max_points: int
    max_ratio: float  # cap on compute/init ratio


SCALES: Dict[str, ScaleSpec] = {
    # Paper scale: exact Table 2 parameters (only small instances are
    # tractable to *run* in Python; the registry still exposes them all).
    "paper": ScaleSpec("paper", 0, 0, math.inf),
    # Bench scale: the default for the figure benchmarks.
    "bench": ScaleSpec("bench", 1_500_000, 12_000, 60.0),
    # Table 3 scale: small enough that the Theta(V*n) VB gold standard
    # completes in seconds.
    "table3": ScaleSpec("table3", 200_000, 2_500, 60.0),
    # Test scale: integration tests.
    "test": ScaleSpec("test", 20_000, 300, 60.0),
}


@dataclass(frozen=True)
class Instance:
    """A runnable instance: grid geometry, bandwidths, and point count.

    ``copies_allowed`` carries the paper machine's memory headroom into the
    executors' budget checks (see module docstring).
    """

    name: str
    dataset: str
    scale: str
    n: int
    Gx: int
    Gy: int
    Gt: int
    Hs: int
    Ht: int
    copies_allowed: float
    seed: int = 1729

    @property
    def paper(self) -> PaperInstance:
        """The Table 2 row this instance derives from."""
        return _BY_NAME[self.name]

    @property
    def n_voxels(self) -> int:
        return self.Gx * self.Gy * self.Gt

    @property
    def stamp_voxels(self) -> int:
        return (2 * self.Hs + 1) ** 2 * (2 * self.Ht + 1)

    @property
    def compute_init_ratio(self) -> float:
        return self.n * self.stamp_voxels / self.n_voxels

    @property
    def memory_budget_bytes(self) -> int:
        """Scaled memory ceiling: same copy headroom as the paper machine."""
        return int(self.copies_allowed * self.n_voxels * 8)

    def grid(self) -> GridSpec:
        """Voxel-unit grid (``sres = tres = 1``, ``hs = Hs``, ``ht = Ht``)."""
        dom = DomainSpec.from_voxels(self.Gx, self.Gy, self.Gt)
        return GridSpec(dom, hs=float(self.Hs), ht=float(self.Ht))

    def points(self) -> PointSet:
        """Deterministic synthetic point set for this instance."""
        gen = generator_for(self.dataset)
        return gen(self.n, (float(self.Gx), float(self.Gy), float(self.Gt)), seed=self.seed)

    def describe(self) -> str:
        """One-line summary in the style of Table 2."""
        mb = self.n_voxels * 8 / 1024**2
        return (
            f"{self.name:18s} n={self.n:<9d} {self.Gx}x{self.Gy}x{self.Gt} "
            f"{mb:8.1f}MB Hs={self.Hs:<3d} Ht={self.Ht:<3d} "
            f"ratio={self.compute_init_ratio:8.2f} [{self.scale}]"
        )


def _solve_dims(paper_dims: List[int], target_voxels: int, floor: int = 12) -> Tuple[int, int, int]:
    """Per-axis shrink factors under a minimum-dimension floor.

    When an axis (typically the short PollenUS time axis) clamps at the
    floor, the remaining axes shrink further to hit the volume target.
    """
    dims: List[int] = [0, 0, 0]
    free = [0, 1, 2]
    fixed_product = 1.0
    f = 1.0
    for _ in range(4):
        free_paper_product = math.prod(paper_dims[i] for i in free)
        f = min(
            1.0,
            (target_voxels / (fixed_product * free_paper_product))
            ** (1.0 / len(free)),
        )
        clamped = [i for i in free if paper_dims[i] * f < floor]
        if not clamped:
            break
        for i in clamped:
            dims[i] = floor
            fixed_product *= floor
            free.remove(i)
        if not free:
            break
    for i in free:
        dims[i] = max(floor, round(paper_dims[i] * f))
    return dims[0], dims[1], dims[2]


def _derive(paper: PaperInstance, spec: ScaleSpec) -> Instance:
    """Derive a scaled twin of a Table 2 row (see module docstring)."""
    if spec.name == "paper":
        return Instance(
            name=paper.name,
            dataset=paper.dataset,
            scale="paper",
            n=paper.n,
            Gx=paper.Gx,
            Gy=paper.Gy,
            Gt=paper.Gt,
            Hs=paper.Hs,
            Ht=paper.Ht,
            copies_allowed=paper.copies_allowed,
        )
    Gx, Gy, Gt = _solve_dims(
        [paper.Gx, paper.Gy, paper.Gt], spec.target_voxels
    )
    # Bandwidths shrink with their own axes (realized factors) but keep a
    # floor of min(paper, 3): a 1-voxel stamp cannot exercise invariant
    # reuse or DD clipping.
    f_s = math.sqrt((Gx / paper.Gx) * (Gy / paper.Gy))
    f_t = Gt / paper.Gt
    Hs = max(min(paper.Hs, 3), round(paper.Hs * f_s))
    Ht = max(min(paper.Ht, 3), round(paper.Ht * f_t))
    # Bandwidth must remain meaningful w.r.t. the shrunk grid.
    Hs = min(Hs, max(1, min(Gx, Gy) // 2))
    Ht = min(Ht, max(1, Gt // 2))
    voxels = Gx * Gy * Gt
    stamp = (2 * Hs + 1) ** 2 * (2 * Ht + 1)
    ratio = min(paper.compute_init_ratio, spec.max_ratio)
    n = int(round(ratio * voxels / stamp))
    n = max(8, min(spec.max_points, n))
    # If the point cap binds on a compute-dominated instance, the grid must
    # shrink instead so the compute/init regime survives (eBird's 292M
    # points are emulated by a denser, smaller instance).
    realized = n * stamp / voxels
    if ratio >= 4.0 and realized < min(ratio, 8.0):
        voxel_floor = max(12**3 * 4, spec.target_voxels // 16)
        new_target = max(voxel_floor, int(n * stamp / ratio))
        if new_target < voxels:
            Gx, Gy, Gt = _solve_dims([paper.Gx, paper.Gy, paper.Gt], new_target)
            Hs = min(Hs, max(1, min(Gx, Gy) // 2))
            Ht = min(Ht, max(1, Gt // 2))
    return Instance(
        name=paper.name,
        dataset=paper.dataset,
        scale=spec.name,
        n=n,
        Gx=Gx,
        Gy=Gy,
        Gt=Gt,
        Hs=Hs,
        Ht=Ht,
        copies_allowed=paper.copies_allowed,
    )


def instance_names() -> Tuple[str, ...]:
    """The 21 instance names, in Table 2 order."""
    return tuple(p.name for p in _TABLE2)


def paper_table2() -> Tuple[PaperInstance, ...]:
    """All Table 2 rows, verbatim."""
    return _TABLE2


def get_instance(name: str, scale: str = "bench") -> Instance:
    """Instance by Table 2 name at the requested scale tier."""
    if name not in _BY_NAME:
        known = ", ".join(instance_names())
        raise KeyError(f"unknown instance {name!r}; available: {known}")
    if scale not in SCALES:
        raise KeyError(f"unknown scale {scale!r}; available: {sorted(SCALES)}")
    return _derive(_BY_NAME[name], SCALES[scale])


def iter_instances(
    scale: str = "bench", datasets: Optional[Tuple[str, ...]] = None
) -> Iterator[Instance]:
    """Iterate instances at a scale, optionally filtered by dataset kind."""
    for p in _TABLE2:
        if datasets is None or p.dataset in datasets:
            yield get_instance(p.name, scale)
