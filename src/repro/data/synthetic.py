"""Synthetic space-time point processes emulating the paper's datasets.

The paper evaluates on four proprietary/large corpora (Section 6.1):
Dengue surveillance (Cali, Colombia), PollenUS tweets, avian Flu
observations, and eBird sightings.  None are redistributable, so this
module provides generators that reproduce the *structural* properties that
drive the paper's performance results:

* **clustering** — points concentrate in hot spots, which is what creates
  the load imbalance that breaks PB-SYM-DD/PD (Sections 4.2, 5.1);
* **density regime** — the ratio of points to domain volume determines
  whether an instance is initialisation- or compute-dominated (Figure 7):
  Flu is ~31K points over the whole planet (init-dominated), eBird is
  hundreds of millions (compute-dominated);
* **temporal structure** — epidemic waves, seasonal ramps, migration.

All generators work in *voxel-unit* domain coordinates: points live in
``[0, Gx) x [0, Gy) x [0, Gt)`` with ``sres = tres = 1``, matching how
Table 2 specifies the instances.  Generators are deterministic given a
seed.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from ..core.grid import PointSet

__all__ = [
    "uniform_process",
    "cluster_process",
    "dengue_like",
    "pollen_like",
    "flu_like",
    "ebird_like",
    "generator_for",
]

Extent = Tuple[float, float, float]


def _clip_to_extent(pts: np.ndarray, extent: Extent) -> np.ndarray:
    """Clip coordinates into the half-open domain box."""
    hi = np.asarray(extent) * (1.0 - 1e-9)
    return np.clip(pts, 0.0, hi)


def _check_n(n: int) -> None:
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")


def uniform_process(n: int, extent: Extent, seed: int = 0) -> PointSet:
    """Homogeneous Poisson-like process: ``n`` uniform points in the box."""
    if n < 1:
        raise ValueError("n must be >= 1")
    rng = np.random.default_rng(seed)
    pts = rng.uniform([0.0, 0.0, 0.0], extent, size=(n, 3))
    return PointSet(_clip_to_extent(pts, extent))


def cluster_process(
    n: int,
    extent: Extent,
    *,
    n_clusters: int,
    spatial_sigma: float,
    temporal_sigma: float,
    cluster_weights: Optional[np.ndarray] = None,
    centers: Optional[np.ndarray] = None,
    background_fraction: float = 0.05,
    seed: int = 0,
) -> PointSet:
    """Generic space-time cluster mixture (Neyman-Scott style).

    ``n_clusters`` parents are placed uniformly (or given via ``centers``,
    an ``(k, 3)`` array); each of the ``n`` offspring picks a parent
    according to ``cluster_weights`` (uniform by default) and scatters
    around it with the given spatial/temporal Gaussian sigmas.  A
    ``background_fraction`` of points is uniform noise — real surveillance
    data always has stragglers.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    if n_clusters < 1:
        raise ValueError("n_clusters must be >= 1")
    if not 0.0 <= background_fraction <= 1.0:
        raise ValueError("background_fraction must be within [0, 1]")
    rng = np.random.default_rng(seed)
    ext = np.asarray(extent, dtype=np.float64)
    if centers is None:
        centers = rng.uniform(0.1 * ext, 0.9 * ext, size=(n_clusters, 3))
    else:
        centers = np.asarray(centers, dtype=np.float64)
        if centers.shape != (n_clusters, 3):
            raise ValueError("centers must have shape (n_clusters, 3)")
    if cluster_weights is None:
        weights = np.full(n_clusters, 1.0 / n_clusters)
    else:
        weights = np.asarray(cluster_weights, dtype=np.float64)
        if weights.shape != (n_clusters,) or weights.min() < 0:
            raise ValueError("cluster_weights must be k non-negative values")
        weights = weights / weights.sum()

    n_bg = int(round(n * background_fraction))
    n_cl = n - n_bg
    which = rng.choice(n_clusters, size=n_cl, p=weights)
    scatter = rng.normal(0.0, 1.0, size=(n_cl, 3)) * np.array(
        [spatial_sigma, spatial_sigma, temporal_sigma]
    )
    clustered = centers[which] + scatter
    background = rng.uniform(0.0, ext, size=(n_bg, 3))
    pts = np.vstack([clustered, background]) if n_bg else clustered
    return PointSet(_clip_to_extent(pts, extent))


def dengue_like(n: int, extent: Extent, seed: int = 0) -> PointSet:
    """Urban epidemic: a dozen neighbourhood clusters, two seasonal waves.

    Mimics the Cali dengue-surveillance structure: cases concentrate in a
    handful of neighbourhoods and arrive in two epidemic waves over the two
    recorded years (the 2010 wave being much larger, cf. 9,606 vs 1,562
    geocoded cases).
    """
    _check_n(n)
    rng = np.random.default_rng(seed)
    ext = np.asarray(extent, dtype=np.float64)
    k = 12
    centers_xy = rng.uniform(0.15 * ext[:2], 0.85 * ext[:2], size=(k, 2))
    weights = rng.dirichlet(np.full(k, 0.7))
    # Two epidemic waves; the first carries ~85% of the mass.
    wave_centers = np.array([0.22, 0.70]) * ext[2]
    wave_sigmas = np.array([0.08, 0.06]) * ext[2]
    wave_probs = np.array([0.85, 0.15])

    which = rng.choice(k, size=n, p=weights)
    sigma = 0.03 * float(min(ext[0], ext[1]))
    xy = centers_xy[which] + rng.normal(0.0, sigma, size=(n, 2))
    wave = rng.choice(2, size=n, p=wave_probs)
    t = rng.normal(wave_centers[wave], wave_sigmas[wave])
    pts = np.column_stack([xy, t])
    return PointSet(_clip_to_extent(pts, extent))


def pollen_like(n: int, extent: Extent, seed: int = 0) -> PointSet:
    """Continental social-media burst: Zipf-weighted metro clusters.

    Mimics the PollenUS tweet corpus: hundreds of thousands of messages
    concentrated in metropolitan areas (population ~ Zipf), rising and
    falling over a three-month allergy season.  The extreme weight of the
    top metros is what gives PollenUS the worst DD overhead and the longest
    PD critical path in Figures 9-12.
    """
    _check_n(n)
    rng = np.random.default_rng(seed)
    ext = np.asarray(extent, dtype=np.float64)
    k = 40
    centers_xy = rng.uniform(0.05 * ext[:2], 0.95 * ext[:2], size=(k, 2))
    ranks = np.arange(1, k + 1, dtype=np.float64)
    weights = (1.0 / ranks) / (1.0 / ranks).sum()  # Zipf s=1
    which = rng.choice(k, size=n, p=weights)
    sigma = 0.012 * float(min(ext[0], ext[1]))
    xy = centers_xy[which] + rng.normal(0.0, sigma, size=(n, 2))
    # Season ramp: Beta(2.2, 2.8) rises to a peak ~40% in, then decays.
    t = rng.beta(2.2, 2.8, size=n) * ext[2]
    pts = np.column_stack([xy, t])
    return PointSet(_clip_to_extent(pts, extent))


def flu_like(n: int, extent: Extent, seed: int = 0) -> PointSet:
    """Sparse global surveillance along migratory flyways.

    Mimics the avian-flu observations: few points spread along a handful
    of long flyway corridors spanning the whole domain, with yearly
    periodicity in time.  The defining property is *sparsity*: the domain
    is enormous relative to n, so initialisation dominates (Figure 7) and
    every parallel strategy is memory-bound on these instances.
    """
    _check_n(n)
    rng = np.random.default_rng(seed)
    ext = np.asarray(extent, dtype=np.float64)
    n_flyways = 4
    waypoints_per_flyway = 5
    flyways = []
    for _ in range(n_flyways):
        w = rng.uniform(0.05 * ext[:2], 0.95 * ext[:2], size=(waypoints_per_flyway, 2))
        # Sort by x so each flyway sweeps across the domain.
        flyways.append(w[np.argsort(w[:, 0])])
    seg_choice = rng.integers(0, n_flyways, size=n)
    pos = rng.uniform(0.0, 1.0, size=n)  # position along the flyway
    xy = np.empty((n, 2))
    for i in range(n):
        w = flyways[seg_choice[i]]
        s = pos[i] * (len(w) - 1)
        j = min(int(s), len(w) - 2)
        frac = s - j
        xy[i] = (1 - frac) * w[j] + frac * w[j + 1]
    xy += rng.normal(0.0, 0.02 * float(min(ext[0], ext[1])), size=(n, 2))
    # Migration: time correlates with position along the flyway, repeating
    # over ~yearly cycles.
    n_cycles = max(1, int(round(ext[2] / max(ext[2] / 4.0, 1.0))))
    cycle = rng.integers(0, n_cycles, size=n)
    t = (cycle + pos) / n_cycles * ext[2] + rng.normal(0, 0.01 * ext[2], size=n)
    pts = np.column_stack([xy, t])
    return PointSet(_clip_to_extent(pts, extent))


def ebird_like(n: int, extent: Extent, seed: int = 0) -> PointSet:
    """Dense crowdsourced sightings: heavy-tailed hotspot process.

    Mimics eBird: a very large number of observations concentrated at
    birding hotspots whose popularity is heavy-tailed, active year-round.
    The defining property is *density*: compute dwarfs initialisation,
    which is why replication-based parallel strategies shine on eBird-Lr
    (Figure 15) until memory runs out at high resolution.
    """
    _check_n(n)
    rng = np.random.default_rng(seed)
    ext = np.asarray(extent, dtype=np.float64)
    k = 150
    centers_xy = rng.uniform(0.02 * ext[:2], 0.98 * ext[:2], size=(k, 2))
    ranks = np.arange(1, k + 1, dtype=np.float64)
    weights = ranks ** (-1.3)
    weights /= weights.sum()
    which = rng.choice(k, size=n, p=weights)
    sigma = 0.008 * float(min(ext[0], ext[1]))
    xy = centers_xy[which] + rng.normal(0.0, sigma, size=(n, 2))
    # Year-round activity with mild seasonality.
    t = rng.uniform(0.0, ext[2], size=n)
    season = 0.1 * ext[2] * np.sin(2 * math.pi * t / max(ext[2] / 3.0, 1.0))
    t = np.clip(t + 0.2 * season, 0.0, ext[2])
    pts = np.column_stack([xy, t])
    return PointSet(_clip_to_extent(pts, extent))


_GENERATORS = {
    "dengue": dengue_like,
    "pollen": pollen_like,
    "flu": flu_like,
    "ebird": ebird_like,
    "uniform": uniform_process,
}


def generator_for(dataset: str):
    """Generator callable for a dataset kind (``dengue``/``pollen``/...)."""
    try:
        return _GENERATORS[dataset]
    except KeyError:
        known = ", ".join(sorted(_GENERATORS))
        raise KeyError(f"unknown dataset {dataset!r}; available: {known}") from None
