"""Text/CSV rendering of density volumes.

The paper's Figure 1 shows bandwidth-dependent density maps; this offline
environment has no plotting stack, so the examples render time slices as
ASCII heatmaps and export CSV series that any plotting tool can consume.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.grid import Volume

__all__ = ["ascii_heatmap", "render_time_slice", "hotspots", "series_csv"]

#: Density ramp from blank to saturated.
_RAMP = " .:-=+*#%@"


def ascii_heatmap(
    slice2d: np.ndarray,
    *,
    width: int = 72,
    height: int = 28,
    vmax: Optional[float] = None,
) -> str:
    """Render a 2-D array as an ASCII heatmap (rows = y descending)."""
    arr = np.asarray(slice2d, dtype=np.float64)
    if arr.ndim != 2:
        raise ValueError("expected a 2-D array")
    # Downsample by block-averaging to the character budget.
    nx = min(width, arr.shape[0])
    ny = min(height, arr.shape[1])
    xb = np.linspace(0, arr.shape[0], nx + 1).astype(int)
    yb = np.linspace(0, arr.shape[1], ny + 1).astype(int)
    cells = np.empty((nx, ny))
    for i in range(nx):
        for j in range(ny):
            block = arr[xb[i] : max(xb[i] + 1, xb[i + 1]), yb[j] : max(yb[j] + 1, yb[j + 1])]
            cells[i, j] = block.mean() if block.size else 0.0
    top = vmax if vmax is not None else (cells.max() or 1.0)
    if top <= 0:
        top = 1.0
    levels = np.clip(cells / top * (len(_RAMP) - 1), 0, len(_RAMP) - 1).astype(int)
    # y as rows (descending so north is up), x as columns.
    lines = []
    for j in range(ny - 1, -1, -1):
        lines.append("".join(_RAMP[levels[i, j]] for i in range(nx)))
    return "\n".join(lines)


def render_time_slice(
    volume: Volume, T: int, *, width: int = 72, height: int = 28
) -> str:
    """ASCII heatmap of the spatial slice at voxel time ``T``, with a
    caption giving the domain time it corresponds to."""
    if not 0 <= T < volume.grid.Gt:
        raise ValueError(f"time index {T} outside [0, {volume.grid.Gt})")
    sl = volume.time_slice(T)
    t_domain = volume.grid.t_centers(T, T + 1)[0]
    head = (
        f"t = {t_domain:.2f}  (voxel T={T}/{volume.grid.Gt})  "
        f"max={sl.max():.3e}  mean={sl.mean():.3e}"
    )
    return head + "\n" + ascii_heatmap(sl, width=width, height=height)


def hotspots(volume: Volume, k: int = 5) -> List[Tuple[Tuple[int, int, int], float]]:
    """The ``k`` highest-density voxels as ``((X, Y, T), value)`` pairs."""
    if k < 1:
        raise ValueError("k must be >= 1")
    data = volume.data
    flat = np.argpartition(data.ravel(), -min(k, data.size))[-min(k, data.size):]
    flat = flat[np.argsort(data.ravel()[flat])[::-1]]
    out = []
    for f in flat:
        idx = np.unravel_index(int(f), data.shape)
        out.append(((int(idx[0]), int(idx[1]), int(idx[2])), float(data[idx])))
    return out


def series_csv(
    path: Union[str, Path],
    header: Sequence[str],
    rows: Sequence[Sequence],
) -> None:
    """Write a simple CSV series (used by the benchmark harness)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(",".join(str(h) for h in header) + "\n")
        for row in rows:
            fh.write(",".join(str(v) for v in row) + "\n")
