"""Export density volumes to the legacy VTK structured-points format.

The space-time cube is normally explored in 3-D viewers (ParaView, VisIt,
VoxLens-style GIS tools); legacy-ASCII VTK ``STRUCTURED_POINTS`` is the
lowest common denominator they all read.  The voxel spacing and origin
carry the domain georeferencing, with time as the third axis — exactly
the space-time-cube rendering of the paper's Figure 1.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from ..core.grid import Volume

__all__ = ["save_vtk"]


def save_vtk(
    volume: Volume,
    path: Union[str, Path],
    *,
    name: str = "stkde_density",
    binary_threshold: int = 0,
) -> Path:
    """Write a volume as legacy-ASCII VTK ``STRUCTURED_POINTS``.

    Parameters
    ----------
    name:
        The scalar field name shown by viewers.
    binary_threshold:
        Unused placeholder for API stability (ASCII only; offline
        environments lack the binary-VTK tooling to verify round-trips).

    Returns the path written (``.vtk`` appended if missing).
    """
    path = Path(path)
    if path.suffix != ".vtk":
        path = path.with_suffix(path.suffix + ".vtk")
    path.parent.mkdir(parents=True, exist_ok=True)
    g = volume.grid
    d = g.domain
    data = volume.data
    with open(path, "w", encoding="ascii") as fh:
        fh.write("# vtk DataFile Version 3.0\n")
        fh.write(f"STKDE density volume ({g.Gx}x{g.Gy}x{g.Gt}, hs={g.hs}, ht={g.ht})\n")
        fh.write("ASCII\n")
        fh.write("DATASET STRUCTURED_POINTS\n")
        fh.write(f"DIMENSIONS {g.Gx} {g.Gy} {g.Gt}\n")
        # Voxel-center sampling: origin is the first center.
        fh.write(
            f"ORIGIN {d.x0 + 0.5 * d.sres:.10g} {d.y0 + 0.5 * d.sres:.10g} "
            f"{d.t0 + 0.5 * d.tres:.10g}\n"
        )
        fh.write(f"SPACING {d.sres:.10g} {d.sres:.10g} {d.tres:.10g}\n")
        fh.write(f"POINT_DATA {g.n_voxels}\n")
        fh.write(f"SCALARS {name} double 1\n")
        fh.write("LOOKUP_TABLE default\n")
        # VTK expects x fastest, then y, then z: transpose to (T, Y, X) and
        # ravel in C order so x varies fastest.
        flat = np.ascontiguousarray(data.transpose(2, 1, 0)).ravel()
        # Chunked writes: one value per line is enormous; 6 per line.
        for start in range(0, flat.size, 6):
            fh.write(" ".join(f"{v:.8g}" for v in flat[start : start + 6]) + "\n")
    return path
