"""Text-mode rendering and export of density volumes."""

from .export import save_vtk
from .render import ascii_heatmap, hotspots, render_time_slice, series_csv

__all__ = ["ascii_heatmap", "hotspots", "render_time_slice", "save_vtk", "series_csv"]
