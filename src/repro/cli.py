"""Command-line interface: ``stkde`` (or ``python -m repro``).

Subcommands
-----------
``instances``
    Print the Table 2 registry at any scale.
``run``
    Run one algorithm on one instance; print timing, phases, and stats.
``estimate``
    Compute a density volume from a CSV of events and save it.
``render``
    ASCII-render a time slice of a saved volume.
``select``
    Ask the Section 6.5 cost model for the best strategy on an instance.
``query``
    Serve point / slice / region density queries from a CSV of events
    through :class:`repro.serve.DensityService` (direct kernel sums or
    volume lookups, planner-chosen by default).  ``--eps`` attaches a
    per-request error budget that admits the approximate sampling tier;
    ``--workers N`` routes the same queries through the multi-process
    sharded tier; ``--frontend`` serves through the asyncio
    :class:`repro.serve.TrafficFrontend` (micro-batching coalescer,
    priority lanes, cost-priced admission) with every query row its own
    concurrent loopback client — port-free; ``--queries -`` streams
    from stdin.
``serve``
    Multi-process sharded serving
    (:class:`repro.serve.ShardedDensityService`): shard-owning worker
    processes answer scatter/gather query fan-out; ``--stats`` surfaces
    the per-worker gauges.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from . import algorithms  # noqa: F401  (registers sequential algorithms)
from . import parallel  # noqa: F401  (registers parallel algorithms)
from .algorithms.base import available_algorithms, get_algorithm
from .analysis.metrics import phase_breakdown
from .analysis.model import select_strategy
from .core.backends import available_backends
from .core.stkde import STKDE
from .data.datasets import SCALES, get_instance, instance_names, iter_instances
from .data.io import load_points_csv, load_volume, save_volume
from .viz.render import hotspots, render_time_slice

__all__ = ["main"]


def _parse_workers(s: str):
    if s == "auto":
        return s
    try:
        n = int(s)
    except ValueError:
        raise argparse.ArgumentTypeError("workers must be an int or 'auto'")
    if n < 1:
        raise argparse.ArgumentTypeError("workers must be >= 1")
    return n


def _parse_decomposition(s: str):
    parts = s.lower().split("x")
    if len(parts) != 3:
        raise argparse.ArgumentTypeError("decomposition must look like 8x8x8")
    try:
        return tuple(int(p) for p in parts)
    except ValueError:
        raise argparse.ArgumentTypeError("decomposition must be integers AxBxC")


def _cmd_instances(args: argparse.Namespace) -> int:
    for inst in iter_instances(args.scale):
        print(inst.describe())
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    inst = get_instance(args.instance, args.scale)
    grid = inst.grid()
    pts = inst.points()
    fn = get_algorithm(args.algorithm)
    kwargs = {}
    if getattr(fn, "is_parallel", False):
        kwargs["P"] = args.threads
        kwargs["backend"] = args.backend
        if args.decomposition and args.algorithm != "pb-sym-dr":
            kwargs["decomposition"] = args.decomposition
        if args.algorithm in ("pb-sym-dr", "pb-sym-pd-rep") and args.memory_budget:
            kwargs["memory_budget_bytes"] = inst.memory_budget_bytes
    print(f"instance : {inst.describe()}")
    print(f"algorithm: {args.algorithm}  {kwargs}")
    res = fn(pts, grid, kernel=args.kernel, **kwargs)
    print(f"elapsed  : {res.elapsed:.4f} s (measured wall)")
    if "makespan" in res.meta:
        print(f"makespan : {res.meta['makespan']:.4f} s (P={res.meta['P']}, {res.meta['backend']})")
    for phase, frac in sorted(phase_breakdown(res).items()):
        print(f"  {phase:10s} {frac:6.1%}")
    print(f"max density: {res.data.max():.4e} at voxel {res.volume.max_voxel()}")
    print(f"total mass : {res.volume.total_mass:.4f}")
    if args.out:
        save_volume(res.volume, args.out)
        print(f"volume written to {args.out}")
    return 0


def _cmd_estimate(args: argparse.Namespace) -> int:
    pts = load_points_csv(args.points)
    est = STKDE(
        hs=args.hs, ht=args.ht, sres=args.sres, tres=args.tres,
        kernel=args.kernel, algorithm=args.algorithm,
        P=args.threads, backend=args.backend,
    )
    res = est.estimate(pts)
    g = res.volume.grid
    print(f"n={pts.n} grid={g.Gx}x{g.Gy}x{g.Gt} Hs={g.Hs} Ht={g.Ht}")
    print(f"algorithm={res.algorithm} elapsed={res.elapsed:.4f}s")
    save_volume(res.volume, args.out)
    print(f"volume written to {args.out}")
    return 0


def _cmd_render(args: argparse.Namespace) -> int:
    vol = load_volume(args.volume)
    T = args.time if args.time is not None else vol.max_voxel()[2]
    print(render_time_slice(vol, T, width=args.width, height=args.height))
    print("\ntop hotspots:")
    for (X, Y, Tv), val in hotspots(vol, k=5):
        print(f"  voxel ({X:4d},{Y:4d},{Tv:4d})  density {val:.4e}")
    return 0


def _npy_path(out: str) -> str:
    """The path ``np.save`` actually wrote (it appends ``.npy``)."""
    return out if out.endswith(".npy") else out + ".npy"


def _cmd_query(args: argparse.Namespace) -> int:
    from .core.stkde import infer_domain
    from .core.grid import GridSpec
    from .serve import DensityService, ShardedDensityService

    if args.eps is not None and args.queries is None:
        raise SystemExit(
            "--eps applies to --queries only (slice/region extracts "
            "are exact)"
        )
    if getattr(args, "backend", None) == "approx" and args.eps is None:
        raise SystemExit("--backend approx needs an --eps error budget")
    pts = load_points_csv(args.points)
    domain = infer_domain(
        pts, sres=args.sres, tres=args.tres, hs=args.hs, ht=args.ht
    )
    grid = GridSpec(domain, hs=args.hs, ht=args.ht)
    # Machine-model persistence: an explicit --calibration-file (or the
    # REPRO_CALIBRATION env var) loads saved unit costs, or calibrates
    # once and saves them there.  Without either, the service calibrates
    # lazily on first plan, as before.
    import os

    from .serve.calibrate import CALIBRATION_ENV, resolve_machine_model

    machine = None
    calibration = getattr(args, "calibration_file", None)
    if calibration is not None or os.environ.get(CALIBRATION_ENV):
        machine = resolve_machine_model(calibration)
    workers = getattr(args, "workers", None)
    if workers is None and getattr(args, "faults", None) is not None:
        raise SystemExit(
            "--faults injects into shard workers; add --workers N"
        )
    if workers is not None:
        if args.backend not in ("auto", "sharded", "local"):
            raise SystemExit(
                f"--backend {args.backend!r} is a single-process plan; "
                f"with --workers use auto, sharded or local"
            )
        fault_plan = None
        faults = getattr(args, "faults", None)
        if faults is not None:
            from .serve import FaultPlan

            if faults.startswith("@"):
                with open(faults[1:], "r") as fh:
                    faults = fh.read()
            fault_plan = FaultPlan.from_json(faults)
        service = ShardedDensityService(
            pts, grid, workers=workers, kernel=args.kernel,
            backend=args.backend, compute=args.compute, machine=machine,
            max_restarts=getattr(args, "max_restarts", 3),
            request_timeout=getattr(args, "request_timeout", 30.0),
            on_shard_failure=getattr(args, "on_shard_failure", "raise"),
            fault_plan=fault_plan,
        )
        tier = f"{service.n_shards} shard workers"
    else:
        service = DensityService(
            pts, grid, kernel=args.kernel, backend=args.backend,
            compute=args.compute, machine=machine,
        )
        tier = "single process"
    print(f"serving n={pts.n}{' (weighted)' if pts.weighted else ''} on "
          f"grid {grid.Gx}x{grid.Gy}x{grid.Gt} "
          f"(backend={args.backend}, compute={args.compute}, {tier})")
    try:
        if getattr(args, "frontend", False):
            return _run_frontend_ops(args, service, grid)
        return _run_query_ops(args, service, grid)
    finally:
        if isinstance(service, ShardedDensityService):
            service.close()


def _run_query_ops(args: argparse.Namespace, service, grid) -> int:
    import numpy as np

    if args.queries is not None:
        q = load_points_csv(args.queries)
        # Only plan (which calibrates the machine model) when the backend
        # is actually the planner's to choose.
        plans: list = []
        plan_out = plans if args.backend == "auto" else None
        dens = service.query_points(
            q.coords, eps=args.eps, seed=args.seed, plan_out=plan_out
        )
        if plans:
            print(f"plan: {plans[-1].describe()}")
        if args.out:
            np.savetxt(
                args.out,
                np.column_stack([q.coords, dens]),
                delimiter=",", header="x,y,t,density", comments="", fmt="%.17g",
            )
            print(f"{dens.size} densities written to {args.out}")
        else:
            for row, d in zip(q.coords, dens):
                print(f"{row[0]:.6g},{row[1]:.6g},{row[2]:.6g},{d:.6e}")
    elif args.slice is not None:
        res = service.query_slice(args.slice)
        sl = res.time_slice()
        X, Y = np.unravel_index(int(np.argmax(sl)), sl.shape)
        print(f"slice T={args.slice}: backend={res.backend} "
              f"max={sl.max():.4e} at voxel ({X},{Y}) mean={sl.mean():.4e}")
        if args.out:
            np.save(args.out, np.asarray(sl))
            print(f"slice written to {_npy_path(args.out)}")
    elif args.region is not None:
        res = service.query_region(tuple(args.region))
        print(f"region {args.region}: backend={res.backend} "
              f"shape={res.data.shape} max={res.data.max():.4e} "
              f"mass={res.data.sum() * grid.domain.sres**2 * grid.domain.tres:.4e}")
        if args.out:
            np.save(args.out, np.asarray(res.data))
            print(f"region written to {_npy_path(args.out)}")
    else:
        raise SystemExit("one of --queries / --slice / --region is required")
    stats = service.stats()
    if args.stats:
        # Machine-readable serving observability: cache hit/miss ratios,
        # index segment gauges, planner decisions — and, for the sharded
        # tier, the merged cross-process work counters plus the
        # per-worker views — what a load balancer or dashboard scrapes.
        import json

        print(json.dumps(stats, indent=2, default=str))
    elif "cache" in stats:
        print(f"stats: backends={stats['backend_calls']} cache={stats['cache']}")
    else:
        work = stats["work"]
        print(f"stats: backends={stats['backend_calls']} "
              f"shards={stats['n_shards']} "
              f"messages={work['shard_messages']} "
              f"rows_shipped={work['shard_rows_shipped']}")
    return 0


def _load_query_coords(path: str):
    """Query locations for the frontend demo: a CSV path, or ``-`` to
    stream ``x,y,t`` lines from stdin (the port-free serving loop)."""
    import numpy as np

    if path != "-":
        return load_points_csv(path).coords
    rows = []
    for line in sys.stdin:
        line = line.strip()
        if not line or line[0].isalpha():  # blank / header line
            continue
        rows.append([float(v) for v in line.split(",")[:3]])
    if not rows:
        raise SystemExit("no x,y,t rows on stdin")
    return np.asarray(rows, dtype=np.float64)


def _run_frontend_ops(args: argparse.Namespace, service, grid) -> int:
    """Serve the requested op through the asyncio traffic front end —
    a port-free loopback demo: every query row is its own concurrent
    in-process client, so the coalescer has real co-arriving traffic
    to merge; slices/regions ride the cost-bounded bulk lane."""
    import asyncio
    import json

    import numpy as np

    from .serve import TrafficFrontend

    async def run() -> int:
        fe = TrafficFrontend(service)
        await fe.start()
        try:
            if args.queries is not None:
                coords = _load_query_coords(args.queries)
                parts = await asyncio.gather(*(
                    fe.query_points(
                        coords[i:i + 1], eps=args.eps, seed=args.seed
                    )
                    for i in range(coords.shape[0])
                ))
                dens = np.concatenate(parts)
                if args.out:
                    np.savetxt(
                        args.out,
                        np.column_stack([coords, dens]),
                        delimiter=",", header="x,y,t,density",
                        comments="", fmt="%.17g",
                    )
                    print(f"{dens.size} densities written to {args.out}")
                else:
                    for row, d in zip(coords, dens):
                        print(f"{row[0]:.6g},{row[1]:.6g},{row[2]:.6g},{d:.6e}")
            elif args.slice is not None:
                res = await fe.query_slice(args.slice)
                sl = res.time_slice()
                X, Y = np.unravel_index(int(np.argmax(sl)), sl.shape)
                print(f"slice T={args.slice}: backend={res.backend} "
                      f"max={sl.max():.4e} at voxel ({X},{Y}) "
                      f"mean={sl.mean():.4e}")
                if args.out:
                    np.save(args.out, np.asarray(sl))
                    print(f"slice written to {_npy_path(args.out)}")
            elif args.region is not None:
                res = await fe.query_region(tuple(args.region))
                print(f"region {args.region}: backend={res.backend} "
                      f"shape={res.data.shape} max={res.data.max():.4e} "
                      f"mass={res.data.sum() * grid.domain.sres**2 * grid.domain.tres:.4e}")
                if args.out:
                    np.save(args.out, np.asarray(res.data))
                    print(f"region written to {_npy_path(args.out)}")
            else:
                raise SystemExit(
                    "one of --queries / --slice / --region is required"
                )
            blob = fe.frontend_stats()
            print(f"frontend: {blob['batches']} batches for "
                  f"{blob['coalesced_requests']} coalesced requests "
                  f"(mean {blob['mean_batch_rows']:.1f} rows/batch, "
                  f"p99 {blob['latency']['p99_ms']:.2f} ms, "
                  f"shed {blob['shed']})")
            if args.stats:
                print(json.dumps(await fe.stats(), indent=2, default=str))
        finally:
            await fe.aclose()
        return 0

    return asyncio.run(run())


def _cmd_select(args: argparse.Namespace) -> int:
    inst = get_instance(args.instance, args.scale)
    best, ranked = select_strategy(
        inst.grid(), inst.points(), args.threads,
        memory_budget_bytes=inst.memory_budget_bytes if args.memory_budget else None,
    )
    print(f"instance: {inst.describe()}")
    print(f"model's pick for P={args.threads}:\n  {best.describe()}\n")
    print("full ranking:")
    for p in ranked:
        print(f"  {p.describe()}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="stkde",
        description="Parallel space-time kernel density estimation "
        "(reproduction of Saule et al., ICPP 2017)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("instances", help="list the Table 2 instances")
    p.add_argument("--scale", choices=sorted(SCALES), default="bench")
    p.set_defaults(fn=_cmd_instances)

    p = sub.add_parser("run", help="run an algorithm on an instance")
    p.add_argument("--instance", required=True, choices=instance_names(), metavar="NAME")
    p.add_argument("--scale", choices=sorted(SCALES), default="bench")
    p.add_argument("--algorithm", default="pb-sym", choices=available_algorithms(), metavar="ALGO")
    p.add_argument("--kernel", default="epanechnikov")
    p.add_argument("-P", "--threads", type=int, default=4)
    p.add_argument("--backend", default="simulated", choices=("serial", "threads", "simulated"))
    p.add_argument("--decomposition", type=_parse_decomposition, default=None, metavar="AxBxC")
    p.add_argument("--memory-budget", action="store_true",
                   help="enforce the instance's paper-proportional memory budget")
    p.add_argument("--out", default=None, help="save the volume as .npy")
    p.set_defaults(fn=_cmd_run)

    p = sub.add_parser("estimate", help="estimate density from a CSV of events")
    p.add_argument("--points", required=True)
    p.add_argument("--hs", type=float, required=True)
    p.add_argument("--ht", type=float, required=True)
    p.add_argument("--sres", type=float, default=1.0)
    p.add_argument("--tres", type=float, default=1.0)
    p.add_argument("--kernel", default="epanechnikov")
    p.add_argument("--algorithm", default="auto")
    p.add_argument("-P", "--threads", type=int, default=1)
    p.add_argument("--backend", default="simulated", choices=("serial", "threads", "simulated"))
    p.add_argument("--out", required=True)
    p.set_defaults(fn=_cmd_estimate)

    p = sub.add_parser("render", help="ASCII-render a saved volume")
    p.add_argument("--volume", required=True)
    p.add_argument("--time", type=int, default=None, help="voxel time index (default: densest)")
    p.add_argument("--width", type=int, default=72)
    p.add_argument("--height", type=int, default=28)
    p.set_defaults(fn=_cmd_render)

    def add_query_io_args(p):
        p.add_argument("--points", required=True, help="events CSV (x,y,t[,w])")
        p.add_argument("--hs", type=float, required=True)
        p.add_argument("--ht", type=float, required=True)
        p.add_argument("--sres", type=float, default=1.0)
        p.add_argument("--tres", type=float, default=1.0)
        p.add_argument("--kernel", default="epanechnikov")
        group = p.add_mutually_exclusive_group(required=True)
        group.add_argument("--queries", default=None,
                           help="CSV of query locations (x,y,t)")
        group.add_argument("--slice", type=int, default=None, metavar="T",
                           help="serve the full spatial slice at voxel time T")
        group.add_argument("--region", type=int, nargs=6, default=None,
                           metavar=("X0", "X1", "Y0", "Y1", "T0", "T1"),
                           help="serve the voxel window [X0:X1)x[Y0:Y1)x[T0:T1)")
        p.add_argument("--out", default=None,
                       help="write densities CSV (--queries) or .npy "
                            "(--slice/--region)")
        p.add_argument("--eps", type=float, default=None, metavar="EPS",
                       help="relative error budget for --queries: admits "
                            "the importance-sampling approximate tier "
                            "where the planner prices it below the exact "
                            "plans (default: serve exactly)")
        p.add_argument("--seed", type=int, default=0,
                       help="sampler seed for --eps (same batch, budget "
                            "and seed is bit-reproducible)")
        p.add_argument("--compute", default="numpy-ref",
                       choices=("auto",) + available_backends(),
                       help="pair-evaluation compute backend "
                            "(repro.core.backends): 'numpy-ref' is the "
                            "bit-exact default, 'auto' lets the planner "
                            "route each batch to the cheapest calibrated "
                            "backend; JIT backends appear here only when "
                            "importable")
        p.add_argument("--calibration-file", default=None, metavar="PATH",
                       help="machine-model JSON: load the saved unit "
                            "costs if PATH exists, else calibrate once "
                            "and save them there (the REPRO_CALIBRATION "
                            "env var sets a default path)")
        p.add_argument("--stats", action="store_true",
                       help="print a JSON blob of serving stats (cache "
                            "hit/miss ratios, index segments, planner "
                            "decisions, approximate-tier realised error, "
                            "per-worker gauges; with --frontend also the "
                            "frontend blob: lane depths, batch histogram, "
                            "latency percentiles, shed counts)")
        p.add_argument("--frontend", action="store_true",
                       help="serve through the asyncio traffic front end "
                            "(micro-batching coalescer, priority lanes, "
                            "cost-priced admission): each --queries row "
                            "becomes its own concurrent loopback client, "
                            "port-free; use '--queries -' to stream x,y,t "
                            "lines from stdin")

    def add_fault_args(p):
        p.add_argument("--max-restarts", type=int, default=3, metavar="K",
                       help="per-shard restart budget before the shard is "
                            "declared down (default 3; 0 disables recovery)")
        p.add_argument("--request-timeout", type=float, default=30.0,
                       metavar="SECONDS",
                       help="per-request deadline on shard replies; a "
                            "wedged worker is declared failed and respawned "
                            "after this long (default 30)")
        p.add_argument("--on-shard-failure", default="raise",
                       choices=("raise", "partial"),
                       help="point-query policy when a shard exhausts its "
                            "restart budget: 'raise' a typed ShardDown, or "
                            "serve 'partial' coverage-tagged results from "
                            "the surviving shards (default raise)")
        p.add_argument("--faults", default=None, metavar="JSON",
                       help="fault-injection plan (JSON list of specs, or "
                            "'@file' to read one) applied to the shard "
                            "workers — the chaos harness; see "
                            "repro.serve.FaultPlan")

    p = sub.add_parser("query", help="serve density queries from a CSV of events")
    add_query_io_args(p)
    p.add_argument("--backend", default="auto",
                   choices=("auto", "direct", "lookup", "approx"))
    p.add_argument("--workers", type=_parse_workers, default=None, metavar="N",
                   help="serve through N shard-owning worker processes "
                        "(multi-process scatter/gather; 'auto' = CPU count)")
    add_fault_args(p)
    p.set_defaults(fn=_cmd_query)

    p = sub.add_parser(
        "serve",
        help="multi-process sharded serving (shard-owning workers, "
             "scatter/gather fan-out)",
    )
    add_query_io_args(p)
    p.add_argument("--backend", default="auto", choices=("auto", "sharded", "local"))
    p.add_argument("--workers", type=_parse_workers, default="auto", metavar="N",
                   help="worker process count = shard count ('auto' = CPU count)")
    add_fault_args(p)
    p.set_defaults(fn=_cmd_query)

    p = sub.add_parser("select", help="cost-model strategy selection (Section 6.5)")
    p.add_argument("--instance", required=True, choices=instance_names(), metavar="NAME")
    p.add_argument("--scale", choices=sorted(SCALES), default="bench")
    p.add_argument("-P", "--threads", type=int, default=4)
    p.add_argument("--memory-budget", action="store_true")
    p.set_defaults(fn=_cmd_select)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
