"""repro — Parallel Space-Time Kernel Density Estimation.

A from-scratch Python reproduction of Saule, Panchananam, Hohl, Tang &
Delmelle, *Parallel Space-Time Kernel Density Estimation*, ICPP 2017
(arXiv:1705.09366): the STKDE problem, the engineered sequential
algorithms (VB, VB-DEC, PB, PB-DISK, PB-BAR, PB-SYM), the four parallel
strategies (DR, DD, PD, PD-SCHED, PD-REP) with their colouring/scheduling
substrate, the Section 6.5 cost model, and the full evaluation harness.

Quickstart::

    import numpy as np
    from repro import STKDE, PointSet

    events = PointSet(np.loadtxt("events.csv", delimiter=",", skiprows=1))
    result = STKDE(hs=750.0, ht=7.0, sres=100.0, tres=1.0).estimate(events)
    print(result.volume.max_voxel())

See ``examples/`` for runnable scenarios and ``benchmarks/`` for the
harness that regenerates every table and figure of the paper.
"""

from . import algorithms as _algorithms  # noqa: F401  (registers algorithms)
from . import parallel as _parallel  # noqa: F401  (registers algorithms)
from .algorithms.base import (
    STKDEResult,
    available_algorithms,
    get_algorithm,
    parallel_algorithms,
    sequential_algorithms,
)
from .core import adaptive as _adaptive  # noqa: F401  (registers pb-sym-adaptive)
from .core.grid import DomainSpec, GridSpec, PointSet, Volume
from .core.incremental import IncrementalSTKDE
from .core.instrument import PhaseTimer, WorkCounter
from .core.kernels import KernelPair, available_kernels, get_kernel
from .core.stkde import STKDE, infer_domain
from .serve import DensityService, ShardedDensityService

__version__ = "1.0.0"

__all__ = [
    "STKDE",
    "STKDEResult",
    "DensityService",
    "DomainSpec",
    "GridSpec",
    "IncrementalSTKDE",
    "KernelPair",
    "PhaseTimer",
    "PointSet",
    "ShardedDensityService",
    "Volume",
    "WorkCounter",
    "available_algorithms",
    "available_kernels",
    "get_algorithm",
    "get_kernel",
    "infer_domain",
    "parallel_algorithms",
    "sequential_algorithms",
    "__version__",
]
