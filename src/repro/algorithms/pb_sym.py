"""PB-SYM: the dual-invariant point-based algorithm (Algorithm 3).

Per point, PB-SYM tabulates the spatial disk ``Ks`` *and* the temporal bar
``Kt`` once, then accumulates their outer product over the cylinder —
``(2Hs+1)^2`` spatial and ``(2Ht+1)`` temporal kernel evaluations instead of
``(2Hs+1)^2 (2Ht+1)`` of each, leaving pure multiply-adds in the inner
loops.  Same ``Theta(Gx*Gy*Gt + n*Hs^2*Ht)`` complexity as PB, but a flop
count lower by roughly the ~40-flops-per-voxel factor the paper cites —
Table 3 reports up to 6.97x over PB.

:func:`stamp_point_sym` is the workhorse shared by every parallel strategy
(DR, DD, PD, PD-SCHED, PD-REP): it supports an optional *clip window*, which
is how PB-SYM-DD restricts a point's contribution to one subdomain.  When a
cylinder is clipped, the invariants are tabulated over the clipped extents —
so a temporally-split cylinder recomputes its full disk in every subdomain
that holds a slice of it, reproducing the replication overhead of Figure 4
without any special-casing.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.grid import GridSpec, PointSet, Volume, VoxelWindow
from ..core.instrument import PhaseTimer, WorkCounter
from ..core.invariants import bar_table, disk_table
from ..core.kernels import KernelPair, get_kernel
from .base import STKDEResult, register_algorithm

__all__ = ["pb_sym", "stamp_point_sym", "stamp_points_sym"]


def stamp_point_sym(
    vol: np.ndarray,
    grid: GridSpec,
    kernel: KernelPair,
    x: float,
    y: float,
    t: float,
    norm: float,
    counter: WorkCounter,
    clip: Optional[VoxelWindow] = None,
    vol_origin: tuple[int, int, int] = (0, 0, 0),
) -> None:
    """Accumulate one point's cylinder as ``disk (x) bar``.

    Parameters
    ----------
    vol:
        Target array.  Either a full ``(Gx, Gy, Gt)`` volume or a subarray
        whose voxel ``(0, 0, 0)`` corresponds to ``vol_origin`` in grid
        coordinates (used by subdomain-local and replicated buffers).
    clip:
        Optional window to intersect the cylinder with (PB-SYM-DD's
        subdomain restriction).  ``None`` stamps the full clipped-to-grid
        cylinder.
    """
    win = grid.point_window(x, y, t)
    if clip is not None:
        win = win.intersect(clip)
    if win.empty:
        return
    disk = disk_table(
        grid, kernel, x, y, (win.x0, win.x1), (win.y0, win.y1), norm, counter
    )
    bar = bar_table(grid, kernel, t, (win.t0, win.t1), counter)
    ox, oy, ot = vol_origin
    target = vol[
        win.x0 - ox : win.x1 - ox,
        win.y0 - oy : win.y1 - oy,
        win.t0 - ot : win.t1 - ot,
    ]
    # The inner loops of Algorithm 3: pure multiply-accumulate.
    target += disk[:, :, None] * bar[None, None, :]
    counter.madds += disk.size * bar.size


def stamp_points_sym(
    vol: np.ndarray,
    grid: GridSpec,
    kernel: KernelPair,
    coords: np.ndarray,
    norm: float,
    counter: WorkCounter,
    clip: Optional[VoxelWindow] = None,
    vol_origin: tuple[int, int, int] = (0, 0, 0),
) -> None:
    """Stamp a batch of points (rows of ``(x, y, t)``) with PB-SYM.

    Window bounds for the whole batch are derived with a handful of
    vectorised operations up front; the per-point loop then only
    tabulates invariants and accumulates.  This matters because the
    parallel strategies (DD in particular) call this with many small
    batches — per-point Python window math would otherwise dominate the
    paper's overhead measurements.
    """
    coords = np.asarray(coords, dtype=np.float64)
    n = coords.shape[0]
    if n == 0:
        return
    vox = grid.voxels_of(coords)
    X0 = np.maximum(vox[:, 0] - grid.Hs, 0)
    X1 = np.minimum(vox[:, 0] + grid.Hs + 1, grid.Gx)
    Y0 = np.maximum(vox[:, 1] - grid.Hs, 0)
    Y1 = np.minimum(vox[:, 1] + grid.Hs + 1, grid.Gy)
    T0 = np.maximum(vox[:, 2] - grid.Ht, 0)
    T1 = np.minimum(vox[:, 2] + grid.Ht + 1, grid.Gt)
    if clip is not None:
        np.maximum(X0, clip.x0, out=X0)
        np.minimum(X1, clip.x1, out=X1)
        np.maximum(Y0, clip.y0, out=Y0)
        np.minimum(Y1, clip.y1, out=Y1)
        np.maximum(T0, clip.t0, out=T0)
        np.minimum(T1, clip.t1, out=T1)
    ox, oy, ot = vol_origin
    xs, ys, ts = coords[:, 0], coords[:, 1], coords[:, 2]
    for i in range(n):
        x0, x1 = X0[i], X1[i]
        y0, y1 = Y0[i], Y1[i]
        t0, t1 = T0[i], T1[i]
        if x0 >= x1 or y0 >= y1 or t0 >= t1:
            continue
        disk = disk_table(
            grid, kernel, xs[i], ys[i], (x0, x1), (y0, y1), norm, counter
        )
        bar = bar_table(grid, kernel, ts[i], (t0, t1), counter)
        target = vol[x0 - ox : x1 - ox, y0 - oy : y1 - oy, t0 - ot : t1 - ot]
        target += disk[:, :, None] * bar[None, None, :]
        counter.madds += disk.size * bar.size


@register_algorithm("pb-sym")
def pb_sym(
    points: PointSet,
    grid: GridSpec,
    *,
    kernel: str | KernelPair = "epanechnikov",
    counter: Optional[WorkCounter] = None,
    timer: Optional[PhaseTimer] = None,
) -> STKDEResult:
    """Point-based STKDE exploiting both invariants (Algorithm 3)."""
    kern = get_kernel(kernel)
    counter = counter if counter is not None else WorkCounter()
    timer = timer if timer is not None else PhaseTimer()
    with timer.phase("init"):
        vol = grid.allocate()
        counter.init_writes += vol.size
    norm = grid.normalization(points.n)
    with timer.phase("compute"):
        stamp_points_sym(vol, grid, kern, points.coords, norm, counter)
    counter.points_processed += points.n
    return STKDEResult(Volume(vol, grid), "pb-sym", timer, counter)
