"""PB-SYM: the dual-invariant point-based algorithm (Algorithm 3).

Per point, PB-SYM tabulates the spatial disk ``Ks`` *and* the temporal bar
``Kt`` once, then accumulates their outer product over the cylinder —
``(2Hs+1)^2`` spatial and ``(2Ht+1)`` temporal kernel evaluations instead of
``(2Hs+1)^2 (2Ht+1)`` of each, leaving pure multiply-adds in the inner
loops.  Same ``Theta(Gx*Gy*Gt + n*Hs^2*Ht)`` complexity as PB, but a flop
count lower by roughly the ~40-flops-per-voxel factor the paper cites —
Table 3 reports up to 6.97x over PB.

:func:`stamp_points_sym` is the workhorse shared by every parallel strategy
(DR, DD, PD, PD-SCHED, PD-REP): it supports an optional *clip window*, which
is how PB-SYM-DD restricts a point's contribution to one subdomain.  When a
cylinder is clipped, the invariants are tabulated over the clipped extents —
so a temporally-split cylinder recomputes its full disk in every subdomain
that holds a slice of it, reproducing the replication overhead of Figure 4
without any special-casing.

Stamping engine
---------------
Since the batched-engine refactor, :func:`stamp_points_sym` is a thin
compatibility wrapper over :func:`repro.core.stamping.stamp_batch` with
``mode="sym"``: points are grouped into stamp-shape cohorts, each cohort's
disks and bars are tabulated in single vectorised NumPy calls, and the
outer products are scatter-accumulated per cohort slab.  Masks, expression
order, and per-point accumulation order within a slab match the historical
per-point loop, which is preserved verbatim as
:func:`stamp_points_sym_loop` — the reference the equivalence suite and
``benchmarks/bench_stamping_engine.py`` compare against.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.grid import GridSpec, PointSet, Volume, VoxelWindow
from ..core.instrument import PhaseTimer, WorkCounter
from ..core.invariants import bar_table, disk_table
from ..core.kernels import KernelPair, get_kernel
from ..core.stamping import batch_windows, stamp_batch
from .base import STKDEResult, register_algorithm

__all__ = [
    "pb_sym",
    "stamp_point_sym",
    "stamp_points_sym",
    "stamp_points_sym_loop",
]


def stamp_point_sym(
    vol: np.ndarray,
    grid: GridSpec,
    kernel: KernelPair,
    x: float,
    y: float,
    t: float,
    norm: float,
    counter: WorkCounter,
    clip: Optional[VoxelWindow] = None,
    vol_origin: tuple[int, int, int] = (0, 0, 0),
) -> None:
    """Accumulate one point's cylinder as ``disk (x) bar``.

    Parameters
    ----------
    vol:
        Target array.  Either a full ``(Gx, Gy, Gt)`` volume or a subarray
        whose voxel ``(0, 0, 0)`` corresponds to ``vol_origin`` in grid
        coordinates (used by subdomain-local and replicated buffers).
    clip:
        Optional window to intersect the cylinder with (PB-SYM-DD's
        subdomain restriction).  ``None`` stamps the full clipped-to-grid
        cylinder.
    """
    win = grid.point_window(x, y, t)
    if clip is not None:
        win = win.intersect(clip)
    if win.empty:
        return
    disk = disk_table(
        grid, kernel, x, y, (win.x0, win.x1), (win.y0, win.y1), norm, counter
    )
    bar = bar_table(grid, kernel, t, (win.t0, win.t1), counter)
    ox, oy, ot = vol_origin
    target = vol[
        win.x0 - ox : win.x1 - ox,
        win.y0 - oy : win.y1 - oy,
        win.t0 - ot : win.t1 - ot,
    ]
    # The inner loops of Algorithm 3: pure multiply-accumulate.
    target += disk[:, :, None] * bar[None, None, :]
    counter.madds += disk.size * bar.size


def stamp_points_sym(
    vol: np.ndarray,
    grid: GridSpec,
    kernel: KernelPair,
    coords: np.ndarray,
    norm: float,
    counter: WorkCounter,
    clip: Optional[VoxelWindow] = None,
    vol_origin: tuple[int, int, int] = (0, 0, 0),
) -> None:
    """Stamp a batch of points (rows of ``(x, y, t)``) with PB-SYM.

    Compatibility wrapper over the batched stamping engine
    (:func:`repro.core.stamping.stamp_batch`, ``mode="sym"``): whole shape
    cohorts are tabulated and scatter-accumulated in large vectorised NumPy
    calls instead of a per-point Python loop.  The call signature, masks,
    and work accounting are unchanged; densities match the legacy loop
    (:func:`stamp_points_sym_loop`) to fp round-off.
    """
    stamp_batch(
        vol, grid, kernel, coords, norm, counter,
        mode="sym", clip=clip, vol_origin=vol_origin,
    )


def stamp_points_sym_loop(
    vol: np.ndarray,
    grid: GridSpec,
    kernel: KernelPair,
    coords: np.ndarray,
    norm: float,
    counter: WorkCounter,
    clip: Optional[VoxelWindow] = None,
    vol_origin: tuple[int, int, int] = (0, 0, 0),
) -> None:
    """Legacy per-point PB-SYM stamping loop (reference implementation).

    Kept verbatim from before the batched engine: window bounds for the
    batch are vectorised up front, then a Python-level loop tabulates each
    point's invariants and accumulates its outer product.  Used by the
    engine equivalence tests and by ``benchmarks/bench_stamping_engine.py``
    as the old-hot-path baseline; production callers go through
    :func:`stamp_points_sym`.
    """
    coords = np.asarray(coords, dtype=np.float64)
    n = coords.shape[0]
    if n == 0:
        return
    X0, X1, Y0, Y1, T0, T1 = batch_windows(grid, coords, clip)
    ox, oy, ot = vol_origin
    xs, ys, ts = coords[:, 0], coords[:, 1], coords[:, 2]
    for i in range(n):
        x0, x1 = X0[i], X1[i]
        y0, y1 = Y0[i], Y1[i]
        t0, t1 = T0[i], T1[i]
        if x0 >= x1 or y0 >= y1 or t0 >= t1:
            continue
        disk = disk_table(
            grid, kernel, xs[i], ys[i], (x0, x1), (y0, y1), norm, counter
        )
        bar = bar_table(grid, kernel, ts[i], (t0, t1), counter)
        target = vol[x0 - ox : x1 - ox, y0 - oy : y1 - oy, t0 - ot : t1 - ot]
        target += disk[:, :, None] * bar[None, None, :]
        counter.madds += disk.size * bar.size


@register_algorithm("pb-sym")
def pb_sym(
    points: PointSet,
    grid: GridSpec,
    *,
    kernel: str | KernelPair = "epanechnikov",
    counter: Optional[WorkCounter] = None,
    timer: Optional[PhaseTimer] = None,
    P: "int | str" = 1,
    backend: str = "serial",
    memory_budget_bytes: Optional[int] = None,
) -> STKDEResult:
    """Point-based STKDE exploiting both invariants (Algorithm 3).

    With ``P > 1`` and ``backend="threads"``, the stamping work itself is
    parallelised through the region engine's sharded threads path
    (:func:`repro.parallel.executors.run_threaded_stamping`): ``P`` workers
    stamp cell-balanced point shards into bounding-box
    :class:`~repro.core.regions.RegionBuffer`\\ s merged by a slab-parallel
    reduction — one output volume plus the shards' joint bounding boxes,
    checked against ``memory_budget_bytes`` from the *planned* buffer
    sizes (a fraction of the ``P + 1`` full volumes the pre-regions path
    needed).  ``P="auto"`` shards by the machine's CPU count instead of
    silently running single-shard.  The default remains the serial engine,
    so PB-SYM stays the sequential reference of the paper's Table 3.
    """
    if backend not in ("serial", "threads"):
        raise ValueError(
            f"pb-sym backend must be 'serial' or 'threads', got {backend!r}"
        )
    kern = get_kernel(kernel)
    counter = counter if counter is not None else WorkCounter()
    timer = timer if timer is not None else PhaseTimer()
    from ..parallel.executors import resolve_shard_count, run_threaded_stamping

    P = resolve_shard_count(P)
    threaded = P > 1 and backend == "threads"
    norm = grid.normalization(points.n)
    with timer.phase("init"):
        vol = grid.allocate()
        counter.init_writes += vol.size
    with timer.phase("compute"):
        if threaded:
            wall = run_threaded_stamping(
                vol, grid, kern, points.coords, norm, counter, P,
                memory_budget_bytes=memory_budget_bytes,
            )
        else:
            stamp_points_sym(vol, grid, kern, points.coords, norm, counter)
    counter.points_processed += points.n
    result = STKDEResult(Volume(vol, grid), "pb-sym", timer, counter)
    if threaded:
        result.meta.update({"P": P, "backend": backend, "stamp_wall": wall})
    return result
