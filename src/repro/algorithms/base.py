"""Algorithm protocol, result container, and registry.

Every STKDE algorithm in this package — sequential (Sections 2-3 of the
paper) and parallel (Sections 4-5) — is a callable

``algo(points, grid, *, kernel=..., counter=None, timer=None, **options)``

returning an :class:`STKDEResult`.  Algorithms self-register under their
paper name (``"vb"``, ``"pb-sym"``, ``"pb-sym-dd"``, ...) so the CLI, the
benchmark harness, and the strategy-selection model can enumerate and invoke
them uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Tuple

import numpy as np

from ..core.grid import Volume
from ..core.instrument import PhaseTimer, WorkCounter

__all__ = [
    "STKDEResult",
    "AlgorithmFn",
    "register_algorithm",
    "get_algorithm",
    "available_algorithms",
    "sequential_algorithms",
    "parallel_algorithms",
]


@dataclass
class STKDEResult:
    """Outcome of one STKDE computation.

    Attributes
    ----------
    volume:
        The density volume with its grid.
    algorithm:
        Registry name of the algorithm that produced it.
    timer:
        Per-phase wall-clock (``init`` / ``compute`` / ``bin`` /
        ``reduce`` ...) — what Figure 7 plots.
    counter:
        Logical work performed — what the overhead analyses (Figures 9, 12)
        are computed from.
    meta:
        Algorithm-specific extras (decomposition used, colouring stats,
        simulated makespan, replication factors, ...).
    """

    volume: Volume
    algorithm: str
    timer: PhaseTimer
    counter: WorkCounter
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def data(self) -> np.ndarray:
        """The raw density array (shape ``(Gx, Gy, Gt)``)."""
        return self.volume.data

    @property
    def elapsed(self) -> float:
        """Total measured wall-clock across phases."""
        return self.timer.total


AlgorithmFn = Callable[..., STKDEResult]

_SEQUENTIAL: Dict[str, AlgorithmFn] = {}
_PARALLEL: Dict[str, AlgorithmFn] = {}


def register_algorithm(
    name: str, *, parallel: bool = False
) -> Callable[[AlgorithmFn], AlgorithmFn]:
    """Class of decorators registering an algorithm under its paper name."""

    def deco(fn: AlgorithmFn) -> AlgorithmFn:
        table = _PARALLEL if parallel else _SEQUENTIAL
        if name in _SEQUENTIAL or name in _PARALLEL:
            raise ValueError(f"algorithm {name!r} already registered")
        table[name] = fn
        fn.algorithm_name = name  # type: ignore[attr-defined]
        fn.is_parallel = parallel  # type: ignore[attr-defined]
        return fn

    return deco


def get_algorithm(name: str) -> AlgorithmFn:
    """Look up any registered algorithm by name."""
    if name in _SEQUENTIAL:
        return _SEQUENTIAL[name]
    if name in _PARALLEL:
        return _PARALLEL[name]
    known = ", ".join(sorted((*_SEQUENTIAL, *_PARALLEL)))
    raise KeyError(f"unknown algorithm {name!r}; available: {known}")


def available_algorithms() -> Tuple[str, ...]:
    """All registered algorithm names (sequential first, then parallel)."""
    return tuple(sorted(_SEQUENTIAL)) + tuple(sorted(_PARALLEL))


def sequential_algorithms() -> Tuple[str, ...]:
    return tuple(sorted(_SEQUENTIAL))


def parallel_algorithms() -> Tuple[str, ...]:
    return tuple(sorted(_PARALLEL))
