"""Voxel-based algorithms: VB (Algorithm 1) and VB-DEC (Section 6.2).

VB is the paper's gold-standard implementation: *for every voxel*, scan
*every point*, test the cylinder condition, and accumulate the kernel
product.  Its cost is ``Theta(Gx * Gy * Gt * n)`` distance tests, which is
why Table 3 shows it orders of magnitude slower than the point-based family.

VB-DEC keeps the voxel-based structure but first bins the points into
blocks whose edge equals the bandwidth, so each voxel only tests points
from its own and adjacent blocks — points farther away cannot pass the
cylinder test.  This reduces the constant enormously on clustered data but
remains voxel-based (it cannot exploit the PB-SYM symmetries, as Section
3.2 notes).

Both are vectorised with NumPy over (voxel-chunk x point-block) tiles
routed through the shared region-accumulation engine
(:func:`repro.core.regions.accumulate_voxel_tile`); the tiling changes
memory traffic, not the operation count, which the
:class:`~repro.core.instrument.WorkCounter` reports faithfully.  The
historical private tile loop is retained verbatim as
:func:`accumulate_tile_legacy` — the reference the engine-equivalence
suite pins against at ``rtol=1e-12``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.grid import GridSpec, PointSet, Volume
from ..core.instrument import PhaseTimer, WorkCounter
from ..core.kernels import KernelPair, get_kernel
from ..core.regions import accumulate_voxel_tile, accumulate_voxel_tile_batch
from .base import STKDEResult, register_algorithm

__all__ = ["vb", "vb_dec", "accumulate_tile_legacy"]

#: Tile sizes bounding temporary arrays to a few tens of MB.
_VOXEL_CHUNK = 2048
_POINT_BLOCK = 512


def accumulate_tile_legacy(
    out_flat: np.ndarray,
    vox_index: np.ndarray,
    cx: np.ndarray,
    cy: np.ndarray,
    ct: np.ndarray,
    px: np.ndarray,
    py: np.ndarray,
    pt: np.ndarray,
    grid: GridSpec,
    kernel: KernelPair,
    norm: float,
    counter: WorkCounter,
) -> None:
    """Legacy private tile loop (reference implementation).

    Kept verbatim from before the region engine unified the tile path:
    ``out_flat`` is the flattened density volume; ``vox_index`` the flat
    indices of the chunk; ``cx/cy/ct`` the chunk's voxel-center coordinates;
    ``px/py/pt`` the point block coordinates.  Production callers go
    through :func:`repro.core.regions.accumulate_voxel_tile`.
    """
    dx = cx[:, None] - px[None, :]
    dy = cy[:, None] - py[None, :]
    dt = ct[:, None] - pt[None, :]
    inside = ((dx * dx + dy * dy) < grid.hs * grid.hs) & (
        np.abs(dt) <= grid.ht
    )
    # VB evaluates the kernels per (voxel, point) pair after the distance
    # test; vectorised we evaluate on the full tile and mask, preserving the
    # Theta(voxels * points) operation profile.
    ks = kernel.spatial(dx / grid.hs, dy / grid.hs)
    kt = kernel.temporal(dt / grid.ht)
    contrib = np.where(inside, ks * kt, 0.0).sum(axis=1)
    out_flat[vox_index] += contrib * norm
    counter.distance_tests += dx.size
    counter.spatial_evals += dx.size
    counter.temporal_evals += dx.size
    # Charged from the tile shape (mask included), matching the engine's
    # O(1) accounting rule — instrumentation never reduces the mask.
    counter.madds += dx.size


def _voxel_chunk_coords(grid: GridSpec, flat_idx: np.ndarray):
    """Voxel-center coordinates (cx, cy, ct) for flat C-order indices."""
    X, Y, T = np.unravel_index(flat_idx, grid.shape)
    cx = grid.domain.x0 + (X + 0.5) * grid.domain.sres
    cy = grid.domain.y0 + (Y + 0.5) * grid.domain.sres
    ct = grid.domain.t0 + (T + 0.5) * grid.domain.tres
    return cx, cy, ct


@register_algorithm("vb")
def vb(
    points: PointSet,
    grid: GridSpec,
    *,
    kernel: str | KernelPair = "epanechnikov",
    counter: Optional[WorkCounter] = None,
    timer: Optional[PhaseTimer] = None,
    voxel_chunk: int = _VOXEL_CHUNK,
    point_block: int = _POINT_BLOCK,
) -> STKDEResult:
    """Gold-standard voxel-based STKDE (Algorithm 1).

    Complexity ``Theta(Gx*Gy*Gt*n)`` time, ``Theta(Gx*Gy*Gt)`` memory.
    """
    kern = get_kernel(kernel)
    counter = counter if counter is not None else WorkCounter()
    timer = timer if timer is not None else PhaseTimer()
    with timer.phase("init"):
        vol = grid.allocate()
        counter.init_writes += vol.size
    norm = grid.normalization(points.n)
    flat = vol.reshape(-1)
    px, py, pt = points.xs, points.ys, points.ts
    with timer.phase("compute"):
        for start in range(0, flat.size, voxel_chunk):
            idx = np.arange(start, min(start + voxel_chunk, flat.size))
            cx, cy, ct = _voxel_chunk_coords(grid, idx)
            for pstart in range(0, points.n, point_block):
                sl = slice(pstart, min(pstart + point_block, points.n))
                accumulate_voxel_tile(
                    flat, idx, cx, cy, ct, px[sl], py[sl], pt[sl],
                    grid, kern, norm, counter,
                )
    counter.points_processed += points.n
    return STKDEResult(Volume(vol, grid), "vb", timer, counter)


@register_algorithm("vb-dec")
def vb_dec(
    points: PointSet,
    grid: GridSpec,
    *,
    kernel: str | KernelPair = "epanechnikov",
    counter: Optional[WorkCounter] = None,
    timer: Optional[PhaseTimer] = None,
    voxel_chunk: int = _VOXEL_CHUNK,
) -> STKDEResult:
    """Voxel-based STKDE with bandwidth-sized point blocking (VB-DEC).

    Points are binned into blocks of ``Hs x Hs x Ht`` voxels.  A voxel in
    block ``(a, b, c)`` can only receive density from points in the 27
    neighbouring blocks, so only those candidates are tested.  Structure
    and results are identical to VB; only the number of (hopeless) distance
    tests shrinks.

    Dispatch is cohort-batched: blocks sharing a voxel count and a
    power-of-two-padded candidate width are stacked through one
    ``(B, V, K)`` tile batch
    (:func:`~repro.core.regions.accumulate_voxel_tile_batch`) — edge
    blocks, whose truncated shapes recur along each face, collapse from
    one dispatch each into a handful of cohort dispatches, exactly like
    the stamping engine's shape cohorts.  Padded candidate lanes point at
    an off-domain sentinel, so they mask to exactly ``0.0``; blocks whose
    padded tile would overrun the pair budget keep the voxel-chunked
    per-block dispatch.
    """
    kern = get_kernel(kernel)
    counter = counter if counter is not None else WorkCounter()
    timer = timer if timer is not None else PhaseTimer()
    with timer.phase("init"):
        vol = grid.allocate()
        counter.init_writes += vol.size
    norm = grid.normalization(points.n)
    # Blocks must be at least one bandwidth wide for the 27-neighbourhood
    # candidate argument; *larger* blocks are always correct, and a floor
    # keeps the block count (pure loop overhead) from exploding when the
    # bandwidth is a voxel or two.
    bx = max(8, grid.Hs)
    bt = max(8, grid.Ht)
    nbx = -(-grid.Gx // bx)
    nby = -(-grid.Gy // bx)
    nbt = -(-grid.Gt // bt)

    with timer.phase("bin"):
        vox = grid.voxels_of(points.coords)
        block_of = (
            (vox[:, 0] // bx) * (nby * nbt)
            + (vox[:, 1] // bx) * nbt
            + (vox[:, 2] // bt)
        )
        order = np.argsort(block_of, kind="stable")
        sorted_blocks = block_of[order]
        # Start offset of every block id in the sorted order.
        boundaries = np.searchsorted(
            sorted_blocks, np.arange(nbx * nby * nbt + 1)
        )

    def block_points(a: int, b: int, c: int) -> np.ndarray:
        bid = a * (nby * nbt) + b * nbt + c
        return order[boundaries[bid] : boundaries[bid + 1]]

    px, py, pt = points.xs, points.ys, points.ts
    # Candidate-padding sentinel: one point outside every cylinder, so a
    # padded lane's masked kernel product is exactly 0.0.
    d = grid.domain
    px_ext = np.append(px, d.x0 - d.gx - 4.0 * grid.hs)
    py_ext = np.append(py, d.y0 - d.gy - 4.0 * grid.hs)
    pt_ext = np.append(pt, d.t0 - d.gt - 4.0 * grid.ht)
    sentinel = points.n
    pair_budget = voxel_chunk * _POINT_BLOCK
    flat = vol.reshape(-1)
    cohorts: dict = {}
    n_cohort_tiles = 0
    with timer.phase("compute"):
        for a in range(nbx):
            for b in range(nby):
                for c in range(nbt):
                    # Candidate points: the 27-neighbourhood of this block.
                    cand = [
                        block_points(aa, bb, cc)
                        for aa in range(max(0, a - 1), min(nbx, a + 2))
                        for bb in range(max(0, b - 1), min(nby, b + 2))
                        for cc in range(max(0, c - 1), min(nbt, c + 2))
                    ]
                    cand_idx = np.concatenate(cand) if cand else np.empty(0, np.int64)
                    if cand_idx.size == 0:
                        continue
                    # Voxels of this block, as flat indices.
                    xs = np.arange(a * bx, min((a + 1) * bx, grid.Gx))
                    ys = np.arange(b * bx, min((b + 1) * bx, grid.Gy))
                    tss = np.arange(c * bt, min((c + 1) * bt, grid.Gt))
                    X, Y, T = np.meshgrid(xs, ys, tss, indexing="ij")
                    idx = np.ravel_multi_index(
                        (X.ravel(), Y.ravel(), T.ravel()), grid.shape
                    )
                    Kp = 1 << (int(cand_idx.size) - 1).bit_length()
                    if idx.size * Kp > pair_budget:
                        # Padding this block to its cohort width would
                        # overrun the pair budget: keep the per-block
                        # voxel-chunked dispatch (no padded lanes).
                        cx, cy, ct = _voxel_chunk_coords(grid, idx)
                        for start in range(0, idx.size, voxel_chunk):
                            sl = slice(start, min(start + voxel_chunk, idx.size))
                            accumulate_voxel_tile(
                                flat, idx[sl], cx[sl], cy[sl], ct[sl],
                                px[cand_idx], py[cand_idx], pt[cand_idx],
                                grid, kern, norm, counter,
                            )
                    else:
                        cohorts.setdefault((idx.size, Kp), []).append(
                            (idx, cand_idx)
                        )
        for (V, Kp) in sorted(cohorts):
            blocks = cohorts[(V, Kp)]
            per = max(1, pair_budget // (V * Kp))
            for i in range(0, len(blocks), per):
                chunk = blocks[i : i + per]
                B = len(chunk)
                vox = np.stack([blk for blk, _ in chunk])
                cand_mat = np.full((B, Kp), sentinel, dtype=np.int64)
                for j, (_, ci) in enumerate(chunk):
                    cand_mat[j, : ci.size] = ci
                cx, cy, ct = _voxel_chunk_coords(grid, vox.ravel())
                accumulate_voxel_tile_batch(
                    flat, vox,
                    cx.reshape(B, V), cy.reshape(B, V), ct.reshape(B, V),
                    px_ext[cand_mat], py_ext[cand_mat], pt_ext[cand_mat],
                    grid, kern, norm, counter,
                )
                n_cohort_tiles += 1
    counter.points_processed += points.n
    return STKDEResult(
        Volume(vol, grid),
        "vb-dec",
        timer,
        counter,
        meta={
            "blocks": (nbx, nby, nbt),
            "block_voxels": (bx, bx, bt),
            "tile_cohorts": len(cohorts),
            "cohort_tile_batches": n_cohort_tiles,
        },
    )
