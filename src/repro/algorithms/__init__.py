"""Sequential STKDE algorithms (Sections 2-3 of the paper).

Importing this package registers: ``vb``, ``vb-dec``, ``pb``, ``pb-disk``,
``pb-bar``, ``pb-sym``.
"""

from .base import (
    STKDEResult,
    available_algorithms,
    get_algorithm,
    parallel_algorithms,
    register_algorithm,
    sequential_algorithms,
)
from .pb import pb, stamp_point_pb
from .pb_sym import pb_sym, stamp_point_sym, stamp_points_sym
from .pb_variants import pb_bar, pb_disk, stamp_point_bar, stamp_point_disk
from .vb import vb, vb_dec

__all__ = [
    "STKDEResult",
    "available_algorithms",
    "get_algorithm",
    "parallel_algorithms",
    "register_algorithm",
    "sequential_algorithms",
    "vb",
    "vb_dec",
    "pb",
    "pb_disk",
    "pb_bar",
    "pb_sym",
    "stamp_point_pb",
    "stamp_point_sym",
    "stamp_points_sym",
    "stamp_point_bar",
    "stamp_point_disk",
]
