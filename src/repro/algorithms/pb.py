"""Point-based algorithm PB (Algorithm 2, Section 3.1).

PB inverts the loop structure of VB: *for every point*, visit only the
voxels of its density cylinder (a ``(2Hs+1) x (2Hs+1) x (2Ht+1)`` window
clipped to the grid) and accumulate the kernel product.  Complexity drops
to ``Theta(Gx*Gy*Gt + n*Hs^2*Ht)`` — the first term is the volume
initialisation, the second the cylinder stamping; either can dominate
(Figure 7).

PB evaluates **both** kernels at **every voxel of the cylinder**: no reuse
of the spatial/temporal invariants.  That is the ~40-flops-per-voxel cost
Section 3.2 sets out to remove, and the baseline against which Table 3's
``PB-SYM`` speedup column is computed.

Stamping engine: the driver routes through
:func:`repro.core.stamping.stamp_batch` with ``mode="pb"``, which evaluates
the same per-voxel kernel products over whole shape cohorts at once; the
per-point :func:`stamp_point_pb` remains as the scalar reference.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.grid import GridSpec, PointSet, Volume
from ..core.instrument import PhaseTimer, WorkCounter
from ..core.kernels import KernelPair, get_kernel
from ..core.stamping import stamp_batch
from .base import STKDEResult, register_algorithm

__all__ = ["pb", "stamp_point_pb"]


def stamp_point_pb(
    vol: np.ndarray,
    grid: GridSpec,
    kernel: KernelPair,
    x: float,
    y: float,
    t: float,
    norm: float,
    counter: WorkCounter,
) -> None:
    """Accumulate one point's cylinder, evaluating both kernels per voxel."""
    win = grid.point_window(x, y, t)
    if win.empty:
        return
    dx = grid.x_centers(win.x0, win.x1) - x
    dy = grid.y_centers(win.y0, win.y1) - y
    dt = grid.t_centers(win.t0, win.t1) - t
    shape = win.shape
    # Broadcast every offset to the full cylinder so the kernels are
    # genuinely evaluated per voxel (PB's defining cost profile).
    DX = np.broadcast_to(dx[:, None, None], shape)
    DY = np.broadcast_to(dy[None, :, None], shape)
    DT = np.broadcast_to(dt[None, None, :], shape)
    inside = ((DX * DX + DY * DY) < grid.hs * grid.hs) & (np.abs(DT) <= grid.ht)
    ks = kernel.spatial(DX / grid.hs, DY / grid.hs)
    kt = kernel.temporal(DT / grid.ht)
    vol[win.slices()] += np.where(inside, ks * kt * norm, 0.0)
    counter.distance_tests += DX.size
    counter.spatial_evals += DX.size
    counter.temporal_evals += DX.size
    # Charged from the window shape (mask included), matching the engine's
    # O(1) accounting rule — instrumentation never reduces the mask.
    counter.madds += DX.size


@register_algorithm("pb")
def pb(
    points: PointSet,
    grid: GridSpec,
    *,
    kernel: str | KernelPair = "epanechnikov",
    counter: Optional[WorkCounter] = None,
    timer: Optional[PhaseTimer] = None,
) -> STKDEResult:
    """Point-based STKDE without invariant reuse (Algorithm 2)."""
    kern = get_kernel(kernel)
    counter = counter if counter is not None else WorkCounter()
    timer = timer if timer is not None else PhaseTimer()
    with timer.phase("init"):
        vol = grid.allocate()
        counter.init_writes += vol.size
    norm = grid.normalization(points.n)
    with timer.phase("compute"):
        stamp_batch(vol, grid, kern, points.coords, norm, counter, mode="pb")
    counter.points_processed += points.n
    return STKDEResult(Volume(vol, grid), "pb", timer, counter)
