"""Single-invariant point-based variants PB-DISK and PB-BAR (Section 3.2).

The contribution of a point factorises into a spatial disk ``Ks`` and a
temporal bar ``Kt`` (Figure 3).  The paper's three variants reuse these
invariants to different degrees:

* **PB-DISK** tabulates the (expensive) spatial kernel once per point and
  still evaluates the temporal kernel at every voxel of the cylinder.
  Large win, growing with the temporal bandwidth — PB re-evaluates the
  whole disk ``2Ht+1`` times.
* **PB-BAR** tabulates the (cheap) temporal kernel once per point and still
  evaluates the spatial kernel at every voxel.  Modest win, as Table 3
  shows.
* **PB-SYM** (see :mod:`repro.algorithms.pb_sym`) tabulates both and only
  multiply-adds inside the cylinder.

All three produce exactly the same density volume as PB.

Stamping engine: both drivers route through
:func:`repro.core.stamping.stamp_batch` (``mode="disk"`` / ``mode="bar"``),
which reproduces each variant's cost profile over whole shape cohorts at
once; the per-point ``stamp_point_*`` functions remain as the scalar
references the engine is tested against.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.grid import GridSpec, PointSet, Volume
from ..core.instrument import PhaseTimer, WorkCounter
from ..core.invariants import bar_table, disk_table
from ..core.kernels import KernelPair, get_kernel
from ..core.stamping import stamp_batch
from .base import STKDEResult, register_algorithm

__all__ = ["pb_disk", "pb_bar", "stamp_point_disk", "stamp_point_bar"]


def stamp_point_disk(
    vol: np.ndarray,
    grid: GridSpec,
    kernel: KernelPair,
    x: float,
    y: float,
    t: float,
    norm: float,
    counter: WorkCounter,
) -> None:
    """PB-DISK stamp: disk tabulated once, ``k_t`` evaluated per voxel."""
    win = grid.point_window(x, y, t)
    if win.empty:
        return
    disk = disk_table(
        grid, kernel, x, y, (win.x0, win.x1), (win.y0, win.y1), norm, counter
    )
    dt = grid.t_centers(win.t0, win.t1) - t
    shape = win.shape
    DT = np.broadcast_to(dt[None, None, :], shape)
    inside_t = np.abs(DT) <= grid.ht
    kt = kernel.temporal(DT / grid.ht)  # evaluated on the full cylinder
    vol[win.slices()] += disk[:, :, None] * np.where(inside_t, kt, 0.0)
    counter.temporal_evals += DT.size
    counter.distance_tests += DT.size
    counter.madds += DT.size


def stamp_point_bar(
    vol: np.ndarray,
    grid: GridSpec,
    kernel: KernelPair,
    x: float,
    y: float,
    t: float,
    norm: float,
    counter: WorkCounter,
) -> None:
    """PB-BAR stamp: bar tabulated once, ``k_s`` evaluated per voxel."""
    win = grid.point_window(x, y, t)
    if win.empty:
        return
    bar = bar_table(grid, kernel, t, (win.t0, win.t1), counter)
    dx = grid.x_centers(win.x0, win.x1) - x
    dy = grid.y_centers(win.y0, win.y1) - y
    shape = win.shape
    DX = np.broadcast_to(dx[:, None, None], shape)
    DY = np.broadcast_to(dy[None, :, None], shape)
    inside_s = (DX * DX + DY * DY) < grid.hs * grid.hs
    ks = kernel.spatial(DX / grid.hs, DY / grid.hs)  # per-voxel evaluation
    vol[win.slices()] += np.where(inside_s, ks * norm, 0.0) * bar[None, None, :]
    counter.spatial_evals += DX.size
    counter.distance_tests += DX.size
    counter.madds += DX.size


@register_algorithm("pb-disk")
def pb_disk(
    points: PointSet,
    grid: GridSpec,
    *,
    kernel: str | KernelPair = "epanechnikov",
    counter: Optional[WorkCounter] = None,
    timer: Optional[PhaseTimer] = None,
) -> STKDEResult:
    """Point-based STKDE reusing the spatial invariant only (PB-DISK)."""
    kern = get_kernel(kernel)
    counter = counter if counter is not None else WorkCounter()
    timer = timer if timer is not None else PhaseTimer()
    with timer.phase("init"):
        vol = grid.allocate()
        counter.init_writes += vol.size
    norm = grid.normalization(points.n)
    with timer.phase("compute"):
        stamp_batch(vol, grid, kern, points.coords, norm, counter, mode="disk")
    counter.points_processed += points.n
    return STKDEResult(Volume(vol, grid), "pb-disk", timer, counter)


@register_algorithm("pb-bar")
def pb_bar(
    points: PointSet,
    grid: GridSpec,
    *,
    kernel: str | KernelPair = "epanechnikov",
    counter: Optional[WorkCounter] = None,
    timer: Optional[PhaseTimer] = None,
) -> STKDEResult:
    """Point-based STKDE reusing the temporal invariant only (PB-BAR)."""
    kern = get_kernel(kernel)
    counter = counter if counter is not None else WorkCounter()
    timer = timer if timer is not None else PhaseTimer()
    with timer.phase("init"):
        vol = grid.allocate()
        counter.init_writes += vol.size
    norm = grid.normalization(points.n)
    with timer.phase("compute"):
        stamp_batch(vol, grid, kern, points.coords, norm, counter, mode="bar")
    counter.points_processed += points.n
    return STKDEResult(Volume(vol, grid), "pb-bar", timer, counter)
