"""Legacy setup shim.

The offline environment has setuptools but not `wheel`, so PEP 660 editable
installs fail; this shim lets `pip install -e . --no-use-pep517` (and plain
`pip install -e .` on older pips) take the legacy `setup.py develop` path.
"""
from setuptools import setup

setup()
