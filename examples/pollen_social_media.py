"""Social-media burst analysis: parallel strategies on clustered data.

The PollenUS dataset (588 K allergy tweets) is the paper's stress test for
parallel STKDE: tweets pile up in a few metro areas, so domain
decomposition suffers replication overhead and point decomposition
suffers critical-path serialisation.  This example runs a pollen-like
instance through all the strategies and shows the trade-off landscape
(a miniature of the paper's Figure 15).

Run:  python examples/pollen_social_media.py
"""

from __future__ import annotations

from repro import get_algorithm
from repro.algorithms import pb_sym
from repro.analysis import dd_work_overhead, pd_critical_path_ratio, speedup
from repro.data import get_instance

P = 8  # virtual processors (simulated backend)
DEC = (8, 8, 8)


def main() -> None:
    inst = get_instance("PollenUS_Hr-Mb", scale="bench")
    grid, points = inst.grid(), inst.points()
    print(f"instance: {inst.describe()}")

    base = pb_sym(points, grid)
    print(f"\nsequential PB-SYM: {base.elapsed * 1e3:.0f} ms "
          f"(init {base.timer.fraction('init'):.0%} / "
          f"compute {base.timer.fraction('compute'):.0%})")

    print(f"\nstructural diagnostics at decomposition {DEC}:")
    dd = dd_work_overhead(points, grid, DEC)
    print(f"  DD replication factor   : {dd['replication_factor']:.2f} "
          f"(each tweet stamped in that many subdomains)")
    print(f"  DD invariant overhead   : {dd['invariant_overhead']:.2f}x")
    cp_pd = pd_critical_path_ratio(points, grid, DEC, "parity")
    cp_sc = pd_critical_path_ratio(points, grid, DEC, "sched")
    print(f"  PD critical path        : {cp_pd:.1%} of total work "
          f"(caps speedup at {1 / cp_pd:.1f}x)")
    print(f"  PD-SCHED critical path  : {cp_sc:.1%}")

    print(f"\nparallel strategies at P={P} (simulated makespans):")
    rows = []
    for name in ("pb-sym-dr", "pb-sym-dd", "pb-sym-pd", "pb-sym-pd-sched",
                 "pb-sym-pd-rep"):
        fn = get_algorithm(name)
        kwargs = {"P": P, "backend": "simulated"}
        if name != "pb-sym-dr":
            kwargs["decomposition"] = DEC
        res = fn(points, grid, **kwargs)
        s = speedup(base.elapsed, res)
        rows.append((name, res.meta["makespan"], s))
    for name, ms, s in rows:
        bar = "#" * int(round(s * 4))
        print(f"  {name:16s} {ms * 1e3:8.0f} ms  speedup {s:5.2f}x  {bar}")

    winner = max(rows, key=lambda r: r[2])
    print(f"\nbest strategy here: {winner[0]} at {winner[2]:.2f}x — on "
          f"PollenUS-like data the scheduled point decomposition family "
          f"wins, as in the paper's Figure 15.")


if __name__ == "__main__":
    main()
