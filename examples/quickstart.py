"""Quickstart: estimate a space-time density from raw events.

Generates a small synthetic set of events, runs the estimator through the
high-level :class:`repro.STKDE` facade, and renders the densest time slice
as an ASCII heatmap.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import STKDE, PointSet
from repro.viz import hotspots, render_time_slice


def main() -> None:
    # Events: two outbreak clusters and some background noise, in
    # arbitrary units (say, kilometres and days).
    rng = np.random.default_rng(42)
    cluster_a = rng.normal(loc=[30.0, 40.0, 20.0], scale=[3.0, 3.0, 4.0], size=(300, 3))
    cluster_b = rng.normal(loc=[70.0, 55.0, 55.0], scale=[5.0, 4.0, 6.0], size=(200, 3))
    noise = rng.uniform([0, 0, 0], [100, 100, 80], size=(60, 3))
    events = PointSet(np.clip(np.vstack([cluster_a, cluster_b, noise]), 0, [100, 100, 80]))

    # Estimator: 8 km spatial bandwidth, 6 day temporal bandwidth, on a
    # 1 km x 1 day grid.  The domain is inferred from the events.
    est = STKDE(hs=8.0, ht=6.0, sres=1.0, tres=1.0)
    result = est.estimate(events)

    grid = result.volume.grid
    print(f"events       : {events.n}")
    print(f"grid         : {grid.Gx} x {grid.Gy} x {grid.Gt} voxels "
          f"(Hs={grid.Hs}, Ht={grid.Ht})")
    print(f"algorithm    : {result.algorithm} ({result.elapsed * 1e3:.1f} ms)")
    print(f"total mass   : {result.volume.total_mass:.4f} (~1 when cylinders are interior)")

    print("\ntop space-time hotspots (voxel coordinates):")
    for (X, Y, T), value in hotspots(result.volume, k=3):
        print(f"  ({X:3d}, {Y:3d}, T={T:3d})   density {value:.3e}")

    X, Y, T = result.volume.max_voxel()
    print(f"\ndensity map at the hottest time step (T={T}):\n")
    print(render_time_slice(result.volume, T, width=64, height=24))


if __name__ == "__main__":
    main()
