"""Global wildlife surveillance: the sparse, init-dominated regime.

The avian-flu dataset is the paper's pathological case: 31 K observations
scattered over the whole planet.  The density volume dwarfs the kernel
work, so runtime is dominated by *memory initialisation* (Figure 7) —
replication-based parallelism actively hurts (Figure 8), and the memory
budget kills domain replication outright at high resolution.  This
example demonstrates all three effects and lets the Section 6.5 cost
model pick a strategy that copes.

Run:  python examples/bird_surveillance.py
"""

from __future__ import annotations

from repro.algorithms import pb_sym
from repro.analysis import phase_breakdown, select_strategy, speedup
from repro.data import get_instance
from repro.parallel import MemoryBudgetExceeded, pb_sym_dd, pb_sym_dr

P = 8


def main() -> None:
    inst = get_instance("Flu_Hr-Lb", scale="bench")
    grid, points = inst.grid(), inst.points()
    print(f"instance: {inst.describe()}")
    print(f"memory budget (scaled from the paper's 128 GB): "
          f"{inst.memory_budget_bytes / 1e6:.0f} MB "
          f"= {inst.copies_allowed:.1f} volume copies")

    base = pb_sym(points, grid)
    frac = phase_breakdown(base)
    print(f"\nsequential PB-SYM: {base.elapsed * 1e3:.0f} ms")
    for phase, f in sorted(frac.items()):
        print(f"  {phase:8s} {f:6.1%}")
    print("-> the volume is so sparse that zeroing it outweighs the kernels.")

    print(f"\ndomain replication at P={P} under the memory budget:")
    try:
        res = pb_sym_dr(points, grid, P=P,
                        memory_budget_bytes=inst.memory_budget_bytes)
        print(f"  unexpectedly fit: {res.meta['makespan'] * 1e3:.0f} ms")
    except MemoryBudgetExceeded as exc:
        print(f"  OOM, as in the paper's Figure 8: {exc}")

    print(f"\ndomain replication at P=4 (fits -> but barely helps):")
    res4 = pb_sym_dr(points, grid, P=4,
                     memory_budget_bytes=inst.memory_budget_bytes)
    print(f"  makespan {res4.meta['makespan'] * 1e3:.0f} ms, "
          f"speedup {speedup(base.elapsed, res4):.2f}x "
          f"(extra volume traffic eats the gain)")

    res_dd = pb_sym_dd(points, grid, P=P, decomposition=(8, 8, 8))
    print(f"\ndomain decomposition at P={P}: "
          f"{res_dd.meta['makespan'] * 1e3:.0f} ms, "
          f"speedup {speedup(base.elapsed, res_dd):.2f}x "
          f"(bounded by the ~3x memory-bandwidth ceiling on init)")

    best, ranked = select_strategy(
        grid, points, P, memory_budget_bytes=inst.memory_budget_bytes
    )
    print(f"\ncost model's verdict for P={P}:")
    for p in ranked[:4]:
        print(f"  {p.describe()}")
    print(f"\npicked: {best.algorithm} — on init-dominated instances every "
          f"strategy converges to the memory wall; the model knows not to "
          f"waste replicas on it.")


if __name__ == "__main__":
    main()
