"""Sharded serving: shard-owning worker processes behind one facade.

A single-process `DensityService` answers every query from one Python
process — one core, however many the box has.  `ShardedDensityService`
partitions the domain into disjoint x-slabs, spawns one worker process
per shard (each owning a private bucket index over *its* events only),
and answers a batch by scatter/gather: queries are scattered to the
shards whose owned interval intersects their kernel support (one
bandwidth of halo on the query side — events are never replicated),
each worker computes an unnormalised partial sum, and the coordinator
adds the partials and applies the global normalisation.  Because event
ownership is disjoint, the gathered answer *is* the single-process
estimator, re-associated — this script verifies it at ``rtol=1e-12``.

The scenario mirrors a deployment:

* a static snapshot served by a 4-worker pool, with the per-batch
  planner deciding scatter/gather vs the local fallback;
* a live sliding window fed through ``add`` / ``slide_window``, where
  mutations route only to the affected shards (watch the
  ``shard_messages`` gauge);
* merged observability: per-worker work counters through ``stats()``.

Run:  python examples/sharded_serving.py
"""

from __future__ import annotations

import numpy as np

from repro import DensityService, GridSpec, PointSet, ShardedDensityService
from repro.core import DomainSpec

EXTENT = (96, 80, 40)
WORKERS = 4


def synth_events(rng, n: int) -> np.ndarray:
    centers = np.array([[20.0, 30.0], [70.0, 50.0], [45.0, 15.0]])
    which = rng.integers(0, len(centers), size=n)
    return np.column_stack([
        np.clip(rng.normal(centers[which, 0], 7.0), 0, EXTENT[0] - 1e-9),
        np.clip(rng.normal(centers[which, 1], 7.0), 0, EXTENT[1] - 1e-9),
        rng.uniform(0, EXTENT[2], size=n),
    ])


def main() -> None:
    rng = np.random.default_rng(29)
    grid = GridSpec(DomainSpec.from_voxels(*EXTENT), hs=6.0, ht=4.0)
    events = synth_events(rng, 4_000)
    queries = rng.uniform(0, np.array(EXTENT, float), size=(2_000, 3))

    # -- static snapshot through the sharded tier ----------------------
    reference = DensityService(PointSet(events), grid)
    with ShardedDensityService(
        PointSet(events), grid, workers=WORKERS
    ) as svc:
        print(f"shard plan: {svc.n_shards} shards, cuts at "
              f"{np.round(svc.plan.cuts, 1).tolist()} (halo "
              f"{svc.plan.halo:.1f} = one spatial bandwidth)")
        sharded = svc.query_points(queries, backend="sharded")
        single = reference.query_points(queries, backend="direct")
        np.testing.assert_allclose(sharded, single, rtol=1e-12, atol=1e-300)
        rel = np.max(
            np.abs(sharded - single) / np.maximum(np.abs(single), 1e-300)
        )
        print(f"static batch: {len(queries)} queries across "
              f"{svc.n_shards} workers match the single process "
              f"(max rel err {rel:.2e})")

        # The planner prices scatter/gather IPC per batch: a handful of
        # sentinel probes is not worth the round-trips.
        plans: list = []
        svc.query_points(queries[:4], plan_out=plans)
        print(f"planner on a 4-query batch: {plans[-1].describe()}")

        st = svc.stats()
        print(f"observability: {st['work']['shard_messages']} messages, "
              f"{st['work']['shard_rows_shipped']} rows shipped, "
              f"per-worker events {[w['events'] for w in st['workers']]}")

    # -- live sliding window -------------------------------------------
    print("\nlive window:")
    with ShardedDensityService(None, grid, workers=WORKERS) as svc:
        batch = synth_events(rng, 1_500)
        batch[:, 2] *= 0.5  # older half of the time range
        svc.add(batch)
        probe = rng.uniform(0, np.array(EXTENT, float), size=(200, 3))
        before = svc.query_points(probe)

        arriving = synth_events(rng, 800)
        arriving[:, 2] = EXTENT[2] * (0.5 + 0.5 * rng.random(800))
        msgs0 = svc.counter.shard_messages
        retired = svc.slide_window(arriving, t_horizon=EXTENT[2] * 0.25)
        contacted = svc.counter.shard_messages - msgs0
        print(f"slide: {retired} events retired, {len(arriving)} arrived "
              f"— contacted {contacted}/{svc.n_shards} shards")
        after = svc.query_points(probe)
        print(f"window moved: probe density shifted by up to "
              f"{np.max(np.abs(after - before)):.3e}")
    print("worker pools reaped; done")


if __name__ == "__main__":
    main()
