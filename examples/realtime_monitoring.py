"""Near-real-time monitoring: a live feed served through the front end.

The paper's motivation is timely epidemic response: new case reports
arrive daily and analysts watch a rolling window.  This example runs the
whole serving stack the way a deployment would:

* an :class:`~repro.core.incremental.IncrementalSTKDE` maintains the
  rolling 30-day window exactly — each day stamps the new events and
  un-stamps the expired ones (O(events x stamp), independent of
  history);
* a :class:`~repro.serve.DensityService` answers density queries over
  the live estimator;
* an asyncio :class:`~repro.serve.TrafficFrontend` takes the traffic —
  a crowd of concurrent analyst clients probing point densities while a
  dashboard pulls the day's slice and the daily feed slides the window
  through the mutation lane.  Co-arriving point probes coalesce into
  shared batches (asserted below via the frontend's own counters), and
  the slide never tears a flush: every answer is computed against a
  single service version.

Run:  python examples/realtime_monitoring.py
"""

from __future__ import annotations

import asyncio
import time

import numpy as np

from repro import GridSpec, IncrementalSTKDE, PointSet
from repro.algorithms import pb_sym
from repro.core import DomainSpec
from repro.serve import DensityService, TrafficFrontend

EXTENT = (120, 100, 400)  # city grid, ~13 months of days
WINDOW_DAYS = 30.0
ANALYSTS = 12  # concurrent point-probing clients per day
PROBES = 6     # probes each analyst issues, back to back


def daily_feed(day: int, rng) -> np.ndarray:
    """Synthetic daily case reports: a drifting outbreak + noise."""
    n = int(rng.poisson(40))
    center = np.array([30.0 + 0.15 * day, 40.0 + 0.1 * day])
    cases = np.column_stack([
        rng.normal(center[0], 4.0, n),
        rng.normal(center[1], 4.0, n),
        np.full(n, float(day)) + rng.uniform(0, 1, n),
    ])
    noise = np.column_stack([
        rng.uniform(0, EXTENT[0], 5),
        rng.uniform(0, EXTENT[1], 5),
        np.full(5, float(day)) + rng.uniform(0, 1, 5),
    ])
    return np.clip(np.vstack([cases, noise]), 0, [EXTENT[0] - 1e-9, EXTENT[1] - 1e-9, EXTENT[2] - 1e-9])


async def analyst(fe: TrafficFrontend, rng_seed: int, day: int) -> float:
    """One analyst: a burst of single-point probes around the city —
    each its own request; the front end does the batching."""
    rng = np.random.default_rng(rng_seed)
    peak = 0.0
    for _ in range(PROBES):
        x = rng.uniform(0, EXTENT[0])
        y = rng.uniform(0, EXTENT[1])
        t = day + rng.uniform(0, 1)
        peak = max(peak, await fe.query_point(x, y, t))
    return peak


async def monitor() -> None:
    grid = GridSpec(DomainSpec.from_voxels(*EXTENT), hs=6.0, ht=5.0)
    inc = IncrementalSTKDE(grid)
    service = DensityService(inc, backend="direct")
    rng = np.random.default_rng(99)

    print(f"rolling {WINDOW_DAYS:.0f}-day STKDE window on a "
          f"{EXTENT[0]}x{EXTENT[1]} city grid, "
          f"{ANALYSTS} concurrent analysts x {PROBES} probes/day\n")
    print(f"{'day':>4s} {'events':>7s} {'live':>6s} {'slide':>9s} "
          f"{'probes':>9s} {'hotspot (x,y)':>14s}")

    window: list = []
    async with TrafficFrontend(service) as fe:
        for day in range(0, 90, 10):  # sample every 10th day of a season
            batch = daily_feed(day, rng)
            horizon = max(0.0, day - WINDOW_DAYS)

            t0 = time.perf_counter()
            # The feed slides through the mutation lane: versioned,
            # FIFO, never interleaved with a started bulk extract.
            await fe.slide_window(batch, t_horizon=horizon)
            t_slide = time.perf_counter() - t0

            window = [b[b[:, 2] >= horizon] for b in window]
            window.append(batch)

            # The analyst crowd and the dashboard hit the front end
            # together; co-arriving probes coalesce into shared batches.
            t0 = time.perf_counter()
            peaks, dash = await asyncio.gather(
                asyncio.gather(*(
                    analyst(fe, 1000 * day + i, day)
                    for i in range(ANALYSTS)
                )),
                fe.query_slice(min(day, EXTENT[2] - 1)),
            )
            t_probes = time.perf_counter() - t0
            sl = dash.time_slice()
            X, Y = np.unravel_index(int(np.argmax(sl)), sl.shape)
            print(f"{day:>4d} {len(batch):>7d} {inc.n:>6d} "
                  f"{t_slide * 1e3:>8.1f}ms {t_probes * 1e3:>8.1f}ms "
                  f"{f'({X},{Y})':>14s}")

        blob = fe.frontend_stats()

    # The coalescer really batched: far fewer dispatches than requests.
    assert blob["coalesced_requests"] > blob["batches"], blob
    assert blob["mean_batch_rows"] > 1.5, blob
    print(f"\nfrontend: {blob['coalesced_requests']} point probes served "
          f"in {blob['batches']} dispatches "
          f"(mean {blob['mean_batch_rows']:.1f} rows/batch, "
          f"p99 {blob['latency']['p99_ms']:.2f} ms, shed {blob['shed']})")

    # The served window still matches a cold batch recomputation exactly.
    live = np.vstack([b for b in window if len(b)])
    drift = np.max(np.abs(inc.volume().data - pb_sym(PointSet(live), grid).data))
    assert drift < 1e-12, "incremental estimate drifted from batch"
    print("the hotspot drifts with the outbreak; each update costs only the "
          "changed events' stamps\nwhile matching the full recomputation "
          f"exactly (max drift {drift:.2e}).")


def main() -> None:
    asyncio.run(monitor())


if __name__ == "__main__":
    main()
