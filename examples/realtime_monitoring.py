"""Near-real-time monitoring: sliding-window STKDE on a live feed.

The paper's motivation is timely epidemic response: new case reports
arrive daily and analysts watch a rolling window.  Recomputing the full
volume per update is what the paper accelerates; this example shows the
orthogonal trick the PB-SYM structure enables — *exact incremental
maintenance*: each day only stamps the new events and un-stamps the
expired ones (O(events x stamp), independent of history size).

Run:  python examples/realtime_monitoring.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import GridSpec, IncrementalSTKDE, PointSet
from repro.algorithms import pb_sym
from repro.core import DomainSpec
from repro.viz import hotspots

EXTENT = (120, 100, 400)  # city grid, ~13 months of days
WINDOW_DAYS = 30.0


def daily_feed(day: int, rng) -> np.ndarray:
    """Synthetic daily case reports: a drifting outbreak + noise."""
    n = int(rng.poisson(40))
    center = np.array([30.0 + 0.15 * day, 40.0 + 0.1 * day])
    cases = np.column_stack([
        rng.normal(center[0], 4.0, n),
        rng.normal(center[1], 4.0, n),
        np.full(n, float(day)) + rng.uniform(0, 1, n),
    ])
    noise = np.column_stack([
        rng.uniform(0, EXTENT[0], 5),
        rng.uniform(0, EXTENT[1], 5),
        np.full(5, float(day)) + rng.uniform(0, 1, 5),
    ])
    return np.clip(np.vstack([cases, noise]), 0, [EXTENT[0] - 1e-9, EXTENT[1] - 1e-9, EXTENT[2] - 1e-9])


def main() -> None:
    grid = GridSpec(DomainSpec.from_voxels(*EXTENT), hs=6.0, ht=5.0)
    inc = IncrementalSTKDE(grid)
    rng = np.random.default_rng(99)

    print(f"rolling {WINDOW_DAYS:.0f}-day STKDE window on a {EXTENT[0]}x{EXTENT[1]} city grid\n")
    print(f"{'day':>4s} {'events':>7s} {'live':>6s} {'update':>9s} {'batch-equiv':>12s} {'hotspot (x,y)':>14s}")

    window: list = []
    for day in range(0, 90, 10):  # sample every 10th day of a season
        batch = daily_feed(day, rng)
        horizon = max(0.0, day - WINDOW_DAYS)

        t0 = time.perf_counter()
        inc.slide_window(batch, t_horizon=horizon)
        t_update = time.perf_counter() - t0

        window = [b[b[:, 2] >= horizon] for b in window]
        window.append(batch)
        live = np.vstack([b for b in window if len(b)])

        t0 = time.perf_counter()
        batch_res = pb_sym(PointSet(live), grid)
        t_batch = time.perf_counter() - t0

        vol = inc.volume()
        (X, Y, _), _ = hotspots(vol, k=1)[0]
        drift = np.max(np.abs(vol.data - batch_res.data))
        assert drift < 1e-12, "incremental estimate drifted from batch"
        print(f"{day:>4d} {len(batch):>7d} {inc.n:>6d} {t_update * 1e3:>8.1f}ms "
              f"{t_batch * 1e3:>11.1f}ms {f'({X},{Y})':>14s}")

    print("\nThe hotspot drifts with the outbreak; each update costs only "
          "the changed events' stamps while matching the full "
          "recomputation exactly (asserted above).")


if __name__ == "__main__":
    main()
