"""Scaling study: every parallel strategy across P = 1..16.

A miniature of the paper's whole Section 6: for one compute-heavy
instance, sweep the (virtual) processor count for each strategy and print
the speedup curves side by side — showing DR's replication tax, DD's
imbalance ceiling, PD's critical-path plateau, and how SCHED/REP lift it.

Run:  python examples/scaling_study.py [instance-name]
"""

from __future__ import annotations

import sys

from repro import get_algorithm
from repro.algorithms import pb_sym
from repro.analysis import speedup
from repro.data import get_instance, instance_names

PS = (1, 2, 4, 8, 16)
DEC = (16, 16, 16)
STRATEGIES = ("pb-sym-dr", "pb-sym-dd", "pb-sym-pd", "pb-sym-pd-sched",
              "pb-sym-pd-rep")


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "Dengue_Hr-VHb"
    if name not in instance_names():
        raise SystemExit(f"unknown instance {name!r}; pick one of "
                         f"{', '.join(instance_names())}")
    inst = get_instance(name, scale="bench")
    grid, points = inst.grid(), inst.points()
    print(f"instance: {inst.describe()}")

    base = pb_sym(points, grid)
    print(f"sequential PB-SYM baseline: {base.elapsed * 1e3:.0f} ms\n")

    header = "P".rjust(4) + "".join(f"{s.replace('pb-sym-', ''):>12s}" for s in STRATEGIES)
    print(header)
    print("-" * len(header))
    curves = {s: [] for s in STRATEGIES}
    for P in PS:
        cells = [f"{P:4d}"]
        for s in STRATEGIES:
            fn = get_algorithm(s)
            kwargs = {"P": P, "backend": "simulated"}
            if s != "pb-sym-dr":
                kwargs["decomposition"] = DEC
            if s in ("pb-sym-dr", "pb-sym-pd-rep"):
                kwargs["memory_budget_bytes"] = inst.memory_budget_bytes
            try:
                res = fn(points, grid, **kwargs)
                sp = speedup(base.elapsed, res)
                curves[s].append(sp)
                cells.append(f"{sp:11.2f}x")
            except Exception:
                curves[s].append(float("nan"))
                cells.append("        OOM ")
        print("".join(cells))

    print("\nwhat to look for (cf. Figures 8-15):")
    print(" * dr        — pays P volume inits + reductions; poor on sparse data")
    print(" * dd        — replication overhead vs load balance trade-off")
    print(" * pd        — plateaus at 1/critical-path-ratio")
    print(" * pd-sched  — same work, better ordering; lifts clustered instances")
    print(" * pd-rep    — splits the hot chain; best when one cluster dominates")


if __name__ == "__main__":
    main()
