"""Epidemic surveillance: bandwidth choice on a dengue-like outbreak.

Reproduces the workflow of the paper's Figure 1: the same dengue-like
case data visualised at a wide bandwidth (city-scale seasonal pattern)
versus a narrow bandwidth (neighbourhood-scale clusters).  Bandwidth is an
*analysis* knob — this example shows why near-real-time STKDE matters:
an analyst iterates over bandwidths interactively.

Run:  python examples/epidemic_outbreak.py
"""

from __future__ import annotations

import time

from repro import STKDE
from repro.data import dengue_like
from repro.viz import hotspots, render_time_slice

# A Cali-like city extent: 15 km x 20 km, two years of daily reports,
# modelled at 100 m / 1 day resolution (in voxel units: 150 x 200 x 730).
EXTENT = (150.0, 200.0, 730.0)
N_CASES = 9606  # the 2010 Cali dengue epidemic's geocoded case count


def analyse(events, hs: float, ht: float, label: str) -> None:
    t0 = time.perf_counter()
    est = STKDE(hs=hs, ht=ht, sres=1.0, tres=1.0, algorithm="pb-sym")
    result = est.estimate(events)
    dt = time.perf_counter() - t0
    grid = result.volume.grid
    print(f"\n=== {label}: hs={hs:.0f} (x100m), ht={ht:.0f} days "
          f"[{dt * 1e3:.0f} ms, grid {grid.Gx}x{grid.Gy}x{grid.Gt}] ===")
    _, _, T = result.volume.max_voxel()
    print(render_time_slice(result.volume, T, width=60, height=22))
    print("hotspots:")
    for (X, Y, Tv), val in hotspots(result.volume, k=3):
        print(f"  voxel ({X}, {Y}) around day {Tv}: {val:.2e}")


def main() -> None:
    events = dengue_like(N_CASES, EXTENT, seed=2010)
    print(f"dengue-like surveillance set: {events.n} geocoded cases over two seasons")

    # Figure 1a analogue: wide bandwidths smooth into city-wide waves.
    analyse(events, hs=25.0, ht=14.0, label="wide bandwidth (city pattern)")
    # Figure 1b analogue: narrow bandwidths isolate neighbourhood clusters.
    analyse(events, hs=5.0, ht=7.0, label="narrow bandwidth (local clusters)")

    print(
        "\nNarrow bandwidths concentrate density into street-level clusters;"
        "\nwide bandwidths reveal the seasonal wave.  Each re-estimate is a"
        "\nfull STKDE pass - the reason the paper pushes it to near real-time."
    )


if __name__ == "__main__":
    main()
