"""Serving density queries: sentinels, dashboards, and map tiles.

The compute engines answer "density everywhere"; production traffic asks
"density *here*, *now*".  This scenario runs a `DensityService` over a
monitored city feed and serves the three query shapes a deployment sees:

* **sentinel probes** — a few fixed locations polled by alerting rules:
  the planner keeps them on the direct kernel-sum index walk (no volume
  is ever materialised for a handful of probes);
* **dashboard heatmaps** — the newest full time slice: the first request
  materialises a volume and every repeat is a cache hit serving a
  zero-copy view;
* **map tiles** — bbox region extracts at the hotspot.

A mid-scenario `slide_window` then retires the oldest day, and the
service invalidates its cache and volume automatically — the next answers
reflect the new window, verified against a from-scratch estimate.

Run:  python examples/query_serving.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import DensityService, GridSpec, IncrementalSTKDE, PointSet
from repro.algorithms import pb_sym
from repro.core import DomainSpec

EXTENT = (120, 100, 60)  # city grid, two months of days
N_PER_DAY = 400


def synth_feed(rng, day_lo: int, day_hi: int) -> np.ndarray:
    """Clustered incident reports over a span of days."""
    n = N_PER_DAY * (day_hi - day_lo)
    centers = np.array([[30.0, 40.0], [80.0, 65.0], [55.0, 20.0]])
    which = rng.integers(0, len(centers), size=n)
    return np.column_stack([
        np.clip(rng.normal(centers[which, 0], 6.0), 0, EXTENT[0] - 1e-9),
        np.clip(rng.normal(centers[which, 1], 6.0), 0, EXTENT[1] - 1e-9),
        rng.uniform(day_lo, day_hi, size=n),
    ])


def main() -> None:
    rng = np.random.default_rng(17)
    grid = GridSpec(DomainSpec.from_voxels(*EXTENT), hs=8.0, ht=6.0)
    inc = IncrementalSTKDE(grid)
    inc.add(synth_feed(rng, 0, 30))
    service = DensityService(inc)

    print(f"serving {inc.n} live events on a "
          f"{EXTENT[0]}x{EXTENT[1]} city grid\n")

    # --- sentinel probes: few queries -> direct kernel sums ------------
    sentinels = np.array([
        [30.0, 40.0, 29.5], [80.0, 65.0, 29.5], [5.0, 5.0, 29.5],
    ])
    plans: list = []
    t0 = time.perf_counter()
    dens = service.query_points(sentinels, plan_out=plans)
    t_probe = time.perf_counter() - t0
    print(f"sentinel probes ({t_probe * 1e3:.1f} ms): "
          + ", ".join(f"{d:.3e}" for d in dens))
    print(f"  plan: {plans[-1].describe()}")

    # --- dashboard: newest slice, repeated -> materialise once, then cache
    T_now = EXTENT[2] - 31  # newest fully-covered day
    t0 = time.perf_counter()
    heat = service.query_slice(T_now)
    t_cold = time.perf_counter() - t0
    t0 = time.perf_counter()
    service.query_slice(T_now)
    t_warm = time.perf_counter() - t0
    stats = service.stats()
    print(f"\ndashboard slice T={T_now}: cold {t_cold * 1e3:.1f} ms "
          f"({heat.backend}), repeat {t_warm * 1e3:.3f} ms "
          f"(cache hits={stats['cache']['hits']}, "
          f"{t_cold / max(t_warm, 1e-9):.0f}x faster)")

    # --- map tile at the hottest spot ---------------------------------
    sl = heat.time_slice()
    X, Y = np.unravel_index(int(np.argmax(sl)), sl.shape)
    tile = service.query_region((
        max(0, X - 8), min(EXTENT[0], X + 8),
        max(0, Y - 8), min(EXTENT[1], Y + 8),
        T_now, T_now + 1,
    ))
    print(f"map tile at hotspot ({X},{Y}): backend={tile.backend}, "
          f"view={tile.is_view}, peak={tile.data.max():.3e}")

    # --- the window slides: cache and volume invalidate ----------------
    retired = inc.slide_window(synth_feed(rng, 30, 31), t_horizon=1.0)
    fresh = service.query_points(sentinels)
    print(f"\nslide_window: +{N_PER_DAY} new, -{retired} expired "
          f"(version {service.version})")
    print("sentinels after slide: " + ", ".join(f"{d:.3e}" for d in fresh))

    live = PointSet(inc.live_coords)
    ref = pb_sym(live, grid)
    vox = np.array([grid.voxel_of(*s) for s in sentinels])
    check = ref.data[vox[:, 0], vox[:, 1], vox[:, 2]]
    # Sentinels sit between voxel centers; compare against the direct sums
    # of a from-scratch window instead of the (coarser) grid values.
    recomputed = DensityService(live, grid).query_points(
        sentinels, backend="direct"
    )
    drift = np.max(np.abs(fresh - recomputed))
    assert drift < 1e-15, f"served densities drifted {drift:.2e} from recompute"
    print(f"post-slide answers match a from-scratch window exactly "
          f"(grid hotspot values nearby: {', '.join(f'{c:.3e}' for c in check)})")

    final = service.stats()
    print(f"\nservice stats: backends={final['backend_calls']}, "
          f"cache={final['cache']}, volume builds={final['volume_builds']}")


if __name__ == "__main__":
    main()
