"""Tests for the incremental / sliding-window estimator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import pb_sym
from repro.core import DomainSpec, GridSpec, PointSet
from repro.core.incremental import IncrementalSTKDE

from tests.helpers import make_points


@pytest.fixture
def grid():
    return GridSpec(DomainSpec.from_voxels(22, 20, 30), hs=2.6, ht=2.2)


class TestAddOnly:
    def test_single_batch_matches_batch_estimate(self, grid):
        pts = make_points(grid, 60, seed=1)
        inc = IncrementalSTKDE(grid)
        inc.add(pts)
        batch = pb_sym(pts, grid)
        np.testing.assert_allclose(inc.volume().data, batch.data,
                                   rtol=1e-12, atol=1e-18)

    def test_split_batches_match(self, grid):
        pts = make_points(grid, 80, seed=2)
        inc = IncrementalSTKDE(grid)
        inc.add(pts.subset(np.arange(30)))
        inc.add(pts.subset(np.arange(30, 80)))
        batch = pb_sym(pts, grid)
        np.testing.assert_allclose(inc.volume().data, batch.data,
                                   rtol=1e-12, atol=1e-18)
        assert inc.n == 80

    def test_accepts_raw_arrays(self, grid, rng):
        inc = IncrementalSTKDE(grid)
        inc.add(rng.uniform(0, 18, size=(10, 3)))
        assert inc.n == 10

    def test_empty_add_is_noop(self, grid):
        inc = IncrementalSTKDE(grid)
        inc.add(np.empty((0, 3)))
        assert inc.n == 0


class TestRemove:
    def test_add_then_remove_restores_empty(self, grid):
        pts = make_points(grid, 40, seed=3)
        inc = IncrementalSTKDE(grid)
        inc.add(pts)
        inc.remove(pts)
        assert inc.n == 0
        assert not inc.volume().data.any()

    def test_partial_remove_matches_remaining_batch(self, grid):
        pts = make_points(grid, 50, seed=4)
        inc = IncrementalSTKDE(grid)
        inc.add(pts)
        inc.remove(pts.subset(np.arange(20)))
        rest = pts.subset(np.arange(20, 50))
        batch = pb_sym(rest, grid)
        np.testing.assert_allclose(inc.volume().data, batch.data,
                                   rtol=1e-10, atol=1e-15)

    def test_remove_more_than_present_rejected(self, grid):
        pts = make_points(grid, 5, seed=5)
        inc = IncrementalSTKDE(grid)
        inc.add(pts.subset(np.arange(2)))
        with pytest.raises(ValueError, match="only 2 present"):
            inc.remove(pts)

    def test_no_negative_density_after_removal(self, grid):
        pts = make_points(grid, 30, seed=6)
        inc = IncrementalSTKDE(grid)
        inc.add(pts)
        inc.remove(pts.subset(np.arange(15)))
        assert (inc.volume().data >= 0).all()


class TestSlideWindow:
    def test_slide_equals_batch_on_window(self, grid):
        rng = np.random.default_rng(7)
        early = np.column_stack([
            rng.uniform(0, 22, 25), rng.uniform(0, 20, 25), rng.uniform(0, 10, 25)
        ])
        late = np.column_stack([
            rng.uniform(0, 22, 25), rng.uniform(0, 20, 25), rng.uniform(10, 25, 25)
        ])
        new = np.column_stack([
            rng.uniform(0, 22, 20), rng.uniform(0, 20, 20), rng.uniform(25, 29, 20)
        ])
        inc = IncrementalSTKDE(grid)
        inc.add(early)
        inc.add(late)
        retired = inc.slide_window(new, t_horizon=10.0)
        assert retired == 25
        expect = pb_sym(PointSet(np.vstack([late, new])), grid)
        np.testing.assert_allclose(inc.volume().data, expect.data,
                                   rtol=1e-10, atol=1e-15)

    def test_repeated_slides_stay_consistent(self, grid):
        rng = np.random.default_rng(8)
        inc = IncrementalSTKDE(grid)
        window: list = []
        for day in range(5):
            batch = np.column_stack([
                rng.uniform(0, 22, 12), rng.uniform(0, 20, 12),
                rng.uniform(day * 5, day * 5 + 5, 12),
            ])
            horizon = max(0.0, (day - 1) * 5.0)
            inc.slide_window(batch, t_horizon=horizon)
            window = [b[b[:, 2] >= horizon] for b in window]
            window.append(batch)
        live = np.vstack([b for b in window if len(b)])
        expect = pb_sym(PointSet(live), grid)
        np.testing.assert_allclose(inc.volume().data, expect.data,
                                   rtol=1e-9, atol=1e-14)
        assert inc.n == len(live)


class TestVolumeSemantics:
    def test_empty_estimator_zero_volume(self, grid):
        inc = IncrementalSTKDE(grid)
        v = inc.volume()
        assert not v.data.any()

    def test_volume_is_a_copy(self, grid):
        pts = make_points(grid, 10, seed=9)
        inc = IncrementalSTKDE(grid)
        inc.add(pts)
        v1 = inc.volume()
        v1.data[:] = 99.0
        np.testing.assert_allclose(
            inc.volume().data.max(), pb_sym(pts, grid).data.max(), rtol=1e-12
        )

    def test_normalisation_tracks_n(self, grid):
        """Adding a far-away batch rescales earlier contributions by n."""
        a = PointSet(np.array([[5.0, 5.0, 5.0]]))
        b = PointSet(np.array([[18.0, 16.0, 25.0]]))
        inc = IncrementalSTKDE(grid)
        inc.add(a)
        peak1 = inc.volume().data.max()
        inc.add(b)
        peak2 = inc.volume().data[5, 5, 5]
        assert peak2 == pytest.approx(peak1 / 2, rel=1e-6)
