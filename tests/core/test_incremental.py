"""Tests for the incremental / sliding-window estimator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import pb_sym
from repro.core import DomainSpec, GridSpec, PointSet
from repro.core.incremental import IncrementalSTKDE

from tests.helpers import make_points


@pytest.fixture
def grid():
    return GridSpec(DomainSpec.from_voxels(22, 20, 30), hs=2.6, ht=2.2)


class TestAddOnly:
    def test_single_batch_matches_batch_estimate(self, grid):
        pts = make_points(grid, 60, seed=1)
        inc = IncrementalSTKDE(grid)
        inc.add(pts)
        batch = pb_sym(pts, grid)
        np.testing.assert_allclose(inc.volume().data, batch.data,
                                   rtol=1e-12, atol=1e-18)

    def test_split_batches_match(self, grid):
        pts = make_points(grid, 80, seed=2)
        inc = IncrementalSTKDE(grid)
        inc.add(pts.subset(np.arange(30)))
        inc.add(pts.subset(np.arange(30, 80)))
        batch = pb_sym(pts, grid)
        np.testing.assert_allclose(inc.volume().data, batch.data,
                                   rtol=1e-12, atol=1e-18)
        assert inc.n == 80

    def test_accepts_raw_arrays(self, grid, rng):
        inc = IncrementalSTKDE(grid)
        inc.add(rng.uniform(0, 18, size=(10, 3)))
        assert inc.n == 10

    def test_empty_add_is_noop(self, grid):
        inc = IncrementalSTKDE(grid)
        inc.add(np.empty((0, 3)))
        assert inc.n == 0


class TestRemove:
    def test_add_then_remove_restores_empty(self, grid):
        pts = make_points(grid, 40, seed=3)
        inc = IncrementalSTKDE(grid)
        inc.add(pts)
        inc.remove(pts)
        assert inc.n == 0
        assert not inc.volume().data.any()

    def test_partial_remove_matches_remaining_batch(self, grid):
        pts = make_points(grid, 50, seed=4)
        inc = IncrementalSTKDE(grid)
        inc.add(pts)
        inc.remove(pts.subset(np.arange(20)))
        rest = pts.subset(np.arange(20, 50))
        batch = pb_sym(rest, grid)
        np.testing.assert_allclose(inc.volume().data, batch.data,
                                   rtol=1e-10, atol=1e-15)

    def test_remove_more_than_present_rejected(self, grid):
        pts = make_points(grid, 5, seed=5)
        inc = IncrementalSTKDE(grid)
        inc.add(pts.subset(np.arange(2)))
        with pytest.raises(ValueError, match="only 2 present"):
            inc.remove(pts)

    def test_no_negative_density_after_removal(self, grid):
        pts = make_points(grid, 30, seed=6)
        inc = IncrementalSTKDE(grid)
        inc.add(pts)
        inc.remove(pts.subset(np.arange(15)))
        assert (inc.volume().data >= 0).all()


class TestSlideWindow:
    def test_slide_equals_batch_on_window(self, grid):
        rng = np.random.default_rng(7)
        early = np.column_stack([
            rng.uniform(0, 22, 25), rng.uniform(0, 20, 25), rng.uniform(0, 10, 25)
        ])
        late = np.column_stack([
            rng.uniform(0, 22, 25), rng.uniform(0, 20, 25), rng.uniform(10, 25, 25)
        ])
        new = np.column_stack([
            rng.uniform(0, 22, 20), rng.uniform(0, 20, 20), rng.uniform(25, 29, 20)
        ])
        inc = IncrementalSTKDE(grid)
        inc.add(early)
        inc.add(late)
        retired = inc.slide_window(new, t_horizon=10.0)
        assert retired == 25
        expect = pb_sym(PointSet(np.vstack([late, new])), grid)
        np.testing.assert_allclose(inc.volume().data, expect.data,
                                   rtol=1e-10, atol=1e-15)

    def test_repeated_slides_stay_consistent(self, grid):
        rng = np.random.default_rng(8)
        inc = IncrementalSTKDE(grid)
        window: list = []
        for day in range(5):
            batch = np.column_stack([
                rng.uniform(0, 22, 12), rng.uniform(0, 20, 12),
                rng.uniform(day * 5, day * 5 + 5, 12),
            ])
            horizon = max(0.0, (day - 1) * 5.0)
            inc.slide_window(batch, t_horizon=horizon)
            window = [b[b[:, 2] >= horizon] for b in window]
            window.append(batch)
        live = np.vstack([b for b in window if len(b)])
        expect = pb_sym(PointSet(live), grid)
        np.testing.assert_allclose(inc.volume().data, expect.data,
                                   rtol=1e-9, atol=1e-14)
        assert inc.n == len(live)


class TestRegionCacheReuse:
    """The region-engine rebuild: cached bbox buffers across slides."""

    def _time_slab(self, grid, rng, t_lo, t_hi, n=20):
        return np.column_stack([
            rng.uniform(0, grid.domain.gx, n),
            rng.uniform(0, grid.domain.gy, n),
            rng.uniform(t_lo, t_hi, n),
        ])

    def test_time_slab_batches_are_cached(self, grid):
        rng = np.random.default_rng(20)
        inc = IncrementalSTKDE(grid)
        inc.add(self._time_slab(grid, rng, 0.0, 5.0))
        assert inc.cached_buffer_cells > 0
        assert inc.cached_buffer_cells < grid.n_voxels
        assert inc.counter.shard_bbox_cells == inc.cached_buffer_cells

    def test_domain_wide_batch_not_cached(self, grid):
        inc = IncrementalSTKDE(grid)
        inc.add(make_points(grid, 50, seed=21))
        assert inc.cached_buffer_cells == 0  # bbox ~ whole grid: skip cache
        batch = pb_sym(make_points(grid, 50, seed=21), grid)
        np.testing.assert_allclose(inc.volume().data, batch.data,
                                   rtol=1e-12, atol=1e-18)

    def test_cache_disabled_still_exact(self, grid):
        rng = np.random.default_rng(22)
        a = IncrementalSTKDE(grid, cache_fraction=0.0)
        b = IncrementalSTKDE(grid)
        for lo, hi in ((0.0, 5.0), (5.0, 10.0)):
            batch = self._time_slab(grid, rng, lo, hi)
            a.add(batch)
            b.add(batch)
        assert a.cached_buffer_cells == 0
        np.testing.assert_allclose(a.volume().data, b.volume().data,
                                   rtol=1e-12, atol=1e-16)

    def test_full_retirement_reuses_cache(self, grid):
        """Sliding past a cached batch subtracts its box; density matches
        a batch recompute over the survivors."""
        rng = np.random.default_rng(23)
        early = self._time_slab(grid, rng, 0.0, 6.0)
        late = self._time_slab(grid, rng, 12.0, 18.0)
        fresh = self._time_slab(grid, rng, 24.0, 29.0)
        inc = IncrementalSTKDE(grid)
        inc.add(early)
        inc.add(late)
        assert inc.cached_buffer_cells > 0
        retired = inc.slide_window(fresh, t_horizon=12.0)
        assert retired == len(early)
        expect = pb_sym(PointSet(np.vstack([late, fresh])), grid)
        np.testing.assert_allclose(inc.volume().data, expect.data,
                                   rtol=1e-10, atol=1e-15)

    def test_partial_retirement_restamps_survivors(self, grid):
        """A horizon cutting through a cached batch: the cache is dropped
        and the kept points restamped into a fresh cache."""
        rng = np.random.default_rng(24)
        straddling = self._time_slab(grid, rng, 4.0, 14.0, n=30)
        fresh = self._time_slab(grid, rng, 20.0, 28.0, n=15)
        inc = IncrementalSTKDE(grid)
        inc.add(straddling)
        retired = inc.slide_window(fresh, t_horizon=9.0)
        kept = straddling[straddling[:, 2] >= 9.0]
        assert retired == len(straddling) - len(kept)
        assert inc.n == len(kept) + len(fresh)
        assert inc.cached_buffer_cells > 0  # survivors re-cached
        expect = pb_sym(PointSet(np.vstack([kept, fresh])), grid)
        np.testing.assert_allclose(inc.volume().data, expect.data,
                                   rtol=1e-10, atol=1e-15)

    def test_many_slides_cached_vs_uncached_agree(self, grid):
        rng = np.random.default_rng(25)
        cached = IncrementalSTKDE(grid)
        plain = IncrementalSTKDE(grid, cache_fraction=0.0)
        live: list = []
        for day in range(6):
            batch = self._time_slab(grid, rng, day * 4.0, day * 4.0 + 4.0, n=12)
            horizon = max(0.0, (day - 2) * 4.0)
            cached.slide_window(batch, t_horizon=horizon)
            plain.slide_window(batch.copy(), t_horizon=horizon)
            live = [b[b[:, 2] >= horizon] for b in live]
            live.append(batch)
        assert cached.n == plain.n
        np.testing.assert_allclose(cached.volume().data, plain.volume().data,
                                   rtol=1e-9, atol=1e-14)
        expect = pb_sym(PointSet(np.vstack([b for b in live if len(b)])), grid)
        np.testing.assert_allclose(cached.volume().data, expect.data,
                                   rtol=1e-9, atol=1e-14)

    def test_rejects_negative_cache_fraction(self, grid):
        with pytest.raises(ValueError, match="cache_fraction"):
            IncrementalSTKDE(grid, cache_fraction=-0.1)

    def test_remove_untracks_so_slide_cannot_double_retire(self, grid):
        """remove() of previously-added events drops them from tracking:
        a later slide past the same span retires nothing (no double
        subtraction) and the estimator is exactly empty."""
        rng = np.random.default_rng(26)
        slab = self._time_slab(grid, rng, 0.0, 5.0)
        inc = IncrementalSTKDE(grid)
        inc.add(slab)
        assert inc.cached_buffer_cells > 0
        inc.remove(slab)  # n drops to 0 and the batch is untracked
        assert inc.live_coords.shape == (0, 3)
        assert inc.slide_window(np.empty((0, 3)), t_horizon=10.0) == 0
        assert np.allclose(inc.volume().data, 0.0, atol=1e-12)

    def test_cached_retirement_guards_against_unknown_removals(self, grid):
        """Removing events that were never added leaves the tracking
        intact, so sliding past a tracked batch the count can no longer
        cover must fail loudly, not drive the event count negative."""
        rng = np.random.default_rng(26)
        slab = self._time_slab(grid, rng, 0.0, 5.0)
        inc = IncrementalSTKDE(grid)
        inc.add(slab)
        assert inc.cached_buffer_cells > 0
        unknown = self._time_slab(grid, rng, 0.0, 5.0)
        inc.remove(unknown)  # legal on its own: n drops to 0
        with pytest.raises(ValueError, match="only 0 present"):
            inc.slide_window(np.empty((0, 3)), t_horizon=10.0)

    def test_remove_duplicated_rows_drops_one_instance_each(self, grid):
        """Multiset semantics: removing one copy of a duplicated event
        leaves the other tracked (and the density exact)."""
        row = np.array([[3.3, 4.4, 5.5]])
        inc = IncrementalSTKDE(grid)
        inc.add(np.vstack([row, row, row]))
        inc.remove(row)
        assert inc.n == 2
        assert inc.live_coords.shape == (2, 3)
        ref = pb_sym(PointSet(np.vstack([row, row])), grid)
        np.testing.assert_allclose(
            inc.volume().data, ref.data, rtol=1e-9, atol=1e-15
        )

    def test_partial_remove_untracks_and_stays_exact(self, grid):
        """A batch that loses members via remove() forfeits its cache but
        keeps serving exact densities, including through a later slide."""
        rng = np.random.default_rng(27)
        slab = self._time_slab(grid, rng, 0.0, 5.0)
        inc = IncrementalSTKDE(grid)
        inc.add(slab)
        inc.remove(slab[:10])
        np.testing.assert_array_equal(inc.live_coords, slab[10:])
        assert inc.cached_buffer_cells == 0  # stale cache retired
        ref = pb_sym(PointSet(slab[10:]), grid)
        np.testing.assert_allclose(
            inc.volume().data, ref.data, rtol=1e-9, atol=1e-15
        )
        inc.slide_window(np.empty((0, 3)), t_horizon=10.0)
        assert inc.n == 0
        assert np.allclose(inc.volume().data, 0.0, atol=1e-12)

    def test_memory_budget_caps_aggregate_cache(self, grid):
        rng = np.random.default_rng(27)
        slab_a = self._time_slab(grid, rng, 0.0, 4.0)
        slab_b = self._time_slab(grid, rng, 8.0, 12.0)
        probe = IncrementalSTKDE(grid)
        probe.add(slab_a)
        one_cache = probe.cached_buffer_cells
        assert one_cache > 0
        # Budget admits the accumulator plus roughly one slab cache.
        budget = grid.grid_bytes + one_cache * 8 + 64
        inc = IncrementalSTKDE(grid, memory_budget_bytes=budget)
        inc.add(slab_a)
        inc.add(slab_b)  # would exceed the budget: stamped uncached
        assert 0 < inc.cached_buffer_cells * 8 + grid.grid_bytes <= budget
        expect = pb_sym(PointSet(np.vstack([slab_a, slab_b])), grid)
        np.testing.assert_allclose(inc.volume().data, expect.data,
                                   rtol=1e-10, atol=1e-15)


class TestVolumeSemantics:
    def test_empty_estimator_zero_volume(self, grid):
        inc = IncrementalSTKDE(grid)
        v = inc.volume()
        assert not v.data.any()

    def test_volume_is_a_copy(self, grid):
        pts = make_points(grid, 10, seed=9)
        inc = IncrementalSTKDE(grid)
        inc.add(pts)
        v1 = inc.volume()
        v1.data[:] = 99.0
        np.testing.assert_allclose(
            inc.volume().data.max(), pb_sym(pts, grid).data.max(), rtol=1e-12
        )

    def test_normalisation_tracks_n(self, grid):
        """Adding a far-away batch rescales earlier contributions by n."""
        a = PointSet(np.array([[5.0, 5.0, 5.0]]))
        b = PointSet(np.array([[18.0, 16.0, 25.0]]))
        inc = IncrementalSTKDE(grid)
        inc.add(a)
        peak1 = inc.volume().data.max()
        inc.add(b)
        peak2 = inc.volume().data[5, 5, 5]
        assert peak2 == pytest.approx(peak1 / 2, rel=1e-6)
