"""Tests for the incremental / sliding-window estimator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import pb_sym
from repro.core import DomainSpec, GridSpec, PointSet
from repro.core.incremental import IncrementalSTKDE

from tests.helpers import make_points


@pytest.fixture
def grid():
    return GridSpec(DomainSpec.from_voxels(22, 20, 30), hs=2.6, ht=2.2)


class TestAddOnly:
    def test_single_batch_matches_batch_estimate(self, grid):
        pts = make_points(grid, 60, seed=1)
        inc = IncrementalSTKDE(grid)
        inc.add(pts)
        batch = pb_sym(pts, grid)
        np.testing.assert_allclose(inc.volume().data, batch.data,
                                   rtol=1e-12, atol=1e-18)

    def test_split_batches_match(self, grid):
        pts = make_points(grid, 80, seed=2)
        inc = IncrementalSTKDE(grid)
        inc.add(pts.subset(np.arange(30)))
        inc.add(pts.subset(np.arange(30, 80)))
        batch = pb_sym(pts, grid)
        np.testing.assert_allclose(inc.volume().data, batch.data,
                                   rtol=1e-12, atol=1e-18)
        assert inc.n == 80

    def test_accepts_raw_arrays(self, grid, rng):
        inc = IncrementalSTKDE(grid)
        inc.add(rng.uniform(0, 18, size=(10, 3)))
        assert inc.n == 10

    def test_empty_add_is_noop(self, grid):
        inc = IncrementalSTKDE(grid)
        inc.add(np.empty((0, 3)))
        assert inc.n == 0


class TestRemove:
    def test_add_then_remove_restores_empty(self, grid):
        pts = make_points(grid, 40, seed=3)
        inc = IncrementalSTKDE(grid)
        inc.add(pts)
        inc.remove(pts)
        assert inc.n == 0
        assert not inc.volume().data.any()

    def test_partial_remove_matches_remaining_batch(self, grid):
        pts = make_points(grid, 50, seed=4)
        inc = IncrementalSTKDE(grid)
        inc.add(pts)
        inc.remove(pts.subset(np.arange(20)))
        rest = pts.subset(np.arange(20, 50))
        batch = pb_sym(rest, grid)
        np.testing.assert_allclose(inc.volume().data, batch.data,
                                   rtol=1e-10, atol=1e-15)

    def test_remove_more_than_present_rejected(self, grid):
        pts = make_points(grid, 5, seed=5)
        inc = IncrementalSTKDE(grid)
        inc.add(pts.subset(np.arange(2)))
        with pytest.raises(ValueError, match="only 2 present"):
            inc.remove(pts)

    def test_no_negative_density_after_removal(self, grid):
        pts = make_points(grid, 30, seed=6)
        inc = IncrementalSTKDE(grid)
        inc.add(pts)
        inc.remove(pts.subset(np.arange(15)))
        assert (inc.volume().data >= 0).all()


class TestSlideWindow:
    def test_slide_equals_batch_on_window(self, grid):
        rng = np.random.default_rng(7)
        early = np.column_stack([
            rng.uniform(0, 22, 25), rng.uniform(0, 20, 25), rng.uniform(0, 10, 25)
        ])
        late = np.column_stack([
            rng.uniform(0, 22, 25), rng.uniform(0, 20, 25), rng.uniform(10, 25, 25)
        ])
        new = np.column_stack([
            rng.uniform(0, 22, 20), rng.uniform(0, 20, 20), rng.uniform(25, 29, 20)
        ])
        inc = IncrementalSTKDE(grid)
        inc.add(early)
        inc.add(late)
        retired = inc.slide_window(new, t_horizon=10.0)
        assert retired == 25
        expect = pb_sym(PointSet(np.vstack([late, new])), grid)
        np.testing.assert_allclose(inc.volume().data, expect.data,
                                   rtol=1e-10, atol=1e-15)

    def test_repeated_slides_stay_consistent(self, grid):
        rng = np.random.default_rng(8)
        inc = IncrementalSTKDE(grid)
        window: list = []
        for day in range(5):
            batch = np.column_stack([
                rng.uniform(0, 22, 12), rng.uniform(0, 20, 12),
                rng.uniform(day * 5, day * 5 + 5, 12),
            ])
            horizon = max(0.0, (day - 1) * 5.0)
            inc.slide_window(batch, t_horizon=horizon)
            window = [b[b[:, 2] >= horizon] for b in window]
            window.append(batch)
        live = np.vstack([b for b in window if len(b)])
        expect = pb_sym(PointSet(live), grid)
        np.testing.assert_allclose(inc.volume().data, expect.data,
                                   rtol=1e-9, atol=1e-14)
        assert inc.n == len(live)


class TestRegionCacheReuse:
    """The region-engine rebuild: cached bbox buffers across slides."""

    def _time_slab(self, grid, rng, t_lo, t_hi, n=20):
        return np.column_stack([
            rng.uniform(0, grid.domain.gx, n),
            rng.uniform(0, grid.domain.gy, n),
            rng.uniform(t_lo, t_hi, n),
        ])

    def test_time_slab_batches_are_cached(self, grid):
        rng = np.random.default_rng(20)
        inc = IncrementalSTKDE(grid)
        inc.add(self._time_slab(grid, rng, 0.0, 5.0))
        assert inc.cached_buffer_cells > 0
        assert inc.cached_buffer_cells < grid.n_voxels
        assert inc.counter.shard_bbox_cells == inc.cached_buffer_cells

    def test_domain_wide_batch_not_cached(self, grid):
        inc = IncrementalSTKDE(grid)
        inc.add(make_points(grid, 50, seed=21))
        assert inc.cached_buffer_cells == 0  # bbox ~ whole grid: skip cache
        batch = pb_sym(make_points(grid, 50, seed=21), grid)
        np.testing.assert_allclose(inc.volume().data, batch.data,
                                   rtol=1e-12, atol=1e-18)

    def test_cache_disabled_still_exact(self, grid):
        rng = np.random.default_rng(22)
        a = IncrementalSTKDE(grid, cache_fraction=0.0)
        b = IncrementalSTKDE(grid)
        for lo, hi in ((0.0, 5.0), (5.0, 10.0)):
            batch = self._time_slab(grid, rng, lo, hi)
            a.add(batch)
            b.add(batch)
        assert a.cached_buffer_cells == 0
        np.testing.assert_allclose(a.volume().data, b.volume().data,
                                   rtol=1e-12, atol=1e-16)

    def test_full_retirement_reuses_cache(self, grid):
        """Sliding past a cached batch subtracts its box; density matches
        a batch recompute over the survivors."""
        rng = np.random.default_rng(23)
        early = self._time_slab(grid, rng, 0.0, 6.0)
        late = self._time_slab(grid, rng, 12.0, 18.0)
        fresh = self._time_slab(grid, rng, 24.0, 29.0)
        inc = IncrementalSTKDE(grid)
        inc.add(early)
        inc.add(late)
        assert inc.cached_buffer_cells > 0
        retired = inc.slide_window(fresh, t_horizon=12.0)
        assert retired == len(early)
        expect = pb_sym(PointSet(np.vstack([late, fresh])), grid)
        np.testing.assert_allclose(inc.volume().data, expect.data,
                                   rtol=1e-10, atol=1e-15)

    def test_partial_retirement_restamps_survivors(self, grid):
        """A horizon cutting through a cached batch: the cache is dropped
        and the kept points restamped into a fresh cache."""
        rng = np.random.default_rng(24)
        straddling = self._time_slab(grid, rng, 4.0, 14.0, n=30)
        fresh = self._time_slab(grid, rng, 20.0, 28.0, n=15)
        inc = IncrementalSTKDE(grid)
        inc.add(straddling)
        retired = inc.slide_window(fresh, t_horizon=9.0)
        kept = straddling[straddling[:, 2] >= 9.0]
        assert retired == len(straddling) - len(kept)
        assert inc.n == len(kept) + len(fresh)
        assert inc.cached_buffer_cells > 0  # survivors re-cached
        expect = pb_sym(PointSet(np.vstack([kept, fresh])), grid)
        np.testing.assert_allclose(inc.volume().data, expect.data,
                                   rtol=1e-10, atol=1e-15)

    def test_many_slides_cached_vs_uncached_agree(self, grid):
        rng = np.random.default_rng(25)
        cached = IncrementalSTKDE(grid)
        plain = IncrementalSTKDE(grid, cache_fraction=0.0)
        live: list = []
        for day in range(6):
            batch = self._time_slab(grid, rng, day * 4.0, day * 4.0 + 4.0, n=12)
            horizon = max(0.0, (day - 2) * 4.0)
            cached.slide_window(batch, t_horizon=horizon)
            plain.slide_window(batch.copy(), t_horizon=horizon)
            live = [b[b[:, 2] >= horizon] for b in live]
            live.append(batch)
        assert cached.n == plain.n
        np.testing.assert_allclose(cached.volume().data, plain.volume().data,
                                   rtol=1e-9, atol=1e-14)
        expect = pb_sym(PointSet(np.vstack([b for b in live if len(b)])), grid)
        np.testing.assert_allclose(cached.volume().data, expect.data,
                                   rtol=1e-9, atol=1e-14)

    def test_rejects_negative_cache_fraction(self, grid):
        with pytest.raises(ValueError, match="cache_fraction"):
            IncrementalSTKDE(grid, cache_fraction=-0.1)

    def test_remove_untracks_so_slide_cannot_double_retire(self, grid):
        """remove() of previously-added events drops them from tracking:
        a later slide past the same span retires nothing (no double
        subtraction) and the estimator is exactly empty."""
        rng = np.random.default_rng(26)
        slab = self._time_slab(grid, rng, 0.0, 5.0)
        inc = IncrementalSTKDE(grid)
        inc.add(slab)
        assert inc.cached_buffer_cells > 0
        inc.remove(slab)  # n drops to 0 and the batch is untracked
        assert inc.live_coords.shape == (0, 3)
        assert inc.slide_window(np.empty((0, 3)), t_horizon=10.0) == 0
        assert np.allclose(inc.volume().data, 0.0, atol=1e-12)

    def test_cached_retirement_guards_against_unknown_removals(self, grid):
        """Removing events that were never added leaves the tracking
        intact, so sliding past a tracked batch the count can no longer
        cover must fail loudly, not drive the event count negative."""
        rng = np.random.default_rng(26)
        slab = self._time_slab(grid, rng, 0.0, 5.0)
        inc = IncrementalSTKDE(grid)
        inc.add(slab)
        assert inc.cached_buffer_cells > 0
        unknown = self._time_slab(grid, rng, 0.0, 5.0)
        inc.remove(unknown)  # legal on its own: n drops to 0
        with pytest.raises(ValueError, match="only 0 present"):
            inc.slide_window(np.empty((0, 3)), t_horizon=10.0)

    def test_remove_duplicated_rows_drops_one_instance_each(self, grid):
        """Multiset semantics: removing one copy of a duplicated event
        leaves the other tracked (and the density exact)."""
        row = np.array([[3.3, 4.4, 5.5]])
        inc = IncrementalSTKDE(grid)
        inc.add(np.vstack([row, row, row]))
        inc.remove(row)
        assert inc.n == 2
        assert inc.live_coords.shape == (2, 3)
        ref = pb_sym(PointSet(np.vstack([row, row])), grid)
        np.testing.assert_allclose(
            inc.volume().data, ref.data, rtol=1e-9, atol=1e-15
        )

    def test_partial_remove_untracks_and_stays_exact(self, grid):
        """A batch that loses members via remove() forfeits its cache but
        keeps serving exact densities, including through a later slide."""
        rng = np.random.default_rng(27)
        slab = self._time_slab(grid, rng, 0.0, 5.0)
        inc = IncrementalSTKDE(grid)
        inc.add(slab)
        inc.remove(slab[:10])
        np.testing.assert_array_equal(inc.live_coords, slab[10:])
        assert inc.cached_buffer_cells == 0  # stale cache retired
        ref = pb_sym(PointSet(slab[10:]), grid)
        np.testing.assert_allclose(
            inc.volume().data, ref.data, rtol=1e-9, atol=1e-15
        )
        inc.slide_window(np.empty((0, 3)), t_horizon=10.0)
        assert inc.n == 0
        assert np.allclose(inc.volume().data, 0.0, atol=1e-12)

    def test_memory_budget_caps_aggregate_cache(self, grid):
        rng = np.random.default_rng(27)
        slab_a = self._time_slab(grid, rng, 0.0, 4.0)
        slab_b = self._time_slab(grid, rng, 8.0, 12.0)
        probe = IncrementalSTKDE(grid)
        probe.add(slab_a)
        one_cache = probe.cached_buffer_cells
        assert one_cache > 0
        # Budget admits the accumulator plus roughly one slab cache.
        budget = grid.grid_bytes + one_cache * 8 + 64
        inc = IncrementalSTKDE(grid, memory_budget_bytes=budget)
        inc.add(slab_a)
        inc.add(slab_b)  # would exceed the budget: stamped uncached
        assert 0 < inc.cached_buffer_cells * 8 + grid.grid_bytes <= budget
        expect = pb_sym(PointSet(np.vstack([slab_a, slab_b])), grid)
        np.testing.assert_allclose(inc.volume().data, expect.data,
                                   rtol=1e-10, atol=1e-15)


class TestTimeSlabbedCaches:
    """The t-slabbed retirement caches: a slide subtracts expired slabs
    and restamps only the straddle slab, pinned equivalent to the
    monolithic cache at rtol=1e-12."""

    def _spanning_batch(self, grid, rng, n=400):
        return np.column_stack([
            rng.uniform(0, grid.domain.gx, n),
            rng.uniform(0, grid.domain.gy, n),
            rng.uniform(0, 0.9 * grid.domain.gt, n),
        ])

    def _pair(self, grid, rng, **kw):
        # Slab boxes overlap by one stamp extent along t, so a batch
        # spanning this small grid needs headroom over the monolithic box.
        slabbed = IncrementalSTKDE(grid, cache_fraction=3.0, **kw)
        mono = IncrementalSTKDE(grid, cache_fraction=3.0, t_slab_voxels=None)
        batch = self._spanning_batch(grid, rng)
        slabbed.add(batch)
        mono.add(batch.copy())
        return slabbed, mono, batch

    def test_spanning_batch_splits_into_slabs(self, grid):
        rng = np.random.default_rng(40)
        slabbed, mono, _ = self._pair(grid, rng, t_slab_voxels=8)
        assert len(slabbed.live_batches) > 1
        assert len(mono.live_batches) == 1
        np.testing.assert_allclose(slabbed.volume().data, mono.volume().data,
                                   rtol=1e-12, atol=1e-16)

    def test_slide_subtracts_slabs_and_restamps_only_straddle(self, grid):
        rng = np.random.default_rng(41)
        slabbed, mono, batch = self._pair(grid, rng, t_slab_voxels=8)
        fresh = np.column_stack([
            rng.uniform(0, grid.domain.gx, 50),
            rng.uniform(0, grid.domain.gy, 50),
            rng.uniform(0.9 * grid.domain.gt, grid.domain.gt, 50),
        ])
        horizon = 0.45 * grid.domain.gt
        r1 = slabbed.slide_window(fresh, t_horizon=horizon)
        r2 = mono.slide_window(fresh.copy(), t_horizon=horizon)
        assert r1 == r2 > 0
        survivors = int((batch[:, 2] >= horizon).sum())
        # Monolithic restamps every survivor; slabs restamp only the
        # straddle slab's share of them.
        assert mono.counter.slab_restamp_points == survivors
        assert 0 < slabbed.counter.slab_restamp_points < survivors / 2
        assert (
            slabbed.counter.slab_buffers_retired
            > mono.counter.slab_buffers_retired
        )
        np.testing.assert_allclose(slabbed.volume().data, mono.volume().data,
                                   rtol=1e-12, atol=1e-15)
        live = np.vstack([batch[batch[:, 2] >= horizon], fresh])
        expect = pb_sym(PointSet(live), grid)
        np.testing.assert_allclose(slabbed.volume().data, expect.data,
                                   rtol=1e-12, atol=1e-15)

    def test_full_slab_expiry_needs_no_kernel_work(self, grid):
        """A horizon aligned past whole slabs retires by subtraction
        only: zero restamp points."""
        rng = np.random.default_rng(42)
        inc = IncrementalSTKDE(grid, cache_fraction=3.0, t_slab_voxels=8)
        early = np.column_stack([
            rng.uniform(0, grid.domain.gx, 100),
            rng.uniform(0, grid.domain.gy, 100),
            rng.uniform(0, 8.0, 100),
        ])
        late = np.column_stack([
            rng.uniform(0, grid.domain.gx, 100),
            rng.uniform(0, grid.domain.gy, 100),
            rng.uniform(16.0, 26.0, 100),
        ])
        inc.add(early)
        inc.add(late)
        evals_before = inc.counter.spatial_evals
        retired = inc.slide_window(np.empty((0, 3)), t_horizon=12.0)
        assert retired == 100
        assert inc.counter.slab_restamp_points == 0
        assert inc.counter.spatial_evals == evals_before  # pure subtraction
        assert inc.counter.slab_buffers_retired > 0

    def test_fixed_thickness_and_max_slabs_validated(self, grid):
        with pytest.raises(ValueError, match="t_slab_voxels"):
            IncrementalSTKDE(grid, t_slab_voxels=0)
        with pytest.raises(ValueError, match="max_slabs"):
            IncrementalSTKDE(grid, max_slabs=0)

    def test_max_slabs_caps_tracked_units(self, grid):
        rng = np.random.default_rng(43)
        inc = IncrementalSTKDE(
            grid, cache_fraction=3.0, t_slab_voxels=2, max_slabs=3
        )
        inc.add(self._spanning_batch(grid, rng))
        assert 1 < len(inc.live_batches) <= 3


class TestBitExactWarmCold:
    """Carried satellite (PR 2): warm-vs-cold volume equivalence is now
    *bit-exact*, not fp-level.  Every cached unit is a pure function of
    its rows, and :meth:`IncrementalSTKDE.volume` composes the live
    caches in a canonical content-derived order — so a long-slid warm
    window and a cold estimator re-fed the same live membership produce
    ``assert_array_equal`` volumes."""

    def _feed(self, grid, rng, step, total_steps, win, n=18):
        t_lo = step * grid.domain.gt / (total_steps + win)
        t_hi = (step + 1) * grid.domain.gt / (total_steps + win)
        return np.column_stack([
            rng.uniform(0, grid.domain.gx, n),
            rng.uniform(0, grid.domain.gy, n),
            rng.uniform(t_lo, t_hi, n),
        ])

    def _slide_many(self, grid, rng, steps=20, win=6):
        inc = IncrementalSTKDE(grid)
        for step in range(steps):
            batch = self._feed(grid, rng, step, steps, win)
            horizon = max(0.0, (step - win) * grid.domain.gt / (steps + win))
            inc.slide_window(batch, t_horizon=horizon)
        return inc

    @staticmethod
    def _cold_replay(grid, warm):
        """A fresh estimator fed the warm window's live units, one add per
        unit with slabbing disabled so each re-stamps whole."""
        cold = IncrementalSTKDE(grid, t_slab_voxels=None)
        for _, coords in warm.live_batches:
            cold.add(coords)
        return cold

    def test_warm_equals_cold_replay_bitwise(self, grid):
        rng = np.random.default_rng(60)
        warm = self._slide_many(grid, rng)
        assert all(tb.buffer is not None for tb in warm._live)
        cold = self._cold_replay(grid, warm)
        np.testing.assert_array_equal(warm.volume().data, cold.volume().data)

    def test_volume_is_pure_function_of_live_membership(self, grid):
        """Two different mutation histories arriving at the same live
        window serve bit-identical volumes: history cannot leak through
        accumulation order."""
        rng = np.random.default_rng(61)
        warm = self._slide_many(grid, rng, steps=16, win=5)
        # Second history: same final units, but added in reverse order
        # after a churn of unrelated batches that were fully retired.
        other = IncrementalSTKDE(grid)
        churn = self._feed(grid, np.random.default_rng(99), 0, 16, 5)
        other.add(churn)
        other.slide_window(np.empty((0, 3)), t_horizon=grid.domain.gt)
        assert other.n == 0
        for _, coords in reversed(warm.live_batches):
            other.add(coords)
        np.testing.assert_array_equal(
            warm.volume().data, other.volume().data
        )

    def test_composition_matches_accumulator_at_fp_level(self, grid):
        """The canonical composition and the running accumulator read the
        same density (fp-order differences only)."""
        rng = np.random.default_rng(62)
        warm = self._slide_many(grid, rng)
        composed = warm.volume().data
        acc = warm._acc * grid.normalization(warm.n)
        np.maximum(acc, 0.0, out=acc)
        np.testing.assert_allclose(composed, acc, rtol=1e-9, atol=1e-16)

    def test_uncached_units_fall_back_to_accumulator(self, grid):
        """A live unit without a cache (domain-wide batch) disables the
        canonical composition; the accumulator read stays exact."""
        rng = np.random.default_rng(63)
        inc = IncrementalSTKDE(grid)
        inc.add(self._feed(grid, rng, 0, 10, 4))
        wide = make_points(grid, 40, seed=63)
        inc.add(wide)
        assert any(tb.buffer is None for tb in inc._live)
        assert inc._canonical_composition() is None
        live = PointSet(inc.live_coords)
        np.testing.assert_allclose(
            inc.volume().data, pb_sym(live, grid).data,
            rtol=1e-12, atol=1e-16,
        )

    def test_out_of_band_unknown_removal_disables_composition(self, grid):
        """Negative stamps only the accumulator knows about (remove() of
        never-added rows) must not be dropped by the cache composition."""
        rng = np.random.default_rng(64)
        inc = IncrementalSTKDE(grid)
        inc.add(self._feed(grid, rng, 0, 10, 4))
        inc.add(self._feed(grid, rng, 1, 10, 4))
        unknown = self._feed(grid, rng, 0, 10, 4, n=3)
        inc.remove(unknown)  # tracked rows no longer account for _n
        assert inc._canonical_composition() is None


class TestWeightedInputsRejected:
    """Satellite: weighted PointSets must not silently drop weights into
    the unnormalised accumulator."""

    def test_add_rejects_weighted_pointset(self, grid):
        pts = make_points(grid, 10, seed=50)
        weighted = PointSet(pts.coords, np.linspace(0.5, 2.0, 10))
        inc = IncrementalSTKDE(grid)
        with pytest.raises(ValueError, match="weights"):
            inc.add(weighted)
        assert inc.n == 0 and inc.version == 0  # nothing half-applied

    def test_remove_rejects_weighted_pointset(self, grid):
        pts = make_points(grid, 10, seed=51)
        inc = IncrementalSTKDE(grid)
        inc.add(pts)
        with pytest.raises(ValueError, match="weights"):
            inc.remove(PointSet(pts.coords, np.ones(10) * 2.0))
        assert inc.n == 10

    def test_unit_weight_pointset_still_rejected_loudly(self, grid):
        """Even all-ones weights are refused: the caller asked for a
        weighted estimator, silence would mask the contract."""
        pts = make_points(grid, 5, seed=52)
        inc = IncrementalSTKDE(grid)
        with pytest.raises(ValueError, match="weights"):
            inc.add(PointSet(pts.coords, np.ones(5)))

    def test_plain_arrays_and_unweighted_sets_unaffected(self, grid):
        pts = make_points(grid, 8, seed=53)
        inc = IncrementalSTKDE(grid)
        inc.add(pts)
        inc.add(pts.coords)
        assert inc.n == 16


class TestVolumeSemantics:
    def test_empty_estimator_zero_volume(self, grid):
        inc = IncrementalSTKDE(grid)
        v = inc.volume()
        assert not v.data.any()

    def test_volume_is_a_copy(self, grid):
        pts = make_points(grid, 10, seed=9)
        inc = IncrementalSTKDE(grid)
        inc.add(pts)
        v1 = inc.volume()
        v1.data[:] = 99.0
        np.testing.assert_allclose(
            inc.volume().data.max(), pb_sym(pts, grid).data.max(), rtol=1e-12
        )

    def test_normalisation_tracks_n(self, grid):
        """Adding a far-away batch rescales earlier contributions by n."""
        a = PointSet(np.array([[5.0, 5.0, 5.0]]))
        b = PointSet(np.array([[18.0, 16.0, 25.0]]))
        inc = IncrementalSTKDE(grid)
        inc.add(a)
        peak1 = inc.volume().data.max()
        inc.add(b)
        peak2 = inc.volume().data[5, 5, 5]
        assert peak2 == pytest.approx(peak1 / 2, rel=1e-6)
