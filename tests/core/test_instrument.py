"""Tests for work counters and phase timers."""

from __future__ import annotations

import time

import pytest

from repro.core.instrument import PhaseTimer, WorkCounter, null_counter


class TestWorkCounter:
    def test_starts_at_zero(self):
        c = WorkCounter()
        assert c.total_ops() == 0
        assert c.points_processed == 0

    def test_merge_accumulates(self):
        a = WorkCounter(spatial_evals=5, madds=2, points_processed=1)
        b = WorkCounter(spatial_evals=3, temporal_evals=7, init_writes=11)
        a.merge(b)
        assert a.spatial_evals == 8
        assert a.temporal_evals == 7
        assert a.madds == 2
        assert a.init_writes == 11
        assert a.points_processed == 1

    def test_merge_returns_self(self):
        a = WorkCounter()
        assert a.merge(WorkCounter()) is a

    def test_total_ops_excludes_points_processed(self):
        c = WorkCounter(points_processed=100, madds=3)
        assert c.total_ops() == 3

    def test_flop_estimate_weights(self):
        c = WorkCounter(spatial_evals=2, temporal_evals=3, madds=4)
        assert c.flop_estimate(spatial_flops=10, temporal_flops=1) == 20 + 3 + 8

    def test_as_dict_round_trip(self):
        c = WorkCounter(spatial_evals=1, reduce_adds=9)
        d = c.as_dict()
        c2 = WorkCounter(**d)
        assert c2.as_dict() == d

    def test_copy_is_independent(self):
        c = WorkCounter(madds=1)
        c2 = c.copy()
        c2.madds += 5
        assert c.madds == 1

    def test_region_counters_merge_and_stay_bookkeeping(self):
        a = WorkCounter(tile_batches=2, shard_bbox_cells=100)
        a.merge(WorkCounter(tile_batches=3, shard_bbox_cells=50, madds=7))
        assert a.tile_batches == 5
        assert a.shard_bbox_cells == 150
        # Bookkeeping counters stay out of the op/flop aggregates.
        assert a.total_ops() == 7
        assert a.flop_estimate() == 14
        d = a.as_dict()
        assert d["tile_batches"] == 5 and d["shard_bbox_cells"] == 150

    def test_null_counter_drops_region_counters(self):
        from repro.core.instrument import null_counter

        n = null_counter()
        n.tile_batches += 3
        n.shard_bbox_cells += 99
        assert n.tile_batches == 0
        assert n.shard_bbox_cells == 0


class TestNullCounter:
    def test_drops_all_writes(self):
        n = null_counter()
        n.spatial_evals += 100
        n.madds += 5
        assert n.spatial_evals == 0
        assert n.madds == 0
        assert n.total_ops() == 0

    def test_merge_is_noop(self):
        n = null_counter()
        n.merge(WorkCounter(madds=50))
        assert n.total_ops() == 0

    def test_shared_instance(self):
        assert null_counter() is null_counter()


class TestPhaseTimer:
    def test_records_elapsed(self):
        t = PhaseTimer()
        with t.phase("a"):
            time.sleep(0.01)
        assert t.seconds["a"] >= 0.009
        assert t.total == pytest.approx(t.seconds["a"])

    def test_phases_accumulate(self):
        t = PhaseTimer()
        for _ in range(3):
            with t.phase("x"):
                pass
        assert "x" in t.seconds
        assert t.seconds["x"] >= 0

    def test_multiple_phases(self):
        t = PhaseTimer()
        with t.phase("init"):
            pass
        with t.phase("compute"):
            pass
        assert set(t.seconds) == {"init", "compute"}

    def test_reentering_same_phase_rejected(self):
        t = PhaseTimer()
        with pytest.raises(RuntimeError, match="already open"):
            with t.phase("a"):
                with t.phase("a"):
                    pass

    def test_nested_distinct_phases_ok(self):
        t = PhaseTimer()
        with t.phase("outer"):
            with t.phase("inner"):
                time.sleep(0.005)
        assert t.seconds["outer"] >= t.seconds["inner"]

    def test_add_external_time(self):
        t = PhaseTimer()
        t.add("reduce", 1.5)
        t.add("reduce", 0.5)
        assert t.seconds["reduce"] == pytest.approx(2.0)

    def test_add_negative_rejected(self):
        with pytest.raises(ValueError):
            PhaseTimer().add("x", -1.0)

    def test_fraction(self):
        t = PhaseTimer()
        t.add("a", 3.0)
        t.add("b", 1.0)
        assert t.fraction("a") == pytest.approx(0.75)
        assert t.fraction("missing") == 0.0

    def test_fraction_empty_timer(self):
        assert PhaseTimer().fraction("a") == 0.0

    def test_phase_closed_on_exception(self):
        t = PhaseTimer()
        with pytest.raises(RuntimeError, match="boom"):
            with t.phase("a"):
                raise RuntimeError("boom")
        assert "a" in t.seconds
        # Phase can be entered again after the exception.
        with t.phase("a"):
            pass
