"""Tests for the domain/grid model (Table 1 conventions)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DomainSpec, GridSpec, PointSet, Volume, VoxelWindow


class TestDomainSpec:
    def test_grid_sizes_are_ceilings(self):
        d = DomainSpec(gx=10.0, gy=9.1, gt=5.0, sres=3.0, tres=2.0)
        assert (d.Gx, d.Gy, d.Gt) == (4, 4, 3)

    def test_exact_division_not_inflated(self):
        d = DomainSpec(gx=9.0, gy=9.0, gt=4.0, sres=3.0, tres=2.0)
        assert (d.Gx, d.Gy, d.Gt) == (3, 3, 2)

    def test_float_representation_robustness(self):
        # 0.3 / 0.1 is 2.9999999999999996 in floats; ceil must still be 3.
        d = DomainSpec(gx=0.3, gy=0.3, gt=0.3, sres=0.1, tres=0.1)
        assert (d.Gx, d.Gy, d.Gt) == (3, 3, 3)

    def test_from_voxels_round_trip(self):
        d = DomainSpec.from_voxels(148, 194, 728, sres=50.0, tres=1.0)
        assert (d.Gx, d.Gy, d.Gt) == (148, 194, 728)

    @pytest.mark.parametrize("field", ["gx", "gy", "gt", "sres", "tres"])
    def test_nonpositive_rejected(self, field):
        kwargs = dict(gx=1.0, gy=1.0, gt=1.0, sres=0.5, tres=0.5)
        kwargs[field] = 0.0
        with pytest.raises(ValueError, match=field):
            DomainSpec(**kwargs)

    def test_from_voxels_rejects_empty(self):
        with pytest.raises(ValueError):
            DomainSpec.from_voxels(0, 5, 5)


class TestGridSpec:
    def test_bandwidths_in_voxels(self, physical_grid):
        # hs=800, sres=250 -> Hs = ceil(3.2) = 4; ht=7, tres=3 -> Ht = 3.
        assert physical_grid.Hs == 4
        assert physical_grid.Ht == 3

    def test_shape_and_volume(self, small_grid):
        assert small_grid.shape == (16, 14, 20)
        assert small_grid.n_voxels == 16 * 14 * 20
        assert small_grid.grid_bytes == small_grid.n_voxels * 8

    def test_nonpositive_bandwidths_rejected(self, small_domain):
        with pytest.raises(ValueError):
            GridSpec(small_domain, hs=0, ht=1)
        with pytest.raises(ValueError):
            GridSpec(small_domain, hs=1, ht=-2)

    def test_centers_offset_by_half(self, physical_grid):
        d = physical_grid.domain
        xc = physical_grid.x_centers()
        assert xc[0] == pytest.approx(d.x0 + 0.5 * d.sres)
        assert xc[1] - xc[0] == pytest.approx(d.sres)
        tc = physical_grid.t_centers(2, 5)
        assert len(tc) == 3
        assert tc[0] == pytest.approx(d.t0 + 2.5 * d.tres)

    def test_voxel_of_interior_point(self, physical_grid):
        d = physical_grid.domain
        X, Y, T = physical_grid.voxel_of(d.x0 + 260.0, d.y0 + 1.0, d.t0 + 3.1)
        assert (X, Y, T) == (1, 0, 1)

    def test_voxel_of_clamps_far_boundary(self, physical_grid):
        d = physical_grid.domain
        X, Y, T = physical_grid.voxel_of(d.x0 + d.gx, d.y0 + d.gy, d.t0 + d.gt)
        assert (X, Y, T) == (physical_grid.Gx - 1, physical_grid.Gy - 1, physical_grid.Gt - 1)

    def test_voxels_of_matches_scalar(self, physical_grid, rng):
        d = physical_grid.domain
        pts = rng.uniform(
            [d.x0, d.y0, d.t0],
            [d.x0 + d.gx, d.y0 + d.gy, d.t0 + d.gt],
            size=(200, 3),
        )
        vec = physical_grid.voxels_of(pts)
        for i in range(len(pts)):
            assert tuple(vec[i]) == physical_grid.voxel_of(*pts[i])

    def test_normalization(self, small_grid):
        n = 17
        assert small_grid.normalization(n) == pytest.approx(
            1.0 / (n * small_grid.hs**2 * small_grid.ht)
        )

    def test_normalization_requires_points(self, small_grid):
        with pytest.raises(ValueError):
            small_grid.normalization(0)

    def test_allocate_zeroed(self, small_grid):
        vol = small_grid.allocate()
        assert vol.shape == small_grid.shape
        assert vol.dtype == np.float64
        assert not vol.any()
        assert vol.flags["C_CONTIGUOUS"]


class TestWindowCoverage:
    """The guarantee that makes PB correct: the +-Hs/+-Ht index window
    around a point's voxel contains every voxel center within bandwidth."""

    @given(
        px=st.floats(0, 16, exclude_max=True),
        py=st.floats(0, 14, exclude_max=True),
        pt=st.floats(0, 20, exclude_max=True),
        hs=st.floats(0.3, 6.0),
        ht=st.floats(0.3, 6.0),
    )
    @settings(max_examples=300, deadline=None)
    def test_property_window_covers_bandwidth(self, px, py, pt, hs, ht):
        grid = GridSpec(DomainSpec.from_voxels(16, 14, 20), hs=hs, ht=ht)
        win = grid.point_window(px, py, pt)
        xc = grid.x_centers()
        yc = grid.y_centers()
        tc = grid.t_centers()
        inside_x = np.where(np.abs(xc - px) < hs)[0]
        inside_y = np.where(np.abs(yc - py) < hs)[0]
        inside_t = np.where(np.abs(tc - pt) <= ht)[0]
        if inside_x.size:
            assert win.x0 <= inside_x.min() and inside_x.max() < win.x1
        if inside_y.size:
            assert win.y0 <= inside_y.min() and inside_y.max() < win.y1
        if inside_t.size:
            assert win.t0 <= inside_t.min() and inside_t.max() < win.t1

    def test_window_clipped_to_grid(self, small_grid):
        win = small_grid.point_window(0.1, 0.1, 0.1)
        assert win.x0 == 0 and win.y0 == 0 and win.t0 == 0
        win2 = small_grid.point_window(15.9, 13.9, 19.9)
        assert win2.x1 == 16 and win2.y1 == 14 and win2.t1 == 20

    def test_interior_window_has_full_extent(self):
        grid = GridSpec(DomainSpec.from_voxels(50, 50, 50), hs=3, ht=2)
        win = grid.point_window(25.5, 25.5, 25.5)
        assert win.shape == (2 * grid.Hs + 1, 2 * grid.Hs + 1, 2 * grid.Ht + 1)


class TestVoxelWindow:
    def test_shape_and_volume(self):
        w = VoxelWindow(1, 4, 2, 5, 0, 2)
        assert w.shape == (3, 3, 2)
        assert w.volume == 18
        assert not w.empty

    def test_empty_window(self):
        w = VoxelWindow(3, 3, 0, 5, 0, 5)
        assert w.empty
        assert w.volume == 0

    def test_intersection(self):
        a = VoxelWindow(0, 10, 0, 10, 0, 10)
        b = VoxelWindow(5, 15, 2, 8, 9, 20)
        c = a.intersect(b)
        assert (c.x0, c.x1, c.y0, c.y1, c.t0, c.t1) == (5, 10, 2, 8, 9, 10)

    def test_disjoint_intersection_empty(self):
        a = VoxelWindow(0, 5, 0, 5, 0, 5)
        b = VoxelWindow(5, 9, 0, 5, 0, 5)
        assert a.intersect(b).empty

    def test_slices_round_trip(self):
        arr = np.zeros((6, 7, 8))
        w = VoxelWindow(1, 3, 2, 6, 0, 8)
        arr[w.slices()] = 1.0
        assert arr.sum() == w.volume

    def test_contains_voxel(self):
        w = VoxelWindow(1, 4, 1, 4, 1, 4)
        assert w.contains_voxel(1, 1, 1)
        assert w.contains_voxel(3, 3, 3)
        assert not w.contains_voxel(4, 1, 1)
        assert not w.contains_voxel(0, 3, 3)


class TestPointSet:
    def test_basic_construction(self, rng):
        pts = PointSet(rng.normal(size=(10, 3)))
        assert pts.n == 10
        assert len(pts) == 10

    def test_from_columns(self):
        pts = PointSet.from_columns([1, 2], [3, 4], [5, 6])
        np.testing.assert_array_equal(pts.coords, [[1, 3, 5], [2, 4, 6]])

    def test_column_views(self):
        pts = PointSet.from_columns([1, 2], [3, 4], [5, 6])
        np.testing.assert_array_equal(pts.xs, [1, 2])
        np.testing.assert_array_equal(pts.ys, [3, 4])
        np.testing.assert_array_equal(pts.ts, [5, 6])

    def test_immutable(self, rng):
        pts = PointSet(rng.normal(size=(4, 3)))
        with pytest.raises((ValueError, RuntimeError)):
            pts.coords[0, 0] = 99.0

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError, match="\\(n, 3\\)"):
            PointSet(np.zeros((5, 2)))

    def test_rejects_nonfinite(self):
        arr = np.zeros((3, 3))
        arr[1, 2] = np.nan
        with pytest.raises(ValueError, match="finite"):
            PointSet(arr)

    def test_iteration_yields_floats(self, rng):
        pts = PointSet(rng.normal(size=(3, 3)))
        rows = list(pts)
        assert len(rows) == 3
        assert all(isinstance(v, float) for row in rows for v in row)

    def test_subset_and_concat(self, rng):
        pts = PointSet(rng.normal(size=(10, 3)))
        a = pts.subset(np.arange(4))
        b = pts.subset(np.arange(4, 10))
        both = a.concat(b)
        np.testing.assert_array_equal(both.coords, pts.coords)


class TestPointSetWeights:
    def test_unweighted_defaults(self, rng):
        pts = PointSet(rng.normal(size=(6, 3)))
        assert pts.weights is None
        assert not pts.weighted
        assert pts.total_weight == 6.0

    def test_weighted_construction(self, rng):
        w = np.array([1.0, 2.0, 0.5])
        pts = PointSet(rng.normal(size=(3, 3)), w)
        assert pts.weighted
        np.testing.assert_array_equal(pts.weights, w)
        assert pts.total_weight == pytest.approx(3.5)

    def test_weights_immutable(self, rng):
        pts = PointSet(rng.normal(size=(3, 3)), np.ones(3))
        with pytest.raises((ValueError, RuntimeError)):
            pts.weights[0] = 9.0

    def test_length_mismatch_rejected(self, rng):
        with pytest.raises(ValueError, match="weights length"):
            PointSet(rng.normal(size=(4, 3)), np.ones(3))

    def test_negative_and_nonfinite_rejected(self, rng):
        coords = rng.normal(size=(3, 3))
        with pytest.raises(ValueError, match="non-negative"):
            PointSet(coords, [1.0, -0.1, 1.0])
        with pytest.raises(ValueError, match="non-negative"):
            PointSet(coords, [1.0, np.nan, 1.0])

    def test_subset_carries_weights(self, rng):
        pts = PointSet(rng.normal(size=(5, 3)), np.arange(5, dtype=float))
        sub = pts.subset([1, 3])
        np.testing.assert_array_equal(sub.weights, [1.0, 3.0])

    def test_concat_mixed_fills_unit_weights(self, rng):
        a = PointSet(rng.normal(size=(2, 3)), [2.0, 3.0])
        b = PointSet(rng.normal(size=(2, 3)))
        both = a.concat(b)
        np.testing.assert_array_equal(both.weights, [2.0, 3.0, 1.0, 1.0])
        plain = b.concat(b)
        assert plain.weights is None

    def test_from_columns_with_weights(self):
        pts = PointSet.from_columns([1, 2], [3, 4], [5, 6], [0.5, 1.5])
        np.testing.assert_array_equal(pts.weights, [0.5, 1.5])


class TestVolume:
    def test_shape_mismatch_rejected(self, small_grid):
        with pytest.raises(ValueError, match="does not match"):
            Volume(np.zeros((2, 2, 2)), small_grid)

    def test_total_mass_quadrature(self, physical_grid):
        data = np.ones(physical_grid.shape)
        v = Volume(data, physical_grid)
        cell = physical_grid.domain.sres**2 * physical_grid.domain.tres
        assert v.total_mass == pytest.approx(physical_grid.n_voxels * cell)

    def test_time_slice(self, small_grid):
        data = np.zeros(small_grid.shape)
        data[:, :, 5] = 2.0
        v = Volume(data, small_grid)
        assert v.time_slice(5).sum() == pytest.approx(2.0 * 16 * 14)

    def test_max_voxel(self, small_grid):
        data = np.zeros(small_grid.shape)
        data[3, 7, 11] = 9.0
        assert Volume(data, small_grid).max_voxel() == (3, 7, 11)
