"""Tests for the unified region-accumulation engine.

The region engine (:mod:`repro.core.regions`) owns every bounded write
into a density volume: the VB/VB-DEC voxel tiles, the bbox shard buffers
of the threaded stamping path, and the incremental estimator's batch
caches.  Its contract is the same as the stamping engine's: algebraic
identity with the retained legacy paths, pinned at ``rtol=1e-12``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.pb_sym import pb_sym
from repro.algorithms.vb import accumulate_tile_legacy, vb, vb_dec
from repro.core import DomainSpec, GridSpec, PointSet, VoxelWindow, WorkCounter
from repro.core.kernels import available_kernels, get_kernel
from repro.core.regions import (
    RegionBuffer,
    accumulate_voxel_tile,
    auto_slab_voxels,
    batch_bbox,
    plan_stamp_shards,
    plan_time_slabs,
)
from repro.core.stamping import batch_windows, stamp_batch

from tests.helpers import make_clustered_points, make_points

RTOL = 1e-12
ATOL = 1e-18


@pytest.fixture
def grid():
    return GridSpec(DomainSpec.from_voxels(20, 18, 22), hs=2.9, ht=2.3)


def legacy_vb_volume(grid, kernel, points, voxel_chunk=2048, point_block=512):
    """Reference VB density via the retained legacy tile loop."""
    vol = grid.allocate()
    flat = vol.reshape(-1)
    norm = grid.normalization(points.n)
    px, py, pt = points.xs, points.ys, points.ts
    for start in range(0, flat.size, voxel_chunk):
        idx = np.arange(start, min(start + voxel_chunk, flat.size))
        X, Y, T = np.unravel_index(idx, grid.shape)
        cx = grid.domain.x0 + (X + 0.5) * grid.domain.sres
        cy = grid.domain.y0 + (Y + 0.5) * grid.domain.sres
        ct = grid.domain.t0 + (T + 0.5) * grid.domain.tres
        for pstart in range(0, points.n, point_block):
            sl = slice(pstart, min(pstart + point_block, points.n))
            accumulate_tile_legacy(
                flat, idx, cx, cy, ct, px[sl], py[sl], pt[sl],
                grid, kernel, norm, WorkCounter(),
            )
    return vol


class TestVoxelTileViaEngine:
    @pytest.mark.parametrize("kernel", available_kernels())
    def test_vb_matches_legacy_tile_loop(self, grid, kernel):
        kern = get_kernel(kernel)
        pts = make_points(grid, 40, seed=0)
        res = vb(pts, grid, kernel=kernel)
        np.testing.assert_allclose(
            res.data, legacy_vb_volume(grid, kern, pts), rtol=RTOL, atol=ATOL
        )

    @pytest.mark.parametrize("kernel", available_kernels())
    def test_vb_dec_matches_legacy_tile_loop(self, grid, kernel):
        """VB-DEC == VB == the legacy tile loop (same density, fewer tests)."""
        kern = get_kernel(kernel)
        pts = make_clustered_points(grid, 60, seed=1)
        res = vb_dec(pts, grid, kernel=kernel)
        np.testing.assert_allclose(
            res.data, legacy_vb_volume(grid, kern, pts), rtol=RTOL, atol=ATOL
        )

    def test_tile_matches_legacy_bit_for_bit(self, grid):
        """One engine tile reproduces the legacy tile exactly (same exprs)."""
        kern = get_kernel("quartic")
        pts = make_clustered_points(grid, 50, seed=2)
        idx = np.arange(300, 1500)
        X, Y, T = np.unravel_index(idx, grid.shape)
        cx = grid.domain.x0 + (X + 0.5) * grid.domain.sres
        cy = grid.domain.y0 + (Y + 0.5) * grid.domain.sres
        ct = grid.domain.t0 + (T + 0.5) * grid.domain.tres
        a = np.zeros(grid.n_voxels)
        b = np.zeros(grid.n_voxels)
        ca, cb = WorkCounter(), WorkCounter()
        accumulate_voxel_tile(
            a, idx, cx, cy, ct, pts.xs, pts.ys, pts.ts, grid, kern, 0.37, ca
        )
        accumulate_tile_legacy(
            b, idx, cx, cy, ct, pts.xs, pts.ys, pts.ts, grid, kern, 0.37, cb
        )
        assert np.array_equal(a, b)

    def test_tile_counters_match_legacy_plus_tile_batch(self, grid):
        kern = get_kernel("epanechnikov")
        pts = make_points(grid, 30, seed=3)
        idx = np.arange(0, 800)
        X, Y, T = np.unravel_index(idx, grid.shape)
        cx = grid.domain.x0 + (X + 0.5) * grid.domain.sres
        cy = grid.domain.y0 + (Y + 0.5) * grid.domain.sres
        ct = grid.domain.t0 + (T + 0.5) * grid.domain.tres
        ca, cb = WorkCounter(), WorkCounter()
        accumulate_voxel_tile(
            np.zeros(grid.n_voxels), idx, cx, cy, ct,
            pts.xs, pts.ys, pts.ts, grid, kern, 1.0, ca,
        )
        accumulate_tile_legacy(
            np.zeros(grid.n_voxels), idx, cx, cy, ct,
            pts.xs, pts.ys, pts.ts, grid, kern, 1.0, cb,
        )
        assert ca.spatial_evals == cb.spatial_evals
        assert ca.temporal_evals == cb.temporal_evals
        assert ca.distance_tests == cb.distance_tests
        assert ca.madds == cb.madds
        assert ca.tile_batches == 1
        assert cb.tile_batches == 0  # the legacy loop predates the counter

    def test_vb_counts_tile_batches(self, grid):
        pts = make_points(grid, 20, seed=4)
        res = vb(pts, grid, voxel_chunk=512, point_block=8)
        expected = -(-grid.n_voxels // 512) * -(-pts.n // 8)
        assert res.counter.tile_batches == expected
        assert vb_dec(pts, grid).counter.tile_batches >= 1


class TestBatchBbox:
    def test_contains_every_stamp_window(self, grid):
        coords = make_clustered_points(grid, 60, seed=5).coords
        bbox = batch_bbox(grid, coords)
        X0, X1, Y0, Y1, T0, T1 = batch_windows(grid, coords)
        assert bbox.x0 == X0.min() and bbox.x1 == X1.max()
        assert bbox.y0 == Y0.min() and bbox.y1 == Y1.max()
        assert bbox.t0 == T0.min() and bbox.t1 == T1.max()

    def test_empty_inputs(self, grid):
        assert batch_bbox(grid, np.empty((0, 3))) is None
        # Every stamp clipped away -> no bbox.
        clip = VoxelWindow(0, 1, 0, 1, 0, 1)
        far = np.array([[19.5, 17.5, 21.5]])
        assert batch_bbox(grid, far, clip=clip) is None

    def test_respects_clip(self, grid):
        coords = make_points(grid, 40, seed=6).coords
        clip = VoxelWindow(4, 11, 3, 12, 5, 17)
        bbox = batch_bbox(grid, coords, clip=clip)
        assert bbox.x0 >= clip.x0 and bbox.x1 <= clip.x1
        assert bbox.y0 >= clip.y0 and bbox.y1 <= clip.y1
        assert bbox.t0 >= clip.t0 and bbox.t1 <= clip.t1


class TestRegionBuffer:
    def test_stamp_matches_full_volume_region(self, grid):
        kern = get_kernel("epanechnikov")
        coords = make_clustered_points(grid, 50, seed=7).coords
        bbox = batch_bbox(grid, coords)
        buf = RegionBuffer(bbox)
        buf.stamp(grid, kern, coords, 1.0, WorkCounter())
        full = np.zeros(grid.shape)
        stamp_batch(full, grid, kern, coords, 1.0, WorkCounter())
        assert np.array_equal(buf.data, full[bbox.slices()])
        # The bbox really is a bounding box: no density outside it.
        mask = np.ones(grid.shape, dtype=bool)
        mask[bbox.slices()] = False
        assert not full[mask].any()

    def test_add_into_and_sign(self, grid):
        buf = RegionBuffer(VoxelWindow(2, 6, 3, 7, 1, 4))
        buf.data[:] = 1.5
        vol = np.zeros(grid.shape)
        touched = buf.add_into(vol)
        assert touched == buf.cells
        assert vol.sum() == pytest.approx(1.5 * buf.cells)
        assert vol[2:6, 3:7, 1:4].min() == 1.5
        buf.add_into(vol, sign=-1.0)
        assert not vol.any()

    def test_add_into_slab_restriction(self, grid):
        buf = RegionBuffer(VoxelWindow(2, 10, 0, 5, 0, 5))
        buf.data[:] = 1.0
        vol = np.zeros(grid.shape)
        a = buf.add_into(vol, 0, 6)
        b = buf.add_into(vol, 6, grid.Gx)
        assert a + b == buf.cells
        assert vol[2:10, 0:5, 0:5].min() == 1.0
        assert buf.add_into(vol, 15, 20) == 0  # disjoint slab: no-op

    def test_rejects_empty_window(self):
        with pytest.raises(ValueError, match="empty"):
            RegionBuffer(VoxelWindow(3, 3, 0, 2, 0, 2))


class TestPlanStampShards:
    def test_partition_covers_live_points_once(self, grid):
        coords = make_clustered_points(grid, 120, seed=8).coords
        plan = plan_stamp_shards(grid, coords, 4)
        all_idx = np.concatenate(plan.shards)
        assert len(np.unique(all_idx)) == len(all_idx) == len(coords)

    def test_windows_contain_their_stamps(self, grid):
        coords = make_points(grid, 80, seed=9).coords
        plan = plan_stamp_shards(grid, coords, 3)
        X0, X1, Y0, Y1, T0, T1 = batch_windows(grid, coords)
        for sel, w in zip(plan.shards, plan.windows):
            assert X0[sel].min() >= w.x0 and X1[sel].max() <= w.x1
            assert Y0[sel].min() >= w.y0 and Y1[sel].max() <= w.y1
            assert T0[sel].min() >= w.t0 and T1[sel].max() <= w.t1

    def test_buffers_undercut_full_volumes(self, grid):
        """The memory claim: joint bbox buffers < P private volumes."""
        for maker, seed in ((make_clustered_points, 10), (make_points, 11)):
            coords = maker(grid, 200, seed=seed).coords
            plan = plan_stamp_shards(grid, coords, 4)
            assert plan.buffer_cells < plan.n_shards * grid.n_voxels
            assert plan.buffer_bytes == plan.buffer_cells * 8

    def test_clustered_buffers_much_smaller(self, grid):
        """On tight clusters the bbox win is large, not marginal."""
        rng = np.random.default_rng(12)
        coords = np.concatenate([
            rng.normal([4, 4, 4], 0.4, size=(60, 3)),
            rng.normal([15, 13, 17], 0.4, size=(60, 3)),
        ]).clip(0, [19.9, 17.9, 21.9])
        plan = plan_stamp_shards(grid, coords, 2)
        assert plan.buffer_cells < 0.5 * plan.n_shards * grid.n_voxels

    def test_fully_clipped_batch_gives_empty_plan(self, grid):
        clip = VoxelWindow(0, 1, 0, 1, 0, 1)
        plan = plan_stamp_shards(grid, np.array([[19.0, 17.0, 21.0]]), 2, clip)
        assert plan.n_shards == 0 and plan.buffer_cells == 0

    def test_empty_and_invalid(self, grid):
        assert plan_stamp_shards(grid, np.empty((0, 3)), 4).n_shards == 0
        with pytest.raises(ValueError):
            plan_stamp_shards(grid, np.zeros((1, 3)), 0)

    def test_more_shards_than_points(self, grid):
        coords = make_points(grid, 3, seed=13).coords
        plan = plan_stamp_shards(grid, coords, 8)
        assert 1 <= plan.n_shards <= 3
        assert sum(len(s) for s in plan.shards) == 3


class TestThreadedBboxVsSequential:
    """The bbox-shard threads path must reproduce sequential PB-SYM."""

    @pytest.mark.parametrize("maker,seed", [
        (make_points, 14), (make_clustered_points, 15),
    ])
    def test_pb_sym_threads_matches_sequential(self, grid, maker, seed):
        pts = maker(grid, 150, seed=seed)
        serial = pb_sym(pts, grid)
        threaded = pb_sym(pts, grid, P=4, backend="threads")
        np.testing.assert_allclose(
            threaded.data, serial.data, rtol=RTOL, atol=ATOL
        )
        assert threaded.counter.shard_bbox_cells > 0
        assert threaded.counter.shard_bbox_cells < 4 * grid.n_voxels


class TestGapSnappedShards:
    """Balanced cuts snap onto x-gaps so clustered shards come out disjoint."""

    def test_clustered_cuts_snap_to_gap(self, grid):
        rng = np.random.default_rng(30)
        coords = np.concatenate([
            rng.normal([4, 4, 4], 0.4, size=(60, 3)),
            rng.normal([15, 13, 17], 0.4, size=(60, 3)),
        ]).clip(0, [19.9, 17.9, 21.9])
        plan = plan_stamp_shards(grid, coords, 2)
        assert plan.n_shards == 2
        a, b = plan.windows
        left, right = (a, b) if a.x0 <= b.x0 else (b, a)
        assert left.x1 <= right.x0  # x-disjoint boxes
        # The snap put whole clusters in whole shards.
        assert [len(s) for s in plan.shards] == [60, 60]

    def test_no_gap_keeps_balanced_cuts(self, grid):
        coords = make_points(grid, 200, seed=31).coords
        plan = plan_stamp_shards(grid, coords, 4)
        sizes = [len(s) for s in plan.shards]
        assert sum(sizes) == 200
        assert max(sizes) - min(sizes) <= 20  # still near-balanced

    def test_snapping_preserves_partition_invariants(self, grid):
        rng = np.random.default_rng(32)
        coords = np.concatenate([
            rng.normal([4, 4, 4], 0.4, size=(80, 3)),
            rng.normal([15, 13, 17], 0.4, size=(40, 3)),
        ]).clip(0, [19.9, 17.9, 21.9])
        plan = plan_stamp_shards(grid, coords, 3)
        all_idx = np.concatenate(plan.shards)
        assert len(np.unique(all_idx)) == len(all_idx) == len(coords)
        X0, X1, Y0, Y1, T0, T1 = batch_windows(grid, coords)
        for sel, w in zip(plan.shards, plan.windows):
            assert X0[sel].min() >= w.x0 and X1[sel].max() <= w.x1


class TestPlanTimeSlabs:
    """Retirement-slab planning: t-ordered, cell-balanced, partitioning."""

    def test_partitions_every_point_exactly_once(self, grid):
        rng = np.random.default_rng(40)
        coords = make_points(grid, 300, seed=40).coords
        slabs = plan_time_slabs(grid, coords, slab_voxels=4)
        all_idx = np.concatenate(slabs)
        assert len(slabs) > 1
        assert sorted(all_idx.tolist()) == list(range(300))

    def test_slabs_are_time_ordered(self, grid):
        coords = make_points(grid, 240, seed=41).coords
        slabs = plan_time_slabs(grid, coords, slab_voxels=4)
        X0, X1, Y0, Y1, T0, T1 = batch_windows(grid, coords)
        highs = [T0[idx].max() for idx in slabs]
        lows = [T0[idx].min() for idx in slabs]
        for k in range(len(slabs) - 1):
            assert highs[k] <= lows[k + 1]

    def test_balanced_on_stamp_cells(self, grid):
        coords = make_points(grid, 400, seed=42).coords
        slabs = plan_time_slabs(grid, coords, slab_voxels=4)
        X0, X1, Y0, Y1, T0, T1 = batch_windows(grid, coords)
        cells = (
            np.maximum(X1 - X0, 0)
            * np.maximum(Y1 - Y0, 0)
            * np.maximum(T1 - T0, 0)
        )
        loads = [cells[idx].sum() for idx in slabs]
        assert max(loads) <= 2.0 * (cells.sum() / len(slabs))

    def test_thin_batch_stays_single_slab(self, grid):
        rng = np.random.default_rng(43)
        coords = np.column_stack([
            rng.uniform(0, grid.domain.gx, 50),
            rng.uniform(0, grid.domain.gy, 50),
            rng.uniform(3.0, 4.0, 50),
        ])
        slabs = plan_time_slabs(grid, coords)
        assert len(slabs) == 1
        np.testing.assert_array_equal(slabs[0], np.arange(50))

    def test_max_slabs_cap_and_validation(self, grid):
        coords = make_points(grid, 100, seed=44).coords
        assert len(plan_time_slabs(grid, coords, 1, max_slabs=3)) <= 3
        with pytest.raises(ValueError, match="max_slabs"):
            plan_time_slabs(grid, coords, 4, max_slabs=0)
        with pytest.raises(ValueError, match="slab_voxels"):
            plan_time_slabs(grid, coords, 0)

    def test_empty_and_off_domain_batches(self, grid):
        assert plan_time_slabs(grid, np.empty((0, 3))) == []
        # Off-domain points clamp to edge voxels (like the engine) and
        # still land in exactly one slab each for retirement tracking.
        far = np.full((4, 3), 1e9)
        slabs = plan_time_slabs(grid, far, slab_voxels=2)
        assert sorted(np.concatenate(slabs).tolist()) == [0, 1, 2, 3]

    def test_auto_thickness_is_two_stamp_extents(self, grid):
        assert auto_slab_voxels(grid) == 2 * (2 * grid.Ht + 1)
