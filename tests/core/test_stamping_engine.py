"""Equivalence tests for the batched stamping engine.

The engine (:mod:`repro.core.stamping`) replaces the per-point Python loop
with cohort-vectorised tabulation and scatter accumulation.  Its contract
is *algebraic identity* with the legacy path: same masks, same expression
order, contributions accumulated in a deterministic per-slab order — so
engine and loop volumes must agree to fp round-off (``rtol=1e-12``) for
every registered kernel, every cost-profile mode, and every window
geometry the parallel strategies produce (clipped, offset-buffer,
boundary-hugging, degenerate).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.pb import stamp_point_pb
from repro.algorithms.pb_sym import stamp_points_sym_loop
from repro.algorithms.pb_variants import stamp_point_bar, stamp_point_disk
from repro.core import DomainSpec, GridSpec, PointSet, VoxelWindow, WorkCounter
from repro.core.kernels import available_kernels, get_kernel
from repro.core.stamping import STAMP_MODES, batch_windows, stamp_batch

from tests.helpers import make_clustered_points, make_points

RTOL = 1e-12
ATOL = 1e-18

#: Per-point legacy stamps for each engine mode ("sym" is the batch loop).
LEGACY_POINT = {"pb": stamp_point_pb, "disk": stamp_point_disk, "bar": stamp_point_bar}


@pytest.fixture
def grid():
    return GridSpec(DomainSpec.from_voxels(20, 18, 22), hs=2.9, ht=2.3)


def legacy_volume(grid, kernel, coords, mode, clip=None, vol_origin=(0, 0, 0)):
    """Reference volume via the historical per-point code paths."""
    vol = np.zeros(grid.shape)
    if mode == "sym":
        stamp_points_sym_loop(
            vol, grid, kernel, coords, 1.0, WorkCounter(),
            clip=clip, vol_origin=vol_origin,
        )
        return vol
    assert clip is None and vol_origin == (0, 0, 0)
    for x, y, t in coords:
        LEGACY_POINT[mode](vol, grid, kernel, x, y, t, 1.0, WorkCounter())
    return vol


def engine_volume(grid, kernel, coords, mode, clip=None, vol_origin=(0, 0, 0)):
    vol = np.zeros(grid.shape)
    stamp_batch(
        vol, grid, kernel, coords, 1.0, WorkCounter(),
        mode=mode, clip=clip, vol_origin=vol_origin,
    )
    return vol


def datasets(grid):
    """The four dataset regimes the ISSUE calls out."""
    d = grid.domain
    hi = np.array([d.gx, d.gy, d.gt])
    return {
        "uniform": make_points(grid, 50, seed=1).coords,
        "clustered": make_clustered_points(grid, 80, seed=2).coords,
        # Boundary-hugging: every point within one voxel of a face, so
        # nearly every stamp is clipped into a residual shape cohort.
        "boundary": np.concatenate([
            make_points(grid, 30, seed=3).coords * [1.0, 1.0, 0.02],
            hi - make_points(grid, 30, seed=4).coords * [0.02, 1.0, 1.0],
        ]),
        # Degenerate: all points in one voxel — a single maximal cohort
        # with total stamp overlap.
        "one-voxel": np.tile([[4.3, 5.1, 6.7]], (40, 1))
        + np.random.default_rng(5).uniform(0, 0.2, size=(40, 3)),
    }


class TestEngineMatchesLegacy:
    @pytest.mark.parametrize("kernel", available_kernels())
    @pytest.mark.parametrize("mode", STAMP_MODES)
    def test_all_kernels_all_modes_uniform(self, grid, kernel, mode):
        kern = get_kernel(kernel)
        coords = make_points(grid, 60, seed=0).coords
        np.testing.assert_allclose(
            engine_volume(grid, kern, coords, mode),
            legacy_volume(grid, kern, coords, mode),
            rtol=RTOL, atol=ATOL,
        )

    @pytest.mark.parametrize("dataset", ["uniform", "clustered", "boundary", "one-voxel"])
    @pytest.mark.parametrize("kernel", available_kernels())
    def test_sym_datasets(self, grid, kernel, dataset):
        kern = get_kernel(kernel)
        coords = datasets(grid)[dataset]
        np.testing.assert_allclose(
            engine_volume(grid, kern, coords, "sym"),
            legacy_volume(grid, kern, coords, "sym"),
            rtol=RTOL, atol=ATOL,
        )

    @pytest.mark.parametrize("dataset", ["uniform", "clustered", "boundary", "one-voxel"])
    def test_sym_with_clip_window(self, grid, dataset):
        kern = get_kernel("epanechnikov")
        coords = datasets(grid)[dataset]
        clip = VoxelWindow(3, 14, 2, 13, 4, 18)
        np.testing.assert_allclose(
            engine_volume(grid, kern, coords, "sym", clip=clip),
            legacy_volume(grid, kern, coords, "sym", clip=clip),
            rtol=RTOL, atol=ATOL,
        )

    def test_sym_offset_buffer(self, grid):
        """The REP replica path: clipped stamp into a halo-sized buffer."""
        kern = get_kernel("quartic")
        coords = make_clustered_points(grid, 60, seed=6).coords
        halo = VoxelWindow(2, 15, 3, 16, 5, 19)
        a = np.zeros(halo.shape)
        b = np.zeros(halo.shape)
        origin = (halo.x0, halo.y0, halo.t0)
        stamp_batch(a, grid, kern, coords, 1.0, WorkCounter(),
                    mode="sym", clip=halo, vol_origin=origin)
        stamp_points_sym_loop(b, grid, kern, coords, 1.0, WorkCounter(),
                              clip=halo, vol_origin=origin)
        np.testing.assert_allclose(a, b, rtol=RTOL, atol=ATOL)

    def test_tiny_slabs_still_exact(self, grid):
        """Forcing many slabs per cohort must not change the density."""
        kern = get_kernel("epanechnikov")
        coords = make_clustered_points(grid, 70, seed=7).coords
        vol = np.zeros(grid.shape)
        stamp_batch(vol, grid, kern, coords, 1.0, WorkCounter(),
                    mode="sym", slab_cells=64)
        np.testing.assert_allclose(
            vol, legacy_volume(grid, kern, coords, "sym"), rtol=RTOL, atol=ATOL
        )

    def test_bandwidth_larger_than_domain(self):
        grid = GridSpec(DomainSpec.from_voxels(7, 7, 7), hs=25.0, ht=25.0)
        kern = get_kernel("epanechnikov")
        coords = make_points(grid, 12, seed=8).coords
        for mode in STAMP_MODES:
            np.testing.assert_allclose(
                engine_volume(grid, kern, coords, mode),
                legacy_volume(grid, kern, coords, mode),
                rtol=RTOL, atol=ATOL, err_msg=f"mode={mode}",
            )


class TestEngineAccounting:
    @pytest.mark.parametrize("mode", STAMP_MODES)
    def test_counters_match_legacy(self, grid, mode):
        kern = get_kernel("epanechnikov")
        coords = datasets(grid)["boundary"]
        ce, cl = WorkCounter(), WorkCounter()
        ve = np.zeros(grid.shape)
        stamp_batch(ve, grid, kern, coords, 1.0, ce, mode=mode)
        vl = np.zeros(grid.shape)
        if mode == "sym":
            stamp_points_sym_loop(vl, grid, kern, coords, 1.0, cl)
        else:
            for x, y, t in coords:
                LEGACY_POINT[mode](vl, grid, kern, x, y, t, 1.0, cl)
        assert ce.spatial_evals == cl.spatial_evals
        assert ce.temporal_evals == cl.temporal_evals
        assert ce.distance_tests == cl.distance_tests
        assert ce.madds == cl.madds

    def test_batch_and_cohort_stats(self, grid):
        kern = get_kernel("epanechnikov")
        c = WorkCounter()
        vol = np.zeros(grid.shape)
        stamp_batch(vol, grid, kern, datasets(grid)["uniform"], 1.0, c)
        assert c.stamp_batches == 1
        assert c.stamp_cohorts >= 1
        c2 = WorkCounter()
        stamp_batch(vol, grid, kern, np.tile([[5.0, 5.0, 5.0]], (9, 1)), 1.0, c2)
        assert c2.stamp_cohorts == 1  # identical windows: one cohort

    def test_empty_and_all_clipped_batches(self, grid):
        kern = get_kernel("epanechnikov")
        c = WorkCounter()
        vol = np.zeros(grid.shape)
        stamp_batch(vol, grid, kern, np.empty((0, 3)), 1.0, c)
        clip = VoxelWindow(0, 1, 0, 1, 0, 1)
        stamp_batch(vol, grid, kern, np.array([[18.0, 16.0, 20.0]]), 1.0, c,
                    mode="sym", clip=clip)
        assert not vol.any()
        assert c.stamp_batches == 0  # nothing live: no engine dispatch

    def test_rejects_unknown_mode(self, grid):
        with pytest.raises(ValueError, match="unknown stamp mode"):
            stamp_batch(np.zeros(grid.shape), grid, get_kernel("epanechnikov"),
                        np.zeros((1, 3)), 1.0, WorkCounter(), mode="nope")


class TestBatchWindows:
    def test_matches_point_window(self, grid):
        coords = make_points(grid, 40, seed=9).coords
        X0, X1, Y0, Y1, T0, T1 = batch_windows(grid, coords)
        for i, (x, y, t) in enumerate(coords):
            w = grid.point_window(x, y, t)
            assert (X0[i], X1[i], Y0[i], Y1[i], T0[i], T1[i]) == (
                w.x0, w.x1, w.y0, w.y1, w.t0, w.t1
            )

    def test_clip_matches_intersection(self, grid):
        coords = make_points(grid, 40, seed=10).coords
        clip = VoxelWindow(4, 12, 3, 11, 6, 15)
        X0, X1, Y0, Y1, T0, T1 = batch_windows(grid, coords, clip)
        for i, (x, y, t) in enumerate(coords):
            w = grid.point_window(x, y, t).intersect(clip)
            assert (X0[i], X1[i]) == (w.x0, w.x1)
            assert (Y0[i], Y1[i]) == (w.y0, w.y1)
            assert (T0[i], T1[i]) == (w.t0, w.t1)


class TestWeightedStamping:
    """The engine's weighted mode: per-point kernel products scaled by
    ``w`` before the scatter, opening the volume backends to weighted
    :class:`~repro.core.grid.PointSet`\\ s."""

    def test_unit_weights_bit_identical(self, grid):
        coords = make_clustered_points(grid, 120, seed=20).coords
        kern = get_kernel("epanechnikov")
        plain = np.zeros(grid.shape)
        stamp_batch(plain, grid, kern, coords, 0.37)
        weighted = np.zeros(grid.shape)
        stamp_batch(weighted, grid, kern, coords, 0.37,
                    weights=np.ones(len(coords)))
        np.testing.assert_array_equal(weighted, plain)

    @pytest.mark.parametrize("mode", STAMP_MODES)
    def test_weighted_equals_weighted_sum_of_stamps(self, grid, mode):
        rng = np.random.default_rng(21)
        coords = make_points(grid, 30, seed=22).coords
        w = rng.uniform(0.1, 4.0, size=30)
        kern = get_kernel("epanechnikov")
        got = np.zeros(grid.shape)
        stamp_batch(got, grid, kern, coords, 1.0, mode=mode, weights=w)
        expect = np.zeros(grid.shape)
        for i in range(30):
            one = np.zeros(grid.shape)
            stamp_batch(one, grid, kern, coords[i : i + 1], 1.0, mode=mode)
            expect += w[i] * one
        np.testing.assert_allclose(got, expect, rtol=1e-12, atol=1e-18)

    def test_weighted_threads_path_matches_serial(self, grid):
        from repro.parallel.executors import run_threaded_stamping

        rng = np.random.default_rng(23)
        coords = make_clustered_points(grid, 200, seed=24).coords
        w = rng.uniform(0.2, 2.0, size=200)
        kern = get_kernel("epanechnikov")
        serial = np.zeros(grid.shape)
        stamp_batch(serial, grid, kern, coords, 0.5, weights=w)
        threaded = np.zeros(grid.shape)
        run_threaded_stamping(
            threaded, grid, kern, coords, 0.5, WorkCounter(), P=3, weights=w
        )
        np.testing.assert_allclose(threaded, serial, rtol=1e-12, atol=1e-18)

    def test_weighted_shape_mismatch_rejected(self, grid):
        with pytest.raises(ValueError, match="weights"):
            stamp_batch(np.zeros(grid.shape), grid,
                        get_kernel("epanechnikov"), np.zeros((3, 3)), 1.0,
                        weights=np.ones(2))
