"""Tests for adaptive-bandwidth STKDE (the paper's future-work feature)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import pb_sym
from repro.core import DomainSpec, GridSpec, PointSet
from repro.core.adaptive import (
    LAMBDA_RANGE,
    adaptive_pb_sym,
    adaptive_pd_block_constraint,
    pilot_at_points,
)

from tests.helpers import make_clustered_points, make_points


@pytest.fixture
def grid():
    return GridSpec(DomainSpec.from_voxels(32, 32, 32), hs=3.0, ht=3.0)


@pytest.fixture
def mixed_points(grid):
    """One dense cluster plus isolated far-away points."""
    rng = np.random.default_rng(4)
    dense = rng.normal([8.0, 8.0, 8.0], 0.8, size=(80, 3))
    sparse = np.array([
        [26.0, 26.0, 26.0],
        [26.0, 6.0, 20.0],
        [6.0, 26.0, 14.0],
    ])
    pts = np.clip(np.vstack([dense, sparse]), 0, 31.9)
    return PointSet(pts)


class TestAlphaZeroReduction:
    def test_alpha_zero_equals_pb_sym(self, grid, mixed_points):
        fixed = pb_sym(mixed_points, grid)
        adaptive = adaptive_pb_sym(mixed_points, grid, alpha=0.0)
        np.testing.assert_allclose(adaptive.data, fixed.data, rtol=1e-10, atol=1e-15)

    def test_alpha_zero_lambdas_are_one(self, grid, mixed_points):
        res = adaptive_pb_sym(mixed_points, grid, alpha=0.0)
        np.testing.assert_array_equal(res.meta["lambdas"], 1.0)


class TestAdaptiveBehaviour:
    def test_sparse_points_widen(self, grid, mixed_points):
        res = adaptive_pb_sym(mixed_points, grid, alpha=0.5)
        lam = res.meta["lambdas"]
        dense_lam = lam[:80].mean()
        sparse_lam = lam[80:].mean()
        assert sparse_lam > dense_lam
        assert sparse_lam > 1.0
        assert dense_lam < 1.0

    def test_lambdas_clipped(self, grid, mixed_points):
        res = adaptive_pb_sym(mixed_points, grid, alpha=1.0)
        lam = res.meta["lambdas"]
        assert lam.min() >= LAMBDA_RANGE[0]
        assert lam.max() <= LAMBDA_RANGE[1]

    def test_mass_preserved(self):
        """Per-point normalisation keeps the adaptive estimate a density."""
        grid = GridSpec(DomainSpec.from_voxels(40, 40, 40), hs=3.0, ht=3.0)
        rng = np.random.default_rng(7)
        pts = PointSet(rng.uniform(12, 28, size=(60, 3)))
        res = adaptive_pb_sym(pts, grid, alpha=0.5)
        assert res.volume.total_mass == pytest.approx(1.0, rel=0.15)

    def test_density_valid(self, grid, mixed_points):
        res = adaptive_pb_sym(mixed_points, grid, alpha=0.5)
        assert np.isfinite(res.data).all()
        assert (res.data >= 0).all()

    def test_smoother_tails_than_fixed(self, grid, mixed_points):
        """Isolated events spread wider: the density at a sparse event's
        cylinder edge is positive where the fixed estimate is zero."""
        fixed = pb_sym(mixed_points, grid)
        adaptive = adaptive_pb_sym(mixed_points, grid, alpha=0.7)
        # Count voxels with support: adaptive covers at least as many.
        assert (adaptive.data > 0).sum() > (fixed.data > 0).sum()

    def test_phases_reported(self, grid, mixed_points):
        res = adaptive_pb_sym(mixed_points, grid, alpha=0.5)
        assert {"pilot", "init", "compute"} <= set(res.timer.seconds)


class TestValidation:
    def test_rejects_bad_alpha(self, grid, mixed_points):
        with pytest.raises(ValueError, match="alpha"):
            adaptive_pb_sym(mixed_points, grid, alpha=1.5)
        with pytest.raises(ValueError, match="alpha"):
            adaptive_pb_sym(mixed_points, grid, alpha=-0.1)

    def test_registered(self):
        from repro.algorithms import get_algorithm

        assert get_algorithm("pb-sym-adaptive") is adaptive_pb_sym


class TestPilot:
    def test_pilot_higher_in_cluster(self, grid, mixed_points):
        from repro.core import WorkCounter
        from repro.core.kernels import get_kernel

        vals = pilot_at_points(mixed_points, grid, get_kernel(), WorkCounter())
        assert vals[:80].mean() > 3 * vals[80:].mean()


class TestPDConstraint:
    def test_constraint_grows_with_lambda(self, grid):
        small = adaptive_pd_block_constraint(grid, np.array([1.0]))
        large = adaptive_pd_block_constraint(grid, np.array([1.0, 2.5]))
        assert large[0] > small[0]
        assert large[1] > small[1]

    def test_constraint_matches_fixed_at_unit_lambda(self, grid):
        s, t = adaptive_pd_block_constraint(grid, np.ones(5))
        assert s == 2 * grid.Hs + 1
        assert t == 2 * grid.Ht + 1
