"""Tests for the disk/bar invariant tables (the heart of PB-SYM)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DomainSpec, GridSpec, WorkCounter
from repro.core.invariants import bar_table, disk_table, stamp_extent
from repro.core.kernels import get_kernel


@pytest.fixture
def grid():
    return GridSpec(DomainSpec.from_voxels(30, 30, 30), hs=4.3, ht=3.1)


KERNEL = get_kernel("epanechnikov")


class TestDiskTable:
    def test_shape_matches_ranges(self, grid):
        d = disk_table(grid, KERNEL, 15.0, 15.0, (10, 21), (12, 19), 1.0)
        assert d.shape == (11, 7)

    def test_zero_outside_bandwidth(self, grid):
        win = grid.point_window(15.2, 15.2, 15.0)
        d = disk_table(
            grid, KERNEL, 15.2, 15.2, (win.x0, win.x1), (win.y0, win.y1), 1.0
        )
        xc = grid.x_centers(win.x0, win.x1) - 15.2
        yc = grid.y_centers(win.y0, win.y1) - 15.2
        dist2 = xc[:, None] ** 2 + yc[None, :] ** 2
        assert np.all(d[dist2 >= grid.hs**2] == 0.0)
        assert np.all(d[dist2 < grid.hs**2] > 0.0)

    def test_norm_is_multiplicative(self, grid):
        args = (grid, KERNEL, 15.0, 14.5, (10, 20), (10, 20))
        d1 = disk_table(*args, 1.0)
        d2 = disk_table(*args, 2.5)
        np.testing.assert_allclose(d2, 2.5 * d1)

    def test_peak_at_point_voxel(self, grid):
        win = grid.point_window(15.5, 15.5, 15.0)
        d = disk_table(
            grid, KERNEL, 15.5, 15.5, (win.x0, win.x1), (win.y0, win.y1), 1.0
        )
        i, j = np.unravel_index(np.argmax(d), d.shape)
        assert win.x0 + i == 15 and win.y0 + j == 15

    def test_counts_work(self, grid):
        c = WorkCounter()
        d = disk_table(grid, KERNEL, 15.0, 15.0, (10, 20), (10, 20), 1.0, c)
        assert c.spatial_evals == d.size
        assert c.distance_tests == d.size

    def test_clipped_range_is_subtable(self, grid):
        """A DD-style clipped disk equals the corresponding full-disk slice."""
        win = grid.point_window(15.3, 15.7, 15.0)
        full = disk_table(
            grid, KERNEL, 15.3, 15.7, (win.x0, win.x1), (win.y0, win.y1), 1.0
        )
        clipped = disk_table(
            grid, KERNEL, 15.3, 15.7, (win.x0 + 2, win.x1 - 1), (win.y0, win.y1), 1.0
        )
        np.testing.assert_array_equal(clipped, full[2:-1, :])


class TestBarTable:
    def test_shape(self, grid):
        b = bar_table(grid, KERNEL, 15.0, (10, 22))
        assert b.shape == (12,)

    def test_zero_outside_bandwidth_inclusive(self, grid):
        win = grid.point_window(15.0, 15.0, 15.4)
        b = bar_table(grid, KERNEL, 15.4, (win.t0, win.t1))
        tc = grid.t_centers(win.t0, win.t1) - 15.4
        assert np.all(b[np.abs(tc) > grid.ht] == 0.0)
        assert np.all(b[np.abs(tc) <= grid.ht * 0.999] > 0.0)

    def test_exact_boundary_included(self):
        """|dt| == ht passes the paper's inclusive temporal test."""
        grid = GridSpec(DomainSpec.from_voxels(4, 4, 9), hs=1.0, ht=2.0)
        # Voxel centers at 0.5, 1.5, ...; point at 2.5 -> dt=+-2 at T=0,4.
        b = bar_table(grid, KERNEL, 2.5, (0, 9))
        assert b[0] == pytest.approx(0.0)  # kt(1) = 0 but *included* (value 0)
        # Check via a kernel that is nonzero at |w|=1: use as_printed.
        b2 = bar_table(grid, get_kernel("as_printed"), 2.5, (0, 9))
        assert b2[4] == pytest.approx(0.0)  # (1-1)^2 = 0 on the + side
        assert b2[0] == pytest.approx(0.75 * (1 - (-1)) ** 2)  # included

    def test_counts_work(self, grid):
        c = WorkCounter()
        b = bar_table(grid, KERNEL, 15.0, (0, 30), c)
        assert c.temporal_evals == b.size

    def test_symmetric_around_point(self, grid):
        # Point exactly at a voxel center -> bar symmetric.
        t = float(grid.t_centers(15, 16)[0])
        win = grid.point_window(15.0, 15.0, t)
        b = bar_table(grid, KERNEL, t, (win.t0, win.t1))
        np.testing.assert_allclose(b, b[::-1], atol=1e-15)


class TestStampExtent:
    def test_extent(self, grid):
        disk, bar = stamp_extent(grid)
        assert disk == 2 * grid.Hs + 1
        assert bar == 2 * grid.Ht + 1


@given(
    px=st.floats(0, 30, exclude_max=True),
    py=st.floats(0, 30, exclude_max=True),
    hs=st.floats(0.5, 8.0),
)
@settings(max_examples=150, deadline=None)
def test_property_disk_nonnegative_and_bounded(px, py, hs):
    grid = GridSpec(DomainSpec.from_voxels(30, 30, 30), hs=hs, ht=2.0)
    win = grid.point_window(px, py, 15.0)
    d = disk_table(grid, KERNEL, px, py, (win.x0, win.x1), (win.y0, win.y1), 1.0)
    assert np.all(d >= 0.0)
    assert np.all(d <= KERNEL.spatial_scalar(0, 0) + 1e-12)


@given(
    pt=st.floats(0, 30, exclude_max=True),
    ht=st.floats(2.0, 8.0),
)
@settings(max_examples=150, deadline=None)
def test_property_bar_mass_bounded_by_kernel_mass(pt, ht):
    """Riemann sum of the bar approximates at most the kernel's unit mass
    (scaled by 1/tres); clipping can only reduce it.  Only meaningful when
    ht spans a few voxels (ht >= 2*tres), otherwise the one-sample Riemann
    sum overshoots arbitrarily."""
    grid = GridSpec(DomainSpec.from_voxels(30, 30, 30), hs=2.0, ht=ht)
    win = grid.point_window(15.0, 15.0, pt)
    b = bar_table(grid, KERNEL, pt, (win.t0, win.t1))
    riemann = b.sum() * grid.domain.tres / ht
    assert riemann <= 1.15  # unit mass + discretisation slack
