"""Tests for the kernel function library."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.kernels import (
    KernelPair,
    as_printed_spatial,
    as_printed_temporal,
    available_kernels,
    epanechnikov_spatial,
    epanechnikov_temporal,
    get_kernel,
    quartic_spatial,
    register_kernel,
)


class TestRegistry:
    def test_available_contains_all_three(self):
        names = available_kernels()
        assert {"epanechnikov", "quartic", "as_printed"} <= set(names)

    def test_get_by_name(self):
        k = get_kernel("epanechnikov")
        assert k.name == "epanechnikov"

    def test_get_default_is_epanechnikov(self):
        assert get_kernel().name == "epanechnikov"

    def test_get_is_idempotent_on_pairs(self):
        k = get_kernel("quartic")
        assert get_kernel(k) is k

    def test_unknown_name_raises_with_suggestions(self):
        with pytest.raises(KeyError, match="epanechnikov"):
            get_kernel("nope")

    def test_register_duplicate_rejected(self):
        pair = get_kernel("epanechnikov")
        clone = KernelPair("epanechnikov", pair.spatial, pair.temporal)
        with pytest.raises(ValueError, match="already registered"):
            register_kernel(clone)

    def test_register_overwrite_allowed(self):
        pair = get_kernel("epanechnikov")
        clone = KernelPair("epanechnikov", pair.spatial, pair.temporal)
        register_kernel(clone, overwrite=True)
        assert get_kernel("epanechnikov") is clone
        register_kernel(pair, overwrite=True)  # restore


class TestEpanechnikov:
    def test_spatial_max_at_origin(self):
        assert epanechnikov_spatial(np.float64(0), np.float64(0)) == pytest.approx(
            2.0 / math.pi
        )

    def test_spatial_zero_on_unit_circle(self):
        assert epanechnikov_spatial(np.float64(1.0), np.float64(0.0)) == pytest.approx(0.0)
        u = v = np.float64(math.sqrt(0.5))
        assert epanechnikov_spatial(u, v) == pytest.approx(0.0)

    def test_spatial_unit_mass_on_disk(self):
        # Monte-Carlo quadrature over the unit disk.
        rng = np.random.default_rng(7)
        pts = rng.uniform(-1, 1, size=(400_000, 2))
        inside = (pts**2).sum(axis=1) < 1
        vals = epanechnikov_spatial(pts[:, 0], pts[:, 1])
        mass = vals[inside].sum() * 4.0 / len(pts)
        assert mass == pytest.approx(1.0, abs=5e-3)

    def test_temporal_unit_mass(self):
        w = np.linspace(-1, 1, 200_001)
        mass = np.trapezoid(epanechnikov_temporal(w), w)
        assert mass == pytest.approx(1.0, abs=1e-6)

    def test_temporal_even(self):
        w = np.linspace(0, 1, 101)
        np.testing.assert_allclose(
            epanechnikov_temporal(w), epanechnikov_temporal(-w)
        )

    def test_spatial_radially_symmetric(self):
        rng = np.random.default_rng(3)
        r = rng.uniform(0, 1, 50)
        theta1 = rng.uniform(0, 2 * math.pi, 50)
        theta2 = rng.uniform(0, 2 * math.pi, 50)
        v1 = epanechnikov_spatial(r * np.cos(theta1), r * np.sin(theta1))
        v2 = epanechnikov_spatial(r * np.cos(theta2), r * np.sin(theta2))
        np.testing.assert_allclose(v1, v2, rtol=1e-12)


class TestQuartic:
    def test_max_at_origin(self):
        assert quartic_spatial(np.float64(0), np.float64(0)) == pytest.approx(3.0 / math.pi)

    def test_unit_mass_on_disk(self):
        rng = np.random.default_rng(11)
        pts = rng.uniform(-1, 1, size=(400_000, 2))
        inside = (pts**2).sum(axis=1) < 1
        vals = quartic_spatial(pts[:, 0], pts[:, 1])
        mass = vals[inside].sum() * 4.0 / len(pts)
        assert mass == pytest.approx(1.0, abs=5e-3)

    def test_smoother_than_epanechnikov_at_edge(self):
        # The quartic kernel approaches zero quadratically at the boundary.
        near = np.float64(0.999)
        assert quartic_spatial(near, np.float64(0)) < epanechnikov_spatial(
            near, np.float64(0)
        )


class TestAsPrinted:
    def test_matches_literal_formula(self):
        u, v = np.float64(0.25), np.float64(-0.5)
        expected = (math.pi / 2) * (1 - 0.25) ** 2 * (1 + 0.5) ** 2
        assert as_printed_spatial(u, v) == pytest.approx(expected)

    def test_temporal_matches_literal_formula(self):
        w = np.float64(0.3)
        assert as_printed_temporal(w) == pytest.approx(0.75 * 0.49)

    def test_not_symmetric(self):
        # Documents why we treat the printed form as an OCR artifact.
        assert as_printed_spatial(np.float64(0.5), np.float64(0)) != pytest.approx(
            as_printed_spatial(np.float64(-0.5), np.float64(0))
        )


class TestKernelPairAPI:
    @pytest.mark.parametrize("name", ["epanechnikov", "quartic", "as_printed"])
    def test_scalar_matches_vectorised(self, name):
        k = get_kernel(name)
        assert k.spatial_scalar(0.3, -0.2) == pytest.approx(
            float(k.spatial(np.array([0.3]), np.array([-0.2]))[0])
        )
        assert k.temporal_scalar(0.4) == pytest.approx(
            float(k.temporal(np.array([0.4]))[0])
        )

    @pytest.mark.parametrize("name", ["epanechnikov", "quartic", "as_printed"])
    def test_vectorised_shapes(self, name):
        k = get_kernel(name)
        u = np.zeros((3, 4))
        v = np.zeros((3, 4))
        assert k.spatial(u, v).shape == (3, 4)
        assert k.temporal(np.zeros(5)).shape == (5,)

    def test_flop_attributes_positive(self):
        for name in available_kernels():
            k = get_kernel(name)
            assert k.spatial_flops > 0
            assert k.temporal_flops > 0


@given(
    u=st.floats(-0.999, 0.999),
    v=st.floats(-0.999, 0.999),
)
@settings(max_examples=200, deadline=None)
def test_property_symmetric_kernels_nonnegative_inside_disk(u, v):
    """Probability kernels are non-negative wherever they may be evaluated."""
    if u * u + v * v >= 1.0:
        return
    assert epanechnikov_spatial(np.float64(u), np.float64(v)) >= 0
    assert quartic_spatial(np.float64(u), np.float64(v)) >= 0


@given(w=st.floats(-1, 1))
@settings(max_examples=200, deadline=None)
def test_property_temporal_bounded(w):
    val = epanechnikov_temporal(np.float64(w))
    assert 0.0 <= val <= 0.75 + 1e-12


@given(
    r=st.floats(0, 0.999),
    theta=st.floats(0, 2 * math.pi),
)
@settings(max_examples=200, deadline=None)
def test_property_radial_decay(r, theta):
    """Spatial kernels decay monotonically along any ray from the origin."""
    u1, v1 = r * math.cos(theta), r * math.sin(theta)
    r2 = min(0.9995, r * 1.1 + 1e-4)
    u2, v2 = r2 * math.cos(theta), r2 * math.sin(theta)
    for f in (epanechnikov_spatial, quartic_spatial):
        assert f(np.float64(u1), np.float64(v1)) >= f(
            np.float64(u2), np.float64(v2)
        ) - 1e-12
