"""Backend parity property suite.

Every registered compute backend must answer every pair-evaluation
primitive with the same numbers as ``numpy-ref`` (rtol=1e-12), the same
logical work counts, and one dispatch record per primitive call — across
every stamp mode, weighted and unweighted, every registered kernel plus a
``spatial_radial=None`` custom kernel, and the direct/cohort/approx query
paths.  The suite parametrises over :func:`available_backends`, so the
``numba`` cases appear exactly when the import guard passes and are
absent (never failing) when it trips.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import DomainSpec, GridSpec, WorkCounter
from repro.core.backends import (
    DEFAULT_BACKEND,
    HAVE_NUMBA,
    ComputeBackend,
    available_backends,
    get_backend,
)
from repro.core.instrument import null_counter
from repro.core.kernels import KernelPair, available_kernels, get_kernel
from repro.core.regions import accumulate_voxel_tile
from repro.core.stamping import STAMP_MODES, masked_kernel_product, stamp_batch
from repro.serve.engine import approx_sum, direct_sum
from repro.serve.index import BucketIndex

from tests.helpers import make_clustered_points, make_points

RTOL = 1e-12
ATOL = 1e-18

BACKENDS = available_backends()
FAST_BACKENDS = tuple(b for b in BACKENDS if b != DEFAULT_BACKEND)

#: A non-radial, asymmetric kernel pair that is NOT in any registry —
#: exercises the ``spatial_radial is None`` fallbacks (and, for numba,
#: the ``supports() is False`` delegation).
CUSTOM_KERNEL = KernelPair(
    name="custom-nonradial",
    spatial=lambda u, v: (1.0 - 0.5 * u) * (1.0 - 0.25 * v),
    temporal=lambda w: 1.0 - 0.4 * w,
    spatial_radial=None,
)

ALL_KERNELS = tuple(available_kernels()) + ("custom",)


def kernel_of(name: str) -> KernelPair:
    return CUSTOM_KERNEL if name == "custom" else get_kernel(name)


@pytest.fixture
def grid():
    return GridSpec(DomainSpec.from_voxels(20, 18, 22), hs=2.9, ht=2.3)


class TestRegistry:
    def test_default_is_numpy_ref(self):
        assert DEFAULT_BACKEND == "numpy-ref"
        assert get_backend().name == "numpy-ref"
        assert get_backend(None).name == "numpy-ref"

    def test_always_available(self):
        assert "numpy-ref" in BACKENDS
        assert "numpy-fused" in BACKENDS

    def test_idempotent_on_instances(self):
        b = get_backend("numpy-fused")
        assert get_backend(b) is b
        assert get_backend("numpy-fused") is b  # process-wide singleton

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown compute backend"):
            get_backend("cuda")

    def test_numba_registration_matches_guard(self):
        assert ("numba" in BACKENDS) == HAVE_NUMBA
        if not HAVE_NUMBA:
            with pytest.raises(RuntimeError, match="numba"):
                get_backend("numba")

    def test_supports_custom_kernel(self):
        # Always-available backends take any kernel; numba only compiled.
        assert get_backend("numpy-ref").supports(CUSTOM_KERNEL)
        assert get_backend("numpy-fused").supports(CUSTOM_KERNEL)
        if HAVE_NUMBA:
            nb = get_backend("numba")
            assert not nb.supports(CUSTOM_KERNEL)
            assert nb.supports(get_kernel("epanechnikov"))


class TestDispatchAccounting:
    def test_counter_records_dispatches(self, grid):
        c = WorkCounter()
        kern = get_kernel("epanechnikov")
        coords = make_points(grid, 30, seed=0).coords
        vol = np.zeros(grid.shape)
        stamp_batch(vol, grid, kern, coords, 1.0, c, mode="sym")
        assert c.backend_dispatches.get("numpy-ref", 0) >= 1
        # One dispatch per cohort *slab*; every cohort has at least one.
        assert sum(c.backend_dispatches.values()) >= c.stamp_cohorts

    def test_null_counter_drops_dispatches(self):
        nc = null_counter()
        nc.add_dispatch("numpy-ref", 5)
        assert nc.backend_dispatches == {}

    def test_merge_and_roundtrip(self):
        a = WorkCounter()
        a.add_dispatch("numpy-ref", 2)
        b = WorkCounter()
        b.add_dispatch("numpy-ref")
        b.add_dispatch("numba", 3)
        a.merge(b)
        assert a.backend_dispatches == {"numpy-ref": 3, "numba": 3}
        rt = WorkCounter(**a.as_dict())
        assert rt.backend_dispatches == a.backend_dispatches
        cp = a.copy()
        cp.add_dispatch("numpy-ref")
        assert a.backend_dispatches["numpy-ref"] == 3  # copy is independent

    def test_o1_madds_from_shapes(self, grid):
        """madds charges the tabulated window, mask included — no mask
        reduction inside the hot path."""
        c = WorkCounter()
        kern = get_kernel("epanechnikov")
        dx = np.linspace(-4.0, 4.0, 7)[None, :].repeat(3, axis=0)
        masked_kernel_product(grid, kern, dx, dx, dx, c)
        assert c.madds == dx.size
        assert c.madds == c.distance_tests


class TestStampParity:
    @pytest.mark.parametrize("backend", FAST_BACKENDS)
    @pytest.mark.parametrize("mode", STAMP_MODES)
    @pytest.mark.parametrize("kname", ALL_KERNELS)
    def test_all_modes_all_kernels(self, grid, backend, mode, kname):
        kern = kernel_of(kname)
        coords = make_clustered_points(grid, 60, seed=3).coords
        ref = np.zeros(grid.shape)
        got = np.zeros(grid.shape)
        c_ref = WorkCounter()
        c_got = WorkCounter()
        stamp_batch(ref, grid, kern, coords, 1.0, c_ref, mode=mode)
        stamp_batch(got, grid, kern, coords, 1.0, c_got, mode=mode,
                    compute=backend)
        np.testing.assert_allclose(got, ref, rtol=RTOL, atol=ATOL)
        # Logical work counts are backend-independent.
        for key in ("spatial_evals", "temporal_evals", "distance_tests",
                    "madds", "stamp_cohorts"):
            assert getattr(c_got, key) == getattr(c_ref, key), key

    @pytest.mark.parametrize("backend", FAST_BACKENDS)
    def test_weighted_stamp(self, grid, backend):
        kern = get_kernel("quartic")
        pts = make_points(grid, 50, seed=4)
        w = np.random.default_rng(7).uniform(0.2, 3.0, size=pts.n)
        ref = np.zeros(grid.shape)
        got = np.zeros(grid.shape)
        stamp_batch(ref, grid, kern, pts.coords, 1.0, None, weights=w)
        stamp_batch(got, grid, kern, pts.coords, 1.0, None, weights=w,
                    compute=backend)
        np.testing.assert_allclose(got, ref, rtol=RTOL, atol=ATOL)

    def test_default_stays_bit_identical(self, grid):
        """compute=None routes to numpy-ref and must be *bit*-equal to the
        explicit reference backend."""
        kern = get_kernel("epanechnikov")
        coords = make_points(grid, 60, seed=5).coords
        a = np.zeros(grid.shape)
        b = np.zeros(grid.shape)
        stamp_batch(a, grid, kern, coords, 1.0, None, mode="sym")
        stamp_batch(b, grid, kern, coords, 1.0, None, mode="sym",
                    compute="numpy-ref")
        assert np.array_equal(a, b)


class TestMaskedProductParity:
    @pytest.mark.parametrize("backend", FAST_BACKENDS)
    @pytest.mark.parametrize("kname", ALL_KERNELS)
    def test_tile_shapes(self, grid, backend, kname):
        kern = kernel_of(kname)
        rng = np.random.default_rng(11)
        cx = rng.uniform(0, grid.domain.gx, size=40)
        px = rng.uniform(0, grid.domain.gx, size=17)
        dx = cx[:, None] - px[None, :]
        dy = rng.uniform(-4, 4, size=(40, 17))
        dt = rng.uniform(-4, 4, size=(40, 17))
        ref = get_backend("numpy-ref").masked_kernel_product(
            grid, kern, dx, dy, dt, WorkCounter()
        )
        got = get_backend(backend).masked_kernel_product(
            grid, kern, dx, dy, dt, WorkCounter()
        )
        np.testing.assert_allclose(got, ref, rtol=RTOL, atol=ATOL)

    @pytest.mark.parametrize("backend", FAST_BACKENDS)
    def test_sparse_mask_first_path(self, grid, backend):
        """Almost-everything-outside masks (the fused mask-first branch)."""
        kern = get_kernel("epanechnikov")
        rng = np.random.default_rng(13)
        dx = rng.uniform(5.0, 50.0, size=(64, 128))  # far outside hs=2.9
        dx[::9, ::17] = rng.uniform(-1.0, 1.0, size=dx[::9, ::17].shape)
        dy = rng.uniform(-1.0, 1.0, size=dx.shape)
        dt = rng.uniform(-6.0, 6.0, size=dx.shape)
        ref = get_backend("numpy-ref").masked_kernel_product(
            grid, kern, dx, dy, dt, WorkCounter()
        )
        got = get_backend(backend).masked_kernel_product(
            grid, kern, dx, dy, dt, WorkCounter()
        )
        np.testing.assert_allclose(got, ref, rtol=RTOL, atol=ATOL)

    @pytest.mark.parametrize("backend", FAST_BACKENDS)
    def test_all_outside_returns_zeros(self, grid, backend):
        kern = get_kernel("quartic")
        dx = np.full((8, 9), 40.0)
        out = get_backend(backend).masked_kernel_product(
            grid, kern, dx, dx, dx, WorkCounter()
        )
        assert out.shape == dx.shape
        assert not out.any()

    @pytest.mark.parametrize("backend", FAST_BACKENDS)
    def test_voxel_tile_route(self, grid, backend):
        kern = get_kernel("epanechnikov")
        rng = np.random.default_rng(17)
        vox = np.arange(30, dtype=np.int64)
        cx = rng.uniform(0, grid.domain.gx, size=30)
        cy = rng.uniform(0, grid.domain.gy, size=30)
        ct = rng.uniform(0, grid.domain.gt, size=30)
        px = rng.uniform(0, grid.domain.gx, size=12)
        py = rng.uniform(0, grid.domain.gy, size=12)
        pt = rng.uniform(0, grid.domain.gt, size=12)
        ref = np.zeros(grid.n_voxels)
        got = np.zeros(grid.n_voxels)
        accumulate_voxel_tile(ref, vox, cx, cy, ct, px, py, pt, grid, kern,
                              0.5, WorkCounter())
        accumulate_voxel_tile(got, vox, cx, cy, ct, px, py, pt, grid, kern,
                              0.5, WorkCounter(), compute=backend)
        np.testing.assert_allclose(got, ref, rtol=RTOL, atol=ATOL)


class TestQueryParity:
    @pytest.fixture
    def served(self, grid):
        pts = make_clustered_points(grid, 400, seed=21)
        idx = BucketIndex(grid, pts.coords)
        d = grid.domain
        rng = np.random.default_rng(23)
        q = np.column_stack([
            rng.uniform(0, d.gx, size=120),
            rng.uniform(0, d.gy, size=120),
            rng.uniform(0, d.gt, size=120),
        ]) + [d.x0, d.y0, d.t0]
        return idx, q

    @pytest.mark.parametrize("backend", FAST_BACKENDS)
    @pytest.mark.parametrize("kname", ALL_KERNELS)
    def test_direct_sum(self, served, backend, kname):
        idx, q = served
        kern = kernel_of(kname)
        ref = direct_sum(idx, q, kern, 0.01, WorkCounter())
        got = direct_sum(idx, q, kern, 0.01, WorkCounter(), compute=backend)
        np.testing.assert_allclose(got, ref, rtol=RTOL, atol=ATOL)

    @pytest.mark.parametrize("backend", FAST_BACKENDS)
    def test_direct_sum_weighted(self, grid, backend):
        pts = make_clustered_points(grid, 300, seed=31)
        w = np.random.default_rng(37).uniform(0.1, 5.0, size=pts.n)
        idx = BucketIndex(grid, pts.coords, w)
        q = pts.coords[:50]
        kern = get_kernel("epanechnikov")
        ref = direct_sum(idx, q, kern, 1.0 / w.sum(), WorkCounter())
        got = direct_sum(idx, q, kern, 1.0 / w.sum(), WorkCounter(),
                         compute=backend)
        np.testing.assert_allclose(got, ref, rtol=RTOL, atol=ATOL)

    @pytest.mark.parametrize("backend", FAST_BACKENDS)
    def test_direct_sum_skewed_cohort(self, grid, backend):
        """One dense cluster probed by a few queries: the sparse 1-D path."""
        rng = np.random.default_rng(41)
        coords = np.tile([[5.0, 5.0, 5.0]], (3000, 1)) + rng.uniform(
            -0.4, 0.4, size=(3000, 3)
        )
        idx = BucketIndex(grid, coords)
        q = np.array([[5.0, 5.0, 5.0], [5.2, 4.9, 5.1]])
        kern = get_kernel("quartic")
        ref = direct_sum(idx, q, kern, 1e-3, WorkCounter(), skew_min_k=256)
        got = direct_sum(idx, q, kern, 1e-3, WorkCounter(), skew_min_k=256,
                         compute=backend)
        np.testing.assert_allclose(got, ref, rtol=RTOL, atol=ATOL)

    @pytest.mark.parametrize("backend", FAST_BACKENDS)
    def test_approx_sum_same_seed(self, served, backend):
        """Identical draws (same seed, same stream order) + elementwise
        parity of the sampled contributions → identical stop decisions."""
        idx, q = served
        kern = get_kernel("epanechnikov")
        ref = approx_sum(idx, q, kern, 0.01, WorkCounter(), eps=0.2, seed=9)
        got = approx_sum(idx, q, kern, 0.01, WorkCounter(), eps=0.2, seed=9,
                         compute=backend)
        np.testing.assert_allclose(got, ref, rtol=RTOL, atol=ATOL)

    @pytest.mark.parametrize("backend", FAST_BACKENDS)
    def test_query_counts_backend_independent(self, served, backend):
        idx, q = served
        kern = get_kernel("epanechnikov")
        c_ref = WorkCounter()
        c_got = WorkCounter()
        direct_sum(idx, q, kern, 0.01, c_ref)
        direct_sum(idx, q, kern, 0.01, c_got, compute=backend)
        for key in ("spatial_evals", "temporal_evals", "distance_tests",
                    "madds", "query_cohorts"):
            assert getattr(c_got, key) == getattr(c_ref, key), key
        assert sum(c_got.backend_dispatches.values()) == sum(
            c_ref.backend_dispatches.values()
        )


@pytest.mark.skipif(not HAVE_NUMBA, reason="numba not importable")
class TestNumbaSpecific:
    def test_warmup_recorded_separately(self, grid):
        nb = get_backend("numba")
        kern = get_kernel("epanechnikov")
        rng = np.random.default_rng(51)
        dx = rng.uniform(-3, 3, size=(16, 32))
        nb.query_row_sums(grid, kern, dx, dx, dx, None, WorkCounter())
        assert nb.warmup_seconds > 0.0

    def test_custom_kernel_falls_back(self, grid):
        nb = get_backend("numba")
        coords = make_points(grid, 20, seed=53).coords
        ref = np.zeros(grid.shape)
        got = np.zeros(grid.shape)
        stamp_batch(ref, grid, CUSTOM_KERNEL, coords, 1.0, None, mode="sym")
        stamp_batch(got, grid, CUSTOM_KERNEL, coords, 1.0, None, mode="sym",
                    compute="numba")
        np.testing.assert_allclose(got, ref, rtol=RTOL, atol=ATOL)
