"""Tests for the synthetic dataset generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import (
    cluster_process,
    dengue_like,
    ebird_like,
    flu_like,
    generator_for,
    pollen_like,
    uniform_process,
)

EXTENT = (60.0, 50.0, 80.0)
ALL_GENERATORS = [uniform_process, dengue_like, pollen_like, flu_like, ebird_like]


class TestCommonContract:
    @pytest.mark.parametrize("gen", ALL_GENERATORS)
    def test_count_and_shape(self, gen):
        pts = gen(500, EXTENT, seed=1)
        assert pts.n == 500
        assert pts.coords.shape == (500, 3)

    @pytest.mark.parametrize("gen", ALL_GENERATORS)
    def test_within_extent(self, gen):
        pts = gen(2000, EXTENT, seed=2)
        assert (pts.coords >= 0).all()
        assert (pts.xs < EXTENT[0]).all()
        assert (pts.ys < EXTENT[1]).all()
        assert (pts.ts < EXTENT[2]).all()

    @pytest.mark.parametrize("gen", ALL_GENERATORS)
    def test_deterministic_given_seed(self, gen):
        a = gen(300, EXTENT, seed=42)
        b = gen(300, EXTENT, seed=42)
        np.testing.assert_array_equal(a.coords, b.coords)

    @pytest.mark.parametrize("gen", ALL_GENERATORS)
    def test_seed_changes_output(self, gen):
        a = gen(300, EXTENT, seed=1)
        b = gen(300, EXTENT, seed=2)
        assert not np.array_equal(a.coords, b.coords)

    @pytest.mark.parametrize("gen", ALL_GENERATORS)
    def test_rejects_zero_points(self, gen):
        with pytest.raises(ValueError):
            gen(0, EXTENT)

    @pytest.mark.parametrize("gen", ALL_GENERATORS)
    def test_single_point_ok(self, gen):
        assert gen(1, EXTENT, seed=3).n == 1


def spatial_clustering_score(pts, extent, bins=8) -> float:
    """Coefficient of variation of 2-D histogram counts: 0 = uniform."""
    h, _, _ = np.histogram2d(
        pts.xs, pts.ys, bins=bins, range=[[0, extent[0]], [0, extent[1]]]
    )
    return float(h.std() / max(h.mean(), 1e-12))


class TestStructure:
    def test_clustered_generators_more_clustered_than_uniform(self):
        uni = spatial_clustering_score(uniform_process(4000, EXTENT, 5), EXTENT)
        for gen in (dengue_like, pollen_like, ebird_like):
            score = spatial_clustering_score(gen(4000, EXTENT, 5), EXTENT)
            assert score > 2 * uni, gen.__name__

    def test_pollen_heavier_tailed_than_dengue(self):
        """Zipf metro weights concentrate harder than dirichlet clusters."""
        d = dengue_like(6000, EXTENT, 7)
        p = pollen_like(6000, EXTENT, 7)
        def top_cell_share(pts):
            h, _, _ = np.histogram2d(pts.xs, pts.ys, bins=12,
                                     range=[[0, EXTENT[0]], [0, EXTENT[1]]])
            return h.max() / h.sum()
        assert top_cell_share(p) > top_cell_share(d) * 0.5  # both clustered
        assert spatial_clustering_score(p, EXTENT) > 1.0

    def test_dengue_two_waves(self):
        pts = dengue_like(8000, EXTENT, 9)
        t = pts.ts / EXTENT[2]
        early = ((t > 0.1) & (t < 0.35)).mean()
        mid = ((t > 0.4) & (t < 0.55)).mean()
        late = ((t > 0.6) & (t < 0.8)).mean()
        assert early > mid  # first wave dominates the inter-wave trough
        assert late > mid * 0.5  # second wave exists

    def test_flu_spans_domain(self):
        """Flyways sweep the whole domain: x-range coverage is wide."""
        pts = flu_like(3000, EXTENT, 11)
        assert pts.xs.max() - pts.xs.min() > 0.6 * EXTENT[0]
        assert pts.ts.max() - pts.ts.min() > 0.6 * EXTENT[2]

    def test_ebird_hotspots_heavy_tailed(self):
        pts = ebird_like(8000, EXTENT, 13)
        h, _, _ = np.histogram2d(pts.xs, pts.ys, bins=16,
                                 range=[[0, EXTENT[0]], [0, EXTENT[1]]])
        counts = np.sort(h.ravel())[::-1]
        # Top 5% of cells hold a large share of all sightings.
        top = counts[: max(1, len(counts) // 20)].sum()
        assert top / counts.sum() > 0.3


class TestClusterProcess:
    def test_respects_explicit_centers(self):
        centers = np.array([[10.0, 10.0, 10.0], [50.0, 40.0, 70.0]])
        pts = cluster_process(
            1000, EXTENT, n_clusters=2, spatial_sigma=0.5,
            temporal_sigma=0.5, centers=centers,
            background_fraction=0.0, seed=3,
        )
        d0 = np.linalg.norm(pts.coords - centers[0], axis=1)
        d1 = np.linalg.norm(pts.coords - centers[1], axis=1)
        assert (np.minimum(d0, d1) < 5.0).mean() > 0.95

    def test_weights_shift_mass(self):
        centers = np.array([[10.0, 10.0, 10.0], [50.0, 40.0, 70.0]])
        pts = cluster_process(
            2000, EXTENT, n_clusters=2, spatial_sigma=0.5, temporal_sigma=0.5,
            centers=centers, cluster_weights=np.array([9.0, 1.0]),
            background_fraction=0.0, seed=4,
        )
        near0 = (np.linalg.norm(pts.coords - centers[0], axis=1) < 5).mean()
        assert near0 > 0.8

    def test_background_fraction(self):
        pts = cluster_process(
            2000, EXTENT, n_clusters=1, spatial_sigma=0.1, temporal_sigma=0.1,
            centers=np.array([[30.0, 25.0, 40.0]]),
            background_fraction=0.5, seed=5,
        )
        far = (np.linalg.norm(pts.coords - [30, 25, 40], axis=1) > 5).mean()
        assert 0.3 < far < 0.7

    def test_validates_arguments(self):
        with pytest.raises(ValueError):
            cluster_process(10, EXTENT, n_clusters=0, spatial_sigma=1, temporal_sigma=1)
        with pytest.raises(ValueError):
            cluster_process(10, EXTENT, n_clusters=2, spatial_sigma=1,
                            temporal_sigma=1, background_fraction=1.5)
        with pytest.raises(ValueError):
            cluster_process(10, EXTENT, n_clusters=2, spatial_sigma=1,
                            temporal_sigma=1, centers=np.zeros((3, 3)))
        with pytest.raises(ValueError):
            cluster_process(10, EXTENT, n_clusters=2, spatial_sigma=1,
                            temporal_sigma=1, cluster_weights=np.array([-1.0, 2.0]))


class TestGeneratorLookup:
    @pytest.mark.parametrize("name", ["dengue", "pollen", "flu", "ebird", "uniform"])
    def test_lookup(self, name):
        gen = generator_for(name)
        assert gen(10, EXTENT, seed=0).n == 10

    def test_unknown_rejected(self):
        with pytest.raises(KeyError, match="dengue"):
            generator_for("mystery")
