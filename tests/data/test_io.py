"""Tests for point/volume I/O round-trips and failure modes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import DomainSpec, GridSpec, PointSet, Volume
from repro.data.io import load_points_csv, load_volume, save_points_csv, save_volume


@pytest.fixture
def pts(rng):
    return PointSet(rng.uniform(0, 100, size=(50, 3)))


class TestPointsCSV:
    def test_round_trip(self, tmp_path, pts):
        f = tmp_path / "events.csv"
        save_points_csv(pts, f)
        back = load_points_csv(f)
        np.testing.assert_allclose(back.coords, pts.coords, rtol=0, atol=0)

    def test_header_written(self, tmp_path, pts):
        f = tmp_path / "events.csv"
        save_points_csv(pts, f)
        assert f.read_text().splitlines()[0] == "x,y,t"

    def test_headerless_file_loads(self, tmp_path):
        f = tmp_path / "raw.csv"
        f.write_text("1.5,2.5,3.5\n4.0,5.0,6.0\n")
        back = load_points_csv(f)
        assert back.n == 2
        np.testing.assert_allclose(back.coords[1], [4.0, 5.0, 6.0])

    def test_single_row_file(self, tmp_path):
        f = tmp_path / "one.csv"
        f.write_text("x,y,t\n1.0,2.0,3.0\n")
        assert load_points_csv(f).n == 1

    def test_scientific_notation_first_row_is_not_a_header(self, tmp_path):
        """'1.2e-03' contains a letter but is data, not a header row."""
        f = tmp_path / "sci.csv"
        f.write_text("1.2e-03,2.5E+01,3.0\n4.0,5.0,6.0\n")
        back = load_points_csv(f)
        assert back.n == 2
        np.testing.assert_allclose(back.coords[0], [1.2e-03, 25.0, 3.0])

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_points_csv(tmp_path / "nope.csv")

    def test_wrong_column_count(self, tmp_path):
        f = tmp_path / "bad.csv"
        f.write_text("x,y\n1.0,2.0\n")
        with pytest.raises(ValueError, match="3 columns"):
            load_points_csv(f)

    def test_creates_parent_dirs(self, tmp_path, pts):
        f = tmp_path / "a" / "b" / "events.csv"
        save_points_csv(pts, f)
        assert f.exists()


class TestWeightedPointsCSV:
    @pytest.fixture
    def wpts(self, rng):
        coords = rng.uniform(0, 100, size=(40, 3))
        return PointSet(coords, rng.uniform(0.1, 5.0, size=40))

    def test_weighted_round_trip(self, tmp_path, wpts):
        f = tmp_path / "weighted.csv"
        save_points_csv(wpts, f)
        back = load_points_csv(f)
        assert back.weighted
        np.testing.assert_allclose(back.coords, wpts.coords, rtol=0, atol=0)
        np.testing.assert_allclose(back.weights, wpts.weights, rtol=0, atol=0)

    def test_weighted_header(self, tmp_path, wpts):
        f = tmp_path / "weighted.csv"
        save_points_csv(wpts, f)
        assert f.read_text().splitlines()[0] == "x,y,t,w"

    def test_unweighted_load_has_no_weights(self, tmp_path, rng):
        pts = PointSet(rng.uniform(0, 10, size=(5, 3)))
        f = tmp_path / "plain.csv"
        save_points_csv(pts, f)
        assert load_points_csv(f).weights is None

    def test_headerless_four_column_file(self, tmp_path):
        f = tmp_path / "raw4.csv"
        f.write_text("1.0,2.0,3.0,0.5\n4.0,5.0,6.0,2.0\n")
        back = load_points_csv(f)
        assert back.n == 2
        np.testing.assert_allclose(back.weights, [0.5, 2.0])

    def test_five_columns_rejected(self, tmp_path):
        f = tmp_path / "bad5.csv"
        f.write_text("1,2,3,4,5\n")
        with pytest.raises(ValueError, match="column"):
            load_points_csv(f)

    def test_total_weight_survives(self, tmp_path, wpts):
        f = tmp_path / "weighted.csv"
        save_points_csv(wpts, f)
        assert load_points_csv(f).total_weight == pytest.approx(
            wpts.total_weight
        )


class TestVolumeNpy:
    def make_volume(self):
        dom = DomainSpec(gx=10, gy=8, gt=6, sres=0.5, tres=1.0, x0=3.0, t0=-2.0)
        grid = GridSpec(dom, hs=1.5, ht=2.0)
        rng = np.random.default_rng(0)
        return Volume(rng.random(grid.shape), grid)

    def test_round_trip_data(self, tmp_path):
        v = self.make_volume()
        save_volume(v, tmp_path / "vol.npy")
        back = load_volume(tmp_path / "vol.npy")
        np.testing.assert_array_equal(back.data, v.data)

    def test_round_trip_geometry(self, tmp_path):
        v = self.make_volume()
        save_volume(v, tmp_path / "vol.npy")
        back = load_volume(tmp_path / "vol.npy")
        assert back.grid.domain == v.grid.domain
        assert back.grid.hs == v.grid.hs
        assert back.grid.ht == v.grid.ht

    def test_load_without_npy_suffix(self, tmp_path):
        v = self.make_volume()
        save_volume(v, tmp_path / "vol.npy")
        back = load_volume(tmp_path / "vol")
        np.testing.assert_array_equal(back.data, v.data)

    def test_missing_volume(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="volume"):
            load_volume(tmp_path / "ghost.npy")

    def test_missing_sidecar(self, tmp_path):
        v = self.make_volume()
        np.save(tmp_path / "orphan.npy", v.data)
        with pytest.raises(FileNotFoundError, match="sidecar"):
            load_volume(tmp_path / "orphan.npy")

    def test_corrupt_sidecar_format(self, tmp_path):
        v = self.make_volume()
        save_volume(v, tmp_path / "vol.npy")
        side = tmp_path / "vol.npy.json"
        side.write_text('{"format": "something-else"}')
        with pytest.raises(ValueError, match="sidecar"):
            load_volume(tmp_path / "vol.npy")

    def test_shape_mismatch_detected(self, tmp_path):
        v = self.make_volume()
        save_volume(v, tmp_path / "vol.npy")
        np.save(tmp_path / "vol.npy", v.data[:-1])
        with pytest.raises(ValueError, match="shape"):
            load_volume(tmp_path / "vol.npy")
