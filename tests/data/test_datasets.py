"""Tests for the Table 2 instance registry and the scaling policy."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.datasets import (
    MACHINE_MEMORY_BYTES,
    PAPER_VOXEL_BYTES,
    SCALES,
    Instance,
    get_instance,
    instance_names,
    iter_instances,
    paper_table2,
)


class TestTable2Fidelity:
    def test_twenty_one_instances(self):
        assert len(paper_table2()) == 21
        assert len(instance_names()) == 21

    def test_spot_check_rows(self):
        rows = {p.name: p for p in paper_table2()}
        d = rows["Dengue_Hr-VHb"]
        assert (d.n, d.Gx, d.Gy, d.Gt, d.Hs, d.Ht) == (11056, 294, 386, 728, 50, 14)
        p = rows["PollenUS_VHr-Lb"]
        assert (p.n, p.Gx, p.Gy, p.Gt, p.Hs, p.Ht) == (588189, 6501, 3001, 84, 100, 3)
        e = rows["eBird_Hr-Hb"]
        assert (e.n, e.Gx, e.Gy, e.Gt, e.Hs, e.Ht) == (291990435, 1781, 3601, 2435, 30, 5)

    def test_size_column_matches_float32_mib(self):
        """Table 2's MB column is the float32 volume in MiB (+-1 rounding)."""
        for p in paper_table2():
            mib = p.n_voxels * PAPER_VOXEL_BYTES / 1024**2
            assert abs(mib - p.size_mb) <= max(2.0, 0.01 * p.size_mb), p.name

    def test_paper_scale_is_verbatim(self):
        for p in paper_table2():
            inst = get_instance(p.name, "paper")
            assert (inst.Gx, inst.Gy, inst.Gt) == (p.Gx, p.Gy, p.Gt)
            assert (inst.Hs, inst.Ht, inst.n) == (p.Hs, p.Ht, p.n)

    def test_memory_copies_reproduce_paper_ooms(self):
        """Flu-Hr allows ~6.5 copies (OOM at 8+ threads in Figure 8);
        eBird-Hr allows ~2.2 (never replicable)."""
        flu = get_instance("Flu_Hr-Lb", "paper")
        assert 5.5 < flu.copies_allowed < 7.5
        ebird = get_instance("eBird_Hr-Lb", "paper")
        assert 1.5 < ebird.copies_allowed < 3.0
        dengue = get_instance("Dengue_Lr-Lb", "paper")
        assert dengue.copies_allowed > 100


class TestScaling:
    @pytest.mark.parametrize("scale", ["bench", "table3", "test"])
    def test_all_instances_derivable(self, scale):
        for inst in iter_instances(scale):
            assert inst.n >= 8
            assert inst.n_voxels <= SCALES[scale].target_voxels * 1.4
            assert inst.Hs >= 1 and inst.Ht >= 1

    def test_bench_volume_near_target(self):
        """Volumes sit near the 1.5M-voxel target, except compute-dominated
        instances whose grids shrink further to keep their regime once the
        point cap binds (eBird, PollenUS-Lb; see module docstring)."""
        spec = SCALES["bench"]
        for inst in iter_instances("bench"):
            assert inst.n_voxels <= spec.target_voxels * 1.4, inst.name
            assert inst.n_voxels >= spec.target_voxels // 17, inst.name

    def test_regime_preserved(self):
        """Init- vs compute-dominated classification survives scaling
        (up to the documented point-count cap)."""
        for inst in iter_instances("bench"):
            paper_ratio = inst.paper.compute_init_ratio
            if paper_ratio < 0.5:  # init-dominated in the paper
                assert inst.compute_init_ratio < 1.0, inst.name
            if paper_ratio > 10.0:  # compute-dominated in the paper
                assert inst.compute_init_ratio > 2.0, inst.name

    def test_ratio_never_exceeds_cap(self):
        for inst in iter_instances("bench"):
            assert inst.compute_init_ratio <= SCALES["bench"].max_ratio * 1.01

    def test_copies_allowed_inherited_from_paper(self):
        for inst in iter_instances("bench"):
            assert inst.copies_allowed == pytest.approx(inst.paper.copies_allowed)

    def test_memory_budget_scales_with_volume(self):
        inst = get_instance("Flu_Hr-Lb", "bench")
        assert inst.memory_budget_bytes == pytest.approx(
            inst.copies_allowed * inst.n_voxels * 8, rel=1e-6
        )

    def test_bandwidth_floor(self):
        """Bandwidths keep min(paper, 3) so stamps stay non-trivial."""
        for inst in iter_instances("bench"):
            assert inst.Hs >= min(inst.paper.Hs, 3)
            assert inst.Ht >= min(inst.paper.Ht, 3)

    def test_test_scale_is_small(self):
        for inst in iter_instances("test"):
            assert inst.n <= 300
            assert inst.n_voxels <= 30_000


class TestInstanceRunnability:
    @pytest.mark.parametrize("name", instance_names())
    def test_grid_and_points_construct(self, name):
        inst = get_instance(name, "test")
        grid = inst.grid()
        pts = inst.points()
        assert grid.shape == (inst.Gx, inst.Gy, inst.Gt)
        assert grid.Hs == inst.Hs and grid.Ht == inst.Ht
        assert pts.n == inst.n
        vox = grid.voxels_of(pts.coords)
        assert (vox >= 0).all()
        assert (vox < [inst.Gx, inst.Gy, inst.Gt]).all()

    def test_points_deterministic(self):
        inst = get_instance("Dengue_Lr-Lb", "test")
        np.testing.assert_array_equal(inst.points().coords, inst.points().coords)

    def test_describe_mentions_name_and_scale(self):
        inst = get_instance("Flu_Lr-Lb", "test")
        s = inst.describe()
        assert "Flu_Lr-Lb" in s and "test" in s

    def test_unknown_instance_rejected(self):
        with pytest.raises(KeyError, match="Dengue_Lr-Lb"):
            get_instance("NotADataset_Xx-Yy")

    def test_unknown_scale_rejected(self):
        with pytest.raises(KeyError, match="scale"):
            get_instance("Dengue_Lr-Lb", scale="galactic")

    def test_dataset_filter(self):
        flu = list(iter_instances("test", datasets=("flu",)))
        assert len(flu) == 6
        assert all(i.dataset == "flu" for i in flu)

    def test_end_to_end_density(self):
        """A test-scale instance runs through PB-SYM and yields density."""
        from repro.algorithms import pb_sym

        inst = get_instance("Dengue_Lr-Hb", "test")
        res = pb_sym(inst.points(), inst.grid())
        assert res.data.max() > 0
        assert np.isfinite(res.data).all()
