"""Static checks on the example scripts.

Full example runs take seconds-to-minutes (they are demoware, not tests);
here we verify the cheap invariants that catch bit-rot: every example
compiles, documents itself, exposes a ``main()``, and only imports the
public API (``repro.*`` — not deep private paths).
"""

from __future__ import annotations

import ast
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def example_ids():
    return [p.name for p in EXAMPLES]


@pytest.fixture(params=EXAMPLES, ids=example_ids())
def example_tree(request):
    source = request.param.read_text()
    return request.param, ast.parse(source, filename=str(request.param))


class TestExamples:
    def test_at_least_five_examples(self):
        assert len(EXAMPLES) >= 5

    def test_quickstart_exists(self):
        assert (EXAMPLES_DIR / "quickstart.py").exists()

    def test_has_module_docstring(self, example_tree):
        path, tree = example_tree
        doc = ast.get_docstring(tree)
        assert doc and len(doc) > 80, f"{path.name} needs a real docstring"

    def test_docstring_has_run_instructions(self, example_tree):
        path, tree = example_tree
        assert "Run:" in ast.get_docstring(tree), path.name

    def test_defines_main(self, example_tree):
        path, tree = example_tree
        fns = {n.name for n in ast.walk(tree) if isinstance(n, ast.FunctionDef)}
        assert "main" in fns, path.name

    def test_has_main_guard(self, example_tree):
        path, _ = example_tree
        assert 'if __name__ == "__main__":' in path.read_text(), path.name

    def test_imports_public_api_only(self, example_tree):
        path, tree = example_tree
        for node in ast.walk(tree):
            mods = []
            if isinstance(node, ast.Import):
                mods = [a.name for a in node.names]
            elif isinstance(node, ast.ImportFrom) and node.module:
                mods = [node.module]
            for m in mods:
                if m.startswith("repro"):
                    parts = m.split(".")
                    # Allow repro, repro.<pkg>, repro.<pkg>.<mod>; forbid
                    # reaching into private names.
                    assert all(not p.startswith("_") for p in parts), \
                        f"{path.name} imports private module {m}"

    def test_compiles(self, example_tree):
        path, _ = example_tree
        compile(path.read_text(), str(path), "exec")
