"""Whole-package integrity checks: registries, exports, documentation.

These tests keep the public surface honest as the package grows — every
registered algorithm must be importable, documented, and callable through
the facade; every public module must carry a docstring.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import numpy as np
import pytest

import repro
from repro import available_algorithms, get_algorithm
from repro.core import DomainSpec, GridSpec, PointSet

PAPER_ALGOS = {
    "vb", "vb-dec", "pb", "pb-disk", "pb-bar", "pb-sym",
    "pb-sym-dr", "pb-sym-dd", "pb-sym-pd", "pb-sym-pd-sched", "pb-sym-pd-rep",
}


class TestAlgorithmRegistry:
    def test_all_paper_algorithms_registered(self):
        assert PAPER_ALGOS <= set(available_algorithms())

    def test_adaptive_extension_registered(self):
        assert "pb-sym-adaptive" in available_algorithms()

    @pytest.mark.parametrize("name", sorted(PAPER_ALGOS))
    def test_registered_callable_has_docstring(self, name):
        fn = get_algorithm(name)
        assert callable(fn)
        assert fn.__doc__ and len(fn.__doc__) > 30

    @pytest.mark.parametrize("name", sorted(PAPER_ALGOS))
    def test_algorithm_name_attribute(self, name):
        fn = get_algorithm(name)
        assert fn.algorithm_name == name

    def test_parallel_flags(self):
        assert not get_algorithm("pb-sym").is_parallel
        assert get_algorithm("pb-sym-dd").is_parallel

    @pytest.mark.parametrize("name", sorted(PAPER_ALGOS))
    def test_common_signature(self, name):
        """Every algorithm accepts the common keyword plumbing."""
        sig = inspect.signature(get_algorithm(name))
        for kw in ("kernel", "counter", "timer"):
            assert kw in sig.parameters, f"{name} missing {kw}"

    @pytest.mark.parametrize("name", sorted(PAPER_ALGOS))
    def test_runs_end_to_end(self, name):
        grid = GridSpec(DomainSpec.from_voxels(12, 12, 12), hs=2.0, ht=2.0)
        rng = np.random.default_rng(0)
        pts = PointSet(rng.uniform(0, 12, size=(15, 3)))
        fn = get_algorithm(name)
        kwargs = {"P": 2, "backend": "simulated"} if fn.is_parallel else {}
        res = fn(pts, grid, **kwargs)
        assert res.data.shape == grid.shape
        assert np.isfinite(res.data).all()


class TestModuleDocumentation:
    def test_every_module_has_docstring(self):
        missing = []
        for mod_info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
            if mod_info.name == "repro.__main__":
                continue  # executes the CLI on import, by design
            mod = importlib.import_module(mod_info.name)
            if not (mod.__doc__ and mod.__doc__.strip()):
                missing.append(mod_info.name)
        assert not missing, f"modules without docstrings: {missing}"

    def test_public_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version_string(self):
        assert repro.__version__.count(".") == 2


class TestFacadeRegistryInterplay:
    def test_every_algorithm_usable_via_facade(self):
        from repro import STKDE

        rng = np.random.default_rng(1)
        pts = PointSet(rng.uniform(0, 10, size=(12, 3)))
        for name in sorted(PAPER_ALGOS):
            est = STKDE(hs=2.0, ht=2.0, algorithm=name, P=2)
            res = est.estimate(pts)
            assert res.algorithm == name
