"""Tests for the STKDE facade, the viz renderer, and the CLI."""

from __future__ import annotations

import numpy as np
import pytest

from repro import STKDE, DomainSpec, GridSpec, PointSet, infer_domain
from repro.algorithms import pb_sym
from repro.cli import main as cli_main
from repro.data.io import save_points_csv, save_volume
from repro.viz.render import ascii_heatmap, hotspots, render_time_slice, series_csv

from tests.helpers import make_points


class TestInferDomain:
    def test_padding_covers_bandwidth(self, rng):
        pts = PointSet(rng.uniform(10, 20, size=(30, 3)))
        dom = infer_domain(pts, sres=1.0, tres=1.0, hs=3.0, ht=2.0)
        assert dom.x0 <= pts.xs.min() - 3.0 + 1e-9
        assert dom.x0 + dom.gx >= pts.xs.max() + 3.0 - 1e-9
        assert dom.t0 <= pts.ts.min() - 2.0 + 1e-9

    def test_no_padding_option(self, rng):
        pts = PointSet(rng.uniform(0, 10, size=(5, 3)))
        dom = infer_domain(pts, sres=1.0, tres=1.0, hs=3.0, ht=2.0,
                           pad_bandwidth=False)
        assert dom.x0 == pytest.approx(pts.xs.min())

    def test_degenerate_extent_gets_one_voxel(self):
        pts = PointSet(np.array([[5.0, 5.0, 5.0], [5.0, 5.0, 5.0]]))
        dom = infer_domain(pts, sres=1.0, tres=1.0, hs=1.0, ht=1.0,
                           pad_bandwidth=False)
        assert dom.Gx >= 1 and dom.Gy >= 1 and dom.Gt >= 1


class TestSTKDEFacade:
    def test_explicit_algorithm(self, rng):
        pts = PointSet(rng.uniform(0, 20, size=(40, 3)))
        est = STKDE(hs=2.0, ht=2.0, algorithm="pb-disk")
        res = est.estimate(pts)
        assert res.algorithm == "pb-disk"
        assert res.meta["selected_by"] == "user"

    def test_accepts_raw_array(self, rng):
        arr = rng.uniform(0, 15, size=(25, 3))
        res = STKDE(hs=2.0, ht=2.0, algorithm="pb-sym").estimate(arr)
        assert res.data.max() > 0

    def test_matches_direct_call(self, rng):
        pts = PointSet(rng.uniform(0, 20, size=(30, 3)))
        dom = DomainSpec.from_voxels(24, 24, 24)
        grid = GridSpec(dom, hs=2.5, ht=2.5)
        direct = pb_sym(pts, grid)
        via = STKDE(hs=2.5, ht=2.5, algorithm="pb-sym").estimate(pts, domain=dom)
        np.testing.assert_allclose(via.data, direct.data, rtol=1e-12)

    def test_auto_serial_picks_pb_sym(self, rng):
        pts = PointSet(rng.uniform(0, 20, size=(30, 3)))
        res = STKDE(hs=2.0, ht=2.0, algorithm="auto", P=1).estimate(pts)
        assert res.algorithm == "pb-sym"
        assert res.meta["selected_by"] == "model"

    def test_auto_parallel_picks_parallel(self, rng):
        pts = PointSet(rng.uniform(0, 30, size=(400, 3)))
        res = STKDE(hs=2.5, ht=2.5, algorithm="auto", P=4).estimate(pts)
        assert res.algorithm.startswith("pb-sym-")
        assert res.meta["P"] == 4

    def test_parallel_explicit_with_decomposition(self, rng):
        pts = PointSet(rng.uniform(0, 30, size=(100, 3)))
        est = STKDE(hs=2.0, ht=2.0, algorithm="pb-sym-dd", P=2,
                    decomposition=(4, 4, 4))
        res = est.estimate(pts)
        assert res.meta["decomposition"] == (4, 4, 4)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            STKDE(hs=0.0, ht=1.0)
        with pytest.raises(ValueError):
            STKDE(hs=1.0, ht=1.0, sres=-1.0)
        with pytest.raises(KeyError):
            STKDE(hs=1.0, ht=1.0, kernel="nope")

    def test_unknown_algorithm_raises_at_estimate(self, rng):
        pts = PointSet(rng.uniform(0, 10, size=(5, 3)))
        with pytest.raises(KeyError, match="unknown algorithm"):
            STKDE(hs=1.0, ht=1.0, algorithm="pb-warp").estimate(pts)

    def test_auto_P_resolves_to_cpu_count(self):
        import os

        est = STKDE(hs=2.0, ht=2.0, P="auto")
        cpus = (
            len(os.sched_getaffinity(0))
            if hasattr(os, "sched_getaffinity")
            else (os.cpu_count() or 1)
        )
        assert est.P == cpus
        assert est.P >= 1

    def test_rejects_bad_P(self):
        with pytest.raises(ValueError, match="P must be"):
            STKDE(hs=2.0, ht=2.0, P="four")
        with pytest.raises(ValueError, match="P must be"):
            STKDE(hs=2.0, ht=2.0, P=0)

    def test_auto_with_threads_backend_matches_serial(self, rng):
        """auto may now select PB-SYM's bbox-sharded threads backend; the
        density must match the sequential reference either way."""
        pts = PointSet(rng.uniform(0, 30, size=(300, 3)))
        serial = STKDE(hs=2.5, ht=2.5, algorithm="pb-sym").estimate(pts)
        auto = STKDE(hs=2.5, ht=2.5, algorithm="auto", P=4,
                     backend="threads").estimate(pts)
        np.testing.assert_allclose(auto.data, serial.data,
                                   rtol=1e-10, atol=1e-15)

    def test_auto_never_picks_threads_under_simulated_backend(self, rng):
        pts = PointSet(rng.uniform(0, 30, size=(200, 3)))
        est = STKDE(hs=2.5, ht=2.5, algorithm="auto", P=4)  # simulated
        grid = est.grid_for(pts)
        name, kwargs = est._choose_algorithm(pts, grid)
        assert kwargs.get("backend") != "threads"
        assert name != "pb-sym"  # parallel P must map to a real strategy

    def test_auto_threads_backend_maps_winner_to_pb_sym_threads(self, rng):
        pts = PointSet(rng.uniform(0, 30, size=(200, 3)))
        est = STKDE(hs=2.5, ht=2.5, algorithm="auto", P=4, backend="threads")
        grid = est.grid_for(pts)
        name, kwargs = est._choose_algorithm(pts, grid)
        if name == "pb-sym":  # the threads candidate won
            assert kwargs["backend"] == "threads"
            assert kwargs["P"] == 4
        else:  # another strategy won on this instance; still parallel
            assert name.startswith("pb-sym-")


class TestRenderer:
    def make_volume(self):
        grid = GridSpec(DomainSpec.from_voxels(30, 24, 10), hs=3.0, ht=2.0)
        pts = make_points(grid, 60, seed=3)
        return pb_sym(pts, grid).volume

    def test_heatmap_dimensions(self):
        s = ascii_heatmap(np.random.default_rng(0).random((30, 24)),
                          width=40, height=12)
        lines = s.splitlines()
        assert len(lines) == 12
        assert all(len(l) == 30 for l in lines)

    def test_heatmap_saturates_at_vmax(self):
        arr = np.zeros((10, 10))
        arr[5, 5] = 100.0
        s = ascii_heatmap(arr, width=10, height=10, vmax=1.0)
        assert "@" in s

    def test_zero_volume_renders_blank(self):
        s = ascii_heatmap(np.zeros((8, 8)), width=8, height=8)
        assert set(s) <= {" ", "\n"}

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            ascii_heatmap(np.zeros((2, 2, 2)))

    def test_render_time_slice_caption(self):
        vol = self.make_volume()
        out = render_time_slice(vol, 5)
        assert "T=5/10" in out

    def test_render_rejects_bad_index(self):
        vol = self.make_volume()
        with pytest.raises(ValueError, match="time index"):
            render_time_slice(vol, 99)

    def test_hotspots_sorted_desc(self):
        vol = self.make_volume()
        hs = hotspots(vol, k=4)
        vals = [v for _, v in hs]
        assert vals == sorted(vals, reverse=True)
        (X, Y, T), vmax = hs[0]
        assert vol.data[X, Y, T] == pytest.approx(vol.data.max())

    def test_hotspots_rejects_bad_k(self):
        with pytest.raises(ValueError):
            hotspots(self.make_volume(), k=0)

    def test_series_csv_round_trip(self, tmp_path):
        p = tmp_path / "series.csv"
        series_csv(p, ["a", "b"], [[1, 2], [3, 4]])
        lines = p.read_text().splitlines()
        assert lines == ["a,b", "1,2", "3,4"]


class TestCLI:
    def test_instances(self, capsys):
        assert cli_main(["instances", "--scale", "test"]) == 0
        out = capsys.readouterr().out
        assert "Dengue_Lr-Lb" in out and "eBird_Hr-Hb" in out

    def test_run_sequential(self, capsys):
        rc = cli_main([
            "run", "--instance", "Dengue_Lr-Hb", "--scale", "test",
            "--algorithm", "pb-sym",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "max density" in out

    def test_run_parallel_with_decomposition(self, capsys):
        rc = cli_main([
            "run", "--instance", "PollenUS_Lr-Lb", "--scale", "test",
            "--algorithm", "pb-sym-dd", "-P", "3",
            "--decomposition", "4x4x4",
        ])
        assert rc == 0
        assert "makespan" in capsys.readouterr().out

    def test_estimate_and_render(self, tmp_path, capsys, rng):
        pts_file = tmp_path / "events.csv"
        vol_file = tmp_path / "vol.npy"
        from repro.core import PointSet

        save_points_csv(PointSet(rng.uniform(0, 20, size=(50, 3))), pts_file)
        rc = cli_main([
            "estimate", "--points", str(pts_file),
            "--hs", "2.5", "--ht", "2.0", "--out", str(vol_file),
        ])
        assert rc == 0
        assert vol_file.exists()
        rc = cli_main(["render", "--volume", str(vol_file)])
        assert rc == 0
        assert "hotspots" in capsys.readouterr().out

    def test_select(self, capsys):
        rc = cli_main([
            "select", "--instance", "PollenUS_Hr-Mb", "--scale", "test",
            "-P", "4",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "model's pick" in out
        assert "pb-sym" in out

    def test_bad_decomposition_format(self):
        with pytest.raises(SystemExit):
            cli_main([
                "run", "--instance", "Dengue_Lr-Lb", "--scale", "test",
                "--algorithm", "pb-sym-dd", "--decomposition", "4by4by4",
            ])
